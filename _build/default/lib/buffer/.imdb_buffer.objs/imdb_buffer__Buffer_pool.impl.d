lib/buffer/buffer_pool.ml: Bytes Fun Hashtbl Imdb_storage Imdb_util Imdb_wal Int64 List Printf Stats
