(* Lazy timestamping: the four-stage protocol of Section 2.2, tying the
   VTT and PTT together.

   Normal-access stamping ([resolve]) may fault PTT entries into the VTT.
   Flush-time stamping ([resolve_volatile_only]) consults the VTT alone:
   the buffer pool calls it while evicting a page, and a PTT lookup there
   could recurse into eviction.  Skipping a VTT miss is always safe — a
   miss means either the transaction is still active (leave the TID), or
   the record will be stamped on a later access (the PTT entry cannot be
   collected while the refcount is positive).

   No stamping is ever logged.  Durability of stamping is the GC rule's
   job: a PTT entry survives until the redo-scan start point proves every
   stamped page reached disk. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid

type t = {
  vtt : Vtt.t;
  mutable ptt : Ptt.t option; (* None until the engine wires storage up *)
  mutable end_of_log : unit -> int64; (* for lsn_at_zero bookkeeping *)
  mutable unknown_tids : int; (* integrity counter: should stay 0 *)
  mutable metrics : Imdb_obs.Metrics.t;
  mutable tracer : Imdb_obs.Tracer.t;
}

let create ?(metrics = Imdb_obs.Metrics.null) () =
  { vtt = Vtt.create ~metrics (); ptt = None; end_of_log = (fun () -> 0L);
    unknown_tids = 0; metrics; tracer = Imdb_obs.Tracer.null }

let set_metrics t m =
  t.metrics <- m;
  Vtt.set_metrics t.vtt m

let set_tracer t tr = t.tracer <- tr

let set_ptt t ptt = t.ptt <- Some ptt
let set_end_of_log t f = t.end_of_log <- f
let vtt t = t.vtt
let ptt_exn t =
  match t.ptt with Some p -> p | None -> invalid_arg "Lazy_stamper: PTT not attached"

(* Map a TID found in a record version to its fate.  Faults PTT entries
   into the VTT on miss. *)
let resolve t tid : Imdb_version.Vpage.resolution =
  match Vtt.resolve t.vtt tid with
  | Some (`Committed ts) -> Imdb_version.Vpage.Committed ts
  | Some `Active -> Imdb_version.Vpage.Active
  | Some `Aborted ->
      (* rollback removes the versions; treat as active meanwhile *)
      Imdb_version.Vpage.Active
  | None -> (
      match t.ptt with
      | None ->
          t.unknown_tids <- t.unknown_tids + 1;
          Imdb_version.Vpage.Unknown
      | Some ptt -> (
          match Ptt.lookup ptt tid with
          | Some ts ->
              Vtt.cache_from_ptt t.vtt tid ts;
              Imdb_version.Vpage.Committed ts
          | None ->
              t.unknown_tids <- t.unknown_tids + 1;
              Imdb_version.Vpage.Unknown))

(* VTT-only resolution for the buffer pool's pre-flush hook. *)
let resolve_volatile_only t tid : Imdb_version.Vpage.resolution =
  match Vtt.resolve t.vtt tid with
  | Some (`Committed ts) -> Imdb_version.Vpage.Committed ts
  | Some `Active | Some `Aborted -> Imdb_version.Vpage.Active
  | None -> Imdb_version.Vpage.Active (* safe: stamp later, via the PTT *)

let on_stamp t tid =
  Vtt.note_stamped t.vtt tid ~end_of_log:(t.end_of_log ());
  Vtt.drop_if_drained_snapshot t.vtt tid

(* Stamp every committed version in [page].  Returns the number stamped;
   the caller marks the page dirty (unlogged) when non-zero. *)
let stamp_page t page =
  Imdb_version.Vpage.stamp_committed ~metrics:t.metrics page ~resolve:(resolve t)
    ~on_stamp:(on_stamp t)

(* The pre-flush variant: volatile resolution only. *)
let stamp_page_volatile t page =
  Imdb_version.Vpage.stamp_committed ~metrics:t.metrics page
    ~resolve:(resolve_volatile_only t) ~on_stamp:(on_stamp t)

(* Incremental PTT garbage collection (run after each checkpoint).
   [redo_scan_start] is the LSN from which a crash's redo would begin; if
   it has passed a transaction's lsn_at_zero, every unlogged stamp of that
   transaction is on disk and the mapping can go.  Returns collected
   TIDs. *)
let garbage_collect t ~redo_scan_start =
  Imdb_obs.Tracer.with_span t.tracer "ptt.gc" @@ fun sp ->
  let candidates = Vtt.gc_candidates t.vtt ~redo_scan_start in
  (* one batched PTT pass instead of a descent per candidate: collected
     TIDs are consecutive by construction, so the whole drain usually
     lands in a single leaf *)
  let persistent =
    List.filter_map
      (fun (tid, persistent) -> if persistent then Some tid else None)
      candidates
  in
  if persistent <> [] then ignore (Ptt.delete_batch (ptt_exn t) persistent);
  List.iter (fun (tid, _) -> Vtt.drop t.vtt tid) candidates;
  Imdb_obs.Metrics.observe t.metrics Imdb_obs.Metrics.h_ptt_gc_batch
    (List.length candidates);
  Imdb_obs.Tracer.add_attr sp "candidates"
    (string_of_int (List.length candidates));
  Imdb_obs.Tracer.add_attr sp "persistent"
    (string_of_int (List.length persistent));
  List.map fst candidates
