(** Lock manager: strict two-phase locking for the serializable path,
    with multigranularity intention locks and wait-for-graph deadlock
    detection.

    The engine is single-threaded with logically interleaved
    transactions, so a conflicting request never parks a thread: it
    either fails fast ([Would_block] / [Conflict]) or is declared a
    deadlock when the wait-for graph closes a cycle.  Snapshot-isolation
    readers never call in at all — that is the point of the versioning
    machinery. *)

type resource = Table of int | Record of int * string

val pp_resource : Format.formatter -> resource -> unit

type mode = IS | IX | S | X

val pp_mode : Format.formatter -> mode -> unit

val compatible : mode -> mode -> bool
(** The standard multigranularity compatibility matrix. *)

type t

val create : unit -> t

type outcome = Granted | Would_block of Imdb_clock.Tid.t list

exception Deadlock of Imdb_clock.Tid.t
(** Raised (naming the requester, the victim) when granting the wait
    would close a cycle. *)

exception Conflict of { tid : Imdb_clock.Tid.t; blockers : Imdb_clock.Tid.t list }

val acquire : t -> Imdb_clock.Tid.t -> resource -> mode -> outcome
(** Acquire or upgrade; re-requests are idempotent.  @raise Deadlock *)

val acquire_exn : t -> Imdb_clock.Tid.t -> resource -> mode -> unit
(** Like [acquire] but a block raises [Conflict]. *)

val holds : t -> Imdb_clock.Tid.t -> resource -> mode option

val release_all : t -> Imdb_clock.Tid.t -> unit
(** Strict 2PL: everything is released together at commit/abort. *)

val held_by : t -> Imdb_clock.Tid.t -> resource list
val active_locks : t -> (resource * Imdb_clock.Tid.t * mode) list
