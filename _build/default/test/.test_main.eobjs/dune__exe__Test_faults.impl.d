test/test_faults.ml: Alcotest Helpers Imdb_buffer Imdb_clock Imdb_core Imdb_storage Imdb_wal List Printf String
