(** Time-split B-tree index (Lomet & Salzberg, SIGMOD '89) — the temporal
    index the paper names as its most important next step (Section 7.2).

    Indexes the historical pages produced by data-page time splits: each
    indexed page owns a rectangle [key_low, key_high) x [t_low, t_high) in
    key x time space, and an AS OF access lands on the right page in
    O(tree depth) instead of walking the time-split page chain.

    Index nodes split like TSB-tree index nodes: leaf entries (immutable
    history pages) may be posted redundantly across a time split; internal
    entries (mutable index nodes) never are — internal splits pick a clean
    guillotine line no child spans. *)

type rect = {
  key_low : string;
  key_high : string option;  (** [None] = +infinity *)
  t_low : Imdb_clock.Timestamp.t;
  t_high : Imdb_clock.Timestamp.t;  (** [Timestamp.infinity] = open *)
}

val rect_contains : rect -> key:string -> ts:Imdb_clock.Timestamp.t -> bool
val pp_rect : Format.formatter -> rect -> unit

type entry = { rect : rect; child : int }

type io = {
  exec : Imdb_buffer.Buffer_pool.frame -> Imdb_wal.Log_record.page_op -> unit;
      (** redo-only log + apply + mark dirty (all index changes are
          structure modifications) *)
  alloc : level:int -> int;  (** fresh index page *)
}

type t

val create : pool:Imdb_buffer.Buffer_pool.t -> io:io -> table_id:int -> t
val attach : pool:Imdb_buffer.Buffer_pool.t -> io:io -> root:int -> table_id:int -> t
val root : t -> int

val insert : t -> rect:rect -> child:int -> unit
(** Register a historical page covering [rect].  Rectangles of distinct
    pages must be disjoint (time splits guarantee it). *)

val find : t -> key:string -> ts:Imdb_clock.Timestamp.t -> int option
(** The historical page whose rectangle contains (key, ts), if any. *)

val find_range :
  t -> low:string -> high:string option -> ts:Imdb_clock.Timestamp.t -> int list
(** All indexed pages intersecting the key range at time [ts] — the page
    set an AS OF range scan visits. *)

exception Invariant_violation of string

val check_invariants : t -> int
(** Containment and leaf-disjointness check; returns the leaf entry
    count.  @raise Invariant_violation *)

val entry_count : t -> int

val should_key_split :
  utilization:float ->
  threshold:float ->
  incoming_bytes:int ->
  capacity:int ->
  [ `Utilization | `Batch_hint | `No ]
(** Key-split decision at a time-split point.  [`Utilization] is the
    classic post-split threshold trigger; [`Batch_hint] fires when the
    in-flight flush run ([incoming_bytes] over [capacity]) would push an
    under-threshold page past it anyway. *)

(**/**)

val node_entries : bytes -> entry list
val everything : rect
