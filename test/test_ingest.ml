(* Buffered ingestion: the twin-engine equivalence property (every query
   a buffered engine answers must be bit-identical to an unbuffered one,
   down to the asof.* work counters) and the crash-recovery contract of
   the message buffer — a committed-but-unflushed buffer survives a
   crash, a loser's messages (and any versions a mid-transaction flush
   already applied) roll back, and a buffer crashed mid-life recovers to
   a state every read path agrees on. *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module T = Imdb_core.Table
module Ts = Imdb_clock.Timestamp
module M = Imdb_obs.Metrics

(* Small pages and a tiny buffer so scripts of a few hundred ops force
   many flushes, deferred splits and buffer-page wraparounds. *)
let buffered_config =
  {
    E.default_config with
    E.page_size = 1024;
    ingest_buffering = true;
    ingest_buffer_rows = 4;
  }

let unbuffered_config = { buffered_config with E.ingest_buffering = false }

(* --- twin-engine equivalence --------------------------------------------- *)

(* One write step against one engine: a fresh single-write transaction,
   committed on success, aborted on the expected existence errors.
   Returns a comparable outcome so the twins can be checked step by
   step. *)
type step_outcome = Committed of Ts.t | Dup_key | No_key

let run_step db action key v =
  let txn = Db.begin_txn db in
  match
    (match action with
    | 0 | 1 -> Db.upsert_row db txn ~table:"t" (row key v)
    | 2 -> Db.insert_row db txn ~table:"t" (row key v)
    | 3 -> Db.update_row db txn ~table:"t" (row key v)
    | _ -> Db.delete_row db txn ~table:"t" ~key:(S.V_int key));
    Db.commit db txn
  with
  | Some ts -> Some (Committed ts)
  | None -> None
  | exception T.Duplicate_key _ ->
      Db.abort db txn;
      Some Dup_key
  | exception T.No_such_key _ ->
      Db.abort db txn;
      Some No_key

let full_state db =
  let got = Hashtbl.create 16 in
  Db.exec db (fun txn ->
      Db.scan db txn ~table:"t" (fun k v -> Hashtbl.replace got k v));
  got

let state_as_of db ts =
  let got = Hashtbl.create 16 in
  Db.as_of db ts (fun txn ->
      Db.scan_as_of db txn ~table:"t" ~ts (fun k v -> Hashtbl.replace got k v));
  got

let asof_work db =
  (M.get (Db.metrics db) M.asof_pages, M.get (Db.metrics db) M.asof_versions)

let prop_twin_engines =
  let gen =
    QCheck.Gen.(list_size (int_range 80 200) (pair (int_range 0 6) (int_range 0 11)))
  in
  QCheck.Test.make ~name:"buffered engine = unbuffered engine (results and counters)"
    ~count:15 (QCheck.make gen)
    (fun script ->
      let fresh config =
        let clock = Imdb_clock.Clock.create_logical () in
        (Db.open_memory ~config ~clock (), clock)
      in
      let db_b, clock_b = fresh buffered_config in
      let db_u, clock_u = fresh unbuffered_config in
      List.iter
        (fun db -> Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema)
        [ db_b; db_u ];
      let commits = ref [] in
      let step = ref 0 in
      List.iter
        (fun (action, key) ->
          incr step;
          tick clock_b;
          tick clock_u;
          if action = 5 then ignore key
          else if false then begin
            (* aborted multi-write: must leave no trace on either side *)
            List.iter
              (fun db ->
                let txn = Db.begin_txn db in
                Db.upsert_row db txn ~table:"t" (row key "junk");
                Db.upsert_row db txn ~table:"t" (row ((key + 1) mod 12) "junk2");
                Db.abort db txn)
              [ db_b; db_u ]
          end
          else if action = 6 then begin
            (* mid-run read: flushes the buffered engine's buffer, then
               both must see the same row *)
            let read db =
              Db.exec db (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int key))
            in
            if read db_b <> read db_u then
              QCheck.Test.fail_reportf "step %d: mid-run read of key %d differs"
                !step key
          end
          else begin
            let v = Printf.sprintf "s%d" !step in
            let ob = run_step db_b action key v in
            let ou = run_step db_u action key v in
            (match (ob, ou) with
            | Some (Committed tb), Some (Committed tu) when Ts.equal tb tu ->
                commits := tb :: !commits
            | _ when ob = ou -> ()
            | _ ->
                QCheck.Test.fail_reportf
                  "step %d: outcomes diverge (action %d key %d)" !step action key)
          end)
        script;
      (* settle both engines (first read drains the buffer), then compare
         the asof.* work of the whole read phase: identical structures
         must do identical work *)
      let same_tables what a b =
        if Hashtbl.length a <> Hashtbl.length b then
          QCheck.Test.fail_reportf "%s: %d rows buffered, %d unbuffered" what
            (Hashtbl.length a) (Hashtbl.length b);
        Hashtbl.iter
          (fun k v ->
            if Hashtbl.find_opt b k <> Some v then
              QCheck.Test.fail_reportf "%s: key %s differs" what k)
          a
      in
      same_tables "current state" (full_state db_b) (full_state db_u);
      let base_b = asof_work db_b and base_u = asof_work db_u in
      List.iter
        (fun ts ->
          same_tables
            (Printf.sprintf "as of %s" (Ts.to_string ts))
            (state_as_of db_b ts) (state_as_of db_u ts))
        !commits;
      for key = 0 to 11 do
        let hist db =
          Db.exec db (fun txn -> Db.history_rows db txn ~table:"t" ~key:(S.V_int key))
        in
        if hist db_b <> hist db_u then
          QCheck.Test.fail_reportf "history of key %d differs" key
      done;
      (* abort-free scripts must also match on physical structure: the
         asof work counters agree only when split topology is identical.
         An abort can legitimately diverge them — a later-aborted write
         splits a full page on the per-row path before rolling back
         (splits are structural and survive undo), while its buffered
         message never reaches a data page. *)
      (if not (List.exists (fun (a, _) -> a = 5) script) then
         let diff (p0, v0) (p1, v1) = (p1 - p0, v1 - v0) in
         let wb = diff base_b (asof_work db_b)
         and wu = diff base_u (asof_work db_u) in
         if wb <> wu then
           QCheck.Test.fail_reportf
             "asof work differs: buffered (%d pages, %d versions) vs (%d, %d)"
             (fst wb) (snd wb) (fst wu) (snd wu));
      Db.close db_b;
      Db.close db_u;
      true)

(* --- crash recovery of the buffer ---------------------------------------- *)

(* A buffer too large to flush by itself: everything stays buffered until
   a read or crash forces the question. *)
let lazy_config = { buffered_config with E.ingest_buffer_rows = 64 }

let test_committed_buffer_survives_crash () =
  let db, clock = fresh_db ~config:lazy_config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  let stamps =
    List.map
      (fun i ->
        tick clock;
        commit_write db (fun txn ->
            Db.upsert_row db txn ~table:"t" (row i (Printf.sprintf "v%d" i))))
      [ 0; 1; 2; 3; 4 ]
  in
  tick clock;
  ignore
    (commit_write db (fun txn ->
         Db.upsert_row db txn ~table:"t" (row 2 "v2b")));
  (* all eleven writes are still messages: nothing has been applied *)
  Alcotest.(check bool) "writes were buffered" true
    (M.get (Db.metrics db) M.ingest_appends >= 6);
  Alcotest.(check int) "no flush yet" 0 (M.get (Db.metrics db) M.ingest_flushes);
  let db = Db.crash_and_reopen ~config:lazy_config ~clock db in
  check_row db ~table:"t" ~id:2 (Some (row 2 "v2b"));
  List.iteri
    (fun i _ ->
      if i <> 2 then check_row db ~table:"t" ~id:i (Some (row i (Printf.sprintf "v%d" i))))
    stamps;
  (* the recovered buffer must also serve time travel correctly *)
  (match stamps with
  | _ :: _ ->
      let ts = List.nth stamps 2 in
      Db.as_of db ts (fun txn ->
          Alcotest.(check bool) "as-of before the update sees v2" true
            (Db.get_row db txn ~table:"t" ~key:(S.V_int 2) = Some (row 2 "v2")))
  | [] -> ());
  Db.exec db (fun txn ->
      Alcotest.(check int) "key 2 has two versions" 2
        (List.length (Db.history_rows db txn ~table:"t" ~key:(S.V_int 2))));
  Db.close db

let test_aborted_buffer_rolls_back () =
  let db, clock = fresh_db ~config:lazy_config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.upsert_row db txn ~table:"t" (row 1 "keep")));
  tick clock;
  let txn = Db.begin_txn db in
  Db.upsert_row db txn ~table:"t" (row 1 "junk");
  Db.insert_row db txn ~table:"t" (row 2 "junk2");
  Db.abort db txn;
  check_row db ~table:"t" ~id:1 (Some (row 1 "keep"));
  check_row db ~table:"t" ~id:2 None;
  Db.exec db (fun txn ->
      Alcotest.(check int) "key 1 history unchanged" 1
        (List.length (Db.history_rows db txn ~table:"t" ~key:(S.V_int 1))));
  Db.close db

(* The hard case: a transaction big enough that the buffer flushes in the
   middle of it, so some of the loser's versions are already applied to
   data pages when the crash hits.  A later committed transaction makes
   the loser's WAL records durable.  Recovery must undo both halves —
   the messages still buffered and the versions already applied (the
   Op_msg_append records' dual-guard logical undo). *)
let test_loser_with_half_flushed_buffer_rolls_back () =
  let config = { buffered_config with E.ingest_buffer_rows = 8 } in
  let db, clock = fresh_db ~config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.upsert_row db txn ~table:"t" (row 0 "base")));
  tick clock;
  let loser = Db.begin_txn db in
  for i = 0 to 19 do
    Db.upsert_row db loser ~table:"t" (row i "loser")
  done;
  Alcotest.(check bool) "loser's writes forced a mid-transaction flush" true
    (M.get (Db.metrics db) M.ingest_flushes > 0);
  (* a separate committed transaction forces the WAL (including the
     loser's appends and flush batches) to disk *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.upsert_row db txn ~table:"t" (row 100 "w")));
  let db = Db.crash_and_reopen ~config ~clock db in
  check_row db ~table:"t" ~id:0 (Some (row 0 "base"));
  check_row db ~table:"t" ~id:100 (Some (row 100 "w"));
  for i = 1 to 19 do
    check_row db ~table:"t" ~id:i None
  done;
  Db.exec db (fun txn ->
      Alcotest.(check int) "key 0 kept only the committed version" 1
        (List.length (Db.history_rows db txn ~table:"t" ~key:(S.V_int 0))));
  Db.close db

(* Crash with the buffer mid-life: some transactions fully flushed (their
   messages truncated by the redo-only reformat), later ones still
   buffered.  Replay rebuilds the page through the append/format/append
   sequence and the recovered tail must flush correctly afterwards. *)
let test_mixed_flushed_and_buffered_crash () =
  let config = { buffered_config with E.ingest_buffer_rows = 8 } in
  let db, clock = fresh_db ~config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  let stamps = ref [] in
  for i = 0 to 29 do
    tick clock;
    let ts =
      commit_write db (fun txn ->
          Db.upsert_row db txn ~table:"t" (row (i mod 10) (Printf.sprintf "v%d" i)))
    in
    stamps := (i, ts) :: !stamps
  done;
  Alcotest.(check bool) "flushes happened before the crash" true
    (M.get (Db.metrics db) M.ingest_flushes > 0);
  let db = Db.crash_and_reopen ~config ~clock db in
  for k = 0 to 9 do
    check_row db ~table:"t" ~id:k (Some (row k (Printf.sprintf "v%d" (20 + k))))
  done;
  (* every commit's state is reconstructible: key i mod 10's value as of
     commit i is v_i *)
  List.iter
    (fun (i, ts) ->
      Db.as_of db ts (fun txn ->
          Alcotest.(check bool)
            (Printf.sprintf "as of commit %d" i)
            true
            (Db.get_row db txn ~table:"t" ~key:(S.V_int (i mod 10))
            = Some (row (i mod 10) (Printf.sprintf "v%d" i)))))
    !stamps;
  Db.exec db (fun txn ->
      Alcotest.(check int) "key 3 has three versions" 3
        (List.length (Db.history_rows db txn ~table:"t" ~key:(S.V_int 3))));
  Db.close db

let suite =
  [
    QCheck_alcotest.to_alcotest prop_twin_engines;
    Alcotest.test_case "committed unflushed buffer survives a crash" `Quick
      test_committed_buffer_survives_crash;
    Alcotest.test_case "aborted buffered writes roll back" `Quick
      test_aborted_buffer_rolls_back;
    Alcotest.test_case "loser with half-flushed buffer rolls back" `Quick
      test_loser_with_half_flushed_buffer_rolls_back;
    Alcotest.test_case "mixed flushed/buffered state recovers" `Quick
      test_mixed_flushed_and_buffered_crash;
  ]
