lib/util/hexdump.ml: Bytes Char Fmt
