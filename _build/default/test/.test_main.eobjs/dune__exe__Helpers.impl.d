test/helpers.ml: Alcotest Fmt Imdb_clock Imdb_core Printf
