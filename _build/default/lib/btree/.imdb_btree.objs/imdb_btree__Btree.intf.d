lib/btree/btree.mli: Format Imdb_buffer Imdb_storage Imdb_wal
