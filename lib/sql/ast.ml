(* Abstract syntax for the SQL subset of the paper's Section 4:

   {v
     CREATE [IMMORTAL | SNAPSHOT] TABLE t (col TYPE [PRIMARY KEY], ...)
     INSERT INTO t VALUES (v, ...)
     UPDATE t SET col = v [, ...] WHERE ...
     DELETE FROM t WHERE ...
     SELECT * | col [, ...] FROM t [WHERE ...]
     BEGIN TRAN [AS OF "<datetime>"]
     COMMIT [TRAN] / ROLLBACK [TRAN]
     SET ISOLATION { SERIALIZABLE | SNAPSHOT }
     SELECT HISTORY(t, key)            -- time-travel extension
     CHECKPOINT                         -- maintenance extension
     METRICS                            -- session pragma: engine metrics as JSON
     SESSIONS                           -- session pragma: per-session stats as JSON
     LOCKS                              -- session pragma: lock holders/waiters as JSON
   v}

   The AS OF clause attaches to BEGIN TRAN, as in the paper's example:
   Begin Tran AS OF "8/12/2004 10:15:20". *)

type literal =
  | L_int of int
  | L_string of string
  | L_bool of bool
  | L_float of float
  | L_null

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type condition =
  | C_compare of string * comparison * literal (* column op literal *)
  | C_and of condition * condition
  | C_or of condition * condition
  | C_not of condition
  | C_true

type column_def = {
  cd_name : string;
  cd_type : string; (* resolved against Schema.type_of_name at execution *)
  cd_primary : bool;
}

type table_kind = K_conventional | K_immortal | K_snapshot

type statement =
  | Create_table of { kind : table_kind; name : string; columns : column_def list }
  | Alter_enable_snapshot of string
      (** ALTER TABLE t ENABLE SNAPSHOT — the paper's §4.1 Alter Table *)
  | Drop_table of string
  | Insert of { table : string; values : literal list }
  | Update of { table : string; assignments : (string * literal) list; where : condition }
  | Delete of { table : string; where : condition }
  | Select of { columns : string list option; (* None = * *) table : string; where : condition }
  | Select_history of { table : string; key : literal }
  | Begin_tran of { as_of : string option }
  | Commit_tran
  | Rollback_tran
  | Set_isolation of [ `Serializable | `Snapshot ]
  | Checkpoint_stmt
  | Metrics_stmt
  | Trace_stmt
  | Sessions_stmt
  | Locks_stmt

let pp_literal ppf = function
  | L_int i -> Fmt.int ppf i
  | L_string s ->
      (* escape embedded quotes, SQL style *)
      let buf = Buffer.create (String.length s + 2) in
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Fmt.pf ppf "'%s'" (Buffer.contents buf)
  | L_bool true -> Fmt.string ppf "TRUE"
  | L_bool false -> Fmt.string ppf "FALSE"
  | L_float f ->
      (* a decimal form the lexer reparses exactly for test-range floats *)
      Fmt.pf ppf "%.6f" f
  | L_null -> Fmt.string ppf "NULL"

(* Print a statement back to parseable SQL: the inverse of the parser, up
   to formatting (conditions are fully parenthesized to pin structure).
   Used by tools and by the parser round-trip property tests. *)

let pp_comparison ppf op =
  Fmt.string ppf
    (match op with Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp_condition ppf = function
  | C_true -> Fmt.string ppf "TRUE_COND" (* never printed: guarded below *)
  | C_compare (col, op, lit) ->
      Fmt.pf ppf "%s %a %a" col pp_comparison op pp_literal lit
  | C_and (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_condition a pp_condition b
  | C_or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_condition a pp_condition b
  | C_not c -> Fmt.pf ppf "(NOT %a)" pp_condition c

let pp_where ppf = function
  | C_true -> ()
  | c -> Fmt.pf ppf " WHERE %a" pp_condition c

let pp_statement ppf = function
  | Create_table { kind; name; columns } ->
      let kw =
        match kind with
        | K_immortal -> "IMMORTAL "
        | K_snapshot -> "SNAPSHOT "
        | K_conventional -> ""
      in
      Fmt.pf ppf "CREATE %sTABLE %s (%s)" kw name
        (String.concat ", "
           (List.map
              (fun cd ->
                cd.cd_name ^ " " ^ cd.cd_type ^ if cd.cd_primary then " PRIMARY KEY" else "")
              columns))
  | Alter_enable_snapshot name -> Fmt.pf ppf "ALTER TABLE %s ENABLE SNAPSHOT" name
  | Drop_table name -> Fmt.pf ppf "DROP TABLE %s" name
  | Insert { table; values } ->
      Fmt.pf ppf "INSERT INTO %s VALUES (%a)" table
        (Fmt.list ~sep:(Fmt.any ", ") pp_literal)
        values
  | Update { table; assignments; where } ->
      Fmt.pf ppf "UPDATE %s SET %s%a" table
        (String.concat ", "
           (List.map
              (fun (c, l) -> Fmt.str "%s = %a" c pp_literal l)
              assignments))
        pp_where where
  | Delete { table; where } -> Fmt.pf ppf "DELETE FROM %s%a" table pp_where where
  | Select { columns; table; where } ->
      Fmt.pf ppf "SELECT %s FROM %s%a"
        (match columns with None -> "*" | Some cs -> String.concat ", " cs)
        table pp_where where
  | Select_history { table; key } ->
      Fmt.pf ppf "SELECT HISTORY(%s, %a)" table pp_literal key
  | Begin_tran { as_of = None } -> Fmt.string ppf "BEGIN TRAN"
  | Begin_tran { as_of = Some ts } -> Fmt.pf ppf "BEGIN TRAN AS OF \"%s\"" ts
  | Commit_tran -> Fmt.string ppf "COMMIT TRAN"
  | Rollback_tran -> Fmt.string ppf "ROLLBACK TRAN"
  | Set_isolation `Serializable -> Fmt.string ppf "SET ISOLATION SERIALIZABLE"
  | Set_isolation `Snapshot -> Fmt.string ppf "SET ISOLATION SNAPSHOT"
  | Checkpoint_stmt -> Fmt.string ppf "CHECKPOINT"
  | Metrics_stmt -> Fmt.string ppf "METRICS"
  | Trace_stmt -> Fmt.string ppf "TRACE"
  | Sessions_stmt -> Fmt.string ppf "SESSIONS"
  | Locks_stmt -> Fmt.string ppf "LOCKS"

let statement_to_string s = Fmt.str "%a" pp_statement s
