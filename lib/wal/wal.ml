(* The write-ahead log.

   An append-only stream of checksummed frames over a log device:

   {v  frame := u32 payload_length | u32 crc32(payload) | payload  v}

   The LSN of a record is the byte offset of its frame in the stream; the
   LSN order is the total order of all logged actions.  The WAL object
   buffers appended frames in memory; [flush] makes the prefix up to a
   given LSN durable.  After a crash, [open_device] scans the durable
   stream, stops at the first incomplete or corrupt frame (a torn tail)
   and truncates it away.

   The buffer-pool's WAL-before-data rule calls [flush ~lsn:(page lsn)]
   before any page write, and commit calls [flush] at the commit record. *)

open Imdb_util
module M = Imdb_obs.Metrics

let frame_header = 8

module Device = struct
  type t = {
    size : unit -> int; (* durable bytes *)
    append : bytes -> unit; (* append durable bytes at the end *)
    read : pos:int -> len:int -> bytes;
    truncate : int -> unit; (* keep [0, n) *)
    sync : unit -> unit;
    close : unit -> unit;
  }

  let in_memory () =
    (* manually managed growable store: [read] must be O(len), not a copy
       of the whole log (recovery reads every frame individually) *)
    let store = ref (Bytes.create 4096) in
    let used = ref 0 in
    let ensure extra =
      if !used + extra > Bytes.length !store then begin
        let cap = ref (Bytes.length !store) in
        while !used + extra > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit !store 0 bigger 0 !used;
        store := bigger
      end
    in
    {
      size = (fun () -> !used);
      append =
        (fun b ->
          ensure (Bytes.length b);
          Bytes.blit b 0 !store !used (Bytes.length b);
          used := !used + Bytes.length b);
      read =
        (fun ~pos ~len ->
          if pos < 0 || len < 0 || pos + len > !used then
            failwith "Wal.Device.in_memory: read out of range";
          Bytes.sub !store pos len);
      truncate = (fun n -> if n < !used then used := n);
      sync = (fun () -> ());
      close = (fun () -> ());
    }

  let file ~path =
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    let size () = (Unix.fstat fd).Unix.st_size in
    {
      size;
      append =
        (fun b ->
          ignore (Unix.lseek fd 0 Unix.SEEK_END);
          let rec drain off =
            if off < Bytes.length b then
              drain (off + Unix.write fd b off (Bytes.length b - off))
          in
          drain 0);
      read =
        (fun ~pos ~len ->
          let b = Bytes.create len in
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          let rec fill off =
            if off < len then begin
              let n = Unix.read fd b off (len - off) in
              if n = 0 then failwith "Wal.Device.file: short read";
              fill (off + n)
            end
          in
          fill 0;
          b);
      truncate = (fun n -> Unix.ftruncate fd n);
      sync = (fun () -> Unix.fsync fd);
      close = (fun () -> Unix.close fd);
    }
end

type t = {
  device : Device.t;
  mutable durable_end : int64; (* bytes durable on the device *)
  mutable next_lsn : int64; (* end of log including the volatile tail *)
  mutable tail : (int64 * bytes) list; (* unflushed frames, newest first *)
  tail_index : (int64, bytes) Hashtbl.t; (* unflushed frames by LSN *)
  mutable pending : (int64 * (unit -> unit)) list;
      (* group-commit waiters (commit LSN, durability ack), newest first *)
  mutable metrics : M.t;
  mutable tracer : Imdb_obs.Tracer.t;
}

let set_metrics t m = t.metrics <- m
let set_tracer t tr = t.tracer <- tr

let frame_of payload =
  let len = Bytes.length payload in
  let b = Bytes.create (frame_header + len) in
  Codec.set_u32 b 0 len;
  Codec.set_u32 b 4 (Checksum.bytes_int payload);
  Codec.set_bytes b frame_header payload;
  b

(* Scan the durable stream from offset 0, returning the offset of the
   first invalid frame (= valid end of log). *)
let scan_valid_end (d : Device.t) =
  let total = d.size () in
  let rec go pos =
    if pos + frame_header > total then pos
    else
      let hdr = d.read ~pos ~len:frame_header in
      let len = Codec.get_u32 hdr 0 in
      let crc = Codec.get_u32 hdr 4 in
      if len = 0 || pos + frame_header + len > total then pos
      else
        let payload = d.read ~pos:(pos + frame_header) ~len in
        if Checksum.bytes_int payload <> crc then pos
        else go (pos + frame_header + len)
  in
  go 0

let open_device ?(metrics = M.null) device =
  let valid = scan_valid_end device in
  if valid < device.Device.size () then device.Device.truncate valid;
  {
    device;
    durable_end = Int64.of_int valid;
    next_lsn = Int64.of_int valid;
    tail = [];
    tail_index = Hashtbl.create 64;
    pending = [];
    metrics;
    tracer = Imdb_obs.Tracer.null;
  }

let next_lsn t = t.next_lsn
let flushed_lsn t = t.durable_end

let append t body =
  let payload = Log_record.encode body in
  let frame = frame_of payload in
  let lsn = t.next_lsn in
  t.tail <- (lsn, frame) :: t.tail;
  Hashtbl.replace t.tail_index lsn frame;
  t.next_lsn <- Int64.add t.next_lsn (Int64.of_int (Bytes.length frame));
  M.incr t.metrics M.log_appends;
  M.incr ~by:(Bytes.length frame) t.metrics M.log_bytes;
  M.observe t.metrics M.h_log_record_bytes (Bytes.length frame);
  lsn

(* Group commit: a committing transaction registers its commit LSN and a
   durability acknowledgment; the next flush that makes the record durable
   fires the ack.  Waiters share that flush's single append+sync. *)
let register_commit t ~lsn ~on_durable =
  if Int64.compare lsn t.durable_end < 0 then on_durable ()
  else t.pending <- (lsn, on_durable) :: t.pending

let pending_commits t = List.length t.pending

let drain_pending t =
  let durable, still =
    List.partition (fun (lsn, _) -> Int64.compare lsn t.durable_end < 0) t.pending
  in
  t.pending <- still;
  if durable <> [] then begin
    M.observe t.metrics M.h_group_commit_batch (List.length durable);
    Imdb_obs.Tracer.instant t.tracer "wal.group_commit"
      ~attrs:[ ("batch", string_of_int (List.length durable)) ];
    (* fire oldest-first: acknowledgment order follows commit order *)
    List.iter (fun (_, ack) -> ack ()) (List.rev durable)
  end

(* Make everything up to and including the record at [lsn] durable.  A
   record at a given LSN is durable iff [lsn < durable_end] (both are
   frame boundaries), so an already-durable request returns without
   touching the tail or the device; otherwise the whole buffered tail
   goes out in one append+sync and every group-commit waiter it covers
   is acknowledged. *)
let flush ?lsn t =
  let needed = match lsn with Some l -> l | None -> Int64.pred t.next_lsn in
  if Int64.compare needed t.durable_end < 0 then ()
  else begin
    if t.tail <> [] then
      Imdb_obs.Tracer.with_span t.tracer "wal.flush" (fun sp ->
          let frames = List.rev t.tail in
          let bytes =
            List.fold_left (fun acc (_, f) -> acc + Bytes.length f) 0 frames
          in
          List.iter (fun (_, frame) -> t.device.Device.append frame) frames;
          t.device.Device.sync ();
          t.tail <- [];
          Hashtbl.reset t.tail_index;
          t.durable_end <- t.next_lsn;
          M.incr t.metrics M.log_flushes;
          M.observe t.metrics M.h_log_flush_bytes bytes;
          Imdb_obs.Tracer.add_attr sp "bytes" (string_of_int bytes);
          Imdb_obs.Tracer.add_attr sp "frames"
            (string_of_int (List.length frames)));
    drain_pending t
  end

(* Drop the volatile tail: crash simulation.  Unacknowledged group-commit
   waiters are dropped unfired — their transactions were never durable. *)
let crash_volatile t =
  t.tail <- [];
  Hashtbl.reset t.tail_index;
  t.pending <- []

(* Iterate durable records from [from_lsn] (must be a frame boundary). *)
let iter_from t ~from_lsn f =
  let total = Int64.to_int t.durable_end in
  let rec go pos =
    if pos + frame_header <= total then begin
      let hdr = t.device.Device.read ~pos ~len:frame_header in
      let len = Codec.get_u32 hdr 0 in
      let payload = t.device.Device.read ~pos:(pos + frame_header) ~len in
      f (Int64.of_int pos) (Log_record.decode payload);
      go (pos + frame_header + len)
    end
  in
  go (Int64.to_int from_lsn)

(* Read the single record at [lsn] (durable or volatile). *)
let read_at t lsn =
  let pos = Int64.to_int lsn in
  if Int64.compare lsn t.durable_end >= 0 then
    match Hashtbl.find_opt t.tail_index lsn with
    | Some frame ->
        let len = Codec.get_u32 frame 0 in
        Log_record.decode (Bytes.sub frame frame_header len)
    | None -> failwith (Printf.sprintf "Wal.read_at: no record at lsn %Ld" lsn)
  else begin
    let hdr = t.device.Device.read ~pos ~len:frame_header in
    let len = Codec.get_u32 hdr 0 in
    Log_record.decode (t.device.Device.read ~pos:(pos + frame_header) ~len)
  end

let close t =
  flush t;
  t.device.Device.close ()
