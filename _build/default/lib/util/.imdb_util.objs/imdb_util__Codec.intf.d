lib/util/codec.mli:
