(** A synthetic road network for the moving-objects generator — the
    stand-in for Brinkhoff's network-based generator over the Seattle
    map: a connected, jittered grid with irregular topology and speed
    classes, routed by Dijkstra. *)

type node = { nid : int; x : float; y : float }

type t

val generate : ?cols:int -> ?rows:int -> ?removal:float -> Imdb_util.Rng.t -> t
(** A [cols] x [rows] grid; [removal] is the probability that a
    non-bridging edge is dropped (connectivity is guaranteed). *)

val node : t -> int -> node
val size : t -> int
val edge_count : t -> int

val shortest_path : t -> src:int -> dst:int -> int list option
(** Dijkstra by travel time; the node list from [src] to [dst]. *)

val path_length : t -> int list -> float

val position_along : t -> int list -> travelled:float -> float * float
(** Interpolated position after covering [travelled] distance units. *)
