test/test_sql.ml: Alcotest Helpers Imdb_clock Imdb_core Imdb_sql List Printf
