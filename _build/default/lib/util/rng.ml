(* Deterministic pseudo-random number generator (splitmix64).

   Workload generation and failure injection must be reproducible across
   runs and platforms, so we avoid [Random] (whose sequence is not part of
   the stdlib compatibility contract) and implement splitmix64, which has
   a single 64-bit state and good statistical quality for this use. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound).  Keep 62 bits so the value fits OCaml's 63-bit
   int without wrapping negative. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Exponentially distributed float with the given mean (for inter-arrival
   style quantities in the workload generator). *)
let exponential t ~mean =
  let u = float t in
  -.mean *. log (1.0 -. u)

let string t len =
  String.init len (fun _ -> Char.chr (int_in t (Char.code 'a') (Char.code 'z')))
