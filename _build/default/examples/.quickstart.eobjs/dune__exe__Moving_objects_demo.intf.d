examples/moving_objects_demo.mli:
