(* Lock manager.

   Strict two-phase locking for the serializable path (the paper's base
   engine supports "serializable, via fine grained locking"); snapshot
   isolation transactions bypass read locks entirely, which is the point
   of the versioning machinery.

   Resources are hierarchical: table locks in intention modes, record
   locks in S/X.  The lock table is sharded by resource hash; each shard
   carries its own mutex and condition variable, so sessions on different
   OCaml domains contending for different resources never serialize on
   one lock.  Two acquisition disciplines share the same grant logic:

   - fail fast ([acquire] / [acquire_exn]): a conflicting request never
     parks — it returns [Would_block] (recording its wait-for edge) or
     raises, exactly the protocol the single-session engine has always
     used for logically interleaved transactions;

   - blocking ([acquire_wait]): the requester parks on the shard's
     condition variable until a release makes the grant possible, a
     wait-for cycle is detected at edge insert (raising [Deadlock]), or
     the deadline passes (raising [Lock_timeout] — timeout-based victim
     selection, the waiter is the victim).  A lazily-spawned global
     ticker thread bounds the time between deadline checks, since the
     stdlib condition variable has no timed wait.

   The wait-for graph and the per-transaction held-resource index are
   global (cross-shard) hash-set-backed structures under their own
   mutexes, always taken strictly inside a shard mutex — never the other
   way around — so the lock order is acyclic by construction. *)

module M = Imdb_obs.Metrics

type resource = Table of int | Record of int * string (* table_id, key *)

let pp_resource ppf = function
  | Table id -> Fmt.pf ppf "table:%d" id
  | Record (id, k) -> Fmt.pf ppf "rec:%d/%S" id k

type mode = IS | IX | S | X

let pp_mode ppf m =
  Fmt.string ppf (match m with IS -> "IS" | IX -> "IX" | S -> "S" | X -> "X")

(* Standard multigranularity compatibility matrix. *)
let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S) | (IX | S), IS -> true
  | IX, IX -> true
  | S, S -> true
  | _, X | X, _ -> false
  | IX, S | S, IX -> false

(* Mode strength for upgrades: the least upper bound. *)
let lub a b =
  match (a, b) with
  | X, _ | _, X -> X
  | S, IX | IX, S -> X (* SIX collapsed to X for simplicity *)
  | S, _ | _, S -> S
  | IX, _ | _, IX -> IX
  | IS, IS -> IS

type entry = { holders : (Imdb_clock.Tid.t, mode) Hashtbl.t }

type shard = {
  sh_mu : Mutex.t;
  sh_cond : Condition.t; (* released locks broadcast here *)
  sh_table : (resource, entry) Hashtbl.t;
}

let shard_count = 16 (* power of two: shard index is a mask of the hash *)

(* One blocked request: what it wants and whom it waits for.  Keeping
   the resource/mode on the node (not just the edge set) lets the
   introspection dump say what each waiter is parked on, and lets
   [release_all] purge the reverse edges of exactly the resources it
   releases. *)
type waiter = {
  w_res : resource;
  w_mode : mode;
  w_set : (Imdb_clock.Tid.t, unit) Hashtbl.t;
}

type t = {
  shards : shard array;
  held_mu : Mutex.t;
  held : (Imdb_clock.Tid.t, (resource, unit) Hashtbl.t) Hashtbl.t;
      (* per-transaction held-resource sets (strict 2PL release index) *)
  waits_mu : Mutex.t;
  waits : (Imdb_clock.Tid.t, waiter) Hashtbl.t;
      (* wait-for edges recorded on blocked requests, for deadlock
         detection and the introspection dump *)
  mutable registered : bool; (* shard condvars known to the ticker *)
  mutable metrics : M.t;
  mutable tracer : Imdb_obs.Tracer.t;
}

let create () =
  {
    shards =
      Array.init shard_count (fun _ ->
          {
            sh_mu = Mutex.create ();
            sh_cond = Condition.create ();
            sh_table = Hashtbl.create 64;
          });
    held_mu = Mutex.create ();
    held = Hashtbl.create 64;
    waits_mu = Mutex.create ();
    waits = Hashtbl.create 16;
    registered = false;
    metrics = M.null;
    tracer = Imdb_obs.Tracer.null;
  }

let set_metrics t m = t.metrics <- m
let set_tracer t tr = t.tracer <- tr
let shard_of t res = t.shards.(Hashtbl.hash res land (shard_count - 1))

type outcome = Granted | Would_block of Imdb_clock.Tid.t list

exception Deadlock of Imdb_clock.Tid.t
exception Conflict of { tid : Imdb_clock.Tid.t; blockers : Imdb_clock.Tid.t list }
exception Lock_timeout of { tid : Imdb_clock.Tid.t; res : resource }

(* --- the wake-up ticker --------------------------------------------- *)

(* [Condition] has no timed wait, so a parked waiter cannot by itself
   notice a passed deadline.  One process-wide ticker thread broadcasts
   every registered shard condvar while any waiter is parked anywhere;
   woken waiters re-check their grant and their deadline.  Spawned on the
   first blocking wait in the process — engines that never block never
   pay for the thread. *)
let ticker_mu = Mutex.create ()
let ticker_conds : Condition.t list ref = ref []
let ticker_running = ref false
let waiters_total = Atomic.make 0

(* The ticker must EXIT the moment no one is parked: a domain cannot
   terminate while a thread it spawned is still running, so a
   forever-looping ticker created from a worker domain (whichever domain
   parks first) would make that domain unjoinable.  The liveness
   handshake: a parker increments [waiters_total] {e before} ensuring a
   ticker exists, and the ticker re-checks the count under [ticker_mu]
   before retiring — a racing parker either finds it still running or
   finds [ticker_running] already false and spawns a fresh one. *)
let rec ticker_loop () =
  Thread.delay 0.002;
  Mutex.lock ticker_mu;
  let conds = !ticker_conds in
  let live = Atomic.get waiters_total > 0 in
  if not live then ticker_running := false;
  Mutex.unlock ticker_mu;
  if live then begin
    List.iter Condition.broadcast conds;
    ticker_loop ()
  end

let ensure_ticker () =
  Mutex.lock ticker_mu;
  if not !ticker_running then begin
    ticker_running := true;
    ignore (Thread.create ticker_loop ())
  end;
  Mutex.unlock ticker_mu

let register_with_ticker t =
  if not t.registered then begin
    Mutex.lock ticker_mu;
    if not t.registered then begin
      Array.iter (fun sh -> ticker_conds := sh.sh_cond :: !ticker_conds) t.shards;
      t.registered <- true
    end;
    Mutex.unlock ticker_mu
  end

(* --- held / waits indexes (hash-set backed) -------------------------- *)

(* Both indexes are innermost in the lock order: they are taken while a
   shard mutex is held, and never hold anything else themselves. *)

let note_held t tid res =
  Mutex.lock t.held_mu;
  (match Hashtbl.find_opt t.held tid with
  | Some set -> Hashtbl.replace set res ()
  | None ->
      let set = Hashtbl.create 8 in
      Hashtbl.replace set res ();
      Hashtbl.add t.held tid set);
  Mutex.unlock t.held_mu

let clear_waits t tid =
  Mutex.lock t.waits_mu;
  Hashtbl.remove t.waits tid;
  Mutex.unlock t.waits_mu

(* Extend the wait-for graph with edges tid->blockers unless doing so
   closes a cycle reachable from [tid]; returns [true] on a cycle (and
   leaves the graph unchanged).  Hash-set-backed BFS: visited set and
   successor sets are hashtables, so the check stays near-linear however
   many locks are held. *)
let note_wait_or_cycle t tid ~res ~mode blockers =
  Mutex.lock t.waits_mu;
  let seen : (Imdb_clock.Tid.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let frontier = ref blockers in
  let cycle = ref false in
  while (not !cycle) && !frontier <> [] do
    match !frontier with
    | [] -> ()
    | x :: rest ->
        frontier := rest;
        if Imdb_clock.Tid.equal x tid then cycle := true
        else if not (Hashtbl.mem seen x) then begin
          Hashtbl.add seen x ();
          match Hashtbl.find_opt t.waits x with
          | Some w -> Hashtbl.iter (fun y () -> frontier := y :: !frontier) w.w_set
          | None -> ()
        end
  done;
  if not !cycle then begin
    let set = Hashtbl.create 4 in
    List.iter (fun b -> Hashtbl.replace set b ()) blockers;
    Hashtbl.replace t.waits tid { w_res = res; w_mode = mode; w_set = set }
  end;
  Mutex.unlock t.waits_mu;
  !cycle

(* --- grant logic (callers hold the shard mutex) ---------------------- *)

let entry_of sh res =
  match Hashtbl.find_opt sh.sh_table res with
  | Some e -> e
  | None ->
      let e = { holders = Hashtbl.create 4 } in
      Hashtbl.add sh.sh_table res e;
      e

(* The requested (upgrade-merged) mode and the incompatible holders. *)
let probe sh tid res mode =
  let e = entry_of sh res in
  let requested =
    match Hashtbl.find_opt e.holders tid with Some m -> lub m mode | None -> mode
  in
  let conflicts =
    Hashtbl.fold
      (fun other m acc ->
        if Imdb_clock.Tid.equal other tid then acc
        else if compatible requested m then acc
        else other :: acc)
      e.holders []
  in
  (e, requested, conflicts)

let grant t e tid res requested =
  Hashtbl.replace e.holders tid requested;
  note_held t tid res;
  clear_waits t tid;
  M.incr t.metrics M.lock_acquires

(* --- fail-fast acquisition ------------------------------------------ *)

let acquire t tid res mode =
  let sh = shard_of t res in
  Mutex.lock sh.sh_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.sh_mu)
    (fun () ->
      let e, requested, conflicts = probe sh tid res mode in
      match conflicts with
      | [] ->
          grant t e tid res requested;
          Granted
      | blockers ->
          M.incr t.metrics M.lock_conflicts;
          if note_wait_or_cycle t tid ~res ~mode blockers then begin
            M.incr t.metrics M.lock_deadlocks;
            raise (Deadlock tid)
          end;
          Would_block blockers)

(* Acquire or raise: the engine's normal path, where a block is surfaced
   to the caller as an exception (no thread parks).  Because the
   requester does not actually wait, its wait-for edge is erased before
   raising — otherwise stale edges would accumulate into phantom
   deadlocks.  True waiting callers use [acquire] (keeping their edge) or
   [acquire_wait]. *)
let acquire_exn t tid res mode =
  match acquire t tid res mode with
  | Granted -> ()
  | Would_block blockers ->
      clear_waits t tid;
      raise (Conflict { tid; blockers })

(* --- blocking acquisition ------------------------------------------- *)

let acquire_wait ?(timeout_us = 100_000) t tid res mode =
  let sh = shard_of t res in
  Mutex.lock sh.sh_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.sh_mu)
    (fun () ->
      let e0, requested0, conflicts0 = probe sh tid res mode in
      match conflicts0 with
      | [] ->
          grant t e0 tid res requested0;
          0
      | first_blockers ->
          M.incr t.metrics M.lock_conflicts;
          register_with_ticker t;
          let started = Unix.gettimeofday () in
          let deadline = started +. (float_of_int timeout_us /. 1e6) in
          let waited () =
            int_of_float ((Unix.gettimeofday () -. started) *. 1e6)
          in
          let finish_wait w = M.observe t.metrics M.h_lock_wait_us w in
          Imdb_obs.Tracer.with_span t.tracer "lock.wait"
            ~attrs:
              [
                ("res", Fmt.str "%a" pp_resource res);
                ("mode", Fmt.str "%a" pp_mode mode);
              ]
          @@ fun _ ->
          let rec loop blockers =
            if note_wait_or_cycle t tid ~res ~mode blockers then begin
              M.incr t.metrics M.lock_deadlocks;
              finish_wait (waited ());
              raise (Deadlock tid)
            end;
            if Unix.gettimeofday () >= deadline then begin
              clear_waits t tid;
              M.incr t.metrics M.lock_timeouts;
              finish_wait (waited ());
              raise (Lock_timeout { tid; res })
            end;
            Atomic.incr waiters_total;
            ensure_ticker ();
            Fun.protect
              ~finally:(fun () -> Atomic.decr waiters_total)
              (fun () -> Condition.wait sh.sh_cond sh.sh_mu);
            let e, requested, conflicts = probe sh tid res mode in
            match conflicts with
            | [] ->
                grant t e tid res requested;
                let w = waited () in
                finish_wait w;
                w
            | blockers -> loop blockers
          in
          loop first_blockers)

(* --- queries and release --------------------------------------------- *)

let holds t tid res =
  let sh = shard_of t res in
  Mutex.lock sh.sh_mu;
  let r =
    match Hashtbl.find_opt sh.sh_table res with
    | None -> None
    | Some e -> Hashtbl.find_opt e.holders tid
  in
  Mutex.unlock sh.sh_mu;
  r

(* Strict 2PL: all locks released together at commit/abort.  Each touched
   shard is broadcast so parked waiters re-probe.

   While a resource's shard mutex is held, the releaser also erases
   itself (under [waits_mu], the inner lock) from the blocker sets of
   waiters parked on that resource.  Edge creation holds the same shard
   mutex, so a wait-for edge and its target's holdership now change
   atomically with respect to anyone holding that shard — which is what
   makes [dump] (all shards + [waits_mu]) internally consistent: every
   blocker named by a waiter edge is a current holder of the waited-on
   resource in the same dump. *)
let release_all t tid =
  Mutex.lock t.held_mu;
  let resources =
    match Hashtbl.find_opt t.held tid with
    | None -> []
    | Some set ->
        Hashtbl.remove t.held tid;
        Hashtbl.fold (fun res () acc -> res :: acc) set []
  in
  Mutex.unlock t.held_mu;
  List.iter
    (fun res ->
      let sh = shard_of t res in
      Mutex.lock sh.sh_mu;
      (match Hashtbl.find_opt sh.sh_table res with
      | None -> ()
      | Some e ->
          Hashtbl.remove e.holders tid;
          if Hashtbl.length e.holders = 0 then Hashtbl.remove sh.sh_table res);
      Mutex.lock t.waits_mu;
      Hashtbl.iter
        (fun _ w -> if w.w_res = res then Hashtbl.remove w.w_set tid)
        t.waits;
      Mutex.unlock t.waits_mu;
      Condition.broadcast sh.sh_cond;
      Mutex.unlock sh.sh_mu)
    resources;
  clear_waits t tid

let held_by t tid =
  Mutex.lock t.held_mu;
  let r =
    match Hashtbl.find_opt t.held tid with
    | Some set -> Hashtbl.fold (fun res () acc -> res :: acc) set []
    | None -> []
  in
  Mutex.unlock t.held_mu;
  r

let active_locks t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sh_mu;
      let acc =
        Hashtbl.fold
          (fun res e acc ->
            Hashtbl.fold (fun tid m acc -> (res, tid, m) :: acc) e.holders acc)
          sh.sh_table acc
      in
      Mutex.unlock sh.sh_mu;
      acc)
    [] t.shards

(* --- introspection dump ---------------------------------------------- *)

type dump = {
  d_holders : (resource * Imdb_clock.Tid.t * mode) list;
  d_waiters : (Imdb_clock.Tid.t * resource * mode * Imdb_clock.Tid.t list) list;
}

(* One consistent cut across all 16 shards: every shard mutex is taken in
   array order (a total order no other thread competes with — everyone
   else holds at most one shard), then [waits_mu], which is strictly
   inside any shard in the global lock order.  Because edge creation and
   the release-time reverse-edge purge both run under the waited-on
   resource's shard mutex, no edge can appear or lose its holder while
   the dump holds every shard: each waiter's blockers are holders of the
   waited-on resource in this same cut. *)
let dump t =
  Array.iter (fun sh -> Mutex.lock sh.sh_mu) t.shards;
  Mutex.lock t.waits_mu;
  let holders =
    Array.fold_left
      (fun acc sh ->
        Hashtbl.fold
          (fun res e acc ->
            Hashtbl.fold (fun tid m acc -> (res, tid, m) :: acc) e.holders acc)
          sh.sh_table acc)
      [] t.shards
  in
  let waiters =
    Hashtbl.fold
      (fun tid w acc ->
        let blockers = Hashtbl.fold (fun b () acc -> b :: acc) w.w_set [] in
        (tid, w.w_res, w.w_mode, List.sort Imdb_clock.Tid.compare blockers)
        :: acc)
      t.waits []
  in
  Mutex.unlock t.waits_mu;
  Array.iter (fun sh -> Mutex.unlock sh.sh_mu) t.shards;
  {
    d_holders = List.sort compare holders;
    d_waiters = List.sort compare waiters;
  }

let resource_json res =
  let module J = Imdb_obs.Json in
  match res with
  | Table id -> J.Obj [ ("kind", J.String "table"); ("table", J.Int id) ]
  | Record (id, k) ->
      J.Obj
        [
          ("kind", J.String "record");
          ("table", J.Int id);
          ("key", J.String (String.escaped k));
        ]

let dump_json t =
  let module J = Imdb_obs.Json in
  let d = dump t in
  let tid_json tid = J.String (Imdb_clock.Tid.to_string tid) in
  J.Obj
    [
      ( "holders",
        J.List
          (List.map
             (fun (res, tid, m) ->
               J.Obj
                 [
                   ("resource", resource_json res);
                   ("tid", tid_json tid);
                   ("mode", J.String (Fmt.str "%a" pp_mode m));
                 ])
             d.d_holders) );
      ( "waiters",
        J.List
          (List.map
             (fun (tid, res, m, blockers) ->
               J.Obj
                 [
                   ("tid", tid_json tid);
                   ("resource", resource_json res);
                   ("mode", J.String (Fmt.str "%a" pp_mode m));
                   ("waits_for", J.List (List.map tid_json blockers));
                 ])
             d.d_waiters) );
    ]
