lib/core/txnmgr.ml: Bytes Catalog Char Engine Hashtbl Imdb_btree Imdb_buffer Imdb_clock Imdb_lock Imdb_storage Imdb_tstamp Imdb_util Imdb_version Imdb_wal Int64 Meta Table
