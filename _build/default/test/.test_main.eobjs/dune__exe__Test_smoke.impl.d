test/test_smoke.ml: Alcotest Helpers Imdb_clock Imdb_core Imdb_util Int64 List Printf
