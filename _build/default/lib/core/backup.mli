(** Queryable backup (paper Section 7.2, after [22]).

    The engine's historical pages are already an always-installed,
    incremental, queryable backup of every past state; this module adds
    extraction of a consistent AS OF state into a separate database — an
    off-machine copy that is itself a full Immortal DB database. *)

type report = {
  bk_tables : int;
  bk_rows : int;
  bk_as_of : Imdb_clock.Timestamp.t;
}

val extract : src:Db.t -> dest:Db.t -> as_of:Imdb_clock.Timestamp.t -> report
(** Copy every immortal table's AS OF state into [dest], one atomic
    loading transaction per table. *)

val verify : src:Db.t -> dest:Db.t -> as_of:Imdb_clock.Timestamp.t -> int
(** Compare [dest]'s current state against [src]'s AS OF state both ways;
    returns rows compared.  @raise Failure on divergence. *)
