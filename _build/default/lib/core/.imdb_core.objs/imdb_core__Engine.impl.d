lib/core/engine.ml: Bytes Catalog Fun Hashtbl Imdb_btree Imdb_buffer Imdb_clock Imdb_lock Imdb_storage Imdb_tsb Imdb_tstamp Imdb_util Imdb_version Imdb_wal List Logs Meta Option
