(* Interleaved concurrent transactions under snapshot isolation, checked
   against a reference model.

   A deterministic scheduler drives several logical sessions through
   random scripts of begin/read/write/commit/abort.  The model tracks the
   committed state (keyed by commit order), each transaction's snapshot,
   and its own writes; every read is validated against
   snapshot-plus-own-writes, and write conflicts must occur exactly when
   the engine's rules say: another active writer holds the record (lock
   conflict), or a competing writer committed after our snapshot
   (first-committer-wins). *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema

type session = {
  mutable txn : Db.txn option;
  mutable snapshot : (int * string) list; (* committed state at begin *)
  mutable own : (int * string option) list; (* own writes, newest first *)
  id : int;
}

let lookup_own s k = List.assoc_opt k s.own
let lookup_snap s k = List.assoc_opt k s.snapshot

let run_script ~seed ~steps =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  (* seed data *)
  let committed = ref [] in
  for k = 0 to 7 do
    tick clock;
    ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row k "init")));
    committed := (k, "init") :: !committed
  done;
  let rng = Imdb_util.Rng.create seed in
  let sessions = Array.init 4 (fun id -> { txn = None; snapshot = []; own = []; id }) in
  (* which session (if any) currently has an uncommitted write on a key *)
  let writer_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let release_writes s =
    Hashtbl.iter
      (fun k sid -> if sid = s.id then Hashtbl.remove writer_of k)
      (Hashtbl.copy writer_of)
  in
  for step = 1 to steps do
    let s = sessions.(Imdb_util.Rng.int rng 4) in
    match s.txn with
    | None ->
        (* begin a snapshot transaction *)
        tick clock;
        s.txn <- Some (Db.begin_txn ~isolation:Db.Snapshot_isolation db);
        s.snapshot <- !committed;
        s.own <- []
    | Some txn -> (
        match Imdb_util.Rng.int rng 10 with
        | 0 | 1 ->
            (* commit *)
            ignore (Db.commit db txn);
            List.iter
              (fun (k, v) ->
                committed := (k, Option.value v ~default:"__deleted__")
                             :: List.remove_assoc k !committed;
                if v = None then committed := List.remove_assoc k !committed)
              (List.rev s.own);
            release_writes s;
            s.txn <- None
        | 2 ->
            (* abort *)
            Db.abort db txn;
            release_writes s;
            s.txn <- None
        | 3 | 4 | 5 | 6 -> (
            (* read and validate against snapshot + own writes *)
            let k = Imdb_util.Rng.int rng 8 in
            let got =
              match Db.get_row db txn ~table:"t" ~key:(S.V_int k) with
              | Some [ _; S.V_string v ] -> Some v
              | Some _ -> Alcotest.fail "bad row"
              | None -> None
            in
            let expect =
              match lookup_own s k with
              | Some v -> v
              | None -> lookup_snap s k
            in
            if got <> expect then
              Alcotest.failf "step %d session %d key %d: read %s, expected %s" step
                s.id k
                (Option.value got ~default:"-")
                (Option.value expect ~default:"-"))
        | _ -> (
            (* write (update or delete) *)
            let k = Imdb_util.Rng.int rng 8 in
            let deleting = Imdb_util.Rng.int rng 5 = 0 in
            let v = Printf.sprintf "s%d@%d" s.id step in
            (* the model's conflict prediction *)
            let other_active_writer =
              match Hashtbl.find_opt writer_of k with
              | Some sid when sid <> s.id -> true
              | _ -> false
            in
            let committed_after_snapshot =
              (* the key's committed value changed since our snapshot *)
              List.assoc_opt k !committed <> lookup_snap s k
              ||
              (* or it was re-committed with the same value by someone
                 else after our snapshot: undetectable from values alone,
                 so the model treats value-equality as no-conflict; the
                 generator makes all values unique to avoid ambiguity *)
              false
            in
            (* returns whether an engine write was actually attempted —
               deletes of keys invisible to this transaction are skipped,
               and then no conflict assertion applies *)
            let attempt () =
              if deleting then (
                let visible =
                  match lookup_own s k with
                  | Some (Some _) -> true
                  | Some None -> false
                  | None -> lookup_snap s k <> None
                in
                if visible then begin
                  Db.delete_row db txn ~table:"t" ~key:(S.V_int k);
                  s.own <- (k, None) :: s.own;
                  Hashtbl.replace writer_of k s.id;
                  true
                end
                else false)
              else begin
                Db.upsert_row db txn ~table:"t" (row k v);
                s.own <- (k, Some v) :: s.own;
                Hashtbl.replace writer_of k s.id;
                true
              end
            in
            match attempt () with
            | attempted ->
                if attempted && other_active_writer then
                  Alcotest.failf "step %d: write granted over active writer on key %d"
                    step k;
                if attempted && committed_after_snapshot then
                  Alcotest.failf
                    "step %d: first-committer-wins violated on key %d (no conflict raised)"
                    step k
            | exception Imdb_lock.Lock_manager.Conflict _ ->
                if not other_active_writer then
                  Alcotest.failf "step %d: spurious lock conflict on key %d" step k
            | exception Imdb_core.Table.Write_conflict _ ->
                (* the statement failed but the X lock, taken before
                   validation, is held until transaction end (strict 2PL
                   with no statement-level rollback) *)
                Hashtbl.replace writer_of k s.id;
                if not committed_after_snapshot then
                  Alcotest.failf "step %d: spurious write conflict on key %d" step k))
  done;
  (* drain: abort everything still open, then validate the final state *)
  Array.iter
    (fun s ->
      match s.txn with
      | Some txn ->
          (try Db.abort db txn with E.Txn_finished -> ());
          s.txn <- None
      | None -> ())
    sessions;
  Db.exec db (fun txn ->
      List.iter
        (fun r ->
          match r with
          | [ S.V_int k; S.V_string v ] ->
              if List.assoc_opt k !committed <> Some v then
                Alcotest.failf "final state: key %d has %s, model says %s" k v
                  (Option.value (List.assoc_opt k !committed) ~default:"-")
          | _ -> ())
        (Db.scan_rows db txn ~table:"t"));
  Db.close db

let test_many_seeds () =
  List.iter (fun seed -> run_script ~seed ~steps:300) [ 1; 7; 42; 99; 123; 2024 ]

let suite = [ Alcotest.test_case "SI interleaving vs model" `Quick test_many_seeds ]
