(* Operations tour: the administrative features around the engine —
   ALTER TABLE ENABLE SNAPSHOT (paper §4.1), checkpoints and PTT garbage
   collection (§2.2), vacuum (§2.2's remedy for crash-orphaned timestamp
   entries), and queryable backup (§7.2).

     dune exec examples/operations_tour.exe *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module Sql = Imdb_sql.Executor

let ptt_count db = Imdb_tstamp.Ptt.count (E.ptt_exn (Db.engine db))

let () =
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_memory ~clock () in
  let s = Sql.make_session db in
  let exec src =
    List.iter (fun r -> Fmt.pr "  %a@." Sql.pp_result r) (Sql.exec_string s src)
  in
  let tick () = Imdb_clock.Clock.advance clock 20L in

  Fmt.pr "--- 1. a conventional table gains snapshot versioning (ALTER, paper 4.1)@.";
  exec "CREATE TABLE sensors (id INT PRIMARY KEY, reading INT)";
  tick ();
  exec "INSERT INTO sensors VALUES (1, 20)";
  exec "INSERT INTO sensors VALUES (2, 21)";
  exec "ALTER TABLE sensors ENABLE SNAPSHOT";
  (* snapshot readers are now stable under concurrent updates *)
  let reader = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  tick ();
  exec "UPDATE sensors SET reading = 99 WHERE id = 1";
  (match Db.get_row db reader ~table:"sensors" ~key:(S.V_int 1) with
  | Some [ _; S.V_int r ] -> Fmt.pr "  snapshot reader still sees reading=%d@." r
  | _ -> ());
  ignore (Db.commit db reader);

  Fmt.pr "@.--- 2. the persistent timestamp table and its garbage collection@.";
  exec "CREATE IMMORTAL TABLE journal (id INT PRIMARY KEY, note VARCHAR)";
  for i = 1 to 200 do
    tick ();
    Db.with_txn db (fun txn ->
        Db.upsert_row db txn ~table:"journal"
          [ S.V_int (i mod 10); S.V_string (Printf.sprintf "note %d" i) ])
  done;
  Fmt.pr "  after 200 commits, PTT holds %d mappings@." (ptt_count db);
  Db.checkpoint db;
  Db.checkpoint db;
  Fmt.pr "  after two checkpoints (stamping made durable): %d@." (ptt_count db);

  Fmt.pr "@.--- 3. a crash orphans entries; vacuum collects them (paper 2.2)@.";
  (* fresh traffic whose reference counts have not drained yet... *)
  for i = 201 to 300 do
    tick ();
    Db.with_txn db (fun txn ->
        Db.upsert_row db txn ~table:"journal"
          [ S.V_int (i mod 10); S.V_string (Printf.sprintf "note %d" i) ])
  done;
  Fmt.pr "  100 more commits, then a crash before any checkpoint...@.";
  let db = Db.crash_and_reopen ~clock db in
  Fmt.pr "  after recovery, PTT holds %d (the counts were volatile)@." (ptt_count db);
  Db.checkpoint db;
  Db.checkpoint db;
  Fmt.pr "  checkpoints cannot collect the orphans: %d@." (ptt_count db);
  let removed = Db.vacuum db in
  Fmt.pr "  vacuum forced timestamping to completion: %d collected, %d left@." removed
    (ptt_count db);

  Fmt.pr "@.--- 4. queryable backup (paper 7.2)@.";
  let cut = Imdb_clock.Clock.last_issued clock in
  tick ();
  Db.with_txn db (fun txn ->
      Db.upsert_row db txn ~table:"journal" [ S.V_int 1; S.V_string "post-backup" ]);
  let dest = Db.open_memory () in
  let report = Imdb_core.Backup.extract ~src:db ~dest ~as_of:cut in
  let verified = Imdb_core.Backup.verify ~src:db ~dest ~as_of:cut in
  Fmt.pr "  extracted %d tables / %d rows as of the cut; %d rows verified@."
    report.Imdb_core.Backup.bk_tables report.Imdb_core.Backup.bk_rows verified;
  (* the backup is itself a live immortal database *)
  Db.with_txn dest (fun txn ->
      Db.upsert_row dest txn ~table:"journal" [ S.V_int 1; S.V_string "edited in backup" ]);
  Db.exec dest (fun txn ->
      Fmt.pr "  backup's own history of id=1 now has %d versions@."
        (List.length (Db.history_rows dest txn ~table:"journal" ~key:(S.V_int 1))));
  Db.close dest;
  Db.close db;
  Fmt.pr "@.done.@."
