(* parscan: parallel AS OF scans — domain fan-out over the histcache.

   One moving-objects history is built per parallelism setting (identical
   seed, identical logical clock), flushed to stable storage, and then
   probed with full-table AS OF scans at several depths into history.
   At [scan_parallelism > 1] the historical page work fans out across
   worker domains, served from the immutable-history cache instead of
   the buffer pool.

   The JSON carries only deterministic quantities: row/page/version
   counts are identical at every parallelism (the parallel path's
   accounting mirrors the serial path's), and the histcache hit/miss
   split is fixed by construction — a miss is resolved entirely under
   the shard lock, so each unique page misses exactly once no matter how
   many workers race for it.  Wall time (and the speedup it shows) is
   printed for the operator but never written to the JSON.

   The fallback demo scans *without* flushing first: the history pages
   exist only as dirty frames in the buffer pool, stable storage cannot
   serve them, and every historical range must bounce back to the
   coordinating domain — exercising the correctness escape hatch and
   counting one fallback per historical range, deterministically. *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module M = Imdb_obs.Metrics
module Driver = Imdb_workload.Driver
module Mo = Imdb_workload.Moving_objects

let depths = List.init 20 (fun i -> 5 * (i + 1))  (* 5%, 10%, ..., 100% *)
let parallelisms = [ 1; 2; 4 ]

let load ~parallelism ~pool_capacity ~inserts ~total =
  let config =
    {
      E.default_config with
      E.tsb_enabled = false;
      E.page_size = 4096;
      pool_capacity;
      scan_parallelism = parallelism;
      histcache_capacity = 8192;
    }
  in
  let db, clock = Driver.fresh_moving_objects ~config ~mode:Db.Immortal () in
  let events = Mo.generate ~seed:7 ~inserts ~total () in
  let result = Driver.run_events ~clock db ~table:"MovingObjects" events in
  let n = List.length result.Driver.rr_commit_ts in
  let probes =
    List.map
      (fun pc -> (pc, List.nth result.Driver.rr_commit_ts (min (n - 1) (pc * n / 100))))
      depths
  in
  (db, probes)

type series = {
  s_parallelism : int;
  s_rows : int;
  s_pages : int;
  s_versions : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_fallbacks : int;
  s_elapsed : float;  (* printed only, never emitted *)
}

let scan_probes db probes =
  let rows = ref 0 in
  List.iter
    (fun (_pc, ts) ->
      Db.as_of db ts (fun txn ->
          Db.scan db txn ~table:"MovingObjects" (fun _ _ -> incr rows)))
    probes;
  !rows

let run_series ~parallelism ~inserts ~total =
  let db, probes = load ~parallelism ~pool_capacity:48 ~inserts ~total in
  (* Workers read stable storage only: put every history page there. *)
  Imdb_buffer.Buffer_pool.flush_all (Db.engine db).E.pool;
  let m = Db.metrics db in
  let before = M.snapshot m in
  let t0 = Unix.gettimeofday () in
  let rows = scan_probes db probes in
  let elapsed = Unix.gettimeofday () -. t0 in
  let d = M.diff ~before ~after:(M.snapshot m) in
  let get name = Option.value ~default:0 (List.assoc_opt name d) in
  let s =
    {
      s_parallelism = parallelism;
      s_rows = rows;
      s_pages = get M.asof_pages;
      s_versions = get M.asof_versions;
      s_hits = get M.histcache_hits;
      s_misses = get M.histcache_misses;
      s_evictions = get M.histcache_evictions;
      s_fallbacks = get M.scan_parallel_fallbacks;
      s_elapsed = elapsed;
    }
  in
  Db.close db;
  s

(* Unflushed history: every fan-out range falls back to the coordinator. *)
let run_fallback_demo ~inserts ~total =
  let db, probes = load ~parallelism:2 ~pool_capacity:8192 ~inserts ~total in
  let m = Db.metrics db in
  let before = M.snapshot m in
  let rows = scan_probes db probes in
  let d = M.diff ~before ~after:(M.snapshot m) in
  let get name = Option.value ~default:0 (List.assoc_opt name d) in
  let fallbacks = get M.scan_parallel_fallbacks in
  Db.close db;
  (rows, fallbacks)

let parscan ~scale =
  let total = Harness.scaled ~scale 36000 in
  let inserts = Harness.scaled ~scale 500 in
  let all = List.map (fun p -> run_series ~parallelism:p ~inserts ~total) parallelisms in
  let base = List.hd all in
  let demo_rows, demo_fallbacks = run_fallback_demo ~inserts ~total in
  let module J = Imdb_obs.Json in
  Harness.emit_json ~name:"parscan"
    (J.Obj
       [
         ("schema_version", J.Int M.schema_version);
         ("txns", J.Int total);
         ( "series",
           J.List
             (List.map
                (fun s ->
                  J.Obj
                    [
                      ("parallelism", J.Int s.s_parallelism);
                      ("rows", J.Int s.s_rows);
                      ("pages", J.Int s.s_pages);
                      ("versions", J.Int s.s_versions);
                      ("cache_hits", J.Int s.s_hits);
                      ("cache_misses", J.Int s.s_misses);
                      ("cache_evictions", J.Int s.s_evictions);
                      ("fallbacks", J.Int s.s_fallbacks);
                    ])
                all) );
         ( "fallback_demo",
           J.Obj
             [
               ("parallelism", J.Int 2);
               ("rows", J.Int demo_rows);
               ("fallbacks", J.Int demo_fallbacks);
             ] );
       ]);
  Harness.print_table
    ~title:
      (Printf.sprintf
         "parscan: full-scan AS OF at %d depths, %d txns, chain traversal (no TSB)"
         (List.length depths) total)
    ~header:
      [ "par"; "ms"; "speedup"; "rows"; "pages"; "versions"; "hits"; "misses";
        "evict"; "fallbk" ]
    (List.map
       (fun s ->
         [
           string_of_int s.s_parallelism;
           Harness.ms s.s_elapsed;
           Fmt.str "%.2fx" (base.s_elapsed /. s.s_elapsed);
           string_of_int s.s_rows;
           string_of_int s.s_pages;
           string_of_int s.s_versions;
           string_of_int s.s_hits;
           string_of_int s.s_misses;
           string_of_int s.s_evictions;
           string_of_int s.s_fallbacks;
         ])
       all);
  let consistent =
    List.for_all
      (fun s -> s.s_rows = base.s_rows && s.s_pages = base.s_pages && s.s_versions = base.s_versions)
      all
  in
  Fmt.pr "work counters identical across parallelism: %s@."
    (if consistent then "yes" else "NO — accounting divergence!");
  Fmt.pr
    "fallback demo (unflushed history, par=2): %d rows, %d ranges bounced back \
     to the coordinator@."
    demo_rows demo_fallbacks

let run = parscan

let () =
  Harness.register ~name:"parscan"
    ~doc:"parallel AS OF scans: domain fan-out + histcache (PR 3)" parscan
