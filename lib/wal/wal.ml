(* The write-ahead log.

   An append-only stream of checksummed frames over a log device:

   {v  frame := u32 payload_length | u32 crc32(payload) | payload  v}

   The LSN of a record is the byte offset of its frame in the stream; the
   LSN order is the total order of all logged actions.  The WAL object
   buffers appended frames in memory; [flush] makes the prefix up to a
   given LSN durable.  After a crash, [open_device] scans the durable
   stream, stops at the first incomplete or corrupt frame (a torn tail)
   and truncates it away.

   The buffer-pool's WAL-before-data rule calls [flush ~lsn:(page lsn)]
   before any page write, and commit calls [flush] at the commit record.

   Concurrency: appenders on different domains do not queue on one
   append lock.  An atomic sequencer hands out contiguous LSN ranges
   (frames are fixed before reservation, so a reservation is the byte
   range it will occupy), and each domain buffers its frames in its own
   append buffer.  A flush — serialized by [flush_mu], so concurrent
   committers batch into one device sync — drains every domain buffer,
   writes the longest contiguous prefix from [durable_end] in LSN order
   (spinning briefly over a reservation still between its fetch-and-add
   and its buffer insert), and advances the durable horizon.  At one
   session this degenerates to exactly the old single-list protocol:
   same appends, same flush boundaries, same counters. *)

open Imdb_util
module M = Imdb_obs.Metrics

let frame_header = 8

module Device = struct
  type t = {
    size : unit -> int; (* durable bytes *)
    append : bytes -> unit; (* append durable bytes at the end *)
    read : pos:int -> len:int -> bytes;
    truncate : int -> unit; (* keep [0, n) *)
    sync : unit -> unit;
    close : unit -> unit;
  }

  let in_memory () =
    (* manually managed growable store: [read] must be O(len), not a copy
       of the whole log (recovery reads every frame individually) *)
    let store = ref (Bytes.create 4096) in
    let used = ref 0 in
    let ensure extra =
      if !used + extra > Bytes.length !store then begin
        let cap = ref (Bytes.length !store) in
        while !used + extra > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit !store 0 bigger 0 !used;
        store := bigger
      end
    in
    {
      size = (fun () -> !used);
      append =
        (fun b ->
          ensure (Bytes.length b);
          Bytes.blit b 0 !store !used (Bytes.length b);
          used := !used + Bytes.length b);
      read =
        (fun ~pos ~len ->
          if pos < 0 || len < 0 || pos + len > !used then
            failwith "Wal.Device.in_memory: read out of range";
          Bytes.sub !store pos len);
      truncate = (fun n -> if n < !used then used := n);
      sync = (fun () -> ());
      close = (fun () -> ());
    }

  let file ~path =
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    let size () = (Unix.fstat fd).Unix.st_size in
    {
      size;
      append =
        (fun b ->
          ignore (Unix.lseek fd 0 Unix.SEEK_END);
          let rec drain off =
            if off < Bytes.length b then
              drain (off + Unix.write fd b off (Bytes.length b - off))
          in
          drain 0);
      read =
        (fun ~pos ~len ->
          let b = Bytes.create len in
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          let rec fill off =
            if off < len then begin
              let n = Unix.read fd b off (len - off) in
              if n = 0 then failwith "Wal.Device.file: short read";
              fill (off + n)
            end
          in
          fill 0;
          b);
      truncate = (fun n -> Unix.ftruncate fd n);
      sync = (fun () -> Unix.fsync fd);
      close = (fun () -> Unix.close fd);
    }
end

(* One domain's append buffer: only its owner appends, only a flusher
   (holding [tail_mu]) drains, so [db_mu] sees owner-vs-flusher traffic
   at most — never cross-domain append contention. *)
type dbuf = {
  db_mu : Mutex.t;
  mutable db_frames : (int64 * bytes) list; (* newest first *)
  db_index : (int64, bytes) Hashtbl.t; (* the same frames, by LSN *)
}

type t = {
  device : Device.t;
  seq : int Atomic.t; (* next LSN: end of log including volatile tails *)
  tail_mu : Mutex.t;
      (* guards [durable_end], [flushing], and the move of frames out of
         domain buffers — so a volatile-frame lookup under it is atomic
         with respect to collection and the durable horizon *)
  mutable durable_end : int64; (* bytes durable on the device *)
  flushing : (int64, bytes) Hashtbl.t;
      (* frames collected from domain buffers by an in-progress (or
         partially contiguous) flush, still volatile *)
  bufs_mu : Mutex.t;
  mutable bufs : dbuf list; (* every domain buffer ever registered *)
  flush_mu : Mutex.t;
      (* serializes device append+sync (and durable reads against them);
         concurrent committers queue here and find their records already
         durable — the group-commit fsync batch *)
  flush_owner : int Atomic.t;
      (* domain id + 1 of the [flush_mu] holder (0 = none): recovery's
         redo iterates the log and reads it again from inside the
         callback, so device access must be reentrant per domain *)
  mutable flush_active : bool;
      (* a leader's collect+sync is in flight (guarded by [tail_mu]).
         Followers whose LSN the leader will cover wait on [flush_cv]
         for [durable_end] to move instead of queueing on [flush_mu]: a
         hot leader re-syncing in a loop barges an OS mutex queue and
         can starve parked waiters for many sync periods, but it cannot
         stop them from observing the durable horizon. *)
  flush_cv : Condition.t;
  pending_mu : Mutex.t;
  mutable pending : (int64 * (unit -> unit)) list;
      (* group-commit waiters (commit LSN, durability ack), newest first *)
  mutable metrics : M.t;
  mutable tracer : Imdb_obs.Tracer.t;
}

let set_metrics t m = t.metrics <- m
let set_tracer t tr = t.tracer <- tr

let frame_of payload =
  let len = Bytes.length payload in
  let b = Bytes.create (frame_header + len) in
  Codec.set_u32 b 0 len;
  Codec.set_u32 b 4 (Checksum.bytes_int payload);
  Codec.set_bytes b frame_header payload;
  b

(* Scan the durable stream from offset 0, returning the offset of the
   first invalid frame (= valid end of log). *)
let scan_valid_end (d : Device.t) =
  let total = d.size () in
  let rec go pos =
    if pos + frame_header > total then pos
    else
      let hdr = d.read ~pos ~len:frame_header in
      let len = Codec.get_u32 hdr 0 in
      let crc = Codec.get_u32 hdr 4 in
      if len = 0 || pos + frame_header + len > total then pos
      else
        let payload = d.read ~pos:(pos + frame_header) ~len in
        if Checksum.bytes_int payload <> crc then pos
        else go (pos + frame_header + len)
  in
  go 0

let open_device ?(metrics = M.null) device =
  let valid = scan_valid_end device in
  if valid < device.Device.size () then device.Device.truncate valid;
  {
    device;
    seq = Atomic.make valid;
    tail_mu = Mutex.create ();
    durable_end = Int64.of_int valid;
    flushing = Hashtbl.create 64;
    bufs_mu = Mutex.create ();
    bufs = [];
    flush_mu = Mutex.create ();
    flush_owner = Atomic.make 0;
    flush_active = false;
    flush_cv = Condition.create ();
    pending_mu = Mutex.create ();
    pending = [];
    metrics;
    tracer = Imdb_obs.Tracer.null;
  }

let next_lsn t = Int64.of_int (Atomic.get t.seq)

let with_flush_mu t f =
  let me = (Domain.self () :> int) + 1 in
  if Atomic.get t.flush_owner = me then f ()
  else begin
    Mutex.lock t.flush_mu;
    Atomic.set t.flush_owner me;
    Fun.protect
      ~finally:(fun () ->
        Atomic.set t.flush_owner 0;
        Mutex.unlock t.flush_mu)
      f
  end

let durable t =
  Mutex.lock t.tail_mu;
  let d = t.durable_end in
  Mutex.unlock t.tail_mu;
  d

let flushed_lsn t = durable t

(* The calling domain's append buffer, cached in domain-local storage so
   the registry mutex is touched once per (domain, log) pair.  The cache
   is a small MRU list: an evicted entry's buffer stays registered in
   [bufs] and is simply drained by the next flush, so losing a cache slot
   can never lose frames. *)
let dbuf_cache : (Obj.t * dbuf) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let dbuf_cache_slots = 8

let dbuf_for t =
  let cache = Domain.DLS.get dbuf_cache in
  let key = Obj.repr t in
  match List.assq_opt key !cache with
  | Some b -> b
  | None ->
      let b =
        { db_mu = Mutex.create (); db_frames = []; db_index = Hashtbl.create 64 }
      in
      Mutex.lock t.bufs_mu;
      t.bufs <- b :: t.bufs;
      Mutex.unlock t.bufs_mu;
      let trimmed =
        if List.length !cache >= dbuf_cache_slots then
          List.filteri (fun i _ -> i < dbuf_cache_slots - 1) !cache
        else !cache
      in
      cache := (key, b) :: trimmed;
      b

let append t body =
  let payload = Log_record.encode body in
  let frame = frame_of payload in
  let b = dbuf_for t in
  (* the reservation and the buffer insert share one critical section on
     the domain-local mutex, so a flusher that drains this buffer sees
     every reservation the buffer's owner has made *)
  Mutex.lock b.db_mu;
  let lsn = Int64.of_int (Atomic.fetch_and_add t.seq (Bytes.length frame)) in
  b.db_frames <- (lsn, frame) :: b.db_frames;
  Hashtbl.replace b.db_index lsn frame;
  Mutex.unlock b.db_mu;
  M.incr t.metrics M.log_appends;
  M.incr ~by:(Bytes.length frame) t.metrics M.log_bytes;
  M.observe t.metrics M.h_log_record_bytes (Bytes.length frame);
  lsn

(* Group commit: a committing transaction registers its commit LSN and a
   durability acknowledgment; the next flush that makes the record durable
   fires the ack.  Waiters share that flush's single append+sync. *)
let register_commit t ~lsn ~on_durable =
  if Int64.compare lsn (durable t) < 0 then on_durable ()
  else begin
    Mutex.lock t.pending_mu;
    t.pending <- (lsn, on_durable) :: t.pending;
    Mutex.unlock t.pending_mu
  end

let pending_commits t =
  Mutex.lock t.pending_mu;
  let n = List.length t.pending in
  Mutex.unlock t.pending_mu;
  n

let drain_pending t =
  let d = durable t in
  Mutex.lock t.pending_mu;
  let durable_now, still =
    List.partition (fun (lsn, _) -> Int64.compare lsn d < 0) t.pending
  in
  t.pending <- still;
  Mutex.unlock t.pending_mu;
  if durable_now <> [] then begin
    M.observe t.metrics M.h_group_commit_batch (List.length durable_now);
    Imdb_obs.Tracer.instant t.tracer "wal.group_commit"
      ~attrs:[ ("batch", string_of_int (List.length durable_now)) ];
    (* fire oldest-first: acknowledgment order follows commit order *)
    List.iter (fun (_, ack) -> ack ()) (List.rev durable_now)
  end

(* Move every buffered frame into [flushing].  Holding [tail_mu] across
   the move keeps volatile lookups coherent: a frame is always findable
   in exactly one place until it is durable. *)
let collect t =
  Mutex.lock t.tail_mu;
  Mutex.lock t.bufs_mu;
  let bufs = t.bufs in
  Mutex.unlock t.bufs_mu;
  List.iter
    (fun b ->
      Mutex.lock b.db_mu;
      List.iter (fun (lsn, fr) -> Hashtbl.replace t.flushing lsn fr) b.db_frames;
      b.db_frames <- [];
      Hashtbl.reset b.db_index;
      Mutex.unlock b.db_mu)
    bufs;
  Mutex.unlock t.tail_mu

(* The longest LSN-contiguous run of [flushing] frames starting at
   [durable_end]: what the device write can cover.  A gap means a
   reservation is still between its fetch-and-add and its insert. *)
let contiguous_prefix t =
  let frames =
    Hashtbl.fold (fun lsn fr acc -> (lsn, fr) :: acc) t.flushing []
    |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
  in
  let rec take acc expect = function
    | (lsn, fr) :: rest when Int64.equal lsn expect ->
        take ((lsn, fr) :: acc)
          (Int64.add lsn (Int64.of_int (Bytes.length fr)))
          rest
    | _ -> (List.rev acc, expect)
  in
  take [] t.durable_end frames

(* One leader's collect+append+sync.  Caller has claimed leadership
   ([flush_active] set); runs under [flush_mu] to serialize device
   access against readers and other (reentrant) flushers. *)
let flush_as_leader t needed =
  with_flush_mu t (fun () ->
      (* the flush that held leadership before us may have covered our
         record already *)
      if Int64.compare needed (durable t) >= 0 then begin
        collect t;
        let prefix = ref (contiguous_prefix t) in
        (* a gap below [needed] resolves as soon as the appender's
           buffer insert lands; never spin for frames past [needed] *)
        while
          Int64.compare (snd !prefix) needed <= 0
          && Int64.compare (next_lsn t) (snd !prefix) > 0
        do
          Domain.cpu_relax ();
          collect t;
          prefix := contiguous_prefix t
        done;
        let frames, new_end = !prefix in
        if frames <> [] then
          Imdb_obs.Tracer.with_span t.tracer "wal.flush" (fun sp ->
              let bytes =
                List.fold_left (fun acc (_, f) -> acc + Bytes.length f) 0 frames
              in
              List.iter (fun (_, frame) -> t.device.Device.append frame) frames;
              t.device.Device.sync ();
              Mutex.lock t.tail_mu;
              List.iter (fun (lsn, _) -> Hashtbl.remove t.flushing lsn) frames;
              t.durable_end <- new_end;
              Mutex.unlock t.tail_mu;
              M.incr t.metrics M.log_flushes;
              M.observe t.metrics M.h_log_flush_bytes bytes;
              Imdb_obs.Tracer.add_attr sp "bytes" (string_of_int bytes);
              Imdb_obs.Tracer.add_attr sp "frames"
                (string_of_int (List.length frames)))
      end)

(* Make everything up to and including the record at [lsn] durable.  A
   record at a given LSN is durable iff [lsn < durable_end] (both are
   frame boundaries), so an already-durable request returns without
   touching the device.  Otherwise one session at a time claims
   leadership and pushes the buffered frames out in a single
   append+sync; concurrent flushers whose LSN that sync covers are
   {e followers} — they wait on [flush_cv] for the durable horizon to
   pass their record and never touch the device or [flush_mu] at all.
   (Queueing followers on [flush_mu] instead invites starvation: an OS
   mutex lets a hot leader that unlocks and immediately re-locks barge
   ahead of the parked waiters, so a committer could sit through many
   1-record syncs that each already covered it.)  Every group-commit
   waiter the sync covers is acknowledged on the way out. *)
let flush ?lsn t =
  let needed =
    match lsn with Some l -> l | None -> Int64.pred (next_lsn t)
  in
  let me = (Domain.self () :> int) + 1 in
  let rec run () =
    if Int64.compare needed (durable t) >= 0 then begin
      Mutex.lock t.tail_mu;
      if t.flush_active && Atomic.get t.flush_owner <> me then begin
        (* follower: a leader's sync is in flight and it is not our own
           (recovery re-enters flush from under [flush_mu]); park until
           the horizon moves or leadership frees, then re-decide *)
        while t.flush_active && Int64.compare needed t.durable_end >= 0 do
          Condition.wait t.flush_cv t.tail_mu
        done;
        Mutex.unlock t.tail_mu;
        run ()
      end
      else begin
        t.flush_active <- true;
        Mutex.unlock t.tail_mu;
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock t.tail_mu;
            t.flush_active <- false;
            Condition.broadcast t.flush_cv;
            Mutex.unlock t.tail_mu)
          (fun () -> flush_as_leader t needed)
      end
    end
  in
  run ();
  drain_pending t

(* Drop the volatile tail: crash simulation.  Unacknowledged group-commit
   waiters are dropped unfired — their transactions were never durable.
   The sequencer rewinds to the durable horizon (as a reopen would), so
   the dropped reservations do not read as a permanent gap to flush. *)
let crash_volatile t =
  Mutex.lock t.tail_mu;
  Atomic.set t.seq (Int64.to_int t.durable_end);
  Hashtbl.reset t.flushing;
  Mutex.lock t.bufs_mu;
  let bufs = t.bufs in
  Mutex.unlock t.bufs_mu;
  List.iter
    (fun b ->
      Mutex.lock b.db_mu;
      b.db_frames <- [];
      Hashtbl.reset b.db_index;
      Mutex.unlock b.db_mu)
    bufs;
  Condition.broadcast t.flush_cv;
  Mutex.unlock t.tail_mu;
  Mutex.lock t.pending_mu;
  t.pending <- [];
  Mutex.unlock t.pending_mu

(* Iterate durable records from [from_lsn] (must be a frame boundary).
   Runs under [flush_mu] so device reads never interleave with a
   concurrent flush's appends (the file device shares one descriptor). *)
let iter_from t ~from_lsn f =
  with_flush_mu t (fun () ->
      let total = Int64.to_int (durable t) in
      let rec go pos =
        if pos + frame_header <= total then begin
          let hdr = t.device.Device.read ~pos ~len:frame_header in
          let len = Codec.get_u32 hdr 0 in
          let payload = t.device.Device.read ~pos:(pos + frame_header) ~len in
          f (Int64.of_int pos) (Log_record.decode payload);
          go (pos + frame_header + len)
        end
      in
      go (Int64.to_int from_lsn))

(* A still-volatile frame, wherever it currently lives: mid-flush
   ([flushing]) or in some domain's append buffer. *)
let find_volatile t lsn =
  Mutex.lock t.tail_mu;
  let r =
    match Hashtbl.find_opt t.flushing lsn with
    | Some f -> Some f
    | None ->
        Mutex.lock t.bufs_mu;
        let bufs = t.bufs in
        Mutex.unlock t.bufs_mu;
        List.fold_left
          (fun acc b ->
            match acc with
            | Some _ -> acc
            | None ->
                Mutex.lock b.db_mu;
                let r = Hashtbl.find_opt b.db_index lsn in
                Mutex.unlock b.db_mu;
                r)
          None bufs
  in
  Mutex.unlock t.tail_mu;
  r

(* Read the single record at [lsn] (durable or volatile). *)
let read_at t lsn =
  match find_volatile t lsn with
  | Some frame ->
      let len = Codec.get_u32 frame 0 in
      Log_record.decode (Bytes.sub frame frame_header len)
  | None ->
      with_flush_mu t (fun () ->
          if Int64.compare lsn (durable t) < 0 then begin
            let pos = Int64.to_int lsn in
            let hdr = t.device.Device.read ~pos ~len:frame_header in
            let len = Codec.get_u32 hdr 0 in
            Log_record.decode (t.device.Device.read ~pos:(pos + frame_header) ~len)
          end
          else failwith (Printf.sprintf "Wal.read_at: no record at lsn %Ld" lsn))

let close t =
  flush t;
  t.device.Device.close ()
