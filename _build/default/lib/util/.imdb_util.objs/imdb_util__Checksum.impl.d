lib/util/checksum.ml: Array Bytes Char Int32 Lazy
