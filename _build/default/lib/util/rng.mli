(** Deterministic PRNG (splitmix64): workload generation and failure
    injection must reproduce across runs and platforms, so the stdlib
    [Random] (no sequence-compatibility contract) is avoided. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound).  @raise Invalid_argument on bound <= 0. *)

val int_in : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val choose : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit
val exponential : t -> mean:float -> float
val string : t -> int -> string
