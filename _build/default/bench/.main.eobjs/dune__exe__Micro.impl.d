bench/micro.ml: Analyze Bechamel Benchmark Bytes Fmt Harness Hashtbl Imdb_clock Imdb_storage Imdb_util Imdb_version Instance Int64 List Measure Printf Staged Test Time Toolkit
