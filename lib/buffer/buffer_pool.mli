(** The buffer pool.

    Fixed-capacity page cache with pin counts, O(1)-amortized CLOCK
    (second-chance) eviction, dirty tracking with per-page recLSN, and
    the WAL-before-data rule: a dirty page is written only after the log
    is durable up to the page's LSN.

    Two features exist specifically for Immortal DB's lazy timestamping:
    the [pre_flush] hook runs on every image just before it is written
    (the engine installs the VTT-only timestamp sweep there), and
    [mark_dirty_unlogged] records a recLSN for changes that were {e not}
    logged, keeping stamped-but-unflushed pages inside the dirty-page
    table so the redo-scan start point — and with it the PTT garbage
    collector — cannot outrun them.

    The pool is domain-safe: a pool mutex guards lookup/replacement state
    (frame table, CLOCK ring, pins, dirty bits), and frame writeback runs
    under striped frame latches keyed by page id, so the WAL-before-data
    check and the disk write are atomic per frame while different pages
    flush in parallel.  Page content reached through a pinned frame is
    synchronized by the engine's session gate; [with_latch] additionally
    excludes a concurrent writeback of the same stripe. *)

type t
type frame

exception Buffer_full
(** No evictable (unpinned) frame remains. *)

exception Corrupt_page of int
(** A page read from disk failed checksum verification. *)

val create :
  ?capacity:int ->
  ?metrics:Imdb_obs.Metrics.t ->
  disk:Imdb_storage.Disk.t ->
  wal:Imdb_wal.Wal.t ->
  unit ->
  t

val set_metrics : t -> Imdb_obs.Metrics.t -> unit
(** Point the pool at an engine's registry (hits/misses/evictions). *)

val set_pre_flush : t -> (bytes -> unit) -> unit
(** Hook run on the page image just before each disk write; its changes
    are persisted but not logged and do not move the page LSN. *)

val page_size : t -> int

(** {1 Pinning} *)

val pin : t -> int -> frame
(** Pin a page, reading (and verifying) it from disk on a miss. *)

val pin_new : t -> int -> frame
(** Frame for a brand-new page: no disk read; zero-filled; the caller
    formats it. *)

val unpin : t -> frame -> unit
val with_page : t -> int -> (frame -> 'a) -> 'a
(** Pin, apply, unpin (exception-safe). *)

val bytes : frame -> bytes
val page_id : frame -> int

val with_latch : t -> frame -> (unit -> 'a) -> 'a
(** Run [f] holding the frame's stripe latch (shared by every page id on
    the same stripe), excluding a concurrent writeback of those frames.
    Lock order is pool mutex, then stripe latch, then WAL — so [f] must
    not call back into pool operations that take the pool mutex. *)

(** {1 Key-directory cache}

    A sorted (key, slot) directory the B-tree attaches to a frame so
    point searches binary-search instead of decoding every cell of the
    unsorted slot array.  Pure cache: volatile, never logged, never
    moving the page LSN (the same discipline as lazy timestamping).  Any
    dirtying — logged or unlogged — invalidates it; eviction discards it
    with the frame. *)

type keydir = {
  kd_keys : string array;  (** sorted ascending *)
  kd_slots : int array;  (** [kd_slots.(i)] holds [kd_keys.(i)] *)
}

val keydir : frame -> keydir option
val set_keydir : frame -> keydir -> unit

val keydir_probe : frame -> int
(** Count one linear search against this frame; returns the number since
    the last invalidation, so callers build the directory only for pages
    that stay search-hot between modifications. *)

(** {1 Dirty tracking} *)

val mark_dirty_logged : t -> frame -> lsn:int64 -> unit
(** A logged change: sets the page LSN; first dirtying records recLSN. *)

val mark_dirty_unlogged : t -> frame -> unit
(** An unlogged change (timestamp propagation): recLSN is the current end
    of log, pinning the redo-scan start point behind this page. *)

val dirty_page_table : t -> (int * int64) list
(** (page id, recLSN) for every dirty page — the checkpoint DPT. *)

(** {1 Flushing} *)

val flush_page : t -> int -> unit
val flush_all : t -> unit

val flush_older_than : t -> rec_lsn_limit:int64 -> int
(** Write out pages dirty since before [rec_lsn_limit] — the
    checkpoint-time sweep that moves the redo-scan start point (and the
    PTT GC horizon) forward.  Returns the number written. *)

(** {1 Cache management} *)

val invalidate : t -> int -> unit
(** Drop a single unpinned frame without writing (freed pages).
    @raise Invalid_argument if pinned. *)

val drop_all : t -> unit
(** Crash simulation: discard every frame without writing. *)

val is_cached : t -> int -> bool
val cached_page_ids : t -> int list
val pinned_count : t -> int
