#!/bin/sh
# Nightly torture soak: run the adversarial crash/workload harness on
# fresh random seeds until a time budget runs out, stopping early on the
# first failure.
#
#   scripts/soak.sh [MINUTES] [OPS] [CRASHES]
#
# Defaults: 30 minutes, 10_000 ops and 60 crash points per seed (the
# harness's capped profile).  Every other seed runs in --bulk mode,
# mixing 16-48-upsert transactions in so crashes land on half-flushed
# ingest buffers as well as on the 1-4-write mix.  Seeds are drawn from
# the clock once at startup and then incremented, so the whole soak is
# reproducible from the first line of its output.  Every seed's report is appended to
# soak-report.txt (uploaded as a CI artifact); a failure also leaves the
# harness's minimized reproduction command there.
#
# Exit status: 0 = every seed passed, 1 = a seed failed (reproduce with
# the printed `imdb torture --seed N ... --replay` line).

set -u

cd "$(dirname "$0")/.." || exit 2

minutes=${1:-30}
ops=${2:-10000}
crashes=${3:-60}
report=${SOAK_REPORT:-soak-report.txt}

deadline=$(( $(date +%s) + minutes * 60 ))
seed=${SOAK_SEED:-$(date +%s)}

echo "soak: ${minutes}m budget, ops=$ops crashes=$crashes, first seed=$seed" | tee "$report"

dune build bin/imdb.exe 2>&1 | tee -a "$report"

ran=0
while [ "$(date +%s)" -lt "$deadline" ]; do
  bulk=""
  [ $((seed % 2)) -eq 0 ] && bulk="--bulk"
  if ! dune exec --no-build bin/imdb.exe -- torture \
        --seed "$seed" --ops "$ops" --crashes "$crashes" $bulk >>"$report" 2>&1; then
    echo "soak: FAILED at seed $seed after $ran clean seeds (see $report)" | tee -a "$report"
    tail -40 "$report"
    exit 1
  fi
  ran=$((ran + 1))
  seed=$((seed + 1))
done

echo "soak: PASSED $ran seeds in ${minutes}m" | tee -a "$report"
