(* Table data operations.

   Versioned tables (Immortal and Snapshot) are a key router (a B-tree
   mapping low keys to data page ids) above versioned data pages.  Every
   write inserts a new version; deletes insert delete stubs; pages split
   by time (Immortal) or garbage-collect dead versions (Snapshot) when
   full, with an additional key split when the surviving data still
   exceeds the threshold T (paper Section 3.3).  Conventional tables are
   plain B-trees updated in place.

   Reads implement the three access paths of the paper:
   - current reads via the router (identical cost to a conventional scan);
   - snapshot reads at the transaction's snapshot time;
   - AS OF reads at an arbitrary past time, first probing the current
     page's split time, then either walking the time-split page chain or
     probing the TSB index directly. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module P = Imdb_storage.Page
module R = Imdb_storage.Record
module BP = Imdb_buffer.Buffer_pool
module LR = Imdb_wal.Log_record
module V = Imdb_version.Vpage
module E = Engine

exception Duplicate_key of string
exception No_such_key of string
exception Write_conflict of { key : string; committed_at : Ts.t option }
exception Not_versioned of string
exception Page_overflow of string

let is_versioned ti =
  match ti.Catalog.ti_mode with
  | Catalog.Immortal | Catalog.Snapshot_table -> true
  | Catalog.Conventional -> false

(* --- structure handles --------------------------------------------------- *)

let router eng ti =
  Imdb_btree.Btree.attach ~metrics:eng.E.metrics ~pool:eng.E.pool
    ~io:(E.btree_io_for eng ti.Catalog.ti_id) ~root:ti.Catalog.ti_root
    ~table_id:ti.Catalog.ti_id
    ~name:(ti.Catalog.ti_name ^ ".router") ()

let conv_tree eng ti =
  Imdb_btree.Btree.attach ~metrics:eng.E.metrics ~pool:eng.E.pool
    ~io:(E.btree_io_for eng ti.Catalog.ti_id) ~root:ti.Catalog.ti_root
    ~table_id:ti.Catalog.ti_id ~name:ti.Catalog.ti_name ()

let tsb eng ti =
  if ti.Catalog.ti_tsb_root = 0 then None
  else
    Some
      (Imdb_tsb.Tsb.attach ~pool:eng.E.pool ~io:(E.tsb_io eng ti.Catalog.ti_id)
         ~root:ti.Catalog.ti_tsb_root ~table_id:ti.Catalog.ti_id)

let page_id_value pid =
  let b = Bytes.create 4 in
  Imdb_util.Codec.set_u32 b 0 pid;
  b

let page_id_of_value v = Imdb_util.Codec.get_u32 v 0

let in_range key ~low ~high =
  String.compare key low >= 0
  && match high with None -> true | Some h -> String.compare key h < 0

(* The data page responsible for [key] (hot path: one router descent). *)
let locate_page eng ti ~key =
  let rt = router eng ti in
  match Imdb_btree.Btree.find_floor rt ~key with
  | None -> failwith (Printf.sprintf "Table %s: router has no floor" ti.Catalog.ti_name)
  | Some (_low, v) -> page_id_of_value v

(* The data page responsible for [key], together with its router bounds
   [low, high) (high = None meaning +inf) — used by the split path and the
   TSB rectangle computation. *)
let locate eng ti ~key =
  let rt = router eng ti in
  match Imdb_btree.Btree.find_floor rt ~key with
  | None -> failwith (Printf.sprintf "Table %s: router has no floor" ti.Catalog.ti_name)
  | Some (low, v) ->
      let high = Option.map fst (Imdb_btree.Btree.find_next rt ~key:low) in
      (page_id_of_value v, low, high)

(* All router entries in key order: (low, high, page_id). *)
let router_ranges eng ti =
  let rt = router eng ti in
  let entries = Imdb_btree.Btree.fold rt ~init:[] ~f:(fun acc k v -> (k, v) :: acc) in
  let entries = List.rev entries in
  let rec bounds = function
    | [] -> []
    | [ (low, v) ] -> [ (low, None, page_id_of_value v) ]
    | (low, v) :: ((next, _) :: _ as rest) ->
        (low, Some next, page_id_of_value v) :: bounds rest
  in
  bounds entries

(* --- table creation ------------------------------------------------------ *)

(* Create a table's storage structures and catalog entry.  Runs inside the
   caller's (DDL) transaction: the catalog insert is undoable, the
   structure allocation is not (an aborted CREATE leaks pages, as real
   engines tolerate for nested-top-action structure builds). *)
let create eng ~name ~mode ~schema =
  if Hashtbl.mem eng.E.table_ids name then
    invalid_arg (Printf.sprintf "table %s already exists" name);
  let id = eng.E.meta.Meta.next_table_id in
  E.update_meta eng (fun m -> m.Meta.next_table_id <- id + 1);
  let ti =
    match mode with
    | Catalog.Conventional ->
        let tree =
          Imdb_btree.Btree.create ~metrics:eng.E.metrics ~pool:eng.E.pool
            ~io:(E.btree_io_for eng id) ~table_id:id ~name ()
        in
        {
          Catalog.ti_id = id;
          ti_name = name;
          ti_mode = mode;
          ti_schema = schema;
          ti_root = Imdb_btree.Btree.root tree;
          ti_tsb_root = 0;
          ti_buf_root = 0;
        }
    | Catalog.Immortal | Catalog.Snapshot_table ->
        let rt =
          Imdb_btree.Btree.create ~metrics:eng.E.metrics ~pool:eng.E.pool
            ~io:(E.btree_io_for eng id) ~table_id:id ~name:(name ^ ".router") ()
        in
        let first_page = E.alloc_page eng ~ptype:P.P_data ~level:0 ~table_id:id in
        Imdb_btree.Btree.insert ~undoable:false rt ~key:""
          ~value:(page_id_value first_page);
        let tsb_root =
          if mode = Catalog.Immortal && eng.E.config.E.tsb_enabled then
            Imdb_tsb.Tsb.root
              (Imdb_tsb.Tsb.create ~pool:eng.E.pool ~io:(E.tsb_io eng id) ~table_id:id)
          else 0
        in
        {
          Catalog.ti_id = id;
          ti_name = name;
          ti_mode = mode;
          ti_schema = schema;
          ti_root = Imdb_btree.Btree.root rt;
          ti_tsb_root = tsb_root;
          ti_buf_root = 0;
        }
  in
  Catalog.store (E.catalog_exn eng) ti;
  (match eng.E.cur_txn with
  | Some txn ->
      E.note_write eng txn ~table_id:Meta.catalog_table_id ~key:name ~immortal:false
  | None -> ());
  E.register_table eng ti;
  ti

let drop eng name =
  match E.table_by_name eng name with
  | None -> false
  | Some ti ->
      ignore (Catalog.remove (E.catalog_exn eng) name);
      (match eng.E.cur_txn with
      | Some txn ->
          E.note_write eng txn ~table_id:Meta.catalog_table_id ~key:name ~immortal:false
      | None -> ());
      E.unregister_table eng ti;
      Hashtbl.remove eng.E.ingest_bufs ti.Catalog.ti_id;
      true

(* --- page splitting ------------------------------------------------------ *)

(* Split the full data page [pid] of [ti] to make room.  Immortal tables
   time-split (and key-split when current utilization stays above T);
   snapshot tables garbage-collect dead versions, falling back to a key
   split when everything is still needed.

   [split_at] is the deferred split time a buffer flush carries: the
   clock reading recorded when the overflowing message arrived, advanced
   past it — exactly the time an unbuffered descent would have chosen at
   that write.  [incoming] (bytes still destined for this page in the
   in-flight flush run) feeds the batch-occupancy key-split hint. *)
let split_data_page ?split_at ?(incoming = 0) eng ti ~pid ~low ~high =
  let threshold = eng.E.config.E.key_split_threshold in
  let key_split_page fr =
    Imdb_obs.Tracer.with_span eng.E.tracer "split.key"
      ~attrs:[ ("table", ti.Catalog.ti_name); ("page", string_of_int pid) ]
    @@ fun sp ->
    let page = BP.bytes fr in
    if List.length (V.keys page) < 2 then
      raise
        (Page_overflow
           (Printf.sprintf "table %s: page %d holds one giant key chain"
              ti.Catalog.ti_name pid));
    let right_pid = E.alloc_page eng ~ptype:P.P_data ~level:0 ~table_id:ti.Catalog.ti_id in
    let ks = V.key_split ~metrics:eng.E.metrics ~page ~right_page_id:right_pid () in
    E.exec_op eng fr ~undoable:false (LR.Op_image { image = ks.V.ks_left });
    BP.with_page eng.E.pool right_pid (fun rfr ->
        E.exec_op eng rfr ~undoable:false (LR.Op_image { image = ks.V.ks_right }));
    Imdb_obs.Tracer.add_attr sp "right_page" (string_of_int right_pid);
    Imdb_btree.Btree.insert ~undoable:false (router eng ti) ~key:ks.V.ks_separator
      ~value:(page_id_value right_pid)
  in
  BP.with_page eng.E.pool pid (fun fr ->
      (* every committed version must carry its timestamp before versions
         can be classified (Section 2.2, trigger four) *)
      E.stamp_page eng fr;
      let page = BP.bytes fr in
      match ti.Catalog.ti_mode with
      | Catalog.Conventional -> assert false
      | Catalog.Immortal ->
          Imdb_obs.Tracer.with_span eng.E.tracer "split.time"
            ~attrs:[ ("table", ti.Catalog.ti_name); ("page", string_of_int pid) ]
          @@ fun sp ->
          (* split at now, strictly after every issued commit timestamp
             (or at the flush's deferred clock reading) *)
          let old_split = P.split_time page in
          let s =
            match split_at with
            | Some s ->
                (* an intervening (unbuffered) split can postdate the
                   deferred reading; chain split times never go backwards *)
                if Ts.compare s old_split <= 0 then Ts.succ old_split else s
            | None -> Ts.succ (Imdb_clock.Clock.last_issued eng.E.clock)
          in
          Imdb_clock.Clock.observe eng.E.clock s;
          let hist_pid =
            E.alloc_page eng ~ptype:P.P_history ~level:0 ~table_id:ti.Catalog.ti_id
          in
          let images =
            V.time_split ~metrics:eng.E.metrics ~page ~split_time:s
              ~history_page_id:hist_pid ()
          in
          E.exec_op eng fr ~undoable:false (LR.Op_image { image = images.V.si_current });
          (* the history image is immutable from this point on: delta-
             compress it (when enabled) so the logged image — the split's
             permanent storage cost — shrinks.  [encode] is defensive;
             a [None] keeps the plain page and counts a fallback. *)
          let hist_image =
            let module M = Imdb_obs.Metrics in
            if not eng.E.config.E.history_compression then images.V.si_history
            else
              match Imdb_storage.Vcompress.encode images.V.si_history with
              | Some c ->
                  M.incr eng.E.metrics M.compress_pages;
                  M.incr ~by:(Bytes.length images.V.si_history) eng.E.metrics
                    M.compress_raw_bytes;
                  M.incr ~by:(Bytes.length c) eng.E.metrics M.compress_written_bytes;
                  let raw = M.get eng.E.metrics M.compress_raw_bytes in
                  let written = M.get eng.E.metrics M.compress_written_bytes in
                  if raw > 0 then
                    M.set_gauge eng.E.metrics M.compress_ratio (written * 100 / raw);
                  c
              | None ->
                  M.incr eng.E.metrics M.compress_fallbacks;
                  images.V.si_history
          in
          Imdb_obs.Metrics.incr ~by:(Bytes.length hist_image) eng.E.metrics
            Imdb_obs.Metrics.hist_bytes_written;
          Imdb_obs.Tracer.add_attr sp "hist_page" (string_of_int hist_pid);
          Imdb_obs.Tracer.add_attr sp "hist_bytes"
            (string_of_int (Bytes.length hist_image));
          BP.with_page eng.E.pool hist_pid (fun hfr ->
              E.exec_op eng hfr ~undoable:false (LR.Op_image { image = hist_image }));
          (match tsb eng ti with
          | Some index ->
              Imdb_tsb.Tsb.insert index
                ~rect:
                  {
                    Imdb_tsb.Tsb.key_low = low;
                    key_high = high;
                    t_low = old_split;
                    t_high = s;
                  }
                ~child:hist_pid
          | None -> ());
          (match
             Imdb_tsb.Tsb.should_key_split
               ~utilization:(P.utilization (BP.bytes fr))
               ~threshold ~incoming_bytes:incoming
               ~capacity:(eng.E.config.E.page_size - P.header_size)
           with
          | `Utilization -> key_split_page fr
          | `Batch_hint when List.length (V.keys (BP.bytes fr)) >= 2 ->
              Imdb_obs.Metrics.incr eng.E.metrics
                Imdb_obs.Metrics.ingest_hint_key_splits;
              key_split_page fr
          | `Batch_hint | `No -> ())
      | Catalog.Snapshot_table ->
          let snapshots = E.active_snapshots eng in
          let img, dropped = V.gc_versions ~page ~snapshots in
          if dropped > 0 then
            E.exec_op eng fr ~undoable:false (LR.Op_image { image = img })
          else key_split_page fr)

(* --- versioned writes ----------------------------------------------------- *)

(* First-committer-wins validation for snapshot-isolation writers: the
   current version must not postdate the writer's snapshot. *)
let validate_si_write eng txn page ~key =
  match V.find_current page ~key with
  | None -> ()
  | Some slot -> (
      match R.in_page_ttime page slot with
      | Tid.Unstamped tid when Tid.equal tid txn.E.tx_tid -> ()
      | Tid.Unstamped tid -> (
          match Imdb_tstamp.Lazy_stamper.resolve eng.E.stamper tid with
          | V.Committed ts when Ts.compare ts txn.E.tx_snapshot > 0 ->
              raise (Write_conflict { key; committed_at = Some ts })
          | V.Committed _ -> ()
          | V.Active | V.Unknown ->
              raise (Write_conflict { key; committed_at = None }))
      | Tid.Stamped ms ->
          let ts = Ts.make ~ttime:ms ~sn:(R.in_page_sn page slot) in
          if Ts.compare ts txn.E.tx_snapshot > 0 then
            raise (Write_conflict { key; committed_at = Some ts }))

type write_kind = W_insert | W_update | W_upsert | W_delete

(* --- buffered ingestion --------------------------------------------------- *)

(* Write-optimized message path: instead of descending the router per
   row, a write appends one message to the table's buffer page (a WAL-
   logged O(1) operation) and a flush later applies a whole run of
   messages to each data page in a single visit — one descent, one
   stamping pass and one logged after-image per page instead of one per
   row.  Messages are applied in arrival order with the same primitives
   the per-row path uses, so buffered and unbuffered executions build
   identical structures and return identical results. *)

(* The table's message buffer, creating the buffer page (and persisting
   its id in the catalog, redo-only like other structure modifications)
   on first use. *)
let ingest_buf_for eng ti =
  match E.ingest_buf eng ti with
  | Some buf -> buf
  | None ->
      let pid =
        if ti.Catalog.ti_buf_root <> 0 then ti.Catalog.ti_buf_root
        else begin
          let pid =
            E.alloc_page eng ~ptype:P.P_msg_buffer ~level:0
              ~table_id:ti.Catalog.ti_id
          in
          ti.Catalog.ti_buf_root <- pid;
          Catalog.store_redo_only (E.catalog_exn eng) ti;
          pid
        end
      in
      let buf = Ingest.create ~table_id:ti.Catalog.ti_id ~page_id:pid in
      Hashtbl.replace eng.E.ingest_bufs ti.Catalog.ti_id buf;
      buf

(* Every message in [msgs] destined for the router range [low, high) —
   one run, applied in one page visit.  Pages are independent, so pulling
   a page's messages out of the global arrival order is safe as long as
   the per-page order is preserved (partition keeps it): each page sees
   exactly the version sequence a per-row execution would have built. *)
let partition_run msgs ~low ~high =
  List.partition (fun m -> in_range m.Ingest.m_key ~low ~high) msgs

(* Apply a run of messages to data page [pid]: stamp once, index the
   version-chain heads once, then plan and apply each message in arrival
   order — byte-identical page mutations to the per-row path — and log
   the whole run as one redo-only [Op_version_batch].  Application
   precedes logging because each insert must be on the page before the
   next can be planned; transactional undo hangs off the messages'
   [Op_msg_append] records, never off the batch.  Returns the suffix
   that did not fit. *)
let apply_run eng ti ~pid run =
  BP.with_page eng.E.pool pid (fun fr ->
      let page = BP.bytes fr in
      let index = Hashtbl.create 32 in
      List.iter
        (fun (key, slot) -> Hashtbl.replace index key slot)
        (V.current_slots page);
      let batch = ref [] in
      let applied = ref 0 in
      let rec apply = function
        | [] -> []
        | ({ Ingest.m_key = key; _ } as m) :: rest as pending -> (
            match
              V.plan_insert_with_pred page
                ~pred:(Hashtbl.find_opt index key)
                ~key ~payload:m.Ingest.m_payload ~tid:m.Ingest.m_tid
                ~delete_stub:(m.Ingest.m_kind = Ingest.M_delete)
            with
            | None -> pending
            | Some pi ->
                V.apply_insert page pi;
                batch :=
                  (pi.V.pi_slot, pi.V.pi_body, pi.V.pi_pred_slot, pi.V.pi_pred_old_flags)
                  :: !batch;
                Hashtbl.replace index key pi.V.pi_slot;
                incr applied;
                apply rest)
      in
      let leftover = apply run in
      if !applied > 0 then begin
        (* with per-row revisits gone, flush visits are where trigger-four
           stamping happens: one scan covers both the already-committed
           older versions and this run's committed arrivals, keeping the
           PTT collectible *)
        E.stamp_page eng fr;
        E.log_applied eng fr
          (LR.Op_version_batch
             { inserts = List.rev !batch; table_id = ti.Catalog.ti_id });
        let m = eng.E.metrics in
        Imdb_obs.Metrics.incr m Imdb_obs.Metrics.ingest_flush_pages;
        Imdb_obs.Metrics.observe m Imdb_obs.Metrics.h_ingest_flush_run !applied
      end;
      leftover)

(* Drain-time message application: route each run to its page, splitting
   full pages at the deferred clock the overflowing message recorded —
   the time an unbuffered descent would have chosen.  The budget mirrors
   the per-row path's bounded split retries. *)
let apply_messages eng ti msgs =
  let rec go budget msgs =
    match msgs with
    | [] -> ()
    | { Ingest.m_key = key; _ } :: _ ->
        if budget = 0 then
          raise
            (Page_overflow
               (Printf.sprintf "table %s: cannot make room (flush)"
                  ti.Catalog.ti_name));
        let pid, low, high = locate eng ti ~key in
        let run, rest = partition_run msgs ~low ~high in
        let leftover = apply_run eng ti ~pid run in
        (match leftover with
        | [] -> go 4 rest
        | m :: _ ->
            let incoming =
              if eng.E.config.E.ingest_split_hint then
                List.fold_left
                  (fun acc m ->
                    acc
                    + V.version_size ~key:m.Ingest.m_key
                        ~payload:m.Ingest.m_payload)
                  0 leftover
              else 0
            in
            Imdb_obs.Metrics.incr eng.E.metrics
              Imdb_obs.Metrics.ingest_deferred_splits;
            split_data_page eng ti ~pid ~low ~high
              ~split_at:(Ts.succ m.Ingest.m_clock) ~incoming;
            let progressed = List.length leftover < List.length run in
            go (if progressed then 4 else budget - 1) (leftover @ rest))
  in
  go 4 msgs

(* Drain the table's buffer: apply every message downward, then truncate
   the buffer page with a redo-only reformat (recovery replays the same
   sequence).  Readers call this before descending, so buffered state is
   never visible — a buffered engine answers every query exactly like an
   unbuffered one. *)
let flush_ingest eng ti =
  match E.ingest_buf eng ti with
  | None -> ()
  | Some buf ->
      if not (buf.Ingest.b_flushing || Ingest.is_empty buf) then begin
        buf.Ingest.b_flushing <- true;
        Fun.protect ~finally:(fun () -> buf.Ingest.b_flushing <- false)
        @@ fun () ->
        Imdb_obs.Tracer.with_span eng.E.tracer "ingest.flush"
          ~attrs:[ ("table", ti.Catalog.ti_name) ]
        @@ fun sp ->
        let msgs = Ingest.drain buf in
        let n = List.length msgs in
        apply_messages eng ti msgs;
        BP.with_page eng.E.pool buf.Ingest.b_page (fun fr ->
            E.exec_op eng fr ~undoable:false
              (LR.Op_format
                 {
                   page_type = P.P_msg_buffer;
                   table_id = ti.Catalog.ti_id;
                   level = 0;
                 }));
        let m = eng.E.metrics in
        Imdb_obs.Metrics.incr m Imdb_obs.Metrics.ingest_flushes;
        Imdb_obs.Metrics.incr ~by:n m Imdb_obs.Metrics.ingest_flush_messages;
        Imdb_obs.Tracer.add_attr sp "messages" (string_of_int n)
      end

(* Read-only presence probe for the buffered existence checks — the
   buffer's newest-message map answers for buffered keys; this answers
   for everything already on pages. *)
let probe_exists eng ti ~key =
  let pid = locate_page eng ti ~key in
  BP.with_page eng.E.pool pid (fun fr ->
      let page = BP.bytes fr in
      match V.find_current page ~key with
      | None -> false
      | Some slot -> R.in_page_flags page slot land R.f_delete_stub = 0)

(* The buffered write: one message append in place of a page descent.
   Existence semantics (INSERT/UPDATE/DELETE) are decided from the
   newest buffered message for the key, falling back to the pages; the
   append itself is an undoable WAL record, so aborts remove the message
   (and, after a crash mid-flush, any applied version) and a committed
   buffer survives crashes. *)
let write_buffered eng txn ti ~key ~payload ~kind =
  let buf = ingest_buf_for eng ti in
  (match kind with
  | W_upsert -> ()
  | W_insert | W_update | W_delete -> (
      let exists =
        match Ingest.newest buf ~key with
        | Some m -> m.Ingest.m_kind <> Ingest.M_delete
        | None -> probe_exists eng ti ~key
      in
      match kind with
      | W_insert when exists -> raise (Duplicate_key key)
      | (W_update | W_delete) when not exists -> raise (No_such_key key)
      | _ -> ()));
  let msg =
    {
      Ingest.m_seq = E.next_ingest_seq eng;
      m_tid = txn.E.tx_tid;
      m_kind =
        (match kind with
        | W_insert -> Ingest.M_insert
        | W_update -> Ingest.M_update
        | W_upsert -> Ingest.M_upsert
        | W_delete -> Ingest.M_delete);
      m_key = key;
      m_payload = (if kind = W_delete then "" else payload);
      m_clock = Imdb_clock.Clock.last_issued eng.E.clock;
    }
  in
  let body = Ingest.encode_msg msg in
  let rec append attempts =
    let appended =
      BP.with_page eng.E.pool buf.Ingest.b_page (fun fr ->
          let page = BP.bytes fr in
          (* the buffer page is append-only between wholesale truncations,
             so always grow a fresh slot: no dead-slot scan per append
             (rollbacks leave tombstones, reclaimed at the next reformat) *)
          if P.free_space page < Bytes.length body + 4 then false
          else begin
            let slot = P.slot_count page in
            E.with_txn eng txn (fun () ->
                E.exec_op eng fr ~undoable:true
                  (LR.Op_msg_append { slot; body; table_id = ti.Catalog.ti_id }));
            true
          end)
    in
    if not appended then begin
      if attempts = 0 then
        raise
          (Page_overflow
             (Printf.sprintf "table %s: message larger than the buffer page"
                ti.Catalog.ti_name));
      flush_ingest eng ti;
      append (attempts - 1)
    end
  in
  append 1;
  Ingest.add buf msg;
  Imdb_tstamp.Vtt.incr_ref (E.vtt eng) txn.E.tx_tid;
  E.note_write eng txn ~table_id:ti.Catalog.ti_id ~key ~immortal:true;
  Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.ingest_appends;
  if Ingest.count buf >= eng.E.config.E.ingest_buffer_rows then
    flush_ingest eng ti

(* Insert a new version of [key] (a delete stub for [W_delete]).  SQL
   semantics: INSERT requires absence, UPDATE/DELETE require presence,
   upsert accepts both. *)
let write_version eng txn ti ~key ~payload ~kind =
  E.check_running txn;
  Imdb_obs.Tracer.with_span eng.E.tracer "txn.update"
    ~attrs:[ ("table", ti.Catalog.ti_name) ]
  @@ fun _ ->
  E.lock_record eng txn ~table_id:ti.Catalog.ti_id ~key Imdb_lock.Lock_manager.X;
  if
    E.ingest_enabled eng ti
    && match txn.E.tx_isolation with E.Serializable -> true | _ -> false
  then write_buffered eng txn ti ~key ~payload ~kind
  else begin
  (* buffered state must land before a per-row descent relies on page
     contents (existence checks, SI first-committer-wins validation) *)
  flush_ingest eng ti;
  let immortal = ti.Catalog.ti_mode = Catalog.Immortal in
  let rec attempt budget =
    if budget = 0 then
      raise (Page_overflow (Printf.sprintf "table %s: cannot make room" ti.Catalog.ti_name));
    let pid = locate_page eng ti ~key in
    let full =
      BP.with_page eng.E.pool pid (fun fr ->
          let page = BP.bytes fr in
          (* the paper's third stamping trigger: updating a
             non-timestamped version timestamps the existing versions of
             that record *)
          E.stamp_record eng fr ~key;
          (* one predecessor probe serves the SI validation, the
             existence check and the insert plan.  Checks come before the
             plan so a doomed write (duplicate insert, update of a
             missing key) mutates nothing — in particular it must not
             split a full page it was never going to write, which would
             make the structure diverge from a buffered execution (whose
             probe-based existence checks never make room either) *)
          let pred = V.find_current page ~key in
          (match txn.E.tx_isolation with
          | E.Snapshot_isolation when pred <> None ->
              validate_si_write eng txn page ~key
          | E.Snapshot_isolation
            when Ts.compare (P.split_time page) txn.E.tx_snapshot > 0 ->
                  (* no current version here, but the page time-split
                     after our snapshot: a competing deletion may have
                     moved the key's whole chain (ending in a stub) to
                     history.  First-committer-wins must still see it. *)
                  let rec probe pid' =
                    if pid' <> P.no_page then
                      let newest, next =
                        BP.with_page eng.E.pool pid' (fun hfr ->
                            let hp = E.decoded_history eng (BP.bytes hfr) in
                            let best = ref None in
                            List.iter
                              (fun slot ->
                                match R.in_page_timestamp hp slot with
                                | Some ts -> (
                                    match !best with
                                    | Some b when Ts.compare b ts >= 0 -> ()
                                    | _ -> best := Some ts)
                                | None -> ())
                              (V.all_versions_of hp ~key);
                            (!best, P.history_pointer hp))
                      in
                      match newest with
                      | Some ts ->
                          if Ts.compare ts txn.E.tx_snapshot > 0 then
                            raise (Write_conflict { key; committed_at = Some ts })
                      | None ->
                          (* keep walking only through ranges that can
                             still hold post-snapshot versions *)
                          if
                            BP.with_page eng.E.pool pid' (fun hfr ->
                                Ts.compare
                                  (P.split_time (BP.bytes hfr))
                                  txn.E.tx_snapshot > 0)
                          then probe next
                  in
                  probe (P.history_pointer page)
          | _ -> ());
          let exists =
            match pred with
            | Some slot -> R.in_page_flags page slot land R.f_delete_stub = 0
            | None -> false
          in
          (match kind with
          | W_insert when exists -> raise (Duplicate_key key)
          | (W_update | W_delete) when not exists -> raise (No_such_key key)
          | _ -> ());
          match
            V.plan_insert_with_pred page ~pred ~key ~payload ~tid:txn.E.tx_tid
              ~delete_stub:(kind = W_delete)
          with
          | None -> true
          | Some pi ->
              E.with_txn eng txn (fun () ->
                  E.exec_op eng fr ~undoable:true
                    (LR.Op_version_insert
                       {
                         slot = pi.V.pi_slot;
                         body = pi.V.pi_body;
                         pred_slot = pi.V.pi_pred_slot;
                         pred_old_flags = pi.V.pi_pred_old_flags;
                         table_id = ti.Catalog.ti_id;
                       }));
              Imdb_tstamp.Vtt.incr_ref (E.vtt eng) txn.E.tx_tid;
              E.note_write eng txn ~table_id:ti.Catalog.ti_id ~key ~immortal;
              false)
    in
    if full then begin
      (* recompute the page's router bounds only on the (rare) split path *)
      let pid', low, high = locate eng ti ~key in
      split_data_page eng ti ~pid:pid' ~low ~high;
      attempt (budget - 1)
    end
  in
  attempt 4
  end

(* --- conventional writes --------------------------------------------------- *)

let conv_write eng txn ti ~key ~payload ~kind =
  E.check_running txn;
  E.lock_record eng txn ~table_id:ti.Catalog.ti_id ~key Imdb_lock.Lock_manager.X;
  let tree = conv_tree eng ti in
  let exists = Imdb_btree.Btree.mem tree ~key in
  (match kind with
  | W_insert when exists -> raise (Duplicate_key key)
  | (W_update | W_delete) when not exists -> raise (No_such_key key)
  | _ -> ());
  E.with_txn eng txn (fun () ->
      match kind with
      | W_delete -> ignore (Imdb_btree.Btree.delete ~undoable:true tree ~key)
      | W_insert | W_update | W_upsert ->
          Imdb_btree.Btree.insert tree ~key ~value:(Bytes.of_string payload));
  E.note_write eng txn ~table_id:ti.Catalog.ti_id ~key ~immortal:false

(* --- public write API ------------------------------------------------------ *)

let insert eng txn ti ~key ~payload =
  if is_versioned ti then write_version eng txn ti ~key ~payload ~kind:W_insert
  else conv_write eng txn ti ~key ~payload ~kind:W_insert

let update eng txn ti ~key ~payload =
  if is_versioned ti then write_version eng txn ti ~key ~payload ~kind:W_update
  else conv_write eng txn ti ~key ~payload ~kind:W_update

let upsert eng txn ti ~key ~payload =
  if is_versioned ti then write_version eng txn ti ~key ~payload ~kind:W_upsert
  else conv_write eng txn ti ~key ~payload ~kind:W_upsert

let delete eng txn ti ~key =
  if is_versioned ti then write_version eng txn ti ~key ~payload:"" ~kind:W_delete
  else conv_write eng txn ti ~key ~payload:"" ~kind:W_delete

(* Enable snapshot versioning on a conventional table (the paper §4.1:
   "conventional tables can still make use of our prototype for
   supporting snapshot versions ... by enabling snapshot isolation using
   an Alter Table statement").

   The rows migrate from the in-place B-tree into versioned data pages as
   versions of the ALTER transaction — their visible history begins at
   the conversion's commit time, which is when versioning semantics
   begin.  The old B-tree's pages are leaked (bounded, like other aborted
   structure builds).  Runs inside the caller's DDL transaction. *)
let enable_snapshot eng ti =
  if ti.Catalog.ti_mode <> Catalog.Conventional then
    invalid_arg (Printf.sprintf "table %s is already versioned" ti.Catalog.ti_name);
  let txn =
    match eng.E.cur_txn with
    | Some t -> t
    | None -> invalid_arg "Table.enable_snapshot: no transaction"
  in
  let id = ti.Catalog.ti_id in
  let old_tree = conv_tree eng ti in
  let rt =
    Imdb_btree.Btree.create ~metrics:eng.E.metrics ~pool:eng.E.pool
      ~io:(E.btree_io_for eng id) ~table_id:id
      ~name:(ti.Catalog.ti_name ^ ".router") ()
  in
  let first_page = E.alloc_page eng ~ptype:P.P_data ~level:0 ~table_id:id in
  Imdb_btree.Btree.insert ~undoable:false rt ~key:"" ~value:(page_id_value first_page);
  (* flip the catalog entry first so the write path below routes through
     the new structure; [ti] itself is left untouched so an aborted ALTER
     can restore the cache *)
  let converted =
    {
      ti with
      Catalog.ti_mode = Catalog.Snapshot_table;
      Catalog.ti_root = Imdb_btree.Btree.root rt;
    }
  in
  Catalog.store (E.catalog_exn eng) converted;
  E.note_write eng txn ~table_id:Meta.catalog_table_id ~key:ti.Catalog.ti_name
    ~immortal:false;
  E.register_table eng converted;
  (* migrate the rows as versions of the ALTER transaction *)
  let moved = ref 0 in
  Imdb_btree.Btree.iter old_tree (fun key value ->
      incr moved;
      write_version eng txn converted ~key ~payload:(Bytes.to_string value)
        ~kind:W_upsert);
  !moved


(* --- reads ------------------------------------------------------------------ *)

(* Search the time-split chain (or the TSB index) for the page covering
   time [t], starting from the current page [fr]'s history pointer.  The
   walk is the paper's measured access path; the TSB jump is the indexed
   one. *)
let historical_page eng ti ~key ~t ~current_page =
  (* asof.pages_visited counts actual pages visited on the temporal
     access path: one per chain page examined, one per TSB target found.
     (The chain walk used to double-count its entry page.) *)
  (* walk the chain one page at a time — pin, read the two header
     fields, unpin, step — so a deep walk never holds more than one
     frame (the chain can exceed the buffer pool) *)
  let rec walk pid =
    if pid = P.no_page then None
    else begin
      Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.asof_pages;
      let split, next =
        BP.with_page eng.E.pool pid (fun fr ->
            let page = BP.bytes fr in
            (P.split_time page, P.history_pointer page))
      in
      if Ts.compare t split >= 0 then Some pid else walk next
    end
  in
  match tsb eng ti with
  | Some index -> (
      match Imdb_tsb.Tsb.find index ~key ~ts:t with
      | Some pid ->
          Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.asof_pages;
          Some pid
      | None ->
          (* A miss normally means the key has no version that old — but
             the chain, not the index, is ground truth, so confirm by
             walking it rather than silently answering "absent".  On a
             true miss the walk falls off the end; the indexed hit path
             above stays O(depth). *)
          walk (P.history_pointer current_page))
  | None -> walk (P.history_pointer current_page)

(* Visible payload of [key] at time [t] for transaction [txn] (own writes
   visible).  [None] = key absent at [t]. *)
let read_versioned_at eng txn ti ~key ~t =
  let pid = locate_page eng ti ~key in
  BP.with_page eng.E.pool pid (fun fr ->
      let page = BP.bytes fr in
      E.stamp_record eng fr ~key;
      (* own uncommitted writes win: the chain head is ours if we wrote *)
      let own =
        match V.find_current page ~key with
        | Some slot -> (
            match R.in_page_ttime page slot with
            | Tid.Unstamped tid when Tid.equal tid txn.E.tx_tid ->
                if R.in_page_flags page slot land R.f_delete_stub <> 0 then Some None
                else
                  Some
                    (Some
                       (Bytes.to_string
                          (P.read_cell_part page slot
                             ~at:(5 + String.length key)
                             ~len:
                               (P.cell_length page slot - R.fixed_overhead
                              - String.length key))))
            | _ -> None)
        | None -> None
      in
      match own with
      | Some result -> result
      | None ->
          let lookup_in pid' =
            BP.with_page eng.E.pool pid' (fun fr' ->
                if pid' <> pid then E.stamp_record eng fr' ~key;
                let page' = E.decoded_history eng (BP.bytes fr') in
                Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.asof_versions;
                match V.find_stamped_as_of page' ~key ~asof:t with
                | None -> None
                | Some slot ->
                    if R.in_page_flags page' slot land R.f_delete_stub <> 0 then None
                    else Some (R.in_page_payload page' slot))
          in
          if Ts.compare t (P.split_time page) >= 0 then lookup_in pid
          else (
            match historical_page eng ti ~key ~t ~current_page:page with
            | Some hpid -> lookup_in hpid
            | None -> None))

(* Current-state read under 2PL. *)
let read_current eng txn ti ~key =
  E.lock_record eng txn ~table_id:ti.Catalog.ti_id ~key Imdb_lock.Lock_manager.S;
  let pid = locate_page eng ti ~key in
  BP.with_page eng.E.pool pid (fun fr ->
      let page = BP.bytes fr in
      E.stamp_record eng fr ~key;
      match V.find_current page ~key with
      | None -> None
      | Some slot ->
          if R.in_page_flags page slot land R.f_delete_stub <> 0 then None
          else
            Some
              (Bytes.to_string
                 (P.read_cell_part page slot
                    ~at:(5 + String.length key)
                    ~len:(P.cell_length page slot - R.fixed_overhead - String.length key))))

let read eng txn ti ~key =
  E.check_running txn;
  flush_ingest eng ti;
  match ti.Catalog.ti_mode with
  | Catalog.Conventional ->
      E.lock_record eng txn ~table_id:ti.Catalog.ti_id ~key Imdb_lock.Lock_manager.S;
      Option.map Bytes.to_string (Imdb_btree.Btree.find (conv_tree eng ti) ~key)
  | Catalog.Immortal | Catalog.Snapshot_table -> (
      match txn.E.tx_isolation with
      | E.Serializable -> read_current eng txn ti ~key
      | E.Snapshot_isolation -> read_versioned_at eng txn ti ~key ~t:txn.E.tx_snapshot
      | E.As_of t ->
          if ti.Catalog.ti_mode <> Catalog.Immortal then
            raise (Not_versioned (ti.Catalog.ti_name ^ ": AS OF needs an IMMORTAL table"));
          read_versioned_at eng txn ti ~key ~t)

(* --- scans ------------------------------------------------------------------ *)

(* Intersect the router ranges with a requested key window
   [lo, hi) — the page set a range scan must visit, with the effective
   bounds to filter keys inside each page. *)
let clipped_ranges eng ti ?(lo = "") ?hi () =
  List.filter_map
    (fun (low, high, pid) ->
      let low' = if String.compare lo low > 0 then lo else low in
      let high' =
        match (hi, high) with
        | None, h -> h
        | (Some _ as h), None -> h
        | Some a, Some b -> Some (if String.compare a b < 0 then a else b)
      in
      let nonempty =
        match high' with None -> true | Some h -> String.compare low' h < 0
      in
      if nonempty then Some (low', high', pid) else None)
    (router_ranges eng ti)

let payload_of page slot _key = R.in_page_payload page slot

(* Scan of the current state (2PL path), optionally bounded to the key
   window [lo, hi). *)
let scan_current eng ?(lo = "") ?hi txn ti f =
  E.check_running txn;
  let table_lock () =
    match txn.E.tx_isolation with
    | E.Serializable ->
        E.lock_resource eng txn.E.tx_tid
          (Imdb_lock.Lock_manager.Table ti.Catalog.ti_id)
          Imdb_lock.Lock_manager.S
    | E.Snapshot_isolation | E.As_of _ -> ()
  in
  match ti.Catalog.ti_mode with
  | Catalog.Conventional ->
      table_lock ();
      (* Btree.iter's upto is inclusive; hi is exclusive — filter. *)
      Imdb_btree.Btree.iter ~from:lo ?upto:hi (conv_tree eng ti) (fun k v ->
          if in_range k ~low:lo ~high:hi then f k (Bytes.to_string v))
  | Catalog.Immortal | Catalog.Snapshot_table ->
      table_lock ();
      List.iter
        (fun (low, high, pid) ->
          BP.with_page eng.E.pool pid (fun fr ->
              let page = BP.bytes fr in
              E.stamp_page eng fr;
              List.iter
                (fun (key, slot) ->
                  if
                    in_range key ~low ~high
                    && R.in_page_flags page slot land R.f_delete_stub = 0
                  then f key (payload_of page slot key))
                (V.current_slots page)))
        (clipped_ranges eng ti ~lo ?hi ())

(* One router range of the serial temporal scan: the visible (key,
   payload) pairs of window [low, high) at time [t], sorted.  Optionally
   overlaid with [own]'s uncommitted writes (snapshot-isolation scans must
   see the transaction's own changes).  The page covering [t] is the
   current page itself when t >= its split time, otherwise the chain/TSB
   target.  Also the coordinator's fallback for ranges the parallel path
   cannot serve from stable storage. *)
let scan_range_serial eng ?own ti ~t (low, high, pid) =
  let pending = ref [] in
  let f key payload = pending := (key, payload) :: !pending in
  (* own uncommitted state of a key: present/absent/not-written-by-us *)
  let own_state page key =
    match own with
    | None -> `Not_mine
    | Some txn -> (
        match V.find_current page ~key with
        | Some slot when R.in_page_ttime page slot = Tid.Unstamped txn.E.tx_tid ->
            if R.in_page_flags page slot land R.f_delete_stub <> 0 then `Deleted
            else `Mine (payload_of page slot key)
        | Some _ | None -> `Not_mine)
  in
  BP.with_page eng.E.pool pid (fun fr ->
      let page = BP.bytes fr in
      E.stamp_page eng fr;
      Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.asof_pages;
      (* overlay: keys written by [own] in this range, decided from the
         current page regardless of which page serves time t *)
      let overlaid = Hashtbl.create 4 in
      (match own with
      | None -> ()
      | Some _ ->
          List.iter
            (fun key ->
              if in_range key ~low ~high then
                match own_state page key with
                | `Mine payload ->
                    Hashtbl.replace overlaid key ();
                    f key payload
                | `Deleted -> Hashtbl.replace overlaid key ()
                | `Not_mine -> ())
            (V.keys page));
      let scan_page pid' =
        BP.with_page eng.E.pool pid' (fun fr' ->
            if pid' <> pid then E.stamp_page eng fr';
            let page' = E.decoded_history eng (BP.bytes fr') in
            List.iter
              (fun key ->
                if in_range key ~low ~high && not (Hashtbl.mem overlaid key) then begin
                  Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.asof_versions;
                  match V.find_stamped_as_of page' ~key ~asof:t with
                  | Some slot
                    when R.in_page_flags page' slot land R.f_delete_stub = 0 ->
                      f key (payload_of page' slot key)
                  | Some _ | None -> ()
                end)
              (V.keys page'))
      in
      if Ts.compare t (P.split_time page) >= 0 then scan_page pid
      else
        match historical_page eng ti ~key:low ~t ~current_page:page with
        | Some hpid -> scan_page hpid
        | None -> ());
  List.sort compare !pending

let scan_versioned_at_serial eng ?own ?lo ?hi ti ~t emit =
  Imdb_obs.Tracer.with_span eng.E.tracer "scan.asof"
    ~attrs:[ ("table", ti.Catalog.ti_name); ("parallel", "false") ]
  @@ fun _ ->
  List.iter
    (fun range ->
      List.iter (fun (k, p) -> emit k p) (scan_range_serial eng ?own ti ~t range))
    (clipped_ranges eng ti ?lo ?hi ())

(* --- the parallel AS OF read path ------------------------------------------

   When [scan_parallelism > 1] and no own-write overlay is needed, the
   historical part of a temporal scan fans out across worker domains.
   The invariant that makes this safe: a historical page is immutable
   from the moment its time split commits — every version it holds was
   stamped before [Vpage.time_split] classified it, inserts only ever
   route to current pages, stamping no-ops on fully stamped pages, and
   history pages are never freed.  Workers therefore read history
   straight from stable storage through the histcache and never touch
   the buffer pool or the stamping machinery.  Any page that is not yet
   servable that way (still dirty-only in the pool, or failing the
   admission check) sends its whole range back to the coordinating
   domain, where [scan_range_serial] — and thus [stamp_record] /
   [stamp_page] — remains legal. *)

(* What the coordinator decided for one clipped range. *)
type range_plan =
  | Plan_rows of (string * string) list  (* served from the current page *)
  | Plan_page of int  (* scan exactly this historical page (TSB target) *)
  | Plan_walk of int  (* walk the history chain from this page id *)

(* Pure image scan: the visible versions of every in-window key of one
   page at [t].  Runs on worker domains — the metrics registry is
   domain-safe, the page image is immutable. *)
let scan_page_image_at eng ~low ~high ~t page =
  let out = ref [] in
  List.iter
    (fun key ->
      if in_range key ~low ~high then begin
        Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.asof_versions;
        match V.find_stamped_as_of page ~key ~asof:t with
        | Some slot when R.in_page_flags page slot land R.f_delete_stub = 0 ->
            out := (key, payload_of page slot key) :: !out
        | Some _ | None -> ()
      end)
    (V.keys page);
  List.sort compare !out

(* Worker-side body: serve one range's historical work from the
   histcache.  [None] = some needed page is not servable from stable
   storage; the coordinator falls back to the serial body. *)
let run_range_task eng hc ti ~t ~low ~high plan =
  let table_id = ti.Catalog.ti_id in
  match plan with
  | Plan_rows rows -> Some rows
  | Plan_page hpid -> (
      match Imdb_histcache.Histcache.get hc ~table_id hpid with
      | Some page -> Some (scan_page_image_at eng ~low ~high ~t page)
      | None -> None)
  | Plan_walk start ->
      let rec walk pid =
        if pid = P.no_page then Some []
        else
          match Imdb_histcache.Histcache.get hc ~table_id pid with
          | None -> None
          | Some page ->
              Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.asof_pages;
              if Ts.compare t (P.split_time page) >= 0 then
                Some (scan_page_image_at eng ~low ~high ~t page)
              else walk (P.history_pointer page)
      in
      walk start

(* Fold the histcache's atomic counters into the engine registry.  Only
   the coordinator publishes (engine operations are serial), so the
   deltas are race-free and the exposed counters deterministic. *)
let publish_histcache_delta eng ~before hc =
  let module M = Imdb_obs.Metrics in
  let module HC = Imdb_histcache.Histcache in
  let a = HC.stats hc in
  M.incr ~by:(a.HC.hits - before.HC.hits) eng.E.metrics M.histcache_hits;
  M.incr ~by:(a.HC.misses - before.HC.misses) eng.E.metrics M.histcache_misses;
  M.incr ~by:(a.HC.evictions - before.HC.evictions) eng.E.metrics M.histcache_evictions

let scan_versioned_at_parallel eng pool hc ?lo ?hi ti ~t emit =
  let module M = Imdb_obs.Metrics in
  (* The coordinator span is threaded into the worker closures as the
     explicit parent: workers run on other domains, where the implicit
     (stack-based) parent would be wrong. *)
  Imdb_obs.Tracer.with_span eng.E.tracer "scan.asof"
    ~attrs:[ ("table", ti.Catalog.ti_name); ("parallel", "true") ]
  @@ fun coord ->
  let s0 = Imdb_histcache.Histcache.stats hc in
  (* Phase 1 (coordinator): pin each range's current page — stamping is
     legal here — and either scan it in place (t falls in its time range)
     or plan the historical work. *)
  let plans =
    List.map
      (fun (low, high, pid) ->
        BP.with_page eng.E.pool pid (fun fr ->
            let page = BP.bytes fr in
            E.stamp_page eng fr;
            M.incr eng.E.metrics M.asof_pages;
            let plan =
              if Ts.compare t (P.split_time page) >= 0 then
                Plan_rows (scan_page_image_at eng ~low ~high ~t page)
              else
                match tsb eng ti with
                | Some index -> (
                    match Imdb_tsb.Tsb.find index ~key:low ~ts:t with
                    | Some hpid ->
                        M.incr eng.E.metrics M.asof_pages;
                        Plan_page hpid
                    | None -> Plan_rows [])
                | None -> Plan_walk (P.history_pointer page)
            in
            (low, high, pid, plan)))
      (clipped_ranges eng ti ?lo ?hi ())
  in
  let tasks = Array.of_list plans in
  let fanout =
    Array.fold_left
      (fun acc (_, _, _, plan) ->
        match plan with Plan_rows _ -> acc | Plan_page _ | Plan_walk _ -> acc + 1)
      0 tasks
  in
  M.observe eng.E.metrics M.h_scan_fanout fanout;
  Imdb_obs.Tracer.add_attr coord "ranges" (string_of_int (Array.length tasks));
  Imdb_obs.Tracer.add_attr coord "fanout" (string_of_int fanout);
  (* Phase 2: fan the ranges out across the worker domains (the
     coordinator participates in the drain). *)
  let results =
    Imdb_parallel.Pool.run pool
      (fun i ->
        let low, high, _, plan = tasks.(i) in
        Imdb_obs.Tracer.with_span eng.E.tracer ~parent:coord "scan.range"
          ~attrs:[ ("range", string_of_int i) ]
        @@ fun _ -> run_range_task eng hc ti ~t ~low ~high plan)
      (Array.length tasks)
  in
  (* Phase 3 (coordinator): ranges the workers could not serve fall back
     to the serial body. *)
  let rows =
    Array.mapi
      (fun i res ->
        match res with
        | Some rows -> rows
        | None ->
            M.incr eng.E.metrics M.scan_parallel_fallbacks;
            let low, high, pid, _ = tasks.(i) in
            scan_range_serial eng ti ~t (low, high, pid))
      results
  in
  publish_histcache_delta eng ~before:s0 hc;
  (* Ranges are emitted in router order, each sorted: the output is
     identical to the serial path's. *)
  Array.iter (fun rs -> List.iter (fun (k, p) -> emit k p) rs) rows

(* Core of temporal scans: dispatch to the parallel path when it is both
   enabled and applicable (no own-write overlay: AS OF scans), otherwise
   run serially.  [scan_parallelism = 1] never constructs the parallel
   machinery at all. *)
let scan_versioned_at eng ?own ?lo ?hi ti ~t emit =
  let parallel_ctx =
    match own with
    | Some _ -> None
    | None -> (
        match eng.E.histcache with
        | None -> None
        | Some hc -> (
            match E.scan_pool eng with
            | Some pool -> Some (pool, hc)
            | None -> None))
  in
  match parallel_ctx with
  | Some (pool, hc) -> scan_versioned_at_parallel eng pool hc ?lo ?hi ti ~t emit
  | None -> scan_versioned_at_serial eng ?own ?lo ?hi ti ~t emit

(* AS OF scan at time [t] (the paper's Section 5.2 experiment),
   optionally bounded to a key window — the access path of the paper's
   own example, [SELECT * FROM MovingObjects WHERE Oid < 10] under
   [BEGIN TRAN AS OF ...]. *)
let scan_as_of eng ?lo ?hi txn ti ~t f =
  E.check_running txn;
  if ti.Catalog.ti_mode <> Catalog.Immortal then
    raise (Not_versioned (ti.Catalog.ti_name ^ ": AS OF needs an IMMORTAL table"));
  flush_ingest eng ti;
  scan_versioned_at eng ?lo ?hi ti ~t f

(* Isolation-aware scan: what SELECT sees.  Serializable transactions
   scan the locked current state; snapshot transactions scan their
   snapshot (own writes visible); AS OF transactions scan history. *)
let scan eng ?lo ?hi txn ti f =
  E.check_running txn;
  flush_ingest eng ti;
  match (ti.Catalog.ti_mode, txn.E.tx_isolation) with
  | Catalog.Conventional, _ | _, E.Serializable -> scan_current eng ?lo ?hi txn ti f
  | _, E.Snapshot_isolation ->
      scan_versioned_at eng ~own:txn ?lo ?hi ti ~t:txn.E.tx_snapshot f
  | _, E.As_of t -> scan_as_of eng ?lo ?hi txn ti ~t f

(* Time travel: the full version history of [key], newest first, as
   (timestamp, payload option) — None marks a deletion. *)
let history_serial eng ti ~key =
  Imdb_obs.Tracer.with_span eng.E.tracer "history.walk"
    ~attrs:[ ("table", ti.Catalog.ti_name); ("parallel", "false") ]
  @@ fun _ ->
  let pid = locate_page eng ti ~key in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let collect_page pid' =
    BP.with_page eng.E.pool pid' (fun fr ->
        E.stamp_page eng fr;
        let page = E.decoded_history eng (BP.bytes fr) in
        List.iter
          (fun slot ->
            match R.in_page_timestamp page slot with
            | Some ts ->
                (* redundant copies from time splits appear in two pages;
                   dedupe on the start timestamp, unique per version *)
                if not (Hashtbl.mem seen ts) then begin
                  Hashtbl.add seen ts ();
                  let v =
                    if R.in_page_flags page slot land R.f_delete_stub <> 0 then None
                    else Some (payload_of page slot key)
                  in
                  out := (ts, v) :: !out
                end
            | None -> () (* uncommitted: not part of history *))
          (V.all_versions_of page ~key);
        P.history_pointer page)
  in
  let rec walk pid' = if pid' <> P.no_page then walk (collect_page pid') in
  walk pid;
  List.sort (fun (a, _) (b, _) -> Ts.compare b a) !out

(* Pure image read for the parallel history walk: [key]'s committed
   versions in one page, (start ts, payload option), None = delete stub.
   Uncommitted versions (still carrying a TID) are not part of history. *)
let versions_of_key_image page ~key =
  List.filter_map
    (fun slot ->
      match R.in_page_timestamp page slot with
      | Some ts ->
          let v =
            if R.in_page_flags page slot land R.f_delete_stub <> 0 then None
            else Some (payload_of page slot key)
          in
          Some (ts, v)
      | None -> None)
    (V.all_versions_of page ~key)

(* Parallel history: the coordinator reads the (mutable) current page
   under the buffer pool and collects the chain as immutable images from
   the histcache; version extraction from those images fans out.  A chain
   page the histcache cannot serve is read — and stamped — inline by the
   coordinator, counted as a fallback. *)
let history_parallel eng pool hc ti ~key =
  let module M = Imdb_obs.Metrics in
  let module HC = Imdb_histcache.Histcache in
  Imdb_obs.Tracer.with_span eng.E.tracer "history.walk"
    ~attrs:[ ("table", ti.Catalog.ti_name); ("parallel", "true") ]
  @@ fun coord ->
  let table_id = ti.Catalog.ti_id in
  let s0 = HC.stats hc in
  let pid = locate_page eng ti ~key in
  let current_versions, first_hist =
    BP.with_page eng.E.pool pid (fun fr ->
        let page = BP.bytes fr in
        E.stamp_page eng fr;
        (versions_of_key_image page ~key, P.history_pointer page))
  in
  (* Walk the chain once on the coordinator, capturing page images in
     chain order (newest first).  Frame bytes must not outlive the pin,
     so the fallback extracts inside [with_page]. *)
  let chain = ref [] in
  let p = ref first_hist in
  while !p <> P.no_page do
    let pid' = !p in
    match HC.get hc ~table_id pid' with
    | Some page ->
        chain := `Image page :: !chain;
        p := P.history_pointer page
    | None ->
        M.incr eng.E.metrics M.scan_parallel_fallbacks;
        let rows, next =
          BP.with_page eng.E.pool pid' (fun fr ->
              E.stamp_page eng fr;
              let page = E.decoded_history eng (BP.bytes fr) in
              (versions_of_key_image page ~key, P.history_pointer page))
        in
        chain := `Rows rows :: !chain;
        p := next
  done;
  let chain = Array.of_list (List.rev !chain) in
  Imdb_obs.Tracer.add_attr coord "chain" (string_of_int (Array.length chain));
  let extracted =
    Imdb_parallel.Pool.run pool
      (fun i ->
        Imdb_obs.Tracer.with_span eng.E.tracer ~parent:coord "history.page"
          ~attrs:[ ("link", string_of_int i) ]
        @@ fun _ ->
        match chain.(i) with
        | `Image page -> versions_of_key_image page ~key
        | `Rows rows -> rows)
      (Array.length chain)
  in
  publish_histcache_delta eng ~before:s0 hc;
  (* Merge newest page first, deduping on the start timestamp (redundant
     copies from time splits appear in two pages) — the same order the
     serial walk visits, so the result is identical. *)
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add (ts, v) =
    if not (Hashtbl.mem seen ts) then begin
      Hashtbl.add seen ts ();
      out := (ts, v) :: !out
    end
  in
  List.iter add current_versions;
  Array.iter (fun rows -> List.iter add rows) extracted;
  List.sort (fun (a, _) (b, _) -> Ts.compare b a) !out

let history eng txn ti ~key =
  E.check_running txn;
  if ti.Catalog.ti_mode <> Catalog.Immortal then
    raise (Not_versioned (ti.Catalog.ti_name ^ ": history needs an IMMORTAL table"));
  flush_ingest eng ti;
  match eng.E.histcache with
  | Some hc -> (
      match E.scan_pool eng with
      | Some pool -> history_parallel eng pool hc ti ~key
      | None -> history_serial eng ti ~key)
  | None -> history_serial eng ti ~key

(* --- maintenance hooks used by commit (eager timestamping) ------------------ *)

(* Stamp every version the committing transaction wrote, *logging* each
   patch — the eager strategy of Section 2.2, implemented for the
   lazy-vs-eager ablation.  Revisits pages by key (they may have split
   since the write, possibly causing extra I/O: the measured drawback). *)
let eager_stamp_writes eng txn ~ts =
  List.iter
    (fun (table_id, key) ->
      match E.table_by_id eng table_id with
      | Some ti when is_versioned ti ->
          let pid, _, _ = locate eng ti ~key in
          BP.with_page eng.E.pool pid (fun fr ->
              let page = BP.bytes fr in
              List.iter
                (fun slot ->
                  match R.in_page_ttime page slot with
                  | Tid.Unstamped tid when Tid.equal tid txn.E.tx_tid ->
                      let at = R.tail_offset_in_body page slot + 2 in
                      let old_b = P.read_cell_part page slot ~at ~len:12 in
                      let new_b = Bytes.create 12 in
                      Imdb_util.Codec.set_i64 new_b 0 (Ts.ttime ts);
                      Imdb_util.Codec.set_u32 new_b 8 (Ts.sn ts);
                      E.exec_op eng fr ~undoable:false
                        (LR.Op_patch { slot; at; old_b; new_b });
                      Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.stamps_applied;
                      Imdb_tstamp.Vtt.note_stamped (E.vtt eng) tid
                        ~end_of_log:(Imdb_wal.Wal.next_lsn eng.E.wal)
                  | _ -> ())
                (V.all_versions_of page ~key))
      | _ -> ())
    txn.E.tx_writes
