lib/tstamp/vtt.ml: Fmt Imdb_clock Imdb_util Int64 Printf
