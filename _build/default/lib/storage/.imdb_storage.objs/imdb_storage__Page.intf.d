lib/storage/page.mli: Format Imdb_clock
