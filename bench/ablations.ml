(* Ablation experiments for the design choices the paper argues in prose:
   TSB-tree indexing (Section 7.2), lazy vs eager timestamping (2.2),
   PTT garbage collection (2.2), integrated vs split storage (6.3),
   the key-split threshold T (3.3) and snapshot-isolation reads (1.2). *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module Table = Imdb_core.Table
module S = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp
module Driver = Imdb_workload.Driver
module Mo = Imdb_workload.Moving_objects
module M = Imdb_obs.Metrics

(* --- Ext A: TSB-indexed AS OF vs page-chain traversal --------------------- *)

let tsb ~scale =
  let total = Harness.scaled ~scale 36000 in
  let inserts = Harness.scaled ~scale 500 in
  let chain = Fig6.series ~tsb:false ~inserts ~total in
  let indexed = Fig6.series ~tsb:true ~inserts ~total in
  let rows =
    List.map2
      (fun (pc, (c : Driver.scan_measure)) (_, (x : Driver.scan_measure)) ->
        [ string_of_int pc; Harness.ms c.Driver.sm_elapsed_s;
          string_of_int c.Driver.sm_pages; Harness.ms x.Driver.sm_elapsed_s;
          string_of_int x.Driver.sm_pages ])
      chain indexed
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ext A: AS OF scan, page-chain walk vs TSB-tree index (%d txns, %d objects)"
         total inserts)
    ~header:[ "% hist"; "chain ms"; "chain pages"; "TSB ms"; "TSB pages" ]
    rows;
  Fmt.pr
    "paper prediction (7.2): with the TSB-tree, AS OF cost is ~independent of \
     the requested time.@."

(* --- Ext B: lazy vs eager timestamping ------------------------------------ *)

(* The eager strategy's measured drawbacks (Section 2.2): the commit must
   revisit every record the transaction touched — pages that may have left
   the buffer pool — and log every stamp, lengthening the commit path
   while locks are still held.  To exercise exactly that, transactions
   update [batch] random records spread over a key space much larger than
   the buffer pool, and we time the commit path separately. *)
let lazy_eager ~scale =
  let n_txns = Harness.scaled ~scale 400 in
  let batch = 50 in
  let key_space = 20000 in
  let run mode =
    Gc.compact ();
    let config =
      { E.default_config with E.timestamping = mode; E.pool_capacity = 64 }
    in
    let clock = Imdb_clock.Clock.create_logical () in
    let db = Db.open_memory ~config ~clock () in
    Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:Driver.moving_objects_schema;
    let rng = Imdb_util.Rng.create 7 in
    let commit_time = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to n_txns do
      Imdb_clock.Clock.advance clock 20L;
      let txn = Db.begin_txn db in
      for _ = 1 to batch do
        let k = Imdb_util.Rng.int rng key_space in
        Db.upsert_row db txn ~table:"t" [ S.V_int k; S.V_int i; S.V_int i ]
      done;
      let c0 = Unix.gettimeofday () in
      ignore (Db.commit db txn);
      commit_time := !commit_time +. (Unix.gettimeofday () -. c0)
    done;
    let total = Unix.gettimeofday () -. t0 in
    let m = Db.metrics db in
    let misses = M.get m M.buf_misses in
    let log_recs = M.get m M.log_appends in
    let log_bytes = M.get m M.log_bytes in
    Db.close db;
    (total, !commit_time, misses, log_recs, log_bytes)
  in
  let lt, lc, lm, lr, lb = run E.Lazy_stamping in
  let et, ec, em, er, eb = run E.Eager_stamping in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ext B: lazy vs eager timestamping (%d txns x %d records over %d keys, \
          64-page pool)"
         n_txns batch key_space)
    ~header:
      [ "mode"; "total ms"; "commit-path ms"; "buf misses"; "log recs"; "log bytes" ]
    [
      [ "lazy"; Harness.ms lt; Harness.ms lc; string_of_int lm; string_of_int lr;
        string_of_int lb ];
      [ "eager"; Harness.ms et; Harness.ms ec; string_of_int em; string_of_int er;
        string_of_int eb ];
    ];
  Fmt.pr
    "paper argument (2.2): eager revisits every updated record at commit (extra \
     I/O for evicted pages), logs every stamp, and delays the commit record \
     while locks are held; lazy does one PTT insert and stamps later, unlogged.@."

(* --- Ext C: PTT garbage collection ---------------------------------------- *)

let ptt_gc ~scale =
  let total = Harness.scaled ~scale 16000 in
  let inserts = min 500 total in
  let events = Mo.generate ~seed:42 ~inserts ~total () in
  let run ~checkpoint_every =
    let config = { E.default_config with E.auto_checkpoint_every = checkpoint_every } in
    let db, clock = Driver.fresh_moving_objects ~config ~mode:Db.Immortal () in
    (* sample PTT size every 2000 events *)
    let samples = ref [] in
    let count = ref 0 in
    List.iter
      (fun ev ->
        Imdb_clock.Clock.advance clock 20L;
        let txn = Db.begin_txn db in
        (match ev with
        | Mo.Insert { oid; x; y } ->
            Db.insert_row db txn ~table:"MovingObjects" [ S.V_int oid; S.V_int x; S.V_int y ]
        | Mo.Update { oid; x; y } ->
            Db.update_row db txn ~table:"MovingObjects" [ S.V_int oid; S.V_int x; S.V_int y ]);
        ignore (Db.commit db txn);
        incr count;
        if !count mod 2000 = 0 then
          samples :=
            Imdb_tstamp.Ptt.count (E.ptt_exn (Db.engine db)) :: !samples)
      events;
    let final = Imdb_tstamp.Ptt.count (E.ptt_exn (Db.engine db)) in
    Db.close db;
    (List.rev !samples, final)
  in
  let gc_samples, gc_final = run ~checkpoint_every:1000 in
  let nogc_samples, nogc_final = run ~checkpoint_every:0 in
  let rows =
    List.mapi
      (fun i (a, b) -> [ string_of_int ((i + 1) * 2000); string_of_int a; string_of_int b ])
      (List.combine gc_samples nogc_samples)
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ext C: PTT size over time, checkpoint+GC every 1000 commits vs never (%d txns)"
         total)
    ~header:[ "after txns"; "PTT size (GC)"; "PTT size (no GC)" ]
    (rows @ [ [ "final"; string_of_int gc_final; string_of_int nogc_final ] ]);
  Fmt.pr
    "paper argument (2.2): incremental GC keeps the PTT small; without it the \
     table grows with every transaction.@."

(* --- Ext D: integrated storage vs split store ------------------------------ *)

let split_store ~scale =
  let total = Harness.scaled ~scale 12000 in
  let inserts = min 500 total in
  let events = Mo.generate ~seed:42 ~inserts ~total () in
  let small_pool = { E.default_config with E.pool_capacity = 48 } in
  (* integrated: the engine's immortal table *)
  let db, clock = Driver.fresh_moving_objects ~config:small_pool ~mode:Db.Immortal () in
  let res = Driver.run_events ~clock db ~table:"MovingObjects" events in
  let n = List.length res.Driver.rr_commit_ts in
  let probe pc = List.nth res.Driver.rr_commit_ts (min (n - 1) (pc * n / 100)) in
  (* split store: same events, same engine substrate, two B-trees *)
  let clock2 = Imdb_clock.Clock.create_logical () in
  let db2 = Db.open_memory ~config:small_pool ~clock:clock2 () in
  let ss = Imdb_core.Split_store.create (Db.engine db2) ~table_id:99 in
  let encode_payload x y = Printf.sprintf "%d,%d" x y in
  List.iter
    (fun ev ->
      Imdb_clock.Clock.advance clock2 20L;
      let txn = Db.begin_txn db2 in
      (match ev with
      | Mo.Insert { oid; x; y } ->
          Imdb_core.Split_store.insert ss txn ~key:(S.encode_key (S.V_int oid))
            ~payload:(encode_payload x y)
      | Mo.Update { oid; x; y } ->
          Imdb_core.Split_store.update ss txn ~key:(S.encode_key (S.V_int oid))
            ~payload:(encode_payload x y));
      ignore (Db.commit db2 txn))
    events;
  let with_misses db f =
    let m = Db.metrics db in
    let before = M.get m M.buf_misses in
    let t, v = Harness.time_it f in
    (t, v, M.get m M.buf_misses - before)
  in
  (* full AS OF scans *)
  let scan_rows =
    List.map
      (fun pc ->
        let ts = probe pc in
        let t_int, n_int, m_int =
          with_misses db (fun () ->
              let c = ref 0 in
              Db.as_of db ts (fun txn ->
                  Db.scan db txn ~table:"MovingObjects" (fun _ _ -> incr c));
              !c)
        in
        let t_split, n_split, m_split =
          with_misses db2 (fun () ->
              let c = ref 0 in
              Db.exec db2 (fun txn ->
                  Imdb_core.Split_store.scan_as_of ss txn ~ts (fun _ _ -> incr c));
              !c)
        in
        ignore n_split;
        [ string_of_int pc; Harness.ms t_int; string_of_int m_int;
          Harness.ms t_split; string_of_int m_split; string_of_int n_int ])
      [ 25; 50; 75; 100 ]
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ext D: full AS OF scans, integrated vs split store (%d txns, %d objects, \
          48-page pool)"
         total inserts)
    ~header:
      [ "% hist"; "integrated ms"; "misses"; "split ms"; "misses"; "rows" ]
    scan_rows;
  (* point AS OF reads: the double-structure probe the paper critiques *)
  let point_rows =
    List.map
      (fun pc ->
        let ts = probe pc in
        let t_int, _, m_int =
          with_misses db (fun () ->
              for oid = 1 to inserts do
                ignore
                  (Db.as_of db ts (fun txn ->
                       Db.get_row db txn ~table:"MovingObjects" ~key:(S.V_int oid)))
              done)
        in
        let t_split, _, m_split =
          with_misses db2 (fun () ->
              for oid = 1 to inserts do
                ignore
                  (Db.exec db2 (fun txn ->
                       Imdb_core.Split_store.read_as_of ss txn
                         ~key:(S.encode_key (S.V_int oid)) ~ts))
              done)
        in
        [ string_of_int pc; Harness.ms t_int; string_of_int m_int;
          Harness.ms t_split; string_of_int m_split ])
      [ 25; 50; 75; 100 ]
  in
  Db.close db;
  Db.close db2;
  Harness.print_table
    ~title:(Printf.sprintf "Ext D: %d point AS OF reads" inserts)
    ~header:[ "% hist"; "integrated ms"; "misses"; "split ms"; "misses" ]
    point_rows;
  Fmt.pr
    "paper argument (6.3): a separate history store forces AS OF queries to \
     search both structures; integrated storage touches one page set.@."

(* --- Ext E: key-split threshold T ------------------------------------------ *)

let util ~scale =
  let total = Harness.scaled ~scale 20000 in
  let inserts = min (Harness.scaled ~scale 4000) total in
  let events = Mo.generate ~seed:42 ~inserts ~total () in
  let run threshold =
    let config = { E.default_config with E.key_split_threshold = threshold } in
    let db, clock = Driver.fresh_moving_objects ~config ~mode:Db.Immortal () in
    ignore (Driver.run_events ~clock db ~table:"MovingObjects" events);
    (* single-timeslice utilization: live current bytes per current page *)
    let eng = Db.engine db in
    let ti = Db.table_info db "MovingObjects" in
    let utils = ref [] in
    List.iter
      (fun (_, _, pid) ->
        Imdb_buffer.Buffer_pool.with_page eng.E.pool pid (fun fr ->
            let page = Imdb_buffer.Buffer_pool.bytes fr in
            (* count only current (slot-visible) versions, i.e. the single
               newest time slice *)
            let live = ref 0 in
            List.iter
              (fun (_, slot) ->
                live := !live + Imdb_storage.Page.cell_length page slot + 2)
              (Imdb_version.Vpage.current_slots page);
            utils :=
              (float_of_int !live
              /. float_of_int (8192 - Imdb_storage.Page.header_size))
              :: !utils))
      (Table.router_ranges eng ti);
    let n_pages = List.length !utils in
    let mean = List.fold_left ( +. ) 0.0 !utils /. float_of_int (max 1 n_pages) in
    let m = Db.metrics db in
    let ks = M.get m M.key_splits and tss = M.get m M.time_splits in
    Db.close db;
    (mean, n_pages, ks, tss)
  in
  let rows =
    List.map
      (fun threshold ->
        let mean, pages, ks, tss = run threshold in
        [
          Fmt.str "%.2f" threshold;
          Fmt.str "%.3f" mean;
          Fmt.str "%.3f" (threshold *. log 2.0);
          string_of_int pages;
          string_of_int ks;
          string_of_int tss;
        ])
      [ 0.3; 0.5; 0.7; 0.9 ]
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ext E: key-split threshold T vs current-timeslice utilization (%d txns)"
         total)
    ~header:
      [ "T"; "mean utilization"; "T*ln2 (theory)"; "current pages"; "key splits";
        "time splits" ]
    rows;
  Fmt.pr
    "paper claim (3.3): single-timeslice utilization under updates approaches \
     T*ln 2.@."

(* --- Ext F: snapshot-isolation reads --------------------------------------- *)

let snapshot ~scale =
  let n_rounds = Harness.scaled ~scale 2000 in
  let db, clock = Driver.fresh_moving_objects ~mode:Db.Immortal () in
  (* seed 100 objects *)
  for oid = 1 to 100 do
    Imdb_clock.Clock.advance clock 20L;
    let txn = Db.begin_txn db in
    Db.insert_row db txn ~table:"MovingObjects" [ S.V_int oid; S.V_int 0; S.V_int 0 ];
    ignore (Db.commit db txn)
  done;
  (* a long snapshot reader probes a key between writer commits *)
  let si_conflicts = ref 0 in
  let t_si, () =
    Harness.time_it (fun () ->
        let reader = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
        for i = 1 to n_rounds do
          Imdb_clock.Clock.advance clock 20L;
          let w = Db.begin_txn db in
          Db.update_row db w ~table:"MovingObjects"
            [ S.V_int (1 + (i mod 100)); S.V_int i; S.V_int i ];
          ignore (Db.commit db w);
          match Db.get_row db reader ~table:"MovingObjects" ~key:(S.V_int (1 + (i mod 100))) with
          | Some [ _; S.V_int x; _ ] when x = 0 -> () (* snapshot-stable *)
          | _ -> incr si_conflicts
        done;
        ignore (Db.commit db reader))
  in
  (* serializable reader: the writer conflicts against its S locks *)
  let ser_conflicts = ref 0 in
  let t_ser, () =
    Harness.time_it (fun () ->
        let reader = Db.begin_txn ~isolation:Db.Serializable db in
        for i = 1 to n_rounds do
          Imdb_clock.Clock.advance clock 20L;
          ignore (Db.get_row db reader ~table:"MovingObjects" ~key:(S.V_int (1 + (i mod 100))));
          let w = Db.begin_txn db in
          (match
             Db.update_row db w ~table:"MovingObjects"
               [ S.V_int (1 + (i mod 100)); S.V_int i; S.V_int i ]
           with
          | () -> ignore (Db.commit db w)
          | exception Imdb_lock.Lock_manager.Conflict _ ->
              incr ser_conflicts;
              Db.abort db w
          | exception E.Deadlock_abort _ ->
              incr ser_conflicts;
              Db.abort db w)
        done;
        ignore (Db.commit db reader))
  in
  Db.close db;
  Harness.print_table
    ~title:(Printf.sprintf "Ext F: snapshot isolation vs 2PL reads (%d rounds)" n_rounds)
    ~header:
      [ "reader mode"; "elapsed ms"; "reader anomalies"; "writes blocked";
        "writes committed" ]
    [
      [ "snapshot"; Harness.ms t_si; string_of_int !si_conflicts; "0";
        string_of_int n_rounds ];
      [ "serializable"; Harness.ms t_ser; "0"; string_of_int !ser_conflicts;
        string_of_int (n_rounds - !ser_conflicts) ];
    ];
  Fmt.pr
    "paper claim (1.2): snapshot reads are never blocked by concurrent updates \
     and see a stable snapshot; 2PL readers block writers instead.@."

(* --- Ext G: storage amplification of immortality ---------------------------- *)

(* What does keeping every version cost in space?  Compare page counts
   across table modes on the same stream, and measure the redundancy that
   time splits introduce (versions copied to both pages, Fig. 3 case 2).
   The paper's design accepts this redundancy to guarantee that every
   page contains all versions alive in its time range. *)
let space ~scale =
  let total = Harness.scaled ~scale 20000 in
  let inserts = min 500 total in
  let events = Mo.generate ~seed:42 ~inserts ~total () in
  let logical_bytes = total * 33 (* ~ one version's record bytes *) in
  let run mode =
    let db, clock = Driver.fresh_moving_objects ~mode () in
    ignore (Driver.run_events ~clock db ~table:"MovingObjects" events);
    let hwm = (Db.engine db).E.meta.Imdb_core.Meta.hwm in
    let m = Db.metrics db in
    let copied = M.get m M.split_copied in
    let tss = M.get m M.time_splits and kss = M.get m M.key_splits in
    Db.close db;
    (hwm, tss, kss, copied)
  in
  let rows =
    List.map
      (fun (label, mode) ->
        let hwm, tss, kss, _ = run mode in
        [
          label;
          string_of_int hwm;
          Fmt.str "%.1fx" (float_of_int (hwm * 8192) /. float_of_int logical_bytes);
          string_of_int tss;
          string_of_int kss;
        ])
      [
        ("immortal", Db.Immortal);
        ("snapshot", Db.Snapshot_table);
        ("conventional", Db.Conventional);
      ]
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ext G: storage across table modes (%d txns, %d objects; logical data \
          ~%d KB)"
         total inserts (logical_bytes / 1024))
    ~header:[ "mode"; "pages"; "bytes/logical"; "time splits"; "key splits" ]
    rows;
  Fmt.pr
    "immortality stores every version (plus split redundancy); snapshot tables \
     GC to the visible set; conventional stores only current rows.@."

(* --- Ext H: recovery time vs checkpoint frequency ---------------------------- *)

(* Checkpointing exists to bound recovery (and to advance the PTT GC
   horizon).  Crash after N transactions under different checkpoint
   intervals and measure the restart: analysis+redo work shrinks with
   checkpoint frequency, at the cost of checkpoint-time page sweeps
   during normal operation. *)
let recovery ~scale =
  let total = Harness.scaled ~scale 16000 in
  let inserts = min 500 total in
  let events = Mo.generate ~seed:42 ~inserts ~total () in
  let rows =
    List.map
      (fun every ->
        let config = { E.default_config with E.auto_checkpoint_every = every } in
        let db, clock = Driver.fresh_moving_objects ~config ~mode:Db.Immortal () in
        let load = Driver.run_events ~clock db ~table:"MovingObjects" events in
        let t0 = Unix.gettimeofday () in
        let db = Db.crash_and_reopen ~config ~clock db in
        let recovery_s = Unix.gettimeofday () -. t0 in
        (* the reopened engine carries a fresh registry, so its counters
           are exactly the work recovery did *)
        let get name = M.get (Db.metrics db) name in
        (* recovered data sanity: all objects present *)
        let _, n = Driver.timed_scan_current db ~table:"MovingObjects" in
        Db.close db;
        [
          (if every = 0 then "never" else string_of_int every);
          Harness.ms load.Driver.rr_elapsed_s;
          Harness.ms recovery_s;
          string_of_int (get M.disk_reads);
          string_of_int n;
        ])
      [ 0; 4000; 1000; 250 ]
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "Ext H: recovery time vs checkpoint interval (%d txns)" total)
    ~header:[ "ckpt every"; "load ms"; "recovery ms"; "recovery reads"; "rows" ]
    rows;
  Fmt.pr
    "checkpoints bound the redo scan (and keep the PTT collected) at the cost \
     of periodic page sweeps during normal operation.@."

(* --- deterministic ablation counters for the CI gate ------------------------ *)

(* The named experiments above print operator tables (with wall times);
   this one distills their deterministic skeletons into BENCH_ablations:
   PTT sizes with and without GC (plus the batched-drain histogram),
   page counts across table modes, and the logging cost of lazy vs eager
   timestamping.  Every value is a pure function of the workload. *)
let ablations ~scale =
  (* Ext C: final PTT size with and without GC, and the batch drains *)
  let gc_txns = Harness.scaled ~scale 16000 in
  let gc_events = Mo.generate ~seed:42 ~inserts:(min 500 gc_txns) ~total:gc_txns () in
  let run_gc ~checkpoint_every =
    let config = { E.default_config with E.auto_checkpoint_every = checkpoint_every } in
    let db, clock = Driver.fresh_moving_objects ~config ~mode:Db.Immortal () in
    ignore (Driver.run_events ~clock db ~table:"MovingObjects" gc_events);
    let final = Imdb_tstamp.Ptt.count (E.ptt_exn (Db.engine db)) in
    let h = M.histogram (Db.metrics db) M.h_ptt_gc_batch in
    Db.close db;
    (final, h)
  in
  let gc_final, gc_hist = run_gc ~checkpoint_every:1000 in
  let nogc_final, _ = run_gc ~checkpoint_every:0 in
  let gc_batches, gc_drained =
    match gc_hist with
    | Some h -> (h.M.h_count, h.M.h_sum)
    | None -> (0, 0)
  in
  (* Ext G: storage across table modes *)
  let sp_txns = Harness.scaled ~scale 20000 in
  let sp_events = Mo.generate ~seed:42 ~inserts:(min 500 sp_txns) ~total:sp_txns () in
  let run_space (label, mode) =
    let db, clock = Driver.fresh_moving_objects ~mode () in
    ignore (Driver.run_events ~clock db ~table:"MovingObjects" sp_events);
    let hwm = (Db.engine db).E.meta.Imdb_core.Meta.hwm in
    let m = Db.metrics db in
    let tss = M.get m M.time_splits and kss = M.get m M.key_splits in
    Db.close db;
    let module J = Imdb_obs.Json in
    J.Obj
      [
        ("mode", J.String label);
        ("pages", J.Int hwm);
        ("time_splits", J.Int tss);
        ("key_splits", J.Int kss);
      ]
  in
  let space_series =
    List.map run_space
      [
        ("immortal", Db.Immortal);
        ("snapshot", Db.Snapshot_table);
        ("conventional", Db.Conventional);
      ]
  in
  (* Ext B: the logging cost of eager timestamping *)
  let ts_txns = Harness.scaled ~scale 400 in
  let run_stamping mode =
    let config =
      { E.default_config with E.timestamping = mode; E.pool_capacity = 64 }
    in
    let clock = Imdb_clock.Clock.create_logical () in
    let db = Db.open_memory ~config ~clock () in
    Db.create_table db ~name:"t" ~mode:Db.Immortal
      ~schema:Driver.moving_objects_schema;
    let rng = Imdb_util.Rng.create 7 in
    for i = 1 to ts_txns do
      Imdb_clock.Clock.advance clock 20L;
      let txn = Db.begin_txn db in
      for _ = 1 to 50 do
        let k = Imdb_util.Rng.int rng 20000 in
        Db.upsert_row db txn ~table:"t" [ S.V_int k; S.V_int i; S.V_int i ]
      done;
      ignore (Db.commit db txn)
    done;
    let m = Db.metrics db in
    let recs = M.get m M.log_appends and bytes = M.get m M.log_bytes in
    Db.close db;
    (recs, bytes)
  in
  let lazy_recs, lazy_bytes = run_stamping E.Lazy_stamping in
  let eager_recs, eager_bytes = run_stamping E.Eager_stamping in
  let module J = Imdb_obs.Json in
  Harness.emit_json ~name:"ablations"
    (J.Obj
       [
         ("schema_version", J.Int M.schema_version);
         ( "ptt_gc",
           J.Obj
             [
               ("txns", J.Int gc_txns);
               ("final_with_gc", J.Int gc_final);
               ("final_without_gc", J.Int nogc_final);
               ("gc_batches", J.Int gc_batches);
               ("gc_drained", J.Int gc_drained);
             ] );
         ("space", J.List space_series);
         ( "timestamping",
           J.Obj
             [
               ("txns", J.Int ts_txns);
               ("lazy_log_records", J.Int lazy_recs);
               ("lazy_log_bytes", J.Int lazy_bytes);
               ("eager_log_records", J.Int eager_recs);
               ("eager_log_bytes", J.Int eager_bytes);
             ] );
       ]);
  Harness.print_table
    ~title:
      (Printf.sprintf
         "ablations (CI gate): PTT GC (%d txns), storage modes (%d txns), \
          stamping strategies (%d txns)"
         gc_txns sp_txns ts_txns)
    ~header:[ "quantity"; "value" ]
    [
      [ "PTT final (GC on)"; string_of_int gc_final ];
      [ "PTT final (GC off)"; string_of_int nogc_final ];
      [ "GC batch drains"; string_of_int gc_batches ];
      [ "TIDs drained"; string_of_int gc_drained ];
      [ "lazy log bytes"; string_of_int lazy_bytes ];
      [ "eager log bytes"; string_of_int eager_bytes ];
    ]

let () =
  Harness.register ~name:"tsb" ~doc:"TSB index vs chain walk (Ext A)" tsb;
  Harness.register ~name:"ablations"
    ~doc:"deterministic ablation counters for the CI gate (Ext B/C/G)" ablations;
  Harness.register ~name:"lazy-eager" ~doc:"lazy vs eager timestamping (Ext B)" lazy_eager;
  Harness.register ~name:"ptt-gc" ~doc:"PTT garbage collection (Ext C)" ptt_gc;
  Harness.register ~name:"split-store" ~doc:"integrated vs split store (Ext D)" split_store;
  Harness.register ~name:"util" ~doc:"key-split threshold sweep (Ext E)" util;
  Harness.register ~name:"snapshot" ~doc:"snapshot isolation reads (Ext F)" snapshot;
  Harness.register ~name:"space" ~doc:"storage amplification (Ext G)" space;
  Harness.register ~name:"recovery" ~doc:"recovery time vs checkpoints (Ext H)" recovery
