(* Endurance & environment tests: tiny buffer pools (eviction pressure and
   flush-time stamping), file-backed databases with true reopen, and the
   split-store baseline's unit behavior. *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp
module Ss = Imdb_core.Split_store

(* --- buffer pressure --------------------------------------------------------- *)

(* A pool of 8 pages forces constant eviction: every write-back runs the
   pre-flush stamping hook, history pages cycle in and out of cache, and
   reads fault pages back with their TIDs resolved through the PTT. *)
let test_tiny_pool_end_to_end () =
  let config = { E.default_config with E.pool_capacity = 8; E.auto_checkpoint_every = 50 } in
  let db, clock = fresh_db ~config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  let stamps = ref [] in
  (* fat payloads so history outgrows the 8-frame pool quickly *)
  let fat u = Printf.sprintf "v%d-%s" u (String.make 180 'x') in
  for i = 1 to 10 do
    tick clock;
    ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row i (fat 0))))
  done;
  for u = 1 to 400 do
    tick clock;
    let k = 1 + (u mod 10) in
    let ts =
      commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row k (fat u)))
    in
    if u mod 50 = 0 then stamps := (k, u, ts) :: !stamps
  done;
  Alcotest.(check bool) "evictions happened" true
    (Imdb_obs.Metrics.(get (Db.metrics db) buf_evictions) > 0);
  (* current state correct *)
  Db.exec db (fun txn ->
      Alcotest.(check int) "ten rows" 10 (List.length (Db.scan_rows db txn ~table:"t")));
  (* sampled historical states correct despite all the page cycling *)
  List.iter
    (fun (k, u, ts) ->
      let got = Db.as_of db ts (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int k)) in
      Alcotest.(check bool)
        (Printf.sprintf "as of update %d" u)
        true
        (got = Some (row k (fat u))))
    !stamps;
  Db.close db

let test_tiny_pool_with_crash () =
  let config = { E.default_config with E.pool_capacity = 8; E.auto_checkpoint_every = 40 } in
  let db, clock = fresh_db ~config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for u = 1 to 200 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.upsert_row db txn ~table:"t" (row (u mod 7) (Printf.sprintf "v%d" u))))
  done;
  let db = Db.crash_and_reopen ~config ~clock db in
  Db.exec db (fun txn ->
      Alcotest.(check int) "seven keys" 7 (List.length (Db.scan_rows db txn ~table:"t")));
  check_row db ~table:"t" ~id:(200 mod 7) (Some (row (200 mod 7) "v200"));
  Db.close db

(* --- file-backed database ----------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "imdb_e2e" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_file_backed_reopen () =
  with_temp_dir (fun dir ->
      let t1 =
        let db = Db.open_dir dir in
        Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
        let ts = ref Ts.zero in
        for i = 1 to 50 do
          Db.with_txn db (fun txn ->
              Db.insert_row db txn ~table:"t" (row i (Printf.sprintf "v%d" i)))
        done;
        ts := Imdb_clock.Clock.last_issued (Db.engine db).E.clock;
        Db.with_txn db (fun txn -> Db.update_row db txn ~table:"t" (row 25 "updated"));
        Db.close db;
        !ts
      in
      (* a genuinely new process-like open: everything from the files *)
      let db = Db.open_dir dir in
      Db.exec db (fun txn ->
          Alcotest.(check int) "fifty rows" 50 (List.length (Db.scan_rows db txn ~table:"t")));
      check_row db ~table:"t" ~id:25 (Some (row 25 "updated"));
      (* history crossed the reopen *)
      Alcotest.(check bool) "as-of before update" true
        (Db.as_of db t1 (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 25))
        = Some (row 25 "v25"));
      Db.close db)

let test_file_backed_dirty_reopen () =
  (* close WITHOUT flushing (simulated kill -9): recovery from the files *)
  with_temp_dir (fun dir ->
      let db = Db.open_dir dir in
      Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
      for i = 1 to 20 do
        Db.with_txn db (fun txn ->
            Db.insert_row db txn ~table:"t" (row i "durable"))
      done;
      (* abandon the handle: no flush_all, no close *)
      let eng = Db.engine db in
      Imdb_wal.Wal.flush eng.E.wal;
      eng.E.disk.Imdb_storage.Disk.sync ();
      (* reopen fresh over the same directory *)
      let db2 = Db.open_dir dir in
      Db.exec db2 (fun txn ->
          Alcotest.(check int) "recovered rows" 20
            (List.length (Db.scan_rows db2 txn ~table:"t")));
      Db.close db2;
      eng.E.disk.Imdb_storage.Disk.close ())

(* --- split store units --------------------------------------------------------- *)

let fresh_ss () =
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_memory ~clock () in
  let ss = Ss.create (Db.engine db) ~table_id:50 in
  (db, clock, ss)

let test_split_store_basics () =
  let db, clock, ss = fresh_ss () in
  let tickc () = Imdb_clock.Clock.advance clock 20L in
  tickc ();
  let t1 =
    let txn = Db.begin_txn db in
    Ss.insert ss txn ~key:"a" ~payload:"v1";
    Option.get (Db.commit db txn)
  in
  tickc ();
  let t2 =
    let txn = Db.begin_txn db in
    Ss.update ss txn ~key:"a" ~payload:"v2";
    Option.get (Db.commit db txn)
  in
  tickc ();
  Db.exec db (fun txn ->
      Alcotest.(check (option string)) "current" (Some "v2") (Ss.read_current ss txn ~key:"a");
      Alcotest.(check (option string)) "as of t1" (Some "v1") (Ss.read_as_of ss txn ~key:"a" ~ts:t1);
      Alcotest.(check (option string)) "as of t2" (Some "v2") (Ss.read_as_of ss txn ~key:"a" ~ts:t2);
      Alcotest.(check (option string)) "before history" None
        (Ss.read_as_of ss txn ~key:"a" ~ts:Ts.zero));
  Alcotest.(check int) "one archived version" 1 (Ss.history_count ss);
  Db.close db

let test_split_store_delete () =
  let db, clock, ss = fresh_ss () in
  let tickc () = Imdb_clock.Clock.advance clock 20L in
  tickc ();
  let t1 =
    let txn = Db.begin_txn db in
    Ss.insert ss txn ~key:"k" ~payload:"alive";
    Option.get (Db.commit db txn)
  in
  tickc ();
  let _t2 =
    let txn = Db.begin_txn db in
    Ss.delete ss txn ~key:"k";
    Option.get (Db.commit db txn)
  in
  Db.exec db (fun txn ->
      Alcotest.(check (option string)) "deleted now" None (Ss.read_current ss txn ~key:"k");
      Alcotest.(check (option string)) "alive at t1" (Some "alive")
        (Ss.read_as_of ss txn ~key:"k" ~ts:t1);
      (* scans agree *)
      let now = ref [] in
      Ss.scan_as_of ss txn ~ts:(Imdb_clock.Clock.last_issued clock) (fun k _ -> now := k :: !now);
      Alcotest.(check int) "scan sees deletion" 0 (List.length !now);
      let old = ref [] in
      Ss.scan_as_of ss txn ~ts:t1 (fun k _ -> old := k :: !old);
      Alcotest.(check int) "scan at t1" 1 (List.length !old));
  Db.close db

let suite =
  [
    Alcotest.test_case "tiny pool end-to-end" `Quick test_tiny_pool_end_to_end;
    Alcotest.test_case "tiny pool with crash" `Quick test_tiny_pool_with_crash;
    Alcotest.test_case "file-backed clean reopen" `Quick test_file_backed_reopen;
    Alcotest.test_case "file-backed dirty reopen" `Quick test_file_backed_dirty_reopen;
    Alcotest.test_case "split store basics" `Quick test_split_store_basics;
    Alcotest.test_case "split store delete" `Quick test_split_store_delete;
  ]
