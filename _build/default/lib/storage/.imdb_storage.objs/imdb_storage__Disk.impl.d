lib/storage/disk.ml: Bytes Hashtbl Imdb_util Printf Unix
