bench/ablations.ml: Fig6 Fmt Gc Harness Imdb_buffer Imdb_clock Imdb_core Imdb_lock Imdb_storage Imdb_tstamp Imdb_util Imdb_version Imdb_workload List Printf Unix
