lib/clock/timestamp.mli: Format
