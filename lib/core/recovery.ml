(* Crash recovery (ARIES-style: analysis, redo, undo).

   The redo-scan start point — the quantity the paper's PTT garbage
   collection is keyed to — is the minimum recLSN in the dirty-page table
   of the last checkpoint; checkpointing moves it forward, and the PTT GC
   may discard a mapping only once that point passes the transaction's
   stamping-complete LSN.  Recovery here never needs a discarded mapping:
   every version that could still carry a TID on disk has its (TID, ts)
   either in the PTT or among the Commit records scanned below.

   Lazy timestamping is invisible to redo: stamping was never logged, and
   pages may legitimately come back from disk carrying TIDs of committed
   transactions — they will be stamped again on first access, resolved
   through the PTT / rebuilt VTT.

   Undo uses the guarded logical rollback of [Txnmgr]: losers' version
   inserts and B-tree updates are located through the live structures and
   reverted only when still present, making recovery idempotent across
   repeated crashes. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module P = Imdb_storage.Page
module BP = Imdb_buffer.Buffer_pool
module LR = Imdb_wal.Log_record
module E = Engine

let log_src = Logs.Src.create "imdb.recovery" ~doc:"Immortal DB crash recovery"

module Log = (val Logs.src_log log_src : Logs.LOG)

type txn_status = St_running | St_committed | St_aborting

type analysis = {
  mutable att : (Tid.t * (int64 * txn_status)) list; (* tid -> last_lsn, status *)
  mutable dpt : (int * int64) list; (* page -> recLSN *)
  mutable max_tid : Tid.t;
  mutable max_ts : Ts.t;
  mutable commits : (Tid.t * Ts.t) list;
}

let att_update a tid ~lsn =
  let status =
    match List.assoc_opt tid a.att with Some (_, st) -> st | None -> St_running
  in
  a.att <- (tid, (lsn, status)) :: List.remove_assoc tid a.att

let att_status a tid st =
  let lsn = match List.assoc_opt tid a.att with Some (l, _) -> l | None -> LR.nil_lsn in
  a.att <- (tid, (lsn, st)) :: List.remove_assoc tid a.att

let dpt_add a page_id ~lsn =
  if not (List.mem_assoc page_id a.dpt) then a.dpt <- (page_id, lsn) :: a.dpt

let observe_tid a tid = if Tid.compare tid a.max_tid > 0 then a.max_tid <- tid

(* --- analysis -------------------------------------------------------------- *)

let analyze eng ~checkpoint_lsn =
  let a =
    { att = []; dpt = []; max_tid = Tid.invalid; max_ts = Ts.zero; commits = [] }
  in
  (* Full scan for commit timestamps: rebuilds the TID -> timestamp map
     for any version still unstamped on disk whose transaction touched
     only snapshot tables (no PTT entry).  Bounded by log size; a real
     deployment bounds it by forcing stamping before log truncation. *)
  Imdb_wal.Wal.iter_from eng.E.wal ~from_lsn:0L (fun _lsn body ->
      match body with
      | LR.Commit { tid; ts } ->
          a.commits <- (tid, ts) :: a.commits;
          if Ts.compare ts a.max_ts > 0 then a.max_ts <- ts;
          observe_tid a tid
      | LR.Begin { tid } | LR.Abort { tid } | LR.End { tid } -> observe_tid a tid
      | LR.Update { tid; _ } | LR.Clr { tid; _ } -> observe_tid a tid
      | LR.Redo_only _ -> ()
      | LR.Checkpoint { next_tid; clock; _ } ->
          observe_tid a (Tid.of_int64 (Int64.pred (Tid.to_int64 next_tid)));
          if Ts.compare clock a.max_ts > 0 then a.max_ts <- clock);
  (* ATT/DPT reconstruction from the last checkpoint onward. *)
  Imdb_wal.Wal.iter_from eng.E.wal ~from_lsn:checkpoint_lsn (fun lsn body ->
      match body with
      | LR.Checkpoint { att; dpt; _ } when Int64.equal lsn checkpoint_lsn ->
          List.iter (fun (tid, l) -> a.att <- (tid, (l, St_running)) :: a.att) att;
          List.iter (fun (pid, l) -> dpt_add a pid ~lsn:l) dpt
      | LR.Checkpoint _ -> () (* later checkpoint during this scan: ignore *)
      | LR.Begin { tid } -> att_update a tid ~lsn
      | LR.Update { tid; page_id; prev_lsn = _; _ } ->
          att_update a tid ~lsn;
          dpt_add a page_id ~lsn
      | LR.Clr { tid; page_id; _ } ->
          att_update a tid ~lsn;
          dpt_add a page_id ~lsn
      | LR.Redo_only { page_id; _ } -> dpt_add a page_id ~lsn
      | LR.Commit { tid; _ } -> att_status a tid St_committed
      | LR.Abort { tid } -> att_status a tid St_aborting
      | LR.End { tid } -> a.att <- List.remove_assoc tid a.att);
  a

(* --- redo -------------------------------------------------------------------- *)

(* Pin a page for redo: it may never have reached disk (rebuilt by a
   Format/Image record), or be torn (detected by checksum and acceptable
   only if this op rebuilds it wholesale). *)
(* Rebuild a torn page wholesale from the log.  Possible because the log
   is never truncated and every page's life begins with a logged
   Op_format: replaying every operation on [page_id] from LSN 0 over a
   zeroed frame reconstructs its exact latest logged state (unlogged
   timestamp propagation is lost and will simply happen again).  This is
   the recovery path for torn writes that full-page-image logging does
   not cover. *)
let rebuild_page_from_log eng page_id =
  Log.warn (fun m -> m "page %d is torn; rebuilding it from the full log" page_id);
  Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.recovery_torn_pages;
  let fr = BP.pin_new eng.E.pool page_id in
  let page = BP.bytes fr in
  P.set_page_id page page_id;
  Imdb_wal.Wal.iter_from eng.E.wal ~from_lsn:0L (fun lsn body ->
      let apply op =
        LR.redo_op page op;
        BP.mark_dirty_logged eng.E.pool fr ~lsn
      in
      match body with
      | LR.Update { page_id = pid; op; _ }
      | LR.Clr { page_id = pid; op; _ }
      | LR.Redo_only { page_id = pid; op } ->
          if pid = page_id then apply op
      | LR.Begin _ | LR.Commit _ | LR.Abort _ | LR.End _ | LR.Checkpoint _ -> ());
  fr

let pin_for_redo eng page_id ~rebuilds =
  let fresh () =
    let fr = BP.pin_new eng.E.pool page_id in
    P.set_page_id (BP.bytes fr) page_id;
    fr
  in
  if BP.is_cached eng.E.pool page_id then `Frame (BP.pin eng.E.pool page_id)
  else if eng.E.disk.Imdb_storage.Disk.page_exists page_id then (
    try `Frame (BP.pin eng.E.pool page_id)
    with BP.Corrupt_page _ ->
      if rebuilds then begin
        (* torn, but the op about to replay rebuilds the page wholesale *)
        Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.recovery_torn_pages;
        `Frame (fresh ())
      end
      else `Frame (rebuild_page_from_log eng page_id))
  else if rebuilds then `Frame (fresh ())
  else `Missing

let op_rebuilds = function
  | LR.Op_format _ | LR.Op_image _ -> true
  | LR.Op_insert _ | LR.Op_delete _ | LR.Op_replace _ | LR.Op_patch _ | LR.Op_header _
  | LR.Op_kv_insert _ | LR.Op_kv_replace _ | LR.Op_kv_delete _ | LR.Op_version_insert _
  | LR.Op_msg_append _ | LR.Op_version_batch _ ->
      false

(* Returns (redo_start, LSN of the last record applied) — the range the
   redo pass actually covered.  The [recovery.redo_lsn] gauge tracks the
   scan position record by record, so an observer (or a post-mortem of a
   crashed recovery) sees monotone progress, not just the final value. *)
let redo eng (a : analysis) ~checkpoint_lsn =
  let redo_start =
    List.fold_left (fun acc (_, rec_lsn) -> min acc rec_lsn) checkpoint_lsn a.dpt
  in
  let last_applied = ref redo_start in
  Imdb_wal.Wal.iter_from eng.E.wal ~from_lsn:redo_start (fun lsn body ->
      let apply page_id op =
        match List.assoc_opt page_id a.dpt with
        | Some rec_lsn when Int64.compare lsn rec_lsn >= 0 -> (
            match pin_for_redo eng page_id ~rebuilds:(op_rebuilds op) with
            | `Missing ->
                failwith
                  (Printf.sprintf "Recovery: page %d missing for redo at %Ld" page_id lsn)
            | `Frame fr ->
                Fun.protect
                  ~finally:(fun () -> BP.unpin eng.E.pool fr)
                  (fun () ->
                    let page = BP.bytes fr in
                    if Int64.compare (P.lsn page) lsn < 0 then begin
                      LR.redo_op page op;
                      Imdb_obs.Metrics.incr eng.E.metrics
                        Imdb_obs.Metrics.recovery_redo;
                      last_applied := lsn;
                      Imdb_obs.Metrics.set_gauge eng.E.metrics
                        Imdb_obs.Metrics.recovery_redo_lsn (Int64.to_int lsn);
                      BP.mark_dirty_logged eng.E.pool fr ~lsn
                    end))
        | _ -> ()
      in
      match body with
      | LR.Update { page_id; op; _ } | LR.Clr { page_id; op; _ }
      | LR.Redo_only { page_id; op } ->
          apply page_id op
      | LR.Begin _ | LR.Commit _ | LR.Abort _ | LR.End _ | LR.Checkpoint _ -> ());
  (redo_start, !last_applied)

(* --- the full open-time protocol ---------------------------------------------- *)

let read_meta_from_disk eng =
  if not (eng.E.disk.Imdb_storage.Disk.page_exists Meta.meta_page_id) then None
  else
    let b = eng.E.disk.Imdb_storage.Disk.read_page Meta.meta_page_id in
    if not (P.verify b) then None (* torn checkpoint write: fall back to full scan *)
    else
      try Some (Meta.decode (P.read_cell b Meta.meta_slot)) with _ -> None

(* The recovery span (and its per-phase children) close on exception too
   — [Tracer.with_span] is [Fun.protect]-based, replacing the old ad-hoc
   [Metrics.trace Span_begin/Span_end] pair that leaked its begin if any
   phase raised. *)
let recover eng =
  let module Tr = Imdb_obs.Tracer in
  eng.E.in_recovery <- true;
  Fun.protect
    ~finally:(fun () -> eng.E.in_recovery <- false)
    (fun () ->
      Tr.with_span eng.E.tracer "recovery" @@ fun sp ->
      let checkpoint_lsn =
        match read_meta_from_disk eng with
        | Some m ->
            eng.E.meta <- m;
            m.Meta.last_checkpoint_lsn
        | None -> 0L
      in
      let a =
        Tr.with_span eng.E.tracer "recovery.analysis" (fun asp ->
            let a = analyze eng ~checkpoint_lsn in
            Tr.add_attr asp "att" (string_of_int (List.length a.att));
            Tr.add_attr asp "dirty_pages" (string_of_int (List.length a.dpt));
            Tr.add_attr asp "commits" (string_of_int (List.length a.commits));
            a)
      in
      Log.info (fun m ->
          m "recovery: checkpoint %Ld, %d in-flight txns, %d dirty pages, %d commits known"
            checkpoint_lsn (List.length a.att) (List.length a.dpt)
            (List.length a.commits));
      Tr.with_span eng.E.tracer "recovery.redo" (fun rsp ->
          let redo_start, redo_end = redo eng a ~checkpoint_lsn in
          Tr.add_attr rsp "redo_start" (Int64.to_string redo_start);
          Tr.add_attr rsp "redo_end" (Int64.to_string redo_end);
          Tr.add_attr rsp "records"
            (string_of_int
               (Imdb_obs.Metrics.get eng.E.metrics Imdb_obs.Metrics.recovery_redo));
          (* scrub: a write torn by the crash may sit on a page the redo
             scan never visits (e.g. dirtied only by unlogged stamping);
             detect by checksum and rebuild from the log *)
          let scrubbed = ref 0 in
          for pid = 0 to eng.E.disk.Imdb_storage.Disk.page_count () - 1 do
            if
              eng.E.disk.Imdb_storage.Disk.page_exists pid
              && not (BP.is_cached eng.E.pool pid)
              && not (P.verify (eng.E.disk.Imdb_storage.Disk.read_page pid))
            then begin
              incr scrubbed;
              let fr = rebuild_page_from_log eng pid in
              BP.unpin eng.E.pool fr;
              BP.flush_page eng.E.pool pid
            end
          done;
          Tr.add_attr rsp "scrubbed" (string_of_int !scrubbed));
      (* the redone meta page is authoritative now *)
      if
        eng.E.disk.Imdb_storage.Disk.page_exists Meta.meta_page_id
        || List.mem Meta.meta_page_id (BP.cached_page_ids eng.E.pool)
      then
        BP.with_page eng.E.pool Meta.meta_page_id (fun fr ->
            eng.E.meta <- Meta.decode (P.read_cell (BP.bytes fr) Meta.meta_slot))
      else failwith "Recovery: no database metadata on disk or in the log";
      (* clock floor and TID counter must move past everything observed *)
      Imdb_clock.Clock.observe eng.E.clock a.max_ts;
      eng.E.next_tid <- Tid.next a.max_tid;
      E.attach_system eng;
      (* rebuild the volatile commit-timestamp cache *)
      List.iter
        (fun (tid, ts) -> Imdb_tstamp.Vtt.cache_from_ptt (E.vtt eng) tid ts)
        a.commits;
      (* roll back losers *)
      let losers = ref 0 in
      Tr.with_span eng.E.tracer "recovery.undo" (fun usp ->
          List.iter
            (fun (tid, (last_lsn, status)) ->
              match status with
              | St_committed -> ()
              | St_running | St_aborting ->
                  incr losers;
                  if Int64.compare last_lsn LR.nil_lsn > 0 then
                    Txnmgr.rollback_loser eng ~tid ~last_lsn
                  else ignore (Imdb_wal.Wal.append eng.E.wal (LR.End { tid })))
            a.att;
          Tr.add_attr usp "losers" (string_of_int !losers));
      Log.info (fun m -> m "recovery: rolled back %d losers" !losers);
      Tr.add_attr sp "losers" (string_of_int !losers);
      Tr.add_attr sp "redo_records"
        (string_of_int
           (Imdb_obs.Metrics.get eng.E.metrics Imdb_obs.Metrics.recovery_redo));
      (* a fresh checkpoint caps the next recovery's work *)
      ignore (E.checkpoint eng);
      (* crash evidence (losers rolled back, or torn writes scrubbed)
         triggers the flight recorder when a report dir is configured:
         the post-mortem captures what this engine can still see of the
         crashed run — recovery counters, loser rollbacks, slow ops *)
      let torn =
        Imdb_obs.Metrics.get eng.E.metrics Imdb_obs.Metrics.recovery_torn_pages
      in
      if !losers > 0 || torn > 0 then
        ignore (E.write_flight_report eng ~reason:"recovery"))
