(** Page-granularity storage devices.

    The engine reads and writes whole pages through this record of
    functions, so the same code runs over a real file, a deterministic
    in-memory platter, or a failure-injecting wrapper.  A crash in tests
    is simply dropping all volatile structures and reopening over the
    same device: whatever [write_page] stored is what survives. *)

type t = {
  page_size : int;
  read_page : int -> bytes;
      (** Fresh copy of a page's bytes.  @raise Page_missing *)
  write_page : int -> bytes -> unit;
      (** Store a copy of the page (copy semantics: later mutation of the
          argument does not affect the platter). *)
  page_exists : int -> bool;
  page_count : unit -> int;  (** one past the highest page id written *)
  sync : unit -> unit;
  close : unit -> unit;
  metrics : Imdb_obs.Metrics.t ref;
      (** registry charged for reads/writes; a [ref] so that wrappers
          built with [{ inner with ... }] share it with the wrapped
          device's closures *)
}

exception Page_missing of int
exception Io_failure of string

val set_metrics : t -> Imdb_obs.Metrics.t -> unit
(** Point the device (and anything sharing its [metrics] ref, e.g. a
    [failing] wrapper) at an engine's registry. *)

val in_memory : ?metrics:Imdb_obs.Metrics.t -> page_size:int -> unit -> t
(** Deterministic in-memory device (tests, benchmarks, crash simulation). *)

val file : ?metrics:Imdb_obs.Metrics.t -> path:string -> page_size:int -> unit -> t
(** File-backed device; [sync] is fsync. *)

val serialized : t -> t
(** Wrap a device so every operation runs under one mutex, making it safe
    to share across domains (the built-in devices are single-domain).
    The engine applies this automatically when [scan_parallelism > 1]. *)

(** Which writes a {!failure_plan}'s countdown counts — operation-targeted
    triggers, so a crash can be aimed at "the Nth history-page write"
    (mid-time-split) or "the next meta-page write" (mid-checkpoint)
    without counting unrelated traffic. *)
type write_target =
  | Any_write
  | Writes_of_type of Page.page_type list
      (** writes of pages whose sealed header carries one of these types *)
  | Writes_to_page of int  (** writes of one page id (0 = the meta page) *)
  | Writes_matching of (int -> bytes -> bool)
      (** arbitrary predicate over (page id, sealed image); exceptions in
          the predicate count as "no match" *)

(** Injected-failure control block for [failing]. *)
type failure_plan = {
  mutable writes_until_failure : int;  (** -1 never; 0 = next targeted write fails *)
  mutable tear_on_failure : bool;
      (** the failing write persists only the first half of the page *)
  mutable target : write_target;  (** which writes count *)
  mutable dead : bool;
      (** set when the plan fires: the device rejects every write until
          the plan is lifted or re-armed *)
  mutable fired : int;
      (** failures injected so far (never reset); dead-device rejections
          after the fire do not count *)
}

val never_fail : unit -> failure_plan

val arm : failure_plan -> ?tear:bool -> ?target:write_target -> after:int -> unit -> unit
(** Arm the plan: the [after]-th upcoming write matching [target]
    (0 = the next one) fails, tearing the page first if [tear]. *)

val lift : failure_plan -> unit
(** Disarm: no further injected failures ([fired] is preserved). *)

val failing : plan:failure_plan -> t -> t
(** Wrap a device so the plan can crash it at an exact write.  Once the
    plan fires, every subsequent write raises [Io_failure] (the device is
    dead) until the plan is lifted. *)
