(** Lock manager: strict two-phase locking for the serializable path,
    with multigranularity intention locks and wait-for-graph deadlock
    detection.

    The lock table is sharded by resource hash (per-shard mutex +
    condition variable), so sessions on different domains contending for
    different resources never serialize on one lock.  Two acquisition
    disciplines share the grant logic: the fail-fast path ([acquire] /
    [acquire_exn]) the single-session engine has always used — a
    conflicting request never parks a thread — and real blocking waits
    ([acquire_wait]) for concurrent sessions, with deadlock detection at
    edge insert and timeout-based victim selection (the waiter is the
    victim).  Snapshot-isolation readers never call in at all — that is
    the point of the versioning machinery. *)

type resource = Table of int | Record of int * string

val pp_resource : Format.formatter -> resource -> unit

type mode = IS | IX | S | X

val pp_mode : Format.formatter -> mode -> unit

val compatible : mode -> mode -> bool
(** The standard multigranularity compatibility matrix. *)

val lub : mode -> mode -> mode
(** Upgrade merge: the least upper bound of two modes, with S+IX
    collapsed to X (no SIX mode). *)

type t

val create : unit -> t

val set_metrics : t -> Imdb_obs.Metrics.t -> unit
(** Point the manager at an engine's registry: grants, conflicts,
    deadlocks, timeouts and the blocking-wait duration histogram. *)

val set_tracer : t -> Imdb_obs.Tracer.t -> unit
(** Blocking waits record a "lock.wait" span (res/mode attrs) spanning
    park-to-grant (or to deadlock/timeout). *)

type outcome = Granted | Would_block of Imdb_clock.Tid.t list

exception Deadlock of Imdb_clock.Tid.t
(** Raised (naming the requester, the victim) when granting the wait
    would close a cycle. *)

exception Conflict of { tid : Imdb_clock.Tid.t; blockers : Imdb_clock.Tid.t list }

exception Lock_timeout of { tid : Imdb_clock.Tid.t; res : resource }
(** A blocking wait passed its deadline: the waiter is selected as the
    victim and should abort. *)

val acquire : t -> Imdb_clock.Tid.t -> resource -> mode -> outcome
(** Acquire or upgrade; re-requests are idempotent.  A block records the
    requester's wait-for edge and returns.  @raise Deadlock *)

val acquire_exn : t -> Imdb_clock.Tid.t -> resource -> mode -> unit
(** Like [acquire] but a block erases the edge and raises [Conflict]. *)

val acquire_wait : ?timeout_us:int -> t -> Imdb_clock.Tid.t -> resource -> mode -> int
(** Acquire, parking on the shard's condition variable while blocked.
    Releases of conflicting locks re-probe the grant; a process-wide
    ticker thread (spawned on the first blocking wait) bounds the delay
    until the deadline is noticed.  Returns the wall-clock microseconds
    spent parked (0 when granted immediately), which callers fold into
    per-transaction wait accounting.  @raise Deadlock at edge insert,
    @raise Lock_timeout at the deadline (default 100 ms). *)

val holds : t -> Imdb_clock.Tid.t -> resource -> mode option

val release_all : t -> Imdb_clock.Tid.t -> unit
(** Strict 2PL: everything is released together at commit/abort; every
    touched shard's waiters are woken. *)

val held_by : t -> Imdb_clock.Tid.t -> resource list

val active_locks : t -> (resource * Imdb_clock.Tid.t * mode) list
(** Holder triples, collected shard by shard — cheap, but not a
    consistent cross-shard cut; use [dump] for that. *)

(** {1 Introspection} *)

type dump = {
  d_holders : (resource * Imdb_clock.Tid.t * mode) list;
      (** every granted lock, sorted *)
  d_waiters : (Imdb_clock.Tid.t * resource * mode * Imdb_clock.Tid.t list) list;
      (** every parked/blocked request: requested resource and mode plus
          the live wait-for edges, sorted *)
}

val dump : t -> dump
(** One consistent cut of the whole lock table: all 16 shard mutexes are
    held together (plus the wait-for index) while holders and waiters are
    collected, so every blocker named by a waiter edge appears among
    [d_holders] for the waited-on resource in the same dump. *)

val dump_json : t -> Imdb_obs.Json.t
(** [dump] as the stable JSON consumed by [imdb locks], the SQL [LOCKS]
    pragma and flight-recorder reports:
    [{"holders": [{"resource", "tid", "mode"}...],
      "waiters": [{"tid", "resource", "mode", "waits_for": [tid...]}...]}]. *)
