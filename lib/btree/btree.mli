(** B+tree over buffer-pool pages.

    The ordered workhorse of the engine: the persistent timestamp table
    (keyed by TID — "a B-tree based table ordered by TID", paper Section
    2.2), the table catalog, conventional tables, the key routers above
    versioned data pages, and the split-store baseline's two stores.

    Keys are byte strings compared lexicographically; values opaque
    bytes.  Leaves are doubly linked for range scans; the root page id is
    stable for the life of the tree.  Transactional mutations are logged
    with {e logical} undo (rollback re-locates the key, because splits
    may have moved the cell); structure modifications are redo-only
    nested top actions. *)

type t

(** The engine services a tree needs, kept abstract so the tree carries
    no transaction state of its own. *)
type io = {
  exec : Imdb_buffer.Buffer_pool.frame -> undoable:bool -> Imdb_wal.Log_record.page_op -> unit;
      (** log the op (undoable in the current transaction, or redo-only),
          apply it to the frame and mark it dirty *)
  alloc : ptype:Imdb_storage.Page.page_type -> level:int -> int;
      (** allocate, format and redo-log a fresh page *)
  free : int -> unit;  (** return an empty page to the allocator *)
}

val create :
  ?metrics:Imdb_obs.Metrics.t ->
  pool:Imdb_buffer.Buffer_pool.t ->
  io:io ->
  table_id:int ->
  name:string ->
  unit ->
  t
(** A new (empty) tree; the root starts as a leaf. *)

val attach :
  ?metrics:Imdb_obs.Metrics.t ->
  pool:Imdb_buffer.Buffer_pool.t ->
  io:io ->
  root:int ->
  table_id:int ->
  name:string ->
  unit ->
  t
(** Re-attach to an existing tree by root page id. *)

val root : t -> int

(** {1 Point operations} *)

val insert : ?undoable:bool -> t -> key:string -> value:bytes -> unit
(** Insert or replace.  [undoable] (default true) logs the change in the
    current transaction with logical undo; structural callers (key-split
    separators) pass false.
    @raise Invalid_argument if the entry exceeds page capacity. *)

val find : t -> key:string -> bytes option
val mem : t -> key:string -> bool

val delete : ?undoable:bool -> t -> key:string -> bool
(** Delete a key; emptied leaves are unlinked and reclaimed.  Default
    redo-only (GC, DROP TABLE); pass [~undoable:true] for transactional
    deletes.  Returns whether the key existed. *)

val delete_batch : ?undoable:bool -> t -> keys:string list -> int
(** Delete many keys with one descent per leaf run (keys are sorted
    internally; duplicates collapse).  Same logging and leaf reclamation
    as {!delete}.  Returns how many of the keys existed. *)

(** {1 Ordered search} *)

val find_floor : t -> key:string -> (string * bytes) option
(** Greatest (key', value) with key' <= key — the router descent. *)

val find_next : t -> key:string -> (string * bytes) option
(** Smallest (key', value) with key' > key. *)

val min_binding : t -> (string * bytes) option

(** {1 Iteration} *)

val iter : ?from:string -> ?upto:string -> t -> (string -> bytes -> unit) -> unit
(** In-order iteration over the inclusive key range. *)

val fold : ?from:string -> ?upto:string -> t -> init:'a -> f:('a -> string -> bytes -> 'a) -> 'a
val count : t -> int

(** {1 Introspection (tests, tools)} *)

exception Invariant_violation of string

val check_invariants : t -> int
(** Walk the whole tree checking separator bounds, leaf-chain consistency
    and level monotonicity; returns the number of keys.
    @raise Invariant_violation *)

val pp_stats : Format.formatter -> t -> unit

(**/**)

(** Internal surfaces used by the engine's rollback and by tests. *)

val decode_leaf_cell : bytes -> string * bytes
val leaf_cell : key:string -> value:bytes -> bytes
val node_floor_slot : bytes -> string -> int
val cell_key_compare : bytes -> int -> string -> int
val find_leaf : t -> string -> int * (int * int) list
