(* Fig. 6: AS OF query cost vs history depth.

   The paper loads 36,000 transactions with 500/1000/2000/4000 inserts
   (so 72/36/18/9 updates per record respectively) and then runs full
   table scan AS OF queries at increasing depths into history.  Two
   effects make up the figure's shape:

   - near the present, fewer inserts => fewer records to return => faster;
   - deep in history the ordering reverses: fewer inserts means more
     updates per record, longer version chains and a longer page chain to
     walk before reaching the right time slice.

   The prototype measured here (like the paper's) walks the time-split
   page chain; the TSB-indexed variant is the separate `tsb` experiment.
   Depth is expressed as "% of history": 100% = the most recent state,
   10% = shortly after loading began — matching the paper's x-axis. *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module Driver = Imdb_workload.Driver
module Mo = Imdb_workload.Moving_objects

let depths = [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]

(* Load a database with the experiment's stream and return probes:
   (depth %, commit timestamp at that depth).  The buffer pool is kept
   small relative to the accumulated history so that walking deep page
   chains performs real page reads, as in the paper's disk-resident
   setting. *)
let load ~tsb ~inserts ~total =
  let config =
    { E.default_config with E.tsb_enabled = tsb; E.pool_capacity = 48 }
  in
  let db, clock = Driver.fresh_moving_objects ~config ~mode:Db.Immortal () in
  let events = Mo.generate ~seed:42 ~inserts ~total () in
  let result = Driver.run_events ~clock db ~table:"MovingObjects" events in
  let n = List.length result.Driver.rr_commit_ts in
  let probes =
    List.map
      (fun pc ->
        let idx = min (n - 1) (pc * n / 100) in
        (pc, List.nth result.Driver.rr_commit_ts idx))
      depths
  in
  (db, probes)

let series ~tsb ~inserts ~total =
  let db, probes = load ~tsb ~inserts ~total in
  let times =
    List.map
      (fun (pc, ts) ->
        (pc, Driver.measured_scan_as_of db ~table:"MovingObjects" ~ts))
      probes
  in
  Db.close db;
  times

let fig6 ~scale =
  let total = Harness.scaled ~scale 36000 in
  let configs =
    List.map
      (fun inserts ->
        let inserts = Harness.scaled ~scale inserts in
        let upd = (total - inserts) / inserts in
        (Printf.sprintf "%gK*%d" (float_of_int inserts /. 1000.) upd, inserts))
      [ 500; 1000; 2000; 4000 ]
  in
  let all_series =
    List.map (fun (label, inserts) -> (label, series ~tsb:false ~inserts ~total)) configs
  in
  let rows =
    List.map
      (fun pc ->
        string_of_int pc
        :: List.concat_map
             (fun (_, times) ->
               let m = List.assoc pc times in
               [ Harness.ms m.Driver.sm_elapsed_s; string_of_int m.Driver.sm_pages;
                 string_of_int m.Driver.sm_rows ])
             all_series)
      depths
  in
  let module J = Imdb_obs.Json in
  Harness.emit_json ~name:"fig6"
    (J.Obj
       [
         ("schema_version", J.Int Imdb_obs.Metrics.schema_version);
         ("txns", J.Int total);
         ( "series",
           J.List
             (List.map
                (fun (label, times) ->
                  J.Obj
                    [
                      ("config", J.String label);
                      ( "depths",
                        J.List
                          (List.map
                             (fun (pc, (m : Driver.scan_measure)) ->
                               J.Obj
                                 [
                                   ("pct", J.Int pc);
                                   ("pages", J.Int m.Driver.sm_pages);
                                   ("rows", J.Int m.Driver.sm_rows);
                                   ("misses", J.Int m.Driver.sm_misses);
                                 ])
                             times) );
                    ])
                all_series) );
       ]);
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Fig 6: full-scan AS OF queries, %d txns, page-chain traversal (no TSB)"
         total)
    ~header:
      ("% hist"
      :: List.concat_map
           (fun (label, _) -> [ label ^ " ms"; "pages"; "rows" ])
           all_series)
    rows;
  Fmt.pr
    "paper shape: near 100%% the fewer-insert configs are cheaper (fewer rows); \
     deep in history the order reverses (longer version chains => longer page \
     chains to walk, more pages visited).@."

let () = Harness.register ~name:"fig6" ~doc:"AS OF query cost vs history depth (Fig. 6)" fig6
