(* Continuous monitor: periodic counter snapshots in a bounded ring.

   A monitor owns nothing but a [Metrics.t] handle and a clock function;
   [sample] captures the current counter snapshot with a timestamp, and
   derived rates come from differencing the two newest samples.  The
   sampling itself is driven either manually (tests use a logical clock
   and call [sample] directly, so every derived number is a pure function
   of the workload) or by a background thread ([start]/[stop]) that wakes
   on a wall-clock interval.

   The shared [null] monitor keeps the same contract as [Metrics.null]:
   when [on] is false every operation short-circuits on one branch, so an
   engine built without monitoring pays nothing and — the monitorov gate
   proves this — perturbs no counters.

   The background thread sleeps in short slices and re-checks a stop flag
   so [stop] completes within ~50 ms and the thread is always joined;
   leaving it running would pin the runtime at exit (same liveness rule
   as the lock manager's ticker thread). *)

type sample = { s_seq : int; s_at_us : int64; s_counters : Metrics.snapshot }

type rates = {
  r_interval_us : int64;
  r_txn_per_s : float;
  r_wal_bytes_per_s : float;
  r_splits_per_s : float;
  r_stamping_backlog : int;
}

type t = {
  on : bool;
  metrics : Metrics.t;
  clock_us : unit -> int64;
  interval_us : int64;
  capacity : int;
  lock : Mutex.t;
  samples : sample Queue.t;
  mutable seq : int;
  mutable dropped : int;
  mutable stop_flag : bool;
  mutable thread : Thread.t option;
}

let default_capacity = 600

let make ~on ~metrics ~clock_us ~interval_ms ~capacity =
  {
    on;
    metrics;
    clock_us;
    interval_us = Int64.of_int (max 1 interval_ms * 1000);
    capacity = max 1 capacity;
    lock = Mutex.create ();
    samples = Queue.create ();
    seq = 0;
    dropped = 0;
    stop_flag = false;
    thread = None;
  }

let null =
  make ~on:false ~metrics:Metrics.null
    ~clock_us:(fun () -> 0L)
    ~interval_ms:1000 ~capacity:1

let create ?(interval_ms = 1000) ?(capacity = default_capacity)
    ?(clock_us = fun () -> Int64.of_float (Unix.gettimeofday () *. 1e6)) metrics
    =
  make ~on:true ~metrics ~clock_us ~interval_ms ~capacity

let enabled t = t.on
let interval_ms t = Int64.to_int (Int64.div t.interval_us 1000L)

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let sample t =
  if t.on then begin
    (* Snapshot outside our own lock: Metrics has its own mutex and the
       background thread is the only ring writer anyway. *)
    let counters = Metrics.snapshot t.metrics in
    let at = t.clock_us () in
    locked t (fun () ->
        let s = { s_seq = t.seq; s_at_us = at; s_counters = counters } in
        t.seq <- t.seq + 1;
        if Queue.length t.samples >= t.capacity then begin
          ignore (Queue.pop t.samples);
          t.dropped <- t.dropped + 1;
          Metrics.incr t.metrics Metrics.monitor_dropped
        end;
        Queue.push s t.samples;
        Metrics.incr t.metrics Metrics.monitor_samples)
  end

let samples t =
  if not t.on then []
  else locked t (fun () -> List.of_seq (Queue.to_seq t.samples))

let dropped t = if not t.on then 0 else locked t (fun () -> t.dropped)

let last_two t =
  locked t (fun () ->
      let n = Queue.length t.samples in
      if n < 2 then None
      else
        let arr = Array.of_seq (Queue.to_seq t.samples) in
        Some (arr.(n - 2), arr.(n - 1)))

let counter_of (s : Metrics.snapshot) name =
  match List.assoc_opt name s with Some v -> v | None -> 0

let rates_between a b =
  let dt_us = Int64.sub b.s_at_us a.s_at_us in
  let dt_s = Int64.to_float (Int64.max 1L dt_us) /. 1e6 in
  let delta name = counter_of b.s_counters name - counter_of a.s_counters name in
  {
    r_interval_us = dt_us;
    r_txn_per_s = float_of_int (delta Metrics.txn_commits) /. dt_s;
    r_wal_bytes_per_s = float_of_int (delta Metrics.log_bytes) /. dt_s;
    r_splits_per_s =
      float_of_int (delta Metrics.time_splits + delta Metrics.key_splits)
      /. dt_s;
    (* Backlog is a level, not a rate: PTT entries are created at commit
       and retired by lazy stamping, so inserts - deletes = rows whose
       timestamps are still provisional at the newest sample. *)
    r_stamping_backlog =
      counter_of b.s_counters Metrics.ptt_inserts
      - counter_of b.s_counters Metrics.ptt_deletes;
  }

let rates t =
  if not t.on then None
  else
    match last_two t with
    | None -> None
    | Some (a, b) -> Some (rates_between a b)

(* JSON for the flight recorder and `imdb monitor`: the whole ring plus
   the derived rates of the newest interval and current p50/p90/p99 of
   every histogram.  Rates are rounded to milli-units so the text is
   byte-stable for a given sample pair. *)
let to_json t =
  let module J = Json in
  if not t.on then J.Obj [ ("enabled", J.Bool false) ]
  else begin
    let ss = samples t in
    let sample_json s =
      J.Obj
        [
          ("seq", J.Int s.s_seq);
          ("at_us", J.String (Int64.to_string s.s_at_us));
          ( "counters",
            J.Obj (List.map (fun (k, v) -> (k, J.Int v)) s.s_counters) );
        ]
    in
    let milli f = J.Int (int_of_float (Float.round (f *. 1000.0))) in
    let rates_json =
      match rates t with
      | None -> J.Null
      | Some r ->
          J.Obj
            [
              ("interval_us", J.String (Int64.to_string r.r_interval_us));
              ("txn_per_s_milli", milli r.r_txn_per_s);
              ("wal_bytes_per_s_milli", milli r.r_wal_bytes_per_s);
              ("splits_per_s_milli", milli r.r_splits_per_s);
              ("stamping_backlog", J.Int r.r_stamping_backlog);
            ]
    in
    let hists =
      List.map
        (fun (name, (s : Metrics.hist_summary)) ->
          ( name,
            J.Obj
              [
                ("count", J.Int s.h_count);
                ("p50", J.Int s.h_p50);
                ("p90", J.Int s.h_p90);
                ("p99", J.Int s.h_p99);
              ] ))
        (Metrics.histograms t.metrics)
    in
    J.Obj
      [
        ("enabled", J.Bool true);
        ("interval_ms", J.Int (interval_ms t));
        ("capacity", J.Int t.capacity);
        ("dropped", J.Int (dropped t));
        ("samples", J.List (List.map sample_json ss));
        ("rates", rates_json);
        ("histograms", J.Obj hists);
      ]
  end

(* --- background sampler -------------------------------------------- *)

let stop_requested t = locked t (fun () -> t.stop_flag)

let run_loop t =
  let slice = 0.05 in
  let interval_s = Int64.to_float t.interval_us /. 1e6 in
  let next = ref (Unix.gettimeofday () +. interval_s) in
  while not (stop_requested t) do
    let now = Unix.gettimeofday () in
    if now >= !next then begin
      sample t;
      next := now +. interval_s
    end;
    Thread.delay (Float.min slice (Float.max 0.001 (!next -. Unix.gettimeofday ())))
  done

let start t =
  if t.on && t.thread = None then begin
    locked t (fun () -> t.stop_flag <- false);
    t.thread <- Some (Thread.create run_loop t)
  end

let stop t =
  match t.thread with
  | None -> ()
  | Some th ->
      locked t (fun () -> t.stop_flag <- true);
      Thread.join th;
      t.thread <- None
