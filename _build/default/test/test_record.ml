(* Record layout: the 14-byte versioning tail and in-place accessors. *)

module P = Imdb_storage.Page
module R = Imdb_storage.Record
module Tid = Imdb_clock.Tid
module Ts = Imdb_clock.Timestamp

let sample =
  {
    R.flags = R.f_delete_stub;
    key = "some-key";
    payload = "some payload bytes";
    vp = 12;
    ttime = Tid.Unstamped (Tid.of_int 77);
    sn = 0;
  }

let test_roundtrip () =
  let cell = R.encode sample in
  Alcotest.(check int) "size" (R.size ~key:sample.R.key ~payload:sample.R.payload)
    (Bytes.length cell);
  let d = R.decode cell in
  Alcotest.(check bool) "equal" true (d = sample)

let prop_roundtrip =
  QCheck.Test.make ~name:"record encode/decode roundtrip" ~count:300
    QCheck.(quad small_string small_string (int_bound 0xFFFE) (int_bound 7))
    (fun (key, payload, vp, flags) ->
      let r =
        { R.flags; key; payload; vp; ttime = Tid.Stamped 123456L; sn = 42 }
      in
      R.decode (R.encode r) = r)

let test_in_page_accessors () =
  let page = Bytes.make 8192 '\000' in
  P.format page ~page_id:1 ~page_type:P.P_data ();
  let slot = P.insert page (R.encode sample) in
  Alcotest.(check string) "key" "some-key" (R.in_page_key page slot);
  Alcotest.(check bool) "key matches" true (R.in_page_key_matches page slot "some-key");
  Alcotest.(check bool) "key mismatch" false (R.in_page_key_matches page slot "some-keX");
  Alcotest.(check bool) "prefix is not a match" false
    (R.in_page_key_matches page slot "some-");
  Alcotest.(check int) "vp" 12 (R.in_page_vp page slot);
  Alcotest.(check int) "flags" R.f_delete_stub (R.in_page_flags page slot);
  Alcotest.(check bool) "unstamped" true (R.in_page_timestamp page slot = None);
  (* stamp it in place *)
  R.set_in_page_ttime page slot (Tid.Stamped 5000L);
  R.set_in_page_sn page slot 9;
  (match R.in_page_timestamp page slot with
  | Some ts ->
      Alcotest.(check bool) "stamped value" true
        (Ts.equal ts (Ts.make ~ttime:5000L ~sn:9))
  | None -> Alcotest.fail "expected a timestamp");
  (* rewire the chain pointer *)
  R.set_in_page_vp page slot 3;
  Alcotest.(check int) "vp updated" 3 (R.in_page_vp page slot);
  R.set_in_page_flags page slot (R.f_non_current lor R.f_vp_in_history);
  Alcotest.(check int) "flags updated" (R.f_non_current lor R.f_vp_in_history)
    (R.in_page_flags page slot)

let test_with_links () =
  let cell = R.encode sample in
  let cell' = R.with_links cell ~flags:R.f_non_current ~vp:7 in
  let d = R.decode cell' in
  Alcotest.(check int) "flags replaced" R.f_non_current d.R.flags;
  Alcotest.(check int) "vp replaced" 7 d.R.vp;
  Alcotest.(check string) "payload intact" sample.R.payload d.R.payload;
  (* original untouched *)
  Alcotest.(check bool) "copy semantics" true (R.decode cell = sample)

let test_empty_fields () =
  let r =
    { R.flags = 0; key = ""; payload = ""; vp = R.no_vp; ttime = Tid.Stamped 0L; sn = 0 }
  in
  Alcotest.(check bool) "empty key/payload roundtrip" true (R.decode (R.encode r) = r)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "in-page accessors" `Quick test_in_page_accessors;
    Alcotest.test_case "with_links" `Quick test_with_links;
    Alcotest.test_case "empty fields" `Quick test_empty_fields;
  ]
