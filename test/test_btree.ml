(* B-tree: point ops, ordered iteration, floor/next search, splits,
   deletion with page reclamation, and a model-based property against
   Map. *)

module Disk = Imdb_storage.Disk
module P = Imdb_storage.Page
module BP = Imdb_buffer.Buffer_pool
module Wal = Imdb_wal.Wal
module LR = Imdb_wal.Log_record
module B = Imdb_btree.Btree

(* A standalone btree over a fresh pool with a trivial redo-only logger
   and a bump allocator: enough to exercise the structure in isolation. *)
let standalone ?(page_size = 512) ?(capacity = 64) () =
  let disk = Disk.in_memory ~page_size () in
  let wal = Wal.open_device (Wal.Device.in_memory ()) in
  let pool = BP.create ~capacity ~disk ~wal () in
  (* page id 0 is the no_page sentinel (the meta page in the real engine) *)
  let next = ref 1 in
  let io =
    {
      B.exec =
        (fun fr ~undoable:_ op ->
          let lsn = Wal.append wal (LR.Redo_only { page_id = BP.page_id fr; op }) in
          LR.redo_op (BP.bytes fr) op;
          BP.mark_dirty_logged pool fr ~lsn);
      alloc =
        (fun ~ptype ~level ->
          let pid = !next in
          incr next;
          let fr = BP.pin_new pool pid in
          P.format (BP.bytes fr) ~page_id:pid ~page_type:ptype ~level ();
          BP.mark_dirty_logged pool fr ~lsn:0L;
          BP.unpin pool fr;
          pid);
      free = (fun pid -> BP.invalidate pool pid);
    }
  in
  B.create ~pool ~io ~table_id:1 ~name:"test" ()

let v s = Bytes.of_string s
let k i = Printf.sprintf "key%05d" i

let test_insert_find () =
  let t = standalone () in
  Alcotest.(check bool) "empty find" true (B.find t ~key:"a" = None);
  B.insert t ~key:"a" ~value:(v "1");
  B.insert t ~key:"b" ~value:(v "2");
  Alcotest.(check bool) "find a" true (B.find t ~key:"a" = Some (v "1"));
  Alcotest.(check bool) "find b" true (B.find t ~key:"b" = Some (v "2"));
  Alcotest.(check bool) "find missing" true (B.find t ~key:"c" = None);
  (* replace *)
  B.insert t ~key:"a" ~value:(v "1'");
  Alcotest.(check bool) "replaced" true (B.find t ~key:"a" = Some (v "1'"));
  Alcotest.(check int) "count" 2 (B.count t)

let test_many_inserts_split () =
  let t = standalone () in
  let n = 500 in
  for i = 1 to n do
    B.insert t ~key:(k i) ~value:(v (string_of_int i))
  done;
  Alcotest.(check int) "all present" n (B.count t);
  Alcotest.(check int) "invariants hold" n (B.check_invariants t);
  for i = 1 to n do
    match B.find t ~key:(k i) with
    | Some value when Bytes.to_string value = string_of_int i -> ()
    | _ -> Alcotest.failf "key %d lost" i
  done

let test_descending_and_random_insert () =
  let t = standalone () in
  for i = 300 downto 1 do
    B.insert t ~key:(k i) ~value:(v "x")
  done;
  Alcotest.(check int) "descending inserts" 300 (B.check_invariants t);
  let t2 = standalone () in
  let rng = Imdb_util.Rng.create 5 in
  let keys = Array.init 300 (fun i -> i) in
  Imdb_util.Rng.shuffle rng keys;
  Array.iter (fun i -> B.insert t2 ~key:(k i) ~value:(v "y")) keys;
  Alcotest.(check int) "random inserts" 300 (B.check_invariants t2)

let test_iteration_order () =
  let t = standalone () in
  let rng = Imdb_util.Rng.create 9 in
  let keys = Array.init 200 (fun i -> i) in
  Imdb_util.Rng.shuffle rng keys;
  Array.iter (fun i -> B.insert t ~key:(k i) ~value:(v "z")) keys;
  let seen = ref [] in
  B.iter t (fun key _ -> seen := key :: !seen);
  let seen = List.rev !seen in
  Alcotest.(check int) "all iterated" 200 (List.length seen);
  Alcotest.(check bool) "sorted" true (seen = List.sort compare seen);
  (* bounded iteration *)
  let ranged = ref [] in
  B.iter ~from:(k 50) ~upto:(k 59) t (fun key _ -> ranged := key :: !ranged);
  Alcotest.(check int) "range size" 10 (List.length !ranged)

let test_floor_next () =
  let t = standalone () in
  List.iter (fun i -> B.insert t ~key:(k i) ~value:(v (string_of_int i))) [ 10; 20; 30 ];
  let floor key = Option.map fst (B.find_floor t ~key) in
  Alcotest.(check (option string)) "exact" (Some (k 20)) (floor (k 20));
  Alcotest.(check (option string)) "between" (Some (k 20)) (floor (k 25));
  Alcotest.(check (option string)) "below all" None (floor (k 5));
  Alcotest.(check (option string)) "above all" (Some (k 30)) (floor (k 99));
  let next key = Option.map fst (B.find_next t ~key) in
  Alcotest.(check (option string)) "next of exact" (Some (k 20)) (next (k 10));
  Alcotest.(check (option string)) "next between" (Some (k 30)) (next (k 25));
  Alcotest.(check (option string)) "next of max" None (next (k 30))

let test_delete () =
  let t = standalone () in
  for i = 1 to 300 do
    B.insert t ~key:(k i) ~value:(v "d")
  done;
  (* delete a stretch: the emptied leaves are reclaimed *)
  for i = 50 to 250 do
    Alcotest.(check bool) "delete present" true (B.delete t ~key:(k i))
  done;
  Alcotest.(check bool) "delete absent" false (B.delete t ~key:(k 60));
  Alcotest.(check int) "remaining" 99 (B.count t);
  Alcotest.(check int) "invariants after deletes" 99 (B.check_invariants t);
  Alcotest.(check bool) "floor over the gap" true
    (Option.map fst (B.find_floor t ~key:(k 200)) = Some (k 49));
  (* reinsert into the gap *)
  for i = 100 to 120 do
    B.insert t ~key:(k i) ~value:(v "r")
  done;
  Alcotest.(check int) "after reinsert" 120 (B.check_invariants t)

let test_large_values () =
  let t = standalone ~page_size:1024 () in
  let big = Bytes.make 300 'B' in
  B.insert t ~key:"big1" ~value:big;
  B.insert t ~key:"big2" ~value:big;
  B.insert t ~key:"big3" ~value:big;
  Alcotest.(check bool) "big value intact" true (B.find t ~key:"big2" = Some big);
  (* oversize entries are rejected cleanly *)
  (match B.insert t ~key:"huge" ~value:(Bytes.make 600 'H') with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "oversize entry accepted")

(* Model-based property: random op sequences agree with Map. *)
let prop_vs_map =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 400)
        (frequency
           [
             (5, map (fun i -> `Insert (i mod 100)) nat);
             (2, map (fun i -> `Delete (i mod 100)) nat);
             (2, map (fun i -> `Find (i mod 100)) nat);
             (1, map (fun i -> `Floor (i mod 100)) nat);
           ]))
  in
  QCheck.Test.make ~name:"btree vs Map model" ~count:30 (QCheck.make gen)
    (fun ops ->
      let t = standalone ~page_size:512 () in
      let module M = Map.Make (String) in
      let model = ref M.empty in
      List.iteri
        (fun step op ->
          match op with
          | `Insert i ->
              let key = k i and value = Printf.sprintf "v%d-%d" i step in
              B.insert t ~key ~value:(Bytes.of_string value);
              model := M.add key value !model
          | `Delete i ->
              let key = k i in
              let in_tree = B.delete t ~key in
              let in_model = M.mem key !model in
              if in_tree <> in_model then
                QCheck.Test.fail_reportf "delete presence mismatch on %s" key;
              model := M.remove key !model
          | `Find i ->
              let key = k i in
              let tree = Option.map Bytes.to_string (B.find t ~key) in
              let m = M.find_opt key !model in
              if tree <> m then QCheck.Test.fail_reportf "find mismatch on %s" key
          | `Floor i ->
              let key = k i in
              let tree = Option.map fst (B.find_floor t ~key) in
              let m =
                M.fold
                  (fun mk _ acc ->
                    if String.compare mk key <= 0 then
                      match acc with
                      | Some best when String.compare best mk >= 0 -> acc
                      | _ -> Some mk
                    else acc)
                  !model None
              in
              if tree <> m then QCheck.Test.fail_reportf "floor mismatch on %s" key)
        ops;
      (* final sweep *)
      ignore (B.check_invariants t);
      M.for_all
        (fun key value -> B.find t ~key = Some (Bytes.of_string value))
        !model
      && B.count t = M.cardinal !model)

let suite =
  [
    Alcotest.test_case "insert & find" `Quick test_insert_find;
    Alcotest.test_case "splits under load" `Quick test_many_inserts_split;
    Alcotest.test_case "descending & random inserts" `Quick test_descending_and_random_insert;
    Alcotest.test_case "iteration order" `Quick test_iteration_order;
    Alcotest.test_case "floor & next" `Quick test_floor_next;
    Alcotest.test_case "delete & reclaim" `Quick test_delete;
    Alcotest.test_case "large values" `Quick test_large_values;
    QCheck_alcotest.to_alcotest prop_vs_map;
  ]
