test/test_edges.ml: Alcotest Char Helpers Imdb_clock Imdb_core Imdb_util Imdb_workload List Printf String
