lib/tsb/tsb.ml: Array Bytes Codec Fmt Fun Imdb_buffer Imdb_clock Imdb_storage Imdb_util Imdb_wal List Printf String
