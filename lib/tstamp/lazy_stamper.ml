(* Lazy timestamping: the four-stage protocol of Section 2.2, tying the
   VTT and PTT together.

   Normal-access stamping ([resolve]) may fault PTT entries into the VTT.
   Flush-time stamping ([resolve_volatile_only]) consults the VTT alone:
   the buffer pool calls it while evicting a page, and a PTT lookup there
   could recurse into eviction.  Skipping a VTT miss is always safe — a
   miss means either the transaction is still active (leave the TID), or
   the record will be stamped on a later access (the PTT entry cannot be
   collected while the refcount is positive).

   No stamping is ever logged.  Durability of stamping is the GC rule's
   job: a PTT entry survives until the redo-scan start point proves every
   stamped page reached disk. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid

type t = {
  vtt : Vtt.t;
  mutable ptt : Ptt.t option; (* None until the engine wires storage up *)
  mutable end_of_log : unit -> int64; (* for lsn_at_zero bookkeeping *)
  mutable flushed_lsn : unit -> int64; (* durable log horizon (flush-time gate) *)
  mutable force_log : unit -> unit; (* flush the log tail (stamping gate) *)
  mutable unknown_tids : int; (* integrity counter: should stay 0 *)
  mutable metrics : Imdb_obs.Metrics.t;
  mutable tracer : Imdb_obs.Tracer.t;
}

let create ?(metrics = Imdb_obs.Metrics.null) () =
  { vtt = Vtt.create ~metrics (); ptt = None; end_of_log = (fun () -> 0L);
    flushed_lsn = (fun () -> 0L); force_log = (fun () -> ());
    unknown_tids = 0; metrics; tracer = Imdb_obs.Tracer.null }

let set_metrics t m =
  t.metrics <- m;
  Vtt.set_metrics t.vtt m

let set_tracer t tr = t.tracer <- tr

let set_ptt t ptt = t.ptt <- Some ptt
let set_end_of_log t f = t.end_of_log <- f
let set_flushed_lsn t f = t.flushed_lsn <- f
let set_force_log t f = t.force_log <- f
let vtt t = t.vtt
let ptt_exn t =
  match t.ptt with Some p -> p | None -> invalid_arg "Lazy_stamper: PTT not attached"

(* Map a TID found in a record version to its fate.  Faults PTT entries
   into the VTT on miss. *)
let resolve t tid : Imdb_version.Vpage.resolution =
  match Vtt.resolve t.vtt tid with
  | Some (`Committed ts) -> Imdb_version.Vpage.Committed ts
  | Some `Active -> Imdb_version.Vpage.Active
  | Some `Aborted ->
      (* rollback removes the versions; treat as active meanwhile *)
      Imdb_version.Vpage.Active
  | None -> (
      match t.ptt with
      | None ->
          t.unknown_tids <- t.unknown_tids + 1;
          Imdb_version.Vpage.Unknown
      | Some ptt -> (
          match Ptt.lookup ptt tid with
          | Some ts ->
              Vtt.cache_from_ptt t.vtt tid ts;
              Imdb_version.Vpage.Committed ts
          | None ->
              t.unknown_tids <- t.unknown_tids + 1;
              Imdb_version.Vpage.Unknown))

(* Resolution for normal-access stamping ([stamp_page] / the per-record
   trigger).  Identical to [resolve] except that a commit whose commit
   record is still in the volatile log tail first forces the log.  A
   stamp is unlogged and does not advance the page LSN, so
   WAL-before-data alone would not push the commit record out before the
   stamped image could reach disk; a crash then loses the commit, the
   transaction becomes a loser, and recovery's guarded undo (which
   matches the *unstamped* TID) would skip the stamped version — a
   phantom committed version.  Forcing the log first restores the
   invariant that any stamp that can reach disk names a durably
   committed transaction.  The force is rare: it fires only when an
   access stamps a commit younger than the last flush (e.g. inside an
   open group-commit window).  The PTT fallback needs no gate — a PTT
   entry consulted here is covered by a durable commit record (losers'
   entries are removed during recovery, before any access-path
   stamping). *)
let resolve_for_stamping t tid : Imdb_version.Vpage.resolution =
  match Vtt.resolve t.vtt tid with
  | Some (`Committed ts) ->
      if not (Vtt.commit_durable t.vtt tid ~flushed_lsn:(t.flushed_lsn ()))
      then t.force_log ();
      Imdb_version.Vpage.Committed ts
  | Some `Active | Some `Aborted -> Imdb_version.Vpage.Active
  | None -> (
      match t.ptt with
      | None ->
          t.unknown_tids <- t.unknown_tids + 1;
          Imdb_version.Vpage.Unknown
      | Some ptt -> (
          match Ptt.lookup ptt tid with
          | Some ts ->
              Vtt.cache_from_ptt t.vtt tid ts;
              Imdb_version.Vpage.Committed ts
          | None ->
              t.unknown_tids <- t.unknown_tids + 1;
              Imdb_version.Vpage.Unknown))

(* VTT-only resolution for the buffer pool's pre-flush hook.

   Beyond skipping VTT misses, this also skips commits whose commit
   record is not yet durable.  A stamp is unlogged and does not advance
   the page LSN, so WAL-before-data would not force the commit record
   out before the stamped page image hits disk; were the page written
   stamped and the tail then lost in a crash, the transaction would be a
   loser yet its version would carry a committed timestamp — recovery's
   guarded undo (which looks for the unstamped TID) would skip it,
   leaving a phantom committed version.  Deferring the stamp is always
   safe: a later access or a later flush (once the commit record is
   durable) completes it. *)
let resolve_volatile_only t tid : Imdb_version.Vpage.resolution =
  match Vtt.resolve t.vtt tid with
  | Some (`Committed ts)
    when Vtt.commit_durable t.vtt tid ~flushed_lsn:(t.flushed_lsn ()) ->
      Imdb_version.Vpage.Committed ts
  | Some (`Committed _) -> Imdb_version.Vpage.Active (* commit not durable yet *)
  | Some `Active | Some `Aborted -> Imdb_version.Vpage.Active
  | None -> Imdb_version.Vpage.Active (* safe: stamp later, via the PTT *)

let on_stamp t tid =
  Vtt.note_stamped t.vtt tid ~end_of_log:(t.end_of_log ());
  Vtt.drop_if_drained_snapshot t.vtt tid

(* Stamp every committed version in [page].  Returns the number stamped;
   the caller marks the page dirty (unlogged) when non-zero. *)
let stamp_page t page =
  Imdb_version.Vpage.stamp_committed ~metrics:t.metrics page
    ~resolve:(resolve_for_stamping t) ~on_stamp:(on_stamp t)

(* The pre-flush variant: volatile resolution only. *)
let stamp_page_volatile t page =
  Imdb_version.Vpage.stamp_committed ~metrics:t.metrics page
    ~resolve:(resolve_volatile_only t) ~on_stamp:(on_stamp t)

(* Incremental PTT garbage collection (run after each checkpoint).
   [redo_scan_start] is the LSN from which a crash's redo would begin; if
   it has passed a transaction's lsn_at_zero, every unlogged stamp of that
   transaction is on disk and the mapping can go.  Returns collected
   TIDs. *)
let garbage_collect t ~redo_scan_start =
  Imdb_obs.Tracer.with_span t.tracer "ptt.gc" @@ fun sp ->
  let candidates = Vtt.gc_candidates t.vtt ~redo_scan_start in
  (* one batched PTT pass instead of a descent per candidate: collected
     TIDs are consecutive by construction, so the whole drain usually
     lands in a single leaf *)
  let persistent =
    List.filter_map
      (fun (tid, persistent) -> if persistent then Some tid else None)
      candidates
  in
  if persistent <> [] then ignore (Ptt.delete_batch (ptt_exn t) persistent);
  List.iter (fun (tid, _) -> Vtt.drop t.vtt tid) candidates;
  Imdb_obs.Metrics.observe t.metrics Imdb_obs.Metrics.h_ptt_gc_batch
    (List.length candidates);
  Imdb_obs.Tracer.add_attr sp "candidates"
    (string_of_int (List.length candidates));
  Imdb_obs.Tracer.add_attr sp "persistent"
    (string_of_int (List.length persistent));
  List.map fst candidates
