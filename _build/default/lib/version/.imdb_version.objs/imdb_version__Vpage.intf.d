lib/version/vpage.mli: Imdb_clock
