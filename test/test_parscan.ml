(* Parallel time-travel reads (PR 3).

   The fan-out AS OF path must be observationally identical to the serial
   path at any [scan_parallelism]; the histcache must only ever hold
   fully-stamped immutable history pages that match stable storage; and
   ranges the cache cannot serve must fall back to the coordinator
   without losing rows.  Also the satellite regression: a windowed AS OF
   scan whose answer spans several historical pages must agree with
   pointwise lookups. *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module M = Imdb_obs.Metrics
module P = Imdb_storage.Page
module V = Imdb_version.Vpage
module BP = Imdb_buffer.Buffer_pool
module HC = Imdb_histcache.Histcache

let config ?(pool_capacity = 16) ?(tsb = false) p =
  {
    default_config with
    E.page_size = 1024;
    pool_capacity;
    tsb_enabled = tsb;
    scan_parallelism = p;
    histcache_capacity = 256;
  }

let fresh ?pool_capacity p =
  let db, clock = fresh_db ~config:(config ?pool_capacity p) () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  (db, clock)

let k i = Printf.sprintf "k%03d" i

(* Apply [ops] as one-commit transactions; a delete of an absent key is
   rewritten to an upsert so any generated sequence is total.  The clock
   ticks identically per commit, so two databases fed the same ops get
   the same commit timestamps. *)
let apply db clock ops =
  let present = Hashtbl.create 32 in
  List.mapi
    (fun step (kind, i) ->
      let key = k i in
      let ts =
        commit_write db (fun txn ->
            match kind with
            | `Delete when Hashtbl.mem present key ->
                Hashtbl.remove present key;
                Db.delete db txn ~table:"t" ~key
            | _ ->
                Hashtbl.replace present key ();
                Db.upsert db txn ~table:"t" ~key
                  ~payload:(Printf.sprintf "v%d-%s" step key))
      in
      tick clock;
      ts)
    ops

(* Rounds of upserts with varying payload sizes: deep history chains and
   (with enough keys) router key splits. *)
let churn db clock ~keys ~rounds =
  List.concat_map
    (fun r ->
      List.map
        (fun i ->
          let ts =
            commit_write db (fun txn ->
                Db.upsert db txn ~table:"t" ~key:(k i)
                  ~payload:
                    (Printf.sprintf "r%d-%s-%s" r (k i)
                       (String.make (20 + ((r * 7) + i mod 40)) 'x')))
          in
          tick clock;
          ts)
        (List.init keys Fun.id))
    (List.init rounds Fun.id)

let collect ?lo ?hi db ts =
  let out = ref [] in
  Db.as_of db ts (fun txn ->
      Db.scan ?lo ?hi db txn ~table:"t" (fun key v -> out := (key, v) :: !out));
  List.rev !out

let hist db key = Db.exec db (fun txn -> Db.history db txn ~table:"t" ~key)
let flush db = BP.flush_all (Db.engine db).E.pool

(* --- property: parallel == serial ------------------------------------- *)

let prop_parallel_equals_serial =
  let gen =
    QCheck.Gen.(
      list_size (int_range 60 120)
        (pair
           (frequency [ (4, return `Upsert); (1, return `Delete) ])
           (int_bound 30)))
  in
  QCheck.Test.make ~name:"parallel AS OF/history == serial (p in {1,2,4})"
    ~count:8 (QCheck.make gen) (fun ops ->
      let db1, c1 = fresh 1 in
      let db2, c2 = fresh 2 in
      let db4, c4 = fresh 4 in
      let ts1 = apply db1 c1 ops in
      let ts2 = apply db2 c2 ops in
      let ts4 = apply db4 c4 ops in
      if ts1 <> ts2 || ts1 <> ts4 then
        QCheck.Test.fail_report "commit timestamps diverged across engines";
      List.iter flush [ db1; db2; db4 ];
      let n = List.length ts1 in
      let probes =
        List.map (List.nth ts1) [ 0; n / 4; n / 2; 3 * n / 4; n - 1 ]
      in
      List.iter
        (fun ts ->
          let full1 = collect db1 ts in
          if full1 <> collect db2 ts || full1 <> collect db4 ts then
            QCheck.Test.fail_report "full AS OF scan diverged";
          let w1 = collect ~lo:(k 5) ~hi:(k 22) db1 ts in
          if
            w1 <> collect ~lo:(k 5) ~hi:(k 22) db2 ts
            || w1 <> collect ~lo:(k 5) ~hi:(k 22) db4 ts
          then QCheck.Test.fail_report "windowed AS OF scan diverged")
        probes;
      List.iter
        (fun i ->
          let h1 = hist db1 (k i) in
          if h1 <> hist db2 (k i) || h1 <> hist db4 (k i) then
            QCheck.Test.fail_reportf "history diverged for %s" (k i))
        [ 0; 7; 15; 29 ];
      Db.close db1;
      Db.close db2;
      Db.close db4;
      true)

(* --- histcache only ever holds immutable, stamped, stable pages -------- *)

let test_histcache_immutable () =
  let db, clock = fresh 2 in
  let tss = churn db clock ~keys:24 ~rounds:20 in
  flush db;
  (* warm the cache through temporal reads at many depths *)
  List.iteri (fun i ts -> if i mod 17 = 0 then ignore (collect db ts)) tss;
  List.iter (fun i -> ignore (hist db (k i))) [ 0; 5; 11; 23 ];
  (* keep writing and stamping after the cache is warm: none of it may
     leak into cached images *)
  ignore (churn db clock ~keys:24 ~rounds:4);
  Db.exec db (fun txn ->
      List.iter (fun i -> ignore (Db.get db txn ~table:"t" ~key:(k i))) [ 0; 1; 2 ]);
  let eng = Db.engine db in
  let hc = Option.get eng.E.histcache in
  Alcotest.(check bool) "cache populated" true (HC.length hc > 0);
  HC.iter hc (fun pid b ->
      (* the cache holds the decoded form; the raw disk image is the one
         whose checksum seals it (and may be delta-compressed) *)
      let disk_img = eng.E.disk.Imdb_storage.Disk.read_page pid in
      Alcotest.(check bool) "disk image verifies" true (P.verify disk_img);
      Alcotest.(check bool) "is a history page" true (P.page_type b = P.P_history);
      Alcotest.(check bool) "fully stamped" true (not (V.has_unstamped b));
      let expected =
        match P.page_type disk_img with
        | P.P_history_compressed -> Imdb_storage.Vcompress.decode disk_img
        | _ -> disk_img
      in
      Alcotest.(check bool)
        "matches decoded stable storage" true (Bytes.equal b expected));
  Db.close db

(* --- unflushed history: the cache cannot serve it; fall back ----------- *)

let test_fallback_unflushed () =
  (* A pool large enough that nothing is ever evicted (and no flush):
     history pages exist only as dirty frames, stable storage cannot
     serve them, so every fanned-out historical range must bounce back
     to the coordinator — and the answer must not change. *)
  let db1, c1 = fresh ~pool_capacity:512 1 in
  let db2, c2 = fresh ~pool_capacity:512 2 in
  let ops = List.init 200 (fun i -> (`Upsert, i mod 12)) in
  let ts1 = apply db1 c1 ops in
  let ts2 = apply db2 c2 ops in
  Alcotest.(check bool) "same timestamps" true (ts1 = ts2);
  let early = List.nth ts1 10 in
  let r1 = collect db1 early in
  let r2 = collect db2 early in
  Alcotest.(check (list (pair string string))) "fallback scan identical" r1 r2;
  Alcotest.(check bool) "rows returned" true (List.length r1 > 0);
  Alcotest.(check bool)
    "fallbacks counted" true
    (M.get (Db.metrics db2) M.scan_parallel_fallbacks > 0);
  Db.close db1;
  Db.close db2

(* --- satellite regression: window spanning several history pages ------- *)

let scan_vs_pointwise db ts ~lo_i ~hi_i =
  let got = collect ~lo:(k lo_i) ~hi:(k hi_i) db ts in
  let expected =
    List.filter_map
      (fun i ->
        Db.as_of db ts (fun txn -> Db.get db txn ~table:"t" ~key:(k i))
        |> Option.map (fun v -> (k i, v)))
      (List.init (hi_i - lo_i) (fun d -> lo_i + d))
  in
  Alcotest.(check (list (pair string string))) "window vs pointwise" expected got

let test_range_spans_history_pages ~tsb () =
  let db, clock = fresh_db ~config:(config ~pool_capacity:32 ~tsb 1) () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  (* enough keys for router key splits, enough rounds for deep chains:
     a window's answer then lives in several historical pages *)
  let tss = churn db clock ~keys:60 ~rounds:12 in
  let n = List.length tss in
  List.iter
    (fun idx ->
      let ts = List.nth tss idx in
      scan_vs_pointwise db ts ~lo_i:0 ~hi_i:60;
      scan_vs_pointwise db ts ~lo_i:10 ~hi_i:45)
    [ n / 10; n / 3; n / 2; 3 * n / 4; n - 1 ];
  Db.close db

let suite =
  [
    QCheck_alcotest.to_alcotest prop_parallel_equals_serial;
    Alcotest.test_case "histcache holds only immutable stamped pages" `Quick
      test_histcache_immutable;
    Alcotest.test_case "unflushed history falls back, identically" `Quick
      test_fallback_unflushed;
    Alcotest.test_case "AS OF window spans history pages (chain)" `Quick
      (test_range_spans_history_pages ~tsb:false);
    Alcotest.test_case "AS OF window spans history pages (TSB)" `Quick
      (test_range_spans_history_pages ~tsb:true);
  ]
