lib/core/engine.mli: Catalog Hashtbl Imdb_btree Imdb_buffer Imdb_clock Imdb_lock Imdb_storage Imdb_tsb Imdb_tstamp Imdb_wal Meta
