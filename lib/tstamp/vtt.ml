(* The volatile timestamp table (paper Section 2.2).

   An in-memory hash table mapping TID -> (timestamp, RefCount).  It is
   both a cache over the persistent timestamp table and the bookkeeping
   device for incremental PTT garbage collection:

   - RefCount counts the record versions of a transaction that still
     carry the TID instead of a timestamp.  It is incremented on every
     insert/update/delete and decremented whenever lazy timestamping
     rewrites a version's tail.
   - When RefCount reaches zero, the end-of-log LSN is recorded
     ([lsn_at_zero]).  Once the redo-scan start point passes that LSN —
     meaning every page carrying the (unlogged!) stamping has reached
     disk — the PTT entry can be deleted: no future access can need it,
     even across a crash.
   - Entries faulted in from the PTT after a miss have an *undefined*
     refcount ([refcount = undefined]) and are never used to trigger GC,
     exactly as in the paper.

   Snapshot-only transactions never touch the PTT; their entries die here
   as soon as their refcount drains. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module M = Imdb_obs.Metrics

let undefined = -1
let no_lsn = -1L

type status = Active | Committed of Ts.t | Aborted

type entry = {
  tid : Tid.t;
  mutable status : status;
  mutable refcount : int;
  mutable lsn_at_zero : int64;
  mutable commit_end : int64; (* end-of-log when the commit record was written *)
  mutable persistent : bool; (* has a PTT entry (immortal-table txn) *)
}

type t = { entries : entry Tid.Table.t; mutable metrics : M.t }

let create ?(metrics = M.null) () = { entries = Tid.Table.create 256; metrics }
let set_metrics t m = t.metrics <- m
let size t = Tid.Table.length t.entries
let find t tid = Tid.Table.find_opt t.entries tid

(* Stage I: transaction begin. *)
let begin_txn t tid =
  if Tid.Table.mem t.entries tid then
    invalid_arg (Printf.sprintf "Vtt.begin_txn: duplicate %s" (Tid.to_string tid));
  Tid.Table.replace t.entries tid
    { tid; status = Active; refcount = 0; lsn_at_zero = no_lsn;
      commit_end = no_lsn; persistent = false }

(* Stage II: one more version carries this TID. *)
let incr_ref t tid =
  match find t tid with
  | Some e -> e.refcount <- e.refcount + 1
  | None -> invalid_arg (Printf.sprintf "Vtt.incr_ref: unknown %s" (Tid.to_string tid))

(* Versions removed by rollback no longer need stamping. *)
let decr_ref_rollback t tid =
  match find t tid with
  | Some e -> if e.refcount > 0 then e.refcount <- e.refcount - 1
  | None -> ()

(* Stage III: commit assigns the timestamp.  [persistent] marks
   transactions whose mapping was also inserted into the PTT. *)
let commit t tid ~ts ~persistent ~end_of_log =
  match find t tid with
  | Some e ->
      e.status <- Committed ts;
      e.persistent <- persistent;
      e.commit_end <- end_of_log;
      if e.refcount = 0 then e.lsn_at_zero <- end_of_log
  | None -> invalid_arg (Printf.sprintf "Vtt.commit: unknown %s" (Tid.to_string tid))

let abort t tid =
  match find t tid with
  | Some e -> e.status <- Aborted
  | None -> ()

(* Stage IV support: a version of [tid] was just stamped; when the last
   one is, remember where the log ended — the GC threshold. *)
let note_stamped t tid ~end_of_log =
  match find t tid with
  | Some e ->
      if e.refcount > 0 then begin
        e.refcount <- e.refcount - 1;
        if e.refcount = 0 && e.status <> Active then e.lsn_at_zero <- end_of_log
      end
  | None -> ()

(* Cache a mapping recovered from the PTT; refcount undefined so the GC
   never fires from it ("we set the RefCount for the entry to undefined so
   that we don't garbage collect its PTT entry"). *)
let cache_from_ptt t tid ts =
  (* A PTT entry is only consulted after its VTT entry was GC'd, which
     requires the commit to be durably past the redo-scan start point —
     so a cached mapping is trivially durable ([commit_end = 0]). *)
  Tid.Table.replace t.entries tid
    { tid; status = Committed ts; refcount = undefined; lsn_at_zero = no_lsn;
      commit_end = 0L; persistent = true }

let resolve t tid =
  match find t tid with
  | Some { status = Committed ts; _ } ->
      M.incr t.metrics M.vtt_hits;
      Some (`Committed ts)
  | Some { status = Active; _ } -> Some `Active
  | Some { status = Aborted; _ } -> Some `Aborted
  | None -> None

(* Is [tid]'s commit record durable, given the log is flushed through
   [flushed_lsn]?  An on-disk stamp asserts the commit survives any
   crash, so unlogged flush-time stamping must never outrun the commit
   record: a stamp does not move the page LSN, hence WAL-before-data
   alone will not force the commit record out before the stamped page. *)
let commit_durable t tid ~flushed_lsn =
  match find t tid with
  | Some { status = Committed _; commit_end; _ } ->
      commit_end <> no_lsn && Int64.compare commit_end flushed_lsn <= 0
  | _ -> false

(* Transactions whose PTT entry is now garbage: refcount drained and the
   stamping provably on disk (redo-scan start point beyond lsn_at_zero). *)
let gc_candidates t ~redo_scan_start =
  Tid.Table.fold
    (fun tid e acc ->
      match e.status with
      | Committed _
        when e.refcount = 0
             && e.lsn_at_zero <> no_lsn
             && Int64.compare redo_scan_start e.lsn_at_zero > 0 ->
          (tid, e.persistent) :: acc
      | _ -> acc)
    t.entries []

let drop t tid = Tid.Table.remove t.entries tid

(* Snapshot-only transactions are dropped the moment their refcount
   drains: nothing about them needs to survive. *)
let drop_if_drained_snapshot t tid =
  match find t tid with
  | Some e when (not e.persistent) && e.refcount = 0 && e.status <> Active -> drop t tid
  | _ -> ()

let iter t f = Tid.Table.iter (fun _ e -> f e) t.entries

let pp ppf t =
  iter t (fun e ->
      Fmt.pf ppf "%a: %s ref=%d lsn0=%Ld%s@." Tid.pp e.tid
        (match e.status with
        | Active -> "active"
        | Aborted -> "aborted"
        | Committed ts -> Ts.to_string ts)
        e.refcount e.lsn_at_zero
        (if e.persistent then " [ptt]" else ""))
