(* Lock manager.

   Strict two-phase locking for the serializable path (the paper's base
   engine supports "serializable, via fine grained locking"); snapshot
   isolation transactions bypass read locks entirely, which is the point
   of the versioning machinery.

   Resources are hierarchical: table locks in intention modes, record
   locks in S/X.  The engine is single-threaded with logically interleaved
   transactions, so a conflicting request never blocks a thread — it
   either fails fast ([`Would_block]) or is declared a deadlock when the
   wait-for graph (maintained from failed requests) contains a cycle.
   Callers abort the victim and retry. *)

type resource = Table of int | Record of int * string (* table_id, key *)

let pp_resource ppf = function
  | Table id -> Fmt.pf ppf "table:%d" id
  | Record (id, k) -> Fmt.pf ppf "rec:%d/%S" id k

type mode = IS | IX | S | X

let pp_mode ppf m =
  Fmt.string ppf (match m with IS -> "IS" | IX -> "IX" | S -> "S" | X -> "X")

(* Standard multigranularity compatibility matrix. *)
let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S) | (IX | S), IS -> true
  | IX, IX -> true
  | S, S -> true
  | _, X | X, _ -> false
  | IX, S | S, IX -> false

(* Mode strength for upgrades: the least upper bound. *)
let lub a b =
  match (a, b) with
  | X, _ | _, X -> X
  | S, IX | IX, S -> X (* SIX collapsed to X for simplicity *)
  | S, _ | _, S -> S
  | IX, _ | _, IX -> IX
  | IS, IS -> IS

type entry = { holders : (Imdb_clock.Tid.t, mode) Hashtbl.t }

type t = {
  table : (resource, entry) Hashtbl.t;
  held : (Imdb_clock.Tid.t, resource list ref) Hashtbl.t;
  (* wait-for edges recorded on blocked requests, for deadlock detection *)
  waits : (Imdb_clock.Tid.t, Imdb_clock.Tid.t list) Hashtbl.t;
}

let create () = { table = Hashtbl.create 256; held = Hashtbl.create 64; waits = Hashtbl.create 16 }

type outcome = Granted | Would_block of Imdb_clock.Tid.t list

exception Deadlock of Imdb_clock.Tid.t

let entry_of t res =
  match Hashtbl.find_opt t.table res with
  | Some e -> e
  | None ->
      let e = { holders = Hashtbl.create 4 } in
      Hashtbl.add t.table res e;
      e

let note_held t tid res =
  match Hashtbl.find_opt t.held tid with
  | Some l -> if not (List.mem res !l) then l := res :: !l
  | None -> Hashtbl.add t.held tid (ref [ res ])

(* Does the wait-for graph, extended with edges tid->blockers, contain a
   cycle reachable from [tid]? *)
let creates_cycle t tid blockers =
  let rec reachable seen from =
    if List.mem tid from then true
    else
      match from with
      | [] -> false
      | x :: rest ->
          if List.mem x seen then reachable seen rest
          else
            let succ = match Hashtbl.find_opt t.waits x with Some l -> l | None -> [] in
            reachable (x :: seen) (succ @ rest)
  in
  reachable [] blockers

let acquire t tid res mode =
  let e = entry_of t res in
  let mine = Hashtbl.find_opt e.holders tid in
  let requested = match mine with Some m -> lub m mode | None -> mode in
  let conflicts =
    Hashtbl.fold
      (fun other m acc ->
        if Imdb_clock.Tid.equal other tid then acc
        else if compatible requested m then acc
        else other :: acc)
      e.holders []
  in
  match conflicts with
  | [] ->
      Hashtbl.replace e.holders tid requested;
      note_held t tid res;
      Hashtbl.remove t.waits tid;
      Granted
  | blockers ->
      if creates_cycle t tid blockers then begin
        Hashtbl.remove t.waits tid;
        raise (Deadlock tid)
      end;
      Hashtbl.replace t.waits tid blockers;
      Would_block blockers

(* Acquire or raise: the engine's normal path, where a block is surfaced
   to the caller as an exception (no real threads to park).  Because the
   requester does not actually wait, its wait-for edge is erased before
   raising — otherwise stale edges would accumulate into phantom
   deadlocks.  True waiting callers use [acquire] and keep their edge. *)
exception Conflict of { tid : Imdb_clock.Tid.t; blockers : Imdb_clock.Tid.t list }

let acquire_exn t tid res mode =
  match acquire t tid res mode with
  | Granted -> ()
  | Would_block blockers ->
      Hashtbl.remove t.waits tid;
      raise (Conflict { tid; blockers })

let holds t tid res =
  match Hashtbl.find_opt t.table res with
  | None -> None
  | Some e -> Hashtbl.find_opt e.holders tid

(* Strict 2PL: all locks released together at commit/abort. *)
let release_all t tid =
  (match Hashtbl.find_opt t.held tid with
  | None -> ()
  | Some l ->
      List.iter
        (fun res ->
          match Hashtbl.find_opt t.table res with
          | None -> ()
          | Some e ->
              Hashtbl.remove e.holders tid;
              if Hashtbl.length e.holders = 0 then Hashtbl.remove t.table res)
        !l;
      Hashtbl.remove t.held tid);
  Hashtbl.remove t.waits tid

let held_by t tid =
  match Hashtbl.find_opt t.held tid with Some l -> !l | None -> []

let active_locks t =
  Hashtbl.fold
    (fun res e acc ->
      Hashtbl.fold (fun tid m acc -> (res, tid, m) :: acc) e.holders acc)
    t.table []
