lib/core/split_store.ml: Bytes Engine Hashtbl Imdb_btree Imdb_clock Imdb_lock Imdb_tstamp Imdb_util Imdb_version Int32 List String
