(** Database metadata: the single cell of page 0.

    Page 0 flows through the buffer pool and WAL like any page, so
    allocator state is crash-consistent.  [last_checkpoint_lsn] is also
    read directly from disk at open to locate recovery's starting
    checkpoint (a stale value only starts recovery earlier). *)

val meta_page_id : int
val meta_slot : int

(* Reserved system table ids. *)
val catalog_table_id : int
val ptt_table_id : int

type t = {
  mutable hwm : int;  (** first never-allocated page id *)
  mutable freelist_head : int;  (** 0 = empty *)
  mutable catalog_root : int;
  mutable ptt_root : int;
  mutable next_table_id : int;
  mutable last_checkpoint_lsn : int64;
}

val fresh : unit -> t

exception Bad_meta of string

val encode : t -> bytes
val decode : bytes -> t
(** @raise Bad_meta on wrong magic or version. *)
