(* Multi-session execution: the session layer must add nothing and break
   nothing.

   Two claims, tested separately:
   - sessions = 1 is bit-identical to the plain Db API: the same
     deterministic workload driven through [Db.Session] and through the
     direct calls produces byte-for-byte the same WAL, the same commit
     timestamps, the same final state and the same histories.  The gate,
     the blocking lock path and the group-commit follower protocol are
     pure pass-throughs when uncontended.
   - concurrent execution is equivalent to a serial order: the torture
     harness's concurrent mode (QCheck'd over seeds, at 2 and 4
     sessions) merges every domain's commits into the linearized Model
     oracle in timestamp order and verifies every AS OF state, boundary
     and history against it — with crash points pulling the plug
     mid-group-commit along the way.  A Passed outcome IS the
     equivalence claim; any nonserializable interleaving the engine
     admitted would surface as an oracle mismatch. *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module H = Imdb_torture.Harness
module Ts = Imdb_clock.Timestamp
module Rng = Imdb_util.Rng

(* --- sessions=1 ≡ plain API, bit for bit -------------------------------- *)

type driver = {
  d_begin : unit -> Db.txn;
  d_commit : Db.txn -> Ts.t option;
  d_upsert : Db.txn -> key:string -> payload:string -> unit;
  d_delete : Db.txn -> key:string -> unit;
  d_get : Db.txn -> key:string -> string option;
}

let direct_driver db =
  {
    d_begin = (fun () -> Db.begin_txn db);
    d_commit = (fun txn -> Db.commit db txn);
    d_upsert = (fun txn ~key ~payload -> Db.upsert db txn ~table:"t" ~key ~payload);
    d_delete = (fun txn ~key -> Db.delete db txn ~table:"t" ~key);
    d_get = (fun txn ~key -> Db.get db txn ~table:"t" ~key);
  }

let session_driver db =
  let s = Db.session db in
  {
    d_begin = (fun () -> Db.Session.begin_txn s);
    d_commit = (fun txn -> Db.Session.commit s txn);
    d_upsert = (fun txn ~key ~payload -> Db.Session.upsert s txn ~table:"t" ~key ~payload);
    d_delete = (fun txn ~key -> Db.Session.delete s txn ~table:"t" ~key);
    d_get = (fun txn ~key -> Db.Session.get s txn ~table:"t" ~key);
  }

let schema =
  S.make [ { S.col_name = "k"; col_type = S.T_string }; { S.col_name = "v"; col_type = S.T_string } ]

(* A seeded workload of small transactions — upserts, deletes of keys the
   run knows are live, read-your-writes checks, an abort now and then —
   identical on both sides because it consumes its own private RNG. *)
let drive_workload ~seed ~txns db d =
  let rng = Rng.create seed in
  let live = Hashtbl.create 64 in
  let stamps = ref [] in
  for i = 1 to txns do
    let txn = d.d_begin () in
    (* this transaction's net effect per key — a key rewritten twice in
       one txn must be checked against its latest write, not its first *)
    let overlay = Hashtbl.create 8 in
    let alive key =
      match Hashtbl.find_opt overlay key with
      | Some v -> v <> None
      | None -> Hashtbl.mem live key
    in
    for _ = 1 to 1 + Rng.int rng 3 do
      let key = Printf.sprintf "k%02d" (Rng.int rng 40) in
      if alive key && Rng.int rng 4 = 0 then begin
        d.d_delete txn ~key;
        Hashtbl.replace overlay key None
      end
      else begin
        let payload = Printf.sprintf "v%d-%d" i (Rng.int rng 1000) in
        d.d_upsert txn ~key ~payload;
        Hashtbl.replace overlay key (Some payload)
      end
    done;
    (* read-your-writes inside the transaction *)
    Hashtbl.iter
      (fun key expect ->
        if d.d_get txn ~key <> expect then Alcotest.failf "read-your-writes lost %s" key)
      overlay;
    if Rng.int rng 10 = 0 then Db.abort db txn
    else begin
      (match d.d_commit txn with
      | Some ts -> stamps := ts :: !stamps
      | None -> ());
      Hashtbl.iter
        (fun key v ->
          match v with
          | Some p -> Hashtbl.replace live key p
          | None -> Hashtbl.remove live key)
        overlay
    end
  done;
  List.rev !stamps

let state_and_histories db =
  let rows = ref [] in
  Db.exec db (fun txn ->
      Db.scan db txn ~table:"t" (fun k v -> rows := (k, v) :: !rows));
  let hist =
    Db.exec db (fun txn ->
        List.map (fun (k, _) -> (k, Db.history db txn ~table:"t" ~key:k)) !rows)
  in
  (List.rev !rows, hist)

let open_twin () =
  let clock = Imdb_clock.Clock.create_logical () in
  let disk = Imdb_storage.Disk.in_memory ~page_size:1024 () in
  let log_device = Imdb_wal.Wal.Device.in_memory () in
  let config = { E.default_config with E.pool_capacity = 256; auto_checkpoint_every = 0 } in
  let db = Db.open_devices ~config ~clock ~disk ~log_device () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema;
  (db, log_device)

let test_session_bit_identical () =
  let run mk_driver =
    let db, dev = open_twin () in
    let stamps = drive_workload ~seed:2026 ~txns:150 db (mk_driver db) in
    let state, hist = state_and_histories db in
    Db.close db;
    let wal = dev.Imdb_wal.Wal.Device.read ~pos:0 ~len:(dev.Imdb_wal.Wal.Device.size ()) in
    (stamps, state, hist, wal)
  in
  let s_a, st_a, h_a, w_a = run direct_driver in
  let s_b, st_b, h_b, w_b = run session_driver in
  Alcotest.(check int) "same commit count" (List.length s_a) (List.length s_b);
  Alcotest.(check bool) "same commit timestamps" true (List.for_all2 Ts.equal s_a s_b);
  Alcotest.(check bool) "same final state" true (st_a = st_b);
  Alcotest.(check bool) "same histories" true (h_a = h_b);
  Alcotest.(check int) "same WAL length" (Bytes.length w_a) (Bytes.length w_b);
  Alcotest.(check bool) "WAL bit-identical" true (Bytes.equal w_a w_b)

(* --- concurrent ≡ serial, via the torture oracle ------------------------- *)

let concurrent_cfg ~sessions ~seed =
  { H.default with H.seed; ops = 450; crashes = 5; keys_per_table = 32; sessions }

let prop_concurrent_equals_serial sessions =
  QCheck.Test.make ~count:3 ~name:(Printf.sprintf "%d sessions ≡ a serial order" sessions)
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      match H.run (concurrent_cfg ~sessions ~seed) with
      | H.Passed r ->
          (* the claim is vacuous unless real concurrent work happened *)
          r.H.r_commits > 50 && r.H.r_asof_checks > 0
      | H.Failed f ->
          QCheck.Test.fail_reportf "seed %d diverged from serial order: %a" seed
            H.pp_failure f)

let test_concurrent_crash_settlement () =
  (* a fixed seed known to fire wal-tail crashes mid-burst: lost commits
     must be settled (probed, then truncated from the oracle) without a
     verification failure *)
  match H.run { (concurrent_cfg ~sessions:3 ~seed:7) with H.ops = 900; crashes = 10 } with
  | H.Passed r ->
      Alcotest.(check bool) "crashes fired" true (r.H.r_crashes > 0);
      Alcotest.(check bool) "recovered each one" true (r.H.r_recoveries >= r.H.r_crashes)
  | H.Failed f -> Alcotest.failf "concurrent crash run failed: %a" H.pp_failure f

let suite =
  [
    Alcotest.test_case "sessions=1 bit-identical to plain API" `Quick test_session_bit_identical;
    QCheck_alcotest.to_alcotest ~long:false (prop_concurrent_equals_serial 2);
    QCheck_alcotest.to_alcotest ~long:false (prop_concurrent_equals_serial 4);
    Alcotest.test_case "concurrent crashes settle lost commits" `Slow test_concurrent_crash_settlement;
  ]
