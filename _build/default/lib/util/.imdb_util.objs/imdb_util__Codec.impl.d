lib/util/codec.ml: Buffer Bytes Char Int32 Int64 Printf String
