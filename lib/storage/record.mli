(** Record versions as stored in data-page cells (paper Fig. 1).

    Every version carries a 14-byte tail mirroring the bytes SQL Server
    uses for snapshot versioning, repurposed as the paper describes:

    {v  VP(2) | Ttime(8) | SN(4)  v}

    [VP] is the version pointer — the slot number of the previous version
    of the record, in this page or (when [f_vp_in_history] is set) in the
    page named by the page header's history pointer.  [Ttime] holds either
    the version's commit clock time or, until lazy timestamping reaches
    it, the updating transaction's TID.  [SN] is the timestamp sequence
    number, assigned when the version is stamped. *)

val tail_size : int
(** 14 bytes. *)

val fixed_overhead : int
(** Header + tail framing bytes per record. *)

val no_vp : int
(** VP value meaning "no previous version". *)

(** Flag bits (first byte of the record): *)

val f_delete_stub : int
(** this version is a delete stub: the record was deleted at its time *)

val f_vp_in_history : int
(** VP names a slot in the page's historical page, not a local slot *)

val f_non_current : int
(** an old version, shadowed by a newer one (not in the logical slot view) *)

type t = {
  flags : int;
  key : string;
  payload : string;
  vp : int;
  ttime : Imdb_clock.Tid.ttime_field;
  sn : int;
}

val is_delete_stub : t -> bool
val is_non_current : t -> bool
val vp_in_history : t -> bool

val size : key:string -> payload:string -> int
(** Encoded size of a version with these fields. *)

val encode : t -> bytes
val decode : bytes -> t

(** {1 In-place access on a page}

    The workhorses of lazy timestamping: stamping rewrites only the
    14-byte tail of a cell, without re-encoding the record. *)

val in_page_key : bytes -> int -> string
val in_page_key_length : bytes -> int -> int
val in_page_payload : bytes -> int -> string

val in_page_key_matches : bytes -> int -> string -> bool
(** Allocation-free key equality — the hot path of every in-page lookup. *)

val key_bytes_equal : bytes -> int -> string -> int -> int -> bool
(** [key_bytes_equal page off key klen i]: raw comparison helper used by
    manual scan loops. *)

val in_page_flags : bytes -> int -> int
val set_in_page_flags : bytes -> int -> int -> unit
val in_page_vp : bytes -> int -> int
val set_in_page_vp : bytes -> int -> int -> unit
val in_page_ttime : bytes -> int -> Imdb_clock.Tid.ttime_field
val set_in_page_ttime : bytes -> int -> Imdb_clock.Tid.ttime_field -> unit
val in_page_sn : bytes -> int -> int
val set_in_page_sn : bytes -> int -> int -> unit

val in_page_timestamp : bytes -> int -> Imdb_clock.Timestamp.t option
(** The version's start timestamp, or [None] while it carries a TID. *)

val tail_offset_in_body : bytes -> int -> int
(** Offset of the tail relative to the cell body — the coordinate WAL
    [Op_patch] records use. *)

val read_in_page : bytes -> int -> t

val with_links : bytes -> flags:int -> vp:int -> bytes
(** Copy of an encoded record with flags and version pointer rewritten —
    how splits re-home versions while rewiring their chains. *)

val pp : Format.formatter -> t -> unit
