test/test_interleave.ml: Alcotest Array Hashtbl Helpers Imdb_core Imdb_lock Imdb_util List Option Printf
