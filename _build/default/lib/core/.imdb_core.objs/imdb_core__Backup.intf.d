lib/core/backup.mli: Db Imdb_clock
