lib/tstamp/vtt.mli: Format Imdb_clock
