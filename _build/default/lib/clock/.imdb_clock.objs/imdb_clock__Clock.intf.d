lib/clock/clock.mli: Timestamp
