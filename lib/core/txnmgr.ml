(* Transaction lifecycle: commit processing and rollback.

   Commit (Section 2.2, stage III): choose the commit timestamp — late,
   so it agrees with serialization order — then, under lazy timestamping,
   perform the *single* PTT insert for the transaction and write the
   commit record; no updated record is revisited.  Under eager
   timestamping every written version is revisited, stamped and logged
   before the commit record — the strategy the paper rejects and we keep
   as an ablation baseline.

   Rollback uses guarded logical undo: each undoable log record's effect
   is located through the table's router/tree *at rollback time* (time
   splits and key splits may have moved it) and reverted only if still
   present.  All undo effects are themselves logged redo-only, and the
   guards make re-undoing after a crash idempotent, which replaces
   textbook CLR chains in this engine. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module P = Imdb_storage.Page
module R = Imdb_storage.Record
module BP = Imdb_buffer.Buffer_pool
module LR = Imdb_wal.Log_record
module V = Imdb_version.Vpage
module E = Engine

let begin_txn = E.begin_txn

(* --- commit ---------------------------------------------------------------- *)

let release eng txn =
  Imdb_lock.Lock_manager.release_all eng.E.locks txn.E.tx_tid;
  Tid.Table.remove eng.E.active txn.E.tx_tid;
  txn.E.tx_state <- E.Finished

(* Commit; returns the commit timestamp, or [None] for read-only
   transactions (which leave no trace at all). *)
let commit eng txn =
  E.check_running txn;
  if E.is_read_only txn then begin
    (* nothing logged, nothing timestamped: vanish quietly *)
    Imdb_tstamp.Vtt.drop (E.vtt eng) txn.E.tx_tid;
    release eng txn;
    E.fold_txn_stats eng txn ~committed:true ();
    None
  end
  else begin
    Imdb_obs.Tracer.with_span eng.E.tracer "txn.commit" @@ fun sp ->
    let ts = Imdb_clock.Clock.next_commit_timestamp eng.E.clock in
    txn.E.tx_commit_ts <- Some ts;
    let persistent = ref false in
    (match eng.E.config.E.timestamping with
    | E.Lazy_stamping ->
        if txn.E.tx_wrote_immortal then begin
          (* the one commit-path write that replaces per-record revisits *)
          persistent := true;
          E.with_txn eng txn (fun () ->
              Imdb_tstamp.Ptt.insert (E.ptt_exn eng) txn.E.tx_tid ts)
        end
    | E.Eager_stamping -> Table.eager_stamp_writes eng txn ~ts);
    E.ensure_begun eng txn;
    let commit_lsn =
      Imdb_wal.Wal.append eng.E.wal (LR.Commit { tid = txn.E.tx_tid; ts })
    in
    (* Group commit: the durability acknowledgment ([tx_durable]) fires
       only from the flush that syncs the commit record.  A window <= 1
       forces that flush now — one sync per commit, the classic protocol.
       A wider window lets up to [window] commits share one sync, forced
       here when the batch fills (or sooner by any WAL-before-data or
       checkpoint flush); a crash before the shared sync finds the batch
       unacknowledged and recovery rolls it back. *)
    Imdb_wal.Wal.register_commit eng.E.wal ~lsn:commit_lsn ~on_durable:(fun () ->
        txn.E.tx_durable <- true);
    (* our position in the forming group-commit batch: 1 = leader (our
       flush will pay the sync), k = riding a batch of k so far *)
    let batch_pos = Imdb_wal.Wal.pending_commits eng.E.wal in
    (* The VTT commit — the visibility switch — happens here, in the same
       gate section that issued the timestamp, so concurrent sessions can
       never observe a timestamp-ordered commit before an earlier one.
       Durability may lag visibility by one flush: exactly the contract a
       group-commit window already established.  (The flush itself does
       not append, so [end_of_log] is the same either side of it.) *)
    Imdb_tstamp.Vtt.commit (E.vtt eng) txn.E.tx_tid ~ts ~persistent:!persistent
      ~end_of_log:(Imdb_wal.Wal.next_lsn eng.E.wal);
    Imdb_tstamp.Vtt.drop_if_drained_snapshot (E.vtt eng) txn.E.tx_tid;
    let window = eng.E.config.E.group_commit_window in
    if window <= 1 || Imdb_wal.Wal.pending_commits eng.E.wal >= window then
      (* the fsync is where committing sessions overlap: the gate is
         released around it, so concurrent commits batch on the WAL's
         flush mutex and share one device sync (this transaction's locks
         stay held — 2PL conflicts are still excluded).  Flushing through
         our own commit record — not the whole buffered tail — lets a
         committer whose record a concurrent leader's sync already
         covered return without paying a second sync for records newer
         than its own; serially the commit record is the end of the
         buffered tail, so the two are the same flush. *)
      E.without_gate eng (fun () -> Imdb_wal.Wal.flush ~lsn:commit_lsn eng.E.wal);
    ignore (Imdb_wal.Wal.append eng.E.wal (LR.End { tid = txn.E.tx_tid }));
    release eng txn;
    let m = eng.E.metrics in
    Imdb_obs.Metrics.incr m Imdb_obs.Metrics.txn_commits;
    Imdb_obs.Metrics.observe m Imdb_obs.Metrics.h_commit_writes
      (List.length txn.E.tx_writes);
    let latency_ticks =
      if Ts.compare txn.E.tx_snapshot Ts.zero > 0 then begin
        let l = Int64.to_int (Int64.sub (Ts.ttime ts) (Ts.ttime txn.E.tx_snapshot)) in
        Imdb_obs.Metrics.observe m Imdb_obs.Metrics.h_commit_latency_ms l;
        Some l
      end
      else None
    in
    E.fold_txn_stats eng txn ~committed:true ?latency_ticks ~batch_pos ();
    eng.E.commits_since_checkpoint <- eng.E.commits_since_checkpoint + 1;
    Imdb_obs.Tracer.add_attr sp "tid" (Tid.to_string txn.E.tx_tid);
    Imdb_obs.Tracer.add_attr sp "ts" (Ts.to_string ts);
    Imdb_obs.Tracer.add_attr sp "writes"
      (string_of_int (List.length txn.E.tx_writes));
    (* an auto-checkpoint (and the PTT GC inside it) shows up as a child
       of the commit that tripped it — exactly the causality the tracer
       exists to surface *)
    E.maybe_auto_checkpoint eng;
    Some ts
  end

(* --- rollback --------------------------------------------------------------- *)

let tree_for eng table_id =
  if table_id = Meta.catalog_table_id then Some (E.catalog_exn eng)
  else if table_id = Meta.ptt_table_id then
    Some (E.ptt_exn eng).Imdb_tstamp.Ptt.tree
  else
    match E.table_by_id eng table_id with
    | Some ti when ti.Catalog.ti_mode = Catalog.Conventional ->
        Some (Table.conv_tree eng ti)
    | _ -> None

let key_of_leaf_cell body = fst (Imdb_btree.Btree.decode_leaf_cell body)

(* Undo one logged operation, if its effect is still present (guards make
   this idempotent across crashes during rollback). *)
let undo_op eng txn ~op =
  match op with
  | LR.Op_kv_insert { body; table_id; _ } -> (
      match tree_for eng table_id with
      | None -> ()
      | Some tree ->
          let key = key_of_leaf_cell body in
          ignore (Imdb_btree.Btree.delete tree ~key))
  | LR.Op_kv_replace { old_body; table_id; _ } -> (
      match tree_for eng table_id with
      | None -> ()
      | Some tree ->
          let key, value = Imdb_btree.Btree.decode_leaf_cell old_body in
          Imdb_btree.Btree.insert ~undoable:false tree ~key ~value)
  | LR.Op_kv_delete { body; table_id; _ } -> (
      match tree_for eng table_id with
      | None -> ()
      | Some tree ->
          let key, value = Imdb_btree.Btree.decode_leaf_cell body in
          if not (Imdb_btree.Btree.mem tree ~key) then
            Imdb_btree.Btree.insert ~undoable:false tree ~key ~value)
  | LR.Op_version_insert { body; table_id; _ } -> (
      match E.table_by_id eng table_id with
      | None -> ()
      | Some ti ->
          let rcd = R.decode body in
          let key = rcd.R.key in
          let pid, _, _ = Table.locate eng ti ~key in
          BP.with_page eng.E.pool pid (fun fr ->
              let page = BP.bytes fr in
              match V.find_current page ~key with
              | Some slot
                when R.in_page_ttime page slot = Tid.Unstamped txn.E.tx_tid -> (
                  (* remove our version; restore the predecessor to
                     currency if it is local *)
                  let vp = R.in_page_vp page slot in
                  let vp_local =
                    vp <> R.no_vp
                    && R.in_page_flags page slot land R.f_vp_in_history = 0
                  in
                  let cell = P.read_cell page slot in
                  E.exec_op eng fr ~undoable:false (LR.Op_delete { slot; body = cell });
                  Imdb_tstamp.Vtt.decr_ref_rollback (E.vtt eng) txn.E.tx_tid;
                  if vp_local then
                    let old_flags = R.in_page_flags page vp in
                    let new_flags = old_flags land lnot R.f_non_current in
                    if new_flags <> old_flags then
                      E.exec_op eng fr ~undoable:false
                        (LR.Op_patch
                           {
                             slot = vp;
                             at = 0;
                             old_b = Bytes.make 1 (Char.chr old_flags);
                             new_b = Bytes.make 1 (Char.chr new_flags);
                           }))
              | Some _ | None -> () (* already undone *)))
  | LR.Op_msg_append { body; table_id; _ } -> (
      match E.table_by_id eng table_id with
      | None -> ()
      | Some ti ->
          let msg = Ingest.decode_msg body in
          (* Guard 1: the message is still buffered — drop it from the
             mirror and the buffer page, so no later flush can apply a
             loser's write.  Guard 2: a flush already applied it — remove
             our (necessarily unstamped) version from the data page, the
             Op_version_insert undo relocated through the router.  After a
             crash mid-flush both states can coexist (applied but not yet
             truncated); both guards fire and [decr_ref_rollback]
             saturates, so re-undoing stays idempotent. *)
          (match E.ingest_buf eng ti with
          | Some buf when Ingest.remove_seq buf ~seq:msg.Ingest.m_seq ->
              BP.with_page eng.E.pool buf.Ingest.b_page (fun fr ->
                  let page = BP.bytes fr in
                  let victim = ref None in
                  P.iter_live page (fun slot ->
                      if !victim = None then
                        let m = Ingest.decode_msg (P.read_cell page slot) in
                        if m.Ingest.m_seq = msg.Ingest.m_seq then victim := Some slot);
                  match !victim with
                  | Some slot ->
                      let cell = P.read_cell page slot in
                      E.exec_op eng fr ~undoable:false
                        (LR.Op_delete { slot; body = cell });
                      Imdb_tstamp.Vtt.decr_ref_rollback (E.vtt eng) txn.E.tx_tid
                  | None -> ())
          | Some _ | None -> ());
          let key = msg.Ingest.m_key in
          let pid, _, _ = Table.locate eng ti ~key in
          BP.with_page eng.E.pool pid (fun fr ->
              let page = BP.bytes fr in
              match V.find_current page ~key with
              | Some slot
                when R.in_page_ttime page slot = Tid.Unstamped txn.E.tx_tid -> (
                  let vp = R.in_page_vp page slot in
                  let vp_local =
                    vp <> R.no_vp
                    && R.in_page_flags page slot land R.f_vp_in_history = 0
                  in
                  let cell = P.read_cell page slot in
                  E.exec_op eng fr ~undoable:false (LR.Op_delete { slot; body = cell });
                  Imdb_tstamp.Vtt.decr_ref_rollback (E.vtt eng) txn.E.tx_tid;
                  if vp_local then
                    let old_flags = R.in_page_flags page vp in
                    let new_flags = old_flags land lnot R.f_non_current in
                    if new_flags <> old_flags then
                      E.exec_op eng fr ~undoable:false
                        (LR.Op_patch
                           {
                             slot = vp;
                             at = 0;
                             old_b = Bytes.make 1 (Char.chr old_flags);
                             new_b = Bytes.make 1 (Char.chr new_flags);
                           }))
              | Some _ | None -> () (* never flushed, or already undone *)))
  | LR.Op_insert _ | LR.Op_delete _ | LR.Op_replace _ | LR.Op_patch _
  | LR.Op_header _ | LR.Op_format _ | LR.Op_image _ | LR.Op_version_batch _ ->
      failwith "Txnmgr.undo_op: physical op in an undoable record"

(* Walk the transaction's log chain newest-first, undoing every update. *)
let rollback_chain eng txn ~from_lsn =
  let rec go lsn =
    if Int64.compare lsn LR.nil_lsn > 0 then
      match Imdb_wal.Wal.read_at eng.E.wal lsn with
      | LR.Update { prev_lsn; op; _ } ->
          undo_op eng txn ~op;
          if eng.E.in_recovery then
            Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.recovery_undo;
          go prev_lsn
      | LR.Begin _ -> ()
      | LR.Clr _ | LR.Redo_only _ | LR.Commit _ | LR.Abort _ | LR.End _
      | LR.Checkpoint _ ->
          () (* chain heads only link Begin/Update records *)
  in
  go from_lsn

let abort eng txn =
  (match txn.E.tx_state with
  | E.Finished -> raise E.Txn_finished
  | E.Running | E.Rolling_back -> ());
  Imdb_obs.Tracer.with_span eng.E.tracer "txn.abort"
    ~attrs:[ ("tid", Tid.to_string txn.E.tx_tid) ]
  @@ fun _ ->
  txn.E.tx_state <- E.Rolling_back;
  if txn.E.tx_begun then begin
    ignore (Imdb_wal.Wal.append eng.E.wal (LR.Abort { tid = txn.E.tx_tid }));
    rollback_chain eng txn ~from_lsn:txn.E.tx_last_lsn;
    ignore (Imdb_wal.Wal.append eng.E.wal (LR.End { tid = txn.E.tx_tid }))
  end;
  Imdb_tstamp.Vtt.abort (E.vtt eng) txn.E.tx_tid;
  Imdb_tstamp.Vtt.drop (E.vtt eng) txn.E.tx_tid;
  Imdb_obs.Metrics.incr eng.E.metrics Imdb_obs.Metrics.txn_aborts;
  release eng txn;
  E.fold_txn_stats eng txn ~committed:false ()

(* Recovery entry point: roll back a loser transaction found in the log.
   Synthesizes a transaction handle around the recovered chain head. *)
let rollback_loser eng ~tid ~last_lsn =
  let txn =
    {
      E.tx_tid = tid;
      tx_isolation = E.Serializable;
      tx_snapshot = Ts.zero;
      tx_session = 0;
      tx_state = E.Rolling_back;
      tx_begun = true;
      tx_last_lsn = last_lsn;
      tx_writes = [];
      tx_write_set = Hashtbl.create 1;
      tx_wrote_immortal = false;
      tx_commit_ts = None;
      tx_durable = false;
      tx_rows_read = 0;
      tx_rows_written = 0;
      tx_lock_waits = 0;
      tx_lock_wait_us = 0;
    }
  in
  rollback_chain eng txn ~from_lsn:last_lsn;
  ignore (Imdb_wal.Wal.append eng.E.wal (LR.End { tid }))
