(** The engine clock: issues commit timestamps that are unique and
    strictly increasing, hence consistent with serialization order.

    Two modes behind one interface: [Wall] quantizes the OS clock to the
    paper's 20 ms resolution and extends it with the sequence number;
    [Logical] is advanced explicitly by tests and benchmarks so whole
    experiments are reproducible bit for bit. *)

type t

val create_logical : ?start:int64 -> unit -> t
(** A deterministic clock starting at [start] ms (default 10^12). *)

val create_wall : unit -> t

val now : t -> int64
(** Current quantized time in ms. *)

val advance : t -> int64 -> unit
(** Move a logical clock forward by the given ms.
    @raise Invalid_argument on a wall clock. *)

val next_commit_timestamp : t -> Timestamp.t
(** Issue the next commit timestamp: a fresh quantum gets sequence number
    0; within a quantum the sequence number increments.  Monotonic even
    if the wall clock steps backward. *)

val observe : t -> Timestamp.t -> unit
(** Raise the issue floor to at least [ts] — used by recovery so that no
    commit timestamp ever repeats across restarts. *)

val last_issued : t -> Timestamp.t
(** The largest timestamp issued (or observed) so far; doubles as the
    snapshot time for new snapshot-isolation transactions. *)
