(** A fixed pool of worker domains for fanning indexed tasks out of the
    coordinating domain.

    The pool exists for the parallel temporal read path: the coordinator
    (the domain that owns the engine) partitions a scan into independent
    tasks, the workers execute them against immutable data only (the
    histcache, never the buffer pool), and the coordinator joins the
    results.  One job runs at a time — [run] is not reentrant — which
    matches the engine's single-writer discipline: parallelism lives
    {e inside} one operation, never across operations. *)

type t

val create : workers:int -> t
(** Spawn [workers] domains (>= 0).  [workers = 0] makes [run] execute
    inline on the caller — the degenerate serial pool. *)

val workers : t -> int

val run : t -> (int -> 'a) -> int -> 'a array
(** [run t f n] evaluates [f 0 .. f (n-1)] across the workers plus the
    calling domain and returns the results in index order.  Tasks are
    claimed by atomic fetch-and-add, so scheduling is work-stealing-free
    but naturally load-balanced.  If any task raises, the first exception
    (in completion order) is re-raised on the caller after all tasks
    finish.  Must be called from one domain at a time. *)

val shutdown : t -> unit
(** Stop and join every worker.  Idempotent; [run] after [shutdown] is a
    programming error (raises [Invalid_argument]). *)
