lib/clock/clock.ml: Int64 Timestamp Unix
