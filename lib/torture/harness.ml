(* The torture harness: a seed-driven workload generator, a crash
   scheduler aimed at the engine's most delicate write paths, and a
   verification loop that checks every answer the engine can give against
   the linearized oracle in {!Model}.

   Everything derives from the seed: the workload PRNG, the crash
   schedule (seed lxor a salt), each crash point's private countdown
   (seed mixed with the point's position).  The clock is logical and
   ticks a fixed quantum per transaction.  No wall time, no OS
   randomness: a failure replays from the printed seed alone. *)

module Ts = Imdb_clock.Timestamp
module Clock = Imdb_clock.Clock
module Rng = Imdb_util.Rng
module Mx = Imdb_obs.Metrics
module Disk = Imdb_storage.Disk
module Page = Imdb_storage.Page
module Wal = Imdb_wal.Wal
module E = Imdb_core.Engine
module Db = Imdb_core.Db

exception Torture_failure of string

type crash_kind =
  | Crash_wal_tail
  | Crash_data_write
  | Crash_history_write
  | Crash_meta_write
  | Crash_recovery
  | Crash_buffer_write

let crash_kind_name = function
  | Crash_wal_tail -> "wal-tail"
  | Crash_data_write -> "data-write"
  | Crash_history_write -> "history-write"
  | Crash_meta_write -> "meta-write"
  | Crash_recovery -> "recovery"
  | Crash_buffer_write -> "buffer-write"

let all_crash_kinds =
  [
    Crash_wal_tail;
    Crash_data_write;
    Crash_history_write;
    Crash_meta_write;
    Crash_recovery;
    Crash_buffer_write;
  ]

let kind_index k =
  let rec go i = function
    | [] -> 0
    | k' :: rest -> if k' = k then i else go (i + 1) rest
  in
  go 0 all_crash_kinds

type crash_point = { cp_commit : int; cp_kind : crash_kind; cp_torn : bool }
type sabotage = Skew_stamp of int | Drop_write of int

type config = {
  seed : int;
  ops : int;
  crashes : int;
  tables : int;
  keys_per_table : int;
  page_size : int;
  pool_capacity : int;
  group_commit_window : int;
  auto_checkpoint_every : int;
  history_compression : bool;
  verify_every : int;
  verify_limit : int;
  bulk : bool;
  sessions : int;
  sabotage : sabotage option;
  schedule : crash_point list option;
  log : (string -> unit) option;
  flight_dir : string option;
}

let default =
  {
    seed = 1;
    ops = 10_000;
    crashes = 60;
    tables = 2;
    keys_per_table = 48;
    page_size = 1024;
    pool_capacity = 12;
    group_commit_window = 4;
    auto_checkpoint_every = 40;
    history_compression = true;
    verify_every = 0;
    verify_limit = 0;
    bulk = false;
    sessions = 1;
    sabotage = None;
    schedule = None;
    log = None;
    flight_dir = None;
  }

(* The crash schedule: [crashes] points spread over the expected commit
   count (ops / mean txn size, minus aborts), kinds cycling through a
   per-block shuffle of all five so every kind appears once in every
   window of five crashes. *)
let schedule_of cfg =
  match cfg.schedule with
  | Some s -> s
  | None ->
      let rng = Rng.create (cfg.seed lxor 0x5EED) in
      let expected_commits = max 20 (cfg.ops * 2 / 5) in
      let n = cfg.crashes in
      if n <= 0 then []
      else begin
        let gap = max 4 (expected_commits / (n + 1)) in
        let kinds = Array.of_list all_crash_kinds in
        let block = Array.copy kinds in
        let out = ref [] in
        let at = ref 0 in
        for i = 0 to n - 1 do
          if i mod Array.length kinds = 0 then Rng.shuffle rng block;
          let kind = block.(i mod Array.length kinds) in
          at := !at + max 2 ((gap / 2) + Rng.int rng (max 1 gap));
          let torn = (match kind with Crash_wal_tail -> false | _ -> Rng.bool rng) in
          out := { cp_commit = !at; cp_kind = kind; cp_torn = torn } :: !out
        done;
        List.rev !out
      end

type report = {
  r_seed : int;
  r_ops : int;
  r_commits : int;
  r_aborts : int;
  r_crashes : int;
  r_crash_kinds : (string * int) list;
  r_torn : int;
  r_recoveries : int;
  r_double_recoveries : int;
  r_lost_commits : int;
  r_asof_checks : int;
  r_boundary_checks : int;
  r_history_checks : int;
  r_spot_checks : int;
  r_time_splits : int;
  r_checkpoints : int;
  r_torn_rebuilt : int;
}

type failure = {
  f_seed : int;
  f_op : int;
  f_commits : int;
  f_msg : string;
  f_trace : string list;
}

type outcome = Passed of report | Failed of failure

(* The immediate predecessor of [ts] in the (ttime, sn) lattice: the
   last instant at which a commit stamped [ts] must NOT yet be visible. *)
let just_before ts =
  let sn = Ts.sn ts in
  if sn > 0 then Ts.make ~ttime:(Ts.ttime ts) ~sn:(sn - 1)
  else Ts.make ~ttime:(Int64.sub (Ts.ttime ts) 1L) ~sn:0xFFFFFFFF

let torture_schema =
  Imdb_core.Schema.make
    [
      { Imdb_core.Schema.col_name = "k"; col_type = Imdb_core.Schema.T_string };
      { Imdb_core.Schema.col_name = "v"; col_type = Imdb_core.Schema.T_string };
    ]

let short v = if String.length v > 16 then String.sub v 0 16 ^ "..." else v

let run cfg =
  let rng = Rng.create cfg.seed in
  let clock = Clock.create_logical () in
  let plan = Disk.never_fail () in
  let disk = Disk.failing ~plan (Disk.in_memory ~page_size:cfg.page_size ()) in
  let log_device = Wal.Device.in_memory () in
  let metrics = Mx.create () in
  let econfig =
    {
      E.default_config with
      E.page_size = cfg.page_size;
      pool_capacity = cfg.pool_capacity;
      group_commit_window = cfg.group_commit_window;
      auto_checkpoint_every = cfg.auto_checkpoint_every;
      history_compression = cfg.history_compression;
      (* multi-session runs park on lock conflicts instead of failing
         fast (table intent locks meet even on partitioned keys) *)
      lock_wait_timeout_ms = (if cfg.sessions > 1 then 2_000 else 0);
      flight_recorder_dir = cfg.flight_dir;
      (* a flight report with an empty ring is a black box with no tape:
         when recording is requested, run the monitor too *)
      monitor_interval_ms = (if cfg.flight_dir <> None then 100 else 0);
    }
  in
  let table_names = List.init cfg.tables (Printf.sprintf "t%d") in
  let key_name k = Printf.sprintf "k%03d" k in
  let reopen () = Db.open_devices ~metrics ~config:econfig ~clock ~disk ~log_device () in

  (* ---- mutable run state -------------------------------------------- *)
  let model = Model.create ~tables:table_names in
  let db = ref (reopen ()) in
  List.iter
    (fun name -> Db.create_table !db ~name ~mode:Db.Immortal ~schema:torture_schema)
    table_names;
  Db.checkpoint !db;

  let ops_done = ref 0 in
  let commits = ref 0 in
  let commit_seq = ref 0 in
  let aborts = ref 0 in
  let crashes = ref 0 in
  let torn = ref 0 in
  let recoveries = ref 0 in
  let double_recoveries = ref 0 in
  let lost_commits = ref 0 in
  let asof_checks = ref 0 in
  let boundary_checks = ref 0 in
  let history_checks = ref 0 in
  let spot_checks = ref 0 in
  let kind_fired = List.map (fun k -> (k, ref 0)) all_crash_kinds in

  (* commits whose durability we have not yet observed: (ts, txn, writes).
     The writes are the transaction's actual writes (pre-sabotage), kept
     so a crash can probe the recovered engine for the commit's fate. *)
  let watch : (Ts.t * E.txn * Model.write list) list ref = ref [] in
  (* the transaction a crash may interrupt, with the writes it applied *)
  let inflight : (E.txn * Model.write list) option ref = ref None in

  (* ---- trace ring --------------------------------------------------- *)
  let trace_cap = 64 in
  let trace = Array.make trace_cap "" in
  let trace_n = ref 0 in
  let act fmt =
    Printf.ksprintf
      (fun s ->
        (match cfg.log with Some f -> f s | None -> ());
        trace.(!trace_n mod trace_cap) <- s;
        incr trace_n)
      fmt
  in
  let trace_list () =
    let n = !trace_n in
    let start = max 0 (n - trace_cap) in
    List.init (n - start) (fun i -> trace.((start + i) mod trace_cap))
  in
  let fail fmt = Printf.ksprintf (fun s -> raise (Torture_failure s)) fmt in

  (* ---- oracle plumbing ---------------------------------------------- *)
  (* Record a commit in the model, applying any configured sabotage: the
     self-test switch that makes the oracle deliberately wrong so a
     passing detector can be shown to fail. *)
  let record_commit ~ts writes =
    incr commit_seq;
    incr commits;
    let ts, writes =
      match cfg.sabotage with
      | Some (Skew_stamp n) when n > 0 && !commit_seq mod n = 0 -> (just_before ts, writes)
      | Some (Drop_write n) when n > 0 && !commit_seq mod n = 0 && writes <> [] ->
          (ts, List.tl writes)
      | _ -> (ts, writes)
    in
    Model.record model ~ts ~tag:!ops_done writes
  in

  let tick () = Clock.advance clock 20L in

  let scan_now table =
    let out = ref [] in
    Db.exec !db (fun txn -> Db.scan !db txn ~table (fun k v -> out := (k, v) :: !out));
    List.rev !out
  in
  let scan_at table ts =
    let out = ref [] in
    Db.exec !db (fun txn ->
        Db.scan_as_of !db txn ~table ~ts (fun k v -> out := (k, v) :: !out));
    List.rev !out
  in
  let get_at table key ts = Db.as_of !db ts (fun txn -> Db.get !db txn ~table ~key) in

  let compare_states ~what ~table want got =
    if want <> got then begin
      let rec first a b =
        match (a, b) with
        | [], [] -> "?"
        | (k, v) :: _, [] -> Printf.sprintf "engine missing %s=%s" k (short v)
        | [], (k, v) :: _ -> Printf.sprintf "engine has extra %s=%s" k (short v)
        | (k1, v1) :: ta, (k2, v2) :: tb ->
            if k1 = k2 && v1 = v2 then first ta tb
            else if k1 = k2 then Printf.sprintf "%s: model=%s engine=%s" k1 (short v1) (short v2)
            else if k1 < k2 then Printf.sprintf "engine missing %s=%s" k1 (short v1)
            else Printf.sprintf "engine has extra %s=%s" k2 (short v2)
      in
      fail "%s: table %s: model has %d rows, engine %d; first diff: %s" what table
        (List.length want) (List.length got) (first want got)
    end
  in

  (* Full verification: current state, the state as of EVERY commit
     timestamp (subject to [verify_limit]), boundary states just below
     commit timestamps, and every key's version history. *)
  let verify_full ~label () =
    List.iter
      (fun table ->
        compare_states ~what:(label ^ ": current state") ~table
          (Model.current_state model ~table)
          (scan_now table);
        let n = Model.commit_count model in
        if n > 0 then begin
          let dense_from, stride =
            if cfg.verify_limit <= 0 || n <= cfg.verify_limit then (0, 1)
            else
              (n - (cfg.verify_limit / 2), max 2 (n / max 1 (cfg.verify_limit / 2)))
          in
          let idx = ref (-1) in
          let prev = ref [] in
          Model.iter_states model ~table ~f:(fun ~ts ~tag ~state ->
              incr idx;
              if !idx >= dense_from || !idx mod stride = 0 then begin
                compare_states
                  ~what:
                    (Printf.sprintf "%s: AS OF %s (commit #%d, op %d)" label (Ts.to_string ts)
                       !idx tag)
                  ~table state (scan_at table ts);
                incr asof_checks;
                (* just below the commit timestamp the commit must be
                   invisible: catches stamps leaking backward in time *)
                if !idx land 3 = 0 then begin
                  compare_states
                    ~what:
                      (Printf.sprintf "%s: AS OF just below %s (commit #%d)" label
                         (Ts.to_string ts) !idx)
                    ~table !prev
                    (scan_at table (just_before ts));
                  incr boundary_checks
                end
              end;
              prev := state)
        end;
        let want_h = Model.histories model ~table in
        for k = 0 to cfg.keys_per_table - 1 do
          let key = key_name k in
          let want = Option.value (Hashtbl.find_opt want_h key) ~default:[] in
          let got = Db.exec !db (fun txn -> Db.history !db txn ~table ~key) in
          let equal =
            List.length want = List.length got
            && List.for_all2
                 (fun (t1, v1) (t2, v2) -> Ts.compare t1 t2 = 0 && v1 = v2)
                 want got
          in
          if not equal then
            fail "%s: history of %s/%s: model has %d versions, engine %d" label table key
              (List.length want) (List.length got);
          incr history_checks
        done)
      table_names
  in

  (* ---- workload ----------------------------------------------------- *)
  let gen_value () =
    Printf.sprintf "v%d.%d|%s" !commit_seq !ops_done (String.make (Rng.int rng 64) 'x')
  in

  (* One transaction: 1..4 writes on distinct keys, chosen to be valid
     against the oracle's current state (insert absent keys, update or
     delete present ones), with read-your-writes checks inline.  About
     one in twelve deliberately aborts. *)
  let txn_step ?size ?(no_abort = false) () =
    let budget = cfg.ops - !ops_done in
    if budget > 0 then begin
      let size =
        match size with Some s -> min s budget | None -> min (1 + Rng.int rng 4) budget
      in
      tick ();
      let txn = Db.begin_txn !db in
      inflight := Some (txn, []);
      let writes = ref [] in
      let overlay : (string * string, string option) Hashtbl.t = Hashtbl.create 8 in
      let donec = ref 0 in
      let attempts = ref 0 in
      while !donec < size && !attempts < size * 4 do
        incr attempts;
        let table = List.nth table_names (Rng.int rng cfg.tables) in
        let key = key_name (Rng.int rng cfg.keys_per_table) in
        if not (Hashtbl.mem overlay (table, key)) then begin
          let live = Model.mem model ~table ~key in
          let value = gen_value () in
          let w =
            if live then
              match Rng.int rng 100 with
              | d when d < 55 ->
                  Db.update !db txn ~table ~key ~payload:value;
                  { Model.w_table = table; w_key = key; w_value = Some value }
              | d when d < 80 ->
                  Db.delete !db txn ~table ~key;
                  { Model.w_table = table; w_key = key; w_value = None }
              | _ ->
                  Db.upsert !db txn ~table ~key ~payload:value;
                  { Model.w_table = table; w_key = key; w_value = Some value }
            else if Rng.int rng 100 < 70 then begin
              Db.insert !db txn ~table ~key ~payload:value;
              { Model.w_table = table; w_key = key; w_value = Some value }
            end
            else begin
              Db.upsert !db txn ~table ~key ~payload:value;
              { Model.w_table = table; w_key = key; w_value = Some value }
            end
          in
          Hashtbl.replace overlay (table, key) w.Model.w_value;
          writes := w :: !writes;
          inflight := Some (txn, List.rev !writes);
          incr donec;
          incr ops_done;
          if Rng.int rng 3 = 0 then begin
            (* read check: own writes shadow the committed state *)
            let rk = key_name (Rng.int rng cfg.keys_per_table) in
            let expect =
              match Hashtbl.find_opt overlay (table, rk) with
              | Some v -> v
              | None -> Model.value_of model ~table ~key:rk
            in
            let got = Db.get !db txn ~table ~key:rk in
            if got <> expect then
              fail "op %d: read of %s/%s inside txn: model=%s engine=%s" !ops_done table rk
                (Option.fold ~none:"-" ~some:short expect)
                (Option.fold ~none:"-" ~some:short got)
          end
        end
      done;
      if !writes = [] then begin
        Db.abort !db txn;
        inflight := None
      end
      else if (not no_abort) && Rng.int rng 12 = 0 then begin
        Db.abort !db txn;
        incr aborts;
        inflight := None;
        act "op %d: abort (%d writes rolled back)" !ops_done (List.length !writes)
      end
      else begin
        match Db.commit !db txn with
        | Some ts ->
            inflight := None;
            record_commit ~ts (List.rev !writes);
            watch :=
              (ts, txn, List.rev !writes)
              :: List.filter (fun (_, t, _) -> not t.E.tx_durable) !watch;
            act "op %d: commit ts=%s (%d writes)" !ops_done (Ts.to_string ts)
              (List.length !writes)
        | None -> fail "op %d: commit of a writing transaction returned no timestamp" !ops_done
      end
    end
  in

  (* A bulk-insert transaction: 16–48 upserts on distinct keys in one
     transaction.  Deliberately shaped like `imdb load` batches — fills
     the ingest buffer fast enough to force mid-transaction flushes, so
     crashes land on half-flushed buffers. *)
  let bulk_step () =
    let budget = cfg.ops - !ops_done in
    if budget > 0 then begin
      let size = min (16 + Rng.int rng 33) budget in
      tick ();
      let txn = Db.begin_txn !db in
      inflight := Some (txn, []);
      let writes = ref [] in
      let seen = Hashtbl.create 16 in
      let donec = ref 0 in
      let attempts = ref 0 in
      while !donec < size && !attempts < size * 4 do
        incr attempts;
        let table = List.nth table_names (Rng.int rng cfg.tables) in
        let key = key_name (Rng.int rng cfg.keys_per_table) in
        if not (Hashtbl.mem seen (table, key)) then begin
          Hashtbl.replace seen (table, key) ();
          let value = gen_value () in
          Db.upsert !db txn ~table ~key ~payload:value;
          writes := { Model.w_table = table; w_key = key; w_value = Some value } :: !writes;
          inflight := Some (txn, List.rev !writes);
          incr donec;
          incr ops_done
        end
      done;
      if !writes = [] then begin
        Db.abort !db txn;
        inflight := None
      end
      else begin
        match Db.commit !db txn with
        | Some ts ->
            inflight := None;
            record_commit ~ts (List.rev !writes);
            watch :=
              (ts, txn, List.rev !writes)
              :: List.filter (fun (_, t, _) -> not t.E.tx_durable) !watch;
            act "op %d: bulk commit ts=%s (%d upserts)" !ops_done (Ts.to_string ts)
              (List.length !writes)
        | None ->
            fail "op %d: bulk commit of a writing transaction returned no timestamp"
              !ops_done
      end
    end
  in

  let spot_check () =
    let n = Model.commit_count model in
    if n > 0 then begin
      let i = Rng.int rng n in
      let c = List.nth (Model.commits model) i in
      let table = List.nth table_names (Rng.int rng cfg.tables) in
      compare_states
        ~what:(Printf.sprintf "spot check AS OF %s (commit #%d)" (Ts.to_string c.Model.c_ts) i)
        ~table
        (Model.state_at model ~table c.Model.c_ts)
        (scan_at table c.Model.c_ts);
      incr spot_checks
    end
  in

  (* ---- crashes ------------------------------------------------------ *)
  (* Settle the fate of an unacknowledged commit after a crash: probe its
     first write at its exact timestamp.  The write targets a key whose
     prior state the oracle knows (values are unique per op), so presence
     of the written value — or absence, for a delete of a key live before
     the commit — proves the commit was recovered. *)
  let survived_probe ts = function
    | [] -> (false, "commit had no writes to probe")
    | w :: _ ->
        let got = get_at w.Model.w_table w.Model.w_key ts in
        ( got = w.Model.w_value,
          Printf.sprintf "probe %s/%s AS OF %s: want=%s got=%s" w.Model.w_table
            w.Model.w_key (Ts.to_string ts)
            (Option.fold ~none:"<absent>" ~some:short w.Model.w_value)
            (Option.fold ~none:"<absent>" ~some:short got) )
  in
  let point_rng cp =
    Rng.create ((cfg.seed * 1_000_003) lxor (cp.cp_commit * 7919) lxor kind_index cp.cp_kind)
  in

  let sched = ref (schedule_of cfg) in
  let armed : (crash_point * int) option ref = ref None in
  let meta_force = ref false in

  (* The crash proper.  Durability semantics: an {e acknowledged} commit
     MUST survive; an {e unacknowledged} one MAY — its log record can
     reach the device before the group-commit ack that would have set
     [tx_durable] (the flush race).  So the harness cannot decide the
     fate of the unacknowledged tail a priori.  It crashes, recovers
     (twice, for Crash_recovery), then probes the engine for each at-risk
     commit oldest-first with an exact-timestamp AS OF point read; the
     survivors must form a log prefix, and the oracle is truncated at the
     first commit recovery actually lost.  Then everything is verified. *)
  let do_crash cp =
    incr crashes;
    incr (List.assq cp.cp_kind kind_fired);
    if cp.cp_torn then incr torn;
    Disk.lift plan;
    let inflight_entry =
      match !inflight with
      | Some (txn, writes) -> (
          match txn.E.tx_commit_ts with Some ts -> Some (ts, txn, writes) | None -> None)
      | None -> None
    in
    let entries =
      !watch
      @ (match inflight_entry with Some (ts, txn, ws) -> [ (ts, txn, ws) ] | None -> [])
    in
    let durable, casualties = List.partition (fun (_, t, _) -> t.E.tx_durable) entries in
    let casualties =
      List.sort (fun (a, _, _) (b, _, _) -> Ts.compare a b) casualties
    in
    (match casualties with
    | [] -> ()
    | (min_cas, _, _) :: _ ->
        List.iter
          (fun (dts, _, _) ->
            if Ts.compare dts min_cas > 0 then
              fail
                "crash: acknowledged commit %s is newer than unacknowledged commit %s — \
                 acknowledgments are not a log prefix"
                (Ts.to_string dts) (Ts.to_string min_cas))
          durable;
        act "crash: %d unacknowledged commits in the balance (oldest %s)"
          (List.length casualties) (Ts.to_string min_cas));
    let adopt_inflight =
      match inflight_entry with Some (ts, txn, _) -> Some (ts, txn.E.tx_durable) | None -> None
    in
    inflight := None;
    watch := [];
    (* pull the plug: volatile state evaporates, the devices persist *)
    Wal.crash_volatile (Db.engine !db).E.wal;
    Imdb_buffer.Buffer_pool.drop_all (Db.engine !db).E.pool;
    let new_db =
      if cp.cp_kind = Crash_recovery then begin
        (* a short fuse: recovery's data-page traffic is only the scrub
           rebuilds plus the final checkpoint sweep, so the armed failure
           must land within its first few writes to hit recovery at all *)
        let prng = point_rng cp in
        Disk.arm plan ~tear:cp.cp_torn ~after:(Rng.int prng 3) ();
        match reopen () with
        | db2 ->
            Disk.lift plan;
            act "crash: recovery finished before its armed failure";
            db2
        | exception Disk.Io_failure _ ->
            Disk.lift plan;
            incr double_recoveries;
            act "crash: recovery itself crashed; recovering again";
            reopen ()
      end
      else reopen ()
    in
    db := new_db;
    incr recoveries;
    if Wal.pending_commits (Db.engine !db).E.wal <> 0 then
      fail "crash: recovery left group-commit acknowledgments pending";
    (* Settle the fate of the unacknowledged tail, oldest first. *)
    let rec settle = function
      | [] -> ()
      | (ts, _txn, writes) :: rest ->
          let survived, detail = survived_probe ts writes in
          if survived then begin
            (match adopt_inflight with
            | Some (its, _) when Ts.equal its ts ->
                (* the commit the crash interrupted: never recorded *)
                record_commit ~ts writes;
                act "crash: in-flight commit ts=%s survived the flush race; adopted"
                  (Ts.to_string ts)
            | _ ->
                act "crash: unacknowledged commit ts=%s survived the flush race (%s)"
                  (Ts.to_string ts) detail);
            settle rest
          end
          else begin
            (* first loss: everything newer must be gone too (log prefix) *)
            let lost = Model.truncate_after model (just_before ts) in
            lost_commits := !lost_commits + lost;
            act "crash: %d commits lost (oldest %s, %d at-risk survived; %s)" lost
              (Ts.to_string ts)
              (List.length casualties - List.length rest - 1)
              detail
          end
    in
    (* A durable (acknowledged) in-flight commit implies an empty casualty
       list: group commit acknowledges in log order, so everything older
       was acknowledged first.  A non-durable one is simply the newest
       casualty and is settled by the probe like any other. *)
    (match (casualties, adopt_inflight) with
    | [], Some (ts, true) -> (
        match inflight_entry with
        | Some (_, _, writes) ->
            record_commit ~ts writes;
            act "crash: in-flight commit ts=%s already acknowledged; adopted"
              (Ts.to_string ts)
        | None -> ())
    | _ -> settle casualties);
    act "crash #%d (%s%s): recovered; model has %d commits" !crashes
      (crash_kind_name cp.cp_kind)
      (if cp.cp_torn then ", torn page" else "")
      (Model.commit_count model);
    verify_full ~label:(Printf.sprintf "post-recovery #%d" !crashes) ()
  in

  let initiate cp =
    match cp.cp_kind with
    | Crash_wal_tail ->
        (* build up a pending group-commit batch, then pull the plug *)
        let tries = ref 0 in
        while
          Wal.pending_commits (Db.engine !db).E.wal = 0
          && !tries < (2 * cfg.group_commit_window) + 2
          && !ops_done < cfg.ops
        do
          incr tries;
          txn_step ~size:1 ~no_abort:true ()
        done;
        act "crash point: wal-tail with %d commits pending"
          (Wal.pending_commits (Db.engine !db).E.wal);
        do_crash cp
    | Crash_recovery -> do_crash cp
    | Crash_data_write ->
        let prng = point_rng cp in
        Disk.arm plan ~tear:cp.cp_torn
          ~target:(Disk.Writes_of_type [ Page.P_data ])
          ~after:(Rng.int prng 25) ();
        armed := Some (cp, !commits);
        act "crash point armed: data-write%s" (if cp.cp_torn then " (torn)" else "")
    | Crash_history_write ->
        Disk.arm plan ~tear:cp.cp_torn
          ~target:(Disk.Writes_of_type [ Page.P_history; Page.P_history_compressed ])
          ~after:0 ();
        armed := Some (cp, !commits);
        act "crash point armed: history-write%s (mid-time-split)"
          (if cp.cp_torn then " (torn)" else "")
    | Crash_meta_write ->
        Disk.arm plan ~tear:cp.cp_torn
          ~target:(Disk.Writes_to_page Imdb_storage.Page.no_page)
          ~after:0 ();
        meta_force := true;
        armed := Some (cp, !commits);
        act "crash point armed: meta-write%s (mid-checkpoint)"
          (if cp.cp_torn then " (torn)" else "")
    | Crash_buffer_write ->
        Disk.arm plan ~tear:cp.cp_torn
          ~target:(Disk.Writes_of_type [ Page.P_msg_buffer ])
          ~after:0 ();
        armed := Some (cp, !commits);
        act "crash point armed: buffer-write%s (ingest buffer page)"
          (if cp.cp_torn then " (torn)" else "")
  in

  let on_io_failure () =
    match !armed with
    | Some (cp, _) ->
        armed := None;
        meta_force := false;
        do_crash cp
    | None -> fail "unexpected injected I/O failure with no armed crash point"
  in

  (* ---- main loop ---------------------------------------------------- *)
  let last_verified = ref 0 in
  let passed () =
    Passed
      {
        r_seed = cfg.seed;
        r_ops = !ops_done;
        r_commits = !commits;
        r_aborts = !aborts;
        r_crashes = !crashes;
        r_crash_kinds = List.map (fun (k, c) -> (crash_kind_name k, !c)) kind_fired;
        r_torn = !torn;
        r_recoveries = !recoveries;
        r_double_recoveries = !double_recoveries;
        r_lost_commits = !lost_commits;
        r_asof_checks = !asof_checks;
        r_boundary_checks = !boundary_checks;
        r_history_checks = !history_checks;
        r_spot_checks = !spot_checks;
        r_time_splits = Mx.get metrics Mx.time_splits;
        r_checkpoints = Mx.get metrics Mx.checkpoints;
        r_torn_rebuilt = Mx.get metrics Mx.recovery_torn_pages;
      }
  in
  let failed msg =
    (* flight recorder: dump the engine's last-known state next to the
       failure (best effort — the handle may be mid-crash) *)
    (if cfg.flight_dir <> None then
       try
         match Db.write_flight_report !db ~reason:"torture" with
         | Some path -> act "flight report written: %s" path
         | None -> ()
       with _ -> ());
    Failed
      {
        f_seed = cfg.seed;
        f_op = !ops_done;
        f_commits = !commits;
        f_msg = msg;
        f_trace = trace_list ();
      }
  in
  (* ---- serial driver: the classic one-session loop ------------------ *)
  let serial_main () =
     while !ops_done < cfg.ops do
       (match (!armed, !sched) with
       | None, cp :: rest when !commits >= cp.cp_commit ->
           sched := rest;
           (try initiate cp with Disk.Io_failure _ -> on_io_failure ())
       | _ -> ());
       (match !armed with
       | Some (cp, since) when !commits - since > 300 ->
           (* the aimed-at write never happened; degrade to a plain crash *)
           Disk.lift plan;
           armed := None;
           meta_force := false;
           act "crash point (%s) did not fire within 300 commits; pulling the plug"
             (crash_kind_name cp.cp_kind);
           do_crash { cp with cp_kind = Crash_wal_tail; cp_torn = false }
       | _ -> ());
       if !meta_force then begin
         (* a checkpoint writes the meta page; make the armed plan fire *)
         meta_force := false;
         tick ();
         try Db.checkpoint !db with Disk.Io_failure _ -> on_io_failure ()
       end;
       (try
          let dice = Rng.int rng 100 in
          if dice < 2 then begin
            tick ();
            Db.checkpoint !db;
            act "op %d: checkpoint" !ops_done
          end
          else if dice < 3 then begin
            tick ();
            match Db.vacuum !db with
            | n -> act "op %d: vacuum removed %d PTT entries" !ops_done n
            | exception Db.Vacuum_blocked _ -> ()
          end
          else if dice < 9 then spot_check ()
          else if cfg.bulk && dice < 16 then bulk_step ()
          else txn_step ()
        with Disk.Io_failure _ -> on_io_failure ());
       if
         cfg.verify_every > 0
         && !commits - !last_verified >= cfg.verify_every
         && !armed = None
       then begin
         last_verified := !commits;
         verify_full ~label:(Printf.sprintf "periodic @%d commits" !commits) ()
       end
     done;
     Disk.lift plan;
     verify_full ~label:"final" ()
  in

  (* ---- concurrent driver: [cfg.sessions] domains --------------------- *)
  (* The multi-session mode alternates {e bursts} with serial
     control work.  A burst hands each of N domains its own session and a
     disjoint key partition (session [s] owns keys [k] with
     [k mod N = s]); each runs a private, seed-derived stream of small
     transactions with read-your-writes checks, collecting its commit
     timestamps and writes.  After the join, the merged commits are fed
     to the oracle sorted by timestamp — the engine issues timestamps,
     switches visibility and appends the commit record in one gate
     section, so timestamp order {e is} a serial order consistent with
     what every session observed, and partitioned keys make each
     session's writes valid against it by construction.  Between bursts
     the main domain spot-checks, verifies, and pulls the plug
     wal-tail-style while group-commit acknowledgments are pending; the
     unacknowledged tail is settled by probing, exactly as in the serial
     driver.  The interleaving (and so the report's counters) is not
     deterministic — only the per-session workloads are — but every
     verification failure is still a real engine or oracle bug. *)
  let concurrent_main () =
    let sessions = max 2 (min cfg.sessions (min 8 cfg.keys_per_table)) in
    let burst = ref 0 in
    let last_verified = ref 0 in
    let crash_budget = ref cfg.crashes in
    while !ops_done < cfg.ops do
      incr burst;
      tick ();
      let budget = min (cfg.ops - !ops_done) (sessions * (12 + Rng.int rng 24)) in
      let per_session = max 1 (budget / sessions) in
      (* burst-start liveness views, one per session, read from the
         oracle before any domain spawns: (table, key) -> current value *)
      let views =
        Array.init sessions (fun sid ->
            let live = Hashtbl.create 32 in
            List.iter
              (fun table ->
                for k = 0 to cfg.keys_per_table - 1 do
                  if k mod sessions = sid then
                    match Model.value_of model ~table ~key:(key_name k) with
                    | Some v -> Hashtbl.replace live (table, key_name k) v
                    | None -> ()
                done)
              table_names;
            live)
      in
      let handle = !db in
      let burst_seed = (cfg.seed * 0x9E3779B1) lxor (!burst * 0x85EBCA7) in
      let worker sid =
        let srng = Rng.create ((burst_seed lxor (sid * 0xC2B2AE3)) land 0x3FFFFFFF) in
        let live = views.(sid) in
        let s = Db.session handle in
        let own_per_table = (cfg.keys_per_table - sid + sessions - 1) / sessions in
        let own_key () = key_name (sid + (sessions * Rng.int srng own_per_table)) in
        let committed = ref [] in
        let s_aborts = ref 0 in
        let s_ops = ref 0 in
        while !s_ops < per_session do
          let size = min (1 + Rng.int srng 4) (per_session - !s_ops) in
          let txn = Db.Session.begin_txn s in
          let overlay : (string * string, string option) Hashtbl.t = Hashtbl.create 8 in
          let writes = ref [] in
          let donec = ref 0 in
          let attempts = ref 0 in
          while !donec < size && !attempts < size * 4 do
            incr attempts;
            let table = List.nth table_names (Rng.int srng cfg.tables) in
            let key = own_key () in
            if not (Hashtbl.mem overlay (table, key)) then begin
              let alive = Hashtbl.mem live (table, key) in
              let value =
                Printf.sprintf "s%d.%d.%d|%s" sid !burst !s_ops
                  (String.make (Rng.int srng 48) 'y')
              in
              let w =
                if alive then
                  match Rng.int srng 100 with
                  | d when d < 55 ->
                      Db.Session.update s txn ~table ~key ~payload:value;
                      { Model.w_table = table; w_key = key; w_value = Some value }
                  | d when d < 80 ->
                      Db.Session.delete s txn ~table ~key;
                      { Model.w_table = table; w_key = key; w_value = None }
                  | _ ->
                      Db.Session.upsert s txn ~table ~key ~payload:value;
                      { Model.w_table = table; w_key = key; w_value = Some value }
                else if Rng.int srng 100 < 70 then begin
                  Db.Session.insert s txn ~table ~key ~payload:value;
                  { Model.w_table = table; w_key = key; w_value = Some value }
                end
                else begin
                  Db.Session.upsert s txn ~table ~key ~payload:value;
                  { Model.w_table = table; w_key = key; w_value = Some value }
                end
              in
              Hashtbl.replace overlay (table, key) w.Model.w_value;
              writes := w :: !writes;
              incr donec;
              incr s_ops;
              if Rng.int srng 3 = 0 then begin
                (* read-your-writes inside the partition: the overlay
                   shadows the burst-start state; no other session can
                   have touched these keys *)
                let rk = own_key () in
                let expect =
                  match Hashtbl.find_opt overlay (table, rk) with
                  | Some v -> v
                  | None -> Hashtbl.find_opt live (table, rk)
                in
                let got = Db.Session.get s txn ~table ~key:rk in
                if got <> expect then
                  raise
                    (Torture_failure
                       (Printf.sprintf
                          "session %d: read of %s/%s inside txn: expected %s got %s" sid
                          table rk
                          (Option.fold ~none:"-" ~some:short expect)
                          (Option.fold ~none:"-" ~some:short got)))
              end
            end
          done;
          if !writes = [] then Db.Session.abort s txn
          else if Rng.int srng 12 = 0 then begin
            Db.Session.abort s txn;
            incr s_aborts
          end
          else
            match Db.Session.commit s txn with
            | Some ts ->
                committed := (ts, txn, List.rev !writes) :: !committed;
                List.iter
                  (fun w ->
                    match w.Model.w_value with
                    | Some v -> Hashtbl.replace live (w.Model.w_table, w.Model.w_key) v
                    | None -> Hashtbl.remove live (w.Model.w_table, w.Model.w_key))
                  (List.rev !writes)
            | None ->
                raise
                  (Torture_failure
                     (Printf.sprintf
                        "session %d: commit of a writing transaction returned no \
                         timestamp"
                        sid))
        done;
        (List.rev !committed, !s_aborts, !s_ops)
      in
      let domains =
        Array.init sessions (fun sid -> Domain.spawn (fun () -> worker sid))
      in
      let results = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains in
      Array.iter (function Error e -> raise e | Ok _ -> ()) results;
      let results = Array.map (function Ok r -> r | Error _ -> assert false) results in
      let all =
        List.sort
          (fun (a, _, _) (b, _, _) -> Ts.compare a b)
          (List.concat_map (fun (c, _, _) -> c) (Array.to_list results))
      in
      Array.iter
        (fun (_, a, o) ->
          aborts := !aborts + a;
          ops_done := !ops_done + o)
        results;
      let prev = ref Ts.zero in
      List.iter
        (fun (ts, _, writes) ->
          if Ts.compare ts !prev <= 0 then
            fail "burst %d: commit timestamps not strictly increasing (%s after %s)"
              !burst (Ts.to_string ts) (Ts.to_string !prev);
          prev := ts;
          record_commit ~ts writes)
        all;
      watch :=
        List.filter (fun (_, t, _) -> not t.E.tx_durable) all
        @ List.filter (fun (_, t, _) -> not t.E.tx_durable) !watch;
      act "burst %d: %d sessions committed %d txns (%d pending acks)" !burst sessions
        (List.length all)
        (Wal.pending_commits (Db.engine !db).E.wal);
      (* between bursts: occasionally pull the plug mid-group-commit,
         otherwise spot-check or verify on schedule *)
      if !crash_budget > 0 && Rng.int rng 3 = 0 then begin
        decr crash_budget;
        incr crashes;
        incr (List.assq Crash_wal_tail kind_fired);
        let entries =
          List.sort (fun (a, _, _) (b, _, _) -> Ts.compare a b) !watch
        in
        let durable, casualties =
          List.partition (fun (_, t, _) -> t.E.tx_durable) entries
        in
        (match casualties with
        | [] -> ()
        | (min_cas, _, _) :: _ ->
            List.iter
              (fun (dts, _, _) ->
                if Ts.compare dts min_cas > 0 then
                  fail
                    "crash: acknowledged commit %s is newer than unacknowledged commit \
                     %s — acknowledgments are not a log prefix"
                    (Ts.to_string dts) (Ts.to_string min_cas))
              durable;
            act "crash: %d unacknowledged commits in the balance (oldest %s)"
              (List.length casualties) (Ts.to_string min_cas));
        watch := [];
        Wal.crash_volatile (Db.engine !db).E.wal;
        Imdb_buffer.Buffer_pool.drop_all (Db.engine !db).E.pool;
        db := reopen ();
        incr recoveries;
        if Wal.pending_commits (Db.engine !db).E.wal <> 0 then
          fail "crash: recovery left group-commit acknowledgments pending";
        let rec settle = function
          | [] -> ()
          | (ts, _txn, writes) :: rest ->
              let survived, detail = survived_probe ts writes in
              if survived then begin
                act "crash: unacknowledged commit ts=%s survived the flush race (%s)"
                  (Ts.to_string ts) detail;
                settle rest
              end
              else begin
                let lost = Model.truncate_after model (just_before ts) in
                lost_commits := !lost_commits + lost;
                act "crash: %d commits lost (oldest %s; %s)" lost (Ts.to_string ts)
                  detail
              end
        in
        settle casualties;
        act "crash #%d (wal-tail, %d sessions): recovered; model has %d commits"
          !crashes sessions (Model.commit_count model);
        verify_full ~label:(Printf.sprintf "post-recovery #%d" !crashes) ()
      end
      else if Rng.int rng 3 = 0 then spot_check ();
      if cfg.verify_every > 0 && !commits - !last_verified >= cfg.verify_every then begin
        last_verified := !commits;
        verify_full ~label:(Printf.sprintf "periodic @%d commits" !commits) ()
      end
    done;
    verify_full ~label:"final" ()
  in
  (try
     if cfg.sessions > 1 then concurrent_main () else serial_main ();
     passed ()
   with
  | Torture_failure msg -> failed msg
  | Disk.Io_failure m -> failed ("unhandled injected I/O failure: " ^ m)
  | e -> failed (Printf.sprintf "unexpected exception: %s" (Printexc.to_string e)))

let minimize cfg failure =
  let failing c = match run c with Failed f -> Some f | Passed _ -> None in
  (* 1. truncate the op budget to just past the failing op *)
  let cfg, failure =
    let c = { cfg with ops = min cfg.ops (failure.f_op + 8) } in
    if c.ops < cfg.ops then
      match failing c with Some f -> (c, f) | None -> (cfg, failure)
    else (cfg, failure)
  in
  (* 2. greedily drop crash points, newest first *)
  let sched = ref (schedule_of cfg) in
  let cfg = ref { cfg with schedule = Some !sched } in
  let failure = ref failure in
  let i = ref (List.length !sched - 1) in
  while !i >= 0 do
    let candidate = List.filteri (fun j _ -> j <> !i) !sched in
    let c = { !cfg with schedule = Some candidate } in
    (match failing c with
    | Some f ->
        sched := candidate;
        cfg := c;
        failure := f
    | None -> ());
    decr i
  done;
  (!cfg, !failure)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>torture PASS: seed=%d@,\
     ops=%d commits=%d aborts=%d lost-commits=%d@,\
     crashes=%d (%s) torn=%d recoveries=%d double=%d@,\
     checks: as-of=%d boundary=%d history=%d spot=%d@,\
     engine: time-splits=%d checkpoints=%d torn-pages-rebuilt=%d@]" r.r_seed r.r_ops
    r.r_commits r.r_aborts r.r_lost_commits r.r_crashes
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) r.r_crash_kinds))
    r.r_torn r.r_recoveries r.r_double_recoveries r.r_asof_checks r.r_boundary_checks
    r.r_history_checks r.r_spot_checks r.r_time_splits r.r_checkpoints r.r_torn_rebuilt

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>torture FAIL: seed=%d (replay: torture --replay --seed %d)@,\
     at op %d:@,%s@,recent actions:@,%a@]" f.f_seed f.f_seed f.f_op f.f_msg
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf s ->
         Format.fprintf ppf "  %s" s))
    f.f_trace

let describe_config cfg =
  let sched = schedule_of cfg in
  Printf.sprintf
    "seed=%d ops=%d crashes=%d tables=%dx%d page=%dB pool=%d window=%d ckpt-every=%d \
     compression=%b verify-every=%d verify-limit=%d bulk=%b sessions=%d schedule=[%s]"
    cfg.seed cfg.ops cfg.crashes cfg.tables cfg.keys_per_table cfg.page_size
    cfg.pool_capacity cfg.group_commit_window cfg.auto_checkpoint_every
    cfg.history_compression cfg.verify_every cfg.verify_limit cfg.bulk cfg.sessions
    (String.concat "; "
       (List.map
          (fun cp ->
            Printf.sprintf "@%d %s%s" cp.cp_commit (crash_kind_name cp.cp_kind)
              (if cp.cp_torn then "+torn" else ""))
          sched))
