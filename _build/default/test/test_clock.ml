(* imdb_clock: timestamps, TIDs, clock behavior. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module Clock = Imdb_clock.Clock

let test_timestamp_order () =
  let a = Ts.make ~ttime:100L ~sn:0 in
  let b = Ts.make ~ttime:100L ~sn:1 in
  let c = Ts.make ~ttime:120L ~sn:0 in
  Alcotest.(check bool) "sn orders within quantum" true (Ts.compare a b < 0);
  Alcotest.(check bool) "ttime dominates" true (Ts.compare b c < 0);
  Alcotest.(check bool) "zero below all" true (Ts.compare Ts.zero a < 0);
  Alcotest.(check bool) "infinity above all" true (Ts.compare c Ts.infinity < 0);
  Alcotest.(check bool) "min/max" true
    (Ts.equal (Ts.min a c) a && Ts.equal (Ts.max a c) c)

let test_timestamp_succ () =
  let a = Ts.make ~ttime:100L ~sn:5 in
  Alcotest.(check bool) "succ increments sn" true
    (Ts.equal (Ts.succ a) (Ts.make ~ttime:100L ~sn:6));
  (* sn overflow rolls into the next quantum *)
  let top = Ts.make ~ttime:100L ~sn:0xFFFFFFFF in
  Alcotest.(check bool) "sn overflow" true
    (Ts.equal (Ts.succ top) (Ts.make ~ttime:120L ~sn:0))

let test_timestamp_codec () =
  let b = Bytes.make 16 '\xff' in
  let ts = Ts.make ~ttime:1234567890123L ~sn:98765 in
  Ts.write b 2 ts;
  Alcotest.(check bool) "roundtrip" true (Ts.equal ts (Ts.read b 2))

let prop_timestamp_codec =
  QCheck.Test.make ~name:"timestamp codec roundtrip" ~count:500
    QCheck.(pair (map Int64.of_int (int_bound max_int)) (int_bound 0xFFFFFFFF))
    (fun (ttime, sn) ->
      let ts = Ts.make ~ttime ~sn in
      let b = Bytes.create Ts.on_disk_size in
      Ts.write b 0 ts;
      Ts.equal ts (Ts.read b 0))

let test_datetime_format_parse () =
  (* epoch *)
  let e = Ts.make ~ttime:0L ~sn:0 in
  Alcotest.(check string) "epoch" "1970-01-01 00:00:00.000+0" (Ts.to_string e);
  (* a known instant: 2004-08-12 10:15:20 UTC = 1092305720s *)
  let ts = Ts.of_string "2004-08-12 10:15:20" in
  Alcotest.(check int64) "paper's AS OF datetime" 1092305720000L (Ts.ttime ts);
  (* roundtrip through formatting *)
  let ts2 = Ts.of_string (Ts.to_string ts) in
  Alcotest.(check bool) "format/parse roundtrip" true (Ts.equal ts ts2);
  (* fractional seconds and sequence number *)
  let ts3 = Ts.of_string "2004-08-12 10:15:20.060+7" in
  Alcotest.(check int64) "millis" 1092305720060L (Ts.ttime ts3);
  Alcotest.(check int) "sn" 7 (Ts.sn ts3);
  (* bare date *)
  let ts4 = Ts.of_string "2004-08-12" in
  Alcotest.(check int64) "bare date" 1092268800000L (Ts.ttime ts4);
  (* malformed *)
  (match Ts.of_string "not a date" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected parse failure")

let prop_datetime_roundtrip =
  QCheck.Test.make ~name:"datetime format/parse roundtrip" ~count:300
    (* stay within year ~1970..2200, quantized millis *)
    QCheck.(int_bound 2_000_000_000)
    (fun secs ->
      let ts = Ts.make ~ttime:(Int64.mul (Int64.of_int secs) 1000L) ~sn:0 in
      Ts.equal ts (Ts.of_string (Ts.to_string ts)))

let test_tid_encoding () =
  let tid = Tid.of_int 42 in
  (match Tid.decode_ttime_field (Tid.encode_ttime_field (Tid.Unstamped tid)) with
  | Tid.Unstamped t -> Alcotest.(check bool) "tid roundtrip" true (Tid.equal t tid)
  | Tid.Stamped _ -> Alcotest.fail "lost the TID flag");
  (match Tid.decode_ttime_field (Tid.encode_ttime_field (Tid.Stamped 123456L)) with
  | Tid.Stamped ms -> Alcotest.(check int64) "time roundtrip" 123456L ms
  | Tid.Unstamped _ -> Alcotest.fail "spurious TID flag")

let test_clock_monotonic () =
  let c = Clock.create_logical ~start:1000L () in
  let t1 = Clock.next_commit_timestamp c in
  let t2 = Clock.next_commit_timestamp c in
  Alcotest.(check bool) "same quantum: sn increments" true
    (Ts.ttime t1 = Ts.ttime t2 && Ts.sn t2 = Ts.sn t1 + 1);
  Clock.advance c 20L;
  let t3 = Clock.next_commit_timestamp c in
  Alcotest.(check bool) "new quantum resets sn" true
    (Ts.compare t2 t3 < 0 && Ts.sn t3 = 0);
  (* observe raises the floor (recovery path) *)
  let future = Ts.make ~ttime:(Int64.add (Ts.ttime t3) 1000L) ~sn:5 in
  Clock.observe c future;
  let t4 = Clock.next_commit_timestamp c in
  Alcotest.(check bool) "no repeats after observe" true (Ts.compare future t4 < 0)

let test_clock_quantum () =
  Alcotest.(check int64) "quantize down" 100L (Ts.quantize 119L);
  Alcotest.(check int64) "exact multiple" 120L (Ts.quantize 120L);
  let c = Clock.create_logical ~start:1003L () in
  (* logical clock reports quantized starts *)
  Alcotest.(check int64) "quantized now" 1000L (Clock.now c)

let test_wall_clock () =
  let c = Clock.create_wall () in
  let t1 = Clock.next_commit_timestamp c in
  let t2 = Clock.next_commit_timestamp c in
  Alcotest.(check bool) "wall timestamps increase" true (Ts.compare t1 t2 < 0);
  (match Clock.advance c 1L with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "wall clock must not advance manually")

let suite =
  [
    Alcotest.test_case "timestamp ordering" `Quick test_timestamp_order;
    Alcotest.test_case "timestamp succ" `Quick test_timestamp_succ;
    Alcotest.test_case "timestamp codec" `Quick test_timestamp_codec;
    QCheck_alcotest.to_alcotest prop_timestamp_codec;
    Alcotest.test_case "datetime format/parse" `Quick test_datetime_format_parse;
    QCheck_alcotest.to_alcotest prop_datetime_roundtrip;
    Alcotest.test_case "tid encoding" `Quick test_tid_encoding;
    Alcotest.test_case "clock monotonicity" `Quick test_clock_monotonic;
    Alcotest.test_case "clock quantum" `Quick test_clock_quantum;
    Alcotest.test_case "wall clock" `Quick test_wall_clock;
  ]
