(* Human-readable hex dump of byte ranges, used by the CLI page inspector
   and by test failure output. *)

let pp_line ppf b off len =
  Fmt.pf ppf "%08x  " off;
  for i = 0 to 15 do
    if i = 8 then Fmt.pf ppf " ";
    if i < len then Fmt.pf ppf "%02x " (Char.code (Bytes.get b (off + i)))
    else Fmt.pf ppf "   "
  done;
  Fmt.pf ppf " |";
  for i = 0 to len - 1 do
    let c = Bytes.get b (off + i) in
    Fmt.pf ppf "%c" (if c >= ' ' && c < '\x7f' then c else '.')
  done;
  Fmt.pf ppf "|"

let pp ?(max_bytes = 512) ppf b =
  let n = min (Bytes.length b) max_bytes in
  let off = ref 0 in
  while !off < n do
    let len = min 16 (n - !off) in
    pp_line ppf b !off len;
    Fmt.pf ppf "@.";
    off := !off + 16
  done;
  if Bytes.length b > max_bytes then
    Fmt.pf ppf "... (%d more bytes)@." (Bytes.length b - max_bytes)

let to_string ?max_bytes b = Fmt.str "%a" (pp ?max_bytes) b
