(* Versioned data pages: the paper's Sections 3.1–3.3 in executable form.

   A data page holds record *versions*.  The slot array designates the
   current version of each record (exactly what a conventional scan would
   see); older versions occupy their own slots, are flagged
   [f_non_current], and hang off the current version through the VP field
   of the 14-byte tail, newest to oldest (Fig. 2).  A chain may continue
   into the page's historical page: the last local version carries
   [f_vp_in_history] and its VP names a slot in the page referenced by the
   page header's history pointer.

   This module is pure page-image manipulation: it never logs, allocates,
   or touches the buffer pool.  The engine wraps each operation in the
   appropriate WAL records (version inserts are logged; time splits and
   key splits log the rebuilt page images as redo-only structure
   modifications; timestamp propagation is deliberately not logged). *)

module P = Imdb_storage.Page
module R = Imdb_storage.Record
module Ts = Imdb_clock.Timestamp
module M = Imdb_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Reading versions                                                    *)
(* ------------------------------------------------------------------ *)

(* The slot of the current version of [key], if the page has one.  Delete
   stubs count: a key whose newest version is a stub is currently deleted,
   and callers must check. *)
let find_current page ~key =
  (* manual slot-array loop: this runs several times per write/read on
     pages with up to a few hundred versions *)
  let psize = Bytes.length page in
  let n = P.slot_count page in
  let klen = String.length key in
  let rec go slot =
    if slot >= n then None
    else
      let off = Bytes.get_uint16_le page (psize - 2 - (2 * slot)) in
      if
        off <> P.dead_slot
        && Char.code (Bytes.unsafe_get page (off + 2)) land R.f_non_current = 0
        && Bytes.get_uint16_le page (off + 3) = klen
        && R.key_bytes_equal page (off + 7) key klen 0
      then Some slot
      else go (slot + 1)
  in
  go 0

type chain_tail =
  | Chain_end
  | Chain_to_history of int (* slot in the page's historical page *)

(* Local version chain starting at [slot] (newest first), and where it
   continues. *)
let chain page ~slot =
  let rec go slot acc =
    let acc = slot :: acc in
    let vp = R.in_page_vp page slot in
    if vp = R.no_vp then (List.rev acc, Chain_end)
    else if R.in_page_flags page slot land R.f_vp_in_history <> 0 then
      (List.rev acc, Chain_to_history vp)
    else go vp acc
  in
  go slot []

(* Count-then-fill into an array: the chain-collection passes below run
   on every split/GC over pages with hundreds of versions, so they avoid
   building intermediate lists just to sort them. *)
let live_matching page pred =
  let count = ref 0 in
  P.iter_live page (fun slot -> if pred slot then incr count);
  let arr = Array.make !count 0 in
  let i = ref 0 in
  P.iter_live page (fun slot ->
      if pred slot then begin
        arr.(!i) <- slot;
        incr i
      end);
  arr

let is_chain_head page slot = R.in_page_flags page slot land R.f_non_current = 0

(* All chain heads in the page: (key, slot) for every current version. *)
let current_slots page =
  let heads = live_matching page (is_chain_head page) in
  let arr = Array.map (fun slot -> (R.in_page_key page slot, slot)) heads in
  Array.sort compare arr;
  Array.to_list arr

(* Every live version of [key] in the page, regardless of chain position —
   the search mode for history pages, where chains may have been cut by
   splits.  Returns slots. *)
let all_versions_of page ~key =
  let psize = Bytes.length page in
  let n = P.slot_count page in
  let klen = String.length key in
  let acc = ref [] in
  for slot = 0 to n - 1 do
    let off = Bytes.get_uint16_le page (psize - 2 - (2 * slot)) in
    if
      off <> P.dead_slot
      && Bytes.get_uint16_le page (off + 3) = klen
      && R.key_bytes_equal page (off + 7) key klen 0
    then acc := slot :: !acc
  done;
  !acc

(* Distinct keys present in the page. *)
let keys page =
  P.fold_live page ~init:[] ~f:(fun acc slot -> R.in_page_key page slot :: acc)
  |> List.sort_uniq String.compare

(* The version of [key] visible at time [asof] among the *stamped*
   versions of this page: the one with the largest start <= asof.  Among
   equal starts (several updates by one transaction) the newest is the one
   no other equal-start version points to through VP.  Returns the slot;
   the caller interprets delete stubs.  Unstamped versions are ignored —
   callers stamp committed versions first and handle own-transaction
   visibility separately. *)
let find_stamped_as_of page ~key ~asof =
  (* array-based: one pass collects the candidates and their newest start;
     tie-breaking then touches only the (tiny) tied set instead of the old
     quadratic List.mem membership scans over rebuilt lists *)
  let slots = Array.of_list (all_versions_of page ~key) in
  let n = Array.length slots in
  let ts = Array.make n Ts.zero in
  let ok = Array.make n false in
  let max_ts = ref None in
  for i = 0 to n - 1 do
    match R.in_page_timestamp page slots.(i) with
    | Some t when Ts.compare t asof <= 0 ->
        ts.(i) <- t;
        ok.(i) <- true;
        (match !max_ts with
        | Some m when Ts.compare m t >= 0 -> ()
        | Some _ | None -> max_ts := Some t)
    | Some _ | None -> ()
  done;
  match !max_ts with
  | None -> None
  | Some m ->
      (* tied versions are several updates by one transaction: the newest
         is the one no other tied version links to locally *)
      let tied i = ok.(i) && Ts.equal ts.(i) m in
      let points_at_locally j s =
        R.in_page_vp page slots.(j) = s
        && R.in_page_flags page slots.(j) land R.f_vp_in_history = 0
      in
      let result = ref None in
      let fallback = ref None in
      for i = 0 to n - 1 do
        if tied i then begin
          if !fallback = None then fallback := Some slots.(i);
          if !result = None then begin
            let pointed = ref false in
            for j = 0 to n - 1 do
              if (not !pointed) && j <> i && tied j && points_at_locally j slots.(i)
              then pointed := true
            done;
            if not !pointed then result := Some slots.(i)
          end
        end
      done;
      (match !result with Some _ as r -> r | None -> !fallback)

(* ------------------------------------------------------------------ *)
(* Inserting versions                                                  *)
(* ------------------------------------------------------------------ *)

(* Space needed to add a version for (key, payload): the new cell plus
   slot-array overhead. *)
let version_size ~key ~payload = R.size ~key ~payload + 4

(* Describe the version insert that [insert_version] would perform, so the
   engine can build the Op_version_insert log record *before* applying it.
   Returns None if the page is full (caller splits first). *)
type planned_insert = {
  pi_slot : int;
  pi_body : bytes;
  pi_pred_slot : int; (* R.no_vp if the key has no current version here *)
  pi_pred_old_flags : int;
}

(* Batch variant for the ingest flush: the caller maintains a key ->
   current-slot index across a whole run of inserts into one page, so the
   O(slots) [find_current] probe runs once per page visit instead of once
   per message.  Produces byte-identical plans to [plan_insert] given the
   predecessor [find_current] would have found. *)
let plan_insert_with_pred page ~pred ~key ~payload ~tid ~delete_stub =
  let vp, pred_flags =
    match pred with
    | Some slot -> (slot, R.in_page_flags page slot)
    | None -> (R.no_vp, 0)
  in
  let flags = if delete_stub then R.f_delete_stub else 0 in
  let body =
    R.encode
      { flags; key; payload; vp; ttime = Imdb_clock.Tid.Unstamped tid; sn = 0 }
  in
  if not (P.fits page (Bytes.length body)) then None
  else
    Some
      {
        pi_slot = P.choose_insert_slot page;
        pi_body = body;
        pi_pred_slot = vp;
        pi_pred_old_flags = pred_flags;
      }

let plan_insert page ~key ~payload ~tid ~delete_stub =
  plan_insert_with_pred page ~pred:(find_current page ~key) ~key ~payload ~tid
    ~delete_stub

(* Apply a planned insert: identical to Log_record's redo of
   Op_version_insert, shared here so normal execution and recovery replay
   the same code path. *)
let apply_insert page (pi : planned_insert) =
  P.insert_at_slot page pi.pi_slot pi.pi_body;
  if pi.pi_pred_slot <> R.no_vp then
    R.set_in_page_flags page pi.pi_pred_slot (pi.pi_pred_old_flags lor R.f_non_current)

(* ------------------------------------------------------------------ *)
(* Timestamp propagation                                               *)
(* ------------------------------------------------------------------ *)

type resolution =
  | Committed of Ts.t (* transaction committed with this timestamp *)
  | Active (* still running: leave the TID in place *)
  | Unknown (* no mapping: integrity error, see caller *)

(* Replace TIDs with timestamps on every version whose transaction has
   committed (paper stage IV).  [resolve] consults the VTT/PTT;
   [on_stamp tid] lets the caller decrement reference counts.  Returns the
   number of versions stamped — when non-zero the caller marks the page
   dirty *without logging* (the defining property of lazy timestamping). *)
let stamp_committed ?(metrics = M.null) page ~resolve ~on_stamp =
  let stamped = ref 0 in
  P.iter_live page (fun slot ->
      match R.in_page_ttime page slot with
      | Imdb_clock.Tid.Stamped _ -> ()
      | Imdb_clock.Tid.Unstamped tid -> (
          match resolve tid with
          | Committed ts ->
              R.set_in_page_ttime page slot (Imdb_clock.Tid.Stamped (Ts.ttime ts));
              R.set_in_page_sn page slot (Ts.sn ts);
              incr stamped;
              M.incr metrics M.stamps_applied;
              on_stamp tid
          | Active | Unknown -> ()));
  !stamped

(* Stamp only the versions of one record — the paper's per-record triggers
   (stage IV: reading or updating a non-timestamped version timestamps
   that record's versions).  Cheaper than a page sweep on the write path. *)
let stamp_versions_of ?(metrics = M.null) page ~key ~resolve ~on_stamp =
  let stamped = ref 0 in
  P.iter_live page (fun slot ->
      if R.in_page_key_matches page slot key then
        match R.in_page_ttime page slot with
        | Imdb_clock.Tid.Stamped _ -> ()
        | Imdb_clock.Tid.Unstamped tid -> (
            match resolve tid with
            | Committed ts ->
                R.set_in_page_ttime page slot (Imdb_clock.Tid.Stamped (Ts.ttime ts));
                R.set_in_page_sn page slot (Ts.sn ts);
                incr stamped;
                M.incr metrics M.stamps_applied;
                on_stamp tid
            | Active | Unknown -> ()));
  !stamped

(* Does the record [key] have any unstamped version in this page? *)
let key_has_unstamped page ~key =
  let psize = Bytes.length page in
  let n = P.slot_count page in
  let klen = String.length key in
  let rec go slot =
    if slot >= n then false
    else
      let off = Bytes.get_uint16_le page (psize - 2 - (2 * slot)) in
      if
        off <> P.dead_slot
        && Bytes.get_uint16_le page (off + 3) = klen
        && R.key_bytes_equal page (off + 7) key klen 0
        &&
        (* unstamped = the TID flag (high bit of the 8-byte Ttime field) *)
        (match R.in_page_ttime page slot with
        | Imdb_clock.Tid.Unstamped _ -> true
        | Imdb_clock.Tid.Stamped _ -> false)
      then true
      else go (slot + 1)
  in
  go 0

(* Is any version in the page still carrying a TID? *)
let has_unstamped page =
  let found = ref false in
  P.iter_live page (fun slot ->
      match R.in_page_ttime page slot with
      | Imdb_clock.Tid.Unstamped _ -> found := true
      | Imdb_clock.Tid.Stamped _ -> ());
  !found

(* ------------------------------------------------------------------ *)
(* Time splits (Fig. 3)                                                *)
(* ------------------------------------------------------------------ *)

type version_info = {
  vi_slot : int;
  vi_key : string;
  vi_flags : int;
  vi_start : [ `Stamped of Ts.t | `Unstamped of Imdb_clock.Tid.t ];
  vi_vp : int;
  vi_cell : bytes;
}

let info_of page slot =
  let start =
    match R.in_page_ttime page slot with
    | Imdb_clock.Tid.Stamped ms ->
        `Stamped (Ts.make ~ttime:ms ~sn:(R.in_page_sn page slot))
    | Imdb_clock.Tid.Unstamped tid -> `Unstamped tid
  in
  {
    vi_slot = slot;
    vi_key = R.in_page_key page slot;
    vi_flags = R.in_page_flags page slot;
    vi_start = start;
    vi_vp = R.in_page_vp page slot;
    vi_cell = P.read_cell page slot;
  }

let is_stub vi = vi.vi_flags land R.f_delete_stub <> 0
let vp_hist vi = vi.vi_flags land R.f_vp_in_history <> 0

(* Chains of the whole page: each is newest-first; heads are the
   slot-array-visible versions.  Heads are gathered and sorted in an
   array (count-then-fill) rather than consed and list-sorted. *)
let collect_chains page =
  let heads = live_matching page (is_chain_head page) in
  Array.sort compare heads;
  Array.fold_right
    (fun head acc ->
      let slots, _tail = chain page ~slot:head in
      List.map (info_of page) slots :: acc)
    heads []

type placement = Current_only | Both | History_only

(* Classify a chain's versions against split time [s].  [chain_infos] is
   newest-first; the end time of each version is the start time of the
   next newer one (a delete stub's start terminates its predecessor; an
   uncommitted newer version leaves the end open).

   The four cases of Fig. 3:
   1. end <= s                 -> history only
   2. start <= s < end         -> both (redundant copy)
   3. start > s                -> current only
   4. uncommitted              -> current only
   Delete stubs are not data: a stub earlier than s moves to history (it
   documents the deletion and caps its predecessor's lifetime there); a
   stub at or after s stays current. *)
let classify_chain ~split_time:s chain_infos =
  let rec go newer_start = function
    | [] -> []
    | vi :: older ->
        let placement, own_start =
          match vi.vi_start with
          | `Unstamped _ -> (Current_only, None)
          | `Stamped start ->
              let p =
                if is_stub vi then if Ts.compare start s < 0 then History_only else Current_only
                else
                  let end_le_s =
                    match newer_start with
                    | Some e -> Ts.compare e s <= 0
                    | None -> false (* open-ended: alive at s *)
                  in
                  if end_le_s then History_only
                  else if Ts.compare start s <= 0 then Both
                  else Current_only
              in
              (p, Some start)
        in
        (* an uncommitted newer version leaves its predecessor's end open,
           so propagate the previous bound in that case *)
        let next_bound = match own_start with Some st -> Some st | None -> newer_start in
        (vi, placement) :: go next_bound older
  in
  go None chain_infos

type split_images = {
  si_current : bytes; (* rebuilt current page: same id, slots preserved *)
  si_history : bytes; (* the new historical page *)
  si_current_live : int; (* live versions remaining current *)
  si_history_live : int;
  si_copied : int; (* versions redundantly present in both *)
}

(* Perform a time split of [page] at [split_time], producing the two new
   page images.  [history_page_id] is the id allocated for the new
   historical page.  Precondition: every committed version is stamped
   (the engine runs the VTT/PTT sweep first — "only if we know the
   timestamps for versions of records can we determine whether they
   belong on the history page").

   The new historical page inherits the old page's split_time (its time
   range is [old split_time, split_time)) and the old history pointer;
   the current page gets split_time := s and history pointer := the new
   page.  Chains are rewired so that VP links stay within a page or step
   exactly one page back (deeper traversal is by page chain). *)
let time_split ?(metrics = M.null) ~page ~split_time ~history_page_id () =
  let page_size = Bytes.length page in
  let chains = List.map (classify_chain ~split_time) (collect_chains page) in
  let current_img = Bytes.create page_size in
  P.format current_img ~page_id:(P.page_id page) ~page_type:(P.page_type page)
    ~table_id:(P.table_id page) ();
  P.reserve_slots current_img (P.slot_count page);
  let history_img = Bytes.create page_size in
  P.format history_img ~page_id:history_page_id ~page_type:P.P_history
    ~table_id:(P.table_id page) ();
  (* Headers: history covers [old split_time, s) and chains to the old
     history page; current covers [s, inf). *)
  P.set_split_time history_img (P.split_time page);
  P.set_history_pointer history_img (P.history_pointer page);
  P.set_split_time current_img split_time;
  P.set_history_pointer current_img history_page_id;
  let copied = ref 0 in
  (* First pass: place history copies and remember their slots. *)
  let history_slot : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun chain ->
      List.iter
        (fun (vi, placement) ->
          match placement with
          | History_only | Both ->
              (* strip chain flags for now; second pass rewires *)
              let flags = vi.vi_flags land lnot R.f_vp_in_history in
              let cell = R.with_links vi.vi_cell ~flags ~vp:R.no_vp in
              let slot = P.insert history_img cell in
              Hashtbl.replace history_slot vi.vi_slot slot;
              if placement = Both then incr copied
          | Current_only -> ())
        chain)
    chains;
  (* Second pass: place current survivors at their original slots and
     rewire every chain in both images. *)
  List.iter
    (fun chain ->
      (* link each element to the next older one, per image *)
      let rec wire = function
        | [] -> ()
        | (vi, placement) :: older ->
            let next_older = match older with [] -> None | (o, p) :: _ -> Some (o, p) in
            (* current image *)
            (match placement with
            | Current_only | Both ->
                let vp, flags =
                  match next_older with
                  | Some (o, (Current_only | Both)) ->
                      (* older version also lives here: local link.  (Both
                         versions keep their original slots.) *)
                      (o.vi_slot, vi.vi_flags land lnot R.f_vp_in_history)
                  | Some (o, History_only) -> (
                      match Hashtbl.find_opt history_slot o.vi_slot with
                      | Some hs -> (hs, vi.vi_flags lor R.f_vp_in_history)
                      | None -> (R.no_vp, vi.vi_flags land lnot R.f_vp_in_history))
                  | None ->
                      (* end of local chain; deeper history is reached by
                         the page chain, not VP *)
                      (R.no_vp, vi.vi_flags land lnot R.f_vp_in_history)
                in
                let cell = R.with_links vi.vi_cell ~flags ~vp in
                P.insert_at_slot current_img vi.vi_slot cell
            | History_only -> ());
            (* history image *)
            (match Hashtbl.find_opt history_slot vi.vi_slot with
            | None -> ()
            | Some my_hs ->
                let vp, flags =
                  match next_older with
                  | Some (o, _) -> (
                      match Hashtbl.find_opt history_slot o.vi_slot with
                      | Some ohs -> (ohs, vi.vi_flags land lnot R.f_vp_in_history)
                      | None ->
                          (* next older lives beyond the old history page
                             boundary; it was already linked via
                             f_vp_in_history in the original page *)
                          if vp_hist vi then (vi.vi_vp, vi.vi_flags)
                          else (R.no_vp, vi.vi_flags land lnot R.f_vp_in_history))
                  | None ->
                      if vp_hist vi then (vi.vi_vp, vi.vi_flags)
                      else (R.no_vp, vi.vi_flags land lnot R.f_vp_in_history)
                in
                P.patch_cell history_img my_hs ~at:0
                  ~src:(Bytes.make 1 (Char.chr (flags land 0xff)));
                let k = Imdb_util.Codec.get_u16 history_img (P.cell_body_offset history_img my_hs + 1) in
                let p = Imdb_util.Codec.get_u16 history_img (P.cell_body_offset history_img my_hs + 3) in
                let vp_b = Bytes.create 2 in
                Imdb_util.Codec.set_u16 vp_b 0 vp;
                P.patch_cell history_img my_hs ~at:(5 + k + p) ~src:vp_b);
            wire older
      in
      wire chain)
    chains;
  let images =
    {
      si_current = current_img;
      si_history = history_img;
      si_current_live = P.live_count current_img;
      si_history_live = P.live_count history_img;
      si_copied = !copied;
    }
  in
  M.incr metrics M.time_splits;
  M.incr ~by:images.si_copied metrics M.split_copied;
  M.observe metrics M.h_split_current_live images.si_current_live;
  M.observe metrics M.h_split_history_live images.si_history_live;
  images

(* ------------------------------------------------------------------ *)
(* Key splits                                                          *)
(* ------------------------------------------------------------------ *)

type key_split_images = {
  ks_left : bytes; (* original page id; keys < ks_separator; slots kept *)
  ks_right : bytes; (* right_page_id; keys >= ks_separator *)
  ks_separator : string;
}

(* B-tree style key split of a (current) data page: whole chains move with
   their key.  Both halves keep the split_time and history pointer of the
   original (their shared history chain covers the combined key range;
   as-of readers filter by key).  The left half keeps original slot
   numbers; the right half is rebuilt with local chain rewiring. *)
let key_split ?(metrics = M.null) ~page ~right_page_id () =
  let page_size = Bytes.length page in
  let chains = collect_chains page in
  if List.length chains < 2 then invalid_arg "Vpage.key_split: fewer than two keys";
  let keyed =
    List.map (fun c -> ((List.hd c).vi_key, c)) chains |> List.sort compare
  in
  let total_bytes =
    List.fold_left
      (fun acc (_, c) ->
        acc + List.fold_left (fun a vi -> a + Bytes.length vi.vi_cell) 0 c)
      0 keyed
  in
  (* choose the first key whose cumulative size crosses half *)
  let rec pick acc = function
    | [ (k, _) ] -> k
    | (k, c) :: rest ->
        if acc >= total_bytes / 2 then k
        else
          pick (acc + List.fold_left (fun a vi -> a + Bytes.length vi.vi_cell) 0 c) rest
    | [] -> assert false
  in
  let separator = pick 0 (List.tl keyed) in
  (* keys < separator stay left; the first chain always stays left *)
  let left_img = Bytes.create page_size in
  P.format left_img ~page_id:(P.page_id page) ~page_type:(P.page_type page)
    ~table_id:(P.table_id page) ();
  P.reserve_slots left_img (P.slot_count page);
  let right_img = Bytes.create page_size in
  P.format right_img ~page_id:right_page_id ~page_type:(P.page_type page)
    ~table_id:(P.table_id page) ();
  List.iter
    (fun img ->
      P.set_split_time img (P.split_time page);
      P.set_history_pointer img (P.history_pointer page))
    [ left_img; right_img ];
  List.iter
    (fun (key, chain) ->
      if String.compare key separator < 0 then
        (* stays left at original slots; links unchanged *)
        List.iter (fun vi -> P.insert_at_slot left_img vi.vi_slot vi.vi_cell) chain
      else begin
        (* moves right: fresh slots, rewire local links *)
        let slots =
          List.map
            (fun vi ->
              (* insert with placeholder vp; fix after all allocated *)
              let s = P.insert right_img vi.vi_cell in
              (vi, s))
            chain
        in
        let rec rewire = function
          | [] -> ()
          | (vi, s) :: older ->
              (match older with
              | (_, os) :: _ when not (vp_hist vi) ->
                  R.set_in_page_vp right_img s os
              | _ ->
                  (* last local element: history links keep their slot
                     value (same shared history page); locals terminate *)
                  if not (vp_hist vi) then R.set_in_page_vp right_img s R.no_vp);
              rewire older
        in
        rewire slots
      end)
    keyed;
  M.incr metrics M.key_splits;
  { ks_left = left_img; ks_right = right_img; ks_separator = separator }

(* ------------------------------------------------------------------ *)
(* Version GC for snapshot tables                                      *)
(* ------------------------------------------------------------------ *)

(* Rebuild the page keeping only versions some *active snapshot* can still
   see: the chain head (the current state), every uncommitted version, and
   for each active snapshot time t the newest version with start <= t that
   is still alive at t.  Everything else is garbage — the paper: "versions
   earlier than the version seen by O are garbage collected", generalized
   to the exact visible set so a single hot record cannot overflow its
   page while an old reader is pinned.  Slots of survivors are preserved.
   Returns the rebuilt image and the number of versions dropped. *)
let gc_versions ~page ~snapshots =
  let chains = collect_chains page in
  let img = Bytes.create (Bytes.length page) in
  P.format img ~page_id:(P.page_id page) ~page_type:(P.page_type page)
    ~table_id:(P.table_id page) ();
  P.reserve_slots img (P.slot_count page);
  P.set_split_time img (P.split_time page);
  let dropped = ref 0 in
  List.iter
    (fun chain ->
      (* compute each version's [start, end) and keep decision *)
      let rec decide newer_start = function
        | [] -> []
        | vi :: older ->
            let keep, own_start =
              match vi.vi_start with
              | `Unstamped _ -> (true, None)
              | `Stamped start ->
                  let is_head = newer_start = None in
                  let visible_to_some_snapshot =
                    List.exists
                      (fun t ->
                        Ts.compare start t <= 0
                        &&
                        match newer_start with
                        | None -> true (* open-ended: alive at any t >= start *)
                        | Some e -> Ts.compare t e < 0)
                      snapshots
                  in
                  (is_head || visible_to_some_snapshot, Some start)
            in
            let next_bound =
              match own_start with Some st -> Some st | None -> newer_start
            in
            (vi, keep) :: decide next_bound older
      in
      let decided = decide None chain in
      (* place survivors at their original slots, rewiring consecutive
         survivors into a chain *)
      let survivors = List.filter_map (fun (vi, k) -> if k then Some vi else None) decided in
      dropped := !dropped + (List.length decided - List.length survivors);
      let rec place = function
        | [] -> ()
        | vi :: older ->
            let vp, flags =
              match older with
              | o :: _ -> (o.vi_slot, vi.vi_flags land lnot R.f_vp_in_history)
              | [] -> (R.no_vp, vi.vi_flags land lnot R.f_vp_in_history)
            in
            P.insert_at_slot img vi.vi_slot (R.with_links vi.vi_cell ~flags ~vp);
            place older
      in
      place survivors)
    chains;
  (img, !dropped)
