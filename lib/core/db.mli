(** The public face of Immortal DB.

    A database holds tables of three kinds:
    - {e immortal} tables keep every version of every record forever and
      answer [AS OF] queries about any past state (the paper's
      transaction-time tables);
    - {e snapshot} tables keep recent versions only, enough to serve
      snapshot-isolation readers, and garbage-collect the rest;
    - {e conventional} tables update in place.

    All data access happens inside transactions.  Writers get strict
    two-phase locking by default, or snapshot isolation with
    first-committer-wins; [As_of] transactions are read-only views of a
    past state.  Commit timestamps are assigned {e at commit}, agree with
    serialization order, and become the version coordinates that [as_of]
    and [history] queries address.

    A [Db.t] may be driven from several domains at once: every operation
    runs under the engine's session gate, which is released while a
    session parks on a lock conflict and across the commit-record fsync
    (where concurrent committers batch one device sync).  Give each
    domain its own {!Session}; set
    [config.lock_wait_timeout_ms > 0] so conflicting sessions wait
    instead of failing fast. *)

type t
(** An open database handle. *)

type txn = Engine.txn
(** A transaction handle, valid until [commit]/[abort]. *)

type isolation = Engine.isolation =
  | Serializable  (** strict 2PL; reads lock *)
  | Snapshot_isolation
      (** reads see a stable snapshot taken at [begin_txn] and never
          block; concurrent writers of the same record are resolved
          first-committer-wins *)
  | As_of of Imdb_clock.Timestamp.t
      (** read-only view of the database as of a past time; requires the
          tables read to be immortal *)

type mode = Catalog.table_mode =
  | Immortal  (** versions persist forever; AS OF supported *)
  | Snapshot_table  (** versions kept for snapshot isolation only *)
  | Conventional  (** update in place *)

exception No_such_table of string

(** {1 Lifecycle} *)

val open_memory : ?config:Engine.config -> ?clock:Imdb_clock.Clock.t -> unit -> t
(** A fresh in-memory database (testing, benchmarks). *)

val open_dir : ?config:Engine.config -> ?clock:Imdb_clock.Clock.t -> string -> t
(** Open (creating if needed) a file-backed database in the given
    directory: data pages in [data.imdb], the log in [wal.imdb].
    Runs crash recovery if the previous session did not close cleanly. *)

val open_devices :
  ?metrics:Imdb_obs.Metrics.t ->
  ?config:Engine.config ->
  ?clock:Imdb_clock.Clock.t ->
  disk:Imdb_storage.Disk.t ->
  log_device:Imdb_wal.Wal.Device.t ->
  unit ->
  t
(** Open over explicit devices (crash tests reuse in-memory devices).
    Passing [metrics] lets a crash harness keep one registry across
    repeated reopens, so work counters accumulate over the whole
    crash/recover history instead of resetting per open. *)

val close : t -> unit
(** Flush everything and release the devices. *)

val checkpoint : t -> unit
(** Force a checkpoint: sweeps old dirty pages, bounds the next recovery,
    and garbage-collects the persistent timestamp table. *)

exception Vacuum_blocked of string

val vacuum : t -> int
(** Force timestamping to completion everywhere and empty the PTT — the
    paper's remedy for entries orphaned by crashes (whose volatile
    reference counts were lost).  Requires no active transactions;
    returns the number of PTT entries removed.  @raise Vacuum_blocked *)

val crash_and_reopen : ?config:Engine.config -> ?clock:Imdb_clock.Clock.t -> t -> t
(** Simulate a crash: discard all volatile state (buffer pool, volatile
    timestamp table, unflushed log tail) and reopen over the same devices,
    running recovery.  The original handle must not be used afterwards. *)

val engine : t -> Engine.t
(** The underlying engine, for tools and tests that need internals. *)

val devices : t -> Imdb_storage.Disk.t * Imdb_wal.Wal.Device.t
(** The devices this database was opened over — what a crash harness
    needs to reopen via {!open_devices} when recovery itself crashed and
    left no live handle for {!crash_and_reopen}. *)

val metrics : t -> Imdb_obs.Metrics.t
(** This database's private metrics registry: counters, histograms and
    trace events for everything its engine has done since open.  Two open
    databases never share a registry. *)

val tracer : t -> Imdb_obs.Tracer.t
(** This database's span tracer ({!Imdb_obs.Tracer.null} unless the
    engine config enables tracing via [trace_sampling > 0]). *)

(** {1 Transactions} *)

val begin_txn : ?isolation:isolation -> t -> txn
(** Start a transaction (default [Serializable]). *)

val commit : t -> txn -> Imdb_clock.Timestamp.t option
(** Commit; returns the commit timestamp, or [None] for a transaction
    that wrote nothing (read-only transactions leave no trace). *)

val abort : t -> txn -> unit
(** Roll back every change the transaction made. *)

val with_txn : ?isolation:isolation -> t -> (txn -> 'a) -> 'a
(** Run [f] in a transaction: commit on return, abort on exception. *)

val exec : ?isolation:isolation -> t -> (txn -> 'a) -> 'a
(** Alias of [with_txn], for single-statement use. *)

val as_of : t -> Imdb_clock.Timestamp.t -> (txn -> 'a) -> 'a
(** Run a read-only function against the database state at a past time:
    [as_of db ts f] = [with_txn ~isolation:(As_of ts) db f]. *)

(** {1 DDL (autocommitted)} *)

val create_table : t -> name:string -> mode:mode -> schema:Schema.t -> unit
(** Create a table.  The schema's first column is the primary key. *)

val drop_table : t -> string -> bool
(** Remove a table from the catalog; returns whether it existed.  The
    table's pages are not reclaimed (history is immortal). *)

val enable_snapshot : t -> table:string -> int
(** [ALTER TABLE ... ENABLE SNAPSHOT] (paper §4.1): convert a
    conventional table to snapshot versioning, migrating its rows.
    Returns the row count.  @raise No_such_table *)

val table_info : t -> string -> Catalog.table_info
(** Catalog entry for a table.  @raise No_such_table *)

val list_tables : t -> Catalog.table_info list

(** {1 Typed row operations}

    Rows are value lists matching the table schema; the first value is
    the primary key. *)

val insert_row : t -> txn -> table:string -> Schema.value list -> unit
(** @raise Table.Duplicate_key if the key currently exists. *)

val update_row : t -> txn -> table:string -> Schema.value list -> unit
(** @raise Table.No_such_key if the key does not currently exist. *)

val upsert_row : t -> txn -> table:string -> Schema.value list -> unit

val delete_row : t -> txn -> table:string -> key:Schema.value -> unit
(** On versioned tables this inserts a delete stub: the record's history
    remains queryable.  @raise Table.No_such_key *)

val get_row : t -> txn -> table:string -> key:Schema.value -> Schema.value list option
(** The row visible to [txn]: the locked current version under
    [Serializable], the snapshot version under [Snapshot_isolation], the
    historical version under [As_of]. *)

val scan_rows : ?lo:string -> ?hi:string -> t -> txn -> table:string -> Schema.value list list
(** Every row visible to [txn], in key order; [lo]/[hi] bound the scan to
    an encoded-key window [lo, hi). *)

val scan_rows_range :
  ?low:Schema.value -> ?high:Schema.value -> t -> txn -> table:string -> Schema.value list list
(** Typed key-range scan: rows with [low <= key < high]. *)

val scan_rows_as_of :
  t -> txn -> table:string -> ts:Imdb_clock.Timestamp.t -> Schema.value list list
(** Full table state as of [ts] (immortal tables only). *)

val history_rows :
  t ->
  txn ->
  table:string ->
  key:Schema.value ->
  (Imdb_clock.Timestamp.t * Schema.value list option) list
(** Time travel: every state the record ever had, newest first; [None]
    marks a deletion (immortal tables only). *)

(** {1 Raw key/payload operations}

    The engine-level API beneath the typed layer: keys are
    order-preserving encoded strings (see {!Schema.encode_key}), payloads
    opaque strings. *)

val insert : t -> txn -> table:string -> key:string -> payload:string -> unit
val update : t -> txn -> table:string -> key:string -> payload:string -> unit
val upsert : t -> txn -> table:string -> key:string -> payload:string -> unit
val delete : t -> txn -> table:string -> key:string -> unit
val get : t -> txn -> table:string -> key:string -> string option

val scan :
  ?lo:string -> ?hi:string -> t -> txn -> table:string -> (string -> string -> unit) -> unit

val scan_as_of :
  ?lo:string ->
  ?hi:string ->
  t ->
  txn ->
  table:string ->
  ts:Imdb_clock.Timestamp.t ->
  (string -> string -> unit) ->
  unit

val history :
  t -> txn -> table:string -> key:string ->
  (Imdb_clock.Timestamp.t * string option) list

(** {1 Sessions}

    The multi-core topology: open one database, hand each domain its own
    session, drive transactions through it.  Sessions are cheap handles —
    the engine's session gate does the synchronization — but they make
    ownership explicit (a txn begun on a session is that session's to
    finish) and give each thread-of-control an id for observability. *)

module Session : sig
  type db := t
  type t

  val id : t -> int
  val db : t -> db

  val begin_txn : ?isolation:isolation -> t -> txn
  val commit : t -> txn -> Imdb_clock.Timestamp.t option
  val abort : t -> txn -> unit
  val with_txn : ?isolation:isolation -> t -> (txn -> 'a) -> 'a
  val exec : ?isolation:isolation -> t -> (txn -> 'a) -> 'a
  val as_of : t -> Imdb_clock.Timestamp.t -> (txn -> 'a) -> 'a

  val insert : t -> txn -> table:string -> key:string -> payload:string -> unit
  val update : t -> txn -> table:string -> key:string -> payload:string -> unit
  val upsert : t -> txn -> table:string -> key:string -> payload:string -> unit
  val delete : t -> txn -> table:string -> key:string -> unit
  val get : t -> txn -> table:string -> key:string -> string option

  val scan :
    ?lo:string -> ?hi:string -> t -> txn -> table:string ->
    (string -> string -> unit) -> unit

  val scan_as_of :
    ?lo:string -> ?hi:string -> t -> txn -> table:string ->
    ts:Imdb_clock.Timestamp.t -> (string -> string -> unit) -> unit

  val history :
    t -> txn -> table:string -> key:string ->
    (Imdb_clock.Timestamp.t * string option) list
end

val session : t -> Session.t
(** A new session over this database.  Create one per domain. *)

(** {1 Introspection}

    Live views of what the engine is doing, for monitoring tools, the
    SQL pragmas ([SESSIONS], [LOCKS]) and the crash flight recorder. *)

val sessions_json : t -> Imdb_obs.Json.t
(** Per-session statistics (commits, aborts, rows read/written, lock
    waits and wait time, commit latency, group-commit batch positions),
    plus each session's count of currently active transactions. *)

val locks_json : t -> Imdb_obs.Json.t
(** A consistent dump of the lock manager: current holders and the live
    wait-for graph.  Taken without the session gate, so it works even
    while every session is parked on a conflict. *)

val monitor : t -> Imdb_obs.Monitor.t
(** The continuous monitor ({!Imdb_obs.Monitor.null} unless the engine
    config enables it via [monitor_interval_ms > 0]). *)

val monitor_json : t -> Imdb_obs.Json.t
(** The monitor's ring of samples plus derived rates and latency
    percentiles, as JSON. *)

val flight_report : t -> reason:string -> Imdb_obs.Json.t
(** Assemble a flight-recorder report: recent monitor samples, session
    stats, lock dump, slow-op traces and a full metrics snapshot. *)

val write_flight_report : t -> reason:string -> string option
(** Persist {!flight_report} under the engine config's
    [flight_recorder_dir]; returns the file path, or [None] when no
    directory is configured or the write failed (best effort). *)
