(* A road network for the moving-objects generator.

   The paper drives its experiments with Brinkhoff's "Network-based
   Generator of Moving Objects" over the Seattle road map.  We synthesize
   an equivalent network: a grid of intersections with jittered
   coordinates, edges between neighbours (some randomly removed to make
   the topology irregular, while keeping the grid connected), and a speed
   class per edge.  Shortest-path routing uses Dijkstra. *)

type node = { nid : int; x : float; y : float }


type t = {
  nodes : node array;
  adjacency : (int * float * float) list array; (* nid -> (neighbor, length, speed) *)
}

let node t nid = t.nodes.(nid)
let size t = Array.length t.nodes

(* Build a [cols] x [rows] grid.  [removal] is the probability that a
   non-bridging edge is dropped.  Deterministic in [rng]. *)
let generate ?(cols = 20) ?(rows = 20) ?(removal = 0.15) rng =
  let n = cols * rows in
  let jitter () = (Imdb_util.Rng.float rng -. 0.5) *. 0.6 in
  let nodes =
    Array.init n (fun i ->
        let cx = i mod cols and cy = i / cols in
        { nid = i; x = float_of_int cx +. jitter (); y = float_of_int cy +. jitter () })
  in
  let adjacency = Array.make n [] in
  let add_edge a b =
    let dx = nodes.(a).x -. nodes.(b).x and dy = nodes.(a).y -. nodes.(b).y in
    let length = sqrt ((dx *. dx) +. (dy *. dy)) in
    (* speed classes: freeway-ish to residential *)
    let speed = [| 1.0; 0.7; 0.5; 0.3 |].(Imdb_util.Rng.int rng 4) in
    adjacency.(a) <- (b, length, speed) :: adjacency.(a);
    adjacency.(b) <- (a, length, speed) :: adjacency.(b)
  in
  for cy = 0 to rows - 1 do
    for cx = 0 to cols - 1 do
      let i = (cy * cols) + cx in
      (* always keep the first row/column edges: guarantees connectivity *)
      if cx + 1 < cols then
        if cy = 0 || Imdb_util.Rng.float rng >= removal then add_edge i (i + 1);
      if cy + 1 < rows then
        if cx = 0 || Imdb_util.Rng.float rng >= removal then add_edge i (i + cols)
    done
  done;
  { nodes; adjacency }

(* Dijkstra shortest path by travel time; returns the node list from
   [src] to [dst] inclusive, or None if unreachable (cannot happen with
   the connectivity guarantee, but callers stay total). *)
let shortest_path t ~src ~dst =
  let n = size t in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let visited = Array.make n false in
  dist.(src) <- 0.0;
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0.0, src)) in
  let rec loop () =
    match Pq.min_elt_opt !pq with
    | None -> ()
    | Some ((d, u) as elt) ->
        pq := Pq.remove elt !pq;
        if not visited.(u) then begin
          visited.(u) <- true;
          if u <> dst then begin
            List.iter
              (fun (v, length, speed) ->
                let nd = d +. (length /. speed) in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  prev.(v) <- u;
                  pq := Pq.add (nd, v) !pq
                end)
              t.adjacency.(u);
            loop ()
          end
        end
        else loop ()
  in
  loop ();
  if dist.(dst) = infinity then None
  else begin
    let rec build acc v = if v = src then src :: acc else build (v :: acc) prev.(v) in
    Some (build [] dst)
  end

(* Straight-line interpolation along a path: the position after covering
   [travelled] distance units. *)
let position_along t path ~travelled =
  let rec walk remaining = function
    | [] -> invalid_arg "position_along: empty path"
    | [ last ] ->
        let nd = node t last in
        (nd.x, nd.y)
    | a :: (b :: _ as rest) ->
        let na = node t a and nb = node t b in
        let dx = nb.x -. na.x and dy = nb.y -. na.y in
        let seg = sqrt ((dx *. dx) +. (dy *. dy)) in
        if remaining <= seg || seg = 0.0 then
          if seg = 0.0 then walk remaining rest
          else
            let f = remaining /. seg in
            (na.x +. (f *. dx), na.y +. (f *. dy))
        else walk (remaining -. seg) rest
  in
  walk travelled path

let path_length t path =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let na = node t a and nb = node t b in
        let dx = nb.x -. na.x and dy = nb.y -. na.y in
        go (acc +. sqrt ((dx *. dx) +. (dy *. dy))) rest
    | _ -> acc
  in
  go 0.0 path

let edge_count t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.adjacency / 2
