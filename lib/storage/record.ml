(* Record versions as stored in cells (Fig. 1 of the paper).

   Body layout:

   {v
     0        u8   flags
     1        u16  key length  (k)
     3        u16  payload length (p)
     5        key bytes
     5+k      payload bytes
     5+k+p    versioning tail, 14 bytes:
                +0  u16  VP   version pointer (slot number), [no_vp] = none
                +2  i64  Ttime: commit time, or flagged TID if unstamped
                +10 u32  SN   timestamp sequence number
   v}

   The 14-byte tail mirrors SQL Server's snapshot-versioning bytes exactly
   as the paper reuses them: VP(2) | Ttime(8) | SN(4).  VP addresses the
   previous version of the record by slot number — within the same page
   normally, or within the page named by the enclosing page's
   history_pointer when [f_vp_in_history] is set (Section 3.1: "the
   version pointer (VP) field is used to store the slot number of the
   earlier version in the historical page"). *)

open Imdb_util

let tail_size = 14
let fixed_overhead = 5 + tail_size
let no_vp = 0xFFFF

(* flags *)
let f_delete_stub = 0x01 (* this version is a delete stub: key was deleted *)
let f_vp_in_history = 0x02 (* VP names a slot in the history page, not here *)
let f_non_current = 0x04 (* an old version shadowed by a newer one *)

type t = {
  flags : int;
  key : string;
  payload : string;
  vp : int;
  ttime : Imdb_clock.Tid.ttime_field;
  sn : int;
}

let is_delete_stub r = r.flags land f_delete_stub <> 0
let is_non_current r = r.flags land f_non_current <> 0
let vp_in_history r = r.flags land f_vp_in_history <> 0

let size ~key ~payload = fixed_overhead + String.length key + String.length payload

let encode { flags; key; payload; vp; ttime; sn } =
  let k = String.length key and p = String.length payload in
  if k > 0xffff || p > 0xffff then invalid_arg "Record.encode: field too long";
  let b = Bytes.create (fixed_overhead + k + p) in
  Codec.set_u8 b 0 flags;
  Codec.set_u16 b 1 k;
  Codec.set_u16 b 3 p;
  Codec.set_string b 5 key;
  Codec.set_string b (5 + k) payload;
  let tail = 5 + k + p in
  Codec.set_u16 b tail vp;
  Codec.set_i64 b (tail + 2) (Imdb_clock.Tid.encode_ttime_field ttime);
  Codec.set_u32 b (tail + 10) sn;
  b

let decode b =
  let flags = Codec.get_u8 b 0 in
  let k = Codec.get_u16 b 1 in
  let p = Codec.get_u16 b 3 in
  let key = Codec.get_string b 5 k in
  let payload = Codec.get_string b (5 + k) p in
  let tail = 5 + k + p in
  {
    flags;
    key;
    payload;
    vp = Codec.get_u16 b tail;
    ttime = Imdb_clock.Tid.decode_ttime_field (Codec.get_i64 b (tail + 2));
    sn = Codec.get_u32 b (tail + 10);
  }

(* ------------------------------------------------------------------ *)
(* In-place access on a page, without decoding the whole record.       *)
(* These are the workhorses of lazy timestamping: stamping a version    *)
(* touches only the 14-byte tail.                                       *)
(* ------------------------------------------------------------------ *)

let in_page_key_length page slot = Codec.get_u16 page (Page.cell_body_offset page slot + 1)

let in_page_key page slot =
  let body = Page.cell_body_offset page slot in
  Codec.get_string page (body + 5) (Codec.get_u16 page (body + 1))

(* Allocation-free equality of a record's key with [key] — the hot path of
   every in-page lookup.  Top-level recursion: no per-call closure. *)
let rec key_bytes_equal page off key k i =
  i >= k || (Bytes.unsafe_get page (off + i) = String.unsafe_get key i
            && key_bytes_equal page off key k (i + 1))

let in_page_payload page slot =
  let body = Page.cell_body_offset page slot in
  let k = Codec.get_u16 page (body + 1) in
  let p = Codec.get_u16 page (body + 3) in
  Codec.get_string page (body + 5 + k) p

let in_page_key_matches page slot key =
  let body = Page.cell_body_offset page slot in
  let k = Codec.get_u16 page (body + 1) in
  k = String.length key && key_bytes_equal page (body + 5) key k 0

(* Offset of the tail *relative to the cell body* — the form needed for
   WAL Op_patch records, which address bytes within a cell. *)
let tail_offset_in_body page slot =
  let body = Page.cell_body_offset page slot in
  let k = Codec.get_u16 page (body + 1) in
  let p = Codec.get_u16 page (body + 3) in
  5 + k + p

let in_page_flags page slot = Codec.get_u8 page (Page.cell_body_offset page slot)
let set_in_page_flags page slot v = Codec.set_u8 page (Page.cell_body_offset page slot) v

let in_page_vp page slot =
  Codec.get_u16 page (Page.cell_body_offset page slot + tail_offset_in_body page slot)

let set_in_page_vp page slot v =
  Codec.set_u16 page (Page.cell_body_offset page slot + tail_offset_in_body page slot) v

let in_page_ttime page slot =
  Imdb_clock.Tid.decode_ttime_field
    (Codec.get_i64 page (Page.cell_body_offset page slot + tail_offset_in_body page slot + 2))

let set_in_page_ttime page slot field =
  Codec.set_i64 page
    (Page.cell_body_offset page slot + tail_offset_in_body page slot + 2)
    (Imdb_clock.Tid.encode_ttime_field field)

let in_page_sn page slot =
  Codec.get_u32 page (Page.cell_body_offset page slot + tail_offset_in_body page slot + 10)

let set_in_page_sn page slot v =
  Codec.set_u32 page (Page.cell_body_offset page slot + tail_offset_in_body page slot + 10) v

(* The record version's start timestamp, if stamped. *)
let in_page_timestamp page slot =
  match in_page_ttime page slot with
  | Imdb_clock.Tid.Stamped ms ->
      Some (Imdb_clock.Timestamp.make ~ttime:ms ~sn:(in_page_sn page slot))
  | Imdb_clock.Tid.Unstamped _ -> None

let read_in_page page slot = decode (Page.read_cell page slot)

(* Copy of [cell] with flags and version pointer rewritten — used when
   page splits re-home versions and must rewire their chains. *)
let with_links cell ~flags ~vp =
  let b = Bytes.copy cell in
  Codec.set_u8 b 0 flags;
  let k = Codec.get_u16 b 1 in
  let p = Codec.get_u16 b 3 in
  Codec.set_u16 b (5 + k + p) vp;
  b

let pp ppf r =
  let stamp =
    match r.ttime with
    | Imdb_clock.Tid.Stamped ms ->
        Imdb_clock.Timestamp.to_string (Imdb_clock.Timestamp.make ~ttime:ms ~sn:r.sn)
    | Imdb_clock.Tid.Unstamped tid -> Imdb_clock.Tid.to_string tid
  in
  Fmt.pf ppf "{key=%S payload=%S vp=%s %s%s%s@ %s}" r.key r.payload
    (if r.vp = no_vp then "-" else string_of_int r.vp)
    (if is_delete_stub r then "STUB " else "")
    (if is_non_current r then "old " else "")
    (if vp_in_history r then "vp>hist " else "")
    stamp
