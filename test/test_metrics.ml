(* The per-engine observability registry: counter and histogram semantics,
   percentile determinism, the trace ring, JSON round-trips, and — the
   reason the registry replaced the old process-global Stats table —
   isolation between two databases open in the same process. *)

open Helpers
module M = Imdb_obs.Metrics
module J = Imdb_obs.Json
module Db = Imdb_core.Db

(* --- counters and gauges --------------------------------------------------- *)

let test_counters () =
  let m = M.create () in
  Alcotest.(check int) "unknown counter is zero" 0 (M.get m "nope");
  M.incr m "a";
  M.incr m "a";
  M.incr ~by:40 m "a";
  Alcotest.(check int) "accumulates" 42 (M.get m "a");
  M.set_gauge m "g" 7;
  M.set_gauge m "g" 3;
  Alcotest.(check int) "gauge last-write-wins" 3 (M.gauge m "g");
  M.reset m;
  Alcotest.(check int) "reset zeroes" 0 (M.get m "a")

let test_null_registry () =
  Alcotest.(check bool) "null is disabled" false (M.enabled M.null);
  M.incr M.null "a";
  M.observe M.null "h" 5;
  M.trace M.null M.Instant "ev";
  Alcotest.(check int) "null records nothing" 0 (M.get M.null "a");
  Alcotest.(check (option reject)) "null has no histograms" None
    (Option.map ignore (M.histogram M.null "h"));
  Alcotest.(check int) "null has no events" 0 (List.length (M.trace_events M.null))

(* --- histograms ------------------------------------------------------------- *)

let test_histogram_percentiles () =
  let m = M.create () in
  (* 100 observations 1..100: p50 rounds up to the bucket bound above 50
     (64), p99 to the bound above 99 (128) clamped to the observed max. *)
  for v = 1 to 100 do
    M.observe m "h" v
  done;
  match M.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 100 h.M.h_count;
      Alcotest.(check int) "sum" 5050 h.M.h_sum;
      Alcotest.(check int) "max" 100 h.M.h_max;
      Alcotest.(check int) "p50 = bucket bound" 64 h.M.h_p50;
      Alcotest.(check int) "p99 clamped to max" 100 h.M.h_p99

let test_histogram_determinism () =
  (* same multiset, different order => identical summary *)
  let feed order =
    let m = M.create () in
    List.iter (fun v -> M.observe m "h" v) order;
    Option.get (M.histogram m "h")
  in
  let a = feed [ 1; 1000; 17; 42; 42; 9; 100000; 3 ] in
  let b = feed [ 100000; 3; 42; 1; 9; 42; 17; 1000 ] in
  Alcotest.(check bool) "order-independent" true (a = b)

let test_histogram_edges () =
  let m = M.create () in
  M.observe m "h" (-5);
  (* clamps to 0 *)
  M.observe m "h" 0;
  M.observe m "h" max_int;
  (match M.histogram m "h" with
  | Some h ->
      Alcotest.(check int) "count" 3 h.M.h_count;
      Alcotest.(check int) "max" max_int h.M.h_max;
      Alcotest.(check int) "p50 in first bucket" 1 h.M.h_p50
  | None -> Alcotest.fail "histogram missing");
  M.ensure_histogram m "empty";
  match M.histogram m "empty" with
  | Some h ->
      Alcotest.(check int) "empty count" 0 h.M.h_count;
      Alcotest.(check int) "empty p99" 0 h.M.h_p99
  | None -> Alcotest.fail "ensure_histogram did not register"

let test_percentiles_api () =
  let m = M.create () in
  for v = 1 to 100 do
    M.observe m "h" v
  done;
  (* same extraction the monitor uses: rank = ceil(q * count), walked
     through the power-of-two buckets, capped at the observed max *)
  Alcotest.(check (list int)) "p50/p90/p99" [ 64; 100; 100 ]
    (M.percentiles m "h" [ 0.5; 0.9; 0.99 ]);
  Alcotest.(check (list int)) "unknown histogram yields zeros" [ 0; 0 ]
    (M.percentiles m "nope" [ 0.5; 0.99 ]);
  M.observe m "other" 7;
  Alcotest.(check (list string)) "histograms listing is sorted" [ "h"; "other" ]
    (List.map fst (M.histograms m))

(* Satellite of the monitor work: snapshot/diff (what the sampler runs on
   every tick) must be exact under concurrent writers from other domains. *)
let test_snapshot_diff_concurrent_domains () =
  let m = M.create () in
  let domains = 4 and per = 5_000 in
  let before = M.snapshot m in
  let spawned =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              M.incr m "c.shared";
              M.incr m (Printf.sprintf "c.d%d" d);
              M.observe m "h.lat" (i land 255)
            done))
  in
  (* snapshots taken mid-flight must stay monotonic per counter *)
  let mid1 = M.snapshot m in
  let mid2 = M.snapshot m in
  let at name s = Option.value (List.assoc_opt name s) ~default:0 in
  Alcotest.(check bool) "mid-flight snapshots monotonic" true
    (at "c.shared" mid2 >= at "c.shared" mid1);
  Array.iter Domain.join spawned;
  let after = M.snapshot m in
  Alcotest.(check int) "shared counter exact" (domains * per) (at "c.shared" after);
  for d = 0 to domains - 1 do
    Alcotest.(check int)
      (Printf.sprintf "domain %d private counter" d)
      per
      (at (Printf.sprintf "c.d%d" d) after)
  done;
  let deltas = M.diff ~before ~after in
  Alcotest.(check int) "diff reports the full delta" (domains * per)
    (at "c.shared" deltas);
  Alcotest.(check (list (pair string int))) "diff of identical snapshots is empty"
    [] (M.diff ~before:after ~after);
  match M.histogram m "h.lat" with
  | Some h -> Alcotest.(check int) "histogram count exact" (domains * per) h.M.h_count
  | None -> Alcotest.fail "histogram missing"

let test_prometheus_exposition () =
  let m = M.create () in
  M.incr ~by:3 m "txn.commits";
  M.set_gauge m "pool.depth" 7;
  for v = 1 to 100 do
    M.observe m "lat.ms" v
  done;
  let s = M.to_prometheus m in
  let has sub =
    let n = String.length sub and ls = String.length s in
    let rec go i = i + n <= ls && (String.sub s i n = sub || go (i + 1)) in
    Alcotest.(check bool) ("contains " ^ sub) true (go 0)
  in
  has "# TYPE imdb_txn_commits counter\nimdb_txn_commits 3\n";
  has "# TYPE imdb_pool_depth gauge\nimdb_pool_depth 7\n";
  has "# TYPE imdb_lat_ms summary\n";
  has "imdb_lat_ms{quantile=\"0.5\"} 64\n";
  has "imdb_lat_ms{quantile=\"0.99\"} 100\n";
  has "imdb_lat_ms_sum 5050\n";
  has "imdb_lat_ms_count 100\n"

(* --- trace ring ------------------------------------------------------------- *)

let test_trace_ring_truncation () =
  let m = M.create () in
  M.set_trace_capacity m 4;
  for i = 1 to 10 do
    M.trace m M.Instant (Printf.sprintf "ev%d" i)
  done;
  let evs = M.trace_events m in
  Alcotest.(check int) "ring holds capacity" 4 (List.length evs);
  Alcotest.(check int) "oldest were dropped" 6 (M.trace_dropped m);
  Alcotest.(check (list string)) "newest survive, oldest first"
    [ "ev7"; "ev8"; "ev9"; "ev10" ]
    (List.map (fun e -> e.M.ev_name) evs);
  (* sequence numbers keep rising across drops *)
  Alcotest.(check (list int)) "seqs monotonic" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.M.ev_seq) evs)

(* --- JSON ------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let m = M.create () in
  M.incr ~by:3 m "z.last";
  M.incr m "a.first";
  M.set_gauge m "depth" 12;
  for v = 1 to 50 do
    M.observe m "lat" v
  done;
  M.trace m ~attrs:[ ("k", "v\"with\nescapes") ] M.Span_begin "span";
  let str = M.to_json_string ~traces:true m in
  match J.parse str with
  | Error e -> Alcotest.fail ("unparseable exposition: " ^ e)
  | Ok j ->
      let int_at path =
        let rec go j = function
          | [] -> J.to_int j
          | k :: rest -> Option.bind (J.member k j) (fun j -> go j rest)
        in
        Option.value ~default:(-1) (go j path)
      in
      Alcotest.(check int) "schema_version" M.schema_version
        (int_at [ "schema_version" ]);
      Alcotest.(check int) "counter value" 3 (int_at [ "counters"; "z.last" ]);
      Alcotest.(check int) "histogram count" 50 (int_at [ "histograms"; "lat"; "count" ]);
      Alcotest.(check int) "gauge" 12 (int_at [ "gauges"; "depth" ]);
      (* counters object is emitted sorted -> byte-stable document *)
      (match J.member "counters" j with
      | Some (J.Obj kvs) ->
          let keys = List.map fst kvs in
          Alcotest.(check (list string)) "sorted keys" (List.sort compare keys) keys
      | _ -> Alcotest.fail "counters not an object");
      (* the escaped attribute survived the round-trip *)
      (match
         Option.bind (J.member "traces" j) (fun t ->
             Option.bind (J.member "events" t) (fun evs ->
                 Option.bind (J.to_list evs) (fun l ->
                     Option.bind (List.nth_opt l 0) (fun ev ->
                         Option.bind (J.member "attrs" ev) (J.member "k")))))
       with
      | Some (J.String s) ->
          Alcotest.(check string) "escape round-trip" "v\"with\nescapes" s
      | _ -> Alcotest.fail "trace attrs missing");
      (* re-printing the parsed value reproduces the document byte for byte *)
      Alcotest.(check string) "byte-stable" str (J.to_string j)

let test_json_traces_opt_in () =
  let m = M.create () in
  M.trace m M.Instant "ev";
  (match J.parse (M.to_json_string m) with
  | Ok j -> Alcotest.(check bool) "traces omitted" true (J.member "traces" j = None)
  | Error e -> Alcotest.fail e);
  match J.parse (M.to_json_string ~traces:true m) with
  | Ok j -> Alcotest.(check bool) "traces present" true (J.member "traces" j <> None)
  | Error e -> Alcotest.fail e

(* --- per-engine isolation ---------------------------------------------------

   The regression that motivated the registry: with the old global Stats
   table, two open databases shared every counter (and Stats.reset_all
   from one test clobbered another's numbers).  Two engines must now
   observe only their own work. *)

let test_two_dbs_isolated () =
  let db1, clock1 = fresh_db () in
  let db2, _clock2 = fresh_db () in
  Alcotest.(check bool) "distinct registries" true (Db.metrics db1 != Db.metrics db2);
  Db.create_table db1 ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  Db.create_table db2 ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  let commits m = M.get m M.txn_commits in
  let c1 = commits (Db.metrics db1) and c2 = commits (Db.metrics db2) in
  (* work only on db1 *)
  for i = 1 to 10 do
    tick clock1;
    ignore (commit_write db1 (fun txn -> Db.insert_row db1 txn ~table:"t" (row i "x")))
  done;
  Alcotest.(check int) "db1 counted its commits" (c1 + 10) (commits (Db.metrics db1));
  Alcotest.(check int) "db2 unaffected" c2 (commits (Db.metrics db2));
  (* buffer traffic from db1's reads must not appear in db2 *)
  let hits m = M.get m M.buf_hits in
  let h2 = hits (Db.metrics db2) in
  Db.exec db1 (fun txn -> ignore (Db.scan_rows db1 txn ~table:"t"));
  Alcotest.(check int) "db1 reads don't bleed into db2" h2 (hits (Db.metrics db2));
  (* and reset on one registry cannot touch the other (the reset_all bug) *)
  let h1 = hits (Db.metrics db1) in
  Alcotest.(check bool) "db1 saw buffer traffic" true (h1 > 0);
  M.reset (Db.metrics db2);
  Alcotest.(check int) "reset of db2 left db1 intact" h1 (hits (Db.metrics db1));
  Db.close db1;
  Db.close db2

let test_crash_reopen_fresh_registry () =
  (* crash_and_reopen builds a new engine over the same devices: the new
     handle's registry starts clean and counts only post-recovery work *)
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for i = 1 to 20 do
    tick clock;
    ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row i "x")))
  done;
  let old = Db.metrics db in
  let before = M.get old M.txn_commits in
  Alcotest.(check bool) "work recorded before crash" true (before >= 20);
  let db = Db.crash_and_reopen ~clock db in
  Alcotest.(check bool) "new registry" true (Db.metrics db != old);
  Alcotest.(check int) "no commits yet after recovery" 0
    (M.get (Db.metrics db) M.txn_commits);
  Db.exec db (fun txn ->
      Alcotest.(check int) "data recovered" 20 (List.length (Db.scan_rows db txn ~table:"t")));
  Db.close db

let test_hotpath_instruments_preregistered () =
  (* the hot-path counters must appear (at zero) in every engine's
     exposition from the moment it opens, so dashboards and the bench
     gate never see them pop in and out of the schema *)
  let db, _clock = fresh_db () in
  (match J.parse (M.to_json_string (Db.metrics db)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
      let present section name =
        match Option.bind (J.member section j) (J.member name) with
        | Some _ -> true
        | None -> false
      in
      List.iter
        (fun n -> Alcotest.(check bool) n true (present "counters" n))
        [ M.buf_clock_sweeps; M.keydir_hits; M.keydir_misses ];
      Alcotest.(check bool) "group-commit histogram" true
        (present "histograms" M.h_group_commit_batch));
  Db.close db

let suite =
  [
    Alcotest.test_case "counters & gauges" `Quick test_counters;
    Alcotest.test_case "null registry" `Quick test_null_registry;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram determinism" `Quick test_histogram_determinism;
    Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
    Alcotest.test_case "percentiles API" `Quick test_percentiles_api;
    Alcotest.test_case "snapshot/diff under concurrent domains" `Quick
      test_snapshot_diff_concurrent_domains;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
    Alcotest.test_case "trace ring truncation" `Quick test_trace_ring_truncation;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "JSON traces opt-in" `Quick test_json_traces_opt_in;
    Alcotest.test_case "two DBs isolated" `Quick test_two_dbs_isolated;
    Alcotest.test_case "fresh registry after crash" `Quick test_crash_reopen_fresh_registry;
    Alcotest.test_case "hot-path instruments pre-registered" `Quick
      test_hotpath_instruments_preregistered;
  ]
