(** Delta compression of historical page images.

    Time splits emit [P_history] images with a rigid sequential layout:
    chains head-first in consecutive slots, cells back-to-back in slot
    order, every version stamped.  [encode] re-encodes such an image as a
    [P_history_compressed] image — one full head record per chain run
    plus per-version deltas (varint time/SN deltas, a byte-range payload
    diff against the newer successor, implicit version pointers) — and
    [decode] reproduces the encoder's input byte for byte.

    The compressed image keeps the full 56-byte header (so header-only
    chain walks — history pointer, split time — need no decoding) with
    [slot_count = 0], so stamping sweeps and slot iteration no-op on it.
    Everything past the blob is implicitly zero, which lets the split
    path log the truncated image. *)

val encode : bytes -> bytes option
(** [encode plain] compresses a plain [P_history] image.  The result is
    trimmed to header + blob (the tail of the page is all zeros by
    construction).  [None] when the image is not a history page, does
    not have the sequential split-output layout, or would not shrink —
    the caller keeps the plain image. *)

val decode : bytes -> bytes
(** [decode b] rebuilds the plain [P_history] image, bit-for-bit equal
    to what [encode] consumed.  [b] must be a full page-size frame (as
    stored: the trimmed logged image is zero-filled back to page size by
    the Op_image redo and the buffer-pool write path); the output has
    [Bytes.length b].
    @raise Invalid_argument if [b] is not a compressed history page.
    @raise Imdb_util.Codec.Out_of_bounds on a corrupt blob. *)

val is_compressed : bytes -> bool

val encoded_size : bytes -> int
(** Meaningful bytes of a compressed image (header + blob); the rest of
    the frame is zero padding. *)
