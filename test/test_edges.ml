(* Edge cases: times before creation, oversized records, many tables,
   empty tables, batched drivers, and boundary keys. *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp

let test_as_of_before_creation () =
  let db, clock = fresh_db () in
  let before = Imdb_clock.Clock.last_issued clock in
  tick clock;
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "x")));
  (* scanning the table as of a time before any data: empty, not an error *)
  let rows = Db.as_of db before (fun txn -> Db.scan_rows_as_of db txn ~table:"t" ~ts:before) in
  Alcotest.(check int) "empty before creation" 0 (List.length rows);
  Alcotest.(check bool) "point read absent" true
    (Db.as_of db before (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 1)) = None);
  (* even at timestamp zero *)
  Alcotest.(check bool) "at time zero" true
    (Db.as_of db Ts.zero (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 1)) = None);
  Db.close db

let test_empty_table_operations () =
  let db, _clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  Db.exec db (fun txn ->
      Alcotest.(check int) "empty scan" 0 (List.length (Db.scan_rows db txn ~table:"t"));
      Alcotest.(check bool) "empty get" true
        (Db.get_row db txn ~table:"t" ~key:(S.V_int 1) = None);
      Alcotest.(check int) "empty history" 0
        (List.length (Db.history_rows db txn ~table:"t" ~key:(S.V_int 1))));
  (match Db.exec db (fun txn -> Db.delete_row db txn ~table:"t" ~key:(S.V_int 1)) with
  | exception Imdb_core.Table.No_such_key _ -> ()
  | () -> Alcotest.fail "delete of missing key accepted");
  Db.close db

let test_large_payloads () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  (* payloads a large fraction of a page: versions can barely share *)
  let big n = String.make 2000 (Char.chr (Char.code 'a' + (n mod 26))) in
  let stamps = ref [] in
  for v = 1 to 12 do
    tick clock;
    let ts = commit_write db (fun txn -> Db.upsert_row db txn ~table:"t" (row 1 (big v))) in
    stamps := (v, ts) :: !stamps
  done;
  check_row db ~table:"t" ~id:1 (Some (row 1 (big 12)));
  List.iter
    (fun (v, ts) ->
      Alcotest.(check bool)
        (Printf.sprintf "big version %d" v)
        true
        (Db.as_of db ts (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 1))
        = Some (row 1 (big v))))
    !stamps;
  Db.close db

let test_many_tables () =
  let db, clock = fresh_db () in
  for t = 1 to 20 do
    Db.create_table db ~name:(Printf.sprintf "t%02d" t) ~mode:Db.Immortal ~schema:kv_schema
  done;
  for round = 1 to 10 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           for t = 1 to 20 do
             Db.upsert_row db txn
               ~table:(Printf.sprintf "t%02d" t)
               (row round (Printf.sprintf "r%d" round))
           done))
  done;
  Alcotest.(check int) "22 tables" 20
    (List.length
       (List.filter
          (fun ti -> ti.Imdb_core.Catalog.ti_id >= 10)
          (Db.list_tables db)));
  let db = Db.crash_and_reopen ~clock db in
  for t = 1 to 20 do
    Db.exec db (fun txn ->
        Alcotest.(check int)
          (Printf.sprintf "t%02d rows" t)
          10
          (List.length (Db.scan_rows db txn ~table:(Printf.sprintf "t%02d" t))))
  done;
  Db.close db

let test_batched_driver () =
  let events = Imdb_workload.Moving_objects.generate ~seed:11 ~inserts:20 ~total:400 () in
  let db, clock = Imdb_workload.Driver.fresh_moving_objects ~mode:Db.Immortal () in
  let r =
    Imdb_workload.Driver.run_events_batched ~clock ~batch:25 db ~table:"MovingObjects"
      events
  in
  Alcotest.(check int) "all events" 400 r.Imdb_workload.Driver.rr_events;
  let _, n = Imdb_workload.Driver.timed_scan_current db ~table:"MovingObjects" in
  Alcotest.(check int) "20 objects" 20 n;
  (* 400 events / 25 per txn = 16 commits = 16 PTT inserts *)
  Alcotest.(check int) "batched PTT inserts" 16
    (Imdb_workload.Driver.counter r Imdb_obs.Metrics.ptt_inserts);
  Db.close db

let test_boundary_keys () =
  let db, clock = fresh_db () in
  let schema =
    S.make
      [ { S.col_name = "k"; col_type = S.T_string };
        { S.col_name = "v"; col_type = S.T_string } ]
  in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema;
  let keys = [ ""; "\x00"; "\xff"; "a"; "a\x00"; String.make 100 'z' ] in
  List.iteri
    (fun i k ->
      tick clock;
      ignore
        (commit_write db (fun txn ->
             Db.insert_row db txn ~table:"t" [ S.V_string k; S.V_string (string_of_int i) ])))
    keys;
  Db.exec db (fun txn ->
      Alcotest.(check int) "all boundary keys" (List.length keys)
        (List.length (Db.scan_rows db txn ~table:"t"));
      List.iteri
        (fun i k ->
          Alcotest.(check bool)
            (Printf.sprintf "key %d readable" i)
            true
            (Db.get_row db txn ~table:"t" ~key:(S.V_string k)
            = Some [ S.V_string k; S.V_string (string_of_int i) ]))
        keys);
  (* negative and extreme int keys sort correctly *)
  Db.create_table db ~name:"ints" ~mode:Db.Conventional ~schema:kv_schema;
  let ints = [ min_int; -1; 0; 1; max_int ] in
  List.iter
    (fun i ->
      Db.with_txn db (fun txn ->
          Db.insert_row db txn ~table:"ints" (row i "x")))
    ints;
  Db.exec db (fun txn ->
      let got =
        List.map
          (function S.V_int i :: _ -> i | _ -> 0)
          (Db.scan_rows db txn ~table:"ints")
      in
      Alcotest.(check (list int)) "int order" (List.sort compare ints) got);
  Db.close db

let suite =
  [
    Alcotest.test_case "AS OF before creation" `Quick test_as_of_before_creation;
    Alcotest.test_case "empty table" `Quick test_empty_table_operations;
    Alcotest.test_case "large payloads" `Quick test_large_payloads;
    Alcotest.test_case "many tables" `Quick test_many_tables;
    Alcotest.test_case "batched driver" `Quick test_batched_driver;
    Alcotest.test_case "boundary keys" `Quick test_boundary_keys;
  ]
