lib/clock/tid.ml: Fmt Hashtbl Int64
