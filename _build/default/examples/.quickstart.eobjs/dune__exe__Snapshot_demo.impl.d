examples/snapshot_demo.ml: Fmt Imdb_core Imdb_lock Printf
