(* Delta compression of historical page images (PR 4).

   A time split emits a [P_history] image with a rigid shape: chains are
   laid out head-first in consecutive slots, cells sit back-to-back from
   [Page.header_size] in slot order (the image is built by sequential
   inserts into a fresh page), every version is stamped, and within a
   chain each member's VP names the next slot.  That regularity is what
   this codec exploits: a chain run is stored as one full head record
   followed by per-version deltas — varint time/SN, a byte-range diff of
   the payload against its (newer) successor, flags, and an implicit VP.
   Only the last member of a run carries an explicit VP, because it may
   point outside the run (or into the older history page, flagged with
   [f_vp_in_history]).

   Compressed image layout:

   {v
      0..55  page header, copied from the plain image, with
             page_type := P_history_compressed, slot_count := 0
             (so stamping sweeps and slot iteration no-op),
             free_lower := end of blob, garbage := 0
     56  u16 n_versions   cells encoded
     58  u16 blob_len
     60  ... blob: chain blocks
   v}

   Block format (all varints unsigned LEB128):

   {v
     varint  run length L
     head:   u8 flags | varint64 raw ttime | varint sn
             | varint klen | key | varint plen | payload
     member (x L-1, each vs its predecessor):
             u8 flags | varint64 ttime delta (newer - older)
             | varint sn | varint prefix | varint suffix
             | varint midlen | mid bytes
     varint  VP spec for the last member: 0 = no_vp, else vp + 1
   v}

   [decode] is an exact inverse: re-inserting the reconstructed cells in
   slot order into a fresh page reproduces the encoder's input image
   byte for byte (same offsets, same slot array, same header).  [encode]
   is defensive: any image that does not have the sequential-layout
   shape, or that would not shrink, yields [None] and the caller keeps
   the plain page. *)

open Imdb_util
module P = Page
module R = Record

let meta_size = 4 (* n_versions + blob_len *)
let blob_start = P.header_size + meta_size

let raw_ttime r = Imdb_clock.Tid.encode_ttime_field r.R.ttime

let stamped r =
  match r.R.ttime with
  | Imdb_clock.Tid.Stamped _ -> true
  | Imdb_clock.Tid.Unstamped _ -> false

(* Cells must sit exactly where sequential re-insertion will put them,
   or decoding could not reproduce the image byte for byte. *)
let sequential_layout plain =
  let n = P.slot_count plain in
  let cursor = ref P.header_size in
  let ok = ref (P.garbage plain = 0) in
  for slot = 0 to n - 1 do
    if !ok then
      if (not (P.slot_live plain slot)) || P.slot_offset plain slot <> !cursor
      then ok := false
      else cursor := !cursor + 2 + P.cell_length plain slot
  done;
  !ok && P.free_lower plain = !cursor

let chains_to m r = r.R.vp = m && not (R.vp_in_history r)

let encode plain =
  if P.page_type plain <> P.P_history || not (sequential_layout plain) then
    None
  else begin
    let n = P.slot_count plain in
    let recs = Array.init n (fun slot -> R.read_in_page plain slot) in
    let w = Codec.Writer.create ~size:256 () in
    let s = ref 0 in
    while !s < n do
      (* maximal run of chain-linked, stamped, time-ordered cells *)
      let e = ref !s in
      let extending = ref true in
      while !extending && !e + 1 < n do
        let cur = recs.(!e) and nxt = recs.(!e + 1) in
        if
          chains_to (!e + 1) cur
          && String.equal cur.R.key nxt.R.key
          && stamped cur && stamped nxt
          && Int64.compare (raw_ttime cur) (raw_ttime nxt) >= 0
        then incr e
        else extending := false
      done;
      let head = recs.(!s) in
      Codec.Writer.varint w (!e - !s + 1);
      Codec.Writer.u8 w head.R.flags;
      Codec.Writer.varint64 w (raw_ttime head);
      Codec.Writer.varint w head.R.sn;
      Codec.Writer.varint w (String.length head.R.key);
      Codec.Writer.string w head.R.key;
      Codec.Writer.varint w (String.length head.R.payload);
      Codec.Writer.string w head.R.payload;
      for i = !s + 1 to !e do
        let prev = recs.(i - 1) and cur = recs.(i) in
        Codec.Writer.u8 w cur.R.flags;
        Codec.Writer.varint64 w (Int64.sub (raw_ttime prev) (raw_ttime cur));
        Codec.Writer.varint w cur.R.sn;
        let p = prev.R.payload and c = cur.R.payload in
        let lp = String.length p and lc = String.length c in
        let maxpre = min lp lc in
        let pre = ref 0 in
        while !pre < maxpre && p.[!pre] = c.[!pre] do
          incr pre
        done;
        let maxsuf = maxpre - !pre in
        let suf = ref 0 in
        while !suf < maxsuf && p.[lp - 1 - !suf] = c.[lc - 1 - !suf] do
          incr suf
        done;
        let midlen = lc - !pre - !suf in
        Codec.Writer.varint w !pre;
        Codec.Writer.varint w !suf;
        Codec.Writer.varint w midlen;
        Codec.Writer.string w (String.sub c !pre midlen)
      done;
      let last = recs.(!e) in
      Codec.Writer.varint w (if last.R.vp = R.no_vp then 0 else last.R.vp + 1);
      s := !e + 1
    done;
    let blob = Codec.Writer.contents w in
    let blen = Bytes.length blob in
    let total = blob_start + blen in
    if blen > 0xffff || total >= Bytes.length plain then None
    else begin
      let out = Bytes.create total in
      Bytes.blit plain 0 out 0 P.header_size;
      P.set_page_type out P.P_history_compressed;
      Codec.set_u16 out 18 0 (* slot_count *);
      Codec.set_u16 out 20 total (* free_lower *);
      Codec.set_u16 out 22 0 (* garbage *);
      Codec.set_u16 out P.header_size n;
      Codec.set_u16 out (P.header_size + 2) blen;
      Codec.set_bytes out blob_start blob;
      Some out
    end
  end

let is_compressed b = P.page_type b = P.P_history_compressed
let encoded_size b = blob_start + Codec.get_u16 b (P.header_size + 2)

let decode b =
  if not (is_compressed b) then
    invalid_arg "Vcompress.decode: not a compressed history page";
  let n = Codec.get_u16 b P.header_size in
  let blen = Codec.get_u16 b (P.header_size + 2) in
  let out = Bytes.create (Bytes.length b) in
  P.format out ~page_id:(P.page_id b) ~page_type:P.P_history
    ~table_id:(P.table_id b) ~level:(P.level b) ();
  (* restore the header fields [encode] carried over verbatim *)
  Codec.set_u32 out 0 (Codec.get_u32 b 0);
  P.set_lsn out (P.lsn b);
  P.set_flags out (P.flags b);
  P.set_history_pointer out (P.history_pointer b);
  P.set_split_time out (P.split_time b);
  P.set_next_page out (P.next_page b);
  P.set_prev_page out (P.prev_page b);
  let rd = Codec.Reader.create (Codec.get_bytes b blob_start blen) in
  let slot = ref 0 in
  while !slot < n do
    let len = Codec.Reader.varint rd in
    if len <= 0 || !slot + len > n then
      raise (Codec.Out_of_bounds "Vcompress.decode: bad chain length");
    let flags0 = Codec.Reader.u8 rd in
    let raw0 = Codec.Reader.varint64 rd in
    let sn0 = Codec.Reader.varint rd in
    let klen = Codec.Reader.varint rd in
    let key = Codec.Reader.string rd klen in
    let plen = Codec.Reader.varint rd in
    let payload0 = Codec.Reader.string rd plen in
    let members = Array.make len (flags0, raw0, sn0, payload0) in
    for i = 1 to len - 1 do
      let flags = Codec.Reader.u8 rd in
      let d = Codec.Reader.varint64 rd in
      let sn = Codec.Reader.varint rd in
      let _, prev_raw, _, prev_payload = members.(i - 1) in
      let pre = Codec.Reader.varint rd in
      let suf = Codec.Reader.varint rd in
      let midlen = Codec.Reader.varint rd in
      let mid = Codec.Reader.string rd midlen in
      let lp = String.length prev_payload in
      if pre + suf > lp then
        raise (Codec.Out_of_bounds "Vcompress.decode: bad payload diff");
      let payload =
        String.sub prev_payload 0 pre
        ^ mid
        ^ String.sub prev_payload (lp - suf) suf
      in
      members.(i) <- (flags, Int64.sub prev_raw d, sn, payload)
    done;
    let vpspec = Codec.Reader.varint rd in
    let last_vp = if vpspec = 0 then R.no_vp else vpspec - 1 in
    Array.iteri
      (fun i (flags, raw, sn, payload) ->
        let vp = if i = len - 1 then last_vp else !slot + i + 1 in
        let cell =
          R.encode
            {
              R.flags;
              key;
              payload;
              vp;
              ttime = Imdb_clock.Tid.decode_ttime_field raw;
              sn;
            }
        in
        ignore (P.insert out cell))
      members;
    slot := !slot + len
  done;
  out
