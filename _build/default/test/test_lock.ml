(* Lock manager: compatibility, upgrades, release, deadlock detection. *)

module L = Imdb_lock.Lock_manager
module Tid = Imdb_clock.Tid

let t1 = Tid.of_int 1
let t2 = Tid.of_int 2
let t3 = Tid.of_int 3
let rec_a = L.Record (1, "a")
let tbl = L.Table 1

let test_compatibility () =
  let lm = L.create () in
  (* S + S compatible *)
  Alcotest.(check bool) "S grant" true (L.acquire lm t1 rec_a L.S = L.Granted);
  Alcotest.(check bool) "S+S" true (L.acquire lm t2 rec_a L.S = L.Granted);
  (* X conflicts with S *)
  (match L.acquire lm t3 rec_a L.X with
  | L.Would_block blockers -> Alcotest.(check int) "two blockers" 2 (List.length blockers)
  | L.Granted -> Alcotest.fail "X granted over S");
  (* intention locks *)
  Alcotest.(check bool) "IS" true (L.acquire lm t1 tbl L.IS = L.Granted);
  Alcotest.(check bool) "IX+IS" true (L.acquire lm t2 tbl L.IX = L.Granted);
  (match L.acquire lm t3 tbl L.X with
  | L.Would_block _ -> ()
  | L.Granted -> Alcotest.fail "table X granted over intents")

let test_upgrade_and_reentry () =
  let lm = L.create () in
  Alcotest.(check bool) "S" true (L.acquire lm t1 rec_a L.S = L.Granted);
  (* self-upgrade S -> X with no other holders *)
  Alcotest.(check bool) "upgrade to X" true (L.acquire lm t1 rec_a L.X = L.Granted);
  Alcotest.(check bool) "holds X" true (L.holds lm t1 rec_a = Some L.X);
  (* re-request is idempotent *)
  Alcotest.(check bool) "reentrant" true (L.acquire lm t1 rec_a L.X = L.Granted);
  (* but another reader now blocks *)
  (match L.acquire lm t2 rec_a L.S with
  | L.Would_block _ -> ()
  | L.Granted -> Alcotest.fail "S granted over X")

let test_upgrade_blocked_by_other_reader () =
  let lm = L.create () in
  ignore (L.acquire lm t1 rec_a L.S);
  ignore (L.acquire lm t2 rec_a L.S);
  (match L.acquire lm t1 rec_a L.X with
  | L.Would_block blockers ->
      Alcotest.(check bool) "blocked by the other reader" true
        (List.exists (Tid.equal t2) blockers)
  | L.Granted -> Alcotest.fail "upgrade granted over concurrent reader")

let test_release_all () =
  let lm = L.create () in
  ignore (L.acquire lm t1 rec_a L.X);
  ignore (L.acquire lm t1 tbl L.IX);
  Alcotest.(check int) "holds two" 2 (List.length (L.held_by lm t1));
  L.release_all lm t1;
  Alcotest.(check int) "holds none" 0 (List.length (L.held_by lm t1));
  Alcotest.(check bool) "lock free again" true (L.acquire lm t2 rec_a L.X = L.Granted)

let test_deadlock_cycle () =
  let lm = L.create () in
  let rec_b = L.Record (1, "b") in
  ignore (L.acquire lm t1 rec_a L.X);
  ignore (L.acquire lm t2 rec_b L.X);
  (* t1 waits for b (held by t2) *)
  (match L.acquire lm t1 rec_b L.X with
  | L.Would_block _ -> ()
  | L.Granted -> Alcotest.fail "b granted to t1");
  (* t2 requesting a completes the cycle: deadlock *)
  (match L.acquire lm t2 rec_a L.X with
  | exception L.Deadlock victim ->
      Alcotest.(check bool) "victim is requester" true (Tid.equal victim t2)
  | _ -> Alcotest.fail "deadlock undetected");
  (* after releasing t1, t2 can proceed *)
  L.release_all lm t1;
  Alcotest.(check bool) "t2 proceeds after release" true
    (L.acquire lm t2 rec_a L.X = L.Granted)

let test_three_party_cycle () =
  let lm = L.create () in
  let r1 = L.Record (1, "r1") and r2 = L.Record (1, "r2") and r3 = L.Record (1, "r3") in
  ignore (L.acquire lm t1 r1 L.X);
  ignore (L.acquire lm t2 r2 L.X);
  ignore (L.acquire lm t3 r3 L.X);
  ignore (L.acquire lm t1 r2 L.X); (* t1 -> t2 *)
  ignore (L.acquire lm t2 r3 L.X); (* t2 -> t3 *)
  (match L.acquire lm t3 r1 L.X with
  | exception L.Deadlock _ -> ()
  | _ -> Alcotest.fail "three-party deadlock undetected")

let test_no_false_deadlock () =
  let lm = L.create () in
  let rec_b = L.Record (1, "b") in
  ignore (L.acquire lm t1 rec_a L.X);
  (* t2 waits on a; t3 waits on a too: a queue, not a cycle *)
  (match L.acquire lm t2 rec_a L.X with L.Would_block _ -> () | _ -> Alcotest.fail "?");
  (match L.acquire lm t3 rec_a L.X with L.Would_block _ -> () | _ -> Alcotest.fail "?");
  (* an unrelated grant must not be declared a deadlock *)
  Alcotest.(check bool) "independent resource fine" true
    (L.acquire lm t2 rec_b L.X = L.Granted)

let suite =
  [
    Alcotest.test_case "compatibility" `Quick test_compatibility;
    Alcotest.test_case "upgrade & reentry" `Quick test_upgrade_and_reentry;
    Alcotest.test_case "upgrade blocked" `Quick test_upgrade_blocked_by_other_reader;
    Alcotest.test_case "release all" `Quick test_release_all;
    Alcotest.test_case "deadlock cycle" `Quick test_deadlock_cycle;
    Alcotest.test_case "three-party cycle" `Quick test_three_party_cycle;
    Alcotest.test_case "no false deadlock" `Quick test_no_false_deadlock;
  ]
