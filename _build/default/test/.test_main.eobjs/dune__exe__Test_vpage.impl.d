test/test_vpage.ml: Alcotest Bytes Imdb_clock Imdb_storage Imdb_version Int64 List Option Printf QCheck QCheck_alcotest String
