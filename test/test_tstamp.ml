(* The lazy timestamping protocol: VTT reference counting, PTT
   persistence, resolution, and checkpoint-coupled garbage collection —
   the paper's Section 2.2 end to end. *)

open Helpers
module Vtt = Imdb_tstamp.Vtt
module Ptt = Imdb_tstamp.Ptt
module Tid = Imdb_clock.Tid
module Ts = Imdb_clock.Timestamp
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema

let ts ms = Ts.make ~ttime:(Int64.of_int ms) ~sn:0
let tid i = Tid.of_int i

let test_vtt_stages () =
  let v = Vtt.create () in
  (* stage I: begin *)
  Vtt.begin_txn v (tid 1);
  Alcotest.(check bool) "active" true (Vtt.resolve v (tid 1) = Some `Active);
  (* stage II: updates increment the refcount *)
  Vtt.incr_ref v (tid 1);
  Vtt.incr_ref v (tid 1);
  (* stage III: commit assigns the timestamp *)
  Vtt.commit v (tid 1) ~ts:(ts 100) ~persistent:true ~end_of_log:50L;
  Alcotest.(check bool) "committed" true (Vtt.resolve v (tid 1) = Some (`Committed (ts 100)));
  (* stage IV: stamping drains the refcount; the last one records the LSN *)
  Vtt.note_stamped v (tid 1) ~end_of_log:60L;
  Alcotest.(check (list (pair (module struct
    type t = Tid.t

    let pp = Tid.pp
    let equal = Tid.equal
  end) bool))) "not collectable while refs remain" []
    (Vtt.gc_candidates v ~redo_scan_start:1000L);
  Vtt.note_stamped v (tid 1) ~end_of_log:70L;
  (* collectable only once the redo scan start passes the stamping *)
  Alcotest.(check int) "not yet durable" 0
    (List.length (Vtt.gc_candidates v ~redo_scan_start:70L));
  Alcotest.(check int) "durable now" 1
    (List.length (Vtt.gc_candidates v ~redo_scan_start:71L))

let test_vtt_cached_entries_never_gc () =
  let v = Vtt.create () in
  Vtt.cache_from_ptt v (tid 9) (ts 500);
  Alcotest.(check bool) "resolves" true (Vtt.resolve v (tid 9) = Some (`Committed (ts 500)));
  Alcotest.(check int) "undefined refcount blocks GC" 0
    (List.length (Vtt.gc_candidates v ~redo_scan_start:Int64.max_int))

let test_vtt_snapshot_drop () =
  let v = Vtt.create () in
  Vtt.begin_txn v (tid 2);
  Vtt.incr_ref v (tid 2);
  Vtt.commit v (tid 2) ~ts:(ts 10) ~persistent:false ~end_of_log:5L;
  Vtt.note_stamped v (tid 2) ~end_of_log:6L;
  Vtt.drop_if_drained_snapshot v (tid 2);
  Alcotest.(check bool) "snapshot entry gone" true (Vtt.resolve v (tid 2) = None)

let test_ptt_roundtrip () =
  let db, _clock = fresh_db () in
  let eng = Db.engine db in
  let ptt = E.ptt_exn eng in
  let txn = Db.begin_txn db in
  E.with_txn eng txn (fun () ->
      for i = 1 to 50 do
        Ptt.insert ptt (tid (1000 + i)) (ts (i * 20))
      done);
  ignore (Db.commit db txn);
  Alcotest.(check bool) "lookup hit" true (Ptt.lookup ptt (tid 1025) = Some (ts 500));
  Alcotest.(check bool) "lookup miss" true (Ptt.lookup ptt (tid 999) = None);
  Alcotest.(check bool) "min tid" true (Ptt.min_tid ptt <> None);
  (* deletion (GC path) *)
  ignore (Ptt.delete ptt (tid 1025));
  Alcotest.(check bool) "deleted" true (Ptt.lookup ptt (tid 1025) = None);
  Db.close db

(* End-to-end: unstamped committed versions resolve through the PTT after
   the VTT is lost (clean reopen), and GC keeps the PTT bounded. *)
let test_resolution_after_reopen () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for i = 1 to 10 do
    tick clock;
    ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row i "x")))
  done;
  (* crash: pages flushed during reopen carry TIDs where stamping hadn't
     happened; the VTT is gone *)
  let db = Db.crash_and_reopen ~clock db in
  let eng = Db.engine db in
  (* reading re-stamps via VTT (rebuilt at recovery) or PTT *)
  check_row db ~table:"t" ~id:5 (Some (row 5 "x"));
  Alcotest.(check bool) "PTT still holds mappings" true (Imdb_tstamp.Ptt.count (E.ptt_exn eng) > 0);
  Db.close db

let test_gc_bounds_ptt () =
  let config = { E.default_config with E.auto_checkpoint_every = 50 } in
  let db, clock = fresh_db ~config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  (* heavy update traffic on few keys: each update stamps the predecessor,
     draining refcounts; checkpoints advance the redo scan point *)
  for i = 1 to 5 do
    tick clock;
    ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row i "v")))
  done;
  for u = 1 to 600 do
    tick clock;
    let i = 1 + (u mod 5) in
    ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row i "w")))
  done;
  let eng = Db.engine db in
  let remaining = Imdb_tstamp.Ptt.count (E.ptt_exn eng) in
  Alcotest.(check bool)
    (Printf.sprintf "PTT bounded by GC (%d entries after 605 commits)" remaining)
    true (remaining < 300);
  (* correctness is untouched: all data still reads fine *)
  Db.exec db (fun txn ->
      Alcotest.(check int) "five rows" 5 (List.length (Db.scan_rows db txn ~table:"t")));
  Db.close db

let test_no_gc_without_checkpoints () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for i = 1 to 5 do
    tick clock;
    ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row i "v")))
  done;
  for u = 1 to 200 do
    tick clock;
    ignore
      (commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row (1 + (u mod 5)) "w")))
  done;
  let eng = Db.engine db in
  Alcotest.(check int) "PTT grows without checkpoints" 205
    (Imdb_tstamp.Ptt.count (E.ptt_exn eng));
  Db.close db

(* Eager mode: every version stamped (and logged) by commit; no PTT. *)
let test_eager_mode () =
  let config = { E.default_config with E.timestamping = E.Eager_stamping } in
  let db, clock = fresh_db ~config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  let t1 = commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "a")) in
  tick clock;
  ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row 1 "b")));
  let eng = Db.engine db in
  Alcotest.(check int) "no PTT entries in eager mode" 0
    (Imdb_tstamp.Ptt.count (E.ptt_exn eng));
  (* as-of still works: versions were stamped eagerly *)
  Alcotest.(check bool) "as-of under eager" true
    (Db.as_of db t1 (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 1))
    = Some (row 1 "a"));
  (* and survives a crash (stamping was logged) *)
  let db = Db.crash_and_reopen ~clock db in
  Alcotest.(check bool) "as-of after crash" true
    (Db.as_of db t1 (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 1))
    = Some (row 1 "a"));
  check_row db ~table:"t" ~id:1 (Some (row 1 "b"));
  Db.close db

let suite =
  [
    Alcotest.test_case "VTT four stages" `Quick test_vtt_stages;
    Alcotest.test_case "VTT cached entries never GC" `Quick test_vtt_cached_entries_never_gc;
    Alcotest.test_case "VTT snapshot drop" `Quick test_vtt_snapshot_drop;
    Alcotest.test_case "PTT roundtrip" `Quick test_ptt_roundtrip;
    Alcotest.test_case "resolution after reopen" `Quick test_resolution_after_reopen;
    Alcotest.test_case "GC bounds the PTT" `Quick test_gc_bounds_ptt;
    Alcotest.test_case "no GC without checkpoints" `Quick test_no_gc_without_checkpoints;
    Alcotest.test_case "eager mode" `Quick test_eager_mode;
  ]
