test/test_backup.ml: Alcotest Helpers Imdb_clock Imdb_core List Printf
