lib/clock/timestamp.ml: Fmt Imdb_util Int Int64 Printf String
