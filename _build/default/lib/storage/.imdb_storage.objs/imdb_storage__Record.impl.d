lib/storage/record.ml: Bytes Codec Fmt Imdb_clock Imdb_util Page String
