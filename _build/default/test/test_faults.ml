(* Fault injection: crashes at exact disk writes (including torn page
   writes) and recovery from each.  Uses the failure-injecting disk
   wrapper and an exhaustive sweep over injection points. *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module Disk = Imdb_storage.Disk
module Wal = Imdb_wal.Wal

let kv_schema = Helpers.kv_schema
let row = Helpers.row

(* Run [workload] against a database whose disk fails (optionally tearing
   the in-flight page) after [n] page writes; then lift the failure plan
   and recover.  Returns the recovered database. *)
let run_with_injection ~tear ~fail_after workload =
  let plan = Disk.never_fail () in
  let disk = Disk.failing ~plan (Disk.in_memory ~page_size:8192 ()) in
  let log_device = Wal.Device.in_memory () in
  let clock = Imdb_clock.Clock.create_logical () in
  (* small pool + frequent checkpoints: plenty of page writes to target *)
  let config = { E.default_config with E.pool_capacity = 8; E.auto_checkpoint_every = 20 } in
  let db = Db.open_devices ~config ~clock ~disk ~log_device () in
  plan.Disk.writes_until_failure <- fail_after;
  plan.Disk.tear_on_failure <- tear;
  let crashed =
    try
      workload db clock;
      false
    with Disk.Io_failure _ -> true
  in
  (* lift the injection and recover over the same devices *)
  plan.Disk.writes_until_failure <- -1;
  plan.Disk.tear_on_failure <- false;
  Imdb_wal.Wal.crash_volatile (Db.engine db).E.wal;
  Imdb_buffer.Buffer_pool.drop_all (Db.engine db).E.pool;
  let db = Db.open_devices ~config ~clock ~disk ~log_device () in
  (db, clock, crashed)

let standard_workload db clock =
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for u = 1 to 120 do
    Imdb_clock.Clock.advance clock 20L;
    Db.with_txn db (fun txn ->
        Db.upsert_row db txn ~table:"t" (row (u mod 6) (Printf.sprintf "v%d" u)))
  done

(* After recovery, whatever committed must be present and internally
   consistent: each key's value is the latest of its committed updates,
   and history per key is a prefix of the update sequence. *)
let validate db =
  Db.exec db (fun txn ->
      match Db.list_tables db with
      | [] -> () (* crashed before the DDL committed: fine *)
      | _ ->
          let rows = Db.scan_rows db txn ~table:"t" in
          List.iter
            (fun r ->
              match r with
              | [ S.V_int k; S.V_string v ] ->
                  (* value "vU" must satisfy U mod 6 = k *)
                  let u = int_of_string (String.sub v 1 (String.length v - 1)) in
                  if u mod 6 <> k then
                    Alcotest.failf "key %d has foreign value %s" k v
              | _ -> Alcotest.fail "bad row shape")
            rows)

let test_injection_sweep () =
  (* every 7th write as the failure point, with and without tearing *)
  let crashes = ref 0 in
  let points = [ 1; 3; 8; 15; 22; 29; 36; 43; 50; 64; 78; 92 ] in
  List.iter
    (fun fail_after ->
      List.iter
        (fun tear ->
          let db, _clock, crashed =
            run_with_injection ~tear ~fail_after standard_workload
          in
          if crashed then incr crashes;
          validate db;
          Db.close db)
        [ false; true ])
    points;
  (* the sweep must actually have hit the workload *)
  Alcotest.(check bool)
    (Printf.sprintf "injections fired (%d crashes)" !crashes)
    true (!crashes > 0)

let test_work_continues_after_recovery () =
  let db, clock, crashed = run_with_injection ~tear:true ~fail_after:10 standard_workload in
  Alcotest.(check bool) "crashed as planned" true crashed;
  (* the engine accepts new transactions post-recovery *)
  Imdb_clock.Clock.advance clock 20L;
  Db.with_txn db (fun txn -> Db.upsert_row db txn ~table:"t" (row 0 "post-recovery"));
  Db.exec db (fun txn ->
      Alcotest.(check bool) "new write visible" true
        (Db.get_row db txn ~table:"t" ~key:(S.V_int 0) = Some (row 0 "post-recovery")));
  Db.close db

let test_torn_meta_page () =
  (* tear the write of page 0 specifically: recovery falls back to a full
     log scan (checkpoint pointer unreadable) and still comes up *)
  let plan = Disk.never_fail () in
  let disk = Disk.failing ~plan (Disk.in_memory ~page_size:8192 ()) in
  let log_device = Wal.Device.in_memory () in
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_devices ~clock ~disk ~log_device () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  Imdb_clock.Clock.advance clock 20L;
  Db.with_txn db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "x"));
  (* force a checkpoint whose meta-page write tears *)
  plan.Disk.writes_until_failure <- 0;
  plan.Disk.tear_on_failure <- true;
  (match Db.checkpoint db with
  | () -> ()
  | exception Disk.Io_failure _ -> ());
  plan.Disk.writes_until_failure <- -1;
  plan.Disk.tear_on_failure <- false;
  Imdb_wal.Wal.crash_volatile (Db.engine db).E.wal;
  Imdb_buffer.Buffer_pool.drop_all (Db.engine db).E.pool;
  let db2 = Db.open_devices ~clock ~disk ~log_device () in
  Db.exec db2 (fun txn ->
      Alcotest.(check bool) "data survived torn meta" true
        (Db.get_row db2 txn ~table:"t" ~key:(S.V_int 1) = Some (row 1 "x")));
  Db.close db2

let suite =
  [
    Alcotest.test_case "injection sweep" `Slow test_injection_sweep;
    Alcotest.test_case "work continues after recovery" `Quick
      test_work_continues_after_recovery;
    Alcotest.test_case "torn meta page" `Quick test_torn_meta_page;
  ]
