(** The persistent timestamp table (paper Section 2.2): a disk-resident
    B-tree mapping TID -> commit timestamp, ordered by TID so that the
    live entries cluster at the tail even when crashes leave a residue of
    uncollectable ones.

    The commit-path insert is the single logged write that lazy
    timestamping performs per transaction; deletes are garbage
    collection, redo-only. *)

type t = {
  tree : Imdb_btree.Btree.t;
  mutable metrics : Imdb_obs.Metrics.t;
  mutable tracer : Imdb_obs.Tracer.t;
}

val create :
  ?metrics:Imdb_obs.Metrics.t ->
  ?tracer:Imdb_obs.Tracer.t ->
  pool:Imdb_buffer.Buffer_pool.t ->
  io:Imdb_btree.Btree.io ->
  table_id:int ->
  unit ->
  t

val attach :
  ?metrics:Imdb_obs.Metrics.t ->
  ?tracer:Imdb_obs.Tracer.t ->
  pool:Imdb_buffer.Buffer_pool.t ->
  io:Imdb_btree.Btree.io ->
  root:int ->
  table_id:int ->
  unit ->
  t

val root : t -> int

val insert : t -> Imdb_clock.Tid.t -> Imdb_clock.Timestamp.t -> unit
(** The commit-path write: one logged B-tree insert per transaction. *)

val lookup : t -> Imdb_clock.Tid.t -> Imdb_clock.Timestamp.t option
val delete : t -> Imdb_clock.Tid.t -> bool

val delete_batch : t -> Imdb_clock.Tid.t list -> int
(** One GC sweep's deletions as a single batched B-tree pass (TIDs
    cluster, so the usual cost is one descent).  Counts every requested
    TID in [ptt.deletes], like per-entry {!delete} calls would; returns
    how many actually existed. *)

val count : t -> int
val iter : t -> (Imdb_clock.Tid.t -> Imdb_clock.Timestamp.t -> unit) -> unit

val min_tid : t -> Imdb_clock.Tid.t option
(** The oldest TID still recorded — a measure of how well GC keeps up. *)

(**/**)

val key_of_tid : Imdb_clock.Tid.t -> string
val tid_of_key : string -> Imdb_clock.Tid.t
