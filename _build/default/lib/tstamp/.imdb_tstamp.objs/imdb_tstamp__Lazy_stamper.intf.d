lib/tstamp/lazy_stamper.mli: Imdb_clock Imdb_version Ptt Vtt
