(* Transaction timestamps.

   Following the paper (Section 2.1), a timestamp is the concatenation of
   an 8-byte clock time [ttime] with 20 ms resolution and a 4-byte sequence
   number [sn] that distinguishes up to 2^32 transactions within one 20 ms
   quantum.  [ttime] is milliseconds since the Unix epoch, always a
   multiple of [quantum_ms].  Ordering is lexicographic on (ttime, sn) and
   agrees with transaction serialization order because timestamps are
   issued at commit by a monotonic clock. *)

type t = { ttime : int64; sn : int }

let quantum_ms = 20L
let on_disk_size = 12 (* 8-byte ttime + 4-byte sn *)

let make ~ttime ~sn =
  if sn < 0 || sn > 0xFFFFFFFF then invalid_arg "Timestamp.make: sn out of range";
  if Int64.compare ttime 0L < 0 then invalid_arg "Timestamp.make: negative ttime";
  { ttime; sn }

let ttime t = t.ttime
let sn t = t.sn

let zero = { ttime = 0L; sn = 0 }

(* End time of the current version of a record: "still alive". *)
let infinity = { ttime = Int64.max_int; sn = 0xFFFFFFFF }

let compare a b =
  match Int64.compare a.ttime b.ttime with 0 -> Int.compare a.sn b.sn | c -> c

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Local opens of [Infix] give readable comparisons without shadowing the
   integer operators in this module. *)
module Infix = struct
  let ( <= ) a b = compare a b <= 0
  let ( < ) a b = compare a b < 0
  let ( >= ) a b = compare a b >= 0
  let ( > ) a b = compare a b > 0
  let ( = ) a b = compare a b = 0
end

let succ t =
  if t.sn < 0xFFFFFFFF then { t with sn = t.sn + 1 }
  else { ttime = Int64.add t.ttime quantum_ms; sn = 0 }

let quantize ms = Int64.mul (Int64.div ms quantum_ms) quantum_ms

let write b pos t =
  Imdb_util.Codec.set_i64 b pos t.ttime;
  Imdb_util.Codec.set_u32 b (pos + 8) t.sn

let read b pos =
  let ttime = Imdb_util.Codec.get_i64 b pos in
  let sn = Imdb_util.Codec.get_u32 b (pos + 8) in
  { ttime; sn }

(* --- Civil-time formatting ------------------------------------------- *)

(* Days-from-civil / civil-from-days (Howard Hinnant's algorithms); we
   avoid Unix.gmtime so that formatting works identically on all
   platforms and needs no C bindings. *)

let days_from_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

(* Milliseconds since epoch for a civil datetime (UTC). *)
let ms_of_datetime ~y ~mo ~d ~h ~mi ~s ~ms =
  let days = days_from_civil ~y ~m:mo ~d in
  Int64.add
    (Int64.mul (Int64.of_int days) 86_400_000L)
    (Int64.of_int ((((h * 60) + mi) * 60 + s) * 1000 + ms))

let datetime_of_ms ms =
  let day_ms = 86_400_000L in
  let days = Int64.to_int (Int64.div ms day_ms) in
  let rem = Int64.to_int (Int64.rem ms day_ms) in
  let days, rem = if rem < 0 then (days - 1, rem + 86_400_000) else (days, rem) in
  let y, mo, d = civil_from_days days in
  let msec = rem mod 1000 in
  let rem = rem / 1000 in
  let s = rem mod 60 in
  let rem = rem / 60 in
  let mi = rem mod 60 in
  let h = rem / 60 in
  (y, mo, d, h, mi, s, msec)

let pp ppf t =
  let y, mo, d, h, mi, s, ms = datetime_of_ms t.ttime in
  Fmt.pf ppf "%04d-%02d-%02d %02d:%02d:%02d.%03d+%d" y mo d h mi s ms t.sn

let to_string t = Fmt.str "%a" pp t

(* Parse "YYYY-MM-DD HH:MM:SS[.mmm][+sn]" (the AS OF clause syntax) or a
   bare "YYYY-MM-DD".  Raises [Failure] on malformed input. *)
let of_string str =
  let fail () = failwith (Printf.sprintf "Timestamp.of_string: cannot parse %S" str) in
  let str = String.trim str in
  let date, time =
    match String.index_opt str ' ' with
    | Some i ->
        ( String.sub str 0 i,
          String.sub str (i + 1) (String.length str - i - 1) )
    | None -> (str, "00:00:00")
  in
  let y, mo, d =
    match String.split_on_char '-' date with
    | [ y; mo; d ] -> (
        try (int_of_string y, int_of_string mo, int_of_string d)
        with _ -> fail ())
    | _ -> fail ()
  in
  let time, sn =
    match String.index_opt time '+' with
    | Some i ->
        ( String.sub time 0 i,
          (try int_of_string (String.sub time (i + 1) (String.length time - i - 1))
           with _ -> fail ()) )
    | None -> (time, 0)
  in
  let time, ms =
    match String.index_opt time '.' with
    | Some i ->
        let frac = String.sub time (i + 1) (String.length time - i - 1) in
        let frac = if String.length frac > 3 then String.sub frac 0 3 else frac in
        let scale = match String.length frac with 1 -> 100 | 2 -> 10 | _ -> 1 in
        ( String.sub time 0 i,
          (try int_of_string frac * scale with _ -> fail ()) )
    | None -> (time, 0)
  in
  let h, mi, s =
    match String.split_on_char ':' time with
    | [ h; mi; s ] -> (
        try (int_of_string h, int_of_string mi, int_of_string s)
        with _ -> fail ())
    | [ h; mi ] -> (
        try (int_of_string h, int_of_string mi, 0) with _ -> fail ())
    | _ -> fail ()
  in
  if mo < 1 || mo > 12 || d < 1 || d > 31 || h > 23 || mi > 59 || s > 60 then fail ();
  { ttime = ms_of_datetime ~y ~mo ~d ~h ~mi ~s ~ms; sn }
