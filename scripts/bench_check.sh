#!/bin/sh
# Compare a bench run's BENCH_*.json against the checked-in baselines.
#
#   scripts/bench_check.sh RESULTS_DIR [BASELINE_DIR] [TOLERANCE_PCT]
#
# The bench harness emits only deterministic quantities into these files
# (logical work counters, page/row counts — never wall time), and the
# workloads are seeded and run under the logical clock, so on the same
# scale the numbers should reproduce exactly.  The tolerance (default 5%)
# absorbs intentional small shifts (e.g. a log-format change moving
# log.bytes); larger drifts fail the check and should be triaged: either
# a real regression, or a deliberate change that warrants regenerating
# the baselines with
#
#   dune exec bench/main.exe -- --quick --json RESULTS_DIR \
#     fig5 fig6 hotpath parscan ablations compress traceov ingest mtbench \
#     monitorov
#   cp RESULTS_DIR/BENCH_fig5.json RESULTS_DIR/BENCH_fig6.json \
#      RESULTS_DIR/BENCH_hotpath.json RESULTS_DIR/BENCH_parscan.json \
#      RESULTS_DIR/BENCH_ablations.json RESULTS_DIR/BENCH_compress.json \
#      RESULTS_DIR/BENCH_traceov.json RESULTS_DIR/BENCH_ingest.json \
#      RESULTS_DIR/BENCH_mtbench.json RESULTS_DIR/BENCH_monitorov.json \
#      bench/baselines/
#
# (The mtbench baseline is kept free of the wall-clock percentile
#  summaries — lock_wait_us / group_commit_batch — the live JSON also
#  carries; the walker below only checks keys present in the baseline.)
#
# Exit status: 0 = within tolerance, 1 = drift/missing file, 2 = usage.

set -eu

results_dir=${1:?usage: bench_check.sh RESULTS_DIR [BASELINE_DIR] [TOLERANCE_PCT]}
baseline_dir=${2:-bench/baselines}
tolerance=${3:-5}

status=0
for baseline in "$baseline_dir"/BENCH_*.json; do
  name=$(basename "$baseline")
  result="$results_dir/$name"
  if [ ! -f "$result" ]; then
    echo "MISSING  $name: bench run did not produce it" >&2
    status=1
    continue
  fi
  if python3 - "$baseline" "$result" "$tolerance" <<'PY'
import json, sys

baseline_path, result_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = json.load(f)
with open(result_path) as f:
    result = json.load(f)

failures = []

def walk(path, base, got):
    if isinstance(base, dict):
        if not isinstance(got, dict):
            failures.append(f"{path}: shape changed")
            return
        for k, v in base.items():
            if k not in got:
                failures.append(f"{path}.{k}: missing from result")
            else:
                walk(f"{path}.{k}", v, got[k])
    elif isinstance(base, list):
        if not isinstance(got, list) or len(base) != len(got):
            failures.append(f"{path}: length {len(base)} -> "
                            f"{len(got) if isinstance(got, list) else '?'}")
            return
        for i, (b, g) in enumerate(zip(base, got)):
            walk(f"{path}[{i}]", b, g)
    elif isinstance(base, bool) or base is None or isinstance(base, str):
        if base != got:
            failures.append(f"{path}: {base!r} -> {got!r}")
    else:  # number: tolerance applies
        allowed = max(abs(base) * tol / 100.0, 2.0)
        if abs(got - base) > allowed:
            failures.append(f"{path}: {base} -> {got} "
                            f"(> {tol}% / abs 2 tolerance)")

walk("$", baseline, result)
for f in failures[:40]:
    print(f"  {f}", file=sys.stderr)
sys.exit(1 if failures else 0)
PY
  then
    echo "OK       $name (tolerance ${tolerance}%)"
  else
    echo "DRIFT    $name exceeded tolerance ${tolerance}%" >&2
    status=1
  fi
done

exit $status
