(* Time-split B-tree index (Lomet & Salzberg, SIGMOD '89) — the temporal
   index the paper names as its most important next step (Section 7.2):
   "once we implement the TSB-tree ... we will index directly to the
   appropriate page, avoiding the cost of searching down the page time
   split chain".

   We index the *historical* pages produced by data-page time splits.
   Current pages are reached through the table's key router, exactly as
   Immortal DB keeps using the B-tree for current data; an AS OF query
   first probes the current page, and only when the requested time
   precedes the page's split time does it consult this index — which then
   lands on the right historical page in O(depth) instead of walking the
   whole chain.

   Every indexed page owns a rectangle in (key × time) space:

       [key_low, key_high)  ×  [t_low, t_high)

   with key_high = None meaning +inf.  Rectangles of distinct history
   pages are disjoint by construction (time splits partition time within
   a key range; key splits partition keys).  Index nodes split like TSB
   index nodes: by time when the node spans multiple time boundaries
   (entries straddling the split are posted redundantly to both halves,
   the TSB-tree's signature redundancy), otherwise by key.

   All structure modifications are redo-only logged, like other splits. *)

open Imdb_util
module P = Imdb_storage.Page
module Ts = Imdb_clock.Timestamp

type rect = {
  key_low : string;
  key_high : string option; (* None = +inf *)
  t_low : Ts.t;
  t_high : Ts.t; (* Ts.infinity = open *)
}

let rect_contains r ~key ~ts =
  String.compare key r.key_low >= 0
  && (match r.key_high with None -> true | Some h -> String.compare key h < 0)
  && Ts.compare ts r.t_low >= 0
  && Ts.compare ts r.t_high < 0

let rect_key_overlaps r ~low ~high =
  (* [low, high) intersects r's key range *)
  (match r.key_high with None -> true | Some rh -> String.compare low rh < 0)
  && match high with None -> true | Some h -> String.compare r.key_low h < 0

let rect_time_overlaps r ~t0 ~t1 =
  Ts.compare r.t_low t1 < 0 && Ts.compare t0 r.t_high < 0

let pp_rect ppf r =
  Fmt.pf ppf "[%S,%s) x [%a,%s)" r.key_low
    (match r.key_high with None -> "+inf" | Some h -> Printf.sprintf "%S" h)
    Ts.pp r.t_low
    (if Ts.equal r.t_high Ts.infinity then "+inf" else Ts.to_string r.t_high)

type entry = { rect : rect; child : int }

(* --- entry codec --------------------------------------------------------- *)

let encode_entry e =
  let w = Codec.Writer.create ~size:64 () in
  Codec.Writer.lstring w e.rect.key_low;
  (match e.rect.key_high with
  | None -> Codec.Writer.u8 w 0
  | Some h ->
      Codec.Writer.u8 w 1;
      Codec.Writer.lstring w h);
  let ts_buf = Bytes.create Ts.on_disk_size in
  Ts.write ts_buf 0 e.rect.t_low;
  Codec.Writer.bytes w ts_buf;
  Ts.write ts_buf 0 e.rect.t_high;
  Codec.Writer.bytes w ts_buf;
  Codec.Writer.u32 w e.child;
  Codec.Writer.contents w

let decode_entry body =
  let r = Codec.Reader.create body in
  let key_low = Codec.Reader.lstring r in
  let key_high = if Codec.Reader.u8 r = 1 then Some (Codec.Reader.lstring r) else None in
  let t_low = Ts.read (Codec.Reader.bytes r Ts.on_disk_size) 0 in
  let t_high = Ts.read (Codec.Reader.bytes r Ts.on_disk_size) 0 in
  let child = Codec.Reader.u32 r in
  { rect = { key_low; key_high; t_low; t_high }; child }

(* --- tree ---------------------------------------------------------------- *)

type io = {
  exec : Imdb_buffer.Buffer_pool.frame -> Imdb_wal.Log_record.page_op -> unit;
      (** redo-only log + apply + mark dirty *)
  alloc : level:int -> int; (** fresh P_tsb_index page *)
}

type t = { pool : Imdb_buffer.Buffer_pool.t; io : io; root : int; table_id : int }

let attach ~pool ~io ~root ~table_id = { pool; io; root; table_id }

let create ~pool ~io ~table_id =
  let root = io.alloc ~level:0 in
  attach ~pool ~io ~root ~table_id

let root t = t.root
let is_leaf page = P.level page = 0

let node_entries page =
  P.fold_live page ~init:[] ~f:(fun acc slot -> decode_entry (P.read_cell page slot) :: acc)

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

(* The historical page whose rectangle contains (key, ts), if any. *)
let find t ~key ~ts =
  let rec go page_id =
    Imdb_buffer.Buffer_pool.with_page t.pool page_id (fun fr ->
        let page = Imdb_buffer.Buffer_pool.bytes fr in
        let hit =
          List.find_opt (fun e -> rect_contains e.rect ~key ~ts) (node_entries page)
        in
        match hit with
        | None -> None
        | Some e -> if is_leaf page then Some e.child else go e.child)
  in
  go t.root

(* All indexed pages whose rectangle intersects the key range
   [low, high) at time [ts] — the page set an AS OF range scan visits. *)
let find_range t ~low ~high ~ts =
  let results = ref [] in
  let rec go page_id =
    Imdb_buffer.Buffer_pool.with_page t.pool page_id (fun fr ->
        let page = Imdb_buffer.Buffer_pool.bytes fr in
        List.iter
          (fun e ->
            if
              rect_key_overlaps e.rect ~low ~high
              && Ts.compare ts e.rect.t_low >= 0
              && Ts.compare ts e.rect.t_high < 0
            then if is_leaf page then results := e.child :: !results else go e.child)
          (node_entries page))
  in
  go t.root;
  List.sort_uniq compare !results

(* ------------------------------------------------------------------ *)
(* Insertion with node splitting                                       *)
(* ------------------------------------------------------------------ *)

(* Split an overfull index node.

   Leaf index nodes hold entries for *historical data pages*, which are
   immutable: entries straddling the split line may safely be posted
   redundantly to both halves (the TSB-tree's signature redundancy).

   Internal nodes hold entries for *index nodes*, which are mutable (they
   split later); a redundantly posted child would be reachable from two
   parents and a later split of it could only update one of them.  So
   internal splits must choose a *clean guillotine line* that no child
   rectangle strictly spans.  Such a line always exists: an internal
   node's children arise from recursive guillotine splits of its region,
   whose first cut spans the whole region and is never crossed by later
   descendants.

   Prefers time splits (migrating old entries away) over key splits, as
   the TSB-tree does.  Returns (left_rect_hint, right_rect_hint, right_id). *)
let split_node t fr ~node_rect =
  let page = Imdb_buffer.Buffer_pool.bytes fr in
  let page_id = P.page_id page in
  let lvl = P.level page in
  let entries = node_entries page in
  let right_id = t.io.alloc ~level:lvl in
  let clean_required = lvl > 0 in
  let time_spans b e =
    Ts.compare e.rect.t_low b < 0 && Ts.compare e.rect.t_high b > 0
  in
  let key_spans b e =
    String.compare e.rect.key_low b < 0
    && match e.rect.key_high with None -> true | Some h -> String.compare h b > 0
  in
  let time_bounds =
    List.concat_map (fun e -> [ e.rect.t_low; e.rect.t_high ]) entries
    |> List.filter (fun b ->
           Ts.compare b node_rect.t_low > 0 && Ts.compare b node_rect.t_high < 0)
    |> List.filter (fun b ->
           (not clean_required) || not (List.exists (time_spans b) entries))
    |> List.sort_uniq Ts.compare
  in
  let split =
    match time_bounds with
    | _ :: _ ->
        let arr = Array.of_list time_bounds in
        let tmid = arr.(Array.length arr / 2) in
        `Time tmid
    | [] ->
        let key_bounds =
          List.map (fun e -> e.rect.key_low) entries
          |> List.filter (fun k -> String.compare k node_rect.key_low > 0)
          |> List.filter (fun b ->
                 (not clean_required) || not (List.exists (key_spans b) entries))
          |> List.sort_uniq String.compare
        in
        (match key_bounds with
        | [] -> `Stuck
        | _ ->
            let arr = Array.of_list key_bounds in
            `Key arr.(Array.length arr / 2))
  in
  match split with
  | `Stuck ->
      failwith
        (Printf.sprintf "Tsb: index node %d cannot be split (degenerate region)" page_id)
  | `Time tmid ->
      let left_es =
        List.filter (fun e -> Ts.compare e.rect.t_low tmid < 0) entries
      in
      let right_es =
        List.filter (fun e -> Ts.compare e.rect.t_high tmid > 0) entries
      in
      let rebuild img id es =
        P.format img ~page_id:id ~page_type:P.P_tsb_index ~table_id:t.table_id ~level:lvl ();
        List.iter (fun e -> ignore (P.insert img (encode_entry e))) es
      in
      let left_img = Bytes.copy page in
      rebuild left_img page_id left_es;
      let right_fr = Imdb_buffer.Buffer_pool.pin t.pool right_id in
      Fun.protect
        ~finally:(fun () -> Imdb_buffer.Buffer_pool.unpin t.pool right_fr)
        (fun () ->
          let right_img = Bytes.copy (Imdb_buffer.Buffer_pool.bytes right_fr) in
          rebuild right_img right_id right_es;
          t.io.exec fr (Imdb_wal.Log_record.Op_image { image = left_img });
          t.io.exec right_fr (Imdb_wal.Log_record.Op_image { image = right_img }));
      ( { node_rect with t_high = tmid },
        { node_rect with t_low = tmid },
        right_id )
  | `Key kmid ->
      let left_es =
        List.filter (fun e -> String.compare e.rect.key_low kmid < 0) entries
      in
      let right_es =
        List.filter
          (fun e ->
            match e.rect.key_high with
            | None -> true
            | Some h -> String.compare h kmid > 0)
          entries
      in
      let rebuild img id es =
        P.format img ~page_id:id ~page_type:P.P_tsb_index ~table_id:t.table_id ~level:lvl ();
        List.iter (fun e -> ignore (P.insert img (encode_entry e))) es
      in
      let left_img = Bytes.copy page in
      rebuild left_img page_id left_es;
      let right_fr = Imdb_buffer.Buffer_pool.pin t.pool right_id in
      Fun.protect
        ~finally:(fun () -> Imdb_buffer.Buffer_pool.unpin t.pool right_fr)
        (fun () ->
          let right_img = Bytes.copy (Imdb_buffer.Buffer_pool.bytes right_fr) in
          rebuild right_img right_id right_es;
          t.io.exec fr (Imdb_wal.Log_record.Op_image { image = left_img });
          t.io.exec right_fr (Imdb_wal.Log_record.Op_image { image = right_img }));
      ( { node_rect with key_high = Some kmid },
        { node_rect with key_low = kmid },
        right_id )

let everything =
  { key_low = ""; key_high = None; t_low = Ts.zero; t_high = Ts.infinity }

(* Insert an entry for historical page [child] covering [rect].

   A data rectangle can straddle index-node time boundaries: a data page
   that goes a long stretch without time-splitting keeps an old
   split_time, so the history rect it eventually produces spans any index
   split line chosen in between.  Routing such a rect into the single
   subtree containing its reference point would leave it unreachable for
   queries on the other side of the line.  Insertion therefore posts the
   entry redundantly into {e every} leaf whose region intersects the
   rectangle — the same redundancy [split_node] applies to straddling
   entries at split time.  Historical pages are immutable, so redundant
   copies are safe; [find] and [find_range] reach the same child through
   any copy. *)
let insert t ~rect ~child =
  let entry = { rect; child } in
  let cell = encode_entry entry in
  let intersects r =
    rect_key_overlaps r ~low:rect.key_low ~high:rect.key_high
    && rect_time_overlaps r ~t0:rect.t_low ~t1:rect.t_high
  in
  (* The next leaf whose region intersects [rect] and does not yet hold
     the entry, with its (page_id, node_rect) path from the root.
     Recomputed from the root after every insert and every split, so a
     split that reshapes the tree — or cuts the rect's footprint across a
     fresh boundary — is picked up on the next pass, and a restart never
     double-posts into a leaf already covered. *)
  let rec pending page_id node_rect path =
    Imdb_buffer.Buffer_pool.with_page t.pool page_id (fun fr ->
        let page = Imdb_buffer.Buffer_pool.bytes fr in
        let es = node_entries page in
        if is_leaf page then
          if List.mem entry es then None else Some (page_id, node_rect, path)
        else
          List.fold_left
            (fun acc e ->
              match acc with
              | Some _ -> acc
              | None ->
                  if intersects e.rect then
                    pending e.child e.rect ((page_id, node_rect) :: path)
                  else None)
            None es)
  in
  let rec post_to_parent path ~page_id ~left_rect ~right_rect ~right_id =
    (* Record that [page_id] now covers [left_rect] and the fresh
       [right_id] covers [right_rect].  Returns the node that physically
       holds what used to be [page_id]'s contents: [page_id] itself
       normally, or the fresh left child after a root split relocation. *)
    match path with
    | (parent_id, parent_rect) :: above ->
        (* Update the existing entry for page_id to left_rect and add the
           right entry.  The rect update can GROW (a key split gives the
           left rect a fresh key_high), so room for the growth plus the
           new cell is secured up front.  When the parent must split
           first, its cut line is clean — no entry spans it — so
           page_id's entry, and both replacement rects inside it, land
           wholly in one half: post the parent's split upward, then retry
           this whole update against that half. *)
        let left_cell = encode_entry { rect = left_rect; child = page_id } in
        let right_cell = encode_entry { rect = right_rect; child = right_id } in
        let need =
          Imdb_buffer.Buffer_pool.with_page t.pool parent_id (fun fr ->
              let page = Imdb_buffer.Buffer_pool.bytes fr in
              let growth = ref 0 in
              P.iter_live page (fun slot ->
                  let e = decode_entry (P.read_cell page slot) in
                  if e.child = page_id then
                    growth :=
                      !growth
                      + max 0
                          (Bytes.length left_cell
                          - Bytes.length (P.read_cell page slot)));
              if P.fits page (!growth + Bytes.length right_cell) then begin
                P.iter_live page (fun slot ->
                    let e = decode_entry (P.read_cell page slot) in
                    if e.child = page_id then
                      let old_body = P.read_cell page slot in
                      t.io.exec fr
                        (Imdb_wal.Log_record.Op_replace
                           { slot; old_body; new_body = left_cell }));
                let slot = P.choose_insert_slot page in
                t.io.exec fr (Imdb_wal.Log_record.Op_insert { slot; body = right_cell });
                None
              end
              else Some (split_node t fr ~node_rect:parent_rect))
        in
        (match need with
        | None -> ()
        | Some (pl, pr, prid) ->
            (* the parent split before it could take the update; its left
               contents may have been relocated by a root split *)
            let parent_left_home =
              post_to_parent above ~page_id:parent_id ~left_rect:pl ~right_rect:pr
                ~right_id:prid
            in
            let target, trect =
              if rect_contains pr ~key:left_rect.key_low ~ts:left_rect.t_low then
                (prid, pr)
              else (parent_left_home, pl)
            in
            let (_ : int) =
              post_to_parent
                ((target, trect) :: above)
                ~page_id ~left_rect ~right_rect ~right_id
            in
            ());
        page_id
    | [] ->
        (* root split: move children under a new root structure, keeping
           the root page id stable; the old root's (left-half) contents
           move to a fresh child, whose id we return *)
        let root_fr = Imdb_buffer.Buffer_pool.pin t.pool t.root in
        Fun.protect
          ~finally:(fun () -> Imdb_buffer.Buffer_pool.unpin t.pool root_fr)
          (fun () ->
            let rootp = Imdb_buffer.Buffer_pool.bytes root_fr in
            let lvl = P.level rootp in
            (* here page_id = t.root and it was already image-split into
               (t.root = left, right_id); we push the left contents into a
               fresh node and relevel the root *)
            let left_id = t.io.alloc ~level:lvl in
            let left_fr = Imdb_buffer.Buffer_pool.pin t.pool left_id in
            Fun.protect
              ~finally:(fun () -> Imdb_buffer.Buffer_pool.unpin t.pool left_fr)
              (fun () ->
                let left_img = Bytes.copy (Imdb_buffer.Buffer_pool.bytes left_fr) in
                Bytes.blit rootp 0 left_img 0 (Bytes.length rootp);
                P.set_page_id left_img left_id;
                let root_img = Bytes.copy rootp in
                P.format root_img ~page_id:t.root ~page_type:P.P_tsb_index
                  ~table_id:t.table_id ~level:(lvl + 1) ();
                ignore
                  (P.insert root_img (encode_entry { rect = left_rect; child = left_id }));
                ignore
                  (P.insert root_img
                     (encode_entry { rect = right_rect; child = right_id }));
                t.io.exec left_fr (Imdb_wal.Log_record.Op_image { image = left_img });
                t.io.exec root_fr (Imdb_wal.Log_record.Op_image { image = root_img });
                left_id))
  in
  let rec loop splits =
    (* Redundant posting may visit one full leaf per time sliver a tall
       rectangle crosses, so the split count per insert is bounded by the
       leaf population, not a small constant.  Each split strictly
       shrinks the overfull node (the chosen boundary excludes at least
       one entry from each side), so a large cap only guards against
       bugs, not workloads — bulk ingest legitimately needs dozens. *)
    if splits > 1024 then failwith "Tsb.insert: no room after repeated splits";
    match pending t.root everything [] with
    | None -> ()
    | Some (leaf_id, leaf_rect, path) -> (
        let need_split =
          Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
              let page = Imdb_buffer.Buffer_pool.bytes fr in
              if P.fits page (Bytes.length cell) then begin
                let slot = P.choose_insert_slot page in
                t.io.exec fr (Imdb_wal.Log_record.Op_insert { slot; body = cell });
                None
              end
              else Some (split_node t fr ~node_rect:leaf_rect))
        in
        match need_split with
        | None -> loop splits
        | Some (left_rect, right_rect, right_id) ->
            let (_ : int) =
              post_to_parent path ~page_id:leaf_id ~left_rect ~right_rect ~right_id
            in
            loop (splits + 1))
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Integrity & stats                                                   *)
(* ------------------------------------------------------------------ *)

exception Invariant_violation of string

(* Check that children lie within their parent rectangles and that leaf
   rectangles are pairwise disjoint (allowing exact duplicates from
   redundant posting).  Returns the number of leaf entries. *)
let check_invariants t =
  let leaf_rects = ref [] in
  let rec walk page_id region =
    Imdb_buffer.Buffer_pool.with_page t.pool page_id (fun fr ->
        let page = Imdb_buffer.Buffer_pool.bytes fr in
        let es = node_entries page in
        List.iter
          (fun e ->
            if
              not
                (rect_key_overlaps e.rect ~low:region.key_low ~high:region.key_high
                && rect_time_overlaps e.rect ~t0:region.t_low ~t1:region.t_high)
            then
              raise
                (Invariant_violation
                   (Fmt.str "entry %a outside node region %a" pp_rect e.rect pp_rect
                      region)))
          es;
        if is_leaf page then
          List.iter (fun e -> leaf_rects := (e.rect, e.child) :: !leaf_rects) es
        else List.iter (fun e -> walk e.child e.rect) es)
  in
  walk t.root everything;
  (* disjointness among distinct pages, after clipping redundant copies *)
  let rects = !leaf_rects in
  List.iteri
    (fun i (r1, c1) ->
      List.iteri
        (fun j (r2, c2) ->
          if i < j && c1 <> c2 then
            let key_olap =
              rect_key_overlaps r1 ~low:r2.key_low ~high:r2.key_high
            in
            let t_olap = rect_time_overlaps r1 ~t0:r2.t_low ~t1:r2.t_high in
            if key_olap && t_olap then
              raise
                (Invariant_violation
                   (Fmt.str "overlapping leaf rects: %a (page %d) and %a (page %d)"
                      pp_rect r1 c1 pp_rect r2 c2)))
        rects)
    rects;
  List.length rects

let entry_count t =
  let n = ref 0 in
  let rec walk page_id =
    Imdb_buffer.Buffer_pool.with_page t.pool page_id (fun fr ->
        let page = Imdb_buffer.Buffer_pool.bytes fr in
        if is_leaf page then n := !n + P.live_count page
        else List.iter (fun e -> walk e.child) (node_entries page))
  in
  walk t.root;
  !n

(* Key-split policy at time-split points.  The classic trigger is current
   utilization above the threshold T after a time split (Section 3.3).
   Buffered ingestion adds batch-arrival knowledge: when the flush that
   forced this split still has [incoming_bytes] of version data destined
   for the page, splitting by key now — while the page is already in hand
   and a time split was just paid for — avoids an immediate second
   overflow.  [capacity] is the page's usable cell space in bytes. *)
let should_key_split ~utilization ~threshold ~incoming_bytes ~capacity =
  if utilization > threshold then `Utilization
  else if
    incoming_bytes > 0 && capacity > 0
    && utilization +. (float_of_int incoming_bytes /. float_of_int capacity)
       > threshold
  then `Batch_hint
  else `No
