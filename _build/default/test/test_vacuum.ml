(* Vacuum (paper §2.2): collecting the PTT entries orphaned by crashes. *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema

let ptt_count db = Imdb_tstamp.Ptt.count (E.ptt_exn (Db.engine db))

let test_vacuum_collects_orphans () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  let stamps = ref [] in
  for i = 1 to 40 do
    tick clock;
    let ts =
      commit_write db (fun txn ->
          Db.upsert_row db txn ~table:"t" (row (i mod 8) (Printf.sprintf "v%d" i)))
    in
    stamps := (i, ts) :: !stamps
  done;
  (* crash: volatile refcounts are gone; recovery rebuilds the VTT cache
     with undefined refcounts, so the normal GC rule can never fire *)
  let db = Db.crash_and_reopen ~clock db in
  Alcotest.(check bool) "orphans exist" true (ptt_count db > 0);
  Db.checkpoint db;
  Db.checkpoint db;
  Alcotest.(check bool) "checkpoints alone cannot collect" true (ptt_count db > 0);
  (* vacuum forces timestamping to completion and empties the PTT *)
  let removed = Db.vacuum db in
  Alcotest.(check bool) "entries removed" true (removed > 0);
  Alcotest.(check int) "PTT empty" 0 (ptt_count db);
  (* every current and historical state still reads correctly *)
  Db.exec db (fun txn ->
      Alcotest.(check int) "eight keys" 8 (List.length (Db.scan_rows db txn ~table:"t")));
  List.iter
    (fun (i, ts) ->
      let got =
        Db.as_of db ts (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int (i mod 8)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "as of commit %d" i)
        true
        (got = Some (row (i mod 8) (Printf.sprintf "v%d" i))))
    !stamps;
  (* and it survives another crash: the stamping was forced to disk *)
  let db = Db.crash_and_reopen ~clock db in
  let i, ts = List.nth !stamps 20 in
  Alcotest.(check bool) "post-vacuum crash still answers" true
    (Db.as_of db ts (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int (i mod 8)))
    = Some (row (i mod 8) (Printf.sprintf "v%d" i)));
  Db.close db

let test_vacuum_requires_quiet () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  let txn = Db.begin_txn db in
  Db.insert_row db txn ~table:"t" (row 1 "open");
  (match Db.vacuum db with
  | exception Db.Vacuum_blocked _ -> ()
  | _ -> Alcotest.fail "vacuum ran with an active transaction");
  ignore (Db.commit db txn);
  Alcotest.(check bool) "runs when quiet" true (Db.vacuum db >= 0);
  Db.close db

let test_vacuum_mixed_tables () =
  (* a transaction writing both a snapshot and an immortal table: its
     snapshot-side versions must be stamped before the mapping goes *)
  let db, clock = fresh_db () in
  Db.create_table db ~name:"imm" ~mode:Db.Immortal ~schema:kv_schema;
  Db.create_table db ~name:"snap" ~mode:Db.Snapshot_table ~schema:kv_schema;
  tick clock;
  ignore
    (commit_write db (fun txn ->
         Db.insert_row db txn ~table:"imm" (row 1 "i");
         Db.insert_row db txn ~table:"snap" (row 1 "s")));
  ignore (Db.vacuum db);
  (* reads on both tables still fine *)
  check_row db ~table:"imm" ~id:1 (Some (row 1 "i"));
  check_row db ~table:"snap" ~id:1 (Some (row 1 "s"));
  (* snapshot reads still see consistent state after more churn *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"snap" (row 1 "s2")));
  check_row db ~table:"snap" ~id:1 (Some (row 1 "s2"));
  Db.close db

let test_gc_durable_across_crash () =
  (* collected PTT entries stay collected after a crash: the checkpoint
     flushes its GC deletions *)
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for i = 1 to 100 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.upsert_row db txn ~table:"t" (row (i mod 5) (Printf.sprintf "v%d" i))))
  done;
  Db.checkpoint db;
  Db.checkpoint db;
  let collected_state = ptt_count db in
  Alcotest.(check bool) "GC collected something" true (collected_state < 100);
  let db = Db.crash_and_reopen ~clock db in
  Alcotest.(check int) "collection survives the crash" collected_state (ptt_count db);
  Db.close db

let suite =
  [
    Alcotest.test_case "vacuum collects orphans" `Quick test_vacuum_collects_orphans;
    Alcotest.test_case "GC durable across crash" `Quick test_gc_durable_across_crash;
    Alcotest.test_case "vacuum requires quiet" `Quick test_vacuum_requires_quiet;
    Alcotest.test_case "vacuum with mixed tables" `Quick test_vacuum_mixed_tables;
  ]
