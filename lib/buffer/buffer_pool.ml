(* The buffer pool.

   Fixed-capacity page cache with pin counts, CLOCK (second-chance)
   eviction, dirty tracking with per-page recLSN, and the WAL-before-data
   rule: a dirty page is written only after the log is durable up to the
   page's LSN.

   Eviction is O(1) amortized: frames live in a fixed ring of slots and a
   clock hand sweeps it, clearing reference bits and taking the first
   unreferenced unpinned frame.  Every pin sets the frame's reference
   bit, so recently-used pages get a second chance; a sweep is bounded by
   two revolutions, after which only pinned frames remain and the pool is
   genuinely full.

   Two features exist specifically for Immortal DB's lazy timestamping:

   - a [pre_flush] hook runs on every page image just before it is written
     to disk.  The engine installs the VTT-only timestamp sweep there
     ("just before a cached page is flushed to disk, we check whether the
     page contains any non-timestamped records from committed
     transactions" — Section 2.2).  Hook changes are *not* logged and do
     not move the page LSN.

   - [mark_dirty_unlogged] records a recLSN equal to the current log end
     even though nothing was logged.  This keeps pages dirtied only by
     timestamp propagation inside the dirty-page table, so the redo-scan
     start point cannot advance past unflushed stamping — the invariant
     the PTT garbage collector relies on (Section 2.2, "we can know when
     the pages have been written to disk by tracking database
     checkpoints").

   Frames also carry an optional key directory: a sorted (key, slot)
   array the B-tree builds over a page's unsorted cells so point searches
   binary-search instead of decoding every cell.  The directory is pure
   cache — volatile, never logged, never moving the page LSN (the same
   discipline as lazy timestamping) — and any dirtying invalidates it.

   Concurrency: one pool mutex guards the shared lookup/replacement state
   (frame table, CLOCK ring, free list, pin counts, dirty transitions) —
   held only for O(1)-ish bookkeeping, never across a caller's page work.
   Frame *writeback* (pre-flush stamping, the WAL-before-data flush, the
   checksum seal, the disk write) runs under a striped frame latch keyed
   by page id, so flushers of different pages proceed in parallel while
   two writers of the same frame serialize and the WAL rule holds per
   frame.  Page *content* accessed through a pinned frame is synchronized
   by the engine's session gate, exactly like before; [with_latch] is
   available where content work must exclude a concurrent writeback. *)

module M = Imdb_obs.Metrics

exception Buffer_full
exception Corrupt_page of int

type keydir = {
  kd_keys : string array; (* sorted ascending *)
  kd_slots : int array; (* kd_slots.(i) holds kd_keys.(i) *)
}

type frame = {
  f_page_id : int;
  f_bytes : bytes;
  mutable f_pin : int;
  mutable f_dirty : bool;
  mutable f_rec_lsn : int64; (* meaningful only when dirty *)
  mutable f_ref : bool; (* CLOCK reference bit *)
  mutable f_slot : int; (* position in the ring *)
  mutable f_keydir : keydir option;
  mutable f_probes : int; (* linear searches since last invalidation *)
}

let latch_stripes = 16 (* power of two: page id maps by low bits *)

type t = {
  disk : Imdb_storage.Disk.t;
  wal : Imdb_wal.Wal.t;
  capacity : int;
  pool_mu : Mutex.t; (* frame table, ring, free list, pins, dirty bits *)
  latches : Mutex.t array; (* striped frame latches for writeback *)
  frames : (int, frame) Hashtbl.t;
  ring : frame option array; (* capacity slots, swept by the hand *)
  mutable hand : int;
  mutable free : int list; (* unoccupied ring slots *)
  mutable pre_flush : bytes -> unit;
  mutable metrics : M.t;
}

let create ?(capacity = 256) ?(metrics = M.null) ~disk ~wal () =
  if capacity < 4 then invalid_arg "Buffer_pool.create: capacity too small";
  { disk; wal; capacity; pool_mu = Mutex.create ();
    latches = Array.init latch_stripes (fun _ -> Mutex.create ());
    frames = Hashtbl.create (2 * capacity);
    ring = Array.make capacity None; hand = 0;
    free = List.init capacity Fun.id; pre_flush = ignore; metrics }

let locked t f =
  Mutex.lock t.pool_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.pool_mu) f

let latch_of t page_id = t.latches.(page_id land (latch_stripes - 1))

(* Run [f] holding the frame's stripe latch — excludes a concurrent
   writeback of any frame on the same stripe.  Never taken while waiting
   on [pool_mu] (lock order: pool mutex, then stripe latch, then WAL). *)
let with_latch t fr f =
  let mu = latch_of t fr.f_page_id in
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let set_metrics t m = t.metrics <- m

let set_pre_flush t f = t.pre_flush <- f
let page_size t = t.disk.Imdb_storage.Disk.page_size
let touch _t f = f.f_ref <- true

(* --- the key-directory cache --------------------------------------- *)

let keydir f = f.f_keydir
let set_keydir f kd = f.f_keydir <- Some kd

(* One more linear search ran against this frame; returns the count since
   the last invalidation so callers can build the directory only once a
   page proves search-hot (write-hot pages invalidate faster than they
   accumulate probes and keep the cheap scan). *)
let keydir_probe f =
  f.f_probes <- f.f_probes + 1;
  f.f_probes

let invalidate_keydir f =
  f.f_keydir <- None;
  f.f_probes <- 0

(* --- frame ring ----------------------------------------------------- *)

let attach t f =
  match t.free with
  | [] -> raise Buffer_full (* make_room guarantees a slot; defensive *)
  | s :: rest ->
      t.free <- rest;
      f.f_slot <- s;
      t.ring.(s) <- Some f;
      Hashtbl.replace t.frames f.f_page_id f

let detach t f =
  t.ring.(f.f_slot) <- None;
  t.free <- f.f_slot :: t.free;
  Hashtbl.remove t.frames f.f_page_id

(* Write [f] out: pre-flush hook, WAL rule, checksum seal — all under the
   frame's stripe latch so the image that hits disk is the image the WAL
   rule was checked against.  Caller holds [pool_mu]. *)
let write_frame t f =
  with_latch t f (fun () ->
      t.pre_flush f.f_bytes;
      let page_lsn = Imdb_storage.Page.lsn f.f_bytes in
      Imdb_wal.Wal.flush ~lsn:page_lsn t.wal;
      Imdb_storage.Page.seal f.f_bytes;
      t.disk.Imdb_storage.Disk.write_page f.f_page_id f.f_bytes;
      f.f_dirty <- false)

(* CLOCK sweep: clear reference bits until an unreferenced unpinned frame
   comes under the hand.  Two revolutions suffice — the first clears every
   reference bit, so the second can only fail on pinned frames. *)
let evict_one t =
  let n = t.capacity in
  let steps = ref 0 in
  let victim = ref None in
  while !victim = None && !steps < 2 * n do
    incr steps;
    let i = t.hand in
    t.hand <- (t.hand + 1) mod n;
    match t.ring.(i) with
    | None -> ()
    | Some f when f.f_pin > 0 -> ()
    | Some f when f.f_ref -> f.f_ref <- false
    | Some f -> victim := Some f
  done;
  M.incr ~by:!steps t.metrics M.buf_clock_sweeps;
  match !victim with
  | None -> raise Buffer_full
  | Some f ->
      if f.f_dirty then write_frame t f;
      detach t f;
      M.incr t.metrics M.buf_evictions

let make_room t = while Hashtbl.length t.frames >= t.capacity do evict_one t done

(* Pin an existing page, reading (and verifying) it from disk on a miss. *)
let pin t page_id =
  locked t (fun () ->
      match Hashtbl.find_opt t.frames page_id with
      | Some f ->
          M.incr t.metrics M.buf_hits;
          f.f_pin <- f.f_pin + 1;
          touch t f;
          f
      | None ->
          M.incr t.metrics M.buf_misses;
          make_room t;
          let bytes = t.disk.Imdb_storage.Disk.read_page page_id in
          if not (Imdb_storage.Page.verify bytes) then
            raise (Corrupt_page page_id);
          let f =
            { f_page_id = page_id; f_bytes = bytes; f_pin = 1; f_dirty = false;
              f_rec_lsn = 0L; f_ref = true; f_slot = -1; f_keydir = None;
              f_probes = 0 }
          in
          attach t f;
          f)

(* Pin a frame for a brand-new page: no disk read, caller formats it. *)
let pin_new t page_id =
  locked t (fun () ->
      if Hashtbl.mem t.frames page_id then
        invalid_arg
          (Printf.sprintf "Buffer_pool.pin_new: page %d already cached" page_id);
      make_room t;
      (* zero-filled: redo gating reads the LSN field of never-written pages *)
      let f =
        { f_page_id = page_id; f_bytes = Bytes.make (page_size t) '\000';
          f_pin = 1; f_dirty = false; f_rec_lsn = 0L; f_ref = true; f_slot = -1;
          f_keydir = None; f_probes = 0 }
      in
      attach t f;
      f)

let unpin t f =
  locked t (fun () ->
      if f.f_pin <= 0 then invalid_arg "Buffer_pool.unpin: not pinned";
      f.f_pin <- f.f_pin - 1)

let bytes f = f.f_bytes
let page_id f = f.f_page_id

(* Record a logged modification: sets the page LSN and, on a clean->dirty
   transition, the recLSN. *)
let mark_dirty_logged t f ~lsn =
  locked t (fun () ->
      if not f.f_dirty then begin
        f.f_dirty <- true;
        f.f_rec_lsn <- lsn
      end;
      invalidate_keydir f;
      Imdb_storage.Page.set_lsn f.f_bytes lsn)

(* Record an *unlogged* modification (timestamp propagation).  recLSN is
   the current end of log so the dirty-page table pins the redo-scan
   start point behind this page until it reaches disk. *)
let mark_dirty_unlogged t f =
  locked t (fun () ->
      if not f.f_dirty then begin
        f.f_dirty <- true;
        f.f_rec_lsn <- Imdb_wal.Wal.next_lsn t.wal
      end;
      invalidate_keydir f)

let with_page t page_id f =
  let fr = pin t page_id in
  Fun.protect ~finally:(fun () -> unpin t fr) (fun () -> f fr)

let flush_page t page_id =
  locked t (fun () ->
      match Hashtbl.find_opt t.frames page_id with
      | Some f when f.f_dirty -> write_frame t f
      | _ -> ())

let flush_all t =
  locked t (fun () ->
      let dirty =
        Hashtbl.fold
          (fun _ f acc -> if f.f_dirty then f :: acc else acc)
          t.frames []
      in
      List.iter (fun f -> write_frame t f) dirty)

(* Flush pages that have been dirty since before [rec_lsn_limit] — the
   checkpoint-time sweep that moves the redo-scan start point forward (and
   with it, the PTT garbage-collection horizon).  Pinned pages are written
   in place, like a real background writer under a latch. *)
let flush_older_than t ~rec_lsn_limit =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun _ f acc ->
            if f.f_dirty && Int64.compare f.f_rec_lsn rec_lsn_limit <= 0 then
              f :: acc
            else acc)
          t.frames []
      in
      List.iter (fun f -> write_frame t f) victims;
      List.length victims)

(* (page_id, recLSN) for every dirty page — the DPT stored in checkpoints. *)
let dirty_page_table t =
  locked t (fun () ->
      Hashtbl.fold
        (fun id f acc -> if f.f_dirty then (id, f.f_rec_lsn) :: acc else acc)
        t.frames []
      |> List.sort compare)

let cached_page_ids t =
  locked t (fun () ->
      Hashtbl.fold (fun id _ acc -> id :: acc) t.frames [] |> List.sort compare)

let is_cached t page_id = locked t (fun () -> Hashtbl.mem t.frames page_id)

(* Crash simulation: discard every frame without writing. *)
let drop_all t =
  locked t (fun () ->
      Hashtbl.reset t.frames;
      Array.fill t.ring 0 t.capacity None;
      t.free <- List.init t.capacity Fun.id;
      t.hand <- 0)

(* Drop a single (unpinned) frame without writing — used when a page is
   freed, so its stale image can never reach disk. *)
let invalidate t page_id =
  locked t (fun () ->
      match Hashtbl.find_opt t.frames page_id with
      | None -> ()
      | Some f ->
          if f.f_pin > 0 then
            invalid_arg "Buffer_pool.invalidate: page is pinned";
          detach t f)

let pinned_count t =
  locked t (fun () ->
      Hashtbl.fold (fun _ f acc -> if f.f_pin > 0 then acc + 1 else acc) t.frames 0)
