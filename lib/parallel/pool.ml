(* Fixed domain pool.

   Workers block on a condition variable until the coordinator publishes
   a job (an array of thunks and an atomic claim index), drain tasks by
   fetch-and-add, and go back to sleep.  The coordinator participates in
   the drain, then waits until the per-job unfinished count reaches zero,
   so [run] returns only when every task has completed — including tasks
   a slow worker claimed just before the coordinator ran dry. *)

type job = {
  tasks : (unit -> unit) array;  (* exception-safe wrappers, never raise *)
  next : int Atomic.t;  (* claim index *)
  mutable unfinished : int;  (* guarded by the pool mutex *)
}

type t = {
  n_workers : int;
  mutable domains : unit Domain.t array;
  m : Mutex.t;
  has_work : Condition.t;
  all_done : Condition.t;
  mutable job : job option;
  mutable gen : int;  (* bumped per job so a worker never re-runs one *)
  mutable stopped : bool;
}

let workers t = t.n_workers

(* Claim and run tasks until the job is exhausted, decrementing the
   unfinished count per task so the coordinator can join. *)
let drain t job =
  let n = Array.length job.tasks in
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < n then begin
      job.tasks.(i) ();
      Mutex.lock t.m;
      job.unfinished <- job.unfinished - 1;
      if job.unfinished = 0 then Condition.broadcast t.all_done;
      Mutex.unlock t.m;
      go ()
    end
  in
  go ()

let rec worker_loop t last_gen =
  Mutex.lock t.m;
  while (not t.stopped) && (t.job = None || t.gen = last_gen) do
    Condition.wait t.has_work t.m
  done;
  if t.stopped then Mutex.unlock t.m
  else begin
    let gen = t.gen in
    let job = Option.get t.job in
    Mutex.unlock t.m;
    drain t job;
    worker_loop t gen
  end

let create ~workers =
  if workers < 0 then invalid_arg "Pool.create: negative worker count";
  let t =
    {
      n_workers = workers;
      domains = [||];
      m = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      job = None;
      gen = 0;
      stopped = false;
    }
  in
  t.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let run t f n =
  if t.stopped then invalid_arg "Pool.run: pool is shut down";
  if n = 0 then [||]
  else if t.n_workers = 0 then Array.init n f
  else begin
    let results = Array.make n None in
    let first_exn = Atomic.make None in
    let tasks =
      Array.init n (fun i () ->
          match f i with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set first_exn None (Some e)))
    in
    let job = { tasks; next = Atomic.make 0; unfinished = n } in
    Mutex.lock t.m;
    if t.job <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.run: reentrant run"
    end;
    t.job <- Some job;
    t.gen <- t.gen + 1;
    Condition.broadcast t.has_work;
    Mutex.unlock t.m;
    drain t job;
    Mutex.lock t.m;
    while job.unfinished > 0 do
      Condition.wait t.all_done t.m
    done;
    t.job <- None;
    Mutex.unlock t.m;
    (match Atomic.get first_exn with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.m;
    t.stopped <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
