lib/wal/log_record.mli: Format Imdb_clock Imdb_storage
