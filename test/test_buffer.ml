(* Buffer pool: caching, CLOCK (second-chance) eviction, the
   WAL-before-data rule, the pre-flush stamping hook, and checkpoint-sweep
   flushing. *)

module Disk = Imdb_storage.Disk
module P = Imdb_storage.Page
module BP = Imdb_buffer.Buffer_pool
module Wal = Imdb_wal.Wal
module LR = Imdb_wal.Log_record
module Tid = Imdb_clock.Tid
module M = Imdb_obs.Metrics

let setup ?(capacity = 4) ?(metrics = M.null) () =
  let disk = Disk.in_memory ~page_size:512 () in
  let wal = Wal.open_device (Wal.Device.in_memory ()) in
  let pool = BP.create ~capacity ~metrics ~disk ~wal () in
  (disk, wal, pool)

let new_page pool pid =
  let fr = BP.pin_new pool pid in
  P.format (BP.bytes fr) ~page_id:pid ~page_type:P.P_data ();
  fr

let test_pin_miss_hit () =
  let m = M.create () in
  let disk, _, pool = setup ~metrics:m () in
  (* seed a page on disk *)
  let b = Bytes.make 512 '\000' in
  P.format b ~page_id:1 ~page_type:P.P_data ();
  P.seal b;
  disk.Disk.write_page 1 b;
  BP.with_page pool 1 (fun _ -> ());
  Alcotest.(check int) "first access misses" 1 (M.get m M.buf_misses);
  BP.with_page pool 1 (fun _ -> ());
  Alcotest.(check int) "second access hits" 1 (M.get m M.buf_hits)

let test_corrupt_detection () =
  let disk, _, pool = setup () in
  let b = Bytes.make 512 'g' in
  disk.Disk.write_page 2 b;
  (* garbage, not sealed *)
  (match BP.pin pool 2 with
  | exception BP.Corrupt_page 2 -> ()
  | _ -> Alcotest.fail "expected Corrupt_page")

let test_eviction_and_writeback () =
  let disk, _, pool = setup ~capacity:4 () in
  (* four dirty pages fill the pool *)
  for pid = 0 to 3 do
    let fr = new_page pool pid in
    BP.mark_dirty_logged pool fr ~lsn:0L;
    BP.unpin pool fr
  done;
  Alcotest.(check int) "nothing written yet" 0 (disk.Disk.page_count ());
  (* touch pages 1..3 so page 0 is the coldest frame *)
  for pid = 1 to 3 do
    BP.with_page pool pid (fun _ -> ())
  done;
  (* a fifth page forces one eviction: the cold victim (0) is written *)
  let fr = new_page pool 4 in
  BP.unpin pool fr;
  Alcotest.(check bool) "victim written back" true (disk.Disk.page_exists 0);
  Alcotest.(check bool) "hot pages kept" false (disk.Disk.page_exists 2);
  (* page 0 reads back fine (sealed on writeback) *)
  BP.with_page pool 0 (fun fr -> Alcotest.(check int) "round trip" 0 (P.page_id (BP.bytes fr)))

let test_pinned_never_evicted () =
  let _, _, pool = setup ~capacity:4 () in
  let pins = List.init 4 (fun pid -> new_page pool pid) in
  (match BP.pin_new pool 9 with
  | exception BP.Buffer_full -> ()
  | _ -> Alcotest.fail "expected Buffer_full");
  List.iter (fun fr -> BP.unpin pool fr) pins

let test_clock_second_chance () =
  let m = M.create () in
  let disk, _, pool = setup ~capacity:4 ~metrics:m () in
  (* every page is dirty, so an eviction leaves a visible write-back *)
  let dirty pid =
    let fr = new_page pool pid in
    BP.mark_dirty_logged pool fr ~lsn:0L;
    BP.unpin pool fr
  in
  List.iter dirty [ 0; 1; 2; 3 ];
  (* first eviction: one revolution clears every reference bit, then the
     hand claims the first frame it re-visits — page 0 *)
  dirty 4;
  Alcotest.(check bool) "first victim is page 0" true (disk.Disk.page_exists 0);
  Alcotest.(check bool) "page 1 resident" true (BP.is_cached pool 1);
  (* second chance: re-reference page 1; the hand meets it before page 2
     but must spare it and take the unreferenced page 2 instead *)
  BP.with_page pool 1 (fun _ -> ());
  dirty 5;
  Alcotest.(check bool) "unreferenced page 2 evicted" true (disk.Disk.page_exists 2);
  Alcotest.(check bool) "referenced page 1 spared" true (BP.is_cached pool 1);
  Alcotest.(check bool) "page 1 never written" false (disk.Disk.page_exists 1);
  (* a pinned frame is skipped by every sweep, however many pass it *)
  let held = BP.pin pool 1 in
  List.iter dirty [ 6; 7; 8 ];
  Alcotest.(check bool) "pinned page survives all sweeps" true (BP.is_cached pool 1);
  Alcotest.(check bool) "pinned page never written" false (disk.Disk.page_exists 1);
  BP.unpin pool held;
  Alcotest.(check int) "evictions counted" 5 (M.get m M.buf_evictions);
  Alcotest.(check bool) "sweep steps recorded" true
    (M.get m M.buf_clock_sweeps >= M.get m M.buf_evictions)

let test_keydir_cache_invalidation () =
  let _, _, pool = setup () in
  let fr = new_page pool 0 in
  Alcotest.(check bool) "no directory initially" true (BP.keydir fr = None);
  Alcotest.(check int) "probes accumulate" 1 (BP.keydir_probe fr);
  Alcotest.(check int) "probes accumulate" 2 (BP.keydir_probe fr);
  BP.set_keydir fr { BP.kd_keys = [| "a"; "b" |]; kd_slots = [| 3; 1 |] };
  (match BP.keydir fr with
  | Some kd -> Alcotest.(check int) "directory attached" 2 (Array.length kd.BP.kd_keys)
  | None -> Alcotest.fail "directory lost");
  (* any dirtying — logged or unlogged — drops the cached directory *)
  BP.mark_dirty_logged pool fr ~lsn:0L;
  Alcotest.(check bool) "logged dirty invalidates" true (BP.keydir fr = None);
  Alcotest.(check int) "probe counter restarts" 1 (BP.keydir_probe fr);
  BP.set_keydir fr { BP.kd_keys = [| "a" |]; kd_slots = [| 0 |] };
  BP.mark_dirty_unlogged pool fr;
  Alcotest.(check bool) "unlogged dirty invalidates" true (BP.keydir fr = None);
  BP.unpin pool fr

let test_pre_flush_every_write () =
  (* regression for the eviction rewrite: the stamping hook must precede
     *every* page write, whether from eviction, a sweep or a force *)
  let m = M.create () in
  let disk, _, pool = setup ~capacity:4 ~metrics:m () in
  Disk.set_metrics disk m;
  let hook_runs = ref 0 in
  BP.set_pre_flush pool (fun _ -> incr hook_runs);
  let dirty pid =
    let fr = new_page pool pid in
    BP.mark_dirty_logged pool fr ~lsn:0L;
    BP.unpin pool fr
  in
  (* fill the pool, then three more pages force eviction write-backs *)
  List.iter dirty [ 0; 1; 2; 3; 4; 5; 6 ];
  (* sweep the survivors out explicitly *)
  BP.flush_all pool;
  (* and re-dirty one page so a second write of the same frame counts *)
  BP.with_page pool 6 (fun fr -> BP.mark_dirty_logged pool fr ~lsn:0L);
  BP.flush_page pool 6;
  let writes = M.get m M.disk_writes in
  Alcotest.(check bool) "writes happened" true (writes >= 8);
  Alcotest.(check int) "hook ran before every page write" writes !hook_runs

let test_wal_before_data () =
  let _, wal, pool = setup () in
  let fr = new_page pool 0 in
  let lsn = Wal.append wal (LR.Redo_only { page_id = 0; op = LR.Op_format { page_type = P.P_data; table_id = 0; level = 0 } }) in
  BP.mark_dirty_logged pool fr ~lsn;
  Alcotest.(check bool) "log volatile before flush" true
    (Int64.compare (Wal.flushed_lsn wal) lsn <= 0);
  BP.unpin pool fr;
  BP.flush_page pool 0;
  (* the flush must have pushed the log past the page lsn first *)
  Alcotest.(check bool) "wal flushed before page" true
    (Int64.compare (Wal.flushed_lsn wal) lsn > 0)

let test_pre_flush_hook () =
  let _, _, pool = setup () in
  let hook_ran = ref 0 in
  BP.set_pre_flush pool (fun page ->
      incr hook_ran;
      (* the hook may mutate the image before it is sealed *)
      P.set_next_page page 777);
  let fr = new_page pool 0 in
  BP.mark_dirty_logged pool fr ~lsn:0L;
  BP.unpin pool fr;
  BP.flush_page pool 0;
  Alcotest.(check int) "hook ran once" 1 !hook_ran;
  (* drop and reload from disk: the hook's change was persisted *)
  BP.drop_all pool;
  BP.with_page pool 0 (fun fr ->
      Alcotest.(check int) "hook mutation persisted" 777 (P.next_page (BP.bytes fr)))

let test_dirty_table_and_unlogged () =
  let _, wal, pool = setup () in
  let fr = new_page pool 0 in
  ignore (Wal.append wal (LR.Begin { tid = Tid.of_int 1 }));
  BP.mark_dirty_unlogged pool fr;
  let dpt = BP.dirty_page_table pool in
  (match dpt with
  | [ (0, rec_lsn) ] ->
      (* recLSN for an unlogged dirtying = current end of log *)
      Alcotest.(check int64) "recLSN is end of log" (Wal.next_lsn wal) rec_lsn
  | _ -> Alcotest.fail "expected one dirty page");
  BP.unpin pool fr

let test_flush_older_than () =
  let _, _, pool = setup ~capacity:8 () in
  let dirty_at pid lsn =
    let fr = new_page pool pid in
    BP.mark_dirty_logged pool fr ~lsn;
    BP.unpin pool fr
  in
  dirty_at 0 10L;
  dirty_at 1 20L;
  dirty_at 2 30L;
  let n = BP.flush_older_than pool ~rec_lsn_limit:20L in
  Alcotest.(check int) "two pages swept" 2 n;
  Alcotest.(check int) "one dirty page left" 1 (List.length (BP.dirty_page_table pool))

let test_invalidate () =
  let disk, _, pool = setup () in
  let fr = new_page pool 5 in
  BP.mark_dirty_logged pool fr ~lsn:0L;
  (match BP.invalidate pool 5 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "invalidating a pinned page must fail");
  BP.unpin pool fr;
  BP.invalidate pool 5;
  Alcotest.(check bool) "dropped without write" false (disk.Disk.page_exists 5)

let suite =
  [
    Alcotest.test_case "pin miss/hit" `Quick test_pin_miss_hit;
    Alcotest.test_case "corrupt page detection" `Quick test_corrupt_detection;
    Alcotest.test_case "eviction & writeback" `Quick test_eviction_and_writeback;
    Alcotest.test_case "pinned never evicted" `Quick test_pinned_never_evicted;
    Alcotest.test_case "CLOCK second chance & pins" `Quick test_clock_second_chance;
    Alcotest.test_case "keydir cache invalidation" `Quick test_keydir_cache_invalidation;
    Alcotest.test_case "pre-flush before every write" `Quick test_pre_flush_every_write;
    Alcotest.test_case "WAL before data" `Quick test_wal_before_data;
    Alcotest.test_case "pre-flush hook" `Quick test_pre_flush_hook;
    Alcotest.test_case "dirty table & unlogged recLSN" `Quick test_dirty_table_and_unlogged;
    Alcotest.test_case "flush_older_than sweep" `Quick test_flush_older_than;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
  ]
