lib/btree/btree.ml: Bytes Char Codec Fmt Fun Imdb_buffer Imdb_storage Imdb_util Imdb_wal List Option Printf String
