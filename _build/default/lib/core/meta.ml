(* The database metadata, stored as the single cell of page 0.

   Page 0 is a normal page flowing through the buffer pool and the WAL, so
   allocator updates are crash-consistent like everything else.  The one
   field read *outside* recovery is [last_checkpoint_lsn]: the engine
   force-flushes page 0 after each checkpoint, and recovery reads the
   on-disk copy directly to find where to start (a stale value only makes
   recovery start at an older checkpoint, which is always safe). *)

let magic = 0x494d4442 (* "IMDB" *)
let format_version = 1
let meta_page_id = 0
let meta_slot = 0

type t = {
  mutable hwm : int; (* first never-allocated page id *)
  mutable freelist_head : int; (* 0 = empty *)
  mutable catalog_root : int;
  mutable ptt_root : int;
  mutable next_table_id : int;
  mutable last_checkpoint_lsn : int64; (* 0 = never checkpointed *)
}

let fresh () =
  {
    hwm = 1; (* page 0 is the meta page itself *)
    freelist_head = 0;
    catalog_root = 0;
    ptt_root = 0;
    next_table_id = 10; (* ids below 10 are reserved for system structures *)
    last_checkpoint_lsn = 0L;
  }

(* System table ids, fixed by convention. *)
let catalog_table_id = 1
let ptt_table_id = 2

let encode m =
  let w = Imdb_util.Codec.Writer.create ~size:64 () in
  Imdb_util.Codec.Writer.u32 w magic;
  Imdb_util.Codec.Writer.u16 w format_version;
  Imdb_util.Codec.Writer.int w m.hwm;
  Imdb_util.Codec.Writer.u32 w m.freelist_head;
  Imdb_util.Codec.Writer.u32 w m.catalog_root;
  Imdb_util.Codec.Writer.u32 w m.ptt_root;
  Imdb_util.Codec.Writer.u32 w m.next_table_id;
  Imdb_util.Codec.Writer.i64 w m.last_checkpoint_lsn;
  Imdb_util.Codec.Writer.contents w

exception Bad_meta of string

let decode b =
  let r = Imdb_util.Codec.Reader.create b in
  let m = Imdb_util.Codec.Reader.u32 r in
  if m <> magic then raise (Bad_meta (Printf.sprintf "bad magic %x" m));
  let v = Imdb_util.Codec.Reader.u16 r in
  if v <> format_version then raise (Bad_meta (Printf.sprintf "unsupported version %d" v));
  let hwm = Imdb_util.Codec.Reader.int r in
  let freelist_head = Imdb_util.Codec.Reader.u32 r in
  let catalog_root = Imdb_util.Codec.Reader.u32 r in
  let ptt_root = Imdb_util.Codec.Reader.u32 r in
  let next_table_id = Imdb_util.Codec.Reader.u32 r in
  let last_checkpoint_lsn = Imdb_util.Codec.Reader.i64 r in
  { hwm; freelist_head; catalog_root; ptt_root; next_table_id; last_checkpoint_lsn }
