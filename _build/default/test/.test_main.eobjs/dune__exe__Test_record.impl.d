test/test_record.ml: Alcotest Bytes Imdb_clock Imdb_storage QCheck QCheck_alcotest
