(* CRC-32 (IEEE 802.3 polynomial, reflected).  Used to validate page images
   and log-record frames; a mismatch signals a torn or corrupt write.

   The state is kept in an unboxed [int] (the CRC fits in 32 bits) and the
   table holds ints, so the per-byte step allocates nothing — this runs
   over every page written and every log record appended. *)

let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

(* CRC over [b.(pos .. pos+len)], as an unsigned int. *)
let bytes_int ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.bytes_int";
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let bytes ?pos ?len b = Int32.of_int (bytes_int ?pos ?len b)
let string s = bytes (Bytes.unsafe_of_string s)
let to_int c = Int32.to_int c land 0xffffffff
