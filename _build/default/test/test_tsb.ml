(* TSB-tree: rectangle search, node splits, and equivalence with a naive
   rectangle list under randomized insertion. *)

module Disk = Imdb_storage.Disk
module P = Imdb_storage.Page
module BP = Imdb_buffer.Buffer_pool
module Wal = Imdb_wal.Wal
module LR = Imdb_wal.Log_record
module Tsb = Imdb_tsb.Tsb
module Ts = Imdb_clock.Timestamp

let standalone ?(page_size = 512) () =
  let disk = Disk.in_memory ~page_size () in
  let wal = Wal.open_device (Wal.Device.in_memory ()) in
  let pool = BP.create ~capacity:128 ~disk ~wal () in
  let next = ref 1 in
  let io =
    {
      Tsb.exec =
        (fun fr op ->
          let lsn = Wal.append wal (LR.Redo_only { page_id = BP.page_id fr; op }) in
          LR.redo_op (BP.bytes fr) op;
          BP.mark_dirty_logged pool fr ~lsn);
      alloc =
        (fun ~level ->
          let pid = !next in
          incr next;
          let fr = BP.pin_new pool pid in
          P.format (BP.bytes fr) ~page_id:pid ~page_type:P.P_tsb_index ~level ();
          BP.mark_dirty_logged pool fr ~lsn:0L;
          BP.unpin pool fr;
          pid);
    }
  in
  Tsb.create ~pool ~io ~table_id:1

let ts ms = Ts.make ~ttime:(Int64.of_int ms) ~sn:0

let rect ?(klo = "") ?khi ~t0 ~t1 () =
  { Tsb.key_low = klo; key_high = khi; t_low = ts t0; t_high = ts t1 }

let test_basic_find () =
  let t = standalone () in
  Tsb.insert t ~rect:(rect ~t0:0 ~t1:100 ()) ~child:50;
  Tsb.insert t ~rect:(rect ~t0:100 ~t1:200 ()) ~child:51;
  Alcotest.(check (option int)) "first slice" (Some 50) (Tsb.find t ~key:"x" ~ts:(ts 40));
  Alcotest.(check (option int)) "boundary belongs right" (Some 51)
    (Tsb.find t ~key:"x" ~ts:(ts 100));
  Alcotest.(check (option int)) "second slice" (Some 51) (Tsb.find t ~key:"x" ~ts:(ts 150));
  Alcotest.(check (option int)) "beyond" None (Tsb.find t ~key:"x" ~ts:(ts 250))

let test_key_partitioned () =
  let t = standalone () in
  Tsb.insert t ~rect:(rect ~klo:"" ~khi:"m" ~t0:0 ~t1:100 ()) ~child:60;
  Tsb.insert t ~rect:(rect ~klo:"m" ~t0:0 ~t1:100 ()) ~child:61;
  Alcotest.(check (option int)) "left keys" (Some 60) (Tsb.find t ~key:"apple" ~ts:(ts 10));
  Alcotest.(check (option int)) "right keys" (Some 61) (Tsb.find t ~key:"zebra" ~ts:(ts 10));
  Alcotest.(check (option int)) "boundary key right" (Some 61)
    (Tsb.find t ~key:"m" ~ts:(ts 10))

let test_range_search () =
  let t = standalone () in
  Tsb.insert t ~rect:(rect ~klo:"" ~khi:"g" ~t0:0 ~t1:100 ()) ~child:70;
  Tsb.insert t ~rect:(rect ~klo:"g" ~khi:"p" ~t0:0 ~t1:100 ()) ~child:71;
  Tsb.insert t ~rect:(rect ~klo:"p" ~t0:0 ~t1:100 ()) ~child:72;
  Tsb.insert t ~rect:(rect ~klo:"" ~khi:"g" ~t0:100 ~t1:200 ()) ~child:73;
  let pages = Tsb.find_range t ~low:"a" ~high:(Some "k") ~ts:(ts 50) in
  Alcotest.(check (list int)) "overlapping pages at t" [ 70; 71 ] pages;
  let all = Tsb.find_range t ~low:"" ~high:None ~ts:(ts 50) in
  Alcotest.(check (list int)) "full range" [ 70; 71; 72 ] all

(* Randomized: many disjoint rectangles (a time-partitioned history per
   key stripe, like real time splits produce) inserted in random order;
   every probe agrees with the naive list. *)
let prop_vs_naive =
  let gen = QCheck.Gen.(pair (int_range 2 6) (int_range 10 80)) in
  QCheck.Test.make ~name:"tsb vs naive rectangle list" ~count:40 (QCheck.make gen)
    (fun (stripes, slices) ->
      let t = standalone ~page_size:512 () in
      let stripe_key i = Printf.sprintf "s%02d" i in
      (* build disjoint rects: stripe i covers [s i, s i+1) x [j*10, j*10+10) *)
      let rects = ref [] in
      for i = 0 to stripes - 1 do
        for j = 0 to slices - 1 do
          let r =
            {
              Tsb.key_low = stripe_key i;
              key_high = (if i = stripes - 1 then None else Some (stripe_key (i + 1)));
              t_low = ts (j * 10);
              t_high = ts ((j * 10) + 10);
            }
          in
          rects := (r, (i * 1000) + j + 100) :: !rects
        done
      done;
      (* shuffle deterministically *)
      let arr = Array.of_list !rects in
      Imdb_util.Rng.shuffle (Imdb_util.Rng.create (stripes + slices)) arr;
      Array.iter (fun (r, child) -> Tsb.insert t ~rect:r ~child) arr;
      ignore (Tsb.check_invariants t);
      (* probe every cell center + some misses *)
      let ok = ref true in
      for i = 0 to stripes - 1 do
        for j = 0 to slices - 1 do
          let key = stripe_key i ^ "x" and probe = ts ((j * 10) + 5) in
          let expect = Some ((i * 1000) + j + 100) in
          let got = Tsb.find t ~key ~ts:probe in
          if got <> expect then begin
            ok := false;
            QCheck.Test.fail_reportf "probe stripe %d slice %d: got %s" i j
              (match got with Some p -> string_of_int p | None -> "none")
          end
        done
      done;
      (* probe outside any rectangle *)
      if Tsb.find t ~key:"s00" ~ts:(ts (slices * 10 + 5)) <> None then
        QCheck.Test.fail_reportf "hit beyond the last slice";
      !ok && Tsb.entry_count t >= stripes * slices)

let test_many_inserts_depth () =
  (* enough entries to force multiple node splits, including root splits *)
  let t = standalone ~page_size:512 () in
  for j = 0 to 299 do
    Tsb.insert t ~rect:(rect ~t0:(j * 10) ~t1:((j * 10) + 10) ()) ~child:(1000 + j)
  done;
  ignore (Tsb.check_invariants t);
  for j = 0 to 299 do
    Alcotest.(check (option int))
      (Printf.sprintf "slice %d" j)
      (Some (1000 + j))
      (Tsb.find t ~key:"anything" ~ts:(ts ((j * 10) + 3)))
  done

let suite =
  [
    Alcotest.test_case "basic find" `Quick test_basic_find;
    Alcotest.test_case "key partitioned" `Quick test_key_partitioned;
    Alcotest.test_case "range search" `Quick test_range_search;
    QCheck_alcotest.to_alcotest prop_vs_naive;
    Alcotest.test_case "many inserts (splits)" `Quick test_many_inserts_depth;
  ]
