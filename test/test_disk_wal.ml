(* Storage devices and the write-ahead log. *)

module Disk = Imdb_storage.Disk
module P = Imdb_storage.Page
module Wal = Imdb_wal.Wal
module LR = Imdb_wal.Log_record
module Tid = Imdb_clock.Tid
module Ts = Imdb_clock.Timestamp

let page_of_string s ~page_size =
  let b = Bytes.make page_size '\000' in
  Bytes.blit_string s 0 b 100 (String.length s);
  b

let disk_behaviour mk () =
  let d = mk () in
  Alcotest.(check bool) "page 0 missing" false (d.Disk.page_exists 0);
  (match d.Disk.read_page 0 with
  | exception Disk.Page_missing 0 -> ()
  | _ -> Alcotest.fail "expected Page_missing");
  let p = page_of_string "first" ~page_size:d.Disk.page_size in
  d.Disk.write_page 3 p;
  Alcotest.(check bool) "page 3 exists" true (d.Disk.page_exists 3);
  Alcotest.(check int) "count covers hwm" 4 (d.Disk.page_count ());
  let r = d.Disk.read_page 3 in
  Alcotest.(check bool) "roundtrip" true (Bytes.equal p r);
  (* write-then-mutate: the device stores a copy *)
  Bytes.set p 100 'X';
  let r2 = d.Disk.read_page 3 in
  Alcotest.(check bool) "copy semantics" true (Bytes.get r2 100 = 'f');
  (* overwrite *)
  d.Disk.write_page 3 (page_of_string "second" ~page_size:d.Disk.page_size);
  Alcotest.(check bool) "overwrite" true
    (Bytes.get (d.Disk.read_page 3) 100 = 's');
  d.Disk.close ()

let test_mem_disk () = disk_behaviour (fun () -> Disk.in_memory ~page_size:1024 ()) ()

let test_file_disk () =
  let path = Filename.temp_file "imdb_disk" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (disk_behaviour (fun () -> Disk.file ~path ~page_size:1024 ()))

let test_file_disk_persistence () =
  let path = Filename.temp_file "imdb_disk" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d = Disk.file ~path ~page_size:512 () in
      d.Disk.write_page 1 (page_of_string "persist" ~page_size:512);
      d.Disk.sync ();
      d.Disk.close ();
      let d2 = Disk.file ~path ~page_size:512 () in
      Alcotest.(check bool) "page survives reopen" true
        (Bytes.get (d2.Disk.read_page 1) 100 = 'p');
      d2.Disk.close ())

let test_failure_injection () =
  let plan = Disk.never_fail () in
  let d = Disk.failing ~plan (Disk.in_memory ~page_size:512 ()) in
  let p = page_of_string "ok" ~page_size:512 in
  d.Disk.write_page 0 p;
  plan.Disk.writes_until_failure <- 1;
  d.Disk.write_page 1 p;
  (match d.Disk.write_page 2 p with
  | exception Disk.Io_failure _ -> ()
  | () -> Alcotest.fail "expected injected failure");
  Alcotest.(check bool) "failed write not persisted" false (d.Disk.page_exists 2);
  (* torn write: only the first half reaches the platter *)
  let plan2 = Disk.never_fail () in
  plan2.Disk.writes_until_failure <- 0;
  plan2.Disk.tear_on_failure <- true;
  let d2 = Disk.failing ~plan:plan2 (Disk.in_memory ~page_size:512 ()) in
  Bytes.set p 400 'z' (* marker in the half that must be lost *);
  (match d2.Disk.write_page 0 p with
  | exception Disk.Io_failure _ -> ()
  | () -> Alcotest.fail "expected torn-write failure");
  Alcotest.(check bool) "torn page exists" true (d2.Disk.page_exists 0);
  Alcotest.(check bool) "torn page differs" false (Bytes.equal p (d2.Disk.read_page 0))

(* --- targeted failure triggers (torture-harness crash points) -------------- *)

let typed_page ty ~page_id ~page_size =
  let b = Bytes.make page_size '\000' in
  P.format b ~page_id ~page_type:ty ();
  P.seal b;
  b

(* The countdown only counts writes matching the armed target, so a crash
   can be aimed at "the Nth history-page write" without counting
   unrelated traffic. *)
let test_trigger_writes_of_type () =
  let plan = Disk.never_fail () in
  let d = Disk.failing ~plan (Disk.in_memory ~page_size:512 ()) in
  let data n = typed_page P.P_data ~page_id:n ~page_size:512 in
  let hist n = typed_page P.P_history ~page_id:n ~page_size:512 in
  Disk.arm plan ~target:(Disk.Writes_of_type [ P.P_history ]) ~after:1 ();
  d.Disk.write_page 1 (data 1);
  d.Disk.write_page 2 (data 2);
  (* untyped raw bytes never match a typed target *)
  d.Disk.write_page 3 (page_of_string "raw" ~page_size:512);
  d.Disk.write_page 4 (hist 4);
  (* first history write consumed the countdown but did not fire *)
  d.Disk.write_page 5 (data 5);
  (match d.Disk.write_page 6 (hist 6) with
  | exception Disk.Io_failure _ -> ()
  | () -> Alcotest.fail "second history write should fail");
  Alcotest.(check int) "fired once" 1 plan.Disk.fired;
  (* once fired the device is dead for every write, typed or not... *)
  (match d.Disk.write_page 7 (data 7) with
  | exception Disk.Io_failure _ -> ()
  | () -> Alcotest.fail "dead device must reject unrelated writes");
  (* ...until the plan is lifted *)
  Disk.lift plan;
  d.Disk.write_page 7 (data 7);
  Alcotest.(check bool) "write succeeds after lift" true (d.Disk.page_exists 7);
  Alcotest.(check int) "fired count preserved across lift" 1 plan.Disk.fired

let test_trigger_writes_to_page () =
  let plan = Disk.never_fail () in
  let d = Disk.failing ~plan (Disk.in_memory ~page_size:512 ()) in
  let p = page_of_string "x" ~page_size:512 in
  Disk.arm plan ~target:(Disk.Writes_to_page 0) ~after:0 ();
  d.Disk.write_page 1 p;
  d.Disk.write_page 2 p;
  Alcotest.(check int) "other pages never count" 0 plan.Disk.fired;
  (match d.Disk.write_page 0 p with
  | exception Disk.Io_failure _ -> ()
  | () -> Alcotest.fail "meta-page write should fail");
  Alcotest.(check bool) "failed write not persisted" false (d.Disk.page_exists 0)

let test_trigger_targeted_tear () =
  let plan = Disk.never_fail () in
  let d = Disk.failing ~plan (Disk.in_memory ~page_size:512 ()) in
  let p = Bytes.make 512 '\000' in
  Bytes.set p 100 'a';
  Bytes.set p 400 'z';
  Disk.arm plan ~tear:true ~target:(Disk.Writes_to_page 5) ~after:0 ();
  d.Disk.write_page 7 p;
  (match d.Disk.write_page 5 p with
  | exception Disk.Io_failure _ -> ()
  | () -> Alcotest.fail "targeted write should tear");
  let torn = d.Disk.read_page 5 in
  Alcotest.(check bool) "first half persisted" true (Bytes.get torn 100 = 'a');
  Alcotest.(check bool) "second half lost" true (Bytes.get torn 400 = '\000')

let test_trigger_predicate () =
  let plan = Disk.never_fail () in
  let d = Disk.failing ~plan (Disk.in_memory ~page_size:512 ()) in
  let p = page_of_string "x" ~page_size:512 in
  (* a raising predicate counts as "no match", never fires *)
  Disk.arm plan ~target:(Disk.Writes_matching (fun _ _ -> failwith "boom")) ~after:0 ();
  d.Disk.write_page 1 p;
  d.Disk.write_page 2 p;
  Alcotest.(check int) "raising predicate never fires" 0 plan.Disk.fired;
  Disk.arm plan ~target:(Disk.Writes_matching (fun id _ -> id mod 2 = 1)) ~after:1 ();
  d.Disk.write_page 2 p;
  d.Disk.write_page 3 p;
  d.Disk.write_page 4 p;
  (match d.Disk.write_page 5 p with
  | exception Disk.Io_failure _ -> ()
  | () -> Alcotest.fail "second odd-page write should fail")

(* --- WAL -------------------------------------------------------------------- *)

let test_wal_append_read () =
  let w = Wal.open_device (Wal.Device.in_memory ()) in
  let l1 = Wal.append w (LR.Begin { tid = Tid.of_int 1 }) in
  let l2 =
    Wal.append w
      (LR.Commit { tid = Tid.of_int 1; ts = Ts.make ~ttime:100L ~sn:0 })
  in
  Alcotest.(check int64) "first lsn" 0L l1;
  Alcotest.(check bool) "lsns grow" true (Int64.compare l2 l1 > 0);
  (* read from the volatile tail *)
  (match Wal.read_at w l1 with
  | LR.Begin { tid } -> Alcotest.(check bool) "tid" true (Tid.equal tid (Tid.of_int 1))
  | _ -> Alcotest.fail "wrong record");
  Wal.flush w;
  (* read from the durable region *)
  (match Wal.read_at w l2 with
  | LR.Commit { ts; _ } ->
      Alcotest.(check bool) "ts" true (Ts.equal ts (Ts.make ~ttime:100L ~sn:0))
  | _ -> Alcotest.fail "wrong record")

let test_wal_crash_drops_tail () =
  let dev = Wal.Device.in_memory () in
  let w = Wal.open_device dev in
  ignore (Wal.append w (LR.Begin { tid = Tid.of_int 1 }));
  Wal.flush w;
  ignore (Wal.append w (LR.Begin { tid = Tid.of_int 2 }));
  (* crash: tail never flushed *)
  Wal.crash_volatile w;
  let w2 = Wal.open_device dev in
  let seen = ref [] in
  Wal.iter_from w2 ~from_lsn:0L (fun _ body -> seen := body :: !seen);
  Alcotest.(check int) "only flushed record survives" 1 (List.length !seen)

let test_wal_torn_tail_truncated () =
  let dev = Wal.Device.in_memory () in
  let w = Wal.open_device dev in
  ignore (Wal.append w (LR.Begin { tid = Tid.of_int 1 }));
  ignore (Wal.append w (LR.End { tid = Tid.of_int 1 }));
  Wal.flush w;
  let good_size = dev.Wal.Device.size () in
  (* simulate a torn frame: append garbage that looks like a partial frame *)
  dev.Wal.Device.append (Bytes.of_string "\x40\x00\x00\x00\xde\xad");
  let w2 = Wal.open_device dev in
  Alcotest.(check int64) "torn tail truncated" (Int64.of_int good_size)
    (Wal.next_lsn w2);
  let seen = ref 0 in
  Wal.iter_from w2 ~from_lsn:0L (fun _ _ -> incr seen);
  Alcotest.(check int) "both good records intact" 2 !seen

let test_wal_corrupt_middle_frame () =
  (* a bit flip in a flushed frame's payload must stop the scan there *)
  let dev = Wal.Device.in_memory () in
  let w = Wal.open_device dev in
  ignore (Wal.append w (LR.Begin { tid = Tid.of_int 1 }));
  let l2 = ignore (Wal.append w (LR.Begin { tid = Tid.of_int 2 })) in
  ignore l2;
  Wal.flush w;
  (* flip a byte inside the second frame's payload *)
  let all = dev.Wal.Device.read ~pos:0 ~len:(dev.Wal.Device.size ()) in
  let mid = Bytes.length all - 2 in
  Bytes.set all mid (Char.chr (Char.code (Bytes.get all mid) lxor 0xff));
  dev.Wal.Device.truncate 0;
  dev.Wal.Device.append all;
  let w2 = Wal.open_device dev in
  let seen = ref 0 in
  Wal.iter_from w2 ~from_lsn:0L (fun _ _ -> incr seen);
  Alcotest.(check int) "scan stops before corrupt frame" 1 !seen

let test_wal_all_record_types_roundtrip () =
  let samples =
    [
      LR.Begin { tid = Tid.of_int 5 };
      LR.Update
        {
          tid = Tid.of_int 5;
          prev_lsn = 17L;
          page_id = 3;
          op = LR.Op_insert { slot = 2; body = Bytes.of_string "cell" };
        };
      LR.Update
        {
          tid = Tid.of_int 5;
          prev_lsn = 17L;
          page_id = 3;
          op =
            LR.Op_version_insert
              {
                slot = 4;
                body = Bytes.of_string "vcell";
                pred_slot = 1;
                pred_old_flags = 2;
                table_id = 10;
              };
        };
      LR.Clr
        {
          tid = Tid.of_int 5;
          undo_next = 3L;
          page_id = 2;
          op = LR.Op_patch { slot = 0; at = 4; old_b = Bytes.of_string "ab"; new_b = Bytes.of_string "cd" };
        };
      LR.Redo_only
        { page_id = 9; op = LR.Op_format { page_type = P.P_history; table_id = 4; level = 0 } };
      LR.Redo_only { page_id = 9; op = LR.Op_image { image = Bytes.make 300 'i' } };
      LR.Redo_only
        {
          page_id = 1;
          op = LR.Op_header { at = 40; old_b = Bytes.make 4 '\000'; new_b = Bytes.make 4 '\001' };
        };
      LR.Redo_only
        {
          page_id = 1;
          op =
            LR.Op_kv_replace
              { slot = 3; old_body = Bytes.of_string "o"; new_body = Bytes.of_string "n"; table_id = 2 };
        };
      LR.Redo_only
        { page_id = 1; op = LR.Op_kv_delete { slot = 3; body = Bytes.of_string "d"; table_id = 2 } };
      LR.Commit { tid = Tid.of_int 5; ts = Ts.make ~ttime:999L ~sn:77 };
      LR.Abort { tid = Tid.of_int 5 };
      LR.End { tid = Tid.of_int 5 };
      LR.Checkpoint
        {
          att = [ (Tid.of_int 5, 10L); (Tid.of_int 6, 20L) ];
          dpt = [ (1, 5L); (2, 7L) ];
          next_tid = Tid.of_int 7;
          clock = Ts.make ~ttime:500L ~sn:2;
        };
    ]
  in
  List.iter
    (fun body ->
      let b = LR.encode body in
      let body' = LR.decode b in
      if body' <> body then
        Alcotest.failf "roundtrip mismatch: %a vs %a" LR.pp body LR.pp body')
    samples

(* A log device that counts its syncs — the observable cost group commit
   and the flush fast path exist to reduce. *)
let counting_log_device () =
  let d = Wal.Device.in_memory () in
  let syncs = ref 0 in
  let dev =
    {
      d with
      Wal.Device.sync =
        (fun () ->
          incr syncs;
          d.Wal.Device.sync ());
    }
  in
  (dev, syncs)

let test_wal_flush_skips_durable_lsn () =
  let dev, syncs = counting_log_device () in
  let w = Wal.open_device dev in
  let l1 = Wal.append w (LR.Begin { tid = Tid.of_int 1 }) in
  Wal.flush w;
  Alcotest.(check int) "first flush syncs" 1 !syncs;
  let l2 = Wal.append w (LR.End { tid = Tid.of_int 1 }) in
  (* an already-durable lsn must return without touching the device,
     leaving the newer tail volatile *)
  Wal.flush ~lsn:l1 w;
  Alcotest.(check int) "durable lsn: no sync" 1 !syncs;
  Alcotest.(check bool) "tail still volatile" true
    (Int64.compare (Wal.flushed_lsn w) l2 <= 0);
  (* an lsn still in the tail forces exactly one *)
  Wal.flush ~lsn:l2 w;
  Alcotest.(check int) "volatile lsn syncs" 2 !syncs;
  (* an empty tail is free *)
  Wal.flush w;
  Alcotest.(check int) "empty tail: no sync" 2 !syncs

let test_wal_group_commit_acks () =
  let dev, syncs = counting_log_device () in
  let w = Wal.open_device dev in
  let acked = ref [] in
  let commit i =
    let lsn =
      Wal.append w
        (LR.Commit { tid = Tid.of_int i; ts = Ts.make ~ttime:(Int64.of_int i) ~sn:0 })
    in
    Wal.register_commit w ~lsn ~on_durable:(fun () -> acked := i :: !acked)
  in
  commit 1;
  commit 2;
  commit 3;
  Alcotest.(check int) "three waiters pending" 3 (Wal.pending_commits w);
  Alcotest.(check (list int)) "no ack before the sync" [] !acked;
  Wal.flush w;
  Alcotest.(check int) "one sync for the whole batch" 1 !syncs;
  Alcotest.(check (list int)) "acked oldest first" [ 1; 2; 3 ] (List.rev !acked);
  Alcotest.(check int) "waiters drained" 0 (Wal.pending_commits w);
  (* registering an already-durable lsn acknowledges synchronously *)
  acked := [];
  Wal.register_commit w ~lsn:0L ~on_durable:(fun () -> acked := 99 :: !acked);
  Alcotest.(check (list int)) "immediate ack" [ 99 ] !acked;
  Alcotest.(check int) "and no extra sync" 1 !syncs

let test_wal_crash_drops_waiters () =
  let dev = Wal.Device.in_memory () in
  let w = Wal.open_device dev in
  let lsn =
    Wal.append w (LR.Commit { tid = Tid.of_int 1; ts = Ts.make ~ttime:9L ~sn:0 })
  in
  let acked = ref false in
  Wal.register_commit w ~lsn ~on_durable:(fun () -> acked := true);
  Wal.crash_volatile w;
  Alcotest.(check int) "waiters dropped with the tail" 0 (Wal.pending_commits w);
  Wal.flush w;
  Alcotest.(check bool) "dropped waiter never fires" false !acked;
  (* and the record it was waiting on is gone from the durable log *)
  let w2 = Wal.open_device dev in
  let seen = ref 0 in
  Wal.iter_from w2 ~from_lsn:0L (fun _ _ -> incr seen);
  Alcotest.(check int) "nothing was durable" 0 !seen

let test_wal_file_device () =
  let path = Filename.temp_file "imdb_wal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = Wal.open_device (Wal.Device.file ~path) in
      ignore (Wal.append w (LR.Begin { tid = Tid.of_int 1 }));
      Wal.flush w;
      Wal.close w;
      let w2 = Wal.open_device (Wal.Device.file ~path) in
      let seen = ref 0 in
      Wal.iter_from w2 ~from_lsn:0L (fun _ _ -> incr seen);
      Alcotest.(check int) "record survives reopen" 1 !seen;
      Wal.close w2)

let suite =
  [
    Alcotest.test_case "mem disk" `Quick test_mem_disk;
    Alcotest.test_case "file disk" `Quick test_file_disk;
    Alcotest.test_case "file disk persistence" `Quick test_file_disk_persistence;
    Alcotest.test_case "failure injection" `Quick test_failure_injection;
    Alcotest.test_case "trigger: writes of type" `Quick test_trigger_writes_of_type;
    Alcotest.test_case "trigger: writes to page" `Quick test_trigger_writes_to_page;
    Alcotest.test_case "trigger: targeted tear" `Quick test_trigger_targeted_tear;
    Alcotest.test_case "trigger: predicate" `Quick test_trigger_predicate;
    Alcotest.test_case "wal append/read" `Quick test_wal_append_read;
    Alcotest.test_case "wal crash drops tail" `Quick test_wal_crash_drops_tail;
    Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail_truncated;
    Alcotest.test_case "wal corrupt frame" `Quick test_wal_corrupt_middle_frame;
    Alcotest.test_case "log record roundtrips" `Quick test_wal_all_record_types_roundtrip;
    Alcotest.test_case "flush skips durable lsn" `Quick test_wal_flush_skips_durable_lsn;
    Alcotest.test_case "group-commit acks" `Quick test_wal_group_commit_acks;
    Alcotest.test_case "crash drops waiters" `Quick test_wal_crash_drops_waiters;
    Alcotest.test_case "wal file device" `Quick test_wal_file_device;
  ]
