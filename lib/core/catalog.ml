(* The table catalog: name -> table descriptor, stored in a system B-tree.

   The IMMORTAL keyword of the paper's DDL ("Create IMMORTAL Table ...")
   becomes the [Immortal] mode flag here; the catalog flag "is visible to
   the storage engine" and decides versioning, PTT participation and AS OF
   support, exactly as in Section 4.1. *)

type table_mode =
  | Immortal (* persistent versions, time splits, AS OF *)
  | Snapshot_table (* versions kept only for snapshot isolation; GC'd *)
  | Conventional (* update in place, no versions *)

let mode_tag = function Immortal -> 0 | Snapshot_table -> 1 | Conventional -> 2

let mode_of_tag = function
  | 0 -> Immortal
  | 1 -> Snapshot_table
  | 2 -> Conventional
  | n -> failwith (Printf.sprintf "Catalog: bad mode tag %d" n)

let pp_mode ppf m =
  Fmt.string ppf
    (match m with
    | Immortal -> "immortal"
    | Snapshot_table -> "snapshot"
    | Conventional -> "conventional")

type table_info = {
  ti_id : int;
  ti_name : string;
  ti_mode : table_mode;
  ti_schema : Schema.t;
  mutable ti_root : int; (* key router root (versioned) / B-tree root (conventional) *)
  mutable ti_tsb_root : int; (* 0 = no TSB index *)
  mutable ti_buf_root : int; (* ingest message-buffer page; 0 = none allocated *)
}

let encode_info ti =
  let w = Imdb_util.Codec.Writer.create () in
  Imdb_util.Codec.Writer.u32 w ti.ti_id;
  Imdb_util.Codec.Writer.lstring w ti.ti_name;
  Imdb_util.Codec.Writer.u8 w (mode_tag ti.ti_mode);
  Imdb_util.Codec.Writer.u32 w ti.ti_root;
  Imdb_util.Codec.Writer.u32 w ti.ti_tsb_root;
  Imdb_util.Codec.Writer.u32 w ti.ti_buf_root;
  Imdb_util.Codec.Writer.bytes w (Schema.encode ti.ti_schema);
  Imdb_util.Codec.Writer.contents w

let decode_info b =
  let r = Imdb_util.Codec.Reader.create b in
  let ti_id = Imdb_util.Codec.Reader.u32 r in
  let ti_name = Imdb_util.Codec.Reader.lstring r in
  let ti_mode = mode_of_tag (Imdb_util.Codec.Reader.u8 r) in
  let ti_root = Imdb_util.Codec.Reader.u32 r in
  let ti_tsb_root = Imdb_util.Codec.Reader.u32 r in
  let ti_buf_root = Imdb_util.Codec.Reader.u32 r in
  let ti_schema = Schema.decode_from r in
  { ti_id; ti_name; ti_mode; ti_schema; ti_root; ti_tsb_root; ti_buf_root }

(* DDL writes are transactional B-tree updates (undoable); the caller
   commits them like any other update. *)
let store tree ti = Imdb_btree.Btree.insert tree ~key:ti.ti_name ~value:(encode_info ti)

(* Buffer-page allocation is a structure modification, not a user-visible
   DDL change: re-store the descriptor redo-only so it survives even if
   the allocating transaction later aborts (the page stays allocated, like
   any other structure-modification page). *)
let store_redo_only tree ti =
  Imdb_btree.Btree.insert tree ~undoable:false ~key:ti.ti_name ~value:(encode_info ti)

let load tree name = Option.map decode_info (Imdb_btree.Btree.find tree ~key:name)
let remove tree name = Imdb_btree.Btree.delete tree ~key:name

let load_all tree =
  Imdb_btree.Btree.fold tree ~init:[] ~f:(fun acc _ v -> decode_info v :: acc)
  |> List.rev
