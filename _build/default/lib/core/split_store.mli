(** Split-store baseline: the storage organization the paper argues
    against (Section 6.3, Postgres-style).  Current versions in one
    B-tree; displaced versions archived to a separate history B-tree
    keyed by (key, start-timestamp).  Current reads touch one store; AS
    OF reads must in general consult both, and AS OF scans must merge
    them — the measured cost of the design. *)

exception Unresolved_tid of Imdb_clock.Tid.t

type t

val create : Engine.t -> table_id:int -> t

(** {1 Writes} (transactional; X-locked; snapshot-isolation validation is
    the engine's) *)

val insert : t -> Engine.txn -> key:string -> payload:string -> unit
val update : t -> Engine.txn -> key:string -> payload:string -> unit
val delete : t -> Engine.txn -> key:string -> unit

(** {1 Reads} *)

val read_current : t -> Engine.txn -> key:string -> string option

val read_as_of :
  t -> Engine.txn -> key:string -> ts:Imdb_clock.Timestamp.t -> string option
(** Probes the current store, then falls through to the history store —
    the double access the paper critiques. *)

val scan_current : t -> Engine.txn -> (string -> string -> unit) -> unit

val scan_as_of :
  t -> Engine.txn -> ts:Imdb_clock.Timestamp.t -> (string -> string -> unit) -> unit
(** Merges the current store with a full history-store traversal. *)

val history_count : t -> int
val current_count : t -> int
