bench/harness.ml: Fmt List String Unix
