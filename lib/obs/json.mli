(** Minimal JSON values: just enough for the stats/bench exposition
    schema, with a printer whose output is byte-stable for a given value
    and a parser for round-trip tests.  No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** keys emitted in list order *)

val to_string : t -> string
(** Compact rendering; object keys appear in list order, so sorting the
    pairs before construction yields a byte-stable document. *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Recursive-descent parser for the subset [to_string] emits (numbers,
    strings with escapes, arrays, objects, literals). *)

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
val to_string_opt : t -> string option
