(** Ingest message buffers (write-optimized ingestion).

    A buffered write appends a {e message} to its table's single
    [P_msg_buffer] page instead of descending to a data page; a flush
    later drains the buffer in arrival order and applies the messages
    through the ordinary version-chain primitives, reproducing exactly
    the pages the unbuffered path would have built.  This module owns
    the message codec and the volatile per-table mirror (arrival queue +
    newest-message-per-key map); the engine owns durability. *)

type kind = M_insert | M_update | M_upsert | M_delete

val pp_kind : Format.formatter -> kind -> unit

type msg = {
  m_seq : int;  (** engine-global arrival order, unique per message *)
  m_tid : Imdb_clock.Tid.t;
  m_kind : kind;
  m_key : string;
  m_payload : string;  (** [""] for delete stubs *)
  m_clock : Imdb_clock.Timestamp.t;
      (** clock snapshot at append; base for deferred split times *)
}

val encode_msg : msg -> bytes
val decode_msg : bytes -> msg

type buf = {
  b_table : int;
  b_page : int;
  mutable b_msgs : msg list;
  b_newest : (string, msg) Hashtbl.t;
  mutable b_count : int;
  mutable b_flushing : bool;
}

val create : table_id:int -> page_id:int -> buf
val count : buf -> int
val is_empty : buf -> bool
val add : buf -> msg -> unit

val newest : buf -> key:string -> msg option
(** Newest buffered message for [key]: a delete means "absent", any other
    kind "present"; [None] defers the existence check to the pages. *)

val drain : buf -> msg list
(** All buffered messages in arrival order; resets the mirror.  The
    caller applies them and truncates the backing page. *)

val remove_seq : buf -> seq:int -> bool
(** Rollback path: drop the message with this sequence number if still
    buffered (recomputing the newest-per-key entry). *)

val of_page : table_id:int -> bytes -> buf
(** Rebuild the mirror from a recovered buffer page image. *)

val max_seq : buf -> int
