(* Lock manager: compatibility, upgrades, release, deadlock detection. *)

module L = Imdb_lock.Lock_manager
module Tid = Imdb_clock.Tid

let t1 = Tid.of_int 1
let t2 = Tid.of_int 2
let t3 = Tid.of_int 3
let rec_a = L.Record (1, "a")
let tbl = L.Table 1

let test_compatibility () =
  let lm = L.create () in
  (* S + S compatible *)
  Alcotest.(check bool) "S grant" true (L.acquire lm t1 rec_a L.S = L.Granted);
  Alcotest.(check bool) "S+S" true (L.acquire lm t2 rec_a L.S = L.Granted);
  (* X conflicts with S *)
  (match L.acquire lm t3 rec_a L.X with
  | L.Would_block blockers -> Alcotest.(check int) "two blockers" 2 (List.length blockers)
  | L.Granted -> Alcotest.fail "X granted over S");
  (* intention locks *)
  Alcotest.(check bool) "IS" true (L.acquire lm t1 tbl L.IS = L.Granted);
  Alcotest.(check bool) "IX+IS" true (L.acquire lm t2 tbl L.IX = L.Granted);
  (match L.acquire lm t3 tbl L.X with
  | L.Would_block _ -> ()
  | L.Granted -> Alcotest.fail "table X granted over intents")

let test_upgrade_and_reentry () =
  let lm = L.create () in
  Alcotest.(check bool) "S" true (L.acquire lm t1 rec_a L.S = L.Granted);
  (* self-upgrade S -> X with no other holders *)
  Alcotest.(check bool) "upgrade to X" true (L.acquire lm t1 rec_a L.X = L.Granted);
  Alcotest.(check bool) "holds X" true (L.holds lm t1 rec_a = Some L.X);
  (* re-request is idempotent *)
  Alcotest.(check bool) "reentrant" true (L.acquire lm t1 rec_a L.X = L.Granted);
  (* but another reader now blocks *)
  (match L.acquire lm t2 rec_a L.S with
  | L.Would_block _ -> ()
  | L.Granted -> Alcotest.fail "S granted over X")

let test_upgrade_blocked_by_other_reader () =
  let lm = L.create () in
  ignore (L.acquire lm t1 rec_a L.S);
  ignore (L.acquire lm t2 rec_a L.S);
  (match L.acquire lm t1 rec_a L.X with
  | L.Would_block blockers ->
      Alcotest.(check bool) "blocked by the other reader" true
        (List.exists (Tid.equal t2) blockers)
  | L.Granted -> Alcotest.fail "upgrade granted over concurrent reader")

let test_release_all () =
  let lm = L.create () in
  ignore (L.acquire lm t1 rec_a L.X);
  ignore (L.acquire lm t1 tbl L.IX);
  Alcotest.(check int) "holds two" 2 (List.length (L.held_by lm t1));
  L.release_all lm t1;
  Alcotest.(check int) "holds none" 0 (List.length (L.held_by lm t1));
  Alcotest.(check bool) "lock free again" true (L.acquire lm t2 rec_a L.X = L.Granted)

let test_deadlock_cycle () =
  let lm = L.create () in
  let rec_b = L.Record (1, "b") in
  ignore (L.acquire lm t1 rec_a L.X);
  ignore (L.acquire lm t2 rec_b L.X);
  (* t1 waits for b (held by t2) *)
  (match L.acquire lm t1 rec_b L.X with
  | L.Would_block _ -> ()
  | L.Granted -> Alcotest.fail "b granted to t1");
  (* t2 requesting a completes the cycle: deadlock *)
  (match L.acquire lm t2 rec_a L.X with
  | exception L.Deadlock victim ->
      Alcotest.(check bool) "victim is requester" true (Tid.equal victim t2)
  | _ -> Alcotest.fail "deadlock undetected");
  (* after releasing t1, t2 can proceed *)
  L.release_all lm t1;
  Alcotest.(check bool) "t2 proceeds after release" true
    (L.acquire lm t2 rec_a L.X = L.Granted)

let test_three_party_cycle () =
  let lm = L.create () in
  let r1 = L.Record (1, "r1") and r2 = L.Record (1, "r2") and r3 = L.Record (1, "r3") in
  ignore (L.acquire lm t1 r1 L.X);
  ignore (L.acquire lm t2 r2 L.X);
  ignore (L.acquire lm t3 r3 L.X);
  ignore (L.acquire lm t1 r2 L.X); (* t1 -> t2 *)
  ignore (L.acquire lm t2 r3 L.X); (* t2 -> t3 *)
  (match L.acquire lm t3 r1 L.X with
  | exception L.Deadlock _ -> ()
  | _ -> Alcotest.fail "three-party deadlock undetected")

let test_no_false_deadlock () =
  let lm = L.create () in
  let rec_b = L.Record (1, "b") in
  ignore (L.acquire lm t1 rec_a L.X);
  (* t2 waits on a; t3 waits on a too: a queue, not a cycle *)
  (match L.acquire lm t2 rec_a L.X with L.Would_block _ -> () | _ -> Alcotest.fail "?");
  (match L.acquire lm t3 rec_a L.X with L.Would_block _ -> () | _ -> Alcotest.fail "?");
  (* an unrelated grant must not be declared a deadlock *)
  Alcotest.(check bool) "independent resource fine" true
    (L.acquire lm t2 rec_b L.X = L.Granted)

(* --- multigranularity upgrade edges ------------------------------------ *)

let test_lub_collapse () =
  (* the merge table, including the S+IX -> X collapse (no SIX mode) *)
  Alcotest.(check bool) "S lub IX = X" true (L.lub L.S L.IX = L.X);
  Alcotest.(check bool) "IX lub S = X" true (L.lub L.IX L.S = L.X);
  Alcotest.(check bool) "IS lub IX = IX" true (L.lub L.IS L.IX = L.IX);
  Alcotest.(check bool) "IS lub S = S" true (L.lub L.IS L.S = L.S);
  Alcotest.(check bool) "X absorbs" true (L.lub L.X L.IS = L.X && L.lub L.S L.X = L.X);
  (* behaviorally: a table-scanning writer (S then IX) ends up exclusive *)
  let lm = L.create () in
  Alcotest.(check bool) "S" true (L.acquire lm t1 tbl L.S = L.Granted);
  Alcotest.(check bool) "then IX" true (L.acquire lm t1 tbl L.IX = L.Granted);
  Alcotest.(check bool) "collapsed to X" true (L.holds lm t1 tbl = Some L.X);
  (match L.acquire lm t2 tbl L.IS with
  | L.Would_block blockers ->
      Alcotest.(check bool) "even IS blocks now" true (List.exists (Tid.equal t1) blockers)
  | L.Granted -> Alcotest.fail "IS granted over collapsed X")

let test_is_ix_interleavings () =
  let lm = L.create () in
  (* intents stack freely in either order *)
  Alcotest.(check bool) "IX" true (L.acquire lm t1 tbl L.IX = L.Granted);
  Alcotest.(check bool) "IS over IX" true (L.acquire lm t2 tbl L.IS = L.Granted);
  (* a whole-table reader conflicts with the writer's intent only *)
  (match L.acquire lm t3 tbl L.S with
  | L.Would_block blockers ->
      Alcotest.(check bool) "IX blocks S" true (List.exists (Tid.equal t1) blockers);
      Alcotest.(check bool) "IS does not" false (List.exists (Tid.equal t2) blockers)
  | L.Granted -> Alcotest.fail "table S granted over IX");
  (* writer commits: S is now compatible with the remaining IS *)
  L.release_all lm t1;
  Alcotest.(check bool) "S over IS after release" true (L.acquire lm t3 tbl L.S = L.Granted);
  (* and a late IX now blocks on the granted S *)
  (match L.acquire lm t1 tbl L.IX with
  | L.Would_block blockers ->
      Alcotest.(check bool) "S blocks IX" true (List.exists (Tid.equal t3) blockers)
  | L.Granted -> Alcotest.fail "IX granted over table S")

let test_deadlock_victim_determinism () =
  (* the victim is always the transaction whose wait edge closes the
     cycle — whichever side that is, on every run *)
  let round closer =
    let lm = L.create () in
    let rec_b = L.Record (1, "b") in
    ignore (L.acquire lm t1 rec_a L.X);
    ignore (L.acquire lm t2 rec_b L.X);
    if closer = 2 then begin
      (match L.acquire lm t1 rec_b L.X with
      | L.Would_block _ -> ()
      | L.Granted -> Alcotest.fail "b granted to t1");
      match L.acquire lm t2 rec_a L.X with
      | exception L.Deadlock victim -> victim
      | _ -> Alcotest.fail "deadlock undetected"
    end
    else begin
      (match L.acquire lm t2 rec_a L.X with
      | L.Would_block _ -> ()
      | L.Granted -> Alcotest.fail "a granted to t2");
      match L.acquire lm t1 rec_b L.X with
      | exception L.Deadlock victim -> victim
      | _ -> Alcotest.fail "deadlock undetected"
    end
  in
  for _ = 1 to 5 do
    Alcotest.(check bool) "t2 closes, t2 dies" true (Tid.equal (round 2) t2);
    Alcotest.(check bool) "t1 closes, t1 dies" true (Tid.equal (round 1) t1)
  done

(* --- blocking waits ----------------------------------------------------- *)

let test_wait_granted_on_release () =
  let lm = L.create () in
  ignore (L.acquire lm t1 rec_a L.X);
  let got = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let waited = L.acquire_wait ~timeout_us:2_000_000 lm t2 rec_a L.X in
        if waited > 0 then Atomic.set got true)
  in
  (* let the waiter park, then release: the wait must resolve to a grant *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "still parked" false (Atomic.get got);
  L.release_all lm t1;
  Domain.join d;
  Alcotest.(check bool) "granted after release" true (Atomic.get got);
  Alcotest.(check bool) "holds X" true (L.holds lm t2 rec_a = Some L.X)

let test_wait_timeout () =
  let lm = L.create () in
  ignore (L.acquire lm t1 rec_a L.X);
  (match L.acquire_wait ~timeout_us:30_000 lm t2 rec_a L.X with
  | exception L.Lock_timeout { tid; res } ->
      Alcotest.(check bool) "victim is the waiter" true (Tid.equal tid t2);
      Alcotest.(check bool) "on the contested resource" true (res = rec_a)
  | _ -> Alcotest.fail "wait succeeded against a held X lock");
  (* the timed-out waiter left no residue: after release, t2 gets through *)
  L.release_all lm t1;
  ignore (L.acquire_wait ~timeout_us:30_000 lm t2 rec_a L.X);
  Alcotest.(check bool) "clean retry" true (L.holds lm t2 rec_a = Some L.X)

let test_wait_deadlock_at_edge_insert () =
  let lm = L.create () in
  let rec_b = L.Record (1, "b") in
  ignore (L.acquire lm t1 rec_a L.X);
  ignore (L.acquire lm t2 rec_b L.X);
  (match L.acquire lm t1 rec_b L.X with
  | L.Would_block _ -> ()
  | L.Granted -> Alcotest.fail "b granted to t1");
  (* the blocking path detects the cycle before parking — no timeout burn *)
  match L.acquire_wait ~timeout_us:5_000_000 lm t2 rec_a L.X with
  | exception L.Deadlock victim ->
      Alcotest.(check bool) "closer is the victim" true (Tid.equal victim t2)
  | _ -> Alcotest.fail "deadlock undetected on the wait path"

let suite =
  [
    Alcotest.test_case "compatibility" `Quick test_compatibility;
    Alcotest.test_case "upgrade & reentry" `Quick test_upgrade_and_reentry;
    Alcotest.test_case "upgrade blocked" `Quick test_upgrade_blocked_by_other_reader;
    Alcotest.test_case "release all" `Quick test_release_all;
    Alcotest.test_case "deadlock cycle" `Quick test_deadlock_cycle;
    Alcotest.test_case "three-party cycle" `Quick test_three_party_cycle;
    Alcotest.test_case "no false deadlock" `Quick test_no_false_deadlock;
    Alcotest.test_case "lub collapse S+IX" `Quick test_lub_collapse;
    Alcotest.test_case "IS/IX interleavings" `Quick test_is_ix_interleavings;
    Alcotest.test_case "deadlock victim determinism" `Quick test_deadlock_victim_determinism;
    Alcotest.test_case "wait granted on release" `Quick test_wait_granted_on_release;
    Alcotest.test_case "wait timeout" `Quick test_wait_timeout;
    Alcotest.test_case "wait deadlock at edge insert" `Quick test_wait_deadlock_at_edge_insert;
  ]
