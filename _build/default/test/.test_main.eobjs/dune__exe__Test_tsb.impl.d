test/test_tsb.ml: Alcotest Array Imdb_buffer Imdb_clock Imdb_storage Imdb_tsb Imdb_util Imdb_wal Int64 Printf QCheck QCheck_alcotest
