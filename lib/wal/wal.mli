(** The write-ahead log: an append-only stream of checksummed frames.

    The LSN of a record is the byte offset of its frame; LSN order is the
    total order of all logged actions.  Appends buffer in memory; [flush]
    makes the prefix durable (the buffer pool calls it before any page
    write — WAL before data — and commit calls it at the commit record).
    Reopening after a crash scans the durable stream and truncates the
    first torn or corrupt frame. *)

(** Log storage devices. *)
module Device : sig
  type t = {
    size : unit -> int;  (** durable bytes *)
    append : bytes -> unit;
    read : pos:int -> len:int -> bytes;
    truncate : int -> unit;
    sync : unit -> unit;
    close : unit -> unit;
  }

  val in_memory : unit -> t
  val file : path:string -> t
end

type t

val open_device : ?metrics:Imdb_obs.Metrics.t -> Device.t -> t
(** Open, scanning for the valid end of log (truncating a torn tail). *)

val set_metrics : t -> Imdb_obs.Metrics.t -> unit
(** Point the log at an engine's registry (appends, flushes, byte
    histograms are charged there). *)

val set_tracer : t -> Imdb_obs.Tracer.t -> unit
(** Point the log at an engine's tracer: [flush] records a "wal.flush"
    span (bytes/frames attrs) around the append+sync, and each drained
    group-commit batch a "wal.group_commit" instant — both nest under
    the commit span that triggered the flush. *)

val append : t -> Log_record.body -> int64
(** Buffer a record; returns its LSN. *)

val flush : ?lsn:int64 -> t -> unit
(** Make the log durable through [lsn] (default: everything buffered).
    Returns without touching the device when [lsn] is already durable;
    otherwise one append+sync covers the whole tail and acknowledges
    every registered group-commit waiter it made durable. *)

val register_commit : t -> lsn:int64 -> on_durable:(unit -> unit) -> unit
(** Group commit: register a commit record's LSN and a durability
    acknowledgment.  [on_durable] fires synchronously if the record is
    already durable, otherwise from the flush that makes it so — never
    before the device sync.  Waiters dropped by [crash_volatile] are
    never fired. *)

val pending_commits : t -> int
(** Number of registered commit waiters not yet durable. *)

val next_lsn : t -> int64
(** End of log, including the unflushed tail. *)

val flushed_lsn : t -> int64

val iter_from : t -> from_lsn:int64 -> (int64 -> Log_record.body -> unit) -> unit
(** Iterate durable records from a frame boundary. *)

val read_at : t -> int64 -> Log_record.body
(** Read one record, durable or still buffered (rollback chains). *)

val crash_volatile : t -> unit
(** Crash simulation: drop the unflushed tail. *)

val close : t -> unit
