lib/sql/lexer.ml: Buffer Fmt List Printf String
