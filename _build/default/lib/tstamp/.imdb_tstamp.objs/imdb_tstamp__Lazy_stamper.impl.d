lib/tstamp/lazy_stamper.ml: Imdb_clock Imdb_version List Ptt Vtt
