test/test_lock.ml: Alcotest Imdb_clock Imdb_lock List
