(* The engine clock.

   Two modes share one interface:
   - [Wall]: the OS clock quantized to the paper's 20 ms resolution.
   - [Logical]: a deterministic clock that tests and benchmarks advance
     explicitly, so experiments are reproducible bit-for-bit.

   [next_commit_timestamp] hands out strictly increasing (ttime, sn)
   pairs: if the quantized time has not moved since the previous commit,
   the 4-byte sequence number is incremented, exactly as the paper extends
   the 20 ms SQL time with a sequence number to make every transaction's
   timestamp unique and correctly ordered.  Monotonicity is enforced even
   if the wall clock steps backward. *)

type mode = Wall | Logical

type t = {
  mode : mode;
  mutable logical_now : int64; (* ms; only meaningful in Logical mode *)
  mutable last : Timestamp.t; (* last issued commit timestamp *)
}

let create_logical ?(start = 1_000_000_000_000L) () =
  { mode = Logical; logical_now = Timestamp.quantize start; last = Timestamp.zero }

let create_wall () = { mode = Wall; logical_now = 0L; last = Timestamp.zero }

let wall_ms () = Int64.of_float (Unix.gettimeofday () *. 1000.0)

let now t =
  match t.mode with
  | Logical -> t.logical_now
  | Wall -> Timestamp.quantize (wall_ms ())

(* Advance the logical clock by [ms] milliseconds (rounded down to the 20 ms
   quantum when read).  No-op requirement: only valid on logical clocks. *)
let advance t ms =
  match t.mode with
  | Logical -> t.logical_now <- Int64.add t.logical_now ms
  | Wall -> invalid_arg "Clock.advance: wall clock cannot be advanced"

let next_commit_timestamp t =
  let wall = now t in
  let candidate =
    if Int64.compare wall (Timestamp.ttime t.last) > 0 then
      Timestamp.make ~ttime:wall ~sn:0
    else Timestamp.succ t.last
  in
  t.last <- candidate;
  candidate

(* Used when reopening a database after a crash: no commit timestamp may
   ever repeat, so the clock floor is raised to the largest timestamp that
   recovery observed in the log. *)
let observe t ts =
  if Timestamp.compare ts t.last > 0 then t.last <- ts

let last_issued t = t.last
