(* The public face of the engine — what a downstream application links
   against.  Wraps engine + transaction plumbing with a typed row API on
   top of table schemas, plus database lifecycle (open with recovery,
   close, crash simulation for tests).

   Every operation below runs under the engine's session gate
   ([Engine.exclusively]), so one [Db.t] may be driven from any number of
   domains — one session each, see [Session].  Single-session callers pay
   two uncontended mutex operations per call and observe behavior (and
   metrics) identical to the pre-concurrency engine. *)

module Ts = Imdb_clock.Timestamp
module E = Engine

type t = {
  eng : E.t;
  disk : Imdb_storage.Disk.t;
  log_device : Imdb_wal.Wal.Device.t;
}

let ex t f = E.exclusively t.eng f

type txn = E.txn
type isolation = E.isolation = Serializable | Snapshot_isolation | As_of of Ts.t

type mode = Catalog.table_mode =
  | Immortal
  | Snapshot_table
  | Conventional

exception No_such_table of string

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

(* Open (or create) a database over explicit devices.  Used directly by
   crash tests, which reopen the same in-memory devices after dropping
   volatile state. *)
let open_devices ?metrics ?(config = E.default_config) ?clock ~disk ~log_device () =
  let clock = match clock with Some c -> c | None -> Imdb_clock.Clock.create_wall () in
  let eng = E.make ?metrics ~disk ~log_device ~config ~clock () in
  let fresh =
    (not (disk.Imdb_storage.Disk.page_exists Meta.meta_page_id))
    && log_device.Imdb_wal.Wal.Device.size () = 0
  in
  if fresh then E.bootstrap eng else Recovery.recover eng;
  { eng; disk; log_device }

(* A throwaway in-memory database. *)
let open_memory ?(config = E.default_config) ?clock () =
  let disk = Imdb_storage.Disk.in_memory ~page_size:config.E.page_size () in
  let log_device = Imdb_wal.Wal.Device.in_memory () in
  open_devices ~config ?clock ~disk ~log_device ()

(* A file-backed database in directory [dir]: data pages in "data.imdb",
   the log in "wal.imdb". *)
let open_dir ?(config = E.default_config) ?clock dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let disk =
    Imdb_storage.Disk.file ~path:(Filename.concat dir "data.imdb")
      ~page_size:config.E.page_size ()
  in
  let log_device = Imdb_wal.Wal.Device.file ~path:(Filename.concat dir "wal.imdb") in
  open_devices ~config ?clock ~disk ~log_device ()

let close t = ex t (fun () -> E.close t.eng)
let checkpoint t = ex t (fun () -> ignore (E.checkpoint t.eng))
let engine t = t.eng

(* The devices this database was opened over.  Crash harnesses need them
   to reopen after an open/recovery attempt itself crashed (in which case
   there is no live handle to call [crash_and_reopen] on). *)
let devices t = (t.disk, t.log_device)
let metrics t = t.eng.E.metrics
let tracer t = t.eng.E.tracer

exception Vacuum_blocked of string

(* Vacuum (paper Section 2.2): after a crash, PTT entries whose volatile
   reference counts were lost can never be collected by the normal rule
   ("we simply end up with certain PTT entries that cannot be deleted").
   The paper's remedy is to force timestamping to completion — it framed
   this as forcing pages to time-split; the operative effect is that
   every committed version carries its timestamp and is durable, after
   which no PTT entry can ever be needed again.

   So: stamp every version in every current data page of every immortal
   table (history pages are fully stamped by construction), force the
   stamping to disk, checkpoint, and drop every PTT entry.  Requires a
   quiet system (no active transactions). *)
let vacuum t =
  ex t @@ fun () ->
  let eng = t.eng in
  if Imdb_clock.Tid.Table.length eng.E.active > 0 then
    raise (Vacuum_blocked "active transactions");
  List.iter
    (fun ti ->
      (* snapshot tables too: a transaction that wrote both a snapshot and
         an immortal table resolves its snapshot-side versions through the
         same (about to be deleted) mapping *)
      if Table.is_versioned ti then begin
        (* buffered messages must land first: their versions need the
           VTT/PTT mappings this vacuum is about to delete *)
        Table.flush_ingest eng ti;
        List.iter
          (fun (_, _, pid) ->
            Imdb_buffer.Buffer_pool.with_page eng.E.pool pid (fun fr ->
                E.stamp_page eng fr))
          (Table.router_ranges eng ti)
      end)
    (E.list_tables eng);
  Imdb_buffer.Buffer_pool.flush_all eng.E.pool;
  ignore (E.checkpoint eng);
  (* every mapping is now unnecessary: versions carry their timestamps *)
  let ptt = E.ptt_exn eng in
  let victims = ref [] in
  Imdb_tstamp.Ptt.iter ptt (fun tid _ -> victims := tid :: !victims);
  List.iter
    (fun tid ->
      ignore (Imdb_tstamp.Ptt.delete ptt tid);
      Imdb_tstamp.Vtt.drop (E.vtt eng) tid)
    !victims;
  List.length !victims

(* Simulate a crash: drop every volatile structure and reopen over the
   same devices, running recovery.  (In-memory devices survive because the
   OCaml values are shared; file devices reopen from the OS.) *)
let crash_and_reopen ?config ?clock t =
  ex t (fun () ->
      Imdb_wal.Wal.crash_volatile t.eng.E.wal;
      Imdb_buffer.Buffer_pool.drop_all t.eng.E.pool);
  (* the dead engine's sampler thread must not keep running (nor keep
     its domain unjoinable) after the "crash" *)
  Imdb_obs.Monitor.stop t.eng.E.monitor;
  let config = Option.value config ~default:t.eng.E.config in
  open_devices ~config ?clock ~disk:t.disk ~log_device:t.log_device ()

(* ------------------------------------------------------------------ *)
(* Transactions                                                          *)
(* ------------------------------------------------------------------ *)

let begin_txn ?(isolation = Serializable) t =
  ex t (fun () -> Txnmgr.begin_txn t.eng ~isolation)

let commit t txn = ex t (fun () -> Txnmgr.commit t.eng txn)
let abort t txn = ex t (fun () -> Txnmgr.abort t.eng txn)

(* Run [f] in a transaction: commit on success, abort on any exception. *)
let with_txn ?isolation t f =
  let txn = begin_txn ?isolation t in
  match f txn with
  | v ->
      ignore (commit t txn);
      v
  | exception e ->
      (try abort t txn with E.Txn_finished -> ());
      raise e

(* ------------------------------------------------------------------ *)
(* DDL (autocommitted)                                                  *)
(* ------------------------------------------------------------------ *)

let create_table t ~name ~mode ~schema =
  with_txn t (fun txn ->
      ex t (fun () ->
          E.with_txn t.eng txn (fun () ->
              ignore (Table.create t.eng ~name ~mode ~schema))))

let drop_table t name =
  with_txn t (fun txn ->
      ex t (fun () -> E.with_txn t.eng txn (fun () -> Table.drop t.eng name)))

(* ALTER TABLE name ENABLE SNAPSHOT (paper §4.1), autocommitted.  On any
   failure the transaction rolls the catalog back; the in-memory table
   cache is restored to the original descriptor as well. *)
let enable_snapshot t ~table =
  match ex t (fun () -> E.table_by_name t.eng table) with
  | None -> raise (No_such_table table)
  | Some original -> (
      try
        with_txn t (fun txn ->
            ex t (fun () ->
                E.with_txn t.eng txn (fun () ->
                    Table.enable_snapshot t.eng original)))
      with e ->
        E.register_table t.eng original;
        raise e)

let table_info t name =
  match E.table_by_name t.eng name with
  | Some ti -> ti
  | None -> raise (No_such_table name)

let list_tables t = ex t (fun () -> E.list_tables t.eng)

(* ------------------------------------------------------------------ *)
(* Raw key/payload operations                                           *)
(* ------------------------------------------------------------------ *)

let insert t txn ~table ~key ~payload =
  ex t (fun () -> Table.insert t.eng txn (table_info t table) ~key ~payload)

let update t txn ~table ~key ~payload =
  ex t (fun () -> Table.update t.eng txn (table_info t table) ~key ~payload)

let upsert t txn ~table ~key ~payload =
  ex t (fun () -> Table.upsert t.eng txn (table_info t table) ~key ~payload)

let delete t txn ~table ~key =
  ex t (fun () -> Table.delete t.eng txn (table_info t table) ~key)

(* Row-read accounting: every row a read operation delivers to the
   caller bumps the transaction's tally (folded into session stats when
   it finishes).  Counting sits here, in the public wrappers, so the
   engine's internal reads (recovery, stamping, flushes) never inflate a
   session's numbers. *)
let count_read txn n = txn.E.tx_rows_read <- txn.E.tx_rows_read + n

let counted txn f k p =
  count_read txn 1;
  f k p

let get t txn ~table ~key =
  ex t (fun () ->
      let r = Table.read t.eng txn (table_info t table) ~key in
      if r <> None then count_read txn 1;
      r)

let scan ?lo ?hi t txn ~table f =
  ex t (fun () -> Table.scan t.eng ?lo ?hi txn (table_info t table) (counted txn f))

let scan_as_of ?lo ?hi t txn ~table ~ts f =
  ex t (fun () ->
      Table.scan_as_of t.eng ?lo ?hi txn (table_info t table) ~t:ts
        (counted txn f))

let history t txn ~table ~key =
  ex t (fun () ->
      let vs = Table.history t.eng txn (table_info t table) ~key in
      count_read txn (List.length vs);
      vs)

(* ------------------------------------------------------------------ *)
(* Typed row operations                                                 *)
(* ------------------------------------------------------------------ *)

let insert_row t txn ~table row =
  ex t @@ fun () ->
  let ti = table_info t table in
  let schema = ti.Catalog.ti_schema in
  Table.insert t.eng txn ti
    ~key:(Schema.key_of_row schema row)
    ~payload:(Schema.payload_of_row schema row)

let update_row t txn ~table row =
  ex t @@ fun () ->
  let ti = table_info t table in
  let schema = ti.Catalog.ti_schema in
  Table.update t.eng txn ti
    ~key:(Schema.key_of_row schema row)
    ~payload:(Schema.payload_of_row schema row)

let upsert_row t txn ~table row =
  ex t @@ fun () ->
  let ti = table_info t table in
  let schema = ti.Catalog.ti_schema in
  Table.upsert t.eng txn ti
    ~key:(Schema.key_of_row schema row)
    ~payload:(Schema.payload_of_row schema row)

let delete_row t txn ~table ~key =
  ex t @@ fun () ->
  let ti = table_info t table in
  Table.delete t.eng txn ti ~key:(Schema.encode_key key)

let get_row t txn ~table ~key =
  ex t @@ fun () ->
  let ti = table_info t table in
  let ekey = Schema.encode_key key in
  Option.map
    (fun payload ->
      count_read txn 1;
      Schema.row_of_parts ti.Catalog.ti_schema ~key:ekey ~payload)
    (Table.read t.eng txn ti ~key:ekey)

let scan_rows ?lo ?hi t txn ~table =
  ex t @@ fun () ->
  let ti = table_info t table in
  let out = ref [] in
  Table.scan t.eng ?lo ?hi txn ti (fun key payload ->
      count_read txn 1;
      out := Schema.row_of_parts ti.Catalog.ti_schema ~key ~payload :: !out);
  List.rev !out

(* Typed key-range scan: rows with [lo <= key < hi] (either bound
   optional), respecting the transaction's isolation. *)
let scan_rows_range ?low ?high t txn ~table =
  let lo = Option.map Schema.encode_key low in
  let hi = Option.map Schema.encode_key high in
  scan_rows ?lo ?hi t txn ~table

let scan_rows_as_of t txn ~table ~ts =
  ex t @@ fun () ->
  let ti = table_info t table in
  let out = ref [] in
  Table.scan_as_of t.eng txn ti ~t:ts (fun key payload ->
      count_read txn 1;
      out := Schema.row_of_parts ti.Catalog.ti_schema ~key ~payload :: !out);
  List.rev !out

let history_rows t txn ~table ~key =
  ex t @@ fun () ->
  let ti = table_info t table in
  let ekey = Schema.encode_key key in
  let vs = Table.history t.eng txn ti ~key:ekey in
  count_read txn (List.length vs);
  List.map
    (fun (ts, payload) ->
      ( ts,
        Option.map
          (fun p -> Schema.row_of_parts ti.Catalog.ti_schema ~key:ekey ~payload:p)
          payload ))
    vs

(* ------------------------------------------------------------------ *)
(* Convenience: single-statement autocommit                             *)
(* ------------------------------------------------------------------ *)

let exec ?isolation t f = with_txn ?isolation t f

(* AS OF convenience: run a read-only function at a past time. *)
let as_of t ts f = with_txn ~isolation:(As_of ts) t f

(* ------------------------------------------------------------------ *)
(* Sessions: one per thread-of-control                                  *)
(* ------------------------------------------------------------------ *)

(* The multi-core topology: open one [Db.t], hand each domain its own
   session, drive transactions through it.  Sessions are cheap handles —
   the engine's session gate does the synchronization — but they make
   ownership explicit (a txn begun on a session is that session's to
   finish) and give each thread-of-control an id for observability.

   Concurrency behavior is governed by the engine config: with
   [lock_wait_timeout_ms = 0] conflicting sessions fail fast (as the
   single-session engine always has); with a timeout they park until the
   holder releases, with deadlock detection and timeout-victim abort. *)
module Session = struct
  type db = t

  type t = { db : db; handle : E.session }

  let id s = s.handle.E.s_id
  let db s = s.db

  (* Transactions begun through a session carry its id, so their tallies
     land in this session's row of the SESSIONS exposition (anonymous
     [Db.begin_txn] transactions pool under id 0). *)
  let begin_txn ?(isolation = Serializable) s =
    ex s.db (fun () ->
        Txnmgr.begin_txn ~session:s.handle.E.s_id s.db.eng ~isolation)

  let commit s txn = commit s.db txn
  let abort s txn = abort s.db txn

  let with_txn ?isolation s f =
    let txn = begin_txn ?isolation s in
    match f txn with
    | v ->
        ignore (commit s txn);
        v
    | exception e ->
        (try abort s txn with E.Txn_finished -> ());
        raise e

  let insert s txn ~table ~key ~payload = insert s.db txn ~table ~key ~payload
  let update s txn ~table ~key ~payload = update s.db txn ~table ~key ~payload
  let upsert s txn ~table ~key ~payload = upsert s.db txn ~table ~key ~payload
  let delete s txn ~table ~key = delete s.db txn ~table ~key
  let get s txn ~table ~key = get s.db txn ~table ~key
  let scan ?lo ?hi s txn ~table f = scan ?lo ?hi s.db txn ~table f

  let scan_as_of ?lo ?hi s txn ~table ~ts f =
    scan_as_of ?lo ?hi s.db txn ~table ~ts f

  let history s txn ~table ~key = history s.db txn ~table ~key
  let exec ?isolation s f = with_txn ?isolation s f
  let as_of s ts f = with_txn ~isolation:(As_of ts) s f
end

let session t = { Session.db = t; handle = E.session t.eng }

(* ------------------------------------------------------------------ *)
(* Introspection                                                        *)
(* ------------------------------------------------------------------ *)

let sessions_json t = ex t (fun () -> E.sessions_json t.eng)

(* No gate: the dump synchronizes on the lock manager's own mutexes, so
   it works even while every session is parked or busy — which is
   exactly when someone wants to look at it. *)
let locks_json t = Imdb_lock.Lock_manager.dump_json t.eng.E.locks
let monitor t = t.eng.E.monitor
let monitor_json t = Imdb_obs.Monitor.to_json t.eng.E.monitor
let flight_report t ~reason = ex t (fun () -> E.flight_report t.eng ~reason)

let write_flight_report t ~reason =
  ex t (fun () -> E.write_flight_report t.eng ~reason)
