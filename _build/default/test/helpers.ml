(* Shared test utilities. *)

module Ts = Imdb_clock.Timestamp
module E = Imdb_core.Engine
module Db = Imdb_core.Db

let default_config = E.default_config

(* A deterministic in-memory database with a logical clock the test
   advances explicitly. *)
let fresh_db ?(config = default_config) () =
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_memory ~config ~clock () in
  (db, clock)

let tick clock = Imdb_clock.Clock.advance clock 20L

(* A tiny (id INT PRIMARY KEY, val VARCHAR) schema used across tests. *)
let kv_schema =
  Imdb_core.Schema.make
    [
      { Imdb_core.Schema.col_name = "id"; col_type = Imdb_core.Schema.T_int };
      { Imdb_core.Schema.col_name = "val"; col_type = Imdb_core.Schema.T_string };
    ]

let row id v = [ Imdb_core.Schema.V_int id; Imdb_core.Schema.V_string v ]

let ts_testable = Alcotest.testable Ts.pp Ts.equal

(* Commit a single-write transaction and return its timestamp. *)
let commit_write db f =
  let txn = Db.begin_txn db in
  f txn;
  match Db.commit db txn with
  | Some ts -> ts
  | None -> Alcotest.fail "expected a writing transaction"

let check_row db ~table ~id expected =
  Db.exec db (fun txn ->
      let got = Db.get_row db txn ~table ~key:(Imdb_core.Schema.V_int id) in
      let pp_row = Fmt.Dump.list Imdb_core.Schema.pp_value in
      Alcotest.(check string)
        (Printf.sprintf "row %d" id)
        (Fmt.str "%a" (Fmt.Dump.option pp_row) expected)
        (Fmt.str "%a" (Fmt.Dump.option pp_row) got))
