bench/main.ml: Ablations Array Fig5 Fig6 Fig_structs Fmt Harness List Micro Sys Unix
