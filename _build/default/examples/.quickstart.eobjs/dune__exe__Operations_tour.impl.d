examples/operations_tour.ml: Fmt Imdb_clock Imdb_core Imdb_sql Imdb_tstamp List Printf
