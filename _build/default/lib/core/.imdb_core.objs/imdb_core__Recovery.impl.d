lib/core/recovery.ml: Engine Fun Imdb_buffer Imdb_clock Imdb_storage Imdb_tstamp Imdb_wal Int64 List Logs Meta Printf Txnmgr
