(* Queryable backup (paper Section 7.2, after [22] "Exploiting a History
   Database for Backup").

   The paper's full design treats the historical pages themselves as an
   always-installed incremental backup.  In this engine the historical
   pages already ARE that: they live in the database file, are never
   modified again, and any past state is directly queryable — so "restore
   to time t" needs no separate backup artifact at all.

   What this module adds is the operational complement: extracting a
   consistent AS OF state into a *separate* database (an off-machine
   copy, a dev snapshot, a shippable artifact).  The extract is itself a
   normal Immortal DB database — queryable, updatable, and carrying its
   own history from the moment of extraction — which is the paper's
   "it can be queried" property. *)

module Ts = Imdb_clock.Timestamp

type report = {
  bk_tables : int;
  bk_rows : int;
  bk_as_of : Ts.t;
}

(* Copy the state of every immortal table of [src] as of [as_of] into
   [dest] (which must be empty of conflicting tables).  Non-immortal
   tables have no past states and are skipped. *)
let extract ~src ~dest ~as_of =
  let tables =
    List.filter
      (fun ti -> ti.Catalog.ti_mode = Catalog.Immortal)
      (Db.list_tables src)
  in
  let rows = ref 0 in
  List.iter
    (fun ti ->
      let name = ti.Catalog.ti_name in
      Db.create_table dest ~name ~mode:Catalog.Immortal ~schema:ti.Catalog.ti_schema;
      (* one loading transaction per table: the backup commits atomically *)
      Db.with_txn dest (fun txn ->
          Db.as_of src as_of (fun src_txn ->
              Table.scan_as_of (Db.engine src) src_txn ti ~t:as_of (fun key payload ->
                  incr rows;
                  Db.insert dest txn ~table:name ~key ~payload))))
    tables;
  { bk_tables = List.length tables; bk_rows = !rows; bk_as_of = as_of }

(* Verify a backup: every row of [dest]'s current state must equal
   [src]'s AS OF state, both ways.  Returns the number of rows compared;
   raises [Failure] on the first divergence. *)
let verify ~src ~dest ~as_of =
  let compared = ref 0 in
  List.iter
    (fun ti ->
      let name = ti.Catalog.ti_name in
      if ti.Catalog.ti_mode = Catalog.Immortal then begin
        let src_rows = Hashtbl.create 64 in
        Db.as_of src as_of (fun txn ->
            Table.scan_as_of (Db.engine src) txn ti ~t:as_of (fun key payload ->
                Hashtbl.replace src_rows key payload));
        Db.exec dest (fun txn ->
            Db.scan dest txn ~table:name (fun key payload ->
                incr compared;
                match Hashtbl.find_opt src_rows key with
                | Some p when String.equal p payload -> Hashtbl.remove src_rows key
                | Some _ -> failwith (Printf.sprintf "backup diverges at %s/%S" name key)
                | None -> failwith (Printf.sprintf "backup has extra row %s/%S" name key)));
        if Hashtbl.length src_rows > 0 then
          failwith (Printf.sprintf "backup missing %d rows of %s" (Hashtbl.length src_rows) name)
      end)
    (Db.list_tables src);
  !compared
