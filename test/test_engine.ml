(* Engine-level integration: TSB/chain equivalence, split-store baseline
   equivalence, snapshot-table semantics, deeper SQL/engine interplay, and
   a no-crash temporal model property over a long randomized run. *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp
module Mo = Imdb_workload.Moving_objects
module Driver = Imdb_workload.Driver

(* --- TSB index agrees with the page-chain walk --------------------------- *)

let test_tsb_chain_equivalence () =
  let events = Mo.generate ~seed:13 ~inserts:40 ~total:2500 () in
  let run ~tsb =
    let config = { E.default_config with E.tsb_enabled = tsb } in
    let db, clock = Driver.fresh_moving_objects ~config ~mode:Db.Immortal () in
    let r = Driver.run_events ~clock db ~table:"MovingObjects" events in
    (db, r.Driver.rr_commit_ts)
  in
  let db_chain, stamps = run ~tsb:false in
  let db_tsb, _ = run ~tsb:true in
  Alcotest.(check bool) "chain run produced splits" true
    (Imdb_obs.Metrics.(get (Db.metrics db_chain) time_splits) > 0);
  (* every 100th commit point: full as-of scans must agree exactly *)
  List.iteri
    (fun i ts ->
      if i mod 100 = 0 then begin
        let scan db =
          let out = ref [] in
          Db.as_of db ts (fun txn ->
              Db.scan db txn ~table:"MovingObjects" (fun k v -> out := (k, v) :: !out));
          List.sort compare !out
        in
        let a = scan db_chain and b = scan db_tsb in
        if a <> b then
          Alcotest.failf "as-of scan mismatch at commit %d (%d vs %d rows)" i
            (List.length a) (List.length b)
      end)
    stamps;
  (* point reads agree too *)
  let mid = List.nth stamps (List.length stamps / 2) in
  for oid = 1 to 40 do
    let read db =
      Db.as_of db mid (fun txn ->
          Db.get_row db txn ~table:"MovingObjects" ~key:(S.V_int oid))
    in
    if read db_chain <> read db_tsb then Alcotest.failf "point mismatch oid %d" oid
  done;
  Db.close db_chain;
  Db.close db_tsb

(* --- split-store baseline produces identical answers ---------------------- *)

let test_split_store_equivalence () =
  let events = Mo.generate ~seed:21 ~inserts:30 ~total:1500 () in
  (* integrated *)
  let db, clock = Driver.fresh_moving_objects ~mode:Db.Immortal () in
  let r = Driver.run_events ~clock db ~table:"MovingObjects" events in
  (* split store over its own engine, same logical clock progression *)
  let clock2 = Imdb_clock.Clock.create_logical () in
  let db2 = Db.open_memory ~clock:clock2 () in
  let ss = Imdb_core.Split_store.create (Db.engine db2) ~table_id:99 in
  let payload x y = Printf.sprintf "%d,%d" x y in
  List.iter
    (fun ev ->
      Imdb_clock.Clock.advance clock2 20L;
      let txn = Db.begin_txn db2 in
      (match ev with
      | Mo.Insert { oid; x; y } ->
          Imdb_core.Split_store.insert ss txn ~key:(S.encode_key (S.V_int oid))
            ~payload:(payload x y)
      | Mo.Update { oid; x; y } ->
          Imdb_core.Split_store.update ss txn ~key:(S.encode_key (S.V_int oid))
            ~payload:(payload x y));
      ignore (Db.commit db2 txn))
    events;
  (* same clock cadence => same commit timestamps; compare states *)
  List.iteri
    (fun i ts ->
      if i mod 150 = 0 then begin
        let a = ref [] in
        Db.as_of db ts (fun txn ->
            Db.scan db txn ~table:"MovingObjects" (fun k v ->
                let row = S.row_of_parts Driver.moving_objects_schema ~key:k ~payload:v in
                match row with
                | [ S.V_int oid; S.V_int x; S.V_int y ] -> a := (oid, payload x y) :: !a
                | _ -> ()));
        let b = ref [] in
        Db.exec db2 (fun txn ->
            Imdb_core.Split_store.scan_as_of ss txn ~ts (fun k v ->
                match S.decode_key k with
                | S.V_int oid -> b := (oid, v) :: !b
                | _ -> ()));
        let a = List.sort compare !a and b = List.sort compare !b in
        if a <> b then
          Alcotest.failf "split-store divergence at commit %d: %d vs %d rows" i
            (List.length a) (List.length b)
      end)
    r.Driver.rr_commit_ts;
  Db.close db;
  Db.close db2

(* --- snapshot tables: versions for SI only, GC'd under pressure ------------ *)

let test_snapshot_table_gc_pressure () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"s" ~mode:Db.Snapshot_table ~schema:kv_schema;
  for i = 1 to 5 do
    tick clock;
    ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"s" (row i "v0")))
  done;
  (* with no open snapshots, heavy updates must NOT grow storage unboundedly:
     gc_versions reclaims instead of time-splitting *)
  for u = 1 to 800 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.update_row db txn ~table:"s" (row (1 + (u mod 5)) (Printf.sprintf "v%d" u))))
  done;
  Alcotest.(check int) "no time splits on snapshot tables" 0
    (Imdb_obs.Metrics.(get (Db.metrics db) time_splits));
  let pages = (Db.engine db).E.meta.Imdb_core.Meta.hwm in
  Alcotest.(check bool) (Printf.sprintf "storage bounded (%d pages)" pages) true (pages < 20);
  (* reads are correct *)
  check_row db ~table:"s" ~id:1 (Some (row 1 "v800"));
  (* AS OF on snapshot tables is refused *)
  (match
     Db.as_of db (Imdb_clock.Clock.last_issued clock) (fun txn ->
         Db.get_row db txn ~table:"s" ~key:(S.V_int 1))
   with
  | exception Imdb_core.Table.Not_versioned _ -> ()
  | _ -> Alcotest.fail "AS OF accepted on a snapshot table");
  Db.close db

let test_snapshot_reader_blocks_gc () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"s" ~mode:Db.Snapshot_table ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"s" (row 1 "original")));
  tick clock;
  (* a reader pins its snapshot *)
  let reader = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  let before = Db.get_row db reader ~table:"s" ~key:(S.V_int 1) in
  (* churn enough to trigger version GC several times *)
  for u = 1 to 600 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.update_row db txn ~table:"s" (row 1 (Printf.sprintf "u%d" u))))
  done;
  (* the reader's version survived GC (oldest-active-snapshot horizon) *)
  let after = Db.get_row db reader ~table:"s" ~key:(S.V_int 1) in
  Alcotest.(check bool) "snapshot version preserved" true
    (before = Some (row 1 "original") && after = Some (row 1 "original"));
  ignore (Db.commit db reader);
  Db.close db

(* --- interleaved transactions under 2PL ------------------------------------ *)

let test_serializable_interleaving () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "x")));
  (* t1 reads (S lock); t2's write must conflict until t1 finishes *)
  let t1 = Db.begin_txn db in
  ignore (Db.get_row db t1 ~table:"t" ~key:(S.V_int 1));
  let t2 = Db.begin_txn db in
  (match Db.update_row db t2 ~table:"t" (row 1 "y") with
  | () -> Alcotest.fail "write granted over reader's S lock"
  | exception Imdb_lock.Lock_manager.Conflict _ -> ());
  ignore (Db.commit db t1);
  (* with the lock released, the writer proceeds *)
  Db.update_row db t2 ~table:"t" (row 1 "y");
  ignore (Db.commit db t2);
  check_row db ~table:"t" ~id:1 (Some (row 1 "y"));
  Db.close db

(* --- long-run temporal model (no crashes, with scans) ----------------------- *)

let prop_temporal_model =
  let gen =
    QCheck.Gen.(list_size (int_range 50 200) (pair (int_range 0 5) (int_range 0 11)))
  in
  QCheck.Test.make ~name:"long-run temporal model with scans" ~count:10
    (QCheck.make gen)
    (fun script ->
      let db, clock = fresh_db () in
      Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
      (* reference: (ts, full state) checkpoints after every commit *)
      let state : (int, string) Hashtbl.t = Hashtbl.create 8 in
      let snapshots = ref [] in
      let step = ref 0 in
      List.iter
        (fun (action, key) ->
          incr step;
          tick clock;
          match action with
          | 0 | 1 | 2 ->
              let v = Printf.sprintf "s%d" !step in
              let ts =
                commit_write db (fun txn -> Db.upsert_row db txn ~table:"t" (row key v))
              in
              Hashtbl.replace state key v;
              snapshots := (ts, Hashtbl.copy state) :: !snapshots
          | 3 ->
              if Hashtbl.mem state key then begin
                let ts =
                  commit_write db (fun txn ->
                      Db.delete_row db txn ~table:"t" ~key:(S.V_int key))
                in
                Hashtbl.remove state key;
                snapshots := (ts, Hashtbl.copy state) :: !snapshots
              end
          | 4 ->
              (* aborted multi-write transaction: must leave no trace *)
              let txn = Db.begin_txn db in
              (try
                 Db.upsert_row db txn ~table:"t" (row key "junk1");
                 Db.upsert_row db txn ~table:"t" (row ((key + 1) mod 12) "junk2");
                 Db.abort db txn
               with _ -> (try Db.abort db txn with _ -> ()))
          | _ -> ())
        script;
      (* check every snapshot by full as-of scan *)
      let ok = ref true in
      List.iter
        (fun (ts, expected) ->
          let got = Hashtbl.create 8 in
          Db.as_of db ts (fun txn ->
              Db.scan db txn ~table:"t" (fun k v ->
                  match
                    S.row_of_parts kv_schema ~key:k ~payload:v
                  with
                  | [ S.V_int id; S.V_string s ] -> Hashtbl.replace got id s
                  | _ -> ()));
          if Hashtbl.length got <> Hashtbl.length expected then begin
            ok := false;
            QCheck.Test.fail_reportf "as of %s: %d rows, want %d" (Ts.to_string ts)
              (Hashtbl.length got) (Hashtbl.length expected)
          end;
          Hashtbl.iter
            (fun k v ->
              if Hashtbl.find_opt got k <> Some v then begin
                ok := false;
                QCheck.Test.fail_reportf "as of %s key %d: got %s want %s"
                  (Ts.to_string ts) k
                  (Option.value (Hashtbl.find_opt got k) ~default:"-")
                  v
              end)
            expected)
        !snapshots;
      (* history length per key = number of committed writes+deletes *)
      Db.close db;
      !ok)

(* --- structural invariants after heavy load --------------------------------- *)

let test_structures_stay_sound () =
  let events = Mo.generate ~seed:31 ~inserts:60 ~total:4000 () in
  let db, clock = Driver.fresh_moving_objects ~mode:Db.Immortal () in
  ignore (Driver.run_events ~clock db ~table:"MovingObjects" events);
  let eng = Db.engine db in
  let ti = Db.table_info db "MovingObjects" in
  (* the key router is a sound B-tree *)
  let rt = Imdb_core.Table.router eng ti in
  Alcotest.(check bool) "router invariants" true
    (Imdb_btree.Btree.check_invariants rt > 0);
  (* the TSB index tiles history with disjoint rectangles *)
  (match Imdb_core.Table.tsb eng ti with
  | Some index ->
      let leaves = Imdb_tsb.Tsb.check_invariants index in
      Alcotest.(check bool) "TSB invariants & populated" true (leaves > 0)
  | None -> Alcotest.fail "TSB expected");
  (* the PTT too *)
  Alcotest.(check bool) "PTT tree invariants" true
    (Imdb_btree.Btree.check_invariants (E.ptt_exn eng).Imdb_tstamp.Ptt.tree >= 0);
  (* and all of it still holds after a crash+recovery *)
  let db = Db.crash_and_reopen ~clock db in
  let eng = Db.engine db in
  let ti = Db.table_info db "MovingObjects" in
  Alcotest.(check bool) "router invariants after recovery" true
    (Imdb_btree.Btree.check_invariants (Imdb_core.Table.router eng ti) > 0);
  (match Imdb_core.Table.tsb eng ti with
  | Some index ->
      Alcotest.(check bool) "TSB invariants after recovery" true
        (Imdb_tsb.Tsb.check_invariants index > 0)
  | None -> ());
  Db.close db


(* First-committer-wins must hold even when the competing deletion's
   whole chain (ending in a stub) moved to a history page via a time
   split before the snapshot writer retried. *)
let test_fcw_through_time_split () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 99 "victim")));
  (* snapshot taken while key 99 is alive *)
  tick clock;
  let t1 = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  (* a competitor deletes it and commits *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.delete_row db txn ~table:"t" ~key:(S.V_int 99)));
  (* churn other keys until time splits push the stub chain to history *)
  let splits () = Imdb_obs.Metrics.(get (Db.metrics db) time_splits) in
  let u = ref 0 in
  while splits () < 2 && !u < 2000 do
    incr u;
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.upsert_row db txn ~table:"t" (row (!u mod 8) (Printf.sprintf "c%d" !u))))
  done;
  Alcotest.(check bool) "splits happened" true (splits () >= 2);
  (* the stub is no longer in the current page... *)
  let eng = Db.engine db in
  let ti = Db.table_info db "t" in
  let key = S.encode_key (S.V_int 99) in
  let pid = Imdb_core.Table.locate_page eng ti ~key in
  Imdb_buffer.Buffer_pool.with_page eng.E.pool pid (fun fr ->
      Alcotest.(check bool) "chain left the current page" true
        (Imdb_version.Vpage.find_current (Imdb_buffer.Buffer_pool.bytes fr) ~key = None));
  (* ...yet the snapshot writer must still conflict *)
  (match Db.upsert_row db t1 ~table:"t" (row 99 "lost-update") with
  | () -> Alcotest.fail "first-committer-wins violated through the time split"
  | exception Imdb_core.Table.Write_conflict _ -> ());
  Db.abort db t1;
  Db.close db

let suite =
  [
    Alcotest.test_case "TSB/chain equivalence" `Quick test_tsb_chain_equivalence;
    Alcotest.test_case "structures stay sound" `Quick test_structures_stay_sound;
    Alcotest.test_case "FCW through time split" `Quick test_fcw_through_time_split;
    Alcotest.test_case "split-store equivalence" `Quick test_split_store_equivalence;
    Alcotest.test_case "snapshot table GC pressure" `Quick test_snapshot_table_gc_pressure;
    Alcotest.test_case "snapshot reader blocks GC" `Quick test_snapshot_reader_blocks_gc;
    Alcotest.test_case "serializable interleaving" `Quick test_serializable_interleaving;
    QCheck_alcotest.to_alcotest prop_temporal_model;
  ]
