(** Binary encoding helpers over [bytes].

    All multi-byte integers are little-endian, matching the on-disk
    format of pages, records and log frames.  Every accessor bounds-checks
    and raises {!Out_of_bounds} with context, so a corrupt page surfaces
    as a diagnosable error. *)

exception Out_of_bounds of string

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val set_u32 : bytes -> int -> int -> unit
val get_i32 : bytes -> int -> int
val set_i32 : bytes -> int -> int -> unit
val get_i64 : bytes -> int -> int64
val set_i64 : bytes -> int -> int64 -> unit

val get_int : bytes -> int -> int
(** An OCaml [int] stored in 8 bytes. *)

val set_int : bytes -> int -> int -> unit
val get_bytes : bytes -> int -> int -> bytes
val set_bytes : bytes -> int -> bytes -> unit
val get_string : bytes -> int -> int -> string
val set_string : bytes -> int -> string -> unit

val write_lstring : bytes -> int -> string -> int
(** u16-length-prefixed string; returns the position past it. *)

val read_lstring : bytes -> int -> string * int
val lstring_size : string -> int

(** Growable output buffer for variable-size structures. *)
module Writer : sig
  type t

  val create : ?size:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val int : t -> int -> unit
  val bytes : t -> bytes -> unit
  val string : t -> string -> unit
  val lstring : t -> string -> unit
  val lbytes : t -> bytes -> unit

  val lbytes32 : t -> bytes -> unit
  (** 32-bit length prefix (page images). *)

  val varint64 : t -> int64 -> unit
  (** Unsigned LEB128 of the 64-bit word (negative values round-trip,
      costing the full 10 bytes). *)

  val varint : t -> int -> unit
  (** Unsigned LEB128 of a non-negative [int]; raises on negatives. *)

  val contents : t -> bytes
  val length : t -> int
end

(** Decoding cursor mirroring {!Writer}. *)
module Reader : sig
  type t = { buf : bytes; mutable pos : int }

  val create : ?pos:int -> bytes -> t
  val remaining : t -> int
  val eof : t -> bool
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int : t -> int
  val bytes : t -> int -> bytes
  val string : t -> int -> string
  val lstring : t -> string
  val lbytes : t -> bytes
  val lbytes32 : t -> bytes
  val varint64 : t -> int64
  val varint : t -> int
end
