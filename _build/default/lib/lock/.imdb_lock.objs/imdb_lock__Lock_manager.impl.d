lib/lock/lock_manager.ml: Fmt Hashtbl Imdb_clock List
