test/test_btree.ml: Alcotest Array Bytes Imdb_btree Imdb_buffer Imdb_storage Imdb_util Imdb_wal List Map Option Printf QCheck QCheck_alcotest String
