(** Continuous monitor: periodic [Metrics.snapshot]s in a bounded ring,
    with derived rates between the two newest samples.

    Sampling is either manual ([sample] — what tests do, with an
    injectable clock, so results are deterministic) or driven by a
    background thread ([start]/[stop]) on a wall-clock interval.  The
    shared [null] monitor short-circuits every operation on one branch,
    so an engine without monitoring pays nothing and perturbs no
    counters (proved by the BENCH_monitorov gate). *)

type t

type sample = {
  s_seq : int;  (** monotonic per monitor, survives ring eviction *)
  s_at_us : int64;  (** clock at capture, microseconds *)
  s_counters : Metrics.snapshot;
}

type rates = {
  r_interval_us : int64;  (** span between the two newest samples *)
  r_txn_per_s : float;
  r_wal_bytes_per_s : float;
  r_splits_per_s : float;  (** time splits + key splits *)
  r_stamping_backlog : int;
      (** ptt.inserts - ptt.deletes at the newest sample: rows whose
          timestamps lazy stamping has not yet made permanent.  A level,
          not a rate. *)
}

val null : t
(** Shared disabled monitor: [sample]/[start]/[stop] are no-ops,
    [samples] is empty, [rates] is [None]. *)

val create :
  ?interval_ms:int -> ?capacity:int -> ?clock_us:(unit -> int64) -> Metrics.t -> t
(** [clock_us] defaults to wall time; tests inject a logical source.
    [interval_ms] (default 1000) only matters for [start];
    [capacity] (default {!default_capacity}) bounds the ring. *)

val default_capacity : int
val enabled : t -> bool
val interval_ms : t -> int

val sample : t -> unit
(** Capture one snapshot now.  Increments [Metrics.monitor_samples]
    (and [monitor_dropped] when the ring evicts). *)

val samples : t -> sample list
(** Oldest first. *)

val dropped : t -> int
val rates : t -> rates option

val to_json : t -> Json.t
(** The whole ring plus newest-interval rates and current p50/p90/p99 of
    every histogram — the payload embedded in flight-recorder reports
    and printed by [imdb monitor]. *)

val start : t -> unit
(** Spawn the background sampler thread (idempotent; no-op on [null]). *)

val stop : t -> unit
(** Signal and join the sampler thread.  Returns within ~50 ms; safe to
    call when never started. *)
