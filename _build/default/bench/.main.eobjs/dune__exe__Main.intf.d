bench/main.mli:
