(* compress: delta-compressed history pages (PR 4).

   The same moving-objects history is built twice — identical seed,
   identical logical clock — once with [history_compression] off and
   once with it on, then probed with full-table AS OF scans at several
   depths into history.

   The claim under test is twofold.  Storage: the bytes logged for
   history images at time splits ([hist.bytes_written], the permanent
   footprint of versioned storage) must shrink by >= 30% on this
   workload.  Transparency: the scans must return identical rows and do
   identical logical work — [asof.pages] and [asof.versions] are equal
   in both modes because compression never changes the page graph, only
   the encoding of immutable images.

   Every emitted quantity is deterministic: byte counts are fixed by the
   workload and the codec, work counters by the access path.  Wall time
   (including decode cost) is printed for the operator but never written
   to the JSON. *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module M = Imdb_obs.Metrics
module Driver = Imdb_workload.Driver
module Mo = Imdb_workload.Moving_objects

let depths = List.init 10 (fun i -> 10 * (i + 1)) (* 10%, ..., 100% *)

type series = {
  c_on : bool;
  c_rows : int;
  c_pages : int;
  c_versions : int;
  c_splits : int;
  c_hist_bytes : int;
  c_zpages : int; (* history pages written compressed *)
  c_fallbacks : int;
  c_raw_bytes : int;
  c_written_bytes : int;
  c_elapsed : float; (* printed only, never emitted *)
}

let run_mode ~on ~inserts ~total =
  let config =
    {
      E.default_config with
      E.tsb_enabled = false;
      E.page_size = 4096;
      pool_capacity = 48;
      history_compression = on;
    }
  in
  let db, clock = Driver.fresh_moving_objects ~config ~mode:Db.Immortal () in
  let events = Mo.generate ~seed:7 ~inserts ~total () in
  let result = Driver.run_events ~clock db ~table:"MovingObjects" events in
  let n = List.length result.Driver.rr_commit_ts in
  let probes =
    List.map
      (fun pc ->
        List.nth result.Driver.rr_commit_ts (min (n - 1) (pc * n / 100)))
      depths
  in
  let m = Db.metrics db in
  let splits = M.get m M.time_splits in
  let hist_bytes = M.get m M.hist_bytes_written in
  let zpages = M.get m M.compress_pages in
  let fallbacks = M.get m M.compress_fallbacks in
  let raw_bytes = M.get m M.compress_raw_bytes in
  let written_bytes = M.get m M.compress_written_bytes in
  Imdb_buffer.Buffer_pool.flush_all (Db.engine db).E.pool;
  let before = M.snapshot m in
  let rows = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun ts ->
      Db.as_of db ts (fun txn ->
          Db.scan db txn ~table:"MovingObjects" (fun _ _ -> incr rows)))
    probes;
  let elapsed = Unix.gettimeofday () -. t0 in
  let d = M.diff ~before ~after:(M.snapshot m) in
  let get name = Option.value ~default:0 (List.assoc_opt name d) in
  let s =
    {
      c_on = on;
      c_rows = !rows;
      c_pages = get M.asof_pages;
      c_versions = get M.asof_versions;
      c_splits = splits;
      c_hist_bytes = hist_bytes;
      c_zpages = zpages;
      c_fallbacks = fallbacks;
      c_raw_bytes = raw_bytes;
      c_written_bytes = written_bytes;
      c_elapsed = elapsed;
    }
  in
  Db.close db;
  s

let compress ~scale =
  let total = Harness.scaled ~scale 36000 in
  let inserts = Harness.scaled ~scale 500 in
  let plain = run_mode ~on:false ~inserts ~total in
  let packed = run_mode ~on:true ~inserts ~total in
  let reduction_pct =
    if plain.c_hist_bytes = 0 then 0
    else
      100 * (plain.c_hist_bytes - packed.c_hist_bytes) / plain.c_hist_bytes
  in
  if reduction_pct < 30 then
    failwith
      (Printf.sprintf
         "compress: history-byte reduction %d%% is below the 30%% floor"
         reduction_pct);
  let module J = Imdb_obs.Json in
  let series s =
    J.Obj
      [
        ("compression", J.Bool s.c_on);
        ("rows", J.Int s.c_rows);
        ("pages", J.Int s.c_pages);
        ("versions", J.Int s.c_versions);
        ("time_splits", J.Int s.c_splits);
        ("hist_bytes", J.Int s.c_hist_bytes);
        ("compressed_pages", J.Int s.c_zpages);
        ("fallbacks", J.Int s.c_fallbacks);
        ("raw_bytes", J.Int s.c_raw_bytes);
        ("written_bytes", J.Int s.c_written_bytes);
      ]
  in
  Harness.emit_json ~name:"compress"
    (J.Obj
       [
         ("schema_version", J.Int M.schema_version);
         ("txns", J.Int total);
         ("series", J.List [ series plain; series packed ]);
         ("reduction_pct", J.Int reduction_pct);
       ]);
  Harness.print_table
    ~title:
      (Printf.sprintf
         "compress: history-image bytes at time splits, %d txns, AS OF \
          probes at %d depths"
         total (List.length depths))
    ~header:
      [ "mode"; "ms"; "rows"; "pages"; "versions"; "splits"; "hist_bytes";
        "zpages"; "fallbk" ]
    (List.map
       (fun s ->
         [
           (if s.c_on then "delta" else "plain");
           Harness.ms s.c_elapsed;
           string_of_int s.c_rows;
           string_of_int s.c_pages;
           string_of_int s.c_versions;
           string_of_int s.c_splits;
           string_of_int s.c_hist_bytes;
           string_of_int s.c_zpages;
           string_of_int s.c_fallbacks;
         ])
       [ plain; packed ]);
  let transparent =
    plain.c_rows = packed.c_rows
    && plain.c_pages = packed.c_pages
    && plain.c_versions = packed.c_versions
    && plain.c_splits = packed.c_splits
  in
  Fmt.pr "scan results and work counters identical across modes: %s@."
    (if transparent then "yes" else "NO — compression is not transparent!");
  Fmt.pr "history bytes: %d plain -> %d delta (%d%% reduction)@."
    plain.c_hist_bytes packed.c_hist_bytes reduction_pct

let run = compress

let () =
  Harness.register ~name:"compress"
    ~doc:"delta-compressed history pages: footprint vs plain (PR 4)" compress
