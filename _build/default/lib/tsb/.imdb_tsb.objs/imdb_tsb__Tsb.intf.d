lib/tsb/tsb.mli: Format Imdb_buffer Imdb_clock Imdb_wal
