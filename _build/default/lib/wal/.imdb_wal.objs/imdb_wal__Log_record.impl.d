lib/wal/log_record.ml: Bytes Codec Fmt Imdb_clock Imdb_storage Imdb_util List Printf
