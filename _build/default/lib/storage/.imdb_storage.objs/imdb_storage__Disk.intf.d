lib/storage/disk.mli:
