(** Table data operations.

    Versioned tables (immortal and snapshot) are a key-router B-tree over
    versioned data pages; every write inserts a version, deletes insert
    stubs, full pages time-split (immortal) or version-GC (snapshot) with
    a key split when current utilization exceeds T.  Conventional tables
    are plain B-trees.  Reads dispatch on the transaction's isolation:
    locked current state, snapshot, or AS OF via page chain / TSB index. *)

exception Duplicate_key of string
exception No_such_key of string

exception Write_conflict of {
  key : string;
  committed_at : Imdb_clock.Timestamp.t option;
}
(** Snapshot-isolation first-committer-wins violation. *)

exception Not_versioned of string
(** AS OF / history requested on a non-immortal table. *)

exception Page_overflow of string

val is_versioned : Catalog.table_info -> bool

(** {1 Structure handles} *)

val router : Engine.t -> Catalog.table_info -> Imdb_btree.Btree.t
val conv_tree : Engine.t -> Catalog.table_info -> Imdb_btree.Btree.t
val tsb : Engine.t -> Catalog.table_info -> Imdb_tsb.Tsb.t option

val locate : Engine.t -> Catalog.table_info -> key:string -> int * string * string option
(** The data page responsible for [key] with its router bounds
    [low, high). *)

val locate_page : Engine.t -> Catalog.table_info -> key:string -> int
(** Hot-path variant: page id only, one router descent. *)

val router_ranges : Engine.t -> Catalog.table_info -> (string * string option * int) list
(** All router entries in key order: (low, high, page_id). *)

(** {1 DDL} *)

val create :
  Engine.t -> name:string -> mode:Catalog.table_mode -> schema:Schema.t -> Catalog.table_info
(** Create storage structures and the catalog entry, inside the caller's
    (DDL) transaction. *)

val drop : Engine.t -> string -> bool

val enable_snapshot : Engine.t -> Catalog.table_info -> int
(** [ALTER TABLE ... ENABLE SNAPSHOT] (paper §4.1): convert a
    conventional table to a snapshot-versioned one, migrating its rows as
    versions of the current (DDL) transaction.  Returns the number of
    rows migrated.  @raise Invalid_argument if already versioned. *)

(** {1 Writes} *)

val insert : Engine.t -> Engine.txn -> Catalog.table_info -> key:string -> payload:string -> unit
val update : Engine.t -> Engine.txn -> Catalog.table_info -> key:string -> payload:string -> unit
val upsert : Engine.t -> Engine.txn -> Catalog.table_info -> key:string -> payload:string -> unit
val delete : Engine.t -> Engine.txn -> Catalog.table_info -> key:string -> unit

(** {1 Reads} *)

val read : Engine.t -> Engine.txn -> Catalog.table_info -> key:string -> string option
(** Isolation-aware point read. *)

val scan :
  Engine.t ->
  ?lo:string ->
  ?hi:string ->
  Engine.txn ->
  Catalog.table_info ->
  (string -> string -> unit) ->
  unit
(** Isolation-aware scan (current, snapshot, or AS OF), optionally
    bounded to the key window [lo, hi) — the access path of the paper's
    own [WHERE Oid < 10] example. *)

val scan_current :
  Engine.t ->
  ?lo:string ->
  ?hi:string ->
  Engine.txn ->
  Catalog.table_info ->
  (string -> string -> unit) ->
  unit

val scan_as_of :
  Engine.t ->
  ?lo:string ->
  ?hi:string ->
  Engine.txn ->
  Catalog.table_info ->
  t:Imdb_clock.Timestamp.t ->
  (string -> string -> unit) ->
  unit
(** Full table state at a past time: for each router range, the page
    covering [t] — the current page when t >= its split time, otherwise
    the chain/TSB target — supplies every key's visible version. *)

val history :
  Engine.t ->
  Engine.txn ->
  Catalog.table_info ->
  key:string ->
  (Imdb_clock.Timestamp.t * string option) list
(** Time travel: every committed state of the record, newest first;
    [None] marks deletion. *)

(** {1 Maintenance} *)

val split_data_page :
  ?split_at:Imdb_clock.Timestamp.t ->
  ?incoming:int ->
  Engine.t ->
  Catalog.table_info ->
  pid:int ->
  low:string ->
  high:string option ->
  unit
(** Make room in a full data page: time split + optional key split
    (immortal) or version GC + fallback key split (snapshot).
    [split_at] is a buffer flush's deferred split time; [incoming] feeds
    the batch-occupancy key-split hint (both default to the classic
    per-row behavior). *)

val flush_ingest : Engine.t -> Catalog.table_info -> unit
(** Drain the table's ingest buffer (no-op when empty or absent): apply
    every buffered message downward and truncate the buffer page.  Reads
    do this implicitly; {!Db.vacuum} and checkpointing call it so
    maintenance sees fully-applied state. *)

val eager_stamp_writes : Engine.t -> Engine.txn -> ts:Imdb_clock.Timestamp.t -> unit
(** Eager-mode commit support: revisit, stamp and {e log} every version
    the transaction wrote (the strategy the paper rejects). *)
