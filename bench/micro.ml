(* Bechamel micro-benchmarks of the engine's hot primitives: slotted-page
   ops, B-tree point ops, version-chain insertion, timestamp handling.
   One Test.make per primitive; OLS estimate of ns/op. *)

open Bechamel
open Toolkit
module P = Imdb_storage.Page
module R = Imdb_storage.Record
module Tid = Imdb_clock.Tid
module Ts = Imdb_clock.Timestamp
module V = Imdb_version.Vpage

let page_with_records n =
  let page = Bytes.make 8192 '\000' in
  P.format page ~page_id:1 ~page_type:P.P_data ();
  for i = 1 to n do
    let key = Printf.sprintf "key%04d" i in
    match V.plan_insert page ~key ~payload:"payloadpayload" ~tid:(Tid.of_int i)
            ~delete_stub:false with
    | Some pi -> V.apply_insert page pi
    | None -> ()
  done;
  page

let test_page_insert =
  let page = page_with_records 10 in
  let body = Bytes.of_string "cellbody" in
  Test.make ~name:"page.insert+delete"
    (Staged.stage (fun () ->
         let slot = P.insert page body in
         P.delete_slot page slot))

let test_record_roundtrip =
  let r =
    { R.flags = 0; key = "key0001"; payload = "payloadpayload"; vp = R.no_vp;
      ttime = Tid.Unstamped (Tid.of_int 7); sn = 0 }
  in
  Test.make ~name:"record.encode+decode"
    (Staged.stage (fun () -> ignore (R.decode (R.encode r))))

let test_find_current =
  let page = page_with_records 50 in
  Test.make ~name:"vpage.find_current(50 recs)"
    (Staged.stage (fun () -> ignore (V.find_current page ~key:"key0025")))

let test_as_of =
  let page = page_with_records 50 in
  (* stamp everything at distinct times *)
  let i = ref 0 in
  P.iter_live page (fun slot ->
      incr i;
      R.set_in_page_ttime page slot (Tid.Stamped (Int64.of_int (!i * 20)));
      R.set_in_page_sn page slot 0);
  let asof = Ts.make ~ttime:500L ~sn:0 in
  Test.make ~name:"vpage.find_stamped_as_of"
    (Staged.stage (fun () -> ignore (V.find_stamped_as_of page ~key:"key0025" ~asof)))

let test_timestamp =
  let ts = Ts.make ~ttime:1_000_000_000_000L ~sn:42 in
  let buf = Bytes.create 12 in
  Test.make ~name:"timestamp.write+read"
    (Staged.stage (fun () ->
         Ts.write buf 0 ts;
         ignore (Ts.read buf 0)))

let test_crc =
  let b = Bytes.make 8192 'x' in
  Test.make ~name:"crc32.page(8KB)" (Staged.stage (fun () -> ignore (Imdb_util.Checksum.bytes b)))

let tests =
  [ test_page_insert; test_record_roundtrip; test_find_current; test_as_of;
    test_timestamp; test_crc ]

let run ~scale:_ =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> Fmt.str "%.1f" e
          | _ -> "n/a"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Fmt.str "%.4f" r
          | None -> "n/a"
        in
        [ name; est; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Harness.print_table ~title:"micro-benchmarks (bechamel, OLS)"
    ~header:[ "primitive"; "ns/op"; "r^2" ]
    rows;
  let module J = Imdb_obs.Json in
  Harness.emit_json ~name:"micro"
    (J.Obj
       [
         ("schema_version", J.Int Imdb_obs.Metrics.schema_version);
         ( "ns_per_op",
           J.Obj
             (List.filter_map
                (function
                  | [ name; est; _r2 ] ->
                      Some
                        ( name,
                          match float_of_string_opt est with
                          | Some f -> J.Float f
                          | None -> J.Null )
                  | _ -> None)
                rows) );
       ])

let () = Harness.register ~name:"micro" ~doc:"engine primitives (bechamel)" run
