lib/core/catalog.ml: Fmt Imdb_btree Imdb_util List Option Printf Schema
