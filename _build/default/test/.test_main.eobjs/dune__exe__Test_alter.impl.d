test/test_alter.ml: Alcotest Helpers Imdb_core Imdb_sql List Printf String
