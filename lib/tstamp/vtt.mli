(** The volatile timestamp table (paper Section 2.2).

    In-memory map TID -> (timestamp, RefCount): both a cache over the
    persistent timestamp table and the bookkeeping that makes its
    incremental garbage collection safe.  RefCount counts a transaction's
    record versions still carrying the TID; when it drains, the
    end-of-log LSN is remembered, and the PTT entry may be deleted once
    the redo-scan start point passes it — proof that every page holding
    the (never logged!) stamping has reached disk. *)

type status = Active | Committed of Imdb_clock.Timestamp.t | Aborted

type entry = {
  tid : Imdb_clock.Tid.t;
  mutable status : status;
  mutable refcount : int;  (** [undefined] for entries faulted from the PTT *)
  mutable lsn_at_zero : int64;  (** end-of-log when refcount drained *)
  mutable commit_end : int64;  (** end-of-log when the commit record was written *)
  mutable persistent : bool;  (** has a PTT entry (wrote an immortal table) *)
}

type t

val undefined : int
val no_lsn : int64

val create : ?metrics:Imdb_obs.Metrics.t -> unit -> t
val set_metrics : t -> Imdb_obs.Metrics.t -> unit
val size : t -> int
val find : t -> Imdb_clock.Tid.t -> entry option

val begin_txn : t -> Imdb_clock.Tid.t -> unit
(** Stage I: transaction begin. *)

val incr_ref : t -> Imdb_clock.Tid.t -> unit
(** Stage II: one more version carries this TID. *)

val decr_ref_rollback : t -> Imdb_clock.Tid.t -> unit
(** A version removed by rollback no longer needs stamping. *)

val commit :
  t -> Imdb_clock.Tid.t -> ts:Imdb_clock.Timestamp.t -> persistent:bool -> end_of_log:int64 -> unit
(** Stage III: the commit timestamp is known. *)

val abort : t -> Imdb_clock.Tid.t -> unit

val note_stamped : t -> Imdb_clock.Tid.t -> end_of_log:int64 -> unit
(** Stage IV: a version was just stamped; the last one records the GC
    threshold LSN. *)

val cache_from_ptt : t -> Imdb_clock.Tid.t -> Imdb_clock.Timestamp.t -> unit
(** Cache a mapping recovered from the PTT with an undefined refcount, so
    GC never fires from it. *)

val resolve :
  t ->
  Imdb_clock.Tid.t ->
  [ `Committed of Imdb_clock.Timestamp.t | `Active | `Aborted ] option

val commit_durable : t -> Imdb_clock.Tid.t -> flushed_lsn:int64 -> bool
(** Is [tid]'s commit record durable given the log is flushed through
    [flushed_lsn]?  Flush-time stamping must not outrun the commit
    record: stamps are unlogged and do not move the page LSN, so
    WAL-before-data alone would let a stamped page reach disk carrying a
    commit timestamp that a crash then loses. *)

val gc_candidates : t -> redo_scan_start:int64 -> (Imdb_clock.Tid.t * bool) list
(** Transactions whose PTT entry is now garbage: refcount drained and
    stamping provably on disk.  The bool is [persistent]. *)

val drop : t -> Imdb_clock.Tid.t -> unit

val drop_if_drained_snapshot : t -> Imdb_clock.Tid.t -> unit
(** Snapshot-only transactions vanish the moment their refcount drains:
    nothing about them needs to survive. *)

val iter : t -> (entry -> unit) -> unit
val pp : Format.formatter -> t -> unit
