lib/storage/page.ml: Bytes Checksum Codec Fmt Imdb_clock Imdb_util List Printf
