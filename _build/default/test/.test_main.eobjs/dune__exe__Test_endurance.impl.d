test/test_endurance.ml: Alcotest Array Filename Fun Helpers Imdb_clock Imdb_core Imdb_storage Imdb_util Imdb_wal List Option Printf String Sys
