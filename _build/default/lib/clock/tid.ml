(* Transaction identifiers.

   TIDs are assigned in ascending order at transaction begin.  On disk a
   record version that has not yet been timestamped carries its updating
   transaction's TID in the 8-byte Ttime field of the versioning tail
   (paper Section 2.1); the high bit distinguishes a TID from a clock
   time, which (being milliseconds since 1970) never reaches 2^63. *)

type t = int64

let flag = Int64.min_int (* high bit *)
let invalid : t = 0L
let first : t = 1L
let next (t : t) : t = Int64.add t 1L
let compare = Int64.compare
let equal = Int64.equal
let to_int64 (t : t) = t
let of_int64 (i : int64) : t = i
let of_int i : t = Int64.of_int i
let pp ppf t = Fmt.pf ppf "T%Ld" t
let to_string t = Fmt.str "%a" pp t

(* Encoding into the Ttime field: either a committed timestamp's ttime
   (high bit clear) or a flagged TID. *)
type ttime_field = Stamped of int64 | Unstamped of t

let encode_ttime_field = function
  | Stamped ms ->
      if Int64.compare ms 0L < 0 then invalid_arg "Tid: negative ttime";
      ms
  | Unstamped tid ->
      if Int64.compare tid 0L <= 0 then invalid_arg "Tid: non-positive tid";
      Int64.logor flag tid

let decode_ttime_field v =
  if Int64.compare v 0L < 0 then Unstamped (Int64.logand v (Int64.lognot flag))
  else Stamped v

(* Hashtbl key module for VTT and friends. *)
module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = Int64.equal
  let hash t = Int64.to_int t land max_int
end)
