(* imdb — command-line front end to the Immortal DB engine.

   Subcommands:
     imdb sql DIR [-e STATEMENTS] [-f FILE]   run SQL (or a REPL on a tty)
     imdb tables DIR                          list tables
     imdb history DIR TABLE KEY               show a record's version history
     imdb workload DIR [-n N] [--objects K]   load a moving-objects stream
     imdb load DIR [-n N] [--no-buffer]       bulk-load rows via buffered ingestion
     imdb stats DIR [--json|--prom|--watch N] storage statistics / metrics JSON
     imdb locks DIR                           lock holders + wait-for graph
     imdb monitor DIR [--watch N]             live rates from the continuous monitor
     imdb trace DIR [--chrome] [-o FILE]      trace a workload, export spans
     imdb checkpoint DIR                      force a checkpoint (and PTT GC)
     imdb backup DIR DEST [--as-of TS]        extract a queryable AS OF backup
     imdb torture [--seed N]... [--ops N] [--crashes N] [--replay]
                                              adversarial crash-recovery torture

   DIR is a database directory (created on first use). *)

open Cmdliner
module Db = Imdb_core.Db
module S = Imdb_core.Schema
module E = Imdb_core.Engine
module Ts = Imdb_clock.Timestamp

let with_db ?config dir f =
  let db = Db.open_dir ?config dir in
  Fun.protect ~finally:(fun () -> Db.close db) (fun () -> f db)

let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Database directory.")

(* --- sql ----------------------------------------------------------------- *)

let run_sql db src =
  let session = Imdb_sql.Executor.make_session db in
  List.iter
    (fun r -> Fmt.pr "%a@." Imdb_sql.Executor.pp_result r)
    (Imdb_sql.Executor.exec_string session src)

let repl db =
  let session = Imdb_sql.Executor.make_session db in
  Fmt.pr "Immortal DB. Statements end with ';'. Ctrl-D to quit.@.";
  let buf = Buffer.create 256 in
  (try
     while true do
       Fmt.pr (if Buffer.length buf = 0 then "imdb> " else "  ... ");
       Fmt.flush Fmt.stdout ();
       let line = input_line stdin in
       Buffer.add_string buf line;
       Buffer.add_char buf '\n';
       if String.contains line ';' then begin
         let src = Buffer.contents buf in
         Buffer.clear buf;
         try
           List.iter
             (fun r -> Fmt.pr "%a@." Imdb_sql.Executor.pp_result r)
             (Imdb_sql.Executor.exec_string session src)
         with e -> Fmt.pr "error: %s@." (Printexc.to_string e)
       end
     done
   with End_of_file -> ());
  Fmt.pr "@."

let sql_cmd =
  let exec =
    Arg.(value & opt (some string) None & info [ "e" ] ~docv:"SQL" ~doc:"Statements to execute.")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "f" ] ~docv:"FILE" ~doc:"Script file to execute.")
  in
  let run dir exec file =
    with_db dir (fun db ->
        match (exec, file) with
        | Some src, _ -> run_sql db src
        | None, Some path ->
            let ic = open_in path in
            let n = in_channel_length ic in
            let src = really_input_string ic n in
            close_in ic;
            run_sql db src
        | None, None -> repl db)
  in
  Cmd.v (Cmd.info "sql" ~doc:"Run SQL statements (or an interactive session).")
    Term.(const run $ dir_arg $ exec $ file)

(* --- tables ---------------------------------------------------------------- *)

let tables_cmd =
  let run dir =
    with_db dir (fun db ->
        List.iter
          (fun ti ->
            Fmt.pr "%-20s %-12s %a@." ti.Imdb_core.Catalog.ti_name
              (Fmt.str "%a" Imdb_core.Catalog.pp_mode ti.Imdb_core.Catalog.ti_mode)
              S.pp ti.Imdb_core.Catalog.ti_schema)
          (Db.list_tables db))
  in
  Cmd.v (Cmd.info "tables" ~doc:"List tables.") Term.(const run $ dir_arg)

(* --- history ---------------------------------------------------------------- *)

let history_cmd =
  let table_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TABLE" ~doc:"Table name.")
  in
  let key_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"KEY"
           ~doc:"Primary key (integer or string).")
  in
  let run dir table key =
    with_db dir (fun db ->
        let key =
          match int_of_string_opt key with
          | Some i -> S.V_int i
          | None -> S.V_string key
        in
        Db.exec db (fun txn ->
            List.iter
              (fun (ts, row) ->
                match row with
                | Some r -> Fmt.pr "%a  %a@." Ts.pp ts (Fmt.Dump.list S.pp_value) r
                | None -> Fmt.pr "%a  (deleted)@." Ts.pp ts)
              (Db.history_rows db txn ~table ~key)))
  in
  Cmd.v (Cmd.info "history" ~doc:"Show a record's version history.")
    Term.(const run $ dir_arg $ table_arg $ key_arg)

(* --- workload --------------------------------------------------------------- *)

let workload_cmd =
  let total =
    Arg.(value & opt int 10000 & info [ "n" ] ~docv:"N" ~doc:"Total transactions.")
  in
  let objects =
    Arg.(value & opt int 500 & info [ "objects" ] ~docv:"K" ~doc:"Number of moving objects.")
  in
  let run dir total objects =
    with_db dir (fun db ->
        (match Db.list_tables db |> List.find_opt (fun ti -> ti.Imdb_core.Catalog.ti_name = "MovingObjects") with
        | Some _ -> ()
        | None ->
            Db.create_table db ~name:"MovingObjects" ~mode:Db.Immortal
              ~schema:Imdb_workload.Driver.moving_objects_schema);
        let events = Imdb_workload.Moving_objects.generate ~inserts:objects ~total () in
        let r = Imdb_workload.Driver.run_events db ~table:"MovingObjects" events in
        Fmt.pr "loaded %d transactions in %.2fs (%.1f us/txn)@."
          r.Imdb_workload.Driver.rr_events r.Imdb_workload.Driver.rr_elapsed_s
          (r.Imdb_workload.Driver.rr_elapsed_s /. float_of_int total *. 1e6))
  in
  Cmd.v (Cmd.info "workload" ~doc:"Load a moving-objects workload.")
    Term.(const run $ dir_arg $ total $ objects)

module M = Imdb_obs.Metrics
module J = Imdb_obs.Json

(* --- load ------------------------------------------------------------------- *)

(* Bulk load through the write-optimized ingestion path: N seeded rows in
   batched transactions.  The default goes through the buffered message
   path (one O(1) append per row, batch flushes); --no-buffer forces the
   per-row descent path for comparison. *)
let load_cmd =
  let total =
    Arg.(value & opt int 100_000 & info [ "n" ] ~docv:"N" ~doc:"Rows to load.")
  in
  let table =
    Arg.(value & opt string "Loaded" & info [ "table" ] ~docv:"TABLE"
           ~doc:"Target table (created as an immortal table if absent).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Key-stream seed.")
  in
  let batch =
    Arg.(value & opt int 500 & info [ "batch" ] ~docv:"B" ~doc:"Rows per transaction.")
  in
  let no_buffer =
    Arg.(value & flag
         & info [ "no-buffer" ]
             ~doc:"Disable buffered ingestion: every row takes the per-row \
                   descent path.")
  in
  let run dir total table seed batch no_buffer =
    let config = { E.default_config with E.ingest_buffering = not no_buffer } in
    with_db ~config dir (fun db ->
        let schema =
          S.make
            [
              { S.col_name = "id"; col_type = S.T_int };
              { S.col_name = "payload"; col_type = S.T_string };
            ]
        in
        (match
           Db.list_tables db
           |> List.find_opt (fun ti -> ti.Imdb_core.Catalog.ti_name = table)
         with
        | Some _ -> ()
        | None -> Db.create_table db ~name:table ~mode:Db.Immortal ~schema);
        let rng = Imdb_util.Rng.create seed in
        let batch = max 1 batch in
        let before = M.snapshot (Db.metrics db) in
        let t0 = Unix.gettimeofday () in
        let i = ref 0 in
        while !i < total do
          Db.exec db (fun txn ->
              for _ = 1 to min batch (total - !i) do
                (* a seeded bulk stream: mostly ascending keys (the shape
                   ingest buffering batches best), with one row in ten
                   revisiting a seeded earlier key so version chains grow *)
                let key =
                  if !i > 0 && Imdb_util.Rng.int rng 10 = 0 then
                    Imdb_util.Rng.int rng !i
                  else !i
                in
                Db.upsert_row db txn ~table
                  [ S.V_int key; S.V_string (Printf.sprintf "r%d.%d" seed !i) ];
                incr i
              done)
        done;
        let elapsed = Unix.gettimeofday () -. t0 in
        let diff = M.diff ~before ~after:(M.snapshot (Db.metrics db)) in
        let d name = Option.value (List.assoc_opt name diff) ~default:0 in
        Fmt.pr "loaded %d rows into %s in %.2fs (%.0f rows/s)@." total table elapsed
          (float_of_int total /. elapsed);
        Fmt.pr "ingest: appends=%d flushes=%d flush-page-visits=%d time-splits=%d@."
          (d M.ingest_appends) (d M.ingest_flushes) (d M.ingest_flush_pages)
          (d M.time_splits))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Bulk-load seeded rows through the write-optimized ingestion path.")
    Term.(const run $ dir_arg $ total $ table $ seed $ batch $ no_buffer)

(* --- stats ------------------------------------------------------------------ *)

(* Walk every immortal table's current pages, feeding the
   page.utilization_pct histogram of the engine's registry on the way, and
   return (table, current-page-count) pairs. *)
let survey_tables db =
  let eng = Db.engine db in
  let m = Db.metrics db in
  List.filter_map
    (fun ti ->
      if ti.Imdb_core.Catalog.ti_mode <> Imdb_core.Catalog.Immortal then None
      else begin
        let ranges = Imdb_core.Table.router_ranges eng ti in
        List.iter
          (fun (_, _, pid) ->
            Imdb_buffer.Buffer_pool.with_page eng.E.pool pid (fun fr ->
                let page = Imdb_buffer.Buffer_pool.bytes fr in
                let size = Bytes.length page in
                let used = size - Imdb_storage.Page.free_space page in
                M.observe m M.h_page_utilization_pct (used * 100 / size)))
          ranges;
        Some (ti, List.length ranges)
      end)
    (Db.list_tables db)

(* The stable document behind `imdb stats DIR --json` (stats_schema_version 1):

   { "stats_schema_version": 1,
     "storage": { "pages_hwm": n, "page_size": n, "tables": n,
                  "ptt_entries": n,
                  "immortal_tables": [ { "name": s, "current_pages": n }, ... ] },
     "metrics": <Metrics.to_json>,
     "traces": <Tracer.to_json> }          -- only with --traces

   Two versioning namespaces meet here: [stats_schema_version] covers this
   wrapper document's shape, while the metrics sub-document carries its own
   [schema_version] ({!Imdb_obs.Metrics.schema_version}) for the registry
   key set.  They advance independently.

   The metrics sub-document always carries the page.utilization_pct
   histogram (populated by the survey above), so p50/p99 are available. *)
let stats_json ?(traces = false) db =
  let eng = Db.engine db in
  M.ensure_histogram (Db.metrics db) M.h_page_utilization_pct;
  let tables = survey_tables db in
  let traces_field =
    if traces then [ ("traces", Imdb_obs.Tracer.to_json (Db.tracer db)) ] else []
  in
  J.Obj
    ([
      ("stats_schema_version", J.Int 1);
      ( "storage",
        J.Obj
          [
            ("pages_hwm", J.Int eng.E.meta.Imdb_core.Meta.hwm);
            ("page_size", J.Int eng.E.config.E.page_size);
            ("tables", J.Int (List.length (Db.list_tables db)));
            ("ptt_entries", J.Int (Imdb_tstamp.Ptt.count (E.ptt_exn eng)));
            ( "immortal_tables",
              J.List
                (List.map
                   (fun (ti, pages) ->
                     J.Obj
                       [
                         ("name", J.String ti.Imdb_core.Catalog.ti_name);
                         ("current_pages", J.Int pages);
                       ])
                   tables) );
          ] );
      ("metrics", M.to_json (Db.metrics db));
    ]
    @ traces_field)

(* --watch: re-poll the registry every N seconds, printing each counter's
   cumulative value next to its per-interval delta.  Within one process
   the deltas show the engine's background work (stamping, checkpoints);
   pointed at a live workload run they show its rates. *)
let stats_watch db secs =
  let m = Db.metrics db in
  let prev = ref (M.snapshot m) in
  while true do
    Unix.sleepf (float_of_int (max 1 secs));
    let now = M.snapshot m in
    let deltas = M.diff ~before:!prev ~after:now in
    prev := now;
    let tm = Unix.localtime (Unix.gettimeofday ()) in
    Fmt.pr "--- %02d:%02d:%02d (interval %ds)@." tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec (max 1 secs);
    List.iter
      (fun (name, total) ->
        let d = Option.value (List.assoc_opt name deltas) ~default:0 in
        if d <> 0 then Fmt.pr "  %-32s %10d  (+%d)@." name total d)
      now;
    Fmt.flush Fmt.stdout ()
  done

let stats_cmd =
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON (stats_schema_version 1).")
  in
  let traces_flag =
    Arg.(value & flag
         & info [ "traces" ]
             ~doc:"Include the retained trace spans in the JSON (opens the \
                   database with tracing enabled, so the open itself — \
                   recovery, checkpoint — is traced).  Implies --json.")
  in
  let prom_flag =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"Emit the metrics registry in Prometheus text exposition \
                   format (counters, gauges, histogram quantile summaries).")
  in
  let watch_arg =
    Arg.(value & opt (some int) None
         & info [ "watch" ] ~docv:"SECS"
             ~doc:"Re-poll every SECS seconds, printing cumulative counters \
                   with per-interval deltas, until interrupted.")
  in
  let run dir json traces prom watch =
    let config =
      if traces then { E.default_config with E.trace_sampling = 1 }
      else E.default_config
    in
    with_db ~config dir (fun db ->
        match watch with
        | Some secs -> stats_watch db secs
        | None ->
        if prom then begin
          M.ensure_histogram (Db.metrics db) M.h_page_utilization_pct;
          ignore (survey_tables db);
          print_string (M.to_prometheus (Db.metrics db))
        end
        else if json || traces then Fmt.pr "%s@." (J.to_string (stats_json ~traces db))
        else begin
          let eng = Db.engine db in
          Fmt.pr "pages allocated (high-water):  %d@." eng.E.meta.Imdb_core.Meta.hwm;
          Fmt.pr "tables:                        %d@." (List.length (Db.list_tables db));
          Fmt.pr "PTT entries:                   %d@."
            (Imdb_tstamp.Ptt.count (E.ptt_exn eng));
          (match Imdb_tstamp.Ptt.min_tid (E.ptt_exn eng) with
          | Some tid -> Fmt.pr "oldest PTT entry:              %a@." Imdb_clock.Tid.pp tid
          | None -> ());
          List.iter
            (fun (ti, pages) ->
              Fmt.pr "table %s: %d current pages@." ti.Imdb_core.Catalog.ti_name pages)
            (survey_tables db);
          match M.histogram (Db.metrics db) M.h_page_utilization_pct with
          | Some h ->
              Fmt.pr "page utilization %%:            p50=%d p99=%d max=%d@." h.M.h_p50
                h.M.h_p99 h.M.h_max
          | None -> ()
        end)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Show storage statistics.")
    Term.(const run $ dir_arg $ json_flag $ traces_flag $ prom_flag $ watch_arg)

(* --- locks ------------------------------------------------------------------ *)

let locks_cmd =
  let run dir =
    with_db dir (fun db -> Fmt.pr "%s@." (J.to_string (Db.locks_json db)))
  in
  Cmd.v
    (Cmd.info "locks"
       ~doc:"Dump the lock manager: current holders and the live wait-for \
             graph, as one consistent cut across all shards.")
    Term.(const run $ dir_arg)

(* --- monitor ---------------------------------------------------------------- *)

let monitor_cmd =
  let interval =
    Arg.(value & opt int 1000
         & info [ "interval" ] ~docv:"MS" ~doc:"Monitor sampling interval in milliseconds.")
  in
  let watch =
    Arg.(value & opt int 2
         & info [ "watch" ] ~docv:"SECS" ~doc:"Refresh the live view every SECS seconds.")
  in
  let count =
    Arg.(value & opt int 0
         & info [ "count" ] ~docv:"K" ~doc:"Stop after K refreshes (0: until interrupted).")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Take one sample, emit the monitor ring (samples, rates, \
                   histogram percentiles) as JSON, and exit.")
  in
  let run dir interval watch count json =
    let config = { E.default_config with E.monitor_interval_ms = max 1 interval } in
    with_db ~config dir (fun db ->
        let mon = Db.monitor db in
        if json then begin
          Imdb_obs.Monitor.sample mon;
          Fmt.pr "%s@." (J.to_string (Db.monitor_json db))
        end
        else begin
          let m = Db.metrics db in
          let k = ref 0 in
          while count = 0 || !k < count do
            incr k;
            Unix.sleepf (float_of_int (max 1 watch));
            (match Imdb_obs.Monitor.rates mon with
            | Some r ->
                Fmt.pr
                  "txn/s=%.1f  wal B/s=%.0f  splits/s=%.2f  stamping-backlog=%d"
                  r.Imdb_obs.Monitor.r_txn_per_s r.Imdb_obs.Monitor.r_wal_bytes_per_s
                  r.Imdb_obs.Monitor.r_splits_per_s r.Imdb_obs.Monitor.r_stamping_backlog;
                (match M.histogram m M.h_commit_latency_ms with
                | Some h -> Fmt.pr "  commit-ms p50=%d p99=%d" h.M.h_p50 h.M.h_p99
                | None -> ());
                Fmt.pr "@."
            | None -> Fmt.pr "(no samples yet: interval %dms)@."
                        (Imdb_obs.Monitor.interval_ms mon));
            Fmt.flush Fmt.stdout ()
          done
        end)
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Live engine monitor: continuous sampling of the metrics \
             registry with derived rates (txn/s, WAL bytes/s, splits/s, \
             stamping backlog) and latency percentiles.")
    Term.(const run $ dir_arg $ interval $ watch $ count $ json_flag)

(* --- trace ------------------------------------------------------------------ *)

(* Open with tracing at full sampling, drive some work (user SQL, or a
   small moving-objects workload sized to force time splits and a
   checkpoint), and dump the retained spans — natively, or as Chrome
   trace-event JSON for Perfetto / chrome://tracing. *)
let trace_cmd =
  let chrome_flag =
    Arg.(value & flag
         & info [ "chrome" ]
             ~doc:"Emit Chrome trace-event JSON (load in Perfetto or \
                   chrome://tracing) instead of the native span list.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace to FILE instead of stdout.")
  in
  let exec =
    Arg.(value & opt (some string) None
         & info [ "e" ] ~docv:"SQL" ~doc:"Statements to run under tracing (results discarded).")
  in
  let total =
    Arg.(value & opt int 2000
         & info [ "n" ] ~docv:"N" ~doc:"Workload transactions to trace when no SQL is given.")
  in
  let objects =
    Arg.(value & opt int 100 & info [ "objects" ] ~docv:"K" ~doc:"Moving objects in the workload.")
  in
  let sampling =
    Arg.(value & opt int 1
         & info [ "sampling" ] ~docv:"S" ~doc:"Record every S-th root span (1 = all).")
  in
  let run dir chrome out exec total objects sampling =
    let config = { E.default_config with E.trace_sampling = max 1 sampling } in
    with_db ~config dir (fun db ->
        (match exec with
        | Some src ->
            let session = Imdb_sql.Executor.make_session db in
            ignore (Imdb_sql.Executor.exec_string session src)
        | None ->
            (match
               Db.list_tables db
               |> List.find_opt (fun ti -> ti.Imdb_core.Catalog.ti_name = "MovingObjects")
             with
            | Some _ -> ()
            | None ->
                Db.create_table db ~name:"MovingObjects" ~mode:Db.Immortal
                  ~schema:Imdb_workload.Driver.moving_objects_schema);
            let events = Imdb_workload.Moving_objects.generate ~inserts:objects ~total () in
            ignore (Imdb_workload.Driver.run_events db ~table:"MovingObjects" events);
            (* a temporal read and a checkpoint, so the trace shows the
               whole lifecycle: commits, stamping, splits, AS OF, PTT GC *)
            let ts = Imdb_clock.Clock.last_issued (Db.engine db).E.clock in
            ignore (Db.as_of db ts (fun txn -> Db.scan_rows_as_of db txn ~table:"MovingObjects" ~ts));
            Db.checkpoint db);
        let tracer = Db.tracer db in
        let body =
          if chrome then Imdb_obs.Tracer.to_chrome_string tracer
          else Imdb_obs.Tracer.to_json_string tracer
        in
        match out with
        | None -> print_string body; print_newline ()
        | Some path ->
            let oc = open_out path in
            output_string oc body;
            close_out oc;
            Fmt.pr "wrote %s (%d spans, %d slow, %d dropped)@." path
              (List.length (Imdb_obs.Tracer.spans tracer))
              (List.length (Imdb_obs.Tracer.slow_ops tracer))
              (Imdb_obs.Tracer.dropped tracer))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace a workload (or SQL) and export the spans, optionally as Chrome trace JSON.")
    Term.(const run $ dir_arg $ chrome_flag $ out $ exec $ total $ objects $ sampling)

let checkpoint_cmd =
  let run dir =
    with_db dir (fun db ->
        Db.checkpoint db;
        Fmt.pr "checkpoint complete@.")
  in
  Cmd.v (Cmd.info "checkpoint" ~doc:"Force a checkpoint (and PTT garbage collection).")
    Term.(const run $ dir_arg)

let backup_cmd =
  let dest_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DEST"
           ~doc:"Destination database directory (created).")
  in
  let as_of_arg =
    Arg.(value & opt (some string) None & info [ "as-of" ] ~docv:"DATETIME"
           ~doc:"Extract the state as of this time (default: now).")
  in
  let run dir dest as_of =
    with_db dir (fun db ->
        let ts =
          match as_of with
          | Some s -> Ts.of_string s
          | None -> Imdb_clock.Clock.last_issued (Db.engine db).E.clock
        in
        let dest_db = Db.open_dir dest in
        Fun.protect
          ~finally:(fun () -> Db.close dest_db)
          (fun () ->
            let r = Imdb_core.Backup.extract ~src:db ~dest:dest_db ~as_of:ts in
            let n = Imdb_core.Backup.verify ~src:db ~dest:dest_db ~as_of:ts in
            Fmt.pr "backed up %d tables, %d rows as of %a (%d rows verified)@."
              r.Imdb_core.Backup.bk_tables r.Imdb_core.Backup.bk_rows Ts.pp
              r.Imdb_core.Backup.bk_as_of n))
  in
  Cmd.v
    (Cmd.info "backup" ~doc:"Extract a queryable AS OF backup into a new database.")
    Term.(const run $ dir_arg $ dest_arg $ as_of_arg)

let vacuum_cmd =
  let run dir =
    with_db dir (fun db ->
        let n = Db.vacuum db in
        Fmt.pr "vacuum complete: %d timestamp-table entries collected@." n)
  in
  Cmd.v
    (Cmd.info "vacuum"
       ~doc:"Force timestamping to completion and empty the persistent timestamp table.")
    Term.(const run $ dir_arg)

(* --- torture ------------------------------------------------------------- *)

module H = Imdb_torture.Harness

let torture_cmd =
  let seeds_arg =
    Arg.(value & opt_all int [] & info [ "seed" ] ~docv:"N"
           ~doc:"Seed to run (repeatable; default: seed 0).")
  in
  let ops_arg =
    Arg.(value & opt int H.default.H.ops & info [ "ops" ] ~docv:"N"
           ~doc:"Write-operation budget per seed.")
  in
  let crashes_arg =
    Arg.(value & opt int H.default.H.crashes & info [ "crashes" ] ~docv:"N"
           ~doc:"Scheduled crash points per seed.")
  in
  let replay_arg =
    Arg.(value & flag & info [ "replay" ]
           ~doc:"Print every workload action while running — replay a \
                 failing seed from a CI report to watch it unfold.")
  in
  let bulk_arg =
    Arg.(value & flag & info [ "bulk" ]
           ~doc:"Mix bulk-insert transactions (16-48 upserts each) into the \
                 workload, stressing the buffered-ingestion flush path.")
  in
  let sessions_arg =
    Arg.(value & opt int 1 & info [ "sessions" ] ~docv:"N"
           ~doc:"Run N concurrent sessions on separate domains (partitioned \
                 keys, commits merged into the oracle in timestamp order, \
                 plug pulled mid-group-commit).  Default 1: the classic \
                 deterministic serial loop.")
  in
  let flight_dir_arg =
    Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"On failure, write a flight-recorder report (monitor \
                 samples, session stats, lock dump, traces, metrics) into \
                 DIR — the artifact CI uploads.")
  in
  let run seeds ops crashes replay bulk sessions flight_dir =
    let seeds = if seeds = [] then [ 0 ] else seeds in
    let failed = ref false in
    List.iter
      (fun seed ->
        let cfg =
          { H.default with
            H.seed; ops; crashes; bulk; sessions; flight_dir;
            log = (if replay then Some (fun s -> Fmt.pr "  %s@." s) else None) }
        in
        Fmt.pr "torture: %s@." (H.describe_config cfg);
        match H.run cfg with
        | H.Passed r -> Fmt.pr "%a@." H.pp_report r
        | H.Failed f ->
            failed := true;
            Fmt.pr "%a@." H.pp_failure f;
            if not replay then begin
              Fmt.pr "minimizing the failing run...@.";
              let mcfg, mf = H.minimize cfg f in
              Fmt.pr "minimized: %s@.%a@." (H.describe_config mcfg) H.pp_failure mf;
              Fmt.pr "reproduce: imdb torture --seed %d --ops %d --crashes %d --replay@."
                mf.H.f_seed mcfg.H.ops mcfg.H.crashes
            end)
      seeds;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:"Run the adversarial crash/workload torture harness against a \
             linearized AS OF oracle.  Exits non-zero on any oracle \
             disagreement, printing the seed that reproduces it.")
    Term.(const run $ seeds_arg $ ops_arg $ crashes_arg $ replay_arg $ bulk_arg
          $ sessions_arg $ flight_dir_arg)

(* IMDB_LOG=debug|info enables engine/recovery diagnostics on stderr. *)
let setup_logs () =
  match Sys.getenv_opt "IMDB_LOG" with
  | None -> ()
  | Some level ->
      let level =
        match String.lowercase_ascii level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | "warning" | "warn" -> Some Logs.Warning
        | _ -> Some Logs.Info
      in
      Logs.set_level level;
      Logs.set_reporter
        (Logs.format_reporter ~app:Fmt.stderr ~dst:Fmt.stderr ())

let () =
  setup_logs ();
  let info =
    Cmd.info "imdb" ~version:"1.0.0"
      ~doc:"Immortal DB: a transaction-time database engine."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ sql_cmd; tables_cmd; history_cmd; workload_cmd; load_cmd; stats_cmd;
            locks_cmd; monitor_cmd; trace_cmd; checkpoint_cmd; backup_cmd;
            vacuum_cmd; torture_cmd ]))
