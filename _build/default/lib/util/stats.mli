(** Global named work counters.

    Wall-clock numbers are noisy; the benches additionally report these
    deterministic counters (disk I/O, log volume, stamping, page visits),
    reproducible bit-for-bit under the logical clock.  [snapshot]/[diff]
    bracket a workload. *)

type snapshot = (string * int) list

val counter : string -> int ref
val incr : ?by:int -> string -> unit
val get : string -> int
val reset_all : unit -> unit
val snapshot : unit -> snapshot
val diff : before:snapshot -> after:snapshot -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit

(** Canonical counter names (producers and consumers share these). *)

val disk_reads : string
val disk_writes : string
val log_appends : string
val log_bytes : string
val log_flushes : string
val buf_hits : string
val buf_misses : string
val buf_evictions : string
val pages_allocated : string
val stamps_applied : string
val ptt_inserts : string
val ptt_deletes : string
val ptt_lookups : string
val vtt_hits : string
val time_splits : string
val key_splits : string
val asof_pages : string
val asof_versions : string
val txn_commits : string
val txn_aborts : string
