(** Adversarial crash/workload torture harness.

    A deterministic, seed-driven loop drives long randomized histories of
    INSERT/UPDATE/DELETE transactions (with aborts, AS OF reads,
    checkpoints and vacuums mixed in) against a real engine over a
    failure-injecting in-memory disk, crashes it at targeted points —
    mid-group-commit, mid-time-split, mid-checkpoint, during recovery
    itself, with or without a torn page on the failing write — recovers,
    and verifies {e every} past AS OF time, every record history and the
    current state against the linearized {!Model} oracle.

    Determinism contract: a [config] fully determines the run.  The
    workload PRNG, the crash schedule and the logical clock all derive
    from [seed], so a failure reproduces from the printed seed alone. *)

module Ts := Imdb_clock.Timestamp

(** Where a scheduled crash aims. *)
type crash_kind =
  | Crash_wal_tail
      (** power loss with an open group-commit batch: no injected I/O
          error, just dropped volatile state while commits are pending *)
  | Crash_data_write  (** a data-page write fails after a short countdown *)
  | Crash_history_write
      (** the next history-page write fails: mid-time-split, exactly when
          the split persists the historical page *)
  | Crash_meta_write  (** the next meta-page write fails: mid-checkpoint *)
  | Crash_recovery
      (** crash, then fail one of recovery's own writes, then recover
          again: redo/undo idempotence across a double crash *)
  | Crash_buffer_write
      (** the next ingest-buffer-page write fails: the buffered write
          path loses its volatile buffer mirror with messages (possibly
          half-flushed) in flight *)

val crash_kind_name : crash_kind -> string
val all_crash_kinds : crash_kind list

type crash_point = {
  cp_commit : int;  (** arm once this many transactions have committed *)
  cp_kind : crash_kind;
  cp_torn : bool;  (** tear the page on the failing write *)
}

(** Deliberate oracle/engine disagreement, for detector self-tests: a
    sabotaged run MUST fail.  [Skew_stamp n] records every n-th commit in
    the oracle one timestamp early — what an engine stamping bug looks
    like from the oracle's side; [Drop_write n] omits every n-th commit's
    first write — a lost update. *)
type sabotage = Skew_stamp of int | Drop_write of int

type config = {
  seed : int;
  ops : int;  (** write-operation budget (a transaction carries 1–4) *)
  crashes : int;  (** scheduled crash points *)
  tables : int;
  keys_per_table : int;
  page_size : int;
  pool_capacity : int;
  group_commit_window : int;
  auto_checkpoint_every : int;
  history_compression : bool;
  verify_every : int;
      (** full oracle verification every n commits even without a crash
          (0 = only after recoveries and at the end) *)
  verify_limit : int;
      (** cap on AS OF times checked per table per verification, newest
          checked densely, older ones by stride (0 = every one) *)
  bulk : bool;
      (** mix in bulk-insert transactions (~1 in 12): 16–48 upserts in
          one transaction, stressing the buffered-ingestion flush path *)
  sessions : int;
      (** > 1: concurrent mode — each burst runs this many domains, one
          session each over a disjoint key partition, then merges their
          commits into the oracle in timestamp order and occasionally
          pulls the plug mid-group-commit.  The interleaving is not
          deterministic, but every per-session workload is, and every
          verification failure is a real bug.  1 (the default): the
          classic deterministic single-session loop. *)
  sabotage : sabotage option;
  schedule : crash_point list option;  (** [None]: derived from [seed] *)
  log : (string -> unit) option;  (** replay mode: every action printed *)
  flight_dir : string option;
      (** write a flight-recorder report (monitor samples, session stats,
          lock dump, slow-op traces, metrics) into this directory when a
          run fails — what CI uploads as the failure artifact *)
}

val default : config
(** The capped profile: 10_000 ops, 60 crashes, 2 tables × 48 keys,
    1 KiB pages, group-commit window 4, full verification. *)

val schedule_of : config -> crash_point list
(** The crash schedule a run will use (derived from the seed unless
    overridden) — what the minimizer shrinks. *)

type report = {
  r_seed : int;
  r_ops : int;  (** write ops executed *)
  r_commits : int;
  r_aborts : int;
  r_crashes : int;  (** crash points that actually fired *)
  r_crash_kinds : (string * int) list;  (** fired count per kind name *)
  r_torn : int;  (** crashes that tore the failing write *)
  r_recoveries : int;
  r_double_recoveries : int;  (** recoveries that crashed and re-ran *)
  r_lost_commits : int;  (** unacknowledged commits erased by crashes *)
  r_asof_checks : int;  (** full-state AS OF comparisons *)
  r_boundary_checks : int;  (** comparisons just below a commit timestamp *)
  r_history_checks : int;  (** per-key history comparisons *)
  r_spot_checks : int;  (** inline mid-run AS OF spot checks *)
  r_time_splits : int;
  r_checkpoints : int;
  r_torn_rebuilt : int;  (** pages recovery rebuilt after checksum failure *)
}

type failure = {
  f_seed : int;
  f_op : int;  (** write-op counter at failure *)
  f_commits : int;
  f_msg : string;
  f_trace : string list;  (** most recent actions, oldest first *)
}

type outcome = Passed of report | Failed of failure

val run : config -> outcome

val minimize : config -> failure -> config * failure
(** Shrink a failing run: truncate the op budget to the failing op, then
    greedily drop crash points while the failure persists.  Returns the
    smallest still-failing config and its failure (deterministic; every
    candidate is a full re-run). *)

val pp_report : Format.formatter -> report -> unit
val pp_failure : Format.formatter -> failure -> unit

val describe_config : config -> string
(** One line: seed / ops / crashes / schedule summary, for artifacts. *)
