lib/wal/wal.ml: Bytes Checksum Codec Imdb_util Int64 List Log_record Printf Stats Unix
