lib/buffer/buffer_pool.mli: Imdb_storage Imdb_wal
