bench/fig5.ml: Fmt Gc Harness Imdb_core Imdb_util Imdb_workload List Printf
