(* Slotted pages.

   Layout (little-endian, [header_size] = 56 bytes):

   {v
     0  u32  checksum          over bytes [8, page_size) at write time
     4  u32  page_id
     8  i64  page_lsn          LSN of the last *logged* change
    16  u8   page_type
    17  u8   flags
    18  u16  slot_count        slot entries allocated (live + dead)
    20  u16  free_lower        end of the cell area (cells grow upward)
    22  u16  garbage           dead-cell bytes reclaimable by compaction
    24  u32  history_pointer   page id of the historical page chain (0 = none)
    28  12B  split_time        start time of versions in this page (Fig. 3)
    40  u32  next_page         sibling / chain link
    44  u32  prev_page
    48  u32  table_id
    52  u16  level             B-tree level, 0 = leaf
    54  u16  reserved
    56  ...  cells
    ...      free space
    end ...  slot array, u16 per slot, growing downward from page end
   v}

   Each slot entry holds the byte offset of its cell, or 0 if the slot is
   dead.  A cell is a u16 body length followed by the body.  Slot numbers
   are stable for the lifetime of the data they name: cells move only
   under [compact], which preserves slot numbering, so the intra-page
   version chains of Immortal DB (which address versions by slot number)
   survive compaction.

   Mutating operations are deterministic functions of the page image, a
   property the physiological WAL redo relies on: replaying the same
   operations against the same starting image reproduces identical bytes.

   The checksum is *not* maintained incrementally; callers (the buffer
   pool) call [seal] just before writing a page to disk and [verify] after
   reading one. *)

open Imdb_util

let header_size = 56
let no_page = 0 (* page id 0 is the metadata page, usable as a null link *)
let dead_slot = 0 (* slot-entry value marking a dead slot *)

type page_type =
  | P_free
  | P_meta
  | P_data (* clustered-table leaf holding record versions *)
  | P_history (* historical versions produced by time splits *)
  | P_index (* B-tree internal node *)
  | P_tsb_index (* TSB-tree index node *)
  | P_heap (* unversioned auxiliary storage (split-store baseline) *)
  | P_history_compressed (* delta-compressed historical page (Vcompress) *)
  | P_msg_buffer (* buffered ingest messages awaiting a downward flush *)

let int_of_page_type = function
  | P_free -> 0
  | P_meta -> 1
  | P_data -> 2
  | P_history -> 3
  | P_index -> 4
  | P_tsb_index -> 5
  | P_heap -> 6
  | P_history_compressed -> 7
  | P_msg_buffer -> 8

let page_type_of_int = function
  | 0 -> P_free
  | 1 -> P_meta
  | 2 -> P_data
  | 3 -> P_history
  | 4 -> P_index
  | 5 -> P_tsb_index
  | 6 -> P_heap
  | 7 -> P_history_compressed
  | 8 -> P_msg_buffer
  | n -> invalid_arg (Printf.sprintf "Page.page_type_of_int: %d" n)

let pp_page_type ppf t =
  Fmt.string ppf
    (match t with
    | P_free -> "free"
    | P_meta -> "meta"
    | P_data -> "data"
    | P_history -> "history"
    | P_index -> "index"
    | P_tsb_index -> "tsb-index"
    | P_heap -> "heap"
    | P_history_compressed -> "history-z"
    | P_msg_buffer -> "msg-buffer")

(* --- header accessors -------------------------------------------------- *)

let page_id b = Codec.get_u32 b 4
let set_page_id b v = Codec.set_u32 b 4 v
let lsn b = Codec.get_i64 b 8
let set_lsn b v = Codec.set_i64 b 8 v
let page_type b = page_type_of_int (Codec.get_u8 b 16)
let set_page_type b v = Codec.set_u8 b 16 (int_of_page_type v)
let flags b = Codec.get_u8 b 17
let set_flags b v = Codec.set_u8 b 17 v
let slot_count b = Codec.get_u16 b 18
let set_slot_count b v = Codec.set_u16 b 18 v
let free_lower b = Codec.get_u16 b 20
let set_free_lower b v = Codec.set_u16 b 20 v
let garbage b = Codec.get_u16 b 22
let set_garbage b v = Codec.set_u16 b 22 v
let history_pointer b = Codec.get_u32 b 24
let set_history_pointer b v = Codec.set_u32 b 24 v
let split_time b = Imdb_clock.Timestamp.read b 28
let set_split_time b v = Imdb_clock.Timestamp.write b 28 v
let next_page b = Codec.get_u32 b 40
let set_next_page b v = Codec.set_u32 b 40 v
let prev_page b = Codec.get_u32 b 44
let set_prev_page b v = Codec.set_u32 b 44 v
let table_id b = Codec.get_u32 b 48
let set_table_id b v = Codec.set_u32 b 48 v
let level b = Codec.get_u16 b 52
let set_level b v = Codec.set_u16 b 52 v

(* --- formatting & checksums -------------------------------------------- *)

let format b ~page_id:id ~page_type:pt ?(table_id = 0) ?(level = 0) () =
  Bytes.fill b 0 (Bytes.length b) '\000';
  set_page_id b id;
  set_page_type b pt;
  set_slot_count b 0;
  set_free_lower b header_size;
  set_garbage b 0;
  set_history_pointer b no_page;
  set_split_time b Imdb_clock.Timestamp.zero;
  set_next_page b no_page;
  set_prev_page b no_page;
  set_table_id b table_id;
  set_level b level

let seal b =
  let crc = Checksum.bytes_int ~pos:8 ~len:(Bytes.length b - 8) b in
  Codec.set_u32 b 0 crc

let verify b =
  let crc = Checksum.bytes_int ~pos:8 ~len:(Bytes.length b - 8) b in
  Codec.get_u32 b 0 = crc

(* --- slot array --------------------------------------------------------- *)

let slot_entry_pos b slot = Bytes.length b - (2 * (slot + 1))

let slot_offset b slot =
  if slot < 0 || slot >= slot_count b then
    invalid_arg
      (Printf.sprintf "Page.slot_offset: slot %d of %d (page %d)" slot
         (slot_count b) (page_id b));
  Codec.get_u16 b (slot_entry_pos b slot)

let set_slot_offset b slot v = Codec.set_u16 b (slot_entry_pos b slot) v
let slot_live b slot = slot_offset b slot <> dead_slot

(* --- cells --------------------------------------------------------------- *)

let cell_length b slot =
  let off = slot_offset b slot in
  if off = dead_slot then invalid_arg "Page.cell_length: dead slot";
  Codec.get_u16 b off

(* Byte offset of the cell *body* for [slot]; stable until the next
   [compact], which only runs inside mutating operations.  Callers must not
   hold an offset across a mutation. *)
let cell_body_offset b slot =
  let off = slot_offset b slot in
  if off = dead_slot then invalid_arg "Page.cell_body_offset: dead slot";
  off + 2

let read_cell b slot = Codec.get_bytes b (cell_body_offset b slot) (cell_length b slot)

let patch_cell b slot ~at ~src =
  let body = cell_body_offset b slot and len = cell_length b slot in
  if at < 0 || at + Bytes.length src > len then
    invalid_arg "Page.patch_cell: out of cell bounds";
  Codec.set_bytes b (body + at) src

let read_cell_part b slot ~at ~len =
  let body = cell_body_offset b slot and total = cell_length b slot in
  if at < 0 || at + len > total then invalid_arg "Page.read_cell_part";
  Codec.get_bytes b (body + at) len

(* Slot-preserving compaction: rewrite all live cells contiguously from
   [header_size], leaving slot numbering untouched. *)
let compact b =
  let n = slot_count b in
  let live = ref [] in
  for slot = 0 to n - 1 do
    let off = Codec.get_u16 b (slot_entry_pos b slot) in
    if off <> dead_slot then live := (slot, off) :: !live
  done;
  (* Copy in ascending original-offset order so that blits never overlap
     destructively (destination is always <= source). *)
  let live = List.sort (fun (_, a) (_, b) -> compare a b) !live in
  let cursor = ref header_size in
  List.iter
    (fun (slot, off) ->
      let total = 2 + Codec.get_u16 b off in
      if off <> !cursor then begin
        Bytes.blit b off b !cursor total;
        set_slot_offset b slot !cursor
      end;
      cursor := !cursor + total)
    live;
  set_free_lower b !cursor;
  set_garbage b 0

let slot_array_start b = Bytes.length b - (2 * slot_count b)

(* Free bytes available without compaction (contiguous middle gap). *)
let contiguous_free b = slot_array_start b - free_lower b

(* Free bytes available after compaction. *)
let free_space b = contiguous_free b + garbage b

(* First dead slot, if any; insertion reuses dead slots before growing the
   slot array, deterministically.  Manual loop: runs on every insert. *)
let find_dead_slot b =
  let psize = Bytes.length b in
  let n = slot_count b in
  let rec go i =
    if i >= n then None
    else if Bytes.get_uint16_le b (psize - 2 - (2 * i)) = dead_slot then Some i
    else go (i + 1)
  in
  go 0

(* Would a body of [len] bytes fit (possibly after compaction)?  Accounts
   for the 2-byte cell header and for a new slot entry if no dead slot is
   available. *)
let fits b len =
  let slot_cost = match find_dead_slot b with Some _ -> 0 | None -> 2 in
  free_space b >= len + 2 + slot_cost

(* The slot that [insert] would use: first dead slot, else [slot_count]. *)
let choose_insert_slot b =
  match find_dead_slot b with Some s -> s | None -> slot_count b

(* Insert [body] at [slot].  [slot] must be either a dead slot or exactly
   [slot_count] (growing the array by one).  Raises [Failure] when the page
   cannot hold the cell; callers check [fits] first (split path). *)
let insert_at_slot b slot body =
  let len = Bytes.length body in
  let n = slot_count b in
  let growing = slot = n in
  if not (growing || (slot < n && not (slot_live b slot))) then
    invalid_arg
      (Printf.sprintf "Page.insert_at_slot: slot %d not insertable (count %d)" slot n);
  let slot_cost = if growing then 2 else 0 in
  if free_space b < len + 2 + slot_cost then
    failwith
      (Printf.sprintf "Page.insert_at_slot: page %d full (need %d, free %d)"
         (page_id b) (len + 2 + slot_cost) (free_space b));
  (* Growing the slot array claims the 2 bytes just below it; if the cell
     area has crept past that point (dead space not yet compacted), those
     bytes may belong to a live cell — compact first.  The fresh entry is
     then initialized to dead before anything (e.g. the second compaction)
     can read the stale bytes at its position as an offset. *)
  if growing && free_lower b > slot_entry_pos b n then compact b;
  if growing then begin
    set_slot_count b (n + 1);
    set_slot_offset b n dead_slot
  end;
  if contiguous_free b < len + 2 then compact b;
  let off = free_lower b in
  Codec.set_u16 b off len;
  Codec.set_bytes b (off + 2) body;
  set_slot_offset b slot off;
  set_free_lower b (off + 2 + len)

(* Pre-extend the slot array of a freshly formatted page to [n] dead
   slots.  Page rebuilds (time splits, key splits) use this to keep
   surviving records at their original slot numbers, which preserves both
   intra-page version chains and the validity of in-flight transactions'
   logged slot references. *)
let reserve_slots b n =
  if slot_count b <> 0 then invalid_arg "Page.reserve_slots: page not empty";
  set_slot_count b n;
  for slot = 0 to n - 1 do
    set_slot_offset b slot dead_slot
  done

(* Insert [body] into any available slot and return the slot used. *)
let insert b body =
  let slot = choose_insert_slot b in
  insert_at_slot b slot body;
  slot

let delete_slot b slot =
  let off = slot_offset b slot in
  if off = dead_slot then invalid_arg "Page.delete_slot: already dead";
  let total = 2 + Codec.get_u16 b off in
  set_slot_offset b slot dead_slot;
  set_garbage b (garbage b + total);
  (* If the tail of the cell area died we can reclaim it immediately,
     keeping free_lower tight for append-heavy workloads. *)
  if off + total = free_lower b then begin
    set_free_lower b off;
    set_garbage b (garbage b - total)
  end

(* Replace the body of [slot] with [body] (sizes may differ).  Implemented
   as delete + insert-at-same-slot so the deterministic-redo property is
   preserved by logging it as two ops or one Op_replace. *)
let replace_at_slot b slot body =
  delete_slot b slot;
  insert_at_slot b slot body

let live_count b =
  let n = slot_count b in
  let c = ref 0 in
  for i = 0 to n - 1 do
    if slot_live b i then incr c
  done;
  !c

let iter_live b f =
  for slot = 0 to slot_count b - 1 do
    if slot_live b slot then f slot
  done

let fold_live b ~init ~f =
  let acc = ref init in
  iter_live b (fun slot -> acc := f !acc slot);
  !acc

(* Bytes used by live cells (excluding headers/slots): the utilization
   measure used by the time-split/key-split policy. *)
let live_bytes b =
  fold_live b ~init:0 ~f:(fun acc slot -> acc + cell_length b slot + 2)

let utilization b =
  float_of_int (live_bytes b) /. float_of_int (Bytes.length b - header_size)

let pp_summary ppf b =
  Fmt.pf ppf "page %d type=%a lsn=%Ld slots=%d live=%d free=%d hist=%d split=%a"
    (page_id b) pp_page_type (page_type b) (lsn b) (slot_count b) (live_count b)
    (free_space b) (history_pointer b) Imdb_clock.Timestamp.pp (split_time b)
