lib/core/recovery.mli: Engine Imdb_clock Meta
