(** SQL execution over the {!Imdb_core.Db} API.

    A session holds at most one open transaction, as in the paper's
    examples ([Begin Tran AS OF "..." ... Commit Tran]); statements
    outside an explicit transaction autocommit.  Point operations on the
    primary key use the key access path; other WHERE clauses filter a
    scan. *)

exception Exec_error of string

type result =
  | R_ok of string
  | R_rows of { header : string list; rows : Imdb_core.Schema.value list list }
  | R_history of (Imdb_clock.Timestamp.t * Imdb_core.Schema.value list option) list

type session = {
  db : Imdb_core.Db.t;
  dbs : Imdb_core.Db.Session.t;
      (** transactions run on this engine session, so each SQL session
          appears with its own id in the [SESSIONS] pragma *)
  mutable txn : Imdb_core.Db.txn option;
  mutable isolation : Imdb_core.Db.isolation;
}

val make_session : Imdb_core.Db.t -> session

val exec : session -> Ast.statement -> result
(** Execute one statement.  @raise Exec_error and the engine's data
    exceptions (e.g. {!Imdb_core.Table.Duplicate_key}). *)

val exec_string : session -> string -> result list
(** Parse and execute a script. *)

val pp_result : Format.formatter -> result -> unit
