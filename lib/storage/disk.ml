(* Page-granularity storage devices.

   The engine talks to storage exclusively through this record of
   functions so that the same code runs against a real file, an in-memory
   simulated disk (deterministic benchmarks, crash tests), or a
   failure-injecting wrapper.  Reads and writes are whole pages.

   Durability model: [write_page] makes the page durable for the purposes
   of crash simulation (the in-memory device keeps a separate "platter"
   copy; the file device relies on [sync] for real durability).  A "crash"
   in tests is simply dropping every volatile structure (buffer pool, VTT)
   and reopening the engine over the same device. *)

module M = Imdb_obs.Metrics

type t = {
  page_size : int;
  read_page : int -> bytes;
      (** [read_page id] returns a fresh copy of the page's bytes.
          Raises [Page_missing] if the page was never written. *)
  write_page : int -> bytes -> unit;
  page_exists : int -> bool;
  page_count : unit -> int;  (** high-water mark + 1 over written page ids *)
  sync : unit -> unit;
  close : unit -> unit;
  metrics : M.t ref;
      (** a [ref] so wrappers built with [{ inner with ... }] share the
          cell: [set_metrics] reaches the inner device's closures too *)
}

let set_metrics t m = t.metrics := m

exception Page_missing of int
exception Io_failure of string

let check_size t b =
  if Bytes.length b <> t.page_size then
    invalid_arg
      (Printf.sprintf "Disk: page of %d bytes on device with page_size %d"
         (Bytes.length b) t.page_size)

(* ------------------------------------------------------------------ *)
(* In-memory device                                                    *)
(* ------------------------------------------------------------------ *)

let in_memory ?(metrics = M.null) ~page_size () =
  let platter : (int, bytes) Hashtbl.t = Hashtbl.create 256 in
  let hwm = ref 0 in
  let rec t =
    {
      page_size;
      read_page =
        (fun id ->
          M.incr !(t.metrics) M.disk_reads;
          match Hashtbl.find_opt platter id with
          | Some b -> Bytes.copy b
          | None -> raise (Page_missing id));
      write_page =
        (fun id b ->
          check_size t b;
          M.incr !(t.metrics) M.disk_writes;
          Hashtbl.replace platter id (Bytes.copy b);
          if id + 1 > !hwm then hwm := id + 1);
      page_exists = (fun id -> Hashtbl.mem platter id);
      page_count = (fun () -> !hwm);
      sync = (fun () -> ());
      close = (fun () -> ());
      metrics = ref metrics;
    }
  in
  t

(* ------------------------------------------------------------------ *)
(* File-backed device                                                  *)
(* ------------------------------------------------------------------ *)

let file ?(metrics = M.null) ~path ~page_size () =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let closed = ref false in
  let ensure_open () = if !closed then raise (Io_failure "disk closed") in
  let file_pages () =
    let len = (Unix.fstat fd).Unix.st_size in
    (len + page_size - 1) / page_size
  in
  let rec t =
    {
      page_size;
      read_page =
        (fun id ->
          ensure_open ();
          M.incr !(t.metrics) M.disk_reads;
          if id >= file_pages () then raise (Page_missing id);
          let b = Bytes.create page_size in
          ignore (Unix.lseek fd (id * page_size) Unix.SEEK_SET);
          let rec fill off =
            if off < page_size then begin
              let n = Unix.read fd b off (page_size - off) in
              if n = 0 then raise (Page_missing id);
              fill (off + n)
            end
          in
          fill 0;
          b);
      write_page =
        (fun id b ->
          ensure_open ();
          check_size t b;
          M.incr !(t.metrics) M.disk_writes;
          ignore (Unix.lseek fd (id * page_size) Unix.SEEK_SET);
          let rec drain off =
            if off < page_size then
              drain (off + Unix.write fd b off (page_size - off))
          in
          drain 0);
      page_exists = (fun id -> id < file_pages ());
      page_count = (fun () -> file_pages ());
      sync =
        (fun () ->
          ensure_open ();
          Unix.fsync fd);
      close =
        (fun () ->
          if not !closed then begin
            closed := true;
            Unix.close fd
          end);
      metrics = ref metrics;
    }
  in
  t

(* ------------------------------------------------------------------ *)
(* Serialization wrapper                                               *)
(* ------------------------------------------------------------------ *)

(* Neither built-in device is safe to call from two domains at once (the
   in-memory platter is a bare hashtable; the file device shares one fd
   across lseek+read).  [serialized] funnels every operation through one
   mutex — coarse, but the parallel read path uses it only for cache
   misses, which the histcache already serializes per shard. *)
let serialized inner =
  let m = Mutex.create () in
  let locked f =
    Mutex.lock m;
    match f () with
    | v ->
        Mutex.unlock m;
        v
    | exception e ->
        Mutex.unlock m;
        raise e
  in
  {
    inner with
    read_page = (fun id -> locked (fun () -> inner.read_page id));
    write_page = (fun id b -> locked (fun () -> inner.write_page id b));
    page_exists = (fun id -> locked (fun () -> inner.page_exists id));
    page_count = (fun () -> locked inner.page_count);
    sync = (fun () -> locked inner.sync);
    close = (fun () -> locked inner.close);
  }

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

type failure_plan = {
  mutable writes_until_failure : int;
      (** -1 = never fail; 0 = next write fails *)
  mutable tear_on_failure : bool;
      (** if set, the failing write persists only the first half of the
          page (a torn write) before raising *)
}

let never_fail () = { writes_until_failure = -1; tear_on_failure = false }

(* Wrap [inner] so that the [plan] can trigger a failure mid-run.  Used by
   recovery tests to crash the engine at an exact write. *)
let failing ~plan inner =
  {
    inner with
    write_page =
      (fun id b ->
        if plan.writes_until_failure = 0 then begin
          if plan.tear_on_failure then begin
            (* Persist a torn page: first half new, second half stale/zero. *)
            let torn =
              try inner.read_page id with Page_missing _ -> Bytes.create inner.page_size
            in
            Bytes.blit b 0 torn 0 (inner.page_size / 2);
            inner.write_page id torn
          end;
          raise (Io_failure "injected write failure")
        end;
        if plan.writes_until_failure > 0 then
          plan.writes_until_failure <- plan.writes_until_failure - 1;
        inner.write_page id b);
  }
