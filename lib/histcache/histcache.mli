(** Sharded, lock-striped, read-only cache of {e immutable} historical
    pages, keyed by page id.

    The cache serves the parallel temporal read path: worker domains may
    not touch the single-domain buffer pool, but historical pages are
    immutable from the moment a time split writes them (every version
    they hold is stamped at creation, inserts route to current pages,
    stamping no-ops on fully stamped pages, and history pages are never
    freed), so a page image read straight from disk is the final truth
    and can be shared freely across domains.

    Admission is defensive, not trusting: a page enters the cache only if
    its checksum verifies, its type is [P_history] or
    [P_history_compressed], it belongs to the expected table, and it
    contains no unstamped version.  Anything else — including a page that
    only exists dirty in the buffer pool, or a stale image from a
    freed-and-reused page id — is rejected, and the caller falls back to
    the coordinating domain where the buffer pool and the stamping
    triggers are legal.

    Compressed pages are expanded at admission (under the shard lock, so
    concurrent readers pay one decode) and the cache holds the decoded
    [P_history]-format image: consumers never see a compressed page.

    The cache is volatile and never logged (the same discipline as the
    buffer pool's key directories): it holds bytes the WAL already made
    durable, so there is nothing to recover. *)

type t

type stats = {
  hits : int;
  misses : int;  (** lookups that had to call [load] *)
  evictions : int;
  rejected : int;  (** loads that failed admission (subset of misses) *)
}

val create :
  ?shards:int ->
  ?decode:(bytes -> bytes) ->
  ?tracer:Imdb_obs.Tracer.t ->
  capacity:int ->
  load:(int -> bytes) ->
  unit ->
  t
(** [create ~capacity ~load ()] builds a cache of at most [capacity]
    pages striped over [shards] (default 16) independently locked shards.
    [load] reads a page image from stable storage (it must be safe to
    call concurrently — the engine passes a serialized disk); it may
    raise on missing pages, which [get] reports as [None].  [decode]
    (default {!Imdb_storage.Vcompress.decode}) expands compressed history
    images at admission; the engine overrides it to record decode
    latency.  [tracer] records a "histcache.admit" span per miss (with
    the admission outcome) and a "histcache.evict" instant per eviction;
    both may fire on worker domains — the tracer is domain-safe. *)

val get : t -> table_id:int -> int -> bytes option
(** [get t ~table_id pid] returns the immutable image of page [pid], from
    cache or loaded (and admitted) on the fly.  [None] means the page is
    not (yet) servable from stable storage — the caller must fall back to
    the buffer pool on the coordinating domain.  The returned bytes are
    shared: callers must never mutate them.  Thread-safe; the whole miss
    (check, load, admit) runs under the shard lock, so concurrent readers
    of one page cost exactly one load. *)

val admissible : table_id:int -> bytes -> bool
(** The admission predicate alone (checksum, history page type, table) —
    exposed for tests.  The fully-stamped check happens separately on the
    decoded image inside [get]. *)

val remove : t -> int -> unit
(** Drop a page (defense in depth for freed page ids). *)

val clear : t -> unit

val stats : t -> stats
(** Monotonic counters; reads are atomic per counter. *)

val length : t -> int

val iter : t -> (int -> bytes -> unit) -> unit
(** Iterate the resident pages (tests).  Takes each shard lock in turn;
    do not call [get] from [f]. *)
