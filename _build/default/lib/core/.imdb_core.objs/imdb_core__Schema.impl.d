lib/core/schema.ml: Bytes Fmt Imdb_util Int64 List String
