test/test_buffer.ml: Alcotest Bytes Imdb_buffer Imdb_clock Imdb_storage Imdb_util Imdb_wal Int64 List
