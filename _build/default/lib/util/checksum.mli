(** CRC-32 (IEEE 802.3, reflected), allocation-free: validates page images
    and log frames; a mismatch signals a torn or corrupt write. *)

val bytes_int : ?pos:int -> ?len:int -> bytes -> int
(** CRC over the range as an unsigned int (fits 32 bits). *)

val bytes : ?pos:int -> ?len:int -> bytes -> int32
val string : string -> int32
val to_int : int32 -> int
