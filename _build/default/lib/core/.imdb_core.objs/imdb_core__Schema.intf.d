lib/core/schema.mli: Format Imdb_util
