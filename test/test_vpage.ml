(* Versioned pages: chains, stamping, as-of selection, and the time-split
   classification — including property tests of the split invariants. *)

module P = Imdb_storage.Page
module R = Imdb_storage.Record
module V = Imdb_version.Vpage
module Tid = Imdb_clock.Tid
module Ts = Imdb_clock.Timestamp

let fresh ?(size = 8192) () =
  let b = Bytes.make size '\000' in
  P.format b ~page_id:5 ~page_type:P.P_data ();
  b

let write page ?(stub = false) ~key ~payload ~tid () =
  match V.plan_insert page ~key ~payload ~tid:(Tid.of_int tid) ~delete_stub:stub with
  | Some pi ->
      V.apply_insert page pi;
      pi.V.pi_slot
  | None -> Alcotest.fail "page unexpectedly full"

let stamp page slot ms =
  R.set_in_page_ttime page slot (Tid.Stamped (Int64.of_int ms));
  R.set_in_page_sn page slot 0

let ts ms = Ts.make ~ttime:(Int64.of_int ms) ~sn:0

let test_chain_building () =
  let page = fresh () in
  let s1 = write page ~key:"a" ~payload:"v1" ~tid:1 () in
  let s2 = write page ~key:"a" ~payload:"v2" ~tid:2 () in
  let s3 = write page ~key:"a" ~payload:"v3" ~tid:3 () in
  (* the head is the newest; older versions are flagged non-current *)
  Alcotest.(check (option int)) "current is newest" (Some s3) (V.find_current page ~key:"a");
  Alcotest.(check bool) "old flagged" true
    (R.in_page_flags page s1 land R.f_non_current <> 0);
  let slots, tail = V.chain page ~slot:s3 in
  Alcotest.(check (list int)) "chain order" [ s3; s2; s1 ] slots;
  Alcotest.(check bool) "chain ends" true (tail = V.Chain_end);
  Alcotest.(check int) "all versions" 3 (List.length (V.all_versions_of page ~key:"a"))

let test_multiple_keys () =
  let page = fresh () in
  ignore (write page ~key:"a" ~payload:"a1" ~tid:1 ());
  ignore (write page ~key:"b" ~payload:"b1" ~tid:1 ());
  ignore (write page ~key:"a" ~payload:"a2" ~tid:2 ());
  Alcotest.(check int) "two heads" 2 (List.length (V.current_slots page));
  Alcotest.(check (list string)) "keys" [ "a"; "b" ] (V.keys page)

let test_stamping () =
  let page = fresh () in
  let s1 = write page ~key:"a" ~payload:"v1" ~tid:1 () in
  let s2 = write page ~key:"a" ~payload:"v2" ~tid:2 () in
  let resolved = ref [] in
  let resolve tid =
    if Tid.equal tid (Tid.of_int 1) then V.Committed (ts 100) else V.Active
  in
  let n = V.stamp_committed page ~resolve ~on_stamp:(fun t -> resolved := t :: !resolved) in
  Alcotest.(check int) "one stamped" 1 n;
  Alcotest.(check bool) "stamped value" true
    (R.in_page_timestamp page s1 = Some (ts 100));
  Alcotest.(check bool) "active left alone" true (R.in_page_timestamp page s2 = None);
  Alcotest.(check bool) "still has unstamped" true (V.has_unstamped page);
  Alcotest.(check bool) "key has unstamped" true (V.key_has_unstamped page ~key:"a");
  (* second pass: tid 2 commits *)
  let n2 =
    V.stamp_committed page
      ~resolve:(fun _ -> V.Committed (ts 200))
      ~on_stamp:(fun _ -> ())
  in
  Alcotest.(check int) "second stamped" 1 n2;
  Alcotest.(check bool) "no unstamped left" false (V.has_unstamped page)

let test_find_stamped_as_of () =
  let page = fresh () in
  let s1 = write page ~key:"a" ~payload:"v1" ~tid:1 () in
  let s2 = write page ~key:"a" ~payload:"v2" ~tid:2 () in
  let s3 = write page ~key:"a" ~payload:"v3" ~tid:3 () in
  stamp page s1 100;
  stamp page s2 200;
  stamp page s3 300;
  let check_at t expect =
    Alcotest.(check (option int))
      (Printf.sprintf "as of %d" t)
      expect
      (V.find_stamped_as_of page ~key:"a" ~asof:(ts t))
  in
  check_at 50 None;
  check_at 100 (Some s1);
  check_at 150 (Some s1);
  check_at 200 (Some s2);
  check_at 999 (Some s3)

let test_as_of_tie_break () =
  (* several updates by one transaction share a timestamp: the newest
     (chain head of the tie group) must win *)
  let page = fresh () in
  let s1 = write page ~key:"a" ~payload:"first" ~tid:1 () in
  let s2 = write page ~key:"a" ~payload:"second" ~tid:1 () in
  stamp page s1 100;
  stamp page s2 100;
  Alcotest.(check (option int)) "newest of tie" (Some s2)
    (V.find_stamped_as_of page ~key:"a" ~asof:(ts 100))

let test_delete_stub_chain () =
  let page = fresh () in
  let s1 = write page ~key:"a" ~payload:"alive" ~tid:1 () in
  let s2 = write page ~key:"a" ~payload:"" ~stub:true ~tid:2 () in
  stamp page s1 100;
  stamp page s2 200;
  (* the stub is the current version *)
  Alcotest.(check (option int)) "stub is head" (Some s2) (V.find_current page ~key:"a");
  Alcotest.(check bool) "stub flag" true
    (R.in_page_flags page s2 land R.f_delete_stub <> 0);
  (* as-of before deletion sees the record; at deletion sees the stub *)
  Alcotest.(check (option int)) "before delete" (Some s1)
    (V.find_stamped_as_of page ~key:"a" ~asof:(ts 150));
  Alcotest.(check (option int)) "at delete" (Some s2)
    (V.find_stamped_as_of page ~key:"a" ~asof:(ts 200))

(* --- time splits ----------------------------------------------------------- *)

(* Build a page with a deterministic multi-key history, split it, and
   check the Fig. 3 classification plus the fundamental invariant: every
   version alive in a page's time range is present in that page. *)

type version_spec = { vkey : string; vms : int option (* None = uncommitted *); vstub : bool }

let build_page specs =
  let page = fresh () in
  List.iteri
    (fun i spec ->
      let slot =
        write page ~key:spec.vkey ~stub:spec.vstub
          ~payload:(Printf.sprintf "%s@%d" spec.vkey i)
          ~tid:(1000 + i) ()
      in
      match spec.vms with Some ms -> stamp page slot ms | None -> ())
    specs;
  page

(* Reference visibility: among stamped versions of [key] in [specs] (in
   insertion order = oldest first), the visible payload at time [t],
   where a newer version ends the previous one and stubs mean absent. *)
let reference_visible specs ~key ~t =
  let versions =
    List.mapi (fun i s -> (i, s)) specs
    |> List.filter (fun (_, s) -> s.vkey = key && s.vms <> None)
    |> List.filter (fun (_, s) -> Option.get s.vms <= t)
  in
  match List.rev versions with
  | [] -> None
  | (i, s) :: _ -> if s.vstub then None else Some (Printf.sprintf "%s@%d" key i)

let payload_at page slot =
  let key = R.in_page_key page slot in
  Bytes.to_string
    (P.read_cell_part page slot ~at:(5 + String.length key)
       ~len:(P.cell_length page slot - R.fixed_overhead - String.length key))

let test_fig3_classification () =
  (* the paper's example: split at 300 *)
  let specs =
    [
      { vkey = "A"; vms = Some 100; vstub = false };
      { vkey = "B"; vms = Some 120; vstub = false };
      { vkey = "C"; vms = Some 110; vstub = false };
      { vkey = "C"; vms = Some 200; vstub = false };
      { vkey = "B"; vms = Some 400; vstub = false };
      { vkey = "C"; vms = Some 450; vstub = true };
    ]
  in
  let page = build_page specs in
  let images = V.time_split ~page ~split_time:(ts 300) ~history_page_id:6 () in
  Alcotest.(check int) "three redundant copies" 3 images.V.si_copied;
  (* current page: A(100), B(120), B(400), C(200), C-stub(450) = 5 *)
  Alcotest.(check int) "current live" 5 images.V.si_current_live;
  (* history page: A(100), B(120), C(110), C(200) = 4 *)
  Alcotest.(check int) "history live" 4 images.V.si_history_live;
  (* headers *)
  Alcotest.(check bool) "current split time" true
    (Ts.equal (P.split_time images.V.si_current) (ts 300));
  Alcotest.(check int) "current history ptr" 6 (P.history_pointer images.V.si_current);
  Alcotest.(check bool) "history covers from zero" true
    (Ts.equal (P.split_time images.V.si_history) Ts.zero)

let test_split_preserves_current_slots () =
  let specs =
    [
      { vkey = "A"; vms = Some 100; vstub = false };
      { vkey = "A"; vms = Some 200; vstub = false };
      { vkey = "B"; vms = Some 150; vstub = false };
      { vkey = "B"; vms = None; vstub = false (* uncommitted *) };
    ]
  in
  let page = build_page specs in
  let a_head = Option.get (V.find_current page ~key:"A") in
  let b_head = Option.get (V.find_current page ~key:"B") in
  let images = V.time_split ~page ~split_time:(ts 300) ~history_page_id:6 () in
  let cur = images.V.si_current in
  (* survivors keep their slot numbers (in-flight undo depends on it) *)
  Alcotest.(check (option int)) "A head slot stable" (Some a_head)
    (V.find_current cur ~key:"A");
  Alcotest.(check (option int)) "B head slot stable" (Some b_head)
    (V.find_current cur ~key:"B");
  (* the uncommitted version stayed current-only *)
  Alcotest.(check bool) "uncommitted unstamped" true (V.has_unstamped cur);
  Alcotest.(check bool) "history fully stamped" false
    (V.has_unstamped images.V.si_history)

(* Property: random histories split at random times keep every reference-
   visible state readable from the correct page. *)
let prop_time_split_completeness =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 25 in
      let* stamped = list_size (return n)
        (triple (int_range 0 3) (int_range 1 40) bool)
      in
      return stamped)
  in
  QCheck.Test.make ~name:"time split preserves visibility" ~count:150
    (QCheck.make gen)
    (fun raw ->
      (* build a monotone history over keys k0..k3 *)
      let time = ref 0 in
      let specs =
        List.map
          (fun (k, dt, stub) ->
            time := !time + dt;
            { vkey = Printf.sprintf "k%d" k; vms = Some !time; vstub = stub })
          raw
      in
      let page = build_page specs in
      let split_ms = 1 + (!time / 2) in
      let images = V.time_split ~page ~split_time:(ts split_ms) ~history_page_id:6 () in
      (* probe every key at every interesting time against the reference *)
      let keys = List.sort_uniq compare (List.map (fun s -> s.vkey) specs) in
      let times = List.filter_map (fun s -> s.vms) specs in
      let ok = ref true in
      List.iter
        (fun key ->
          List.iter
            (fun t ->
              let expect = reference_visible specs ~key ~t in
              (* pick the page covering t, as the engine would *)
              let target =
                if t >= split_ms then images.V.si_current else images.V.si_history
              in
              let got =
                match V.find_stamped_as_of target ~key ~asof:(ts t) with
                | Some slot
                  when R.in_page_flags target slot land R.f_delete_stub = 0 ->
                    Some (payload_at target slot)
                | Some _ | None -> None
              in
              if got <> expect then begin
                ok := false;
                QCheck.Test.fail_reportf
                  "key %s at %d (split %d): expected %s, got %s" key t split_ms
                  (Option.value expect ~default:"-")
                  (Option.value got ~default:"-")
              end)
            (0 :: times))
        keys;
      !ok)

(* Property: key split preserves every version and routes keys correctly. *)
let prop_key_split =
  let gen = QCheck.Gen.(list_size (int_range 4 25) (pair (int_range 0 9) (int_range 1 30))) in
  QCheck.Test.make ~name:"key split preserves versions" ~count:150 (QCheck.make gen)
    (fun raw ->
      let time = ref 0 in
      let specs =
        List.map
          (fun (k, dt) ->
            time := !time + dt;
            { vkey = Printf.sprintf "k%d" k; vms = Some !time; vstub = false })
          raw
      in
      let page = build_page specs in
      if List.length (V.keys page) < 2 then true
      else begin
        let ks = V.key_split ~page ~right_page_id:7 () in
        let count_versions img key = List.length (V.all_versions_of img ~key) in
        List.for_all
          (fun key ->
            let total = count_versions page key in
            let left = count_versions ks.V.ks_left key in
            let right = count_versions ks.V.ks_right key in
            let correct_side =
              if String.compare key ks.V.ks_separator < 0 then
                left = total && right = 0
              else left = 0 && right = total
            in
            if not correct_side then
              QCheck.Test.fail_reportf "key %s: %d = %d + %d (sep %s)" key total left
                right ks.V.ks_separator;
            correct_side)
          (V.keys page)
      end)

let test_gc_versions () =
  let specs =
    [
      { vkey = "a"; vms = Some 100; vstub = false };
      { vkey = "a"; vms = Some 200; vstub = false };
      { vkey = "a"; vms = Some 300; vstub = false };
      { vkey = "b"; vms = Some 150; vstub = true };
      { vkey = "c"; vms = None; vstub = false };
    ]
  in
  let page = build_page specs in
  (* one active snapshot at 250: a@100 is invisible to it (dead at 200);
     a@200 is its visible version; chain heads and uncommitted versions
     always survive *)
  let img, dropped = V.gc_versions ~page ~snapshots:[ ts 250 ] in
  Alcotest.(check int) "one dropped" 1 dropped;
  Alcotest.(check (option int)) "snapshot read still works"
    (V.find_stamped_as_of img ~key:"a" ~asof:(ts 250) )
    (V.find_stamped_as_of img ~key:"a" ~asof:(ts 299));
  (* newest version still current *)
  (match V.find_current img ~key:"a" with
  | Some slot -> Alcotest.(check bool) "current is 300" true
      (R.in_page_timestamp img slot = Some (ts 300))
  | None -> Alcotest.fail "lost the current version");
  (* uncommitted survives GC *)
  Alcotest.(check bool) "uncommitted kept" true (V.find_current img ~key:"c" <> None);
  (* b's stub is a chain head: kept, so reads keep saying "deleted" *)
  (match V.find_current img ~key:"b" with
  | Some slot ->
      Alcotest.(check bool) "stub kept" true
        (R.in_page_flags img slot land R.f_delete_stub <> 0)
  | None -> Alcotest.fail "stub head dropped");
  (* with no active snapshots, only heads and uncommitted versions remain *)
  let img2, dropped2 = V.gc_versions ~page ~snapshots:[] in
  Alcotest.(check int) "aggressive GC" 2 dropped2;
  Alcotest.(check bool) "current still reads" true
    (V.find_current img2 ~key:"a" <> None)

let suite =
  [
    Alcotest.test_case "chain building" `Quick test_chain_building;
    Alcotest.test_case "multiple keys" `Quick test_multiple_keys;
    Alcotest.test_case "stamping" `Quick test_stamping;
    Alcotest.test_case "as-of selection" `Quick test_find_stamped_as_of;
    Alcotest.test_case "as-of tie break" `Quick test_as_of_tie_break;
    Alcotest.test_case "delete stub chain" `Quick test_delete_stub_chain;
    Alcotest.test_case "Fig 3 classification" `Quick test_fig3_classification;
    Alcotest.test_case "split preserves slots" `Quick test_split_preserves_current_slots;
    QCheck_alcotest.to_alcotest prop_time_split_completeness;
    QCheck_alcotest.to_alcotest prop_key_split;
    Alcotest.test_case "snapshot version GC" `Quick test_gc_versions;
  ]
