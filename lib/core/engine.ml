(* Engine state and primitives.

   This module owns the wiring: disk, WAL, buffer pool, lock manager,
   clock, VTT/PTT stamping machinery, page allocation, the catalog cache,
   the active transaction table, and checkpointing.  Data operations live
   in [Table]; begin/commit/abort in [Txnmgr]; crash recovery in
   [Recovery]; the public facade in [Db]. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module P = Imdb_storage.Page
module BP = Imdb_buffer.Buffer_pool
module LR = Imdb_wal.Log_record

let log_src = Logs.Src.create "imdb.engine" ~doc:"Immortal DB engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type timestamping_mode = Lazy_stamping | Eager_stamping

type config = {
  page_size : int;
  pool_capacity : int;
  timestamping : timestamping_mode;
  key_split_threshold : float; (* the paper's T, default 0.7 *)
  auto_checkpoint_every : int; (* commits between checkpoints; 0 = manual *)
  tsb_enabled : bool; (* maintain the TSB index on time splits *)
  group_commit_window : int;
      (* commits sharing one log sync; <= 1 syncs at every commit *)
  scan_parallelism : int;
      (* domains serving AS OF scans and history walks; 1 = the serial
         path, bit-for-bit identical to pre-parallel behavior *)
  histcache_capacity : int;
      (* pages in the immutable-history cache (only used when
         scan_parallelism > 1) *)
  history_compression : bool;
      (* delta-compress historical pages at time splits; false = the
         plain P_history format, bit-for-bit identical to pre-compression
         behavior *)
  trace_sampling : int;
      (* 0 = tracing off (the null tracer: one dead branch per site);
         1 = every root span; n > 1 = every n-th root span, children
         following their root *)
  slow_op_threshold_us : int;
      (* spans at least this long are retained in the slow-op ring *)
  ingest_buffering : bool;
      (* buffer immortal-table writes as messages and flush them in
         batches; false = the per-row descent path, bit-for-bit identical
         to pre-buffering behavior *)
  ingest_buffer_rows : int;
      (* messages accumulated before a fill-triggered flush (the page
         itself caps the buffer regardless) *)
  ingest_split_hint : bool;
      (* let batch-arrival occupancy trigger early key splits at flush
         time; changes page layout (never results), so off by default to
         keep buffered==unbuffered structures identical *)
  lock_wait_timeout_ms : int;
      (* 0 = fail-fast lock acquisition (a conflict raises immediately
         — the historical single-session behavior, where parking would
         self-deadlock); > 0 = concurrent sessions block on conflicts up
         to this many milliseconds, releasing the engine gate while
         parked, with deadlock detection at edge insert and the waiter
         as timeout victim *)
  monitor_interval_ms : int;
      (* 0 = no continuous monitor (the null monitor: one dead branch
         per site); > 0 = a background thread samples the counter
         registry every this many milliseconds into a bounded ring *)
  monitor_capacity : int; (* samples retained by the monitor ring *)
  flight_recorder_dir : string option;
      (* when set, recovery-after-crash writes a post-mortem JSON report
         (monitor ring, slow ops, lock dump, metrics) into this
         directory; None = never *)
}

let default_config =
  {
    page_size = 8192;
    pool_capacity = 256;
    timestamping = Lazy_stamping;
    key_split_threshold = 0.7;
    auto_checkpoint_every = 0;
    tsb_enabled = true;
    group_commit_window = 1;
    scan_parallelism = 1;
    histcache_capacity = 1024;
    history_compression = true;
    trace_sampling = 0;
    slow_op_threshold_us = 10_000;
    ingest_buffering = true;
    ingest_buffer_rows = 64;
    ingest_split_hint = false;
    lock_wait_timeout_ms = 0;
    monitor_interval_ms = 0;
    monitor_capacity = 600;
    flight_recorder_dir = None;
  }

type isolation = Serializable | Snapshot_isolation | As_of of Ts.t

type txn_state = Running | Rolling_back | Finished

type txn = {
  tx_tid : Tid.t;
  tx_isolation : isolation;
  tx_snapshot : Ts.t; (* reads see versions with start <= tx_snapshot (SI / AS OF) *)
  tx_session : int; (* owning session id; 0 = anonymous (plain Db calls) *)
  mutable tx_state : txn_state;
  mutable tx_begun : bool; (* Begin record logged *)
  mutable tx_last_lsn : int64; (* head of the undo chain *)
  mutable tx_writes : (int * string) list; (* (table_id, key), newest first, deduped *)
  tx_write_set : (int * string, unit) Hashtbl.t; (* dedup index over tx_writes *)
  mutable tx_wrote_immortal : bool;
  mutable tx_commit_ts : Ts.t option;
  mutable tx_durable : bool; (* commit record synced to the log device *)
  mutable tx_rows_read : int; (* rows delivered to this txn's reads *)
  mutable tx_rows_written : int; (* write ops (insert/update/upsert/delete) *)
  mutable tx_lock_waits : int; (* blocking lock waits that actually parked *)
  mutable tx_lock_wait_us : int; (* wall µs spent parked on locks *)
}

exception Txn_finished
exception Read_only_txn
exception Deadlock_abort of Tid.t

(* Cumulative per-session statistics, folded in from each transaction's
   tallies when it finishes.  Mutated only under the session gate. *)
type session_stats = {
  ss_id : int;
  mutable ss_commits : int;
  mutable ss_aborts : int;
  mutable ss_rows_read : int;
  mutable ss_rows_written : int;
  mutable ss_lock_waits : int;
  mutable ss_lock_wait_us : int;
  mutable ss_commit_latency_ticks : int;
      (* cumulative snapshot->commit clock ticks, same unit as the
         txn.commit_latency_ms histogram *)
  mutable ss_last_batch_pos : int;
      (* position in the group-commit batch of the newest commit: 1 =
         the batch leader (its flush pays the sync), k > 1 = rode a
         shared sync *)
  mutable ss_max_batch_pos : int;
}

type t = {
  disk : Imdb_storage.Disk.t;
  wal : Imdb_wal.Wal.t;
  pool : BP.t;
  gate_mu : Mutex.t;
      (* the session gate: every public operation runs exclusively under
         it, so the engine's single-threaded interior (clock, VTT,
         catalog cache, cur_txn) is safe with sessions on many domains.
         Reentrant per domain; released while a session parks on a lock
         wait and across the commit-record fsync, which is where
         concurrent sessions actually overlap. *)
  gate_owner : int Atomic.t; (* domain id + 1 of the holder; 0 = none *)
  mutable gate_depth : int; (* reentrancy depth, owner-only access *)
  clock : Imdb_clock.Clock.t;
  locks : Imdb_lock.Lock_manager.t;
  stamper : Imdb_tstamp.Lazy_stamper.t;
  metrics : Imdb_obs.Metrics.t;
  tracer : Imdb_obs.Tracer.t;
  config : config;
  mutable meta : Meta.t;
  mutable ptt : Imdb_tstamp.Ptt.t option;
  mutable catalog_tree : Imdb_btree.Btree.t option;
  tables : (int, Catalog.table_info) Hashtbl.t;
  table_ids : (string, int) Hashtbl.t;
  active : txn Tid.Table.t;
  mutable next_tid : Tid.t;
  mutable cur_txn : txn option; (* logging context for undoable ops *)
  mutable commits_since_checkpoint : int;
  mutable in_recovery : bool;
  histcache : Imdb_histcache.Histcache.t option;
      (* Some iff scan_parallelism > 1: the read-only page cache worker
         domains are allowed to touch *)
  mutable scan_pool : Imdb_parallel.Pool.t option;
      (* worker domains, spawned lazily by the first parallel scan *)
  hist_decoded : (int, bytes) Hashtbl.t;
      (* memoized decoded images of compressed history pages, for the
         serial read path (coordinator domain only — workers decode at
         histcache admission instead).  Entries never go stale: a
         compressed page is immutable from the moment its time split
         writes it. *)
  hist_decoded_order : int Queue.t; (* FIFO bound for [hist_decoded] *)
  ingest_bufs : (int, Ingest.buf) Hashtbl.t;
      (* table id -> volatile mirror of the table's message-buffer page;
         populated lazily on first buffered write, rebuilt at attach *)
  mutable ingest_seq : int; (* last message sequence number issued *)
  session_stats : (int, session_stats) Hashtbl.t;
      (* per-session cumulative statistics, keyed by session id (0 =
         anonymous); gate-guarded *)
  monitor : Imdb_obs.Monitor.t;
      (* the continuous sampler; [Monitor.null] unless
         config.monitor_interval_ms > 0 *)
}

let vtt t = Imdb_tstamp.Lazy_stamper.vtt t.stamper

let ptt_exn t =
  match t.ptt with Some p -> p | None -> failwith "Engine: PTT not initialized"

let catalog_exn t =
  match t.catalog_tree with
  | Some c -> c
  | None -> failwith "Engine: catalog not initialized"

(* ------------------------------------------------------------------ *)
(* The session gate                                                     *)
(* ------------------------------------------------------------------ *)

let gate_enter t =
  let me = (Domain.self () :> int) + 1 in
  if Atomic.get t.gate_owner = me then t.gate_depth <- t.gate_depth + 1
  else begin
    Mutex.lock t.gate_mu;
    Atomic.set t.gate_owner me;
    t.gate_depth <- 1
  end

let gate_exit t =
  t.gate_depth <- t.gate_depth - 1;
  if t.gate_depth = 0 then begin
    Atomic.set t.gate_owner 0;
    Mutex.unlock t.gate_mu
  end

(* Run [f] holding the session gate.  Reentrant, so public operations
   compose freely; a single session pays two uncontended mutex ops. *)
let exclusively t f =
  gate_enter t;
  Fun.protect ~finally:(fun () -> gate_exit t) f

(* Fully release the gate (returning the saved depth) and retake it —
   for the two places a session must get out of every other session's
   way: parking on a lock conflict, and the commit-record fsync. *)
let gate_release_all t =
  let d = t.gate_depth in
  t.gate_depth <- 0;
  Atomic.set t.gate_owner 0;
  Mutex.unlock t.gate_mu;
  d

let gate_reacquire t depth =
  Mutex.lock t.gate_mu;
  Atomic.set t.gate_owner ((Domain.self () :> int) + 1);
  t.gate_depth <- depth

(* Run [f] (a blocking or long operation) with the gate released, then
   retake it at the same depth — exception-safe in both directions.  A
   caller that never held the gate (engine-level use outside [Db]) just
   runs [f]. *)
let without_gate t f =
  if Atomic.get t.gate_owner = (Domain.self () :> int) + 1 then begin
    let depth = gate_release_all t in
    Fun.protect ~finally:(fun () -> gate_reacquire t depth) f
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Ingest buffering state                                              *)
(* ------------------------------------------------------------------ *)

(* Buffered ingestion applies to immortal tables under lazy stamping
   (the deferred flush leans on lazy timestamps: versions are applied
   unstamped and resolve exactly like direct writes).  Eager mode and
   non-immortal tables take the classic per-row descent. *)
let ingest_enabled t ti =
  t.config.ingest_buffering
  && t.config.timestamping = Lazy_stamping
  && ti.Catalog.ti_mode = Catalog.Immortal

let ingest_buf t ti = Hashtbl.find_opt t.ingest_bufs ti.Catalog.ti_id

let next_ingest_seq t =
  t.ingest_seq <- t.ingest_seq + 1;
  t.ingest_seq

(* ------------------------------------------------------------------ *)
(* Logging core                                                        *)
(* ------------------------------------------------------------------ *)

let ensure_begun t txn =
  if not txn.tx_begun then begin
    txn.tx_begun <- true;
    let lsn = Imdb_wal.Wal.append t.wal (LR.Begin { tid = txn.tx_tid }) in
    txn.tx_last_lsn <- lsn
  end

(* Log [op] against the frame's page, apply it, mark the frame dirty.
   [undoable] ops join the current transaction's undo chain; others are
   redo-only structure modifications. *)
let exec_op t fr ~undoable op =
  let page_id = BP.page_id fr in
  let lsn =
    if undoable then begin
      match t.cur_txn with
      | None -> failwith "Engine.exec_op: undoable op outside a transaction"
      | Some txn ->
          ensure_begun t txn;
          let lsn =
            Imdb_wal.Wal.append t.wal
              (LR.Update { tid = txn.tx_tid; prev_lsn = txn.tx_last_lsn; page_id; op })
          in
          txn.tx_last_lsn <- lsn;
          lsn
    end
    else Imdb_wal.Wal.append t.wal (LR.Redo_only { page_id; op })
  in
  LR.redo_op (BP.bytes fr) op;
  BP.mark_dirty_logged t.pool fr ~lsn

(* Log a redo-only [op] for a change the caller has ALREADY applied to
   the frame.  Batched flush application needs this order: each insert
   must hit the page before the next can be planned, so the whole run is
   applied first and logged as one record.  The WAL rule still holds —
   the frame's dirty LSN gates its flush behind the log append, and
   replay applies [op] to the pre-batch image. *)
let log_applied t fr op =
  let lsn =
    Imdb_wal.Wal.append t.wal (LR.Redo_only { page_id = BP.page_id fr; op })
  in
  BP.mark_dirty_logged t.pool fr ~lsn

let with_txn t txn f =
  let saved = t.cur_txn in
  t.cur_txn <- Some txn;
  Fun.protect ~finally:(fun () -> t.cur_txn <- saved) f

(* ------------------------------------------------------------------ *)
(* Meta page & page allocation                                         *)
(* ------------------------------------------------------------------ *)

let update_meta t mutate =
  BP.with_page t.pool Meta.meta_page_id (fun fr ->
      let page = BP.bytes fr in
      let old_body = P.read_cell page Meta.meta_slot in
      mutate t.meta;
      let new_body = Meta.encode t.meta in
      exec_op t fr ~undoable:false
        (LR.Op_replace { slot = Meta.meta_slot; old_body; new_body }))

(* Allocate a page: from the freelist if possible, else extend the file.
   The page is formatted and redo-logged; the caller finds it cached. *)
let alloc_page t ~ptype ~level ~table_id =
  Imdb_obs.Metrics.incr t.metrics Imdb_obs.Metrics.pages_allocated;
  let from_freelist = t.meta.Meta.freelist_head <> 0 in
  let pid =
    if from_freelist then begin
      let pid = t.meta.Meta.freelist_head in
      let next =
        BP.with_page t.pool pid (fun fr -> P.next_page (BP.bytes fr))
      in
      update_meta t (fun m -> m.Meta.freelist_head <- next);
      pid
    end
    else begin
      let pid = t.meta.Meta.hwm in
      update_meta t (fun m -> m.Meta.hwm <- pid + 1);
      pid
    end
  in
  let fr = if from_freelist then BP.pin t.pool pid else BP.pin_new t.pool pid in
  Fun.protect
    ~finally:(fun () -> BP.unpin t.pool fr)
    (fun () ->
      P.set_page_id (BP.bytes fr) pid;
      exec_op t fr ~undoable:false (LR.Op_format { page_type = ptype; table_id; level }));
  pid

let free_page t pid =
  (* the freed id may be reused for a mutable page: make sure no stale
     immutable image can be served (belt and braces — only btree pages
     are ever freed, and those are never admitted) *)
  (match t.histcache with
  | Some hc -> Imdb_histcache.Histcache.remove hc pid
  | None -> ());
  Hashtbl.remove t.hist_decoded pid;
  BP.with_page t.pool pid (fun fr ->
      exec_op t fr ~undoable:false
        (LR.Op_format { page_type = P.P_free; table_id = 0; level = 0 });
      let old_b = Imdb_util.Codec.get_bytes (BP.bytes fr) 40 4 in
      let new_b = Bytes.create 4 in
      Imdb_util.Codec.set_u32 new_b 0 t.meta.Meta.freelist_head;
      exec_op t fr ~undoable:false (LR.Op_header { at = 40; old_b; new_b }));
  update_meta t (fun m -> m.Meta.freelist_head <- pid)

(* ------------------------------------------------------------------ *)
(* io adapters for the index structures                                *)
(* ------------------------------------------------------------------ *)

let btree_io t : Imdb_btree.Btree.io =
  {
    exec = (fun fr ~undoable op -> exec_op t fr ~undoable op);
    alloc = (fun ~ptype ~level -> alloc_page t ~ptype ~level ~table_id:0);
    free = (fun pid -> free_page t pid);
  }

let btree_io_for t table_id : Imdb_btree.Btree.io =
  {
    exec = (fun fr ~undoable op -> exec_op t fr ~undoable op);
    alloc = (fun ~ptype ~level -> alloc_page t ~ptype ~level ~table_id);
    free = (fun pid -> free_page t pid);
  }

let tsb_io t table_id : Imdb_tsb.Tsb.io =
  {
    exec = (fun fr op -> exec_op t fr ~undoable:false op);
    alloc = (fun ~level -> alloc_page t ~ptype:P.P_tsb_index ~level ~table_id);
  }

(* ------------------------------------------------------------------ *)
(* Transactions: registry and snapshots                                *)
(* ------------------------------------------------------------------ *)

(* A session: a lightweight handle for one thread-of-control (typically
   one domain) talking to a shared engine.  Sessions carry no mutable
   engine state of their own — every public operation synchronizes on the
   session gate — so any number may run on any domains; the id feeds
   observability.  Opening one [Db.t] and handing each domain its own
   session is the supported multi-core topology. *)
type session = { s_engine : t; s_id : int }

let session_seq = Atomic.make 1
let session t = { s_engine = t; s_id = Atomic.fetch_and_add session_seq 1 }

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- Tid.next tid;
  tid

let begin_txn ?(session = 0) t ~isolation =
  let tid = fresh_tid t in
  Imdb_tstamp.Vtt.begin_txn (vtt t) tid;
  let snapshot =
    match isolation with
    | As_of ts -> ts
    | Serializable | Snapshot_isolation -> Imdb_clock.Clock.last_issued t.clock
  in
  let txn =
    {
      tx_tid = tid;
      tx_isolation = isolation;
      tx_snapshot = snapshot;
      tx_session = session;
      tx_state = Running;
      tx_begun = false;
      tx_last_lsn = LR.nil_lsn;
      tx_writes = [];
      tx_write_set = Hashtbl.create 8;
      tx_wrote_immortal = false;
      tx_commit_ts = None;
      tx_durable = false;
      tx_rows_read = 0;
      tx_rows_written = 0;
      tx_lock_waits = 0;
      tx_lock_wait_us = 0;
    }
  in
  Tid.Table.replace t.active tid txn;
  Imdb_obs.Tracer.instant t.tracer "txn.begin"
    ~attrs:[ ("tid", Tid.to_string tid) ];
  txn

let check_running txn =
  match txn.tx_state with Running -> () | Rolling_back | Finished -> raise Txn_finished

let is_read_only txn = txn.tx_writes = []

(* The oldest snapshot any active transaction might still read — the
   version GC horizon for snapshot-only tables ("Immortal DB keeps track
   of the time of the oldest active snapshot transaction O"). *)
(* Snapshot times of all running snapshot/as-of transactions — the exact
   visibility horizon set for snapshot-table version GC. *)
let active_snapshots t =
  Tid.Table.fold
    (fun _ txn acc ->
      match (txn.tx_state, txn.tx_isolation) with
      | Running, (Snapshot_isolation | As_of _) -> txn.tx_snapshot :: acc
      | _ -> acc)
    t.active []

let oldest_active_snapshot t =
  let oldest = ref None in
  Tid.Table.iter
    (fun _ txn ->
      match (txn.tx_state, txn.tx_isolation) with
      | Running, (Snapshot_isolation | As_of _) -> (
          match !oldest with
          | Some o when Ts.compare o txn.tx_snapshot <= 0 -> ()
          | _ -> oldest := Some txn.tx_snapshot)
      | _ -> ())
    t.active;
  match !oldest with
  | Some o -> o
  | None -> Imdb_clock.Clock.last_issued t.clock

let note_write t txn ~table_id ~key ~immortal =
  check_running txn;
  (match txn.tx_isolation with As_of _ -> raise Read_only_txn | _ -> ());
  if not (Hashtbl.mem txn.tx_write_set (table_id, key)) then begin
    Hashtbl.replace txn.tx_write_set (table_id, key) ();
    txn.tx_writes <- (table_id, key) :: txn.tx_writes
  end;
  if immortal then txn.tx_wrote_immortal <- true;
  txn.tx_rows_written <- txn.tx_rows_written + 1;
  ignore t

(* ------------------------------------------------------------------ *)
(* Session statistics                                                   *)
(* ------------------------------------------------------------------ *)

let session_stats_for t sid =
  match Hashtbl.find_opt t.session_stats sid with
  | Some ss -> ss
  | None ->
      let ss =
        {
          ss_id = sid;
          ss_commits = 0;
          ss_aborts = 0;
          ss_rows_read = 0;
          ss_rows_written = 0;
          ss_lock_waits = 0;
          ss_lock_wait_us = 0;
          ss_commit_latency_ticks = 0;
          ss_last_batch_pos = 0;
          ss_max_batch_pos = 0;
        }
      in
      Hashtbl.add t.session_stats sid ss;
      ss

(* Fold a finished transaction's tallies into its session's cumulative
   stats (and the engine-wide session.* counters).  Called from
   [Txnmgr.commit]/[abort] under the gate; [latency_ticks]/[batch_pos]
   only accompany a persistent commit. *)
let fold_txn_stats t txn ~committed ?latency_ticks ?batch_pos () =
  let ss = session_stats_for t txn.tx_session in
  if committed then ss.ss_commits <- ss.ss_commits + 1
  else ss.ss_aborts <- ss.ss_aborts + 1;
  ss.ss_rows_read <- ss.ss_rows_read + txn.tx_rows_read;
  ss.ss_rows_written <- ss.ss_rows_written + txn.tx_rows_written;
  ss.ss_lock_waits <- ss.ss_lock_waits + txn.tx_lock_waits;
  ss.ss_lock_wait_us <- ss.ss_lock_wait_us + txn.tx_lock_wait_us;
  (match latency_ticks with
  | Some l -> ss.ss_commit_latency_ticks <- ss.ss_commit_latency_ticks + l
  | None -> ());
  (match batch_pos with
  | Some p ->
      ss.ss_last_batch_pos <- p;
      if p > ss.ss_max_batch_pos then ss.ss_max_batch_pos <- p
  | None -> ());
  (* the registry's session.* counters are commit-time only: aborted
     work stays visible in the per-session stats above, but never in the
     counter exposition the bench gates pin *)
  let module Mx = Imdb_obs.Metrics in
  if committed then begin
    if txn.tx_rows_read > 0 then
      Mx.incr ~by:txn.tx_rows_read t.metrics Mx.session_rows_read;
    if txn.tx_rows_written > 0 then
      Mx.incr ~by:txn.tx_rows_written t.metrics Mx.session_rows_written
  end

let session_stats_list t =
  Hashtbl.fold (fun _ ss acc -> ss :: acc) t.session_stats []
  |> List.sort (fun a b -> compare a.ss_id b.ss_id)

let sessions_json t =
  let module J = Imdb_obs.Json in
  let active_by_session = Hashtbl.create 8 in
  Tid.Table.iter
    (fun _ txn ->
      match txn.tx_state with
      | Running | Rolling_back ->
          let n =
            Option.value ~default:0
              (Hashtbl.find_opt active_by_session txn.tx_session)
          in
          Hashtbl.replace active_by_session txn.tx_session (n + 1)
      | Finished -> ())
    t.active;
  let ss_json ss =
    J.Obj
      [
        ("id", J.Int ss.ss_id);
        ( "active_txns",
          J.Int
            (Option.value ~default:0 (Hashtbl.find_opt active_by_session ss.ss_id))
        );
        ("commits", J.Int ss.ss_commits);
        ("aborts", J.Int ss.ss_aborts);
        ("rows_read", J.Int ss.ss_rows_read);
        ("rows_written", J.Int ss.ss_rows_written);
        ("lock_waits", J.Int ss.ss_lock_waits);
        ("lock_wait_us", J.Int ss.ss_lock_wait_us);
        ("commit_latency_ticks", J.Int ss.ss_commit_latency_ticks);
        ("last_batch_pos", J.Int ss.ss_last_batch_pos);
        ("max_batch_pos", J.Int ss.ss_max_batch_pos);
      ]
  in
  J.Obj [ ("sessions", J.List (List.map ss_json (session_stats_list t))) ]

(* ------------------------------------------------------------------ *)
(* Locking helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Take one lock for [tid].  With [lock_wait_timeout_ms = 0] this is the
   historical fail-fast protocol (a conflict raises immediately).  With a
   timeout configured, the session parks until the conflicting holders
   release — crucially with the engine gate released, so the holder can
   make progress and release — and a deadlock or a passed deadline
   selects this requester as the victim. *)
let lock_resource ?txn t tid res mode =
  let open Imdb_lock.Lock_manager in
  let timeout_ms = t.config.lock_wait_timeout_ms in
  try
    if timeout_ms <= 0 then acquire_exn t.locks tid res mode
    else begin
      let waited_us =
        without_gate t (fun () ->
            acquire_wait ~timeout_us:(timeout_ms * 1000) t.locks tid res mode)
      in
      if waited_us > 0 then
        match txn with
        | Some txn ->
            txn.tx_lock_waits <- txn.tx_lock_waits + 1;
            txn.tx_lock_wait_us <- txn.tx_lock_wait_us + waited_us
        | None -> ()
    end
  with
  | Deadlock tid -> raise (Deadlock_abort tid)
  | Lock_timeout { tid; _ } -> raise (Deadlock_abort tid)

let lock_record t txn ~table_id ~key mode =
  match txn.tx_isolation with
  | Serializable ->
      let open Imdb_lock.Lock_manager in
      let intent = match mode with X -> IX | _ -> IS in
      lock_resource ~txn t txn.tx_tid (Table table_id) intent;
      lock_resource ~txn t txn.tx_tid (Record (table_id, key)) mode
  | Snapshot_isolation when mode = Imdb_lock.Lock_manager.X ->
      (* SI writers take write locks so that concurrent writers are
         detected immediately (first-committer-wins is enforced by
         timestamp validation; the lock merely serializes the attempt) *)
      lock_resource ~txn t txn.tx_tid
        (Record (table_id, key))
        Imdb_lock.Lock_manager.X
  | Snapshot_isolation | As_of _ -> () (* versioned reads never lock *)

(* ------------------------------------------------------------------ *)
(* Compressed-history decoding                                          *)
(* ------------------------------------------------------------------ *)

(* Expand a compressed history image, timing the decode. *)
let decode_with ?(tracer = Imdb_obs.Tracer.null) metrics b =
  Imdb_obs.Tracer.with_span tracer "compress.decode" (fun sp ->
      let t0 = Unix.gettimeofday () in
      let img = Imdb_storage.Vcompress.decode b in
      Imdb_obs.Metrics.observe metrics Imdb_obs.Metrics.h_compress_decode_ns
        (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
      Imdb_obs.Tracer.add_attr sp "page" (string_of_int (P.page_id b));
      img)

(* Decoded view of a history page image for the serial read path: plain
   pages pass through untouched; [P_history_compressed] images expand to
   the equivalent [P_history] image.  Memoized — compressed pages are
   immutable, so entries never go stale; the FIFO bound keeps memory in
   check.  Coordinator domain only. *)
let decoded_history t page =
  if not (Imdb_storage.Vcompress.is_compressed page) then page
  else begin
    let pid = P.page_id page in
    match Hashtbl.find_opt t.hist_decoded pid with
    | Some img -> img
    | None ->
        let img = decode_with ~tracer:t.tracer t.metrics page in
        if Queue.length t.hist_decoded_order >= max 64 t.config.histcache_capacity
        then begin
          let victim = Queue.pop t.hist_decoded_order in
          Hashtbl.remove t.hist_decoded victim
        end;
        Hashtbl.replace t.hist_decoded pid img;
        Queue.push pid t.hist_decoded_order;
        img
  end

(* ------------------------------------------------------------------ *)
(* Stamping helpers                                                     *)
(* ------------------------------------------------------------------ *)

(* Lazily stamp every committed version in a pinned page (normal-access
   trigger).  Unlogged; the page is marked dirty first so the redo-scan
   start point can never advance past the stamping before it reaches
   disk. *)
let stamp_page t fr =
  let page = BP.bytes fr in
  if Imdb_version.Vpage.has_unstamped page then
    Imdb_obs.Tracer.with_span t.tracer "stamp.page" (fun sp ->
        BP.mark_dirty_unlogged t.pool fr;
        let n = Imdb_tstamp.Lazy_stamper.stamp_page t.stamper page in
        Imdb_obs.Tracer.add_attr sp "page" (string_of_int (BP.page_id fr));
        Imdb_obs.Tracer.add_attr sp "stamped" (string_of_int n))

(* Per-record variant: the write/read-path trigger stamps only the
   accessed record's versions. *)
let stamp_record t fr ~key =
  let page = BP.bytes fr in
  if Imdb_version.Vpage.key_has_unstamped page ~key then
    Imdb_obs.Tracer.with_span t.tracer "stamp.record" (fun sp ->
        BP.mark_dirty_unlogged t.pool fr;
        let n =
          Imdb_version.Vpage.stamp_versions_of ~metrics:t.metrics page ~key
            ~resolve:(Imdb_tstamp.Lazy_stamper.resolve_for_stamping t.stamper)
            ~on_stamp:(Imdb_tstamp.Lazy_stamper.on_stamp t.stamper)
        in
        Imdb_obs.Tracer.add_attr sp "stamped" (string_of_int n))

(* ------------------------------------------------------------------ *)
(* Checkpointing and PTT garbage collection                             *)
(* ------------------------------------------------------------------ *)

(* The span closes on exception too ([Tracer.with_span] wraps the body
   in [Fun.protect]) — the old ad-hoc [Metrics.trace Span_begin/Span_end]
   pair leaked its begin if anything between the two raised. *)
let checkpoint t =
  let module M = Imdb_obs.Metrics in
  Imdb_obs.Tracer.with_span t.tracer "checkpoint" @@ fun sp ->
  (* Sweep pages dirty since before the previous checkpoint, so the
     redo-scan start point (and the PTT GC horizon) moves forward: a page
     escapes the dirty-page table only by reaching disk. *)
  let swept =
    BP.flush_older_than t.pool ~rec_lsn_limit:t.meta.Meta.last_checkpoint_lsn
  in
  let att =
    Tid.Table.fold
      (fun tid txn acc ->
        match txn.tx_state with
        | Running | Rolling_back when txn.tx_begun -> (tid, txn.tx_last_lsn) :: acc
        | _ -> acc)
      t.active []
  in
  let dpt = BP.dirty_page_table t.pool in
  let lsn =
    Imdb_wal.Wal.append t.wal
      (LR.Checkpoint
         { att; dpt; next_tid = t.next_tid; clock = Imdb_clock.Clock.last_issued t.clock })
  in
  Imdb_wal.Wal.flush t.wal;
  update_meta t (fun m -> m.Meta.last_checkpoint_lsn <- lsn);
  BP.flush_page t.pool Meta.meta_page_id;
  (* the redo scan would start at the eldest dirty page, or at this
     checkpoint if the pool is clean *)
  let redo_scan_start =
    List.fold_left (fun acc (_, rec_lsn) -> min acc rec_lsn) lsn dpt
  in
  t.commits_since_checkpoint <- 0;
  let collected =
    if t.config.timestamping = Lazy_stamping && t.ptt <> None then
      List.length (Imdb_tstamp.Lazy_stamper.garbage_collect t.stamper ~redo_scan_start)
    else 0
  in
  (* make the GC deletions durable: otherwise a crash forgets them and
     recovery rebuilds the mappings as uncollectable cache entries *)
  if collected > 0 then Imdb_wal.Wal.flush t.wal;
  M.incr t.metrics M.checkpoints;
  Imdb_obs.Tracer.add_attr sp "swept" (string_of_int swept);
  Imdb_obs.Tracer.add_attr sp "dirty_pages" (string_of_int (List.length dpt));
  Imdb_obs.Tracer.add_attr sp "ptt_collected" (string_of_int collected);
  Log.debug (fun m ->
      m "checkpoint at %Ld: swept %d pages, dpt %d, att %d, redo start %Ld, GC'd %d PTT entries"
        lsn swept (List.length dpt) (List.length att) redo_scan_start collected);
  lsn

let maybe_auto_checkpoint t =
  if
    t.config.auto_checkpoint_every > 0
    && t.commits_since_checkpoint >= t.config.auto_checkpoint_every
  then ignore (checkpoint t)

(* ------------------------------------------------------------------ *)
(* Table cache                                                          *)
(* ------------------------------------------------------------------ *)

let register_table t ti =
  Hashtbl.replace t.tables ti.Catalog.ti_id ti;
  Hashtbl.replace t.table_ids ti.Catalog.ti_name ti.Catalog.ti_id

let unregister_table t ti =
  Hashtbl.remove t.tables ti.Catalog.ti_id;
  Hashtbl.remove t.table_ids ti.Catalog.ti_name

let table_by_name t name =
  Option.bind (Hashtbl.find_opt t.table_ids name) (Hashtbl.find_opt t.tables)

let table_by_id t id = Hashtbl.find_opt t.tables id

let list_tables t =
  Hashtbl.fold (fun _ ti acc -> ti :: acc) t.tables []
  |> List.sort (fun a b -> compare a.Catalog.ti_id b.Catalog.ti_id)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let make ?metrics ~disk ~log_device ~config ~clock () =
  (* One registry per engine: every component below is pointed at it, so
     two engines in one process never share (or clobber) counters. *)
  let metrics =
    match metrics with Some m -> m | None -> Imdb_obs.Metrics.create ()
  in
  (* Pre-register the hot-path instruments so the exposition shows them
     at zero even before the first eviction sweep / batched commit. *)
  let module Mx = Imdb_obs.Metrics in
  Mx.ensure_counter metrics Mx.buf_clock_sweeps;
  Mx.ensure_counter metrics Mx.keydir_hits;
  Mx.ensure_counter metrics Mx.keydir_misses;
  Mx.ensure_counter metrics Mx.histcache_hits;
  Mx.ensure_counter metrics Mx.histcache_misses;
  Mx.ensure_counter metrics Mx.histcache_evictions;
  Mx.ensure_counter metrics Mx.scan_parallel_fallbacks;
  Mx.ensure_counter metrics Mx.hist_bytes_written;
  Mx.ensure_counter metrics Mx.compress_pages;
  Mx.ensure_counter metrics Mx.compress_fallbacks;
  Mx.ensure_counter metrics Mx.compress_raw_bytes;
  Mx.ensure_counter metrics Mx.compress_written_bytes;
  Mx.ensure_counter metrics Mx.trace_spans;
  Mx.ensure_counter metrics Mx.trace_drops;
  Mx.ensure_counter metrics Mx.trace_slow_ops;
  Mx.ensure_counter metrics Mx.recovery_torn_pages;
  Mx.ensure_counter metrics Mx.ingest_appends;
  Mx.ensure_counter metrics Mx.ingest_flushes;
  Mx.ensure_counter metrics Mx.ingest_flush_messages;
  Mx.ensure_counter metrics Mx.ingest_flush_pages;
  Mx.ensure_counter metrics Mx.ingest_deferred_splits;
  Mx.ensure_counter metrics Mx.ingest_hint_key_splits;
  Mx.ensure_counter metrics Mx.lock_acquires;
  Mx.ensure_counter metrics Mx.lock_conflicts;
  Mx.ensure_counter metrics Mx.lock_deadlocks;
  Mx.ensure_counter metrics Mx.lock_timeouts;
  Mx.ensure_counter metrics Mx.session_rows_read;
  Mx.ensure_counter metrics Mx.session_rows_written;
  Mx.ensure_counter metrics Mx.monitor_samples;
  Mx.ensure_counter metrics Mx.monitor_dropped;
  Mx.set_gauge metrics Mx.recovery_redo_lsn 0;
  Mx.ensure_histogram metrics Mx.h_lock_wait_us;
  Mx.ensure_histogram metrics Mx.h_group_commit_batch;
  Mx.ensure_histogram metrics Mx.h_scan_fanout;
  Mx.ensure_histogram metrics Mx.h_compress_decode_ns;
  Mx.ensure_histogram metrics Mx.h_ptt_gc_batch;
  Mx.ensure_histogram metrics Mx.h_ingest_flush_run;
  (* The tracer: null when sampling is off, so every instrumentation
     site costs a single branch on the shared disabled instance. *)
  let tracer =
    if config.trace_sampling <= 0 then Imdb_obs.Tracer.null
    else
      Imdb_obs.Tracer.create ~sampling:config.trace_sampling
        ~slow_threshold_us:config.slow_op_threshold_us ~metrics ()
  in
  (* Parallel scans share the device between the coordinator (via the
     buffer pool) and worker-domain cache misses: serialize it.  At the
     default scan_parallelism = 1 the device is untouched, so the serial
     path stays bit-for-bit identical. *)
  let disk =
    if config.scan_parallelism > 1 then Imdb_storage.Disk.serialized disk else disk
  in
  Imdb_storage.Disk.set_metrics disk metrics;
  let wal = Imdb_wal.Wal.open_device ~metrics log_device in
  Imdb_wal.Wal.set_tracer wal tracer;
  let pool = BP.create ~capacity:config.pool_capacity ~metrics ~disk ~wal () in
  let stamper = Imdb_tstamp.Lazy_stamper.create ~metrics () in
  Imdb_tstamp.Lazy_stamper.set_tracer stamper tracer;
  Imdb_tstamp.Lazy_stamper.set_end_of_log stamper (fun () -> Imdb_wal.Wal.next_lsn wal);
  Imdb_tstamp.Lazy_stamper.set_flushed_lsn stamper (fun () ->
      Imdb_wal.Wal.flushed_lsn wal);
  Imdb_tstamp.Lazy_stamper.set_force_log stamper (fun () ->
      Imdb_wal.Wal.flush wal);
  let histcache =
    if config.scan_parallelism > 1 then
      Some
        (Imdb_histcache.Histcache.create ~tracer
           ~capacity:config.histcache_capacity
           ~load:(fun pid -> disk.Imdb_storage.Disk.read_page pid)
           ~decode:(fun b -> decode_with ~tracer metrics b)
           ())
    else None
  in
  let t =
    {
      disk;
      wal;
      pool;
      gate_mu = Mutex.create ();
      gate_owner = Atomic.make 0;
      gate_depth = 0;
      clock;
      locks =
        (let lm = Imdb_lock.Lock_manager.create () in
         Imdb_lock.Lock_manager.set_metrics lm metrics;
         Imdb_lock.Lock_manager.set_tracer lm tracer;
         lm);
      stamper;
      metrics;
      tracer;
      config;
      meta = Meta.fresh ();
      ptt = None;
      catalog_tree = None;
      tables = Hashtbl.create 16;
      table_ids = Hashtbl.create 16;
      active = Tid.Table.create 16;
      next_tid = Tid.first;
      cur_txn = None;
      commits_since_checkpoint = 0;
      in_recovery = false;
      histcache;
      scan_pool = None;
      hist_decoded = Hashtbl.create 64;
      hist_decoded_order = Queue.create ();
      ingest_bufs = Hashtbl.create 8;
      ingest_seq = 0;
      session_stats = Hashtbl.create 8;
      monitor =
        (if config.monitor_interval_ms > 0 then
           Imdb_obs.Monitor.create ~interval_ms:config.monitor_interval_ms
             ~capacity:config.monitor_capacity metrics
         else Imdb_obs.Monitor.null);
    }
  in
  (* start sampling right away: recovery activity is part of the record *)
  Imdb_obs.Monitor.start t.monitor;
  (* Flush-time lazy stamping: volatile-only resolution, no logging. *)
  BP.set_pre_flush pool (fun page ->
      match P.page_type page with
      | P.P_data ->
          if config.timestamping = Lazy_stamping then
            ignore (Imdb_tstamp.Lazy_stamper.stamp_page_volatile stamper page)
      | P.P_free | P.P_meta | P.P_history | P.P_history_compressed | P.P_index
      | P.P_tsb_index | P.P_heap | P.P_msg_buffer -> ());
  t

(* Fresh database: format page 0, create the catalog and PTT trees, and
   persist a first checkpoint.  Everything is redo-only logged, so a crash
   at any point replays to a consistent (possibly empty) state. *)
let bootstrap t =
  let fr = BP.pin_new t.pool Meta.meta_page_id in
  Fun.protect
    ~finally:(fun () -> BP.unpin t.pool fr)
    (fun () ->
      P.set_page_id (BP.bytes fr) Meta.meta_page_id;
      exec_op t fr ~undoable:false
        (LR.Op_format { page_type = P.P_meta; table_id = 0; level = 0 });
      exec_op t fr ~undoable:false
        (LR.Op_insert { slot = Meta.meta_slot; body = Meta.encode t.meta }));
  let catalog =
    Imdb_btree.Btree.create ~metrics:t.metrics ~pool:t.pool
      ~io:(btree_io_for t Meta.catalog_table_id) ~table_id:Meta.catalog_table_id
      ~name:"catalog" ()
  in
  let ptt =
    Imdb_tstamp.Ptt.create ~metrics:t.metrics ~tracer:t.tracer ~pool:t.pool
      ~io:(btree_io_for t Meta.ptt_table_id) ~table_id:Meta.ptt_table_id ()
  in
  update_meta t (fun m ->
      m.Meta.catalog_root <- Imdb_btree.Btree.root catalog;
      m.Meta.ptt_root <- Imdb_tstamp.Ptt.root ptt);
  t.catalog_tree <- Some catalog;
  t.ptt <- Some ptt;
  Imdb_tstamp.Lazy_stamper.set_ptt t.stamper ptt;
  ignore (checkpoint t);
  BP.flush_all t.pool

(* Attach system structures from an existing meta (after recovery). *)
let attach_system t =
  let catalog =
    Imdb_btree.Btree.attach ~metrics:t.metrics ~pool:t.pool
      ~io:(btree_io_for t Meta.catalog_table_id) ~root:t.meta.Meta.catalog_root
      ~table_id:Meta.catalog_table_id ~name:"catalog" ()
  in
  let ptt =
    Imdb_tstamp.Ptt.attach ~metrics:t.metrics ~tracer:t.tracer ~pool:t.pool
      ~io:(btree_io_for t Meta.ptt_table_id) ~root:t.meta.Meta.ptt_root
      ~table_id:Meta.ptt_table_id ()
  in
  t.catalog_tree <- Some catalog;
  t.ptt <- Some ptt;
  Imdb_tstamp.Lazy_stamper.set_ptt t.stamper ptt;
  List.iter (register_table t) (Catalog.load_all catalog);
  (* Rebuild the volatile ingest-buffer mirrors from their pages (redo has
     already reconstructed the page images).  Runs before loser rollback,
     which may need to remove a loser's messages through the mirror. *)
  Hashtbl.reset t.ingest_bufs;
  t.ingest_seq <- 0;
  List.iter
    (fun ti ->
      if ti.Catalog.ti_buf_root <> 0 then begin
        let buf =
          BP.with_page t.pool ti.Catalog.ti_buf_root (fun fr ->
              Ingest.of_page ~table_id:ti.Catalog.ti_id (BP.bytes fr))
        in
        Hashtbl.replace t.ingest_bufs ti.Catalog.ti_id buf;
        t.ingest_seq <- max t.ingest_seq (Ingest.max_seq buf)
      end)
    (list_tables t)

(* The worker-domain pool, spawned on first use so engines that never run
   a parallel scan never pay for domains.  [None] when scan_parallelism
   <= 1: callers take the serial path. *)
let scan_pool t =
  match t.scan_pool with
  | Some p -> Some p
  | None ->
      if t.config.scan_parallelism > 1 then begin
        let p = Imdb_parallel.Pool.create ~workers:(t.config.scan_parallelism - 1) in
        t.scan_pool <- Some p;
        Some p
      end
      else None

let close t =
  (* join the sampler thread first: the domain must stay joinable, and a
     sample racing device close would read a half-torn-down engine *)
  Imdb_obs.Monitor.stop t.monitor;
  (* a clean-shutdown checkpoint: the next open recovers from (nearly)
     the end of the log *)
  (if t.ptt <> None then try ignore (checkpoint t) with _ -> ());
  (match t.scan_pool with
  | Some p ->
      Imdb_parallel.Pool.shutdown p;
      t.scan_pool <- None
  | None -> ());
  BP.flush_all t.pool;
  Imdb_wal.Wal.close t.wal;
  t.disk.Imdb_storage.Disk.sync ();
  t.disk.Imdb_storage.Disk.close ()

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)
(* ------------------------------------------------------------------ *)

(* The post-mortem payload: everything a human needs to reconstruct what
   the engine was doing when it died — the monitor ring (with a final
   sample taken now, so there is always at least one), the tracer's
   slow-op ring, a consistent lock dump, the per-session stats and the
   full metrics exposition. *)
let flight_report t ~reason =
  let module J = Imdb_obs.Json in
  Imdb_obs.Monitor.sample t.monitor;
  J.Obj
    [
      ("flight_schema_version", J.Int 1);
      ("reason", J.String reason);
      ("metrics_schema_version", J.Int Imdb_obs.Metrics.schema_version);
      ("monitor", Imdb_obs.Monitor.to_json t.monitor);
      ("sessions", sessions_json t);
      ("locks", Imdb_lock.Lock_manager.dump_json t.locks);
      ("traces", Imdb_obs.Tracer.to_json t.tracer);
      ("metrics", Imdb_obs.Metrics.to_json t.metrics);
    ]

(* Best-effort: a failing flight-recorder write must never mask the
   failure (or the recovery) it is documenting. *)
let write_flight_report t ~reason =
  match t.config.flight_recorder_dir with
  | None -> None
  | Some dir -> (
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let name =
          Printf.sprintf "flight_%s_%d.json" reason
            (int_of_float (Unix.gettimeofday () *. 1e3))
        in
        let path = Filename.concat dir name in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Imdb_obs.Json.to_string (flight_report t ~reason)));
        Log.info (fun m -> m "flight recorder: wrote %s" path);
        Some path
      with e ->
        Log.warn (fun m ->
            m "flight recorder: failed to write report: %s" (Printexc.to_string e));
        None)
