(* Fault injection: crashes at exact disk writes (including torn page
   writes) and recovery from each.  Uses the failure-injecting disk
   wrapper and an exhaustive sweep over injection points. *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module Disk = Imdb_storage.Disk
module Wal = Imdb_wal.Wal
module Ts = Imdb_clock.Timestamp

let kv_schema = Helpers.kv_schema
let row = Helpers.row

(* Run [workload] against a database whose disk fails (optionally tearing
   the in-flight page) after [n] page writes; then lift the failure plan
   and recover.  Returns the recovered database. *)
let run_with_injection ~tear ~fail_after workload =
  let plan = Disk.never_fail () in
  let disk = Disk.failing ~plan (Disk.in_memory ~page_size:8192 ()) in
  let log_device = Wal.Device.in_memory () in
  let clock = Imdb_clock.Clock.create_logical () in
  (* small pool + frequent checkpoints: plenty of page writes to target *)
  let config = { E.default_config with E.pool_capacity = 8; E.auto_checkpoint_every = 20 } in
  let db = Db.open_devices ~config ~clock ~disk ~log_device () in
  Disk.arm plan ~tear ~after:fail_after ();
  let crashed =
    try
      workload db clock;
      false
    with Disk.Io_failure _ -> true
  in
  (* lift the injection and recover over the same devices *)
  Disk.lift plan;
  Imdb_wal.Wal.crash_volatile (Db.engine db).E.wal;
  Imdb_buffer.Buffer_pool.drop_all (Db.engine db).E.pool;
  let db = Db.open_devices ~config ~clock ~disk ~log_device () in
  (db, clock, crashed)

let standard_workload db clock =
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for u = 1 to 120 do
    Imdb_clock.Clock.advance clock 20L;
    Db.with_txn db (fun txn ->
        Db.upsert_row db txn ~table:"t" (row (u mod 6) (Printf.sprintf "v%d" u)))
  done

(* After recovery, whatever committed must be present and internally
   consistent: each key's value is the latest of its committed updates,
   and history per key is a prefix of the update sequence. *)
let validate db =
  Db.exec db (fun txn ->
      match Db.list_tables db with
      | [] -> () (* crashed before the DDL committed: fine *)
      | _ ->
          let rows = Db.scan_rows db txn ~table:"t" in
          List.iter
            (fun r ->
              match r with
              | [ S.V_int k; S.V_string v ] ->
                  (* value "vU" must satisfy U mod 6 = k *)
                  let u = int_of_string (String.sub v 1 (String.length v - 1)) in
                  if u mod 6 <> k then
                    Alcotest.failf "key %d has foreign value %s" k v
              | _ -> Alcotest.fail "bad row shape")
            rows)

let test_injection_sweep () =
  (* every 7th write as the failure point, with and without tearing *)
  let crashes = ref 0 in
  let points = [ 1; 3; 8; 15; 22; 29; 36; 43; 50; 64; 78; 92 ] in
  List.iter
    (fun fail_after ->
      List.iter
        (fun tear ->
          let db, _clock, crashed =
            run_with_injection ~tear ~fail_after standard_workload
          in
          if crashed then incr crashes;
          validate db;
          Db.close db)
        [ false; true ])
    points;
  (* the sweep must actually have hit the workload *)
  Alcotest.(check bool)
    (Printf.sprintf "injections fired (%d crashes)" !crashes)
    true (!crashes > 0)

let test_work_continues_after_recovery () =
  let db, clock, crashed = run_with_injection ~tear:true ~fail_after:10 standard_workload in
  Alcotest.(check bool) "crashed as planned" true crashed;
  (* the engine accepts new transactions post-recovery *)
  Imdb_clock.Clock.advance clock 20L;
  Db.with_txn db (fun txn -> Db.upsert_row db txn ~table:"t" (row 0 "post-recovery"));
  Db.exec db (fun txn ->
      Alcotest.(check bool) "new write visible" true
        (Db.get_row db txn ~table:"t" ~key:(S.V_int 0) = Some (row 0 "post-recovery")));
  Db.close db

let test_torn_meta_page () =
  (* tear the write of page 0 specifically: recovery falls back to a full
     log scan (checkpoint pointer unreadable) and still comes up *)
  let plan = Disk.never_fail () in
  let disk = Disk.failing ~plan (Disk.in_memory ~page_size:8192 ()) in
  let log_device = Wal.Device.in_memory () in
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_devices ~clock ~disk ~log_device () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  Imdb_clock.Clock.advance clock 20L;
  Db.with_txn db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "x"));
  (* force a checkpoint whose meta-page write tears *)
  Disk.arm plan ~tear:true ~target:(Disk.Writes_to_page 0) ~after:0 ();
  (match Db.checkpoint db with
  | () -> ()
  | exception Disk.Io_failure _ -> ());
  Disk.lift plan;
  Imdb_wal.Wal.crash_volatile (Db.engine db).E.wal;
  Imdb_buffer.Buffer_pool.drop_all (Db.engine db).E.pool;
  let db2 = Db.open_devices ~clock ~disk ~log_device () in
  Db.exec db2 (fun txn ->
      Alcotest.(check bool) "data survived torn meta" true
        (Db.get_row db2 txn ~table:"t" ~key:(S.V_int 1) = Some (row 1 "x")));
  Db.close db2

(* --- torn-page twin regressions --------------------------------------------

   Run the same deterministic workload on a crash engine and an uncrashed
   twin, tear a targeted page write on the crash engine (mid-group-commit
   data flush, or mid-time-split history write), recover it, and require
   (a) the checksum scrub detected and rebuilt the torn page and (b) every
   AS OF answer over the durable prefix is identical to the twin's. *)

module Pg = Imdb_storage.Page
module M = Imdb_obs.Metrics

let twin_config =
  (* small pages + small pool: frequent evictions and time splits, so the
     targeted write arrives within a few phase-2 transactions *)
  { E.default_config with
    E.page_size = 1024; pool_capacity = 8; group_commit_window = 4 }

let twin_value u = Printf.sprintf "v%03d-%s" u (String.make 180 'x')

(* Shared prefix: 60 upserts over 6 keys; returns the commit timestamps
   (the AS OF probe points). *)
let twin_phase1 db clock =
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  let stamps = ref [] in
  for u = 1 to 60 do
    Imdb_clock.Clock.advance clock 20L;
    let txn = Db.begin_txn db in
    Db.upsert_row db txn ~table:"t" (row (u mod 6) (twin_value u));
    match Db.commit db txn with
    | Some ts -> stamps := ts :: !stamps
    | None -> Alcotest.fail "phase-1 commit returned no timestamp"
  done;
  List.rev !stamps

let torn_twin_case ~page_types () =
  (* the uncrashed twin: phase 1 only *)
  let twin_clock = Imdb_clock.Clock.create_logical () in
  let twin =
    Db.open_devices ~config:twin_config ~clock:twin_clock
      ~disk:(Disk.in_memory ~page_size:twin_config.E.page_size ())
      ~log_device:(Wal.Device.in_memory ()) ()
  in
  let twin_stamps = twin_phase1 twin twin_clock in
  (* the crash engine: phase 1, checkpoint (phase-1 commits durable),
     then phase-2 churn with the torn write armed *)
  let plan = Disk.never_fail () in
  let inner = Disk.in_memory ~page_size:twin_config.E.page_size () in
  let disk = Disk.failing ~plan inner in
  (* Tear only a write whose second half differs from what is already on
     the platter: the torn image (new first half + stale second half)
     then provably fails its checksum, so the recovery scrub must detect
     it — no lucky harmless tears. *)
  let target =
    Disk.Writes_matching
      (fun id b ->
        List.mem (Pg.page_type b) page_types
        &&
        let half = twin_config.E.page_size / 2 in
        let stale =
          try inner.Disk.read_page id
          with Disk.Page_missing _ -> Bytes.make twin_config.E.page_size '\000'
        in
        not (Bytes.equal (Bytes.sub b half half) (Bytes.sub stale half half)))
  in
  let log_device = Wal.Device.in_memory () in
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_devices ~config:twin_config ~clock ~disk ~log_device () in
  let stamps = twin_phase1 db clock in
  Alcotest.(check int) "twin ran the same prefix" (List.length twin_stamps)
    (List.length stamps);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same commit timestamps" true (Ts.equal a b))
    twin_stamps stamps;
  Db.checkpoint db;
  Disk.arm plan ~tear:true ~target ~after:0 ();
  let crashed = ref false in
  (try
     for u = 61 to 400 do
       Imdb_clock.Clock.advance clock 20L;
       Db.with_txn db (fun txn ->
           Db.upsert_row db txn ~table:"t" (row (u mod 6) (twin_value u)))
     done
   with Disk.Io_failure _ -> crashed := true);
  Alcotest.(check bool) "targeted write tore" true !crashed;
  Disk.lift plan;
  Imdb_wal.Wal.crash_volatile (Db.engine db).E.wal;
  Imdb_buffer.Buffer_pool.drop_all (Db.engine db).E.pool;
  let db2 = Db.open_devices ~config:twin_config ~clock ~disk ~log_device () in
  Alcotest.(check bool) "checksum scrub caught the torn page" true
    (M.get (Db.metrics db2) M.recovery_torn_pages >= 1);
  (* every phase-1 AS OF state must match the twin exactly *)
  List.iter
    (fun ts ->
      let scan d = Db.as_of d ts (fun txn -> Db.scan_rows_as_of d txn ~table:"t" ~ts) in
      if scan db2 <> scan twin then
        Alcotest.failf "AS OF %s diverges from the uncrashed twin" (Ts.to_string ts))
    stamps;
  (* per-key history over the prefix window must match too *)
  let upto ts hist =
    List.filter (fun (t, _) -> Ts.compare t ts <= 0) hist
  in
  let last = List.nth stamps (List.length stamps - 1) in
  for k = 0 to 5 do
    let hist d =
      Db.exec d (fun txn -> Db.history_rows d txn ~table:"t" ~key:(S.V_int k))
    in
    if upto last (hist db2) <> upto last (hist twin) then
      Alcotest.failf "history of key %d diverges from the uncrashed twin" k
  done;
  Db.close db2;
  Db.close twin

let test_torn_twin_group_commit () = torn_twin_case ~page_types:[ Pg.P_data ] ()

let test_torn_twin_time_split () =
  torn_twin_case ~page_types:[ Pg.P_history; Pg.P_history_compressed ] ()

let suite =
  [
    Alcotest.test_case "injection sweep" `Slow test_injection_sweep;
    Alcotest.test_case "work continues after recovery" `Quick
      test_work_continues_after_recovery;
    Alcotest.test_case "torn meta page" `Quick test_torn_meta_page;
    Alcotest.test_case "torn twin: mid group commit" `Quick
      test_torn_twin_group_commit;
    Alcotest.test_case "torn twin: mid time split" `Quick
      test_torn_twin_time_split;
  ]
