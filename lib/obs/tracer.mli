(** Hierarchical span tracer — the causal companion to {!Metrics}.

    Where the metrics registry answers "how much work happened", the
    tracer answers "why was this operation slow": every traced operation
    opens a {e span} (id, parent id, name, wall-clock start, duration in
    microseconds, string attrs) and the parent links form a forest that
    follows the engine's causal structure — a commit span contains the
    group-commit flush it triggered, an update span contains the
    time-split it caused, a time-split contains the lazy stamping it
    performed.

    Design points (see DESIGN.md "Tracing"):

    - {b Scoped-only API.} [with_span] is the only way to open a span; it
      closes the span on normal return {e and} on exception
      ([Fun.protect]), so unmatched begins cannot leak.
    - {b Bounded rings.} Completed spans land in a ring of [capacity];
      when full the oldest is dropped and accounted ([dropped], plus the
      [trace.dropped] counter).  Spans whose duration reaches
      [slow_threshold_us] are additionally retained in a separate
      slow-op ring so a burst of fast spans cannot wash out the
      interesting ones.
    - {b Sampling.} [sampling = n] records every n-th {e root} span;
      children inherit their root's fate so sampled traces are always
      complete trees, never torn fragments.
    - {b Cheap when off.} The shared [null] tracer short-circuits on one
      immutable boolean before any lock or allocation.
    - {b Domain-safe.} One internal mutex guards the rings and the
      per-domain stacks of open spans; parallel-scan workers may record
      spans concurrently with the coordinator.  Cross-domain causality is
      expressed by passing the coordinator's span as [~parent].
    - {b Durations are clamped monotone} ([max 0]) and the clock is
      injectable ([set_clock]) so tests run the tracer under a
      deterministic microsecond clock. *)

type t

type span
(** Handle to an open (or disabled/unsampled) span.  Attrs added to an
    unsampled handle are discarded for free. *)

val null : t
(** Shared disabled tracer: every operation is a no-op. *)

val null_span : span
(** The handle passed to [with_span] bodies when tracing is disabled. *)

val create :
  ?capacity:int ->
  ?slow_capacity:int ->
  ?slow_threshold_us:int ->
  ?sampling:int ->
  metrics:Metrics.t ->
  unit ->
  t
(** [capacity] (default 4096) bounds the completed-span ring,
    [slow_capacity] (default 256) the slow-op ring.  [slow_threshold_us]
    (default 10_000) promotes spans at least that long.  [sampling]
    (default 1) records every n-th root span; values < 1 clamp to 1 —
    "off" is expressed by using [null].  Closing a sampled span also
    feeds [metrics]: [trace.spans], [trace.slow_ops], [trace.dropped]
    counters and a per-kind ["span.<name>_us"] duration histogram. *)

val enabled : t -> bool

val set_clock : t -> (unit -> int) -> unit
(** Replace the microsecond clock (default: [Unix.gettimeofday] scaled).
    Test hook — lets span durations be deterministic. *)

val with_span :
  t -> ?attrs:(string * string) list -> ?parent:span -> string -> (span -> 'a) -> 'a
(** [with_span t name f] opens a span, runs [f], and closes the span when
    [f] returns or raises.  The parent is the innermost open span of the
    calling domain unless [?parent] is given explicitly (used to link
    worker-domain spans to the coordinator span that fanned them out).
    When [t] is disabled this is a single branch: [f null_span]. *)

val add_attr : span -> string -> string -> unit
(** Attach a key/value to an open span (no-op on unsampled handles).
    Later values win on duplicate keys at export time. *)

val span_id : span -> int
(** 0 for disabled/unsampled handles. *)

val instant : t -> ?attrs:(string * string) list -> string -> unit
(** A zero-duration point event, parented like a span. *)

val current : t -> span option
(** The innermost {e sampled} open span of the calling domain, if any. *)

(** {1 Reading back} *)

type completed = {
  c_id : int;  (** unique per tracer, > 0, monotonically increasing *)
  c_parent : int;  (** 0 = root *)
  c_name : string;
  c_domain : int;  (** domain id that recorded the span *)
  c_start_us : int;
  c_dur_us : int;
  c_attrs : (string * string) list;
  c_instant : bool;
}

val spans : t -> completed list
(** Completed-span ring, oldest first. *)

val slow_ops : t -> completed list
(** Slow-op ring, oldest first. *)

val dropped : t -> int
(** Spans evicted from the completed ring since creation/[reset]. *)

val slow_dropped : t -> int

val reset : t -> unit
(** Clear both rings and the drop counts.  Open spans are unaffected. *)

(** {1 Exports} *)

val to_json : t -> Json.t
(** Native export:
    {v
    { "dropped": n, "slow_dropped": n,
      "spans":   [ { "id": n, "parent": n, "name": s, "domain": n,
                     "start_us": n, "dur_us": n, "instant": b,
                     "attrs": { ... } }, ... ],
      "slow_ops": [ ...same shape... ] }
    v} *)

val to_chrome_json : t -> Json.t
(** Chrome trace-event format (loadable in Perfetto /
    [chrome://tracing]): complete "X" events with [ts]/[dur] in
    microseconds, instants as "i" events; [tid] is the recording domain
    so coordinator and scan workers land on separate rows, and [args]
    carries the span/parent ids plus attrs. *)

val to_json_string : t -> string
val to_chrome_string : t -> string
