(* Durability and the lazy-timestamping crash story (paper Section 2.2).

     dune exec examples/crash_recovery_demo.exe

   We commit work, leave versions deliberately *unstamped* (their pages
   carry TIDs, not timestamps — stamping was never logged), start an
   in-flight transaction, and crash.  Recovery replays the log, rolls the
   loser back, and the unstamped-but-committed versions resolve through
   the persistent timestamp table on first access — no committed history
   is lost, and AS OF still answers correctly. *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp

let schema =
  S.make
    [
      { S.col_name = "id"; col_type = S.T_int };
      { S.col_name = "note"; col_type = S.T_string };
    ]

let () =
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_memory ~clock () in
  Db.create_table db ~name:"journal" ~mode:Db.Immortal ~schema;
  let tick () = Imdb_clock.Clock.advance clock 20L in

  tick ();
  Db.with_txn db (fun txn ->
      Db.insert_row db txn ~table:"journal" [ S.V_int 1; S.V_string "first entry" ]);
  let t1 = Imdb_clock.Clock.last_issued clock in
  tick ();
  Db.with_txn db (fun txn ->
      Db.update_row db txn ~table:"journal" [ S.V_int 1; S.V_string "revised entry" ]);

  Fmt.pr "PTT entries before crash: %d@."
    (Imdb_tstamp.Ptt.count (E.ptt_exn (Db.engine db)));

  (* An in-flight transaction that must vanish at recovery. *)
  let doomed = Db.begin_txn db in
  Db.insert_row db doomed ~table:"journal" [ S.V_int 2; S.V_string "never happened" ];
  Fmt.pr "in-flight transaction wrote id=2, NOT committed@.";

  Fmt.pr "@.*** CRASH *** (buffer pool and volatile timestamp table lost)@.@.";
  let db = Db.crash_and_reopen ~clock db in

  Db.exec db (fun txn ->
      Fmt.pr "after recovery:@.";
      List.iter
        (fun row -> Fmt.pr "  %a@." (Fmt.Dump.list S.pp_value) row)
        (Db.scan_rows db txn ~table:"journal");
      (match Db.get_row db txn ~table:"journal" ~key:(S.V_int 2) with
      | None -> Fmt.pr "  id=2: correctly rolled back@."
      | Some _ -> Fmt.pr "  id=2: STILL PRESENT (bug!)@."));

  (* Historical states survived the crash, resolved via the PTT. *)
  (match
     Db.as_of db t1 (fun txn -> Db.get_row db txn ~table:"journal" ~key:(S.V_int 1))
   with
  | Some [ _; S.V_string note ] ->
      Fmt.pr "  AS OF first commit still answers: %S@." note
  | _ -> Fmt.pr "  AS OF lookup failed (bug!)@.");

  (* And the engine keeps working: more commits, another crash, again. *)
  tick ();
  Db.with_txn db (fun txn ->
      Db.insert_row db txn ~table:"journal" [ S.V_int 3; S.V_string "post-crash" ]);
  let db = Db.crash_and_reopen ~clock db in
  Db.exec db (fun txn ->
      Fmt.pr "@.after a second crash, %d rows; history of id=1:@."
        (List.length (Db.scan_rows db txn ~table:"journal"));
      List.iter
        (fun (ts, row) ->
          Fmt.pr "  %a  %a@." Ts.pp ts
            (Fmt.Dump.option (Fmt.Dump.list S.pp_value))
            row)
        (Db.history_rows db txn ~table:"journal" ~key:(S.V_int 1)));
  Db.close db
