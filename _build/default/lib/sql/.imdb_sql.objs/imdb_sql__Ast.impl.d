lib/sql/ast.ml: Buffer Fmt List String
