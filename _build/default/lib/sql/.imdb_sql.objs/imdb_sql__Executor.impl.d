lib/sql/executor.ml: Ast Fmt Imdb_clock Imdb_core List Parser Printf String
