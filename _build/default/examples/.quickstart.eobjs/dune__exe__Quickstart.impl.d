examples/quickstart.ml: Fmt Imdb_clock Imdb_core List Unix
