lib/workload/moving_objects.ml: Hashtbl Imdb_util List Option Road_network
