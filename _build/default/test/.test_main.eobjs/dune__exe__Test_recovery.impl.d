test/test_recovery.ml: Alcotest Hashtbl Helpers Imdb_clock Imdb_core Imdb_util List Option Printf QCheck QCheck_alcotest
