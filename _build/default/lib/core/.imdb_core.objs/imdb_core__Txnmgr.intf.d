lib/core/txnmgr.mli: Engine Imdb_clock Imdb_wal
