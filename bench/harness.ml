(* Shared bench plumbing: timing, table rendering, experiment registry. *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* --- simple aligned table printer ---------------------------------------- *)

let print_table ~title ~header rows =
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell -> max (List.nth acc i) (String.length cell))
          row)
      (List.map (fun _ -> 0) header)
      all
  in
  let line c = String.concat "-+-" (List.map (fun w -> String.make w c) widths) in
  Fmt.pr "@.== %s ==@." title;
  let render row =
    String.concat " | "
      (List.mapi
         (fun i cell -> cell ^ String.make (List.nth widths i - String.length cell) ' ')
         row)
  in
  Fmt.pr "%s@." (render header);
  Fmt.pr "%s@." (line '-');
  List.iter (fun row -> Fmt.pr "%s@." (render row)) rows

let ms f = Fmt.str "%.2f" (f *. 1000.0)
let pct a b = if b = 0.0 then "n/a" else Fmt.str "%+.1f%%" ((a -. b) /. b *. 100.0)

(* --- registry -------------------------------------------------------------- *)

type experiment = {
  ex_name : string;
  ex_doc : string;
  ex_run : scale:float -> unit;
}

let registry : experiment list ref = ref []
let register ~name ~doc run = registry := { ex_name = name; ex_doc = doc; ex_run = run } :: !registry
let all () = List.rev !registry

let scaled ~scale n = max 1 (int_of_float (float_of_int n *. scale))

(* --- JSON sink -------------------------------------------------------------

   With `--json DIR`, each experiment that calls [emit_json] drops a
   BENCH_<name>.json into DIR.  Experiments put only deterministic
   quantities there (logical work counters, page/row counts — never wall
   time), so scripts/bench_check.sh can diff them against checked-in
   baselines with a tight tolerance. *)

let json_dir : string option ref = ref None
let set_json_dir dir = json_dir := Some dir

let json_of_counters counters =
  Imdb_obs.Json.Obj (List.map (fun (k, v) -> (k, Imdb_obs.Json.Int v)) counters)

let emit_json ~name doc =
  match !json_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir ("BENCH_" ^ name ^ ".json") in
      let oc = open_out path in
      output_string oc (Imdb_obs.Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Fmt.pr "wrote %s@." path
