lib/core/meta.ml: Imdb_util Printf
