(* The span tracer: forest well-formedness under random nesting, exact
   ring-overflow accounting, the cheap-when-off guarantee (disabled runs
   leave the metrics exposition byte-identical and deterministic), slow-op
   promotion, sampling, Chrome export shape, and recovery spans across a
   crash. *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module M = Imdb_obs.Metrics
module Tr = Imdb_obs.Tracer
module J = Imdb_obs.Json

(* A tracer under a deterministic microsecond clock that advances [step]
   on every reading. *)
let fresh_tracer ?metrics ?capacity ?slow_capacity ?slow_threshold_us ?sampling
    ?(step = 7) () =
  let metrics = match metrics with Some m -> m | None -> M.create () in
  let tr =
    Tr.create ?capacity ?slow_capacity ?slow_threshold_us ?sampling ~metrics ()
  in
  let now = ref 0 in
  Tr.set_clock tr (fun () ->
      let v = !now in
      now := v + step;
      v);
  (tr, metrics)

(* --- property: random span forests are well-formed ------------------------- *)

(* A script of nested spans: each node opens a span, visits its children,
   and either returns or raises (the exception is caught at the node
   above — [with_span] must still close the span). *)
type tree = Node of bool (* raise on exit *) * tree list

let gen_tree =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let children = if n <= 0 then return [] else list_size (int_bound 3) (self (n / 2)) in
        map2 (fun raises cs -> Node (raises, cs)) bool children))

exception Scripted

let rec run_node tr depth (Node (raises, children)) =
  Tr.with_span tr (Printf.sprintf "d%d" depth) @@ fun _ ->
  List.iter
    (fun c -> try run_node tr (depth + 1) c with Scripted -> ())
    children;
  if raises then raise Scripted

let rec count_nodes (Node (_, cs)) =
  1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 cs

let prop_forest =
  QCheck.Test.make ~name:"span forest well-formed" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_bound 5) gen_tree))
  @@ fun forest ->
  let tr, metrics = fresh_tracer ~capacity:100_000 () in
  List.iter (fun t -> try run_node tr 0 t with Scripted -> ()) forest;
  let spans = Tr.spans tr in
  let total = List.fold_left (fun acc t -> acc + count_nodes t) 0 forest in
  if List.length spans <> total then
    QCheck.Test.fail_reportf "recorded %d spans for %d nodes"
      (List.length spans) total;
  if M.get metrics M.trace_spans <> total then
    QCheck.Test.fail_reportf "trace.spans counter %d <> %d"
      (M.get metrics M.trace_spans) total;
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if c.Tr.c_id <= 0 then QCheck.Test.fail_reportf "non-positive id";
      if Hashtbl.mem by_id c.Tr.c_id then
        QCheck.Test.fail_reportf "duplicate id %d" c.Tr.c_id;
      Hashtbl.add by_id c.Tr.c_id c)
    spans;
  List.iter
    (fun c ->
      if c.Tr.c_dur_us < 0 then QCheck.Test.fail_reportf "negative duration";
      if c.Tr.c_parent <> 0 then
        match Hashtbl.find_opt by_id c.Tr.c_parent with
        | None -> QCheck.Test.fail_reportf "dangling parent %d" c.Tr.c_parent
        | Some p ->
            (* parent opened first (smaller id, earlier start) and closed
               after the child: its interval contains the child's *)
            if p.Tr.c_id >= c.Tr.c_id then
              QCheck.Test.fail_reportf "parent id %d >= child id %d" p.Tr.c_id
                c.Tr.c_id;
            if p.Tr.c_start_us > c.Tr.c_start_us then
              QCheck.Test.fail_reportf "parent starts after child";
            if
              p.Tr.c_start_us + p.Tr.c_dur_us
              < c.Tr.c_start_us + c.Tr.c_dur_us
            then QCheck.Test.fail_reportf "child outlives parent")
    spans;
  true

(* --- ring overflow: exact drop accounting ----------------------------------- *)

let test_ring_overflow () =
  let capacity = 32 and n = 100 in
  let tr, metrics = fresh_tracer ~capacity () in
  for i = 1 to n do
    Tr.with_span tr "op" @@ fun sp -> Tr.add_attr sp "i" (string_of_int i)
  done;
  let spans = Tr.spans tr in
  Alcotest.(check int) "ring holds capacity" capacity (List.length spans);
  Alcotest.(check int) "dropped = overflow" (n - capacity) (Tr.dropped tr);
  Alcotest.(check int) "trace.dropped counter" (n - capacity)
    (M.get metrics M.trace_drops);
  Alcotest.(check int) "trace.spans counts all" n (M.get metrics M.trace_spans);
  (* the ring keeps the newest spans, oldest first *)
  let ids = List.map (fun c -> c.Tr.c_id) spans in
  Alcotest.(check (list int)) "newest survive"
    (List.init capacity (fun i -> n - capacity + 1 + i))
    ids;
  Tr.reset tr;
  Alcotest.(check int) "reset clears ring" 0 (List.length (Tr.spans tr));
  Alcotest.(check int) "reset clears drops" 0 (Tr.dropped tr)

(* --- sampling: every n-th root, children inherit ----------------------------- *)

let test_sampling () =
  let tr, _ = fresh_tracer ~sampling:3 () in
  for _ = 1 to 9 do
    Tr.with_span tr "root" @@ fun _ ->
    Tr.with_span tr "child" @@ fun _ -> ()
  done;
  let spans = Tr.spans tr in
  (* 3 of 9 roots sampled, each with its child: whole trees, never torn *)
  Alcotest.(check int) "3 trees of 2 spans" 6 (List.length spans);
  let roots = List.filter (fun c -> c.Tr.c_parent = 0) spans in
  Alcotest.(check int) "3 roots" 3 (List.length roots);
  List.iter
    (fun c ->
      if c.Tr.c_parent <> 0 then
        Alcotest.(check bool) "child's parent is a sampled root" true
          (List.exists (fun r -> r.Tr.c_id = c.Tr.c_parent) roots))
    spans

(* --- explicit parents (the cross-domain link) -------------------------------- *)

let test_explicit_parent () =
  let tr, _ = fresh_tracer () in
  let coord_id = ref 0 in
  (* simulate a worker that has no stack context linking back to the
     coordinator span by handle *)
  (Tr.with_span tr "coord" @@ fun coord ->
   coord_id := Tr.span_id coord;
   Tr.with_span tr ~parent:coord "worker" (fun _ -> ()));
  let worker = List.find (fun c -> c.Tr.c_name = "worker") (Tr.spans tr) in
  Alcotest.(check int) "worker parented to coordinator" !coord_id
    worker.Tr.c_parent

(* --- slow-op promotion -------------------------------------------------------- *)

let test_slow_ops () =
  (* clock step 7us and two reads per span => ~7us spans; threshold 1000us
     catches only the artificially long one *)
  let tr, metrics = fresh_tracer ~slow_threshold_us:1000 ~slow_capacity:4 () in
  for _ = 1 to 5 do
    Tr.with_span tr "fast" @@ fun _ -> ()
  done;
  (Tr.with_span tr "slow" @@ fun _ ->
   (* burn clock readings via instants *)
   for _ = 1 to 400 do
     Tr.instant tr "tick"
   done);
  let slow = Tr.slow_ops tr in
  Alcotest.(check int) "one slow op" 1 (List.length slow);
  Alcotest.(check string) "it is the slow span" "slow" (List.hd slow).Tr.c_name;
  Alcotest.(check bool) "duration over threshold" true
    ((List.hd slow).Tr.c_dur_us >= 1000);
  Alcotest.(check int) "trace.slow_ops counter" 1
    (M.get metrics M.trace_slow_ops)

(* --- disabled mode: zero observable footprint -------------------------------- *)

(* The same deterministic workload, parameterized only by config. *)
let run_workload config =
  let db, clock = fresh_db ~config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for v = 1 to 40 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.upsert_row db txn ~table:"t" (row (v mod 8) (Printf.sprintf "v%d" v))))
  done;
  tick clock;
  let ts = Imdb_clock.Clock.last_issued (Db.engine db).E.clock in
  Db.exec db (fun txn -> ignore (Db.scan_rows_as_of db txn ~table:"t" ~ts));
  Db.checkpoint db;
  let json = M.to_json_string (Db.metrics db) in
  let snap = M.snapshot (Db.metrics db) in
  Db.close db;
  (json, snap)

let test_disabled_deterministic () =
  let disabled = { E.default_config with E.trace_sampling = 0 } in
  let j1, _ = run_workload disabled in
  let j2, _ = run_workload disabled in
  Alcotest.(check string) "disabled runs byte-identical" j1 j2

let test_disabled_vs_enabled_counters () =
  let disabled = { E.default_config with E.trace_sampling = 0 } in
  let enabled = { E.default_config with E.trace_sampling = 1 } in
  let _, off = run_workload disabled in
  let _, on = run_workload enabled in
  let is_trace name =
    name = M.trace_spans || name = M.trace_drops || name = M.trace_slow_ops
  in
  let strip snap = List.filter (fun (n, _) -> not (is_trace n)) snap in
  (* tracing changes nothing the engine counts — only the trace.* counters *)
  Alcotest.(check (list (pair string int)))
    "non-trace counters identical" (strip off) (strip on);
  let on_trace = List.assoc M.trace_spans on in
  Alcotest.(check bool) "enabled run recorded spans" true (on_trace > 0);
  Alcotest.(check int) "disabled run recorded none" 0
    (try List.assoc M.trace_spans off with Not_found -> 0)

let test_null_tracer_is_free () =
  Alcotest.(check bool) "null disabled" false (Tr.enabled Tr.null);
  (* no spans, no state, usable from any context *)
  Tr.with_span Tr.null "x" @@ fun sp ->
  Tr.add_attr sp "k" "v";
  Alcotest.(check int) "null span id" 0 (Tr.span_id sp);
  Tr.instant Tr.null "i";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Tr.spans Tr.null))

(* --- recovery spans across a crash ------------------------------------------- *)

let test_recovery_spans () =
  let config = { E.default_config with E.trace_sampling = 1 } in
  let db, clock = fresh_db ~config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for v = 1 to 20 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.upsert_row db txn ~table:"t" (row v (Printf.sprintf "v%d" v))))
  done;
  (* leave a loser so undo has work *)
  let loser = Db.begin_txn db in
  Db.upsert_row db loser ~table:"t" (row 99 "loser");
  let db = Db.crash_and_reopen ~config ~clock db in
  let spans = Tr.spans (Db.tracer db) in
  let find name =
    match List.find_opt (fun c -> c.Tr.c_name = name) spans with
    | Some c -> c
    | None -> Alcotest.failf "missing %s span" name
  in
  let recovery = find "recovery" in
  Alcotest.(check int) "recovery is a root" 0 recovery.Tr.c_parent;
  List.iter
    (fun phase ->
      Alcotest.(check int)
        (phase ^ " nests under recovery")
        recovery.Tr.c_id (find phase).Tr.c_parent)
    [ "recovery.analysis"; "recovery.redo"; "recovery.undo" ];
  let redo = find "recovery.redo" in
  let attr k c =
    match List.assoc_opt k c.Tr.c_attrs with
    | Some v -> Int64.of_string v
    | None -> Alcotest.failf "missing attr %s" k
  in
  let redo_start = attr "redo_start" redo and redo_end = attr "redo_end" redo in
  Alcotest.(check bool) "redo progressed monotonically" true
    (Int64.compare redo_end redo_start >= 0);
  (* the LSN-progress gauge landed on the last applied LSN *)
  Alcotest.(check bool) "redo_lsn gauge reached redo_end" true
    (M.gauge (Db.metrics db) M.recovery_redo_lsn = Int64.to_int redo_end);
  (* the recovery-ending checkpoint nests under the recovery span *)
  let ckpt = find "checkpoint" in
  Alcotest.(check int) "checkpoint nests under recovery" recovery.Tr.c_id
    ckpt.Tr.c_parent;
  Db.close db

(* --- exports ------------------------------------------------------------------ *)

let obj_field name = function
  | J.Obj fields -> List.assoc_opt name fields
  | _ -> None

let test_chrome_export () =
  let tr, _ = fresh_tracer () in
  (Tr.with_span tr "outer" ~attrs:[ ("k", "v") ] @@ fun _ ->
   Tr.instant tr "mark";
   Tr.with_span tr "inner" @@ fun _ -> ());
  match obj_field "traceEvents" (Tr.to_chrome_json tr) with
  | Some (J.List events) ->
      Alcotest.(check int) "three events" 3 (List.length events);
      let phases =
        List.filter_map
          (fun e ->
            match (obj_field "name" e, obj_field "ph" e) with
            | Some (J.String n), Some (J.String ph) -> Some (n, ph)
            | _ -> None)
          events
      in
      Alcotest.(check bool) "spans are complete events" true
        (List.mem ("outer", "X") phases && List.mem ("inner", "X") phases);
      Alcotest.(check bool) "instants are i events" true
        (List.mem ("mark", "i") phases);
      List.iter
        (fun e ->
          List.iter
            (fun k ->
              Alcotest.(check bool)
                (k ^ " present") true
                (obj_field k e <> None))
            [ "ts"; "pid"; "tid"; "args" ])
        events
  | _ -> Alcotest.fail "no traceEvents list"

let test_native_export () =
  let tr, _ = fresh_tracer () in
  Tr.with_span tr "op" (fun _ -> ());
  let j = Tr.to_json tr in
  (match obj_field "spans" j with
  | Some (J.List [ span ]) ->
      Alcotest.(check bool) "span has name" true
        (obj_field "name" span = Some (J.String "op"))
  | _ -> Alcotest.fail "expected one span");
  match obj_field "dropped" j with
  | Some (J.Int 0) -> ()
  | _ -> Alcotest.fail "expected dropped = 0"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_forest;
    Alcotest.test_case "ring overflow accounting" `Quick test_ring_overflow;
    Alcotest.test_case "root sampling, whole trees" `Quick test_sampling;
    Alcotest.test_case "explicit parent link" `Quick test_explicit_parent;
    Alcotest.test_case "slow-op promotion" `Quick test_slow_ops;
    Alcotest.test_case "disabled runs deterministic" `Quick test_disabled_deterministic;
    Alcotest.test_case "tracing leaves counters unchanged" `Quick
      test_disabled_vs_enabled_counters;
    Alcotest.test_case "null tracer is inert" `Quick test_null_tracer_is_free;
    Alcotest.test_case "recovery spans across a crash" `Quick test_recovery_spans;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export;
    Alcotest.test_case "native export shape" `Quick test_native_export;
  ]
