lib/tstamp/ptt.ml: Bytes Imdb_btree Imdb_clock Imdb_util Option
