(* Hot-path experiment: the workloads the CLOCK eviction, cached key
   directories and WAL group commit target.

   - evict:  point reads over a working set much larger than a tiny
     buffer pool.  Reports wall time plus the counters that certify the
     behaviour: CLOCK sweep steps stay within a small constant of
     evictions (O(1) amortized, where the old policy scanned every frame
     per eviction), and the keydir hit/miss split shows search-hot pages
     being served by binary search.
   - commit: single-update transactions against a file-backed log, swept
     over the group-commit window.  window=1 is the classic
     one-sync-per-commit protocol — the "before" column — and wider
     windows amortize the sync across the batch.

   BENCH_hotpath.json carries only the deterministic logical counters
   (never wall time), so scripts/bench_check.sh can hold them to a tight
   tolerance. *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module M = Imdb_obs.Metrics
module S = Imdb_core.Schema

let schema =
  S.make
    [
      { S.col_name = "id"; col_type = S.T_int };
      { S.col_name = "val"; col_type = S.T_string };
    ]

let row i v = [ S.V_int i; S.V_string v ]

(* --- eviction-heavy --------------------------------------------------------

   Small pages and a 16-frame pool against thousands of rows: nearly every
   page touch is a miss, so the eviction policy dominates. *)

let evict_config =
  {
    E.default_config with
    E.page_size = 512;
    pool_capacity = 16;
    auto_checkpoint_every = 0;
  }

let evict_phase ~scale =
  let rows = Harness.scaled ~scale 8000 in
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_memory ~config:evict_config ~clock () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema;
  let elapsed, () =
    Harness.time_it (fun () ->
        for i = 0 to rows - 1 do
          Imdb_clock.Clock.advance clock 20L;
          Db.exec db (fun txn -> Db.insert_row db txn ~table:"t" (row i "xxxxxxxx"))
        done;
        (* strided point reads defeat the pool; the second pass re-reads
           the same pages while they are search-hot *)
        for _pass = 1 to 2 do
          let i = ref 0 in
          for _ = 0 to rows - 1 do
            Db.exec db (fun txn ->
                ignore (Db.get_row db txn ~table:"t" ~key:(S.V_int !i)));
            i := (!i + 7) mod rows
          done
        done)
  in
  let m = Db.metrics db in
  let g = M.get m in
  let counters =
    [
      ("rows", rows);
      ("evictions", g M.buf_evictions);
      ("clock_sweeps", g M.buf_clock_sweeps);
      ("keydir_hits", g M.keydir_hits);
      ("keydir_misses", g M.keydir_misses);
      ("disk_reads", g M.disk_reads);
      ("disk_writes", g M.disk_writes);
    ]
  in
  Db.close db;
  (elapsed, counters)

(* --- commit-heavy ----------------------------------------------------------

   A file-backed log makes each sync a real system call, so sharing it is
   the measurable effect. *)

let commit_phase ~scale ~window =
  let txns = Harness.scaled ~scale 2000 in
  let path = Filename.temp_file "imdb_hotpath" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let config =
        {
          E.default_config with
          E.group_commit_window = window;
          auto_checkpoint_every = 0;
        }
      in
      let clock = Imdb_clock.Clock.create_logical () in
      let disk = Imdb_storage.Disk.in_memory ~page_size:config.E.page_size () in
      let db =
        Db.open_devices ~config ~clock ~disk
          ~log_device:(Imdb_wal.Wal.Device.file ~path) ()
      in
      Db.create_table db ~name:"t" ~mode:Db.Conventional ~schema;
      Db.exec db (fun txn -> Db.insert_row db txn ~table:"t" (row 0 "y"));
      let elapsed, () =
        Harness.time_it (fun () ->
            for _ = 1 to txns do
              Imdb_clock.Clock.advance clock 20L;
              Db.exec db (fun txn -> Db.update_row db txn ~table:"t" (row 0 "y"))
            done)
      in
      (* drain the open batch so the counters cover every commit *)
      Db.checkpoint db;
      let m = Db.metrics db in
      let flushes = M.get m M.log_flushes in
      let batches, batched =
        match M.histogram m M.h_group_commit_batch with
        | Some h -> (h.M.h_count, h.M.h_sum)
        | None -> (0, 0)
      in
      Db.close db;
      (elapsed, txns, flushes, batches, batched))

let windows = [ 1; 4; 16 ]

let run ~scale =
  let evict_s, evict_counters = evict_phase ~scale in
  let lookup name = List.assoc name evict_counters in
  let ratio a b = if b = 0 then "n/a" else Fmt.str "%.2f" (float_of_int a /. float_of_int b) in
  Harness.print_table ~title:"hotpath: eviction-heavy (16-frame pool, 512B pages)"
    ~header:[ "metric"; "value" ]
    ([ [ "wall ms"; Harness.ms evict_s ] ]
    @ List.map (fun (k, v) -> [ k; string_of_int v ]) evict_counters
    @ [
        [ "sweeps/eviction"; ratio (lookup "clock_sweeps") (lookup "evictions") ];
        [
          "keydir hit rate";
          ratio (lookup "keydir_hits")
            (lookup "keydir_hits" + lookup "keydir_misses");
        ];
      ]);
  let commit_results =
    List.map (fun window -> (window, commit_phase ~scale ~window)) windows
  in
  let base_s =
    match commit_results with (_, (s, _, _, _, _)) :: _ -> s | [] -> 0.0
  in
  Harness.print_table
    ~title:"hotpath: commit-heavy (file-backed log; window=1 is the old protocol)"
    ~header:
      [ "window"; "wall ms"; "vs window=1"; "log syncs"; "commits/sync"; "avg batch" ]
    (List.map
       (fun (window, (s, txns, flushes, batches, batched)) ->
         [
           string_of_int window;
           Harness.ms s;
           Harness.pct s base_s;
           string_of_int flushes;
           ratio txns flushes;
           ratio batched batches;
         ])
       commit_results);
  let module J = Imdb_obs.Json in
  Harness.emit_json ~name:"hotpath"
    (J.Obj
       [
         ("schema_version", J.Int M.schema_version);
         ("evict", Harness.json_of_counters evict_counters);
         ( "commit",
           J.List
             (List.map
                (fun (window, (_, txns, flushes, batches, batched)) ->
                  J.Obj
                    [
                      ("window", J.Int window);
                      ("txns", J.Int txns);
                      ("log_flushes", J.Int flushes);
                      ("batches", J.Int batches);
                      ("batched_commits", J.Int batched);
                    ])
                commit_results) );
       ])

let () =
  Harness.register ~name:"hotpath"
    ~doc:"CLOCK eviction, keydir cache & group commit hot paths" run
