(** Crash recovery: ARIES-style analysis, redo, undo.

    Analysis reconstructs the active-transaction and dirty-page tables
    from the last checkpoint (found through the force-written meta page)
    and rebuilds the volatile commit-timestamp cache from Commit records;
    redo replays page operations gated by page LSN; undo rolls losers
    back with the guarded logical undo of {!Txnmgr}.  Lazy timestamping
    is invisible to redo — stamping was never logged, and committed
    versions may legitimately come back from disk still carrying TIDs, to
    be resolved through the PTT on first access. *)

val recover : Engine.t -> unit
(** Run the full open-time protocol, ending with a fresh checkpoint. *)

(**/**)

type txn_status = St_running | St_committed | St_aborting

type analysis = {
  mutable att : (Imdb_clock.Tid.t * (int64 * txn_status)) list;
  mutable dpt : (int * int64) list;
  mutable max_tid : Imdb_clock.Tid.t;
  mutable max_ts : Imdb_clock.Timestamp.t;
  mutable commits : (Imdb_clock.Tid.t * Imdb_clock.Timestamp.t) list;
}

val analyze : Engine.t -> checkpoint_lsn:int64 -> analysis

val redo : Engine.t -> analysis -> checkpoint_lsn:int64 -> int64 * int64
(** Returns (redo_start, last applied LSN); tracks progress in the
    [recovery.redo_lsn] gauge. *)

val read_meta_from_disk : Engine.t -> Meta.t option
