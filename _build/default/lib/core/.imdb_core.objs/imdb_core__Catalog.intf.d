lib/core/catalog.mli: Format Imdb_btree Schema
