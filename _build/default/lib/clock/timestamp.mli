(** Transaction timestamps.

    Following the paper (Section 2.1), a timestamp concatenates an 8-byte
    clock time [ttime] — milliseconds since the Unix epoch, quantized to
    the 20 ms resolution of the SQL date/time type — with a 4-byte
    sequence number [sn] distinguishing up to 2^32 transactions inside one
    quantum.  Ordering is lexicographic on (ttime, sn) and, because
    timestamps are issued at commit by a monotonic clock, agrees with
    transaction serialization order. *)

type t

val quantum_ms : int64
(** The clock resolution: 20 ms. *)

val on_disk_size : int
(** Serialized size: 12 bytes (8 + 4). *)

val make : ttime:int64 -> sn:int -> t
(** @raise Invalid_argument if [sn] exceeds 32 bits or [ttime] < 0. *)

val ttime : t -> int64
val sn : t -> int

val zero : t
(** Below every real timestamp (the dawn of time). *)

val infinity : t
(** Above every real timestamp: the open end time of a live version. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val succ : t -> t
(** The next representable timestamp (sequence-number increment, rolling
    into the next quantum on overflow). *)

val quantize : int64 -> int64
(** Round milliseconds down to the 20 ms quantum. *)

(** Comparison operators for local opens. *)
module Infix : sig
  val ( <= ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( = ) : t -> t -> bool
end

(** {1 Serialization} *)

val write : bytes -> int -> t -> unit
val read : bytes -> int -> t

(** {1 Datetime formatting}

    ["YYYY-MM-DD HH:MM:SS.mmm+sn"] in UTC — the representation the AS OF
    clause parses, "a user sensible time representation". *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Parse ["YYYY-MM-DD[ HH:MM[:SS[.mmm]][+sn]]"].
    @raise Failure on malformed input. *)

(**/**)

val days_from_civil : y:int -> m:int -> d:int -> int
val civil_from_days : int -> int * int * int
val ms_of_datetime : y:int -> mo:int -> d:int -> h:int -> mi:int -> s:int -> ms:int -> int64
val datetime_of_ms : int64 -> int * int * int * int * int * int * int
