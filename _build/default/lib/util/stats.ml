(* Global named counters.

   The paper's performance arguments are about work done on the commit
   path, extra I/O for timestamp-table maintenance, and page accesses for
   AS OF queries.  Wall-clock numbers are noisy on shared machines, so the
   benches additionally report these deterministic counters.  Counters are
   registered lazily by name; [snapshot]/[diff] let a bench bracket a
   workload. *)

type snapshot = (string * int) list

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add counters name r;
      r

let incr ?(by = 1) name =
  let r = counter name in
  r := !r + by

let get name = match Hashtbl.find_opt counters name with Some r -> !r | None -> 0
let reset_all () = Hashtbl.iter (fun _ r -> r := 0) counters

let snapshot () : snapshot =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters []
  |> List.sort compare

let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (-v)) before;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some d -> Hashtbl.replace tbl k (d + v)
      | None -> Hashtbl.replace tbl k v)
    after;
  Hashtbl.fold (fun k v acc -> if v <> 0 then (k, v) :: acc else acc) tbl []
  |> List.sort compare

let pp_snapshot ppf (s : snapshot) =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-28s %d@." k v) s

(* Canonical counter names used across the engine, collected here so that
   producers and consumers cannot drift apart. *)
let disk_reads = "disk.reads"
let disk_writes = "disk.writes"
let log_appends = "log.appends"
let log_bytes = "log.bytes"
let log_flushes = "log.flushes"
let buf_hits = "buffer.hits"
let buf_misses = "buffer.misses"
let buf_evictions = "buffer.evictions"
let pages_allocated = "pages.allocated"
let stamps_applied = "tstamp.applied"
let ptt_inserts = "ptt.inserts"
let ptt_deletes = "ptt.deletes"
let ptt_lookups = "ptt.lookups"
let vtt_hits = "vtt.hits"
let time_splits = "split.time"
let key_splits = "split.key"
let asof_pages = "asof.pages_visited"
let asof_versions = "asof.versions_visited"
let txn_commits = "txn.commits"
let txn_aborts = "txn.aborts"
