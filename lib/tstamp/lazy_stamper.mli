(** Lazy timestamping: the four-stage protocol of paper Section 2.2,
    tying VTT and PTT together.

    Resolution during normal access may fault PTT entries into the VTT;
    the buffer pool's pre-flush hook uses the volatile-only variant (a
    PTT lookup there could recurse into eviction, and skipping a miss is
    always safe: the PTT entry cannot be collected while the version's
    refcount is positive).  No stamping is ever logged — durability is
    the garbage-collection rule's job. *)

type t

val create : ?metrics:Imdb_obs.Metrics.t -> unit -> t
val set_metrics : t -> Imdb_obs.Metrics.t -> unit

val set_tracer : t -> Imdb_obs.Tracer.t -> unit
(** Spans: {!garbage_collect} records a "ptt.gc" span
    (candidates/persistent attrs) that nests under the checkpoint that
    triggered it. *)

val set_ptt : t -> Ptt.t -> unit
val set_end_of_log : t -> (unit -> int64) -> unit

val set_flushed_lsn : t -> (unit -> int64) -> unit
(** Durable log horizon.  Flush-time stamping only stamps commits whose
    commit record is at or below it: stamps are unlogged and do not move
    the page LSN, so stamping a not-yet-durable commit would let a crash
    lose the commit record while the stamped page survives — a phantom
    committed version that guarded undo cannot remove. *)

val set_force_log : t -> (unit -> unit) -> unit
(** Flush the log tail.  Normal-access stamping calls this before
    stamping a commit above the durable horizon (see
    {!resolve_for_stamping}); the engine wires it to [Wal.flush]. *)

val vtt : t -> Vtt.t

val resolve : t -> Imdb_clock.Tid.t -> Imdb_version.Vpage.resolution
(** VTT, then PTT (caching the hit in the VTT with undefined refcount). *)

val resolve_volatile_only : t -> Imdb_clock.Tid.t -> Imdb_version.Vpage.resolution
(** VTT only, durably-committed only — for the pre-flush hook. *)

val resolve_for_stamping : t -> Imdb_clock.Tid.t -> Imdb_version.Vpage.resolution
(** Like {!resolve}, but forces the log before answering [Committed] for
    a commit whose commit record is not yet durable — the access-path
    stamping gate.  Stamping an unforced commit would let a crash keep
    the stamped page while losing the commit record, leaving a phantom
    committed version that recovery's guarded undo cannot remove. *)

val on_stamp : t -> Imdb_clock.Tid.t -> unit
(** Reference-count bookkeeping for each version stamped. *)

val stamp_page : t -> bytes -> int
(** Stamp every committed version in the page (full resolution). *)

val stamp_page_volatile : t -> bytes -> int
(** The pre-flush variant. *)

val garbage_collect : t -> redo_scan_start:int64 -> Imdb_clock.Tid.t list
(** Incremental PTT GC, run after each checkpoint: delete every mapping
    whose stamping is provably durable, in one batched PTT pass
    ({!Ptt.delete_batch}); records the drain size in [ptt.gc_batch].
    Returns the collected TIDs. *)
