(** Transaction identifiers.

    TIDs are assigned in ascending order at transaction begin.  A record
    version not yet timestamped carries its transaction's TID in the
    8-byte Ttime field of its versioning tail, flagged by the high bit —
    a clock time (ms since 1970) never reaches 2^63, so the two are
    unambiguous. *)

type t

val invalid : t
val first : t
val next : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_int64 : t -> int64
val of_int64 : int64 -> t
val of_int : int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** What an 8-byte Ttime field holds. *)
type ttime_field =
  | Stamped of int64  (** a committed version's clock time *)
  | Unstamped of t  (** the updating transaction's TID; stamping pending *)

val encode_ttime_field : ttime_field -> int64
val decode_ttime_field : int64 -> ttime_field

(** Hash tables keyed by TID (the VTT, the active-transaction table). *)
module Table : Hashtbl.S with type key = t
