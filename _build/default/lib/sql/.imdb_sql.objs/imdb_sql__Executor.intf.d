lib/sql/executor.mli: Ast Format Imdb_clock Imdb_core
