lib/util/checksum.mli:
