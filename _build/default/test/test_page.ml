(* Slotted pages: header fields, cell operations, compaction, and a
   model-based property over random operation sequences. *)

module P = Imdb_storage.Page
module Ts = Imdb_clock.Timestamp

let fresh ?(size = 8192) () =
  let b = Bytes.make size '\000' in
  P.format b ~page_id:7 ~page_type:P.P_data ~table_id:3 ~level:0 ();
  b

let test_header_fields () =
  let b = fresh () in
  Alcotest.(check int) "page id" 7 (P.page_id b);
  Alcotest.(check bool) "type" true (P.page_type b = P.P_data);
  Alcotest.(check int) "table id" 3 (P.table_id b);
  Alcotest.(check int) "slots" 0 (P.slot_count b);
  P.set_lsn b 42L;
  Alcotest.(check int64) "lsn" 42L (P.lsn b);
  P.set_history_pointer b 99;
  Alcotest.(check int) "history ptr" 99 (P.history_pointer b);
  let ts = Ts.make ~ttime:1000L ~sn:3 in
  P.set_split_time b ts;
  Alcotest.(check bool) "split time" true (Ts.equal ts (P.split_time b));
  P.set_next_page b 11;
  P.set_prev_page b 12;
  Alcotest.(check int) "next" 11 (P.next_page b);
  Alcotest.(check int) "prev" 12 (P.prev_page b)

let test_insert_read_delete () =
  let b = fresh () in
  let s0 = P.insert b (Bytes.of_string "alpha") in
  let s1 = P.insert b (Bytes.of_string "beta") in
  Alcotest.(check int) "slots assigned in order" 0 s0;
  Alcotest.(check int) "second slot" 1 s1;
  Alcotest.(check string) "read back" "alpha" (Bytes.to_string (P.read_cell b s0));
  Alcotest.(check int) "live count" 2 (P.live_count b);
  P.delete_slot b s0;
  Alcotest.(check bool) "slot dead" false (P.slot_live b s0);
  Alcotest.(check int) "live count after delete" 1 (P.live_count b);
  (* dead slot is reused first *)
  let s2 = P.insert b (Bytes.of_string "gamma") in
  Alcotest.(check int) "dead slot reused" s0 s2;
  Alcotest.(check string) "reused content" "gamma" (Bytes.to_string (P.read_cell b s2))

let test_patch_and_part () =
  let b = fresh () in
  let s = P.insert b (Bytes.of_string "hello world") in
  P.patch_cell b s ~at:6 ~src:(Bytes.of_string "WORLD");
  Alcotest.(check string) "patched" "hello WORLD" (Bytes.to_string (P.read_cell b s));
  Alcotest.(check string) "partial read" "WORLD"
    (Bytes.to_string (P.read_cell_part b s ~at:6 ~len:5));
  (match P.patch_cell b s ~at:8 ~src:(Bytes.of_string "TOOLONG") with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "patch out of bounds accepted")

let test_fill_and_fits () =
  let b = fresh ~size:512 () in
  let body = Bytes.make 60 'x' in
  let inserted = ref 0 in
  while P.fits b (Bytes.length body) do
    ignore (P.insert b body);
    incr inserted
  done;
  Alcotest.(check bool) "page filled" true (!inserted >= 6);
  (match P.insert b body with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "insert into full page accepted");
  (* deleting makes room again (reclaimed via compaction) *)
  P.delete_slot b 0;
  Alcotest.(check bool) "space after delete" true (P.fits b (Bytes.length body))

let test_compaction_preserves () =
  let b = fresh ~size:1024 () in
  let cells = List.init 8 (fun i -> Bytes.of_string (Printf.sprintf "cell-%d-%s" i (String.make i 'y'))) in
  let slots = List.map (fun c -> P.insert b c) cells in
  (* delete every other cell, then force compaction *)
  List.iteri (fun i s -> if i mod 2 = 0 then P.delete_slot b s) slots;
  P.compact b;
  Alcotest.(check int) "garbage zero" 0 (P.garbage b);
  List.iteri
    (fun i s ->
      if i mod 2 = 1 then
        Alcotest.(check string)
          (Printf.sprintf "cell %d intact" i)
          (Bytes.to_string (List.nth cells i))
          (Bytes.to_string (P.read_cell b s)))
    slots

let test_reserve_slots () =
  let b = fresh () in
  P.reserve_slots b 5;
  Alcotest.(check int) "slot count" 5 (P.slot_count b);
  Alcotest.(check int) "all dead" 0 (P.live_count b);
  P.insert_at_slot b 3 (Bytes.of_string "x");
  Alcotest.(check bool) "slot 3 live" true (P.slot_live b 3);
  Alcotest.(check bool) "slot 0 dead" false (P.slot_live b 0)

let test_seal_verify () =
  let b = fresh () in
  ignore (P.insert b (Bytes.of_string "data"));
  P.seal b;
  Alcotest.(check bool) "verifies" true (P.verify b);
  Bytes.set b 100 'z';
  Alcotest.(check bool) "corruption detected" false (P.verify b)

(* Model-based property: a random sequence of inserts/deletes/patches
   matches a simple association model, and accounting invariants hold. *)
let prop_page_model =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 120)
        (frequency
           [
             (6, map (fun n -> `Insert (n mod 50)) nat);
             (3, map (fun n -> `Delete n) nat);
             (2, map2 (fun a b -> `Patch (a, b)) nat nat);
           ]))
  in
  QCheck.Test.make ~name:"page ops vs model" ~count:100 (QCheck.make gen)
    (fun ops ->
      let b = fresh ~size:2048 () in
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let counter = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Insert extra ->
              incr counter;
              let body = Printf.sprintf "body%d-%s" !counter (String.make extra 'p') in
              if P.fits b (String.length body) then begin
                let slot = P.insert b (Bytes.of_string body) in
                Hashtbl.replace model slot body
              end
          | `Delete n ->
              let live = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
              if live <> [] then begin
                let slot = List.nth (List.sort compare live) (n mod List.length live) in
                P.delete_slot b slot;
                Hashtbl.remove model slot
              end
          | `Patch (n, _) ->
              let live = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
              if live <> [] then begin
                let slot = List.nth (List.sort compare live) (n mod List.length live) in
                let body = Hashtbl.find model slot in
                if String.length body > 0 then begin
                  let patched = "Q" ^ String.sub body 1 (String.length body - 1) in
                  P.patch_cell b slot ~at:0 ~src:(Bytes.of_string "Q");
                  Hashtbl.replace model slot patched
                end
              end)
        ops;
      (* every model entry matches the page *)
      Hashtbl.iter
        (fun slot body ->
          if Bytes.to_string (P.read_cell b slot) <> body then
            QCheck.Test.fail_reportf "slot %d mismatch" slot)
        model;
      (* live count agrees *)
      if P.live_count b <> Hashtbl.length model then
        QCheck.Test.fail_reportf "live count %d vs model %d" (P.live_count b)
          (Hashtbl.length model);
      (* compaction preserves everything *)
      P.compact b;
      Hashtbl.iter
        (fun slot body ->
          if Bytes.to_string (P.read_cell b slot) <> body then
            QCheck.Test.fail_reportf "slot %d mismatch after compaction" slot)
        model;
      true)

let suite =
  [
    Alcotest.test_case "header fields" `Quick test_header_fields;
    Alcotest.test_case "insert/read/delete" `Quick test_insert_read_delete;
    Alcotest.test_case "patch & partial read" `Quick test_patch_and_part;
    Alcotest.test_case "fill & fits" `Quick test_fill_and_fits;
    Alcotest.test_case "compaction preserves" `Quick test_compaction_preserves;
    Alcotest.test_case "reserve slots" `Quick test_reserve_slots;
    Alcotest.test_case "seal & verify" `Quick test_seal_verify;
    QCheck_alcotest.to_alcotest prop_page_model;
  ]
