(* SQL execution over the Db API.

   A [session] holds at most one open transaction, as in the paper's
   examples:

   {v
     Begin Tran AS OF "8/12/2004 10:15:20"
     SELECT * FROM MovingObjects WHERE Oid < 10
     Commit Tran
   v}

   Statements outside an explicit transaction autocommit.  Point
   operations on the primary key use the key access path; other WHERE
   clauses filter a scan. *)

open Ast
module Db = Imdb_core.Db
module Schema = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp

exception Exec_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

type result =
  | R_ok of string
  | R_rows of { header : string list; rows : Schema.value list list }
  | R_history of (Ts.t * Schema.value list option) list

type session = {
  db : Db.t;
  dbs : Db.Session.t;  (* transactions run on this, so each SQL session
                          shows up with its own id in [SESSIONS] *)
  mutable txn : Db.txn option;
  mutable isolation : Db.isolation;
}

let make_session db =
  { db; dbs = Db.session db; txn = None; isolation = Db.Serializable }

(* --- value & condition plumbing ---------------------------------------- *)

let value_of_literal schema_ty lit =
  match (schema_ty, lit) with
  | Schema.T_int, L_int i -> Schema.V_int i
  | Schema.T_float, L_float f -> Schema.V_float f
  | Schema.T_float, L_int i -> Schema.V_float (float_of_int i)
  | Schema.T_string, L_string s -> Schema.V_string s
  | Schema.T_bool, L_bool b -> Schema.V_bool b
  | ty, lit -> fail "literal %a does not fit column type %s" pp_literal lit (Schema.type_name ty)

let untyped_value = function
  | L_int i -> Schema.V_int i
  | L_float f -> Schema.V_float f
  | L_string s -> Schema.V_string s
  | L_bool b -> Schema.V_bool b
  | L_null -> fail "NULL is not supported here"

let rec eval_condition schema row = function
  | C_true -> true
  | C_and (a, b) -> eval_condition schema row a && eval_condition schema row b
  | C_or (a, b) -> eval_condition schema row a || eval_condition schema row b
  | C_not c -> not (eval_condition schema row c)
  | C_compare (col, op, lit) -> (
      match Schema.column_index schema col with
      | None -> fail "unknown column %s" col
      | Some i -> (
          match lit with
          | L_null -> false
          | _ ->
              let v = List.nth row i in
              let w = untyped_value lit in
              let c =
                try Schema.compare_values v w
                with Schema.Type_error _ ->
                  fail "type mismatch comparing column %s" col
              in
              (match op with
              | Eq -> c = 0
              | Neq -> c <> 0
              | Lt -> c < 0
              | Le -> c <= 0
              | Gt -> c > 0
              | Ge -> c >= 0)))

(* A key-equality conjunct enables the point access path. *)
let rec key_equality schema cond =
  let key_col = (Schema.key_column schema).Schema.col_name in
  match cond with
  | C_compare (col, Eq, lit) when String.equal col key_col ->
      Some (value_of_literal (Schema.key_column schema).Schema.col_type lit)
  | C_and (a, b) -> (
      match key_equality schema a with Some v -> Some v | None -> key_equality schema b)
  | _ -> None

(* Key-range conjuncts enable the range access path: the paper's own
   example query is [WHERE Oid < 10].  Bounds are on the order-preserving
   encoded key; inclusive bounds become exclusive ones by appending a NUL
   (the smallest strictly-greater string). *)
let key_range schema cond =
  let key_col = (Schema.key_column schema).Schema.col_name in
  let key_ty = (Schema.key_column schema).Schema.col_type in
  let just_above v = Schema.encode_key v ^ "\x00" in
  let merge_lo a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (if String.compare a b >= 0 then a else b)
  in
  let merge_hi a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (if String.compare a b <= 0 then a else b)
  in
  let rec go = function
    | C_compare (col, op, lit) when String.equal col key_col -> (
        match op with
        | Lt -> (None, Some (Schema.encode_key (value_of_literal key_ty lit)))
        | Le -> (None, Some (just_above (value_of_literal key_ty lit)))
        | Gt -> (Some (just_above (value_of_literal key_ty lit)), None)
        | Ge -> (Some (Schema.encode_key (value_of_literal key_ty lit)), None)
        | Eq | Neq -> (None, None))
    | C_and (a, b) ->
        let la, ha = go a and lb, hb = go b in
        (merge_lo la lb, merge_hi ha hb)
    | _ -> (None, None)
  in
  go cond

(* --- transaction plumbing ----------------------------------------------- *)

let in_txn session f =
  match session.txn with
  | Some txn -> f txn
  | None -> Db.Session.with_txn ~isolation:session.isolation session.dbs f

(* --- statement execution -------------------------------------------------- *)

let schema_of_defs columns =
  (match columns with
  | [] -> fail "a table needs at least one column"
  | first :: rest ->
      if not first.cd_primary && List.exists (fun c -> c.cd_primary) rest then
        fail "PRIMARY KEY must be the first column"
      );
  Schema.make
    (List.map
       (fun cd ->
         match Schema.type_of_name cd.cd_type with
         | Some ty -> { Schema.col_name = cd.cd_name; col_type = ty }
         | None -> fail "unknown type %s" cd.cd_type)
       columns)

let header_of schema = List.map (fun c -> c.Schema.col_name) (Schema.columns schema)

let project schema columns row =
  match columns with
  | None -> row
  | Some cols ->
      List.map
        (fun c ->
          match Schema.column_index schema c with
          | Some i -> List.nth row i
          | None -> fail "unknown column %s" c)
        cols

let typed_row schema literals =
  let cols = Schema.columns schema in
  if List.length cols <> List.length literals then
    fail "expected %d values, got %d" (List.length cols) (List.length literals);
  List.map2 (fun c lit -> value_of_literal c.Schema.col_type lit) cols literals

let exec session stmt =
  match stmt with
  | Create_table { kind; name; columns } ->
      let mode =
        match kind with
        | K_immortal -> Db.Immortal
        | K_snapshot -> Db.Snapshot_table
        | K_conventional -> Db.Conventional
      in
      let schema = schema_of_defs columns in
      Db.create_table session.db ~name ~mode ~schema;
      R_ok (Printf.sprintf "table %s created" name)
  | Alter_enable_snapshot name -> (
      match Db.enable_snapshot session.db ~table:name with
      | n -> R_ok (Printf.sprintf "table %s: snapshot versioning enabled (%d rows)" name n)
      | exception Db.No_such_table _ -> fail "no such table %s" name
      | exception Invalid_argument m -> fail "%s" m)
  | Drop_table name ->
      if Db.drop_table session.db name then R_ok (Printf.sprintf "table %s dropped" name)
      else fail "no such table %s" name
  | Insert { table; values } ->
      let ti = Db.table_info session.db table in
      let row = typed_row ti.Imdb_core.Catalog.ti_schema values in
      in_txn session (fun txn -> Db.insert_row session.db txn ~table row);
      R_ok "1 row inserted"
  | Update { table; assignments; where } ->
      let ti = Db.table_info session.db table in
      let schema = ti.Imdb_core.Catalog.ti_schema in
      let apply row =
        List.mapi
          (fun i v ->
            let c = List.nth (Schema.columns schema) i in
            match List.assoc_opt c.Schema.col_name assignments with
            | Some lit -> value_of_literal c.Schema.col_type lit
            | None -> v)
          row
      in
      List.iter
        (fun (col, _) ->
          if Schema.column_index schema col = None then fail "unknown column %s" col;
          if String.equal col (Schema.key_column schema).Schema.col_name then
            fail "cannot update the primary key")
        assignments;
      let count =
        in_txn session (fun txn ->
            match key_equality schema where with
            | Some key -> (
                match Db.get_row session.db txn ~table ~key with
                | Some row when eval_condition schema row where ->
                    Db.update_row session.db txn ~table (apply row);
                    1
                | Some _ | None -> 0)
            | None ->
                let victims =
                  List.filter (fun r -> eval_condition schema r where)
                    (Db.scan_rows session.db txn ~table)
                in
                List.iter (fun r -> Db.update_row session.db txn ~table (apply r)) victims;
                List.length victims)
      in
      R_ok (Printf.sprintf "%d row(s) updated" count)
  | Delete { table; where } ->
      let ti = Db.table_info session.db table in
      let schema = ti.Imdb_core.Catalog.ti_schema in
      let count =
        in_txn session (fun txn ->
            match key_equality schema where with
            | Some key -> (
                match Db.get_row session.db txn ~table ~key with
                | Some row when eval_condition schema row where ->
                    Db.delete_row session.db txn ~table ~key;
                    1
                | Some _ | None -> 0)
            | None ->
                let victims =
                  List.filter (fun r -> eval_condition schema r where)
                    (Db.scan_rows session.db txn ~table)
                in
                List.iter
                  (fun r -> Db.delete_row session.db txn ~table ~key:(List.hd r))
                  victims;
                List.length victims)
      in
      R_ok (Printf.sprintf "%d row(s) deleted" count)
  | Select { columns; table; where } ->
      let ti = Db.table_info session.db table in
      let schema = ti.Imdb_core.Catalog.ti_schema in
      let rows =
        in_txn session (fun txn ->
            let all =
              match key_equality schema where with
              | Some key -> (
                  match Db.get_row session.db txn ~table ~key with
                  | Some r -> [ r ]
                  | None -> [])
              | None ->
                  (* the scan dispatches on the transaction's isolation
                     (current / snapshot / AS OF); key-range conjuncts
                     bound it to the relevant pages *)
                  let lo, hi = key_range schema where in
                  Db.scan_rows ?lo ?hi session.db txn ~table
            in
            List.filter (fun r -> eval_condition schema r where) all)
      in
      let header =
        match columns with None -> header_of schema | Some cols -> cols
      in
      R_rows { header; rows = List.map (project schema columns) rows }
  | Select_history { table; key } ->
      let hist =
        in_txn session (fun txn ->
            Db.history_rows session.db txn ~table ~key:(untyped_value key))
      in
      R_history hist
  | Begin_tran { as_of } ->
      if session.txn <> None then fail "transaction already open";
      let isolation =
        match as_of with
        | Some s -> Db.As_of (Ts.of_string s)
        | None -> session.isolation
      in
      session.txn <- Some (Db.Session.begin_txn ~isolation session.dbs);
      R_ok "transaction started"
  | Commit_tran -> (
      match session.txn with
      | None -> fail "no open transaction"
      | Some txn ->
          session.txn <- None;
          let ts = Db.Session.commit session.dbs txn in
          R_ok
            (match ts with
            | Some ts -> Printf.sprintf "committed at %s" (Ts.to_string ts)
            | None -> "committed (read-only)"))
  | Rollback_tran -> (
      match session.txn with
      | None -> fail "no open transaction"
      | Some txn ->
          session.txn <- None;
          Db.Session.abort session.dbs txn;
          R_ok "rolled back")
  | Set_isolation `Serializable ->
      session.isolation <- Db.Serializable;
      R_ok "isolation: serializable"
  | Set_isolation `Snapshot ->
      session.isolation <- Db.Snapshot_isolation;
      R_ok "isolation: snapshot"
  | Checkpoint_stmt ->
      Db.checkpoint session.db;
      R_ok "checkpoint complete"
  | Metrics_stmt ->
      R_ok (Imdb_obs.Metrics.to_json_string (Db.metrics session.db))
  | Trace_stmt -> R_ok (Imdb_obs.Tracer.to_json_string (Db.tracer session.db))
  | Sessions_stmt -> R_ok (Imdb_obs.Json.to_string (Db.sessions_json session.db))
  | Locks_stmt -> R_ok (Imdb_obs.Json.to_string (Db.locks_json session.db))

let exec_string session src =
  List.map (fun stmt -> exec session stmt) (Parser.parse_script src)

(* --- result rendering ------------------------------------------------------ *)

let pp_result ppf = function
  | R_ok msg -> Fmt.pf ppf "%s" msg
  | R_rows { header; rows } ->
      Fmt.pf ppf "%s@." (String.concat " | " header);
      List.iter
        (fun row ->
          Fmt.pf ppf "%s@."
            (String.concat " | " (List.map (Fmt.str "%a" Schema.pp_value) row)))
        rows;
      Fmt.pf ppf "(%d rows)" (List.length rows)
  | R_history entries ->
      List.iter
        (fun (ts, row) ->
          match row with
          | None -> Fmt.pf ppf "%a  DELETED@." Ts.pp ts
          | Some r ->
              Fmt.pf ppf "%a  %s@." Ts.pp ts
                (String.concat " | " (List.map (Fmt.str "%a" Schema.pp_value) r)))
        entries;
      Fmt.pf ppf "(%d versions)" (List.length entries)
