(* Per-engine metrics registry.

   Counters and histograms are plain hashtables guarded by an [enabled]
   flag so the shared [null] registry costs one branch per record.  The
   histogram uses fixed power-of-two bucket bounds; percentile estimation
   walks cumulative bucket counts, so for a given observation multiset the
   result is a pure function — deterministic under the logical clock.

   The registry is domain-safe: every mutation and read of the hashtables
   runs under one internal mutex, because the parallel scan path lets
   worker domains record work (disk reads, visit counters) concurrently
   with the coordinator.  The [null] registry short-circuits on [on]
   before touching the lock, so disabled recording stays one branch. *)

type hist = {
  mutable hc_count : int;
  mutable hc_sum : int;
  mutable hc_max : int;
  buckets : int array;
}

type phase = Span_begin | Span_end | Instant

type event = {
  ev_seq : int;
  ev_name : string;
  ev_phase : phase;
  ev_attrs : (string * string) list;
}

let default_trace_capacity = 1024

type t = {
  on : bool;
  lock : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  ring : event Queue.t;
  mutable ring_cap : int;
  mutable ring_seq : int;
  mutable ring_dropped : int;
}

let make on =
  {
    on;
    lock = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16;
    ring = Queue.create ();
    ring_cap = default_trace_capacity;
    ring_seq = 0;
    ring_dropped = 0;
  }

let create () = make true
let null = make false
let enabled t = t.on

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.gauges;
      Hashtbl.reset t.hists;
      Queue.clear t.ring;
      t.ring_dropped <- 0)

(* --- counters ------------------------------------------------------ *)

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add tbl name r;
      r

let incr ?(by = 1) t name =
  if t.on then
    locked t (fun () ->
        let r = cell t.counters name in
        r := !r + by)

let get t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let ensure_counter t name = if t.on then locked t (fun () -> ignore (cell t.counters name))

(* --- gauges -------------------------------------------------------- *)

let set_gauge t name v = if t.on then locked t (fun () -> (cell t.gauges name) := v)

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0)

(* --- histograms ---------------------------------------------------- *)

(* Upper bounds 1, 2, 4, ..., 2^30, plus one overflow bucket. *)
let bounds = Array.init 31 (fun i -> 1 lsl i)
let n_buckets = Array.length bounds + 1

let bucket_of v =
  let rec go i =
    if i >= Array.length bounds then Array.length bounds
    else if v <= bounds.(i) then i
    else go (i + 1)
  in
  if v <= 1 then 0 else go 1

let hist_cell t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = { hc_count = 0; hc_sum = 0; hc_max = 0; buckets = Array.make n_buckets 0 } in
      Hashtbl.add t.hists name h;
      h

let observe t name v =
  if t.on then
    locked t (fun () ->
        let v = max 0 v in
        let h = hist_cell t name in
        h.hc_count <- h.hc_count + 1;
        h.hc_sum <- h.hc_sum + v;
        if v > h.hc_max then h.hc_max <- v;
        let i = bucket_of v in
        h.buckets.(i) <- h.buckets.(i) + 1)

let ensure_histogram t name = if t.on then locked t (fun () -> ignore (hist_cell t name))

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
}

let percentile h q =
  if h.hc_count = 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int h.hc_count)) in
    let rank = max 1 (min rank h.hc_count) in
    let rec go i cum =
      let cum = cum + h.buckets.(i) in
      if cum >= rank then
        if i < Array.length bounds then min bounds.(i) h.hc_max else h.hc_max
      else go (i + 1) cum
    in
    go 0 0
  end

let summarize h =
  {
    h_count = h.hc_count;
    h_sum = h.hc_sum;
    h_max = h.hc_max;
    h_p50 = percentile h 0.50;
    h_p90 = percentile h 0.90;
    h_p99 = percentile h 0.99;
  }

let histogram t name =
  locked t (fun () -> Option.map summarize (Hashtbl.find_opt t.hists name))

let histograms t =
  locked t (fun () ->
      Hashtbl.fold (fun k h acc -> (k, summarize h) :: acc) t.hists [])
  |> List.sort compare

let percentiles t name qs =
  locked t (fun () ->
      match Hashtbl.find_opt t.hists name with
      | None -> List.map (fun _ -> 0) qs
      | Some h -> List.map (fun q -> percentile h q) qs)

(* --- snapshots ----------------------------------------------------- *)

type snapshot = (string * int) list

let snapshot t : snapshot =
  locked t (fun () -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [])
  |> List.sort compare

let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (-v)) before;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some d -> Hashtbl.replace tbl k (d + v)
      | None -> Hashtbl.replace tbl k v)
    after;
  Hashtbl.fold (fun k v acc -> if v <> 0 then (k, v) :: acc else acc) tbl []
  |> List.sort compare

let pp_snapshot ppf (s : snapshot) =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-28s %d@." k v) s

(* --- trace ring ---------------------------------------------------- *)

let set_trace_capacity t cap =
  if t.on then
    locked t (fun () ->
        t.ring_cap <- max 1 cap;
        Queue.clear t.ring;
        t.ring_dropped <- 0)

let trace t ?(attrs = []) phase name =
  if t.on then
    locked t (fun () ->
        let ev =
          { ev_seq = t.ring_seq; ev_name = name; ev_phase = phase; ev_attrs = attrs }
        in
        t.ring_seq <- t.ring_seq + 1;
        if Queue.length t.ring >= t.ring_cap then begin
          ignore (Queue.pop t.ring);
          t.ring_dropped <- t.ring_dropped + 1
        end;
        Queue.push ev t.ring)

let trace_events_unlocked t = List.of_seq (Queue.to_seq t.ring)
let trace_events t = locked t (fun () -> trace_events_unlocked t)
let trace_dropped t = locked t (fun () -> t.ring_dropped)

(* --- JSON exposition ----------------------------------------------- *)

(* v2: hot-path overhaul counters (buffer.clock_sweeps, the keydir
   hit/miss pair) and the txn.group_commit_batch histogram.
   v3: parallel read path — the histcache hit/miss/eviction counters,
   scan.parallel_fallbacks, and the scan.fanout histogram.
   v4: history compression — the compress.* counters/gauge, the
   hist.bytes_written counter, the compress.decode_ns histogram — and
   the ptt.gc_batch histogram for batched checkpoint-time GC.
   v5: structured tracing — the trace.spans/trace.dropped/trace.slow_ops
   counters, the recovery.redo_lsn progress gauge, and per-span-kind
   "span.<name>_us" duration histograms (present only when tracing is
   enabled; see Tracer).

   v6 adds recovery.torn_pages (pages whose checksum failed after a crash
   and were rebuilt wholesale from the log).

   v7: write-optimized ingestion — the ingest.* counters (appends,
   flushes, flushed messages / page visits / deferred splits) and the
   ingest.flush_run histogram (messages applied per data-page visit).

   v8: multi-core transaction execution — the lock.* counters (acquires,
   conflicts, deadlocks, timeouts) and the lock.wait_us histogram
   (blocking-wait durations; empty on the fail-fast serial path).

   v9: live introspection — the session.* commit-time counters
   (rows_read, rows_written: per-txn tallies folded in at commit) and the
   monitor.* counters (samples, dropped) fed by the continuous monitor
   sampler when one is running. *)
let schema_version = 9

let sorted_int_obj tbl =
  Hashtbl.fold (fun k r acc -> (k, Json.Int !r) :: acc) tbl [] |> List.sort compare

let phase_string = function
  | Span_begin -> "begin"
  | Span_end -> "end"
  | Instant -> "instant"

let to_json ?(traces = false) t =
  locked t @@ fun () ->
  let hists =
    Hashtbl.fold
      (fun k h acc ->
        let s = summarize h in
        ( k,
          Json.Obj
            [
              ("count", Json.Int s.h_count);
              ("sum", Json.Int s.h_sum);
              ("max", Json.Int s.h_max);
              ("p50", Json.Int s.h_p50);
              ("p90", Json.Int s.h_p90);
              ("p99", Json.Int s.h_p99);
            ] )
        :: acc)
      t.hists []
    |> List.sort compare
  in
  let base =
    [
      ("schema_version", Json.Int schema_version);
      ("counters", Json.Obj (sorted_int_obj t.counters));
      ("gauges", Json.Obj (sorted_int_obj t.gauges));
      ("histograms", Json.Obj hists);
    ]
  in
  let tr =
    if not traces then []
    else
      [
        ( "traces",
          Json.Obj
            [
              ("dropped", Json.Int t.ring_dropped);
              ( "events",
                Json.List
                  (List.map
                     (fun ev ->
                       Json.Obj
                         [
                           ("seq", Json.Int ev.ev_seq);
                           ("name", Json.String ev.ev_name);
                           ("phase", Json.String (phase_string ev.ev_phase));
                           ( "attrs",
                             Json.Obj
                               (List.map (fun (k, v) -> (k, Json.String v)) ev.ev_attrs) );
                         ])
                     (trace_events_unlocked t)) );
            ] );
      ]
  in
  Json.Obj (base @ tr)

let to_json_string ?traces t = Json.to_string (to_json ?traces t)

(* --- Prometheus text exposition ------------------------------------ *)

(* Metric names may only contain [a-zA-Z0-9_:]; ours use dots as the
   namespace separator, so mangle those (and any stray character) to
   underscores and prefix the exporter namespace. *)
let prom_name name =
  let mangled =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  "imdb_" ^ mangled

let to_prometheus t =
  locked t @@ fun () ->
  let b = Buffer.create 1024 in
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  List.iter
    (fun (k, r) ->
      let n = prom_name k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n !r))
    (sorted t.counters);
  List.iter
    (fun (k, r) ->
      let n = prom_name k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n !r))
    (sorted t.gauges);
  List.iter
    (fun (k, h) ->
      let n = prom_name k in
      let s = summarize h in
      Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun (q, v) ->
          Buffer.add_string b (Printf.sprintf "%s{quantile=\"%s\"} %d\n" n q v))
        [ ("0.5", s.h_p50); ("0.9", s.h_p90); ("0.99", s.h_p99) ];
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n s.h_sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n s.h_count))
    (sorted t.hists);
  Buffer.contents b

(* --- canonical names ----------------------------------------------- *)

let disk_reads = "disk.reads"
let disk_writes = "disk.writes"
let log_appends = "log.appends"
let log_bytes = "log.bytes"
let log_flushes = "log.flushes"
let buf_hits = "buffer.hits"
let buf_misses = "buffer.misses"
let buf_evictions = "buffer.evictions"
let buf_clock_sweeps = "buffer.clock_sweeps"
let keydir_hits = "buffer.keydir_hits"
let keydir_misses = "buffer.keydir_misses"
let pages_allocated = "pages.allocated"
let stamps_applied = "tstamp.applied"
let ptt_inserts = "ptt.inserts"
let ptt_deletes = "ptt.deletes"
let ptt_lookups = "ptt.lookups"
let vtt_hits = "vtt.hits"
let time_splits = "split.time"
let key_splits = "split.key"
let split_copied = "split.copied"
let asof_pages = "asof.pages_visited"
let asof_versions = "asof.versions_visited"
let histcache_hits = "histcache.hits"
let histcache_misses = "histcache.misses"
let histcache_evictions = "histcache.evictions"
let hist_bytes_written = "hist.bytes_written"
let compress_pages = "compress.pages"
let compress_fallbacks = "compress.fallbacks"
let compress_raw_bytes = "compress.raw_bytes"
let compress_written_bytes = "compress.written_bytes"
let compress_ratio = "compress.ratio"
let scan_parallel_fallbacks = "scan.parallel_fallbacks"
let txn_commits = "txn.commits"
let txn_aborts = "txn.aborts"
let btree_node_splits = "btree.node_splits"
let checkpoints = "engine.checkpoints"
let recovery_redo = "recovery.redo_records"
let recovery_undo = "recovery.undo_records"
let recovery_torn_pages = "recovery.torn_pages"
let trace_spans = "trace.spans"
let trace_drops = "trace.dropped"
let trace_slow_ops = "trace.slow_ops"
let recovery_redo_lsn = "recovery.redo_lsn"
let ingest_appends = "ingest.appends"
let ingest_flushes = "ingest.flushes"
let ingest_flush_messages = "ingest.flush_messages"
let ingest_flush_pages = "ingest.flush_pages"
let ingest_deferred_splits = "ingest.deferred_splits"
let ingest_hint_key_splits = "ingest.hint_key_splits"
let lock_acquires = "lock.acquires"
let lock_conflicts = "lock.conflicts"
let lock_deadlocks = "lock.deadlocks"
let lock_timeouts = "lock.timeouts"
let session_rows_read = "session.rows_read"
let session_rows_written = "session.rows_written"
let monitor_samples = "monitor.samples"
let monitor_dropped = "monitor.dropped"

let h_log_record_bytes = "log.record_bytes"
let h_log_flush_bytes = "log.flush_bytes"
let h_commit_writes = "txn.commit_writes"
let h_group_commit_batch = "txn.group_commit_batch"
let h_commit_latency_ms = "txn.commit_latency_ms"
let h_scan_fanout = "scan.fanout"
let h_compress_decode_ns = "compress.decode_ns"
let h_ptt_gc_batch = "ptt.gc_batch"
let h_split_current_live = "split.current_live"
let h_split_history_live = "split.history_live"
let h_page_utilization_pct = "page.utilization_pct"
let h_ingest_flush_run = "ingest.flush_run"
let h_lock_wait_us = "lock.wait_us"
let span_hist name = "span." ^ name ^ "_us"
