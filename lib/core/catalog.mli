(** The table catalog: name -> descriptor, stored in a system B-tree.

    The paper's [IMMORTAL] DDL keyword becomes the {!Immortal} mode flag;
    the flag "is visible to the storage engine" and decides versioning,
    PTT participation and AS OF support (Section 4.1). *)

type table_mode =
  | Immortal  (** persistent versions, time splits, AS OF *)
  | Snapshot_table  (** versions kept only for snapshot isolation *)
  | Conventional  (** update in place *)

val pp_mode : Format.formatter -> table_mode -> unit

type table_info = {
  ti_id : int;
  ti_name : string;
  ti_mode : table_mode;
  ti_schema : Schema.t;
  mutable ti_root : int;
      (** key-router root (versioned) / B-tree root (conventional) *)
  mutable ti_tsb_root : int;  (** 0 = no TSB index *)
  mutable ti_buf_root : int;  (** ingest message-buffer page; 0 = none *)
}

val encode_info : table_info -> bytes
val decode_info : bytes -> table_info

val store : Imdb_btree.Btree.t -> table_info -> unit
(** Transactional (undoable) catalog write. *)

val store_redo_only : Imdb_btree.Btree.t -> table_info -> unit
(** Redo-only catalog write, for structure modifications (ingest buffer
    page allocation) that must survive a transaction abort. *)

val load : Imdb_btree.Btree.t -> string -> table_info option
val remove : Imdb_btree.Btree.t -> string -> bool
val load_all : Imdb_btree.Btree.t -> table_info list
