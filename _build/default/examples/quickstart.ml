(* Quickstart: an immortal table, a few transactions, AS OF queries and
   time travel.

     dune exec examples/quickstart.exe

   Every update adds a version instead of destroying the old one; AS OF
   reads any past state; HISTORY lists every state a record went through. *)

module Db = Imdb_core.Db
module S = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp

let schema =
  S.make
    [
      { S.col_name = "id"; col_type = S.T_int };
      { S.col_name = "city"; col_type = S.T_string };
      { S.col_name = "population"; col_type = S.T_int };
    ]

let () =
  (* An in-memory database; use [Db.open_dir "path"] for a persistent one. *)
  let db = Db.open_memory () in
  Db.create_table db ~name:"cities" ~mode:Db.Immortal ~schema;

  (* Three transactions, three commit timestamps. *)
  let t1 =
    Db.with_txn db (fun txn ->
        Db.insert_row db txn ~table:"cities" [ S.V_int 1; S.V_string "Seattle"; S.V_int 560_000 ];
        Db.insert_row db txn ~table:"cities" [ S.V_int 2; S.V_string "Redmond"; S.V_int 45_000 ])
    |> fun () -> Imdb_clock.Clock.last_issued (Db.engine db).Imdb_core.Engine.clock
  in
  Unix.sleepf 0.03;
  Db.with_txn db (fun txn ->
      Db.update_row db txn ~table:"cities" [ S.V_int 1; S.V_string "Seattle"; S.V_int 608_000 ]);
  Unix.sleepf 0.03;
  Db.with_txn db (fun txn -> Db.delete_row db txn ~table:"cities" ~key:(S.V_int 2));

  (* Current state. *)
  Fmt.pr "--- current state@.";
  Db.exec db (fun txn ->
      List.iter
        (fun row -> Fmt.pr "  %a@." (Fmt.Dump.list S.pp_value) row)
        (Db.scan_rows db txn ~table:"cities"));

  (* The database as of the first commit: Redmond exists, Seattle small. *)
  Fmt.pr "--- AS OF %a@." Ts.pp t1;
  List.iter
    (fun row -> Fmt.pr "  %a@." (Fmt.Dump.list S.pp_value) row)
    (Db.as_of db t1 (fun txn -> Db.scan_rows_as_of db txn ~table:"cities" ~ts:t1));

  (* Time travel: every state Seattle's record went through. *)
  Fmt.pr "--- history of id=1@.";
  Db.exec db (fun txn ->
      List.iter
        (fun (ts, row) ->
          match row with
          | Some r -> Fmt.pr "  %a  %a@." Ts.pp ts (Fmt.Dump.list S.pp_value) r
          | None -> Fmt.pr "  %a  (deleted)@." Ts.pp ts)
        (Db.history_rows db txn ~table:"cities" ~key:(S.V_int 1)));

  (* And the deleted record's history still exists. *)
  Fmt.pr "--- history of id=2 (deleted)@.";
  Db.exec db (fun txn ->
      List.iter
        (fun (ts, row) ->
          match row with
          | Some r -> Fmt.pr "  %a  %a@." Ts.pp ts (Fmt.Dump.list S.pp_value) r
          | None -> Fmt.pr "  %a  (deleted)@." Ts.pp ts)
        (Db.history_rows db txn ~table:"cities" ~key:(S.V_int 2)));
  Db.close db
