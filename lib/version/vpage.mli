(** Versioned data pages: the paper's Sections 3.1–3.3 in executable form.

    A data page holds record versions.  The slot array designates the
    current version of each record; older versions occupy their own slots,
    flagged non-current, and hang off the current version through the VP
    chain, newest to oldest (Fig. 2).  A chain may continue into the
    page's historical page via the [f_vp_in_history] flag.

    This module is pure page-image manipulation: it never logs, allocates
    or touches the buffer pool.  The engine wraps each operation in the
    appropriate WAL records — and timestamp propagation deliberately in
    none at all. *)

(** {1 Reading versions} *)

val find_current : bytes -> key:string -> int option
(** Slot of the current version of [key] (delete stubs count: a key whose
    newest version is a stub is currently deleted). *)

type chain_tail =
  | Chain_end
  | Chain_to_history of int  (** slot in the page's historical page *)

val chain : bytes -> slot:int -> int list * chain_tail
(** The local version chain from [slot], newest first, and where it
    continues. *)

val current_slots : bytes -> (string * int) list
(** Every chain head: (key, slot), sorted. *)

val all_versions_of : bytes -> key:string -> int list
(** Every live version of [key] in the page, regardless of chain position
    — the search mode for history pages. *)

val keys : bytes -> string list
(** Distinct keys present, sorted. *)

val find_stamped_as_of : bytes -> key:string -> asof:Imdb_clock.Timestamp.t -> int option
(** Among the {e stamped} versions of [key]: the one with the largest
    start <= asof (ties — several updates by one transaction — resolve to
    the newest).  The caller interprets delete stubs. *)

(** {1 Inserting versions} *)

val version_size : key:string -> payload:string -> int

(** A planned version insert: computed first so the engine can build the
    [Op_version_insert] log record, then applied (by the same code redo
    replays). *)
type planned_insert = {
  pi_slot : int;
  pi_body : bytes;
  pi_pred_slot : int;  (** predecessor's slot, or [Record.no_vp] *)
  pi_pred_old_flags : int;
}

val plan_insert :
  bytes ->
  key:string ->
  payload:string ->
  tid:Imdb_clock.Tid.t ->
  delete_stub:bool ->
  planned_insert option
(** [None] when the page is full (the caller splits first). *)

val plan_insert_with_pred :
  bytes ->
  pred:int option ->
  key:string ->
  payload:string ->
  tid:Imdb_clock.Tid.t ->
  delete_stub:bool ->
  planned_insert option
(** Batch variant for the ingest flush: [pred] is the chain head
    [find_current] would return, maintained by the caller across a run so
    the per-message page scan disappears.  Byte-identical plans. *)

val apply_insert : bytes -> planned_insert -> unit

(** {1 Timestamp propagation} *)

type resolution =
  | Committed of Imdb_clock.Timestamp.t
  | Active  (** still running: leave the TID in place *)
  | Unknown  (** no mapping — an integrity error outside recovery *)

val stamp_committed :
  ?metrics:Imdb_obs.Metrics.t ->
  bytes ->
  resolve:(Imdb_clock.Tid.t -> resolution) ->
  on_stamp:(Imdb_clock.Tid.t -> unit) ->
  int
(** Replace TIDs with timestamps on every committed version (paper stage
    IV); returns the number stamped.  Never logged: the caller marks the
    page dirty un-logged when non-zero. *)

val stamp_versions_of :
  ?metrics:Imdb_obs.Metrics.t ->
  bytes ->
  key:string ->
  resolve:(Imdb_clock.Tid.t -> resolution) ->
  on_stamp:(Imdb_clock.Tid.t -> unit) ->
  int
(** Per-record variant: the read/update-path trigger stamps only the
    accessed record's versions. *)

val has_unstamped : bytes -> bool
val key_has_unstamped : bytes -> key:string -> bool

(** {1 Time splits (Fig. 3)} *)

type placement = Current_only | Both | History_only

type split_images = {
  si_current : bytes;  (** rebuilt current page: same id, slots preserved *)
  si_history : bytes;  (** the new historical page *)
  si_current_live : int;
  si_history_live : int;
  si_copied : int;  (** versions redundantly present in both *)
}

val time_split :
  ?metrics:Imdb_obs.Metrics.t ->
  page:bytes ->
  split_time:Imdb_clock.Timestamp.t ->
  history_page_id:int ->
  unit ->
  split_images
(** Perform a time split: versions dead before the split time move to the
    history page, versions spanning it are copied redundantly to both,
    young and uncommitted versions stay current, and delete stubs older
    than the split time leave the current page.  Chains are rewired so VP
    links stay within a page or step exactly one page back.  Precondition:
    every committed version is stamped. *)

(** {1 Key splits} *)

type key_split_images = {
  ks_left : bytes;  (** original page id; keys < separator; slots kept *)
  ks_right : bytes;
  ks_separator : string;
}

val key_split :
  ?metrics:Imdb_obs.Metrics.t -> page:bytes -> right_page_id:int -> unit -> key_split_images
(** B-tree-style key split: whole chains move with their key; both halves
    share the original history chain.  @raise Invalid_argument with fewer
    than two keys. *)

(** {1 Version GC for snapshot tables} *)

val gc_versions : page:bytes -> snapshots:Imdb_clock.Timestamp.t list -> bytes * int
(** Rebuild the page keeping only versions some active snapshot can still
    see, plus chain heads and uncommitted versions; returns the image and
    the number dropped.  The snapshot-table replacement for a time split. *)

(**/**)

type version_info = {
  vi_slot : int;
  vi_key : string;
  vi_flags : int;
  vi_start : [ `Stamped of Imdb_clock.Timestamp.t | `Unstamped of Imdb_clock.Tid.t ];
  vi_vp : int;
  vi_cell : bytes;
}

val info_of : bytes -> int -> version_info
val collect_chains : bytes -> version_info list list
val classify_chain :
  split_time:Imdb_clock.Timestamp.t -> version_info list -> (version_info * placement) list
