(* Table schemas and row values.

   The engine stores keys and payloads as raw byte strings; this module
   maps typed rows onto them.  Primary-key encoding is order-preserving
   (big-endian with sign bias for integers) so that B-tree range scans and
   router descent see the natural value order. *)

type column_type = T_int | T_string | T_bool | T_float

type column = { col_name : string; col_type : column_type }

type t = {
  columns : column list; (* first column is the primary key *)
}

type value = V_int of int | V_string of string | V_bool of bool | V_float of float

exception Type_error of string

let make columns =
  if columns = [] then invalid_arg "Schema.make: no columns";
  let names = List.map (fun c -> c.col_name) columns in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Schema.make: duplicate column names";
  { columns }

let columns t = t.columns
let arity t = List.length t.columns
let key_column t = List.hd t.columns

let column_index t name =
  let rec go i = function
    | [] -> None
    | c :: _ when String.equal c.col_name name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let type_name = function
  | T_int -> "INT"
  | T_string -> "VARCHAR"
  | T_bool -> "BOOL"
  | T_float -> "FLOAT"

let type_of_name s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "SMALLINT" | "BIGINT" -> Some T_int
  | "VARCHAR" | "TEXT" | "STRING" | "CHAR" -> Some T_string
  | "BOOL" | "BOOLEAN" -> Some T_bool
  | "FLOAT" | "REAL" | "DOUBLE" -> Some T_float
  | _ -> None

let value_matches ty v =
  match (ty, v) with
  | T_int, V_int _ | T_string, V_string _ | T_bool, V_bool _ | T_float, V_float _ ->
      true
  | _ -> false

let pp_value ppf = function
  | V_int i -> Fmt.int ppf i
  | V_string s -> Fmt.pf ppf "%S" s
  | V_bool b -> Fmt.bool ppf b
  | V_float f -> Fmt.float ppf f

let compare_values a b =
  match (a, b) with
  | V_int x, V_int y -> compare x y
  | V_string x, V_string y -> String.compare x y
  | V_bool x, V_bool y -> compare x y
  | V_float x, V_float y -> compare x y
  | _ ->
      raise (Type_error (Fmt.str "cannot compare %a with %a" pp_value a pp_value b))

(* --- key encoding (order-preserving) ----------------------------------- *)

let encode_key = function
  | V_int i ->
      (* flip the sign bit so that signed order = byte order *)
      let b = Bytes.create 9 in
      Bytes.set b 0 'i';
      Bytes.set_int64_be b 1 (Int64.logxor (Int64.of_int i) Int64.min_int);
      Bytes.to_string b
  | V_string s -> "s" ^ s
  | V_bool b -> if b then "b1" else "b0"
  | V_float f ->
      (* IEEE order-preserving transform *)
      let bits = Int64.bits_of_float f in
      let bits =
        if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int
        else Int64.lognot bits
      in
      let b = Bytes.create 9 in
      Bytes.set b 0 'f';
      Bytes.set_int64_be b 1 bits;
      Bytes.to_string b

let decode_key s =
  if String.length s = 0 then raise (Type_error "empty key");
  match s.[0] with
  | 'i' ->
      let bits = Bytes.get_int64_be (Bytes.of_string s) 1 in
      V_int (Int64.to_int (Int64.logxor bits Int64.min_int))
  | 's' -> V_string (String.sub s 1 (String.length s - 1))
  | 'b' -> V_bool (s.[1] = '1')
  | 'f' ->
      let bits = Bytes.get_int64_be (Bytes.of_string s) 1 in
      let bits =
        if Int64.compare bits 0L < 0 then Int64.logxor bits Int64.min_int
        else Int64.lognot bits
      in
      V_float (Int64.float_of_bits bits)
  | c -> raise (Type_error (Fmt.str "bad key tag %c" c))

(* --- row encoding -------------------------------------------------------- *)

let encode_value w v =
  let module W = Imdb_util.Codec.Writer in
  match v with
  | V_int i ->
      W.u8 w 0;
      W.int w i
  | V_string s ->
      W.u8 w 1;
      W.lstring w s
  | V_bool b ->
      W.u8 w 2;
      W.u8 w (if b then 1 else 0)
  | V_float f ->
      W.u8 w 3;
      W.i64 w (Int64.bits_of_float f)

let decode_value r =
  let module R = Imdb_util.Codec.Reader in
  match R.u8 r with
  | 0 -> V_int (R.int r)
  | 1 -> V_string (R.lstring r)
  | 2 -> V_bool (R.u8 r = 1)
  | 3 -> V_float (Int64.float_of_bits (R.i64 r))
  | n -> raise (Type_error (Fmt.str "bad value tag %d" n))

(* A row's payload holds the non-key columns; the key column travels as
   the record key. *)
let validate t row =
  if List.length row <> arity t then
    raise
      (Type_error
         (Fmt.str "row has %d values, schema %d columns" (List.length row) (arity t)));
  List.iter2
    (fun c v ->
      if not (value_matches c.col_type v) then
        raise
          (Type_error
             (Fmt.str "column %s expects %s, got %a" c.col_name (type_name c.col_type)
                pp_value v)))
    t.columns row

let key_of_row t row =
  validate t row;
  encode_key (List.hd row)

let payload_of_row t row =
  validate t row;
  let w = Imdb_util.Codec.Writer.create () in
  List.iter (encode_value w) (List.tl row);
  Bytes.to_string (Imdb_util.Codec.Writer.contents w)

let row_of_parts t ~key ~payload =
  let r = Imdb_util.Codec.Reader.create (Bytes.of_string payload) in
  let rest = List.map (fun _ -> decode_value r) (List.tl t.columns) in
  decode_key key :: rest

(* --- schema (de)serialization for the catalog --------------------------- *)

let type_tag = function T_int -> 0 | T_string -> 1 | T_bool -> 2 | T_float -> 3

let type_of_tag = function
  | 0 -> T_int
  | 1 -> T_string
  | 2 -> T_bool
  | 3 -> T_float
  | n -> raise (Type_error (Fmt.str "bad column type tag %d" n))

let encode t =
  let w = Imdb_util.Codec.Writer.create () in
  Imdb_util.Codec.Writer.u16 w (arity t);
  List.iter
    (fun c ->
      Imdb_util.Codec.Writer.lstring w c.col_name;
      Imdb_util.Codec.Writer.u8 w (type_tag c.col_type))
    t.columns;
  Imdb_util.Codec.Writer.contents w

let decode_from r =
  let module R = Imdb_util.Codec.Reader in
  let n = R.u16 r in
  let columns =
    List.init n (fun _ ->
        let col_name = R.lstring r in
        { col_name; col_type = type_of_tag (R.u8 r) })
  in
  make columns

let pp ppf t =
  Fmt.pf ppf "(%a)"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf c ->
         Fmt.pf ppf "%s %s" c.col_name (type_name c.col_type)))
    t.columns
