(* Split-store baseline: the storage organization the paper argues
   *against* (Section 6.3, Postgres; also the stratum/layered designs of
   [35]).

   Current versions live in one B-tree; on every update or delete the
   displaced version is moved to a *separate* history B-tree keyed by
   (key, start-timestamp).  Reading the current state touches only the
   current store — but an AS OF read must in general consult both stores,
   and a full AS OF scan must merge them, because "otherwise it is
   impossible, in general, to determine whether the query has seen the
   record version with the largest timestamp less than the as of time".
   The double traversal is the measured cost of the design; Immortal DB's
   integrated storage avoids it.

   Timestamping piggybacks on the engine's machinery: current rows carry
   the 8-byte Ttime field + 4-byte SN (TID until resolved, then the commit
   timestamp); displacement resolves the old version's timestamp through
   the VTT/PTT before archiving it, so history entries are always
   stamped. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module E = Engine

exception Unresolved_tid of Tid.t

type t = {
  eng : E.t;
  current : Imdb_btree.Btree.t;
  history : Imdb_btree.Btree.t;
  table_id : int;
}

(* --- row codecs ---------------------------------------------------------- *)

(* current-store value: ttime_field(8) | sn(4) | stub(1) | payload *)
let encode_current ~ttime ~sn ~stub ~payload =
  let b = Bytes.create (13 + String.length payload) in
  Imdb_util.Codec.set_i64 b 0 (Tid.encode_ttime_field ttime);
  Imdb_util.Codec.set_u32 b 8 sn;
  Imdb_util.Codec.set_u8 b 12 (if stub then 1 else 0);
  Imdb_util.Codec.set_string b 13 payload;
  b

let decode_current b =
  let ttime = Tid.decode_ttime_field (Imdb_util.Codec.get_i64 b 0) in
  let sn = Imdb_util.Codec.get_u32 b 8 in
  let stub = Imdb_util.Codec.get_u8 b 12 = 1 in
  let payload = Imdb_util.Codec.get_string b 13 (Bytes.length b - 13) in
  (ttime, sn, stub, payload)

(* history key: length-prefixed user key followed by the big-endian start
   timestamp, so entries of one key sort by time.
   NOTE: the u16 length prefix is little-endian, which is not order
   preserving across different key lengths.  History search only ever
   compares entries of the *same* user key (floor probes are built with
   that exact key), so cross-key order does not matter; within a key, the
   big-endian timestamp gives correct time order. *)
let history_key ~key ~ts =
  let b = Bytes.create (2 + String.length key + Ts.on_disk_size) in
  Imdb_util.Codec.set_u16 b 0 (String.length key);
  Imdb_util.Codec.set_string b 2 key;
  Bytes.set_int64_be b (2 + String.length key) (Ts.ttime ts);
  Bytes.set_int32_be b (2 + String.length key + 8) (Int32.of_int (Ts.sn ts));
  Bytes.to_string b

let split_history_key hk =
  let b = Bytes.of_string hk in
  let klen = Imdb_util.Codec.get_u16 b 0 in
  let key = Imdb_util.Codec.get_string b 2 klen in
  let ttime = Bytes.get_int64_be b (2 + klen) in
  let sn = Int32.to_int (Bytes.get_int32_be b (2 + klen + 8)) land 0xffffffff in
  (key, Ts.make ~ttime ~sn)

(* history value: stub(1) | payload *)
let encode_history ~stub ~payload =
  let b = Bytes.create (1 + String.length payload) in
  Imdb_util.Codec.set_u8 b 0 (if stub then 1 else 0);
  Imdb_util.Codec.set_string b 1 payload;
  b

let decode_history b =
  (Imdb_util.Codec.get_u8 b 0 = 1, Imdb_util.Codec.get_string b 1 (Bytes.length b - 1))

(* --- construction ---------------------------------------------------------- *)

let create eng ~table_id =
  {
    eng;
    current =
      Imdb_btree.Btree.create ~metrics:eng.E.metrics ~pool:eng.E.pool
        ~io:(E.btree_io_for eng table_id) ~table_id ~name:"split.current" ();
    history =
      Imdb_btree.Btree.create ~metrics:eng.E.metrics ~pool:eng.E.pool
        ~io:(E.btree_io_for eng table_id) ~table_id ~name:"split.history" ();
    table_id;
  }

(* --- timestamp resolution --------------------------------------------------- *)

let resolve_ts t ~ttime ~sn =
  match ttime with
  | Tid.Stamped ms -> Some (Ts.make ~ttime:ms ~sn)
  | Tid.Unstamped tid -> (
      match Imdb_tstamp.Lazy_stamper.resolve t.eng.E.stamper tid with
      | Imdb_version.Vpage.Committed ts -> Some ts
      | Imdb_version.Vpage.Active -> None
      | Imdb_version.Vpage.Unknown -> raise (Unresolved_tid tid))

(* --- writes ------------------------------------------------------------------ *)

(* Displace the current version of [key] (if any) into the history store,
   then install the new version carrying the writer's TID. *)
let write t txn ~key ~payload ~stub =
  E.check_running txn;
  E.lock_record t.eng txn ~table_id:t.table_id ~key Imdb_lock.Lock_manager.X;
  E.with_txn t.eng txn (fun () ->
      (match Imdb_btree.Btree.find t.current ~key with
      | Some old -> (
          let ttime, sn, old_stub, old_payload = decode_current old in
          match resolve_ts t ~ttime ~sn with
          | Some ts ->
              Imdb_obs.Tracer.instant t.eng.E.tracer "splitstore.displace"
                ~attrs:[ ("ts", Ts.to_string ts) ];
              Imdb_btree.Btree.insert t.history ~key:(history_key ~key ~ts)
                ~value:(encode_history ~stub:old_stub ~payload:old_payload)
          | None ->
              (* own earlier write in this txn: intermediate state,
                 overwritten without archival (same as Immortal DB
                 chaining same-timestamp versions; only the last
                 survives observation) *)
              ())
      | None -> ());
      Imdb_btree.Btree.insert t.current ~key
        ~value:
          (encode_current ~ttime:(Tid.Unstamped txn.E.tx_tid) ~sn:0 ~stub ~payload));
  E.note_write t.eng txn ~table_id:t.table_id ~key ~immortal:true

let insert t txn ~key ~payload = write t txn ~key ~payload ~stub:false
let update = insert
let delete t txn ~key = write t txn ~key ~payload:"" ~stub:true

(* --- reads ------------------------------------------------------------------- *)

let read_current t txn ~key =
  E.check_running txn;
  E.lock_record t.eng txn ~table_id:t.table_id ~key Imdb_lock.Lock_manager.S;
  match Imdb_btree.Btree.find t.current ~key with
  | None -> None
  | Some v ->
      let _, _, stub, payload = decode_current v in
      if stub then None else Some payload

(* AS OF read: probe the current store first; when the current version
   postdates [ts], fall through to the history store — the double access
   the paper critiques. *)
let read_as_of t txn ~key ~ts =
  E.check_running txn;
  let from_history () =
    Imdb_obs.Metrics.incr t.eng.E.metrics Imdb_obs.Metrics.asof_versions;
    match Imdb_btree.Btree.find_floor t.history ~key:(history_key ~key ~ts) with
    | None -> None
    | Some (hk, v) ->
        let k', _ = split_history_key hk in
        if String.equal k' key then
          let stub, payload = decode_history v in
          if stub then None else Some payload
        else None
  in
  match Imdb_btree.Btree.find t.current ~key with
  | None -> from_history ()
  | Some v -> (
      let ttime, sn, stub, payload = decode_current v in
      match resolve_ts t ~ttime ~sn with
      | Some start when Ts.compare start ts <= 0 -> if stub then None else Some payload
      | Some _ | None -> from_history ())

(* Full AS OF scan: must merge both stores (every current key whose
   version postdates [ts], and every key now absent from the current
   store, may have its visible version in history). *)
let scan_as_of t txn ~ts f =
  E.check_running txn;
  ignore txn;
  (* the double traversal the paper critiques, visible as one span *)
  Imdb_obs.Tracer.with_span t.eng.E.tracer "splitstore.scan_asof" @@ fun _ ->
  let emitted = Hashtbl.create 64 in
  (* pass 1: current store *)
  Imdb_btree.Btree.iter t.current (fun key v ->
      let ttime, sn, stub, payload = decode_current v in
      match resolve_ts t ~ttime ~sn with
      | Some start when Ts.compare start ts <= 0 ->
          Hashtbl.replace emitted key ();
          if not stub then f key payload
      | Some _ | None -> ());
  (* pass 2: history store — a full traversal, grouping by key *)
  let best : (string, Ts.t * bool * string) Hashtbl.t = Hashtbl.create 64 in
  Imdb_btree.Btree.iter t.history (fun hk v ->
      let key, start = split_history_key hk in
      if (not (Hashtbl.mem emitted key)) && Ts.compare start ts <= 0 then begin
        Imdb_obs.Metrics.incr t.eng.E.metrics Imdb_obs.Metrics.asof_versions;
        let stub, payload = decode_history v in
        match Hashtbl.find_opt best key with
        | Some (prev, _, _) when Ts.compare prev start >= 0 -> ()
        | _ -> Hashtbl.replace best key (start, stub, payload)
      end);
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) best [] |> List.sort compare in
  List.iter
    (fun key ->
      match Hashtbl.find_opt best key with
      | Some (_, stub, payload) -> if not stub then f key payload
      | None -> ())
    keys

let scan_current t txn f =
  E.check_running txn;
  Imdb_btree.Btree.iter t.current (fun key v ->
      let _, _, stub, payload = decode_current v in
      if not stub then f key payload)

let history_count t = Imdb_btree.Btree.count t.history
let current_count t = Imdb_btree.Btree.count t.current
