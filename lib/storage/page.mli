(** Slotted pages — the on-disk unit of the engine.

    A page is a [bytes] of the device's page size holding a 56-byte
    header, cells growing up from the header, and a slot array of 2-byte
    cell offsets growing down from the end.  Slot numbers are stable for
    the lifetime of the data they name (compaction moves cells, never
    renumbers slots): Immortal DB's intra-page version chains address
    versions by slot number and survive reorganization.

    The header carries, besides identity and the page LSN, the two fields
    Immortal DB adds (paper Section 3.2): the {e history pointer} to the
    page's historical page chain and the {e split time} at which the page
    was last time-split — the start of its version time range.

    Mutating operations are deterministic functions of the page image,
    which the physiological WAL redo relies on.  The checksum is computed
    by [seal] just before a disk write and checked by [verify] after a
    read. *)

val header_size : int

val no_page : int
(** Page id 0: the metadata page, doubling as the null page link. *)

val dead_slot : int
(** Slot-array entry value marking a dead (reusable) slot. *)

type page_type =
  | P_free
  | P_meta
  | P_data  (** clustered-table leaf holding record versions *)
  | P_history  (** historical versions produced by time splits *)
  | P_index  (** B-tree internal node *)
  | P_tsb_index  (** TSB-tree index node *)
  | P_heap  (** B-tree leaf (PTT, catalog, routers, split-store) *)
  | P_history_compressed
      (** delta-compressed historical page; same 56-byte header (so
          header-only chain walks work untouched), cells replaced by a
          {!Vcompress} blob, slot count 0 (so stamping sweeps no-op) *)
  | P_msg_buffer
      (** per-table ingest buffer: each cell is one encoded write message
          (arrival-ordered by sequence number) awaiting a batch flush into
          the table's current data pages *)

val int_of_page_type : page_type -> int
val page_type_of_int : int -> page_type
val pp_page_type : Format.formatter -> page_type -> unit

(** {1 Header accessors} *)

val page_id : bytes -> int
val set_page_id : bytes -> int -> unit
val lsn : bytes -> int64
val set_lsn : bytes -> int64 -> unit
val page_type : bytes -> page_type
val set_page_type : bytes -> page_type -> unit
val flags : bytes -> int
val set_flags : bytes -> int -> unit
val slot_count : bytes -> int
val free_lower : bytes -> int
val garbage : bytes -> int
val history_pointer : bytes -> int
val set_history_pointer : bytes -> int -> unit
val split_time : bytes -> Imdb_clock.Timestamp.t
val set_split_time : bytes -> Imdb_clock.Timestamp.t -> unit
val next_page : bytes -> int
val set_next_page : bytes -> int -> unit
val prev_page : bytes -> int
val set_prev_page : bytes -> int -> unit
val table_id : bytes -> int
val set_table_id : bytes -> int -> unit
val level : bytes -> int
val set_level : bytes -> int -> unit

(** {1 Formatting and checksums} *)

val format :
  bytes -> page_id:int -> page_type:page_type -> ?table_id:int -> ?level:int -> unit -> unit
(** Zero the page and initialize the header. *)

val seal : bytes -> unit
(** Store the CRC-32 of the page contents in the header. *)

val verify : bytes -> bool
(** Check the stored CRC; false means a torn or corrupt page. *)

(** {1 Slots and cells} *)

val slot_offset : bytes -> int -> int
(** Raw slot-array entry; [dead_slot] if dead.  @raise Invalid_argument
    on out-of-range slots. *)

val slot_live : bytes -> int -> bool

val cell_length : bytes -> int -> int
(** Body length of a live cell.  @raise Invalid_argument on dead slots. *)

val cell_body_offset : bytes -> int -> int
(** Byte offset of the cell body — stable only until the next mutating
    operation (compaction may move cells). *)

val read_cell : bytes -> int -> bytes
(** Copy of a cell's body. *)

val read_cell_part : bytes -> int -> at:int -> len:int -> bytes
val patch_cell : bytes -> int -> at:int -> src:bytes -> unit
(** Overwrite bytes within a cell body, in place. *)

val insert : bytes -> bytes -> int
(** Insert a cell body into the first available slot; returns the slot.
    @raise Failure when the page is full (check [fits] first). *)

val insert_at_slot : bytes -> int -> bytes -> unit
(** Insert at a specific slot — either a dead slot or exactly
    [slot_count] (growing the array).  The deterministic primitive that
    WAL redo replays. *)

val delete_slot : bytes -> int -> unit
val replace_at_slot : bytes -> int -> bytes -> unit

val reserve_slots : bytes -> int -> unit
(** Pre-extend a freshly formatted page to [n] dead slots — page rebuilds
    (time/key splits) use this to keep surviving records at their
    original slot numbers. *)

val compact : bytes -> unit
(** Squeeze out dead-cell space; slot numbering is preserved. *)

(** {1 Space accounting} *)

val slot_array_start : bytes -> int
val contiguous_free : bytes -> int
val free_space : bytes -> int
(** Free bytes available counting reclaimable garbage. *)

val fits : bytes -> int -> bool
(** Would a cell body of this size fit (after compaction if needed)? *)

val find_dead_slot : bytes -> int option
val choose_insert_slot : bytes -> int
(** The slot [insert] would use. *)

(** {1 Iteration and statistics} *)

val live_count : bytes -> int
val iter_live : bytes -> (int -> unit) -> unit
val fold_live : bytes -> init:'a -> f:('a -> int -> 'a) -> 'a
val live_bytes : bytes -> int
val utilization : bytes -> float
val pp_summary : Format.formatter -> bytes -> unit
