(* Snapshot isolation (paper Sections 1.1, 2): readers are never blocked
   by writers, because they read a recent version instead of waiting for
   the current one; competing writers are resolved first-committer-wins.

     dune exec examples/snapshot_demo.exe *)

module Db = Imdb_core.Db
module S = Imdb_core.Schema

let schema =
  S.make
    [
      { S.col_name = "id"; col_type = S.T_int };
      { S.col_name = "stock"; col_type = S.T_int };
    ]

let show db txn label =
  match Db.get_row db txn ~table:"inventory" ~key:(S.V_int 1) with
  | Some [ _; S.V_int stock ] -> Fmt.pr "  %s sees stock=%d@." label stock
  | _ -> Fmt.pr "  %s sees (no row)@." label

let () =
  let db = Db.open_memory () in
  Db.create_table db ~name:"inventory" ~mode:Db.Immortal ~schema;
  Db.with_txn db (fun txn ->
      Db.insert_row db txn ~table:"inventory" [ S.V_int 1; S.V_int 100 ]);

  Fmt.pr "--- a long-running snapshot reader vs a stream of writers@.";
  let reader = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  show db reader "reader (snapshot taken)";
  (* writers commit while the reader is still open — no blocking *)
  for i = 1 to 3 do
    Db.with_txn db (fun w ->
        Db.update_row db w ~table:"inventory" [ S.V_int 1; S.V_int (100 - (10 * i)) ]);
    show db reader (Printf.sprintf "reader after writer %d committed" i)
  done;
  ignore (Db.commit db reader);
  Db.exec db (fun txn -> show db txn "fresh transaction");

  Fmt.pr "@.--- first committer wins between two snapshot writers@.";
  let w1 = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  let w2 = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  Db.update_row db w1 ~table:"inventory" [ S.V_int 1; S.V_int 50 ];
  ignore (Db.commit db w1);
  Fmt.pr "  writer 1 committed stock=50@.";
  (match Db.update_row db w2 ~table:"inventory" [ S.V_int 1; S.V_int 60 ] with
  | () -> Fmt.pr "  writer 2 unexpectedly succeeded?!@."
  | exception Imdb_core.Table.Write_conflict _ ->
      Fmt.pr "  writer 2: write conflict (first committer wins) -> abort@.";
      Db.abort db w2
  | exception Imdb_lock.Lock_manager.Conflict _ ->
      Fmt.pr "  writer 2: lock conflict -> abort@.";
      Db.abort db w2);
  Db.exec db (fun txn -> show db txn "final state");

  Fmt.pr "@.--- snapshot reads also work mid-transaction against own writes@.";
  let t = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  Db.update_row db t ~table:"inventory" [ S.V_int 1; S.V_int 42 ];
  show db t "writer (own uncommitted write)";
  Db.abort db t;
  Db.exec db (fun txn -> show db txn "after abort");
  Db.close db
