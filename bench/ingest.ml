(* Write-optimized ingestion experiment: buffered message appends vs
   per-row descents.

   The same bulk-load workload runs twice — once with
   [ingest_buffering = false] (the pre-buffering per-row path: one
   router descent, one page probe and one stamping pass per row) and
   once with it on (one O(1) message append per row, batch flushes
   applying a whole run per page visit).  Reported: rows/sec for both,
   the speedup, and the counters that certify the mechanism (appends,
   flushes, messages per page visit).

   After loading, both engines serve an identical read workload (point
   lookups, an AS OF scan and a history walk) and the experiment checks
   the results AND the asof.* counters match exactly — buffered
   ingestion must be invisible to readers.

   BENCH_ingest.json carries only deterministic logical counters (never
   wall time). *)

module Db = Imdb_core.Db
module E = Imdb_core.Engine
module M = Imdb_obs.Metrics
module S = Imdb_core.Schema

let schema =
  S.make
    [
      { S.col_name = "id"; col_type = S.T_int };
      { S.col_name = "val"; col_type = S.T_string };
    ]

let row i v = [ S.V_int i; S.V_string v ]

let config ~buffered =
  {
    E.default_config with
    E.page_size = 8192;
    pool_capacity = 256;
    auto_checkpoint_every = 0;
    ingest_buffering = buffered;
    ingest_buffer_rows = 256;
  }

let rows_per_txn = 200

(* Load [rows] synthetic rows (upserts, 10% repeated keys so version
   chains form), committing every [rows_per_txn], and return the wall
   time plus the counters of interest. *)
let load_phase ~buffered ~rows =
  let clock = Imdb_clock.Clock.create_logical () in
  let db = Db.open_memory ~config:(config ~buffered) ~clock () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema;
  let elapsed, () =
    Harness.time_it (fun () ->
        let i = ref 0 in
        while !i < rows do
          Imdb_clock.Clock.advance clock 20L;
          Db.exec db (fun txn ->
              for _ = 1 to min rows_per_txn (rows - !i) do
                (* every 10th row revisits an earlier key *)
                let k = if !i mod 10 = 9 then !i / 10 else !i in
                Db.upsert_row db txn ~table:"t" (row k (Printf.sprintf "v%d" !i));
                incr i
              done)
        done)
  in
  (elapsed, clock, db)

let row_string r =
  String.concat ","
    (List.map (fun v -> Format.asprintf "%a" S.pp_value v) r)

(* The read workload both engines must answer identically. *)
let read_phase db clock ~rows =
  let now = Imdb_clock.Clock.last_issued clock in
  let results = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> results := s :: !results) fmt in
  let before = M.snapshot (Db.metrics db) in
  Db.exec db (fun txn ->
      let i = ref 0 in
      for _ = 0 to min 999 (rows - 1) do
        (match Db.get_row db txn ~table:"t" ~key:(S.V_int !i) with
        | Some r -> emit "get %d = %s" !i (row_string r)
        | None -> emit "get %d = -" !i);
        i := (!i + 37) mod rows
      done);
  Db.as_of db now (fun txn ->
      let scanned = Db.scan_rows_as_of db txn ~table:"t" ~ts:now in
      List.iteri
        (fun n r -> if n mod 997 = 0 then emit "asof %s" (row_string r))
        scanned;
      emit "asof count %d" (List.length scanned));
  Db.exec db (fun txn ->
      List.iter
        (fun (ts, r) ->
          emit "hist %s %s"
            (Imdb_clock.Timestamp.to_string ts)
            (match r with Some r -> row_string r | None -> "-"))
        (Db.history_rows db txn ~table:"t" ~key:(S.V_int 5)));
  let after = M.snapshot (Db.metrics db) in
  let asof_counters =
    List.filter
      (fun (name, _) -> String.length name >= 5 && String.sub name 0 5 = "asof.")
      (M.diff ~before ~after)
  in
  (List.rev !results, asof_counters)

let run ~scale =
  let rows = Harness.scaled ~scale 1_000_000 in
  let unbuf_s, unbuf_clock, unbuf_db = load_phase ~buffered:false ~rows in
  Fmt.pr "ingest: per-row load done (%.0f rows/s)@." (float_of_int rows /. unbuf_s);
  let buf_s, buf_clock, buf_db = load_phase ~buffered:true ~rows in
  let g db name = M.get (Db.metrics db) name in
  let rate s = float_of_int rows /. s in
  let unbuf_reads, unbuf_asof = read_phase unbuf_db unbuf_clock ~rows in
  let buf_reads, buf_asof = read_phase buf_db buf_clock ~rows in
  let results_identical = unbuf_reads = buf_reads in
  let counters_identical = unbuf_asof = buf_asof in
  if not results_identical then
    Fmt.epr "ingest: buffered and unbuffered READ RESULTS DIFFER@.";
  if not counters_identical then
    Fmt.epr "ingest: buffered and unbuffered asof.* COUNTERS DIFFER@.";
  let speedup = if buf_s > 0.0 then unbuf_s /. buf_s else 0.0 in
  Harness.print_table ~title:"ingest: bulk load, buffered vs per-row (1M rows at scale 1)"
    ~header:[ "mode"; "wall ms"; "rows/sec"; "log appends"; "time splits" ]
    [
      [
        "per-row";
        Harness.ms unbuf_s;
        Fmt.str "%.0f" (rate unbuf_s);
        string_of_int (g unbuf_db M.log_appends);
        string_of_int (g unbuf_db M.time_splits);
      ];
      [
        "buffered";
        Harness.ms buf_s;
        Fmt.str "%.0f" (rate buf_s);
        string_of_int (g buf_db M.log_appends);
        string_of_int (g buf_db M.time_splits);
      ];
    ];
  let flushes = g buf_db M.ingest_flushes in
  let flush_pages = g buf_db M.ingest_flush_pages in
  let flush_msgs = g buf_db M.ingest_flush_messages in
  Harness.print_table ~title:"ingest: mechanism"
    ~header:[ "metric"; "value" ]
    [
      [ "speedup"; Fmt.str "%.2fx" speedup ];
      [ "appends"; string_of_int (g buf_db M.ingest_appends) ];
      [ "flushes"; string_of_int flushes ];
      [ "flush page visits"; string_of_int flush_pages ];
      [
        "msgs/page visit";
        (if flush_pages = 0 then "n/a"
         else Fmt.str "%.1f" (float_of_int flush_msgs /. float_of_int flush_pages));
      ];
      [ "deferred splits"; string_of_int (g buf_db M.ingest_deferred_splits) ];
      [ "results identical"; string_of_bool results_identical ];
      [ "asof counters identical"; string_of_bool counters_identical ];
    ];
  let module J = Imdb_obs.Json in
  Harness.emit_json ~name:"ingest"
    (J.Obj
       [
         ("schema_version", J.Int M.schema_version);
         ("rows", J.Int rows);
         ( "buffered",
           J.Obj
             [
               ("ingest_appends", J.Int (g buf_db M.ingest_appends));
               ("ingest_flushes", J.Int flushes);
               ("ingest_flush_messages", J.Int flush_msgs);
               ("ingest_flush_pages", J.Int flush_pages);
               ("ingest_deferred_splits", J.Int (g buf_db M.ingest_deferred_splits));
               ("time_splits", J.Int (g buf_db M.time_splits));
               ("key_splits", J.Int (g buf_db M.key_splits));
               ("log_appends", J.Int (g buf_db M.log_appends));
             ] );
         ( "unbuffered",
           J.Obj
             [
               ("time_splits", J.Int (g unbuf_db M.time_splits));
               ("key_splits", J.Int (g unbuf_db M.key_splits));
               ("log_appends", J.Int (g unbuf_db M.log_appends));
             ] );
         ("results_identical", J.Int (if results_identical then 1 else 0));
         ("asof_counters_identical", J.Int (if counters_identical then 1 else 0));
       ]);
  Db.close unbuf_db;
  Db.close buf_db

let () =
  Harness.register ~name:"ingest"
    ~doc:"write-optimized ingestion: buffered message appends vs per-row descents"
    run
