type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* a decimal form that reparses to the same double *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type st = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> raise (Bad (Printf.sprintf "expected '%c' at %d" c st.pos))

let lit st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else raise (Bad (Printf.sprintf "bad literal at %d" st.pos))

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then raise (Bad "unterminated string");
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (if st.pos >= String.length st.src then raise (Bad "bad escape");
         let e = st.src.[st.pos] in
         st.pos <- st.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
             if st.pos + 4 > String.length st.src then raise (Bad "bad \\u");
             let hex = String.sub st.src st.pos 4 in
             st.pos <- st.pos + 4;
             let code = int_of_string ("0x" ^ hex) in
             (* engine strings are bytes; only BMP codepoints < 256 appear *)
             if code < 256 then Buffer.add_char buf (Char.chr code)
             else raise (Bad "unsupported \\u escape")
         | _ -> raise (Bad "bad escape"));
        go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> raise (Bad (Printf.sprintf "bad number %S" s)))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some 'n' -> lit st "null" Null
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (st.pos <- st.pos + 1; List [])
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; items (v :: acc)
          | Some ']' -> st.pos <- st.pos + 1; List.rev (v :: acc)
          | _ -> raise (Bad "expected ',' or ']'")
        in
        List (items [])
      end
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (st.pos <- st.pos + 1; Obj [])
      else begin
        let rec pairs acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; pairs ((k, v) :: acc)
          | Some '}' -> st.pos <- st.pos + 1; Obj (List.rev ((k, v) :: acc))
          | _ -> raise (Bad "expected ',' or '}'")
        in
        pairs []
      end
  | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number st
  | _ -> raise (Bad (Printf.sprintf "unexpected input at %d" st.pos))

let parse src =
  let st = { src; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then Error "trailing input" else Ok v
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
