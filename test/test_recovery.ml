(* Crash recovery matrix: crashes at every interesting point, repeated
   crashes, torn log tails, losers with splits, and recovery idempotence
   of the guarded logical undo. *)

open Helpers
module Db = Imdb_core.Db
module E = Imdb_core.Engine
module S = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp

let setup ?config () =
  let db, clock = fresh_db ?config () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  (db, clock)

let test_crash_before_any_commit () =
  let db, clock = setup () in
  let txn = Db.begin_txn db in
  Db.insert_row db txn ~table:"t" (row 1 "ghost");
  let db = Db.crash_and_reopen ~clock db in
  check_row db ~table:"t" ~id:1 None;
  (* the table itself (committed DDL) survived *)
  Alcotest.(check int) "table exists" 1 (List.length (Db.list_tables db));
  Db.close db

let test_crash_between_commits () =
  let db, clock = setup () in
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "a")));
  tick clock;
  let doomed = Db.begin_txn db in
  Db.update_row db doomed ~table:"t" (row 1 "b");
  let db = Db.crash_and_reopen ~clock db in
  check_row db ~table:"t" ~id:1 (Some (row 1 "a"));
  Db.close db

let test_repeated_crashes () =
  let db, clock = setup () in
  let db = ref db in
  for round = 1 to 5 do
    tick clock;
    ignore
      (commit_write !db (fun txn ->
           Db.upsert_row !db txn ~table:"t" (row round (Printf.sprintf "r%d" round))));
    (* leave a loser behind each round *)
    let loser = Db.begin_txn !db in
    Db.upsert_row !db loser ~table:"t" (row 99 "loser");
    db := Db.crash_and_reopen ~clock !db
  done;
  Db.exec !db (fun txn ->
      Alcotest.(check int) "five committed rows" 5
        (List.length (Db.scan_rows !db txn ~table:"t")));
  check_row !db ~table:"t" ~id:99 None;
  Db.close !db

let test_crash_preserves_history () =
  let db, clock = setup () in
  let stamps = ref [] in
  for v = 1 to 30 do
    tick clock;
    let ts =
      commit_write db (fun txn -> Db.upsert_row db txn ~table:"t" (row 1 (Printf.sprintf "v%d" v)))
    in
    stamps := (v, ts) :: !stamps
  done;
  let db = Db.crash_and_reopen ~clock db in
  (* every historical state is still queryable *)
  List.iter
    (fun (v, ts) ->
      let got = Db.as_of db ts (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 1)) in
      Alcotest.(check bool)
        (Printf.sprintf "as of v%d" v)
        true
        (got = Some (row 1 (Printf.sprintf "v%d" v))))
    !stamps;
  Db.close db

let test_loser_spanning_splits () =
  (* a loser transaction whose versions moved through a time split before
     the crash must still be rolled back (logical undo re-locates them) *)
  let db, clock = setup () in
  (* commit enough updates that the data page is near-full *)
  for i = 1 to 5 do
    tick clock;
    ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row i "base")))
  done;
  (* fat payloads so the churn genuinely fills pages and time-splits
     this database (the counter is per-engine, nothing bleeds in) *)
  let fat tag u = Printf.sprintf "%s%d-%s" tag u (String.make 120 'x') in
  for u = 1 to 100 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.update_row db txn ~table:"t" (row (1 + (u mod 5)) (fat "u" u))))
  done;
  (* the loser updates a key, then other commits force time splits *)
  let loser = Db.begin_txn db in
  Db.update_row db loser ~table:"t" (row 3 "loser-version");
  for u = 1 to 60 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.update_row db txn ~table:"t" (row (1 + (u mod 2)) (fat "w" u))))
  done;
  Alcotest.(check bool) "splits happened while loser open" true
    (Imdb_obs.Metrics.(get (Db.metrics db) time_splits) > 0);
  let db = Db.crash_and_reopen ~clock db in
  (* key 3's current version is the last committed one, not the loser's *)
  (match Db.exec db (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 3)) with
  | Some [ _; S.V_string v ] ->
      Alcotest.(check bool) "loser version gone" true (v <> "loser-version")
  | _ -> Alcotest.fail "key 3 missing");
  Db.close db

let test_explicit_abort_then_crash () =
  (* an abort completed before the crash must not be undone twice *)
  let db, clock = setup () in
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "keep")));
  let txn = Db.begin_txn db in
  Db.update_row db txn ~table:"t" (row 1 "aborted");
  Db.abort db txn;
  tick clock;
  ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row 1 "after")));
  let db = Db.crash_and_reopen ~clock db in
  check_row db ~table:"t" ~id:1 (Some (row 1 "after"));
  Db.close db

let test_checkpointed_recovery () =
  (* recovery from the latest checkpoint, not from the log start *)
  let config = { E.default_config with E.auto_checkpoint_every = 25 } in
  let db, clock = setup ~config () in
  for i = 1 to 120 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.upsert_row db txn ~table:"t" (row (i mod 10) (Printf.sprintf "i%d" i))))
  done;
  let db = Db.crash_and_reopen ~clock db in
  Db.exec db (fun txn ->
      Alcotest.(check int) "ten keys" 10 (List.length (Db.scan_rows db txn ~table:"t")));
  (* and the engine still accepts writes *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.upsert_row db txn ~table:"t" (row 42 "post")));
  check_row db ~table:"t" ~id:42 (Some (row 42 "post"));
  Db.close db

let test_conventional_table_recovery () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"c" ~mode:Db.Conventional ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"c" (row 1 "committed")));
  let loser = Db.begin_txn db in
  Db.insert_row db loser ~table:"c" (row 2 "loser");
  Db.update_row db loser ~table:"c" (row 1 "loser-update");
  let db = Db.crash_and_reopen ~clock db in
  check_row db ~table:"c" ~id:1 (Some (row 1 "committed"));
  check_row db ~table:"c" ~id:2 None;
  Db.close db

let test_ddl_crash () =
  (* a table created but not... DDL autocommits, so after the call it is
     durable; crash right after and use it *)
  let db, clock = fresh_db () in
  Db.create_table db ~name:"u" ~mode:Db.Immortal ~schema:kv_schema;
  let db = Db.crash_and_reopen ~clock db in
  Alcotest.(check bool) "table survives" true
    (List.exists (fun ti -> ti.Imdb_core.Catalog.ti_name = "u") (Db.list_tables db));
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"u" (row 1 "ok")));
  check_row db ~table:"u" ~id:1 (Some (row 1 "ok"));
  Db.close db

(* Model-based crash property: random committed writes interleaved with
   random crash points; after each crash every committed state (current
   and as-of) matches a reference temporal model, and losers vanish. *)
let prop_crash_model =
  let gen = QCheck.Gen.(list_size (int_range 5 60) (pair (int_range 0 7) (int_range 0 9))) in
  QCheck.Test.make ~name:"crash/recovery vs temporal model" ~count:25 (QCheck.make gen)
    (fun script ->
      let db, clock = fresh_db () in
      Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
      let db = ref db in
      (* reference: key -> (ts * value option) list, newest first *)
      let committed : (int, (Ts.t * string option) list) Hashtbl.t = Hashtbl.create 8 in
      let current k =
        match Hashtbl.find_opt committed k with
        | Some ((_, v) :: _) -> v
        | _ -> None
      in
      let step = ref 0 in
      List.iter
        (fun (action, key) ->
          incr step;
          tick clock;
          match action with
          | 0 | 1 | 2 | 3 -> (
              (* committed upsert *)
              let v = Printf.sprintf "s%d" !step in
              let ts =
                commit_write !db (fun txn -> Db.upsert_row !db txn ~table:"t" (row key v))
              in
              Hashtbl.replace committed key
                ((ts, Some v) :: Option.value ~default:[] (Hashtbl.find_opt committed key)))
          | 4 ->
              (* committed delete, if present *)
              if current key <> None then begin
                let ts =
                  commit_write !db (fun txn ->
                      Db.delete_row !db txn ~table:"t" ~key:(S.V_int key))
                in
                Hashtbl.replace committed key
                  ((ts, None) :: Option.value ~default:[] (Hashtbl.find_opt committed key))
              end
          | 5 ->
              (* loser left open across the next crash; it holds its lock
                 until then, so losers write a disjoint key range *)
              let txn = Db.begin_txn !db in
              (try Db.upsert_row !db txn ~table:"t" (row (100 + key) "loser") with _ -> ())
          | 6 ->
              (* explicit abort *)
              let txn = Db.begin_txn !db in
              (try
                 Db.upsert_row !db txn ~table:"t" (row key "aborted");
                 Db.abort !db txn
               with _ -> ())
          | _ ->
              (* crash *)
              db := Db.crash_and_reopen ~clock !db)
        script;
      db := Db.crash_and_reopen ~clock !db;
      let ok = ref true in
      (* no loser rows survive: every surviving key is a committed one *)
      Db.exec !db (fun txn ->
          List.iter
            (fun r ->
              match r with
              | S.V_int k :: _ ->
                  if k >= 100 then begin
                    ok := false;
                    QCheck.Test.fail_reportf "loser key %d survived the crash" k
                  end
              | _ -> ())
            (Db.scan_rows !db txn ~table:"t"));
      (* verify current state *)
      Hashtbl.iter
        (fun key versions ->
          let expect = match versions with (_, v) :: _ -> v | [] -> None in
          let got =
            Db.exec !db (fun txn ->
                match Db.get_row !db txn ~table:"t" ~key:(S.V_int key) with
                | Some [ _; S.V_string v ] -> Some v
                | _ -> None)
          in
          if got <> expect then begin
            ok := false;
            QCheck.Test.fail_reportf "current key %d: got %s want %s" key
              (Option.value got ~default:"-")
              (Option.value expect ~default:"-")
          end;
          (* verify a historical point per key: state as of each commit *)
          List.iter
            (fun (ts, v) ->
              let got =
                Db.as_of !db ts (fun txn ->
                    match Db.get_row !db txn ~table:"t" ~key:(S.V_int key) with
                    | Some [ _; S.V_string v ] -> Some v
                    | _ -> None)
              in
              if got <> v then begin
                ok := false;
                QCheck.Test.fail_reportf "key %d as of %s: got %s want %s" key
                  (Ts.to_string ts)
                  (Option.value got ~default:"-")
                  (Option.value v ~default:"-")
              end)
            versions)
        committed;
      Db.close !db;
      !ok)

let suite =
  [
    Alcotest.test_case "crash before any commit" `Quick test_crash_before_any_commit;
    Alcotest.test_case "crash between commits" `Quick test_crash_between_commits;
    Alcotest.test_case "repeated crashes" `Quick test_repeated_crashes;
    Alcotest.test_case "crash preserves history" `Quick test_crash_preserves_history;
    Alcotest.test_case "loser spanning splits" `Quick test_loser_spanning_splits;
    Alcotest.test_case "abort then crash" `Quick test_explicit_abort_then_crash;
    Alcotest.test_case "checkpointed recovery" `Quick test_checkpointed_recovery;
    Alcotest.test_case "conventional recovery" `Quick test_conventional_table_recovery;
    Alcotest.test_case "DDL crash" `Quick test_ddl_crash;
    QCheck_alcotest.to_alcotest prop_crash_model;
  ]
