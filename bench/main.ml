(* Benchmark entry point.

   `dune exec bench/main.exe` runs every experiment at paper scale;
   `dune exec bench/main.exe -- fig5 fig6` runs a subset;
   `dune exec bench/main.exe -- --scale 0.1` shrinks workloads 10x;
   `dune exec bench/main.exe -- --json DIR` also writes BENCH_*.json
   files of the deterministic counters (consumed by scripts/bench_check.sh).

   One experiment regenerates each figure of the paper's evaluation
   (Figs. 1-6) plus the ablations indexed in DESIGN.md (Ext A-F). *)

(* Force linking of the experiment modules (registration side effects). *)
let _modules =
  [ Fig_structs.fig1; Fig5.fig5; Fig6.fig6; Ablations.tsb; Hotpath.run; Micro.run;
    Parscan.run; Compress.run; Traceov.run; Ingest.run; Mtbench.run; Monitorov.run ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1.0 in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--quick" :: rest ->
        scale := 0.05;
        parse rest
    | "--json" :: dir :: rest ->
        Harness.set_json_dir dir;
        parse rest
    | "--list" :: _ ->
        List.iter
          (fun e -> Fmt.pr "%-12s %s@." e.Harness.ex_name e.Harness.ex_doc)
          (Harness.all ());
        exit 0
    | name :: rest ->
        selected := name :: !selected;
        parse rest
  in
  parse args;
  let experiments =
    match !selected with
    | [] -> Harness.all ()
    | names ->
        List.map
          (fun n ->
            match
              List.find_opt (fun e -> e.Harness.ex_name = n) (Harness.all ())
            with
            | Some e -> e
            | None ->
                Fmt.epr "unknown experiment %s (try --list)@." n;
                exit 1)
          (List.rev names)
  in
  Fmt.pr "Immortal DB benchmark suite (scale %.2f)@." !scale;
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      e.Harness.ex_run ~scale:!scale;
      Fmt.pr "[%s: %.1fs]@." e.Harness.ex_name (Unix.gettimeofday () -. t0))
    experiments
