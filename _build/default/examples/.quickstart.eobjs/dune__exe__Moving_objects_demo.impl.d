examples/moving_objects_demo.ml: Fmt Imdb_clock Imdb_core Imdb_sql Imdb_workload List Printf
