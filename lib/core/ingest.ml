(* Ingest message buffers (write-optimized ingestion, Bε-tree style).

   A buffered write does not descend to its data page: it appends one
   *message* — the write's kind, key, payload, owning transaction, and a
   snapshot of the logical clock at append time — to the table's single
   message-buffer page (type [P_msg_buffer]).  A later flush drains the
   buffer in strict arrival order and applies each message through the
   same version-chain primitives the unbuffered path uses, so the data
   pages a reader sees are byte-identical to what per-row descents would
   have produced (the clock snapshot reproduces the split times deferred
   splits would have chosen).

   This module owns the message codec and the volatile per-table mirror
   of the buffer page: an arrival-ordered queue plus a newest-message-
   per-key map for O(1) existence checks.  Durability is not handled
   here — appends are WAL-logged by the engine ([Op_msg_append]) and the
   mirror is rebuilt from the buffer page image at attach time. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module P = Imdb_storage.Page
module Codec = Imdb_util.Codec

type kind = M_insert | M_update | M_upsert | M_delete

let kind_tag = function M_insert -> 0 | M_update -> 1 | M_upsert -> 2 | M_delete -> 3

let kind_of_tag = function
  | 0 -> M_insert
  | 1 -> M_update
  | 2 -> M_upsert
  | 3 -> M_delete
  | n -> failwith (Printf.sprintf "Ingest: bad message kind %d" n)

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | M_insert -> "insert"
    | M_update -> "update"
    | M_upsert -> "upsert"
    | M_delete -> "delete")

type msg = {
  m_seq : int; (* engine-global arrival order, unique per message *)
  m_tid : Tid.t;
  m_kind : kind;
  m_key : string;
  m_payload : string; (* "" for delete stubs *)
  m_clock : Ts.t; (* Clock.last_issued at append; deferred-split time base *)
}

let encode_msg m =
  let w = Codec.Writer.create () in
  Codec.Writer.i64 w (Int64.of_int m.m_seq);
  Codec.Writer.i64 w (Tid.to_int64 m.m_tid);
  Codec.Writer.u8 w (kind_tag m.m_kind);
  Codec.Writer.i64 w (Ts.ttime m.m_clock);
  Codec.Writer.u32 w (Ts.sn m.m_clock);
  Codec.Writer.lstring w m.m_key;
  Codec.Writer.lstring w m.m_payload;
  Codec.Writer.contents w

let decode_msg b =
  let r = Codec.Reader.create b in
  let m_seq = Int64.to_int (Codec.Reader.i64 r) in
  let m_tid = Tid.of_int64 (Codec.Reader.i64 r) in
  let m_kind = kind_of_tag (Codec.Reader.u8 r) in
  let ttime = Codec.Reader.i64 r in
  let sn = Codec.Reader.u32 r in
  let m_key = Codec.Reader.lstring r in
  let m_payload = Codec.Reader.lstring r in
  { m_seq; m_tid; m_kind; m_key; m_payload; m_clock = Ts.make ~ttime ~sn }

(* --- volatile per-table mirror ----------------------------------------- *)

type buf = {
  b_table : int;
  b_page : int; (* the P_msg_buffer page backing this mirror *)
  mutable b_msgs : msg list; (* newest first; reversed at drain *)
  b_newest : (string, msg) Hashtbl.t; (* key -> newest buffered message *)
  mutable b_count : int;
  mutable b_flushing : bool; (* re-entrancy guard during a flush *)
}

let create ~table_id ~page_id =
  {
    b_table = table_id;
    b_page = page_id;
    b_msgs = [];
    b_newest = Hashtbl.create 64;
    b_count = 0;
    b_flushing = false;
  }

let count b = b.b_count
let is_empty b = b.b_count = 0

let add b m =
  b.b_msgs <- m :: b.b_msgs;
  Hashtbl.replace b.b_newest m.m_key m;
  b.b_count <- b.b_count + 1

(* The newest buffered message for [key], if any — the front of the
   existence-check merge: a buffered delete means "absent", any other
   buffered message means "present", no message defers to the pages. *)
let newest b ~key = Hashtbl.find_opt b.b_newest key

(* Take every buffered message in arrival order and reset the mirror.
   The caller owns applying them (and truncating the backing page). *)
let drain b =
  let msgs = List.rev b.b_msgs in
  b.b_msgs <- [];
  Hashtbl.reset b.b_newest;
  b.b_count <- 0;
  msgs

(* Remove the message with sequence number [seq] (rollback path).  Returns
   true when it was present; the newest-per-key map entry is recomputed
   from the surviving messages for that key. *)
let remove_seq b ~seq =
  match List.find_opt (fun m -> m.m_seq = seq) b.b_msgs with
  | None -> false
  | Some victim ->
      b.b_msgs <- List.filter (fun m -> m.m_seq <> seq) b.b_msgs;
      b.b_count <- b.b_count - 1;
      (match Hashtbl.find_opt b.b_newest victim.m_key with
      | Some m when m.m_seq = seq -> (
          Hashtbl.remove b.b_newest victim.m_key;
          (* b_msgs is newest-first: the first survivor with this key is
             the new newest *)
          match List.find_opt (fun m -> m.m_key = victim.m_key) b.b_msgs with
          | Some m -> Hashtbl.replace b.b_newest victim.m_key m
          | None -> ())
      | _ -> ());
      true

(* Rebuild the mirror from the buffer page image (attach after recovery:
   redo has already reconstructed the page).  Cells hold one message
   each; arrival order is the sequence number, not the slot number. *)
let of_page ~table_id page =
  let b = create ~table_id ~page_id:(P.page_id page) in
  let msgs =
    P.fold_live page ~init:[] ~f:(fun acc slot -> decode_msg (P.read_cell page slot) :: acc)
  in
  let msgs = List.sort (fun a b -> compare a.m_seq b.m_seq) msgs in
  List.iter (add b) msgs;
  b

(* The highest sequence number present, for reseeding the engine's
   sequence counter at attach. *)
let max_seq b = List.fold_left (fun acc m -> max acc m.m_seq) 0 b.b_msgs
