(* Lock-striped immutable-page cache.

   Each shard is a mutex + hashtable + FIFO eviction queue.  A miss runs
   entirely under its shard lock (lookup, disk load, admission check,
   insert), which serializes concurrent loads of the same page: the work
   counters stay deterministic — one miss per unique page — no matter
   how many domains race on a shared history chain.  Different shards
   never contend. *)

module P = Imdb_storage.Page
module V = Imdb_version.Vpage

type shard = {
  m : Mutex.t;
  table : (int, bytes) Hashtbl.t;
  fifo : int Queue.t;  (* admission order; lazily pruned on eviction *)
}

type stats = { hits : int; misses : int; evictions : int; rejected : int }

type t = {
  shards : shard array;
  shard_capacity : int;
  load : int -> bytes;
  decode : bytes -> bytes;
      (* expands a compressed history image; cached pages hold the
         decoded form so repeated chain walks pay the decode once *)
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_evictions : int Atomic.t;
  c_rejected : int Atomic.t;
  tracer : Imdb_obs.Tracer.t;
}

let create ?(shards = 16) ?(decode = Imdb_storage.Vcompress.decode)
    ?(tracer = Imdb_obs.Tracer.null) ~capacity ~load () =
  let shards = max 1 shards in
  {
    shards =
      Array.init shards (fun _ ->
          { m = Mutex.create (); table = Hashtbl.create 64; fifo = Queue.create () });
    shard_capacity = max 1 (capacity / shards);
    load;
    decode;
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_evictions = Atomic.make 0;
    c_rejected = Atomic.make 0;
    tracer;
  }

let shard_of t pid = t.shards.(pid mod Array.length t.shards)

let with_lock s f =
  Mutex.lock s.m;
  match f () with
  | v ->
      Mutex.unlock s.m;
      v
  | exception e ->
      Mutex.unlock s.m;
      raise e

(* A page may enter the cache only when the image proves it immutable:
   intact, historical (plain or compressed), ours, and with every
   version stamped.  This also rejects stale disk images of reused page
   ids (their type or table won't match) and pages whose only copy is
   dirty in the buffer pool (the load raises Page_missing before we get
   here).  The stamped check runs on the decoded image for compressed
   pages — on the raw image it would pass vacuously (slot count 0). *)
let admissible ~table_id page =
  P.verify page
  && (match P.page_type page with
     | P.P_history | P.P_history_compressed -> true
     | _ -> false)
  && P.table_id page = table_id

let evict_to_capacity t s =
  while Hashtbl.length s.table > t.shard_capacity do
    match Queue.pop s.fifo with
    | victim ->
        if Hashtbl.mem s.table victim then begin
          Hashtbl.remove s.table victim;
          Atomic.incr t.c_evictions;
          Imdb_obs.Tracer.instant t.tracer "histcache.evict"
            ~attrs:[ ("page", string_of_int victim) ]
        end
    | exception Queue.Empty -> Hashtbl.reset s.table
  done

let get t ~table_id pid =
  let s = shard_of t pid in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.table pid with
      | Some b ->
          Atomic.incr t.c_hits;
          Some b
      | None -> (
          Atomic.incr t.c_misses;
          Imdb_obs.Tracer.with_span t.tracer "histcache.admit"
            ~attrs:[ ("page", string_of_int pid) ]
          @@ fun sp ->
          match t.load pid with
          | exception _ ->
              Imdb_obs.Tracer.add_attr sp "admitted" "load_failed";
              None
          | b -> (
              match
                if P.page_id b = pid && admissible ~table_id b then
                  let img =
                    if Imdb_storage.Vcompress.is_compressed b then t.decode b
                    else b
                  in
                  if V.has_unstamped img then None else Some img
                else None
              with
              | exception _ ->
                  (* a corrupt blob that still passed the checksum *)
                  Atomic.incr t.c_rejected;
                  Imdb_obs.Tracer.add_attr sp "admitted" "rejected";
                  None
              | Some img ->
                  Hashtbl.replace s.table pid img;
                  Queue.push pid s.fifo;
                  evict_to_capacity t s;
                  Imdb_obs.Tracer.add_attr sp "admitted" "true";
                  Some img
              | None ->
                  Atomic.incr t.c_rejected;
                  Imdb_obs.Tracer.add_attr sp "admitted" "rejected";
                  None)))

let remove t pid =
  let s = shard_of t pid in
  with_lock s (fun () -> Hashtbl.remove s.table pid)

let clear t =
  Array.iter (fun s -> with_lock s (fun () -> Hashtbl.reset s.table; Queue.clear s.fifo)) t.shards

let stats t =
  {
    hits = Atomic.get t.c_hits;
    misses = Atomic.get t.c_misses;
    evictions = Atomic.get t.c_evictions;
    rejected = Atomic.get t.c_rejected;
  }

let length t =
  Array.fold_left (fun acc s -> acc + with_lock s (fun () -> Hashtbl.length s.table)) 0 t.shards

let iter t f =
  Array.iter (fun s -> with_lock s (fun () -> Hashtbl.iter f s.table)) t.shards
