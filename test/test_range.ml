(* Key-range scans: the access path of the paper's own example query
   ("SELECT * FROM MovingObjects WHERE Oid < 10"), across isolation
   levels, table modes and history depths. *)

open Helpers
module Db = Imdb_core.Db
module S = Imdb_core.Schema
module Sql = Imdb_sql.Executor

let ids rows = List.map (function S.V_int i :: _ -> i | _ -> -1) rows

let setup ?(mode = Db.Immortal) ?(n = 30) () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode ~schema:kv_schema;
  for i = 1 to n do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.insert_row db txn ~table:"t" (row i (Printf.sprintf "v%d" i))))
  done;
  (db, clock)

let test_current_range () =
  let db, _ = setup () in
  Db.exec db (fun txn ->
      Alcotest.(check (list int)) "low..high" [ 10; 11; 12 ]
        (ids (Db.scan_rows_range ~low:(S.V_int 10) ~high:(S.V_int 13) db txn ~table:"t"));
      Alcotest.(check (list int)) "open low" [ 1; 2; 3 ]
        (ids (Db.scan_rows_range ~high:(S.V_int 4) db txn ~table:"t"));
      Alcotest.(check (list int)) "open high" [ 28; 29; 30 ]
        (ids (Db.scan_rows_range ~low:(S.V_int 28) db txn ~table:"t"));
      Alcotest.(check int) "empty window" 0
        (List.length (Db.scan_rows_range ~low:(S.V_int 20) ~high:(S.V_int 20) db txn ~table:"t")));
  Db.close db

let test_conventional_range () =
  let db, _ = setup ~mode:Db.Conventional () in
  Db.exec db (fun txn ->
      Alcotest.(check (list int)) "conventional range" [ 5; 6; 7 ]
        (ids (Db.scan_rows_range ~low:(S.V_int 5) ~high:(S.V_int 8) db txn ~table:"t")));
  Db.close db

let test_as_of_range () =
  let db, clock = setup () in
  let cut = Imdb_clock.Clock.last_issued (Db.engine db).Imdb_core.Engine.clock in
  (* mutate after the cut: delete 11, update 10 *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.delete_row db txn ~table:"t" ~key:(S.V_int 11)));
  ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row 10 "changed")));
  (* force enough churn to split pages, so history pages are involved *)
  for u = 1 to 300 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.upsert_row db txn ~table:"t" (row (1 + (u mod 30)) (Printf.sprintf "u%d" u))))
  done;
  (* key 11 was re-created by the churn; delete it again so the current
     state differs from the AS OF state *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.delete_row db txn ~table:"t" ~key:(S.V_int 11)));
  Db.as_of db cut (fun txn ->
      let rows = Db.scan_rows_range ~low:(S.V_int 10) ~high:(S.V_int 13) db txn ~table:"t" in
      Alcotest.(check (list int)) "as-of range sees old state" [ 10; 11; 12 ] (ids rows);
      (match rows with
      | [ r10; _; _ ] ->
          Alcotest.(check bool) "old value of 10" true (r10 = row 10 "v10")
      | _ -> Alcotest.fail "unexpected rows"));
  (* current range reflects the delete and update *)
  Db.exec db (fun txn ->
      let rows = Db.scan_rows_range ~low:(S.V_int 10) ~high:(S.V_int 13) db txn ~table:"t" in
      Alcotest.(check (list int)) "current range" [ 10; 12 ] (ids rows));
  Db.close db

let test_snapshot_range_own_writes () =
  let db, _ = setup () in
  let txn = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  Db.update_row db txn ~table:"t" (row 15 "mine");
  Db.delete_row db txn ~table:"t" ~key:(S.V_int 16);
  let rows = Db.scan_rows_range ~low:(S.V_int 14) ~high:(S.V_int 18) db txn ~table:"t" in
  Alcotest.(check (list int)) "own delete hidden" [ 14; 15; 17 ] (ids rows);
  Alcotest.(check bool) "own write visible" true (List.mem (row 15 "mine") rows);
  Db.abort db txn;
  Db.close db

let test_sql_range_pushdown () =
  let db, _ = setup ~n:50 () in
  let s = Sql.make_session db in
  (match Sql.exec_string s "SELECT * FROM t WHERE id < 10" with
  | [ Sql.R_rows { rows; _ } ] -> Alcotest.(check int) "nine rows" 9 (List.length rows)
  | _ -> Alcotest.fail "unexpected result");
  (match Sql.exec_string s "SELECT * FROM t WHERE id >= 45 AND id < 48" with
  | [ Sql.R_rows { rows; _ } ] ->
      Alcotest.(check (list int)) "conjunct bounds" [ 45; 46; 47 ] (ids rows)
  | _ -> Alcotest.fail "unexpected result");
  (* mixed conditions still filter correctly *)
  (match Sql.exec_string s "SELECT * FROM t WHERE id <= 5 AND val = 'v3'" with
  | [ Sql.R_rows { rows; _ } ] -> Alcotest.(check (list int)) "range+filter" [ 3 ] (ids rows)
  | _ -> Alcotest.fail "unexpected result");
  Db.close db

let test_paper_query_shape () =
  (* the paper's exact query against the paper's table, via AS OF *)
  let db, clock = Imdb_workload.Driver.fresh_moving_objects ~mode:Db.Immortal () in
  let events = Imdb_workload.Moving_objects.generate ~seed:5 ~inserts:20 ~total:600 () in
  let r = Imdb_workload.Driver.run_events ~clock db ~table:"MovingObjects" events in
  let mid = List.nth r.Imdb_workload.Driver.rr_commit_ts 300 in
  let s = Sql.make_session db in
  let results =
    Sql.exec_string s
      (Printf.sprintf
         "BEGIN TRAN AS OF \"%s\"; SELECT * FROM MovingObjects WHERE Oid < 10; COMMIT TRAN"
         (Imdb_clock.Timestamp.to_string mid))
  in
  (match results with
  | [ _; Sql.R_rows { rows; _ }; _ ] ->
      Alcotest.(check int) "nine objects below 10" 9 (List.length rows)
  | _ -> Alcotest.fail "unexpected results");
  Db.close db

let suite =
  [
    Alcotest.test_case "current range" `Quick test_current_range;
    Alcotest.test_case "conventional range" `Quick test_conventional_range;
    Alcotest.test_case "as-of range" `Quick test_as_of_range;
    Alcotest.test_case "snapshot range + own writes" `Quick test_snapshot_range_own_writes;
    Alcotest.test_case "SQL range pushdown" `Quick test_sql_range_pushdown;
    Alcotest.test_case "paper's example query" `Quick test_paper_query_shape;
  ]
