lib/core/db.mli: Catalog Engine Imdb_clock Imdb_storage Imdb_wal Schema
