(* Figures 1-4: structural figures of the paper, regenerated as printed
   artifacts (layouts, worked examples, generator statistics) rather than
   timings. *)

module P = Imdb_storage.Page
module R = Imdb_storage.Record
module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module V = Imdb_version.Vpage
module Mo = Imdb_workload.Moving_objects

(* Fig. 1: record structure — the 14-byte versioning tail. *)
let fig1 ~scale:_ =
  Fmt.pr "@.== Fig 1: record structure ==@.";
  Fmt.pr "record = flags(1) | key_len(2) | payload_len(2) | key | payload | tail(14)@.";
  Fmt.pr "tail   = VP(2) | Ttime(8) | SN(4)   (total %d bytes, as in the paper)@."
    R.tail_size;
  let r =
    R.encode
      { R.flags = 0; key = "k"; payload = "hello"; vp = R.no_vp;
        ttime = Tid.Unstamped (Tid.of_int 42); sn = 0 }
  in
  Fmt.pr "example (unstamped, TID 42):@.%s@."
    (Imdb_util.Hexdump.to_string ~max_bytes:64 r);
  let d = R.decode r in
  Fmt.pr "decoded: %a@." R.pp d

(* Fig. 2: page structure across the paper's three transactions:
   I: insert A, insert B; II: update A; III: update A, update B. *)
let fig2 ~scale:_ =
  Fmt.pr "@.== Fig 2: page structure across three transactions ==@.";
  let page = Bytes.make 8192 '\000' in
  P.format page ~page_id:7 ~page_type:P.P_data ();
  let show label =
    Fmt.pr "--- %s@." label;
    P.iter_live page (fun slot ->
        let r = R.read_in_page page slot in
        Fmt.pr "  slot %d: %a@." slot R.pp r)
  in
  let write ~key ~payload ~tid =
    match V.plan_insert page ~key ~payload ~tid:(Tid.of_int tid) ~delete_stub:false with
    | Some pi -> V.apply_insert page pi
    | None -> failwith "page full"
  in
  write ~key:"A" ~payload:"a0" ~tid:1;
  write ~key:"B" ~payload:"b0" ~tid:1;
  show "transaction I: insert A, insert B";
  write ~key:"A" ~payload:"a1" ~tid:2;
  show "transaction II: update A";
  write ~key:"A" ~payload:"a2" ~tid:3;
  write ~key:"B" ~payload:"b1" ~tid:3;
  show "transaction III: update A, update B";
  Fmt.pr "slot array points at the newest version of each record;@.";
  Fmt.pr "older versions are reachable only through the VP chain (flag 'old').@."

(* Fig. 3: time-split classification — the worked example of the paper:
   RecA alive across the split; RecB with an old and a new version; RecC
   with an old version, a version spanning, and a delete stub. *)
let fig3 ~scale:_ =
  Fmt.pr "@.== Fig 3: time split of a page ==@.";
  let page = Bytes.make 8192 '\000' in
  P.format page ~page_id:9 ~page_type:P.P_data ();
  let stamp_at ms sn slot =
    R.set_in_page_ttime page slot (Tid.Stamped (Int64.of_int ms));
    R.set_in_page_sn page slot sn
  in
  let write ?(stub = false) ~key ~payload ~tid () =
    match V.plan_insert page ~key ~payload ~tid:(Tid.of_int tid) ~delete_stub:stub with
    | Some pi ->
        V.apply_insert page pi;
        pi.V.pi_slot
    | None -> failwith "page full"
  in
  (* timeline: 100 .. 500, split at 300 *)
  let a0 = write ~key:"RecA" ~payload:"A-long-lived" ~tid:1 () in
  stamp_at 100 0 a0;
  let b0 = write ~key:"RecB" ~payload:"B-old" ~tid:2 () in
  stamp_at 120 0 b0;
  let b1 = write ~key:"RecB" ~payload:"B-new" ~tid:3 () in
  stamp_at 400 0 b1;
  let c0 = write ~key:"RecC" ~payload:"C-oldest" ~tid:4 () in
  stamp_at 110 0 c0;
  let c1 = write ~key:"RecC" ~payload:"C-middle" ~tid:5 () in
  stamp_at 200 0 c1;
  let c2 = write ~stub:true ~key:"RecC" ~payload:"" ~tid:6 () in
  stamp_at 450 0 c2;
  let split_time = Ts.make ~ttime:300L ~sn:0 in
  let images = V.time_split ~page ~split_time ~history_page_id:10 () in
  let dump title img =
    Fmt.pr "--- %s (split_time=%Ld)@." title (Ts.ttime (P.split_time img));
    P.iter_live img (fun slot ->
        let r = R.read_in_page img slot in
        Fmt.pr "  slot %d: %a@." slot R.pp r)
  in
  dump "current page after split" images.V.si_current;
  dump "new historical page" images.V.si_history;
  Fmt.pr "versions copied redundantly to both pages: %d@." images.V.si_copied;
  Fmt.pr
    "(as in the paper: RecA's only version, RecB's earlier version and RecC's@.";
  Fmt.pr
    " center version span the split -> both pages; RecC's oldest version ->@.";
  Fmt.pr
    " history only; RecB's new version and RecC's stub (after 300) -> current only)@."

(* Fig. 4: the moving-objects generator, as statistics instead of a map
   screenshot. *)
let fig4 ~scale =
  Fmt.pr "@.== Fig 4: moving-objects workload generator ==@.";
  let gen = Mo.create ~seed:42 () in
  let net = Mo.network gen in
  Fmt.pr "road network: %d intersections, %d road segments@."
    (Imdb_workload.Road_network.size net)
    (Imdb_workload.Road_network.edge_count net);
  let rows =
    List.map
      (fun inserts ->
        let total = Harness.scaled ~scale 36000 in
        let inserts = Harness.scaled ~scale inserts in
        let events = Mo.generate ~seed:42 ~inserts ~total () in
        let st = Mo.stats_of events in
        [
          string_of_int st.Mo.st_objects;
          string_of_int st.Mo.st_inserts;
          string_of_int st.Mo.st_updates;
          string_of_int st.Mo.st_min_updates;
          string_of_int st.Mo.st_max_updates;
          Fmt.str "%.1f" st.Mo.st_mean_updates;
        ])
      [ 500; 1000; 2000; 4000 ]
  in
  Harness.print_table ~title:"generator statistics (36K transactions)"
    ~header:[ "objects"; "inserts"; "updates"; "min upd/obj"; "max upd/obj"; "mean" ]
    rows

let () =
  Harness.register ~name:"fig1" ~doc:"record structure (Fig. 1)" fig1;
  Harness.register ~name:"fig2" ~doc:"page structure example (Fig. 2)" fig2;
  Harness.register ~name:"fig3" ~doc:"time-split worked example (Fig. 3)" fig3;
  Harness.register ~name:"fig4" ~doc:"moving-objects generator stats (Fig. 4)" fig4
