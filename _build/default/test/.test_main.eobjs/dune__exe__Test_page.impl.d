test/test_page.ml: Alcotest Bytes Hashtbl Imdb_clock Imdb_storage List Printf QCheck QCheck_alcotest String
