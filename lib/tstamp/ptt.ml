(* The persistent timestamp table (paper Section 2.2).

   A disk table (TID, Ttime, SN) organized as a B-tree ordered by TID —
   since TIDs are assigned in ascending order, the live entries cluster at
   the tail of the tree and lookups of recent transactions stay cheap even
   if crashes leave a residue of uncollectable entries.

   The commit-path insert is a normal logged B-tree update inside the
   committing transaction (the single PTT update that replaces eager
   timestamping's per-record revisit).  Deletions are garbage collection:
   non-transactional, redo-only. *)

module Ts = Imdb_clock.Timestamp
module Tid = Imdb_clock.Tid
module M = Imdb_obs.Metrics

type t = {
  tree : Imdb_btree.Btree.t;
  mutable metrics : M.t;
  mutable tracer : Imdb_obs.Tracer.t;
}

(* Order-preserving big-endian encoding of the TID. *)
let key_of_tid tid =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Tid.to_int64 tid);
  Bytes.to_string b

let tid_of_key k = Tid.of_int64 (Bytes.get_int64_be (Bytes.of_string k) 0)

let value_of_ts ts =
  let b = Bytes.create Ts.on_disk_size in
  Ts.write b 0 ts;
  b

let ts_of_value v = Ts.read v 0

let create ?(metrics = M.null) ?(tracer = Imdb_obs.Tracer.null) ~pool ~io
    ~table_id () =
  { tree = Imdb_btree.Btree.create ~metrics ~pool ~io ~table_id ~name:"ptt" ();
    metrics; tracer }

let attach ?(metrics = M.null) ?(tracer = Imdb_obs.Tracer.null) ~pool ~io ~root
    ~table_id () =
  { tree = Imdb_btree.Btree.attach ~metrics ~pool ~io ~root ~table_id ~name:"ptt" ();
    metrics; tracer }

let root t = Imdb_btree.Btree.root t.tree

(* Commit-path insert: one logged update per transaction. *)
let insert t tid ts =
  Imdb_obs.Tracer.with_span t.tracer "ptt.insert"
    ~attrs:[ ("tid", Tid.to_string tid) ]
  @@ fun _ ->
  M.incr t.metrics M.ptt_inserts;
  Imdb_btree.Btree.insert t.tree ~key:(key_of_tid tid) ~value:(value_of_ts ts)

let lookup t tid =
  M.incr t.metrics M.ptt_lookups;
  Option.map ts_of_value (Imdb_btree.Btree.find t.tree ~key:(key_of_tid tid))

(* Garbage collection delete: redo-only, never rolled back. *)
let delete t tid =
  M.incr t.metrics M.ptt_deletes;
  Imdb_btree.Btree.delete t.tree ~key:(key_of_tid tid)

(* Batched GC: TIDs are assigned in order, so a checkpoint's candidates
   cluster in a handful of leaves — one descent covers the run. *)
let delete_batch t tids =
  Imdb_obs.Tracer.with_span t.tracer "ptt.delete_batch"
    ~attrs:[ ("tids", string_of_int (List.length tids)) ]
  @@ fun _ ->
  M.incr ~by:(List.length tids) t.metrics M.ptt_deletes;
  Imdb_btree.Btree.delete_batch t.tree ~keys:(List.map key_of_tid tids)

let count t = Imdb_btree.Btree.count t.tree

let iter t f =
  Imdb_btree.Btree.iter t.tree (fun k v -> f (tid_of_key k) (ts_of_value v))

(* The oldest TID still recorded — a measure of how well GC keeps up. *)
let min_tid t = Option.map (fun (k, _) -> tid_of_key k) (Imdb_btree.Btree.min_binding t.tree)
