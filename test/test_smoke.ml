(* End-to-end smoke tests: the engine's basic promises, exercised through
   the public Db API.  Detailed per-module suites live alongside. *)

open Helpers
module Db = Imdb_core.Db
module S = Imdb_core.Schema
module Ts = Imdb_clock.Timestamp

let test_create_and_roundtrip () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "one")));
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 2 "two")));
  check_row db ~table:"t" ~id:1 (Some (row 1 "one"));
  check_row db ~table:"t" ~id:2 (Some (row 2 "two"));
  check_row db ~table:"t" ~id:3 None;
  Db.close db

let test_update_and_as_of () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  let t1 = commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "v1")) in
  tick clock;
  let t2 = commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row 1 "v2")) in
  tick clock;
  let t3 = commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row 1 "v3")) in
  (* current state *)
  check_row db ~table:"t" ~id:1 (Some (row 1 "v3"));
  (* as-of each commit point *)
  let read_as_of ts =
    Db.as_of db ts (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 1))
  in
  Alcotest.(check (option (list (module struct
    type t = S.value

    let pp = S.pp_value
    let equal a b = S.compare_values a b = 0
  end))))
    "as of t1" (Some (row 1 "v1")) (read_as_of t1);
  Alcotest.(check bool) "as of t2 sees v2" true (read_as_of t2 = Some (row 1 "v2"));
  Alcotest.(check bool) "as of t3 sees v3" true (read_as_of t3 = Some (row 1 "v3"));
  (* before the first insert the key did not exist *)
  let before = Ts.make ~ttime:(Int64.sub (Ts.ttime t1) 20L) ~sn:0 in
  Alcotest.(check bool) "before t1: absent" true (read_as_of before = None);
  Alcotest.(check bool) "between: floor to t2" true
    (read_as_of (Ts.make ~ttime:(Ts.ttime t2) ~sn:(Ts.sn t2 + 1)) = Some (row 1 "v2"));
  ignore t3;
  Db.close db

let test_delete_stub () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  let t1 = commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 7 "alive")) in
  tick clock;
  let t2 =
    commit_write db (fun txn -> Db.delete_row db txn ~table:"t" ~key:(S.V_int 7))
  in
  tick clock;
  check_row db ~table:"t" ~id:7 None;
  (* at t1 it existed; at t2 (deletion time) it is gone *)
  Alcotest.(check bool) "alive at t1" true
    (Db.as_of db t1 (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 7))
    = Some (row 7 "alive"));
  Alcotest.(check bool) "dead at t2" true
    (Db.as_of db t2 (fun txn -> Db.get_row db txn ~table:"t" ~key:(S.V_int 7)) = None);
  (* re-insert after delete *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 7 "back")));
  check_row db ~table:"t" ~id:7 (Some (row 7 "back"));
  Db.close db

let test_abort_rolls_back () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "keep")));
  tick clock;
  let txn = Db.begin_txn db in
  Db.update_row db txn ~table:"t" (row 1 "doomed");
  Db.insert_row db txn ~table:"t" (row 2 "doomed-too");
  Db.abort db txn;
  check_row db ~table:"t" ~id:1 (Some (row 1 "keep"));
  check_row db ~table:"t" ~id:2 None;
  Db.close db

let test_history () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "a")));
  tick clock;
  ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row 1 "b")));
  tick clock;
  ignore (commit_write db (fun txn -> Db.delete_row db txn ~table:"t" ~key:(S.V_int 1)));
  let hist =
    Db.exec db (fun txn -> Db.history_rows db txn ~table:"t" ~key:(S.V_int 1))
  in
  Alcotest.(check int) "three history entries" 3 (List.length hist);
  (match hist with
  | (_, None) :: (_, Some b) :: (_, Some a) :: [] ->
      Alcotest.(check bool) "newest is deletion" true true;
      Alcotest.(check bool) "then b" true (b = row 1 "b");
      Alcotest.(check bool) "then a" true (a = row 1 "a")
  | _ -> Alcotest.fail "unexpected history shape");
  Db.close db

let test_many_updates_force_time_splits () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  (* few keys, many updates: forces time splits in the single data page *)
  let n_keys = 5 and n_updates = 400 in
  for k = 1 to n_keys do
    tick clock;
    ignore
      (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row k "v0")))
  done;
  for u = 1 to n_updates do
    let k = 1 + (u mod n_keys) in
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.update_row db txn ~table:"t" (row k (Printf.sprintf "v%d" u))))
  done;
  Alcotest.(check bool) "time splits happened" true
    (Imdb_obs.Metrics.(get (Db.metrics db) time_splits) > 0);
  (* current state is the last write of each key *)
  Db.exec db (fun txn ->
      let rows = Db.scan_rows db txn ~table:"t" in
      Alcotest.(check int) "all keys current" n_keys (List.length rows));
  (* history of key 1 has one version per write *)
  let hist =
    Db.exec db (fun txn -> Db.history_rows db txn ~table:"t" ~key:(S.V_int 1))
  in
  let expected = 1 + (n_updates / n_keys) in
  Alcotest.(check int) "full history retained" expected (List.length hist);
  Db.close db

let test_crash_recovery_basic () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "durable")));
  tick clock;
  (* an uncommitted transaction that must vanish *)
  let txn = Db.begin_txn db in
  Db.insert_row db txn ~table:"t" (row 2 "volatile");
  (* crash without commit *)
  let db = Db.crash_and_reopen ~clock db in
  check_row db ~table:"t" ~id:1 (Some (row 1 "durable"));
  check_row db ~table:"t" ~id:2 None;
  (* engine remains writable after recovery *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 3 "post")));
  check_row db ~table:"t" ~id:3 (Some (row 3 "post"));
  Db.close db

let test_snapshot_isolation_reads () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "old")));
  tick clock;
  (* reader takes its snapshot now *)
  let reader = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  let before = Db.get_row db reader ~table:"t" ~key:(S.V_int 1) in
  (* writer commits a new version meanwhile *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row 1 "new")));
  let after = Db.get_row db reader ~table:"t" ~key:(S.V_int 1) in
  ignore (Db.commit db reader);
  Alcotest.(check bool) "snapshot stable (before)" true (before = Some (row 1 "old"));
  Alcotest.(check bool) "snapshot stable (after)" true (after = Some (row 1 "old"));
  (* a fresh reader sees the new version *)
  Db.exec db ~isolation:Db.Snapshot_isolation (fun txn ->
      Alcotest.(check bool) "fresh snapshot sees new" true
        (Db.get_row db txn ~table:"t" ~key:(S.V_int 1) = Some (row 1 "new")));
  Db.close db

let test_si_first_committer_wins () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"t" (row 1 "base")));
  tick clock;
  let t1 = Db.begin_txn ~isolation:Db.Snapshot_isolation db in
  (* a competing writer begins after t1's snapshot and commits first *)
  tick clock;
  ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"t" (row 1 "winner")));
  (match Db.update_row db t1 ~table:"t" (row 1 "loser") with
  | () -> Alcotest.fail "expected a write conflict"
  | exception Imdb_core.Table.Write_conflict _ -> ());
  Db.abort db t1;
  check_row db ~table:"t" ~id:1 (Some (row 1 "winner"));
  Db.close db

let test_conventional_table () =
  let db, clock = fresh_db () in
  Db.create_table db ~name:"c" ~mode:Db.Conventional ~schema:kv_schema;
  tick clock;
  ignore (commit_write db (fun txn -> Db.insert_row db txn ~table:"c" (row 1 "x")));
  ignore (commit_write db (fun txn -> Db.update_row db txn ~table:"c" (row 1 "y")));
  check_row db ~table:"c" ~id:1 (Some (row 1 "y"));
  ignore (commit_write db (fun txn -> Db.delete_row db txn ~table:"c" ~key:(S.V_int 1)));
  check_row db ~table:"c" ~id:1 None;
  Db.close db

let test_reopen_clean () =
  (* clean close + reopen: catalog and data intact, VTT empty but PTT
     resolves any unstamped tails *)
  let db, clock = fresh_db () in
  Db.create_table db ~name:"t" ~mode:Db.Immortal ~schema:kv_schema;
  for k = 1 to 20 do
    tick clock;
    ignore
      (commit_write db (fun txn ->
           Db.insert_row db txn ~table:"t" (row k (Printf.sprintf "v%d" k))))
  done;
  let db = Db.crash_and_reopen ~clock db in
  Db.exec db (fun txn ->
      Alcotest.(check int) "20 rows after reopen" 20
        (List.length (Db.scan_rows db txn ~table:"t")));
  check_row db ~table:"t" ~id:13 (Some (row 13 "v13"));
  Db.close db

let suite =
  [
    Alcotest.test_case "create & roundtrip" `Quick test_create_and_roundtrip;
    Alcotest.test_case "update & AS OF" `Quick test_update_and_as_of;
    Alcotest.test_case "delete stubs" `Quick test_delete_stub;
    Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
    Alcotest.test_case "history (time travel)" `Quick test_history;
    Alcotest.test_case "time splits under update load" `Quick
      test_many_updates_force_time_splits;
    Alcotest.test_case "crash recovery" `Quick test_crash_recovery_basic;
    Alcotest.test_case "snapshot isolation reads" `Quick test_snapshot_isolation_reads;
    Alcotest.test_case "SI first-committer-wins" `Quick test_si_first_committer_wins;
    Alcotest.test_case "conventional tables" `Quick test_conventional_table;
    Alcotest.test_case "reopen clean" `Quick test_reopen_clean;
  ]
