(* SQL layer: parsing and execution, including the paper's DDL/AS OF
   syntax from Section 4. *)

open Helpers
module Db = Imdb_core.Db
module S = Imdb_core.Schema
module Sql = Imdb_sql.Executor
module Ast = Imdb_sql.Ast
module Ts = Imdb_clock.Timestamp

let exec1 session src =
  match Sql.exec_string session src with
  | [ r ] -> r
  | rs -> Alcotest.fail (Printf.sprintf "expected one result, got %d" (List.length rs))

let rows = function
  | Sql.R_rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

let test_parse_paper_ddl () =
  (* the exact statement from the paper (Section 4.1) *)
  let stmt =
    Imdb_sql.Parser.parse_one
      "Create IMMORTAL Table MovingObjects (Oid smallint PRIMARY KEY, LocationX int, \
       LocationY int) ON [PRIMARY]"
  in
  match stmt with
  | Ast.Create_table { kind = Ast.K_immortal; name = "MovingObjects"; columns } ->
      Alcotest.(check int) "three columns" 3 (List.length columns);
      Alcotest.(check bool) "first is primary" true (List.hd columns).Ast.cd_primary
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_as_of () =
  match Imdb_sql.Parser.parse_one "Begin Tran AS OF \"2004-08-12 10:15:20\"" with
  | Ast.Begin_tran { as_of = Some "2004-08-12 10:15:20" } -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_script () =
  let stmts =
    Imdb_sql.Parser.parse_script
      "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR); INSERT INTO t VALUES (1, 'x'); \
       SELECT * FROM t WHERE a = 1 AND b <> 'y'; -- comment\n COMMIT"
  in
  Alcotest.(check int) "four statements" 4 (List.length stmts)

let test_end_to_end () =
  let db, clock = fresh_db () in
  let s = Sql.make_session db in
  ignore (exec1 s "CREATE IMMORTAL TABLE emp (id INT PRIMARY KEY, name VARCHAR, salary INT)");
  tick clock;
  ignore (exec1 s "INSERT INTO emp VALUES (1, 'smith', 100)");
  tick clock;
  ignore (exec1 s "INSERT INTO emp VALUES (2, 'jones', 200)");
  tick clock;
  ignore (exec1 s "UPDATE emp SET salary = 150 WHERE id = 1");
  let r = rows (exec1 s "SELECT * FROM emp WHERE salary >= 150") in
  Alcotest.(check int) "two rows >= 150" 2 (List.length r);
  let r = rows (exec1 s "SELECT name FROM emp WHERE id = 2") in
  Alcotest.(check bool) "projection" true (r = [ [ S.V_string "jones" ] ]);
  ignore (exec1 s "DELETE FROM emp WHERE id = 2");
  let r = rows (exec1 s "SELECT * FROM emp") in
  Alcotest.(check int) "one row left" 1 (List.length r);
  Db.close db

let test_as_of_query () =
  let db, clock = fresh_db () in
  let s = Sql.make_session db in
  ignore (exec1 s "CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)");
  tick clock;
  ignore (exec1 s "INSERT INTO t VALUES (1, 10)");
  (* capture the commit time of the first insert *)
  let t1 = Imdb_clock.Clock.last_issued clock in
  tick clock;
  ignore (exec1 s "UPDATE t SET v = 20 WHERE id = 1");
  tick clock;
  (* the paper's Begin Tran AS OF ... SELECT ... Commit Tran shape *)
  let as_of_src =
    Printf.sprintf "BEGIN TRAN AS OF \"%s\"; SELECT * FROM t WHERE id = 1; COMMIT TRAN"
      (Ts.to_string t1)
  in
  (match Sql.exec_string s as_of_src with
  | [ _; Sql.R_rows { rows = [ [ _; S.V_int v ] ]; _ }; _ ] ->
      Alcotest.(check int) "as-of sees old value" 10 v
  | _ -> Alcotest.fail "unexpected results");
  (* current value unchanged *)
  (match rows (exec1 s "SELECT * FROM t WHERE id = 1") with
  | [ [ _; S.V_int v ] ] -> Alcotest.(check int) "current is 20" 20 v
  | _ -> Alcotest.fail "unexpected row");
  Db.close db

let test_explicit_txn_rollback () =
  let db, clock = fresh_db () in
  let s = Sql.make_session db in
  ignore (exec1 s "CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)");
  tick clock;
  ignore (exec1 s "INSERT INTO t VALUES (1, 10)");
  ignore (exec1 s "BEGIN TRAN");
  ignore (exec1 s "UPDATE t SET v = 99 WHERE id = 1");
  ignore (exec1 s "ROLLBACK");
  (match rows (exec1 s "SELECT * FROM t WHERE id = 1") with
  | [ [ _; S.V_int v ] ] -> Alcotest.(check int) "rollback restored" 10 v
  | _ -> Alcotest.fail "unexpected row");
  Db.close db

let test_history_statement () =
  let db, clock = fresh_db () in
  let s = Sql.make_session db in
  ignore (exec1 s "CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)");
  tick clock;
  ignore (exec1 s "INSERT INTO t VALUES (1, 1)");
  tick clock;
  ignore (exec1 s "UPDATE t SET v = 2 WHERE id = 1");
  tick clock;
  ignore (exec1 s "DELETE FROM t WHERE id = 1");
  (match exec1 s "SELECT HISTORY(t, 1)" with
  | Sql.R_history entries ->
      Alcotest.(check int) "three versions" 3 (List.length entries);
      (match entries with
      | (_, None) :: _ -> ()
      | _ -> Alcotest.fail "newest should be the deletion")
  | _ -> Alcotest.fail "expected history");
  Db.close db

let test_errors () =
  let db, _clock = fresh_db () in
  let s = Sql.make_session db in
  ignore (exec1 s "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Alcotest.check_raises "unknown table"
    (Imdb_core.Db.No_such_table "missing")
    (fun () -> ignore (exec1 s "SELECT * FROM missing"));
  (match exec1 s "INSERT INTO t VALUES (1, 2)" with
  | Sql.R_ok _ -> ()
  | _ -> Alcotest.fail "insert failed");
  (match Sql.exec_string s "INSERT INTO t VALUES (1, 2)" with
  | exception Imdb_core.Table.Duplicate_key _ -> ()
  | _ -> Alcotest.fail "expected duplicate key");
  (match Sql.exec_string s "INSERT INTO t VALUES ('wrong', 2)" with
  | exception Sql.Exec_error _ -> ()
  | _ -> Alcotest.fail "expected type error");
  Db.close db

let suite =
  [
    Alcotest.test_case "parse paper DDL" `Quick test_parse_paper_ddl;
    Alcotest.test_case "parse AS OF" `Quick test_parse_as_of;
    Alcotest.test_case "parse script" `Quick test_parse_script;
    Alcotest.test_case "end to end" `Quick test_end_to_end;
    Alcotest.test_case "AS OF query" `Quick test_as_of_query;
    Alcotest.test_case "explicit txn rollback" `Quick test_explicit_txn_rollback;
    Alcotest.test_case "SELECT HISTORY" `Quick test_history_statement;
    Alcotest.test_case "errors" `Quick test_errors;
  ]
