bench/fig6.ml: Fmt Harness Imdb_core Imdb_workload List Printf
