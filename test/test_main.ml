let () =
  Alcotest.run "immortal_db"
    [
      ("util", Test_util.suite);
      ("clock", Test_clock.suite);
      ("page", Test_page.suite);
      ("record", Test_record.suite);
      ("disk-wal", Test_disk_wal.suite);
      ("buffer", Test_buffer.suite);
      ("metrics", Test_metrics.suite);
      ("btree", Test_btree.suite);
      ("vpage", Test_vpage.suite);
      ("tsb", Test_tsb.suite);
      ("tstamp", Test_tstamp.suite);
      ("lock", Test_lock.suite);
      ("group-commit", Test_group_commit.suite);
      ("recovery", Test_recovery.suite);
      ("engine", Test_engine.suite);
      ("endurance", Test_endurance.suite);
      ("backup", Test_backup.suite);
      ("range", Test_range.suite);
      ("vacuum", Test_vacuum.suite);
      ("faults", Test_faults.suite);
      ("interleave", Test_interleave.suite);
      ("edges", Test_edges.suite);
      ("alter", Test_alter.suite);
      ("parser-roundtrip", Test_parser_roundtrip.suite);
      ("smoke", Test_smoke.suite);
      ("sql", Test_sql.suite);
      ("sql2", Test_sql2.suite);
      ("workload", Test_workload.suite);
      ("parscan", Test_parscan.suite);
      ("compress", Test_compress.suite);
      ("tracer", Test_tracer.suite);
      ("ingest", Test_ingest.suite);
      ("torture", Test_torture.suite);
      ("mt", Test_mt.suite);
    ]
