lib/core/table.mli: Catalog Engine Imdb_btree Imdb_clock Imdb_tsb Schema
