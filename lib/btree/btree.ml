(* B+tree over buffer-pool pages.

   Used for every ordered auxiliary structure in the engine: the
   persistent timestamp table (keyed by TID — "a B-tree based table
   ordered by TID", Section 2.2), the table catalog, the split-store
   baseline's key index, and as the key router above the clustered
   versioned data pages.

   Structure:
   - Internal nodes ([P_index]) hold cells (separator_key, child_page_id);
     the leftmost cell of every internal node has the empty separator "",
     so a floor-style descent (largest separator <= probe) always finds a
     child.  A node's separator is the lower bound of its subtree's keys.
   - Leaves ([P_heap]) hold cells (key, value) and are doubly linked
     through next_page/prev_page for range scans.
   - The root page id is stable for the lifetime of the tree (root splits
     move the root's contents into a new child).

   Cells within a page are *unsorted*; lookups scan the slot array.  With
   8 KB pages a node holds at most a few hundred cells, and the scan cost
   is dwarfed by page access cost; in exchange, insertion never shifts
   slots, which keeps the physiological WAL format trivial.

   Logging contract (see Log_record): key inserts and value replaces are
   undoable [Update]s in the caller's transaction; deletes and all
   structure modifications (splits, frees, page formats) are logged
   redo-only and never rolled back, in the spirit of ARIES-IM nested top
   actions.  The engine injects logging/allocation through [io], keeping
   this module free of transaction state. *)

open Imdb_util
module P = Imdb_storage.Page
module M = Imdb_obs.Metrics
module BP = Imdb_buffer.Buffer_pool

type io = {
  exec : Imdb_buffer.Buffer_pool.frame -> undoable:bool -> Imdb_wal.Log_record.page_op -> unit;
      (** log the op (undoable in the current transaction, or redo-only),
          apply it to the frame's bytes and mark the frame dirty *)
  alloc : ptype:P.page_type -> level:int -> int;
      (** allocate, format and redo-log a fresh page; returns its id *)
  free : int -> unit;  (** return a page to the allocator (redo-logged) *)
}

type t = {
  pool : Imdb_buffer.Buffer_pool.t;
  io : io;
  root : int;
  table_id : int;
  name : string; (* for diagnostics *)
  metrics : M.t;
}

(* --- cell codecs -------------------------------------------------------- *)

let leaf_cell ~key ~value =
  let w = Codec.Writer.create ~size:(String.length key + Bytes.length value + 4) () in
  Codec.Writer.lstring w key;
  Codec.Writer.lbytes w value;
  Codec.Writer.contents w

let decode_leaf_cell body =
  let r = Codec.Reader.create body in
  let key = Codec.Reader.lstring r in
  let value = Codec.Reader.lbytes r in
  (key, value)

let node_cell ~key ~child =
  let w = Codec.Writer.create ~size:(String.length key + 6) () in
  Codec.Writer.lstring w key;
  Codec.Writer.u32 w child;
  Codec.Writer.contents w

let decode_node_cell body =
  let r = Codec.Reader.create body in
  let key = Codec.Reader.lstring r in
  let child = Codec.Reader.u32 r in
  (key, child)

let cell_key page slot =
  let body = P.cell_body_offset page slot in
  Codec.get_string page (body + 2) (Codec.get_u16 page body)

(* Allocation-free comparison of a cell's key with [key]: byte-lexicographic,
   shorter-is-smaller on equal prefixes (same order as String.compare).
   The loops are top-level functions so no closure is allocated per call —
   these run for every cell of every node on every descent. *)
let rec bytes_vs_string page off klen key n i =
  if i >= klen then if i >= n then 0 else -1
  else if i >= n then 1
  else
    let c = Char.compare (Bytes.unsafe_get page (off + i)) (String.unsafe_get key i) in
    if c <> 0 then c else bytes_vs_string page off klen key n (i + 1)

let cell_key_compare page slot key =
  let body = P.cell_body_offset page slot in
  let k = Codec.get_u16 page body in
  bytes_vs_string page (body + 2) k key (String.length key) 0

(* --- construction ------------------------------------------------------- *)

let attach ?(metrics = M.null) ~pool ~io ~root ~table_id ~name () =
  { pool; io; root; table_id; name; metrics }

(* A new tree: the root starts life as an (empty) leaf. *)
let create ?metrics ~pool ~io ~table_id ~name () =
  let root = io.alloc ~ptype:P.P_heap ~level:0 in
  attach ?metrics ~pool ~io ~root ~table_id ~name ()

let root t = t.root
let is_leaf page = P.level page = 0

(* --- descent ------------------------------------------------------------ *)

(* In an internal node, the live slot whose separator is the greatest one
   <= [key].  The leftmost "" separator guarantees existence. *)
(* Compare the keys of two cells of the same page, allocation-free. *)
let rec bytes_vs_bytes page ba ka bb kb i =
  if i >= ka then if i >= kb then 0 else -1
  else if i >= kb then 1
  else
    let c = Char.compare (Bytes.unsafe_get page (ba + i)) (Bytes.unsafe_get page (bb + i)) in
    if c <> 0 then c else bytes_vs_bytes page ba ka bb kb (i + 1)

let cell_cell_compare page a b =
  let ba = P.cell_body_offset page a and bb = P.cell_body_offset page b in
  let ka = Codec.get_u16 page ba and kb = Codec.get_u16 page bb in
  bytes_vs_bytes page (ba + 2) ka (bb + 2) kb 0

(* Manual scan over the slot array: these node searches run on every
   descent and dominate point-operation cost, so they avoid closures,
   bounds-checked codecs and repeated offset computation. *)
let node_floor_slot page key =
  let psize = Bytes.length page in
  let n = P.slot_count page in
  let klen = String.length key in
  let best = ref (-1) in
  let best_koff = ref 0 in
  let best_klen = ref 0 in
  for slot = 0 to n - 1 do
    let off = Bytes.get_uint16_le page (psize - 2 - (2 * slot)) in
    if off <> P.dead_slot then begin
      let ck = Bytes.get_uint16_le page (off + 2) in
      if bytes_vs_string page (off + 4) ck key klen 0 <= 0 then
        if !best < 0 || bytes_vs_bytes page (off + 4) ck !best_koff !best_klen 0 >= 0
        then begin
          best := slot;
          best_koff := off + 4;
          best_klen := ck
        end
    end
  done;
  if !best >= 0 then !best
  else
    failwith
      (Printf.sprintf "Btree: internal page %d lacks a floor for %S" (P.page_id page) key)

(* --- the per-frame key directory ----------------------------------------

   Cells within a page are unsorted, so the scans above decode every live
   cell.  For search-hot pages we build a sorted (key, slot) directory
   and cache it on the buffer-pool frame, turning every later search into
   a binary search.  The directory is volatile cache only — never logged,
   never moving the page LSN — and the pool invalidates it on any
   dirtying, so write-hot pages (which would rebuild constantly) never
   accumulate enough probes to pay the build cost. *)

let keydir_probe_threshold = 2

let build_keydir page =
  let n = P.live_count page in
  let keys = Array.make n "" and slots = Array.make n 0 in
  let i = ref 0 in
  P.iter_live page (fun slot ->
      keys.(!i) <- cell_key page slot;
      slots.(!i) <- slot;
      incr i);
  let idx = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = String.compare keys.(a) keys.(b) in
      if c <> 0 then c else compare slots.(a) slots.(b))
    idx;
  {
    BP.kd_keys = Array.map (fun j -> keys.(j)) idx;
    kd_slots = Array.map (fun j -> slots.(j)) idx;
  }

(* The frame's directory if present (hit); on a miss, build it once the
   frame has seen enough linear probes since its last invalidation. *)
let frame_keydir t fr =
  match BP.keydir fr with
  | Some kd ->
      M.incr t.metrics M.keydir_hits;
      Some kd
  | None ->
      M.incr t.metrics M.keydir_misses;
      if BP.keydir_probe fr >= keydir_probe_threshold then begin
        let kd = build_keydir (BP.bytes fr) in
        BP.set_keydir fr kd;
        Some kd
      end
      else None

(* Greatest index with kd_keys.(i) <= key, or -1. *)
let kd_floor kd key =
  let keys = kd.BP.kd_keys in
  let lo = ref 0 and hi = ref (Array.length keys - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) key <= 0 then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let kd_find kd key =
  let i = kd_floor kd key in
  if i >= 0 && String.equal kd.BP.kd_keys.(i) key then Some kd.BP.kd_slots.(i)
  else None

let node_floor_slot_fr t fr page key =
  match frame_keydir t fr with
  | None -> node_floor_slot page key
  | Some kd ->
      let i = kd_floor kd key in
      if i >= 0 then kd.BP.kd_slots.(i)
      else
        failwith
          (Printf.sprintf "Btree: internal page %d lacks a floor for %S"
             (P.page_id page) key)

(* Path from root to the leaf responsible for [key]:
   [(page_id, slot_taken); ...] from root downwards, leaf id last. *)
let rec descend t page_id key path =
  Imdb_buffer.Buffer_pool.with_page t.pool page_id (fun fr ->
      let page = Imdb_buffer.Buffer_pool.bytes fr in
      if is_leaf page then (page_id, List.rev path)
      else
        let slot = node_floor_slot_fr t fr page key in
        let _, child = decode_node_cell (P.read_cell page slot) in
        descend t child key ((page_id, slot) :: path))

let find_leaf t key = descend t t.root key []

(* --- lookups ------------------------------------------------------------ *)

let leaf_find_slot page key =
  let psize = Bytes.length page in
  let n = P.slot_count page in
  let klen = String.length key in
  let rec go slot =
    if slot >= n then None
    else
      let off = Bytes.get_uint16_le page (psize - 2 - (2 * slot)) in
      if
        off <> P.dead_slot
        && Bytes.get_uint16_le page (off + 2) = klen
        && bytes_vs_string page (off + 4) klen key klen 0 = 0
      then Some slot
      else go (slot + 1)
  in
  go 0

let leaf_find_slot_fr t fr page key =
  match frame_keydir t fr with
  | None -> leaf_find_slot page key
  | Some kd -> kd_find kd key

let find t ~key =
  let leaf_id, _ = find_leaf t key in
  Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
      let page = Imdb_buffer.Buffer_pool.bytes fr in
      match leaf_find_slot_fr t fr page key with
      | Some slot -> Some (snd (decode_leaf_cell (P.read_cell page slot)))
      | None -> None)

let mem t ~key = Option.is_some (find t ~key)

(* Greatest (key', value) with key' <= key, walking left through leaf
   links when the responsible leaf has nothing <= key (it may be empty or
   hold only larger keys after deletions). *)
let find_floor t ~key =
  let rec in_leaf leaf_id =
    if leaf_id = P.no_page then None
    else
      Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
          let page = Imdb_buffer.Buffer_pool.bytes fr in
          let best = ref (-1) in
          P.iter_live page (fun slot ->
              if cell_key_compare page slot key <= 0 then
                if !best < 0 || cell_cell_compare page slot !best >= 0 then best := slot);
          if !best >= 0 then Some (decode_leaf_cell (P.read_cell page !best))
          else in_leaf (P.prev_page page))
  in
  let leaf_id, _ = find_leaf t key in
  in_leaf leaf_id

(* --- iteration ----------------------------------------------------------- *)

let leaf_sorted_cells page =
  P.fold_live page ~init:[] ~f:(fun acc slot -> decode_leaf_cell (P.read_cell page slot) :: acc)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* In-order iteration over [from, upto] (inclusive bounds, both optional). *)
let iter ?from ?upto t f =
  let start_key = Option.value from ~default:"" in
  let rec walk leaf_id =
    if leaf_id <> P.no_page then begin
      let cells, next =
        Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
            let page = Imdb_buffer.Buffer_pool.bytes fr in
            (leaf_sorted_cells page, P.next_page page))
      in
      let stop = ref false in
      List.iter
        (fun (k, v) ->
          if not !stop then begin
            let after_from = match from with None -> true | Some lo -> String.compare k lo >= 0 in
            let before_upto = match upto with None -> true | Some hi -> String.compare k hi <= 0 in
            if after_from && before_upto then f k v;
            match upto with
            | Some hi when String.compare k hi > 0 -> stop := true
            | _ -> ()
          end)
        cells;
      if not !stop then walk next
    end
  in
  let leaf_id, _ = find_leaf t start_key in
  walk leaf_id

let fold ?from ?upto t ~init ~f =
  let acc = ref init in
  iter ?from ?upto t (fun k v -> acc := f !acc k v);
  !acc

let count t = fold t ~init:0 ~f:(fun n _ _ -> n + 1)

(* Smallest (key', value) with key' strictly greater than [key]; walks
   right through the leaf chain when needed. *)
let find_next t ~key =
  let rec in_leaf leaf_id =
    if leaf_id = P.no_page then None
    else
      Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
          let page = Imdb_buffer.Buffer_pool.bytes fr in
          let best = ref (-1) in
          P.iter_live page (fun slot ->
              if cell_key_compare page slot key > 0 then
                if !best < 0 || cell_cell_compare page slot !best <= 0 then best := slot);
          if !best >= 0 then Some (decode_leaf_cell (P.read_cell page !best))
          else in_leaf (P.next_page page))
  in
  let leaf_id, _ = find_leaf t key in
  in_leaf leaf_id

let min_binding t =
  let leaf_id, _ = find_leaf t "" in
  let rec go leaf_id =
    if leaf_id = P.no_page then None
    else
      let cells, next =
        Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
            let page = Imdb_buffer.Buffer_pool.bytes fr in
            (leaf_sorted_cells page, P.next_page page))
      in
      match cells with [] -> go next | (k, v) :: _ -> Some (k, v)
  in
  go leaf_id

(* --- splits --------------------------------------------------------------- *)

(* Split a full page (leaf or internal) around its sorted cell list; the
   upper half moves to a fresh right sibling.  Both pages and the parent
   separator are logged as redo-only ops: the whole split is a nested top
   action that is never undone.  Full after-images keep replay trivially
   correct.  Returns (separator_key, right_page_id). *)
let split_page t fr =
  M.incr t.metrics M.btree_node_splits;
  let page = Imdb_buffer.Buffer_pool.bytes fr in
  let page_id = P.page_id page in
  let leaf = is_leaf page in
  let lvl = P.level page in
  let cells =
    P.fold_live page ~init:[] ~f:(fun acc slot -> P.read_cell page slot :: acc)
    |> List.sort (fun a b ->
           let key_of c =
             let r = Codec.Reader.create c in
             Codec.Reader.lstring r
           in
           String.compare (key_of a) (key_of b))
  in
  let n = List.length cells in
  if n < 2 then failwith (Printf.sprintf "Btree %s: cannot split page %d with %d cells" t.name page_id n);
  let split_at = n / 2 in
  let lower = List.filteri (fun i _ -> i < split_at) cells in
  let upper = List.filteri (fun i _ -> i >= split_at) cells in
  let sep_key =
    let r = Codec.Reader.create (List.hd upper) in
    Codec.Reader.lstring r
  in
  let right_id = t.io.alloc ~ptype:(P.page_type page) ~level:lvl in
  let right_fr = Imdb_buffer.Buffer_pool.pin t.pool right_id in
  Fun.protect
    ~finally:(fun () -> Imdb_buffer.Buffer_pool.unpin t.pool right_fr)
    (fun () ->
      let right = Imdb_buffer.Buffer_pool.bytes right_fr in
      (* Build both new images in scratch buffers, then log them. *)
      let left_img = Bytes.copy page in
      P.format left_img ~page_id ~page_type:(P.page_type page) ~table_id:t.table_id
        ~level:lvl ();
      List.iter (fun c -> ignore (P.insert left_img c)) lower;
      let right_img = Bytes.copy right in
      P.format right_img ~page_id:right_id ~page_type:(P.page_type page)
        ~table_id:t.table_id ~level:lvl ();
      List.iter (fun c -> ignore (P.insert right_img c)) upper;
      if leaf then begin
        (* link right between page and its old successor *)
        P.set_prev_page right_img page_id;
        P.set_next_page right_img (P.next_page page);
        P.set_next_page left_img right_id;
        P.set_prev_page left_img (P.prev_page page)
      end;
      t.io.exec fr ~undoable:false (Imdb_wal.Log_record.Op_image { image = left_img });
      t.io.exec right_fr ~undoable:false (Imdb_wal.Log_record.Op_image { image = right_img });
      (* fix the old right sibling's back link *)
      if leaf && P.next_page right_img <> P.no_page then
        Imdb_buffer.Buffer_pool.with_page t.pool (P.next_page right_img) (fun nf ->
            let npage = Imdb_buffer.Buffer_pool.bytes nf in
            let old_b = Codec.get_bytes npage 44 4 in
            let new_b = Bytes.create 4 in
            Codec.set_u32 new_b 0 right_id;
            t.io.exec nf ~undoable:false
              (Imdb_wal.Log_record.Op_header { at = 44; old_b; new_b })));
  (sep_key, right_id)

(* Insert a separator cell into an internal node along [path]; splits
   propagate upward; a root split keeps the root page id stable by
   moving the root's contents into a fresh child. *)
let rec insert_into_node t path ~sep ~child =
  match path with
  | [] ->
      (* Splitting the root: move its cells into a new left child, then
         re-seed the root as an internal node over (left, child). *)
      let root_fr = Imdb_buffer.Buffer_pool.pin t.pool t.root in
      Fun.protect
        ~finally:(fun () -> Imdb_buffer.Buffer_pool.unpin t.pool root_fr)
        (fun () ->
          let rootp = Imdb_buffer.Buffer_pool.bytes root_fr in
          let lvl = P.level rootp in
          let left_id = t.io.alloc ~ptype:(P.page_type rootp) ~level:lvl in
          let left_fr = Imdb_buffer.Buffer_pool.pin t.pool left_id in
          Fun.protect
            ~finally:(fun () -> Imdb_buffer.Buffer_pool.unpin t.pool left_fr)
            (fun () ->
              let left_img =
                Bytes.copy (Imdb_buffer.Buffer_pool.bytes left_fr)
              in
              Bytes.blit rootp 0 left_img 0 (Bytes.length rootp);
              P.set_page_id left_img left_id;
              let root_img = Bytes.copy rootp in
              P.format root_img ~page_id:t.root ~page_type:P.P_index
                ~table_id:t.table_id ~level:(lvl + 1) ();
              ignore (P.insert root_img (node_cell ~key:"" ~child:left_id));
              ignore (P.insert root_img (node_cell ~key:sep ~child));
              t.io.exec left_fr ~undoable:false
                (Imdb_wal.Log_record.Op_image { image = left_img });
              t.io.exec root_fr ~undoable:false
                (Imdb_wal.Log_record.Op_image { image = root_img });
              (* the old root's leaf contents moved to [left_id]; its right
                 sibling (if any) must point back at the new home *)
              if lvl = 0 && P.next_page left_img <> P.no_page then
                Imdb_buffer.Buffer_pool.with_page t.pool (P.next_page left_img)
                  (fun nf ->
                    let np = Imdb_buffer.Buffer_pool.bytes nf in
                    let old_b = Codec.get_bytes np 44 4 in
                    let new_b = Bytes.create 4 in
                    Codec.set_u32 new_b 0 left_id;
                    t.io.exec nf ~undoable:false
                      (Imdb_wal.Log_record.Op_header { at = 44; old_b; new_b }))))
  | (node_id, _slot) :: rest_up ->
      let fr = Imdb_buffer.Buffer_pool.pin t.pool node_id in
      let overflow =
        Fun.protect
          ~finally:(fun () -> Imdb_buffer.Buffer_pool.unpin t.pool fr)
          (fun () ->
            let page = Imdb_buffer.Buffer_pool.bytes fr in
            let cell = node_cell ~key:sep ~child in
            if P.fits page (Bytes.length cell) then begin
              let slot = P.choose_insert_slot page in
              t.io.exec fr ~undoable:false
                (Imdb_wal.Log_record.Op_insert { slot; body = cell });
              None
            end
            else begin
              let sep2, right_id = split_page t fr in
              (* decide which half receives the pending separator *)
              let target_id =
                if String.compare sep sep2 >= 0 then right_id else node_id
              in
              Some (sep2, right_id, target_id)
            end)
      in
      (match overflow with
      | None -> ()
      | Some (sep2, right_id, target_id) ->
          Imdb_buffer.Buffer_pool.with_page t.pool target_id (fun tf ->
              let page = Imdb_buffer.Buffer_pool.bytes tf in
              let cell = node_cell ~key:sep ~child in
              let slot = P.choose_insert_slot page in
              if not (P.fits page (Bytes.length cell)) then
                failwith (Printf.sprintf "Btree %s: node %d still full after split" t.name target_id);
              t.io.exec tf ~undoable:false
                (Imdb_wal.Log_record.Op_insert { slot; body = cell }));
          (* propagate the new sibling upward (rest_up is parent-first) *)
          insert_into_node t rest_up ~sep:sep2 ~child:right_id)

(* Max cell body a page can host: header + one slot entry + cell header. *)
let max_cell_size t =
  let ps = Imdb_buffer.Buffer_pool.page_size t.pool in
  ((ps - P.header_size) / 2) - 16 (* conservative: two cells must fit for splits *)

(* Insert or replace (key, value).  [undoable] (default true) makes the
   change transactional with logical undo; structural callers — e.g. the
   router posting a key-split separator — pass false to log the plain
   redo-only slot op. *)
let insert ?(undoable = true) t ~key ~value =
  let cell = leaf_cell ~key ~value in
  if Bytes.length cell > max_cell_size t then
    invalid_arg
      (Printf.sprintf "Btree %s: entry of %d bytes exceeds page capacity" t.name
         (Bytes.length cell));
  let rec attempt () =
    let leaf_id, path = find_leaf t key in
    let outcome =
      Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
          let page = Imdb_buffer.Buffer_pool.bytes fr in
          match leaf_find_slot_fr t fr page key with
          | Some slot when
              (* replacing may grow the value past the page's capacity *)
              P.free_space page + P.cell_length page slot + 2
              >= Bytes.length cell + 2 ->
              let old_body = P.read_cell page slot in
              let op =
                if undoable then
                  Imdb_wal.Log_record.Op_kv_replace
                    { slot; old_body; new_body = cell; table_id = t.table_id }
                else Imdb_wal.Log_record.Op_replace { slot; old_body; new_body = cell }
              in
              t.io.exec fr ~undoable op;
              `Done
          | Some _ ->
              let sep, right_id = split_page t fr in
              `Split (sep, right_id, path)
          | None ->
              if P.fits page (Bytes.length cell) then begin
                let slot = P.choose_insert_slot page in
                let op =
                  if undoable then
                    Imdb_wal.Log_record.Op_kv_insert
                      { slot; body = cell; table_id = t.table_id }
                  else Imdb_wal.Log_record.Op_insert { slot; body = cell }
                in
                t.io.exec fr ~undoable op;
                `Done
              end
              else begin
                let sep, right_id = split_page t fr in
                `Split (sep, right_id, path)
              end)
    in
    match outcome with
    | `Done -> ()
    | `Split (sep, right_id, path) ->
        insert_into_node t (List.rev path) ~sep ~child:right_id;
        (* Re-descend: the responsible leaf may now be the new sibling. *)
        attempt ()
  in
  attempt ()

(* --- deletion -------------------------------------------------------------- *)

(* Unlink an empty leaf from the sibling chain and free it, removing its
   separator from the parent (recursively if the parent empties down to
   its leftmost "" cell only... we keep nodes once they still route). *)
let remove_separator t path child_id =
  match path with
  | [] -> () (* the root itself; never freed *)
  | (node_id, _) :: _ ->
      Imdb_buffer.Buffer_pool.with_page t.pool node_id (fun fr ->
          let page = Imdb_buffer.Buffer_pool.bytes fr in
          let victim = ref None in
          P.iter_live page (fun slot ->
              let k, c = decode_node_cell (P.read_cell page slot) in
              if c = child_id && String.compare k "" <> 0 then victim := Some (slot, k));
          match !victim with
          | Some (slot, _) ->
              let body = P.read_cell page slot in
              t.io.exec fr ~undoable:false (Imdb_wal.Log_record.Op_delete { slot; body })
          | None -> ())

let unlink_leaf t page =
  let prev = P.prev_page page and next = P.next_page page in
  if prev <> P.no_page then
    Imdb_buffer.Buffer_pool.with_page t.pool prev (fun pf ->
        let pp = Imdb_buffer.Buffer_pool.bytes pf in
        let old_b = Codec.get_bytes pp 40 4 in
        let new_b = Bytes.create 4 in
        Codec.set_u32 new_b 0 next;
        t.io.exec pf ~undoable:false (Imdb_wal.Log_record.Op_header { at = 40; old_b; new_b }));
  if next <> P.no_page then
    Imdb_buffer.Buffer_pool.with_page t.pool next (fun nf ->
        let np = Imdb_buffer.Buffer_pool.bytes nf in
        let old_b = Codec.get_bytes np 44 4 in
        let new_b = Bytes.create 4 in
        Codec.set_u32 new_b 0 prev;
        t.io.exec nf ~undoable:false (Imdb_wal.Log_record.Op_header { at = 44; old_b; new_b }))

(* Delete [key].  By default logged redo-only, which suits
   non-transactional maintenance (PTT garbage collection, DROP TABLE at
   commit).  Transactional deletes from conventional tables pass
   [~undoable:true], logging an [Op_kv_delete] whose logical undo
   re-inserts the cell.  Returns whether the key existed. *)
let delete ?(undoable = false) t ~key =
  let leaf_id, path = find_leaf t key in
  let emptied =
    Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
        let page = Imdb_buffer.Buffer_pool.bytes fr in
        match leaf_find_slot_fr t fr page key with
        | None -> `Absent
        | Some slot ->
            let body = P.read_cell page slot in
            let op =
              if undoable then
                Imdb_wal.Log_record.Op_kv_delete { slot; body; table_id = t.table_id }
              else Imdb_wal.Log_record.Op_delete { slot; body }
            in
            t.io.exec fr ~undoable op;
            if P.live_count page = 0 && leaf_id <> t.root then `Emptied else `Present)
  in
  match emptied with
  | `Absent -> false
  | `Present -> true
  | `Emptied ->
      (* Only reclaim non-leftmost leaves: the "" route must stay valid. *)
      let is_leftmost =
        match List.rev path with
        | (parent_id, slot) :: _ ->
            Imdb_buffer.Buffer_pool.with_page t.pool parent_id (fun fr ->
                let page = Imdb_buffer.Buffer_pool.bytes fr in
                String.equal (cell_key page slot) "")
        | [] -> true
      in
      if not is_leftmost then begin
        Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
            unlink_leaf t (Imdb_buffer.Buffer_pool.bytes fr));
        remove_separator t (List.rev path) leaf_id;
        t.io.free leaf_id
      end;
      true

(* Delete many keys in one pass: sort them, descend once per leaf run and
   drop every key that lives in the pinned leaf before moving on.  Keys
   in ascending order hit ascending leaves, so a key not found in the
   current leaf is either absent or belongs to a later one — it becomes
   the next run's head and gets its own descent.  Ptt GC deletes cluster
   tightly by construction (TIDs are assigned in order), so the common
   cost is one descent for the whole batch.  Returns the number of keys
   that existed. *)
let delete_batch ?(undoable = false) t ~keys =
  let keys = List.sort_uniq String.compare keys in
  let deleted = ref 0 in
  let rec run = function
    | [] -> ()
    | key :: rest ->
        let leaf_id, path = find_leaf t key in
        let remaining = ref rest in
        let emptied =
          Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
              let page = Imdb_buffer.Buffer_pool.bytes fr in
              let del k =
                match leaf_find_slot_fr t fr page k with
                | None -> false
                | Some slot ->
                    let body = P.read_cell page slot in
                    let op =
                      if undoable then
                        Imdb_wal.Log_record.Op_kv_delete
                          { slot; body; table_id = t.table_id }
                      else Imdb_wal.Log_record.Op_delete { slot; body }
                    in
                    t.io.exec fr ~undoable op;
                    incr deleted;
                    true
              in
              (* the head key routed here: absent if not found *)
              ignore (del key);
              let rec consume () =
                match !remaining with
                | k :: tl when del k ->
                    remaining := tl;
                    consume ()
                | _ -> ()
              in
              consume ();
              P.live_count page = 0 && leaf_id <> t.root)
        in
        if emptied then begin
          let is_leftmost =
            match List.rev path with
            | (parent_id, slot) :: _ ->
                Imdb_buffer.Buffer_pool.with_page t.pool parent_id (fun fr ->
                    let page = Imdb_buffer.Buffer_pool.bytes fr in
                    String.equal (cell_key page slot) "")
            | [] -> true
          in
          if not is_leftmost then begin
            Imdb_buffer.Buffer_pool.with_page t.pool leaf_id (fun fr ->
                unlink_leaf t (Imdb_buffer.Buffer_pool.bytes fr));
            remove_separator t (List.rev path) leaf_id;
            t.io.free leaf_id
          end
        end;
        run !remaining
  in
  run keys;
  !deleted

(* --- integrity checking (test support) ------------------------------------- *)

exception Invariant_violation of string

let fail_inv fmt = Fmt.kstr (fun s -> raise (Invariant_violation s)) fmt

(* Walk the whole tree checking: separator bounds, leaf chain consistency,
   level monotonicity.  Returns the number of keys. *)
let check_invariants t =
  let rec walk page_id ~low ~high ~expect_level =
    Imdb_buffer.Buffer_pool.with_page t.pool page_id (fun fr ->
        let page = Imdb_buffer.Buffer_pool.bytes fr in
        (match expect_level with
        | Some l when P.level page <> l ->
            fail_inv "page %d: level %d, expected %d" page_id (P.level page) l
        | _ -> ());
        if is_leaf page then begin
          let n = ref 0 in
          P.iter_live page (fun slot ->
              let k = cell_key page slot in
              incr n;
              if String.compare k low < 0 then
                fail_inv "leaf %d: key %S below bound %S" page_id k low;
              match high with
              | Some h when String.compare k h >= 0 ->
                  fail_inv "leaf %d: key %S above bound %S" page_id k h
              | _ -> ());
          !n
        end
        else begin
          let cells =
            P.fold_live page ~init:[] ~f:(fun acc slot ->
                decode_node_cell (P.read_cell page slot) :: acc)
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          if cells = [] then fail_inv "internal node %d is empty" page_id;
          (match cells with
          | (k, _) :: _ when String.compare k low < 0 ->
              fail_inv "node %d: first separator %S below bound %S" page_id k low
          | _ -> ());
          let rec check_children acc = function
            | [] -> acc
            | (k, child) :: rest ->
                let child_high = match rest with (k2, _) :: _ -> Some k2 | [] -> high in
                let sub =
                  walk child ~low:(if String.compare k low > 0 then k else low)
                    ~high:child_high ~expect_level:(Some (P.level page - 1))
                in
                check_children (acc + sub) rest
          in
          check_children 0 cells
        end)
  in
  walk t.root ~low:"" ~high:None ~expect_level:None

let pp_stats ppf t =
  let leaves = ref 0 and nodes = ref 0 and keys = ref 0 in
  let rec walk page_id =
    Imdb_buffer.Buffer_pool.with_page t.pool page_id (fun fr ->
        let page = Imdb_buffer.Buffer_pool.bytes fr in
        if is_leaf page then begin
          incr leaves;
          keys := !keys + P.live_count page
        end
        else begin
          incr nodes;
          P.iter_live page (fun slot ->
              walk (snd (decode_node_cell (P.read_cell page slot))))
        end)
  in
  walk t.root;
  Fmt.pf ppf "btree %s: %d keys, %d leaves, %d internal nodes" t.name !keys !leaves !nodes
